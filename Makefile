# TACTIC reproduction — common entry points.

GO ?= go

.PHONY: all build vet check test test-short test-repeat race chaos soak trace-smoke conform fuzz-smoke metrics-lint cover bench bench-smoke bench-json bench-diff repro repro-full demo-keys clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The pre-merge gate: compile, static checks, full tests, the race
# detector over the concurrent packages, the fault-injection suite, the
# conformance oracle, the native fuzz targets' smoke pass, the
# exposition-format lint, the coverage floor, a one-iteration smoke
# pass over the pipeline benchmarks, the end-to-end tracing smoke test,
# and the benchmark regression report.
check: build vet test race chaos conform fuzz-smoke metrics-lint cover bench-smoke trace-smoke bench-diff

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Flake hunt: run the (short-mode) suite twice in a shuffled order so
# sleep-based synchronisation and cross-test state leaks surface. CI
# runs this as its own job.
test-repeat:
	$(GO) test -short -count=2 -shuffle=on ./...

# Race-detector pass over every package the live forwarding plane runs
# concurrently: the forwarder itself plus its lock-free/sharded layers
# (bloom, core validator, ndn tables) and the transports.
race:
	$(GO) test -race ./internal/enforce/... ./internal/forwarder/... ./internal/transport/... ./internal/obs/... ./internal/fleet/... ./internal/bloom/... ./internal/core/... ./internal/ndn/... ./internal/lifecycle/...

# Fault-injection suite: failover/chaos soaks and face churn, under the
# race detector (see README "Failure handling & chaos testing").
chaos:
	$(GO) test -race -count=1 -run 'Soak|Churn|Chaos|Fault' ./internal/forwarder/ ./internal/transport/chaos/

# Longer manual soak: repeat the failover and chaos scenarios.
soak:
	$(GO) test -race -count=5 -run 'Soak' ./internal/forwarder/

# End-to-end tracing gate: boot a live multi-hop topology, trace a
# fetch, and assert the assembled trace crosses >= 2 hops with an edge
# verify span (see README "Tracing a request end-to-end").
trace-smoke:
	$(GO) test -race -count=1 -run 'TestTraceSmoke|TestTraceEndToEnd' ./internal/forwarder/

# Conformance gate: replay seeded scenarios against the reference
# oracle, the sim plane, and the live forwarder plane under the race
# detector, requiring zero divergences (see README "Correctness &
# conformance"). Replay one seed with
#   go run ./cmd/tacticconform -seed N -minimize -v
CONFORM_SEEDS ?= 50
conform:
	$(GO) run -race ./cmd/tacticconform -seeds $(CONFORM_SEEDS)
	$(GO) run -race ./cmd/tacticconform -seeds $(CONFORM_SEEDS) -scheme=ibac

# 30 seconds of native fuzzing per wire-facing decoder on top of the
# committed corpus under testdata/fuzz/.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzTLVDecode$$' -fuzztime $(FUZZTIME) ./internal/ndn/
	$(GO) test -run '^$$' -fuzz '^FuzzPacketRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/ndn/
	$(GO) test -run '^$$' -fuzz '^FuzzTagEncoding$$' -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -run '^$$' -fuzz '^FuzzRevocationTLV$$' -fuzztime $(FUZZTIME) ./internal/ndn/
	$(GO) test -run '^$$' -fuzz '^FuzzControlSync$$' -fuzztime $(FUZZTIME) ./internal/ndn/
	$(GO) test -run '^$$' -fuzz '^FuzzFragRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/transport/
	$(GO) test -run '^$$' -fuzz '^FuzzEnforceDecision$$' -fuzztime $(FUZZTIME) ./internal/enforce/

# Metrics exposition lint: scrape a live registry and require valid
# Prometheus text format plus the repo's naming conventions (counters
# end in _total, HELP on every family, consistent histograms).
metrics-lint:
	$(GO) test -count=1 -run 'TestMetricsLint|TestWritePrometheus' ./internal/fleet/ ./internal/obs/

# Statement-coverage floors: the scheme-agnostic decision engine is the
# repo's most safety-critical package and is held to 90%; the live
# forwarder (timing-heavy plumbing) to 70%; the tag primitives, wire
# codec, and tag-lifecycle service to the default 80%.
COVER_FLOOR ?= 80
COVER_FLOOR_ENFORCE ?= 90
COVER_FLOOR_FORWARDER ?= 70
cover:
	@$(GO) test -cover ./internal/core/ ./internal/ndn/ ./internal/lifecycle/ ./internal/enforce/ ./internal/forwarder/ | tee /tmp/tactic-cover.txt
	@awk -v floor=$(COVER_FLOOR) -v enf=$(COVER_FLOOR_ENFORCE) -v fwd=$(COVER_FLOOR_FORWARDER) '/coverage:/ { f = floor; if ($$2 ~ /internal\/enforce$$/) f = enf; if ($$2 ~ /internal\/forwarder$$/) f = fwd; gsub(/%/, "", $$5); if ($$5 + 0 < f) { print "FAIL: " $$2 " coverage " $$5 "% below " f "%"; bad = 1 } } END { exit bad }' /tmp/tactic-cover.txt

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every pipeline benchmark: catches harness bit-rot in
# seconds without measuring anything.
bench-smoke:
	$(GO) test ./internal/perf/ -run xxx -bench . -benchtime 1x

# Refresh the committed benchmark snapshot (preserves the recorded
# pre-change baseline) and append to the BENCH_history.jsonl trend.
bench-json:
	$(GO) run ./cmd/tacticbench -bench-out BENCH_pipeline.json

# Report deltas of the committed snapshot against its recorded
# pre-change baseline and the previous history entry (informational:
# always exits zero).
bench-diff:
	$(GO) run ./cmd/tacticbench -bench-diff BENCH_pipeline.json

# Regenerate every paper table and figure (reduced scale, ~7 min).
repro:
	$(GO) run ./cmd/tacticbench -csv results

# The paper's full scale (2000 s x 5 seeds; hours).
repro-full:
	$(GO) run ./cmd/tacticbench -duration 2000s -seeds 5 -csv results

# Identities for the live-network walkthrough in README.md.
demo-keys:
	$(GO) run ./cmd/tactickey gen -locator /prov0/KEY/1 -out prov0
	$(GO) run ./cmd/tactickey gen -locator /users/alice/KEY/1 -out alice

clean:
	rm -f prov0.key prov0.pub alice.key alice.pub
