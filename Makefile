# TACTIC reproduction — common entry points.

GO ?= go

.PHONY: all build vet check test test-short race bench repro repro-full demo-keys clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The pre-merge gate: compile, static checks, full tests, and the race
# detector over the concurrent packages.
check: build vet test race

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/forwarder/... ./internal/transport/... ./internal/obs/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table and figure (reduced scale, ~7 min).
repro:
	$(GO) run ./cmd/tacticbench -csv results

# The paper's full scale (2000 s x 5 seeds; hours).
repro-full:
	$(GO) run ./cmd/tacticbench -duration 2000s -seeds 5 -csv results

# Identities for the live-network walkthrough in README.md.
demo-keys:
	$(GO) run ./cmd/tactickey gen -locator /prov0/KEY/1 -out prov0
	$(GO) run ./cmd/tactickey gen -locator /users/alice/KEY/1 -out alice

clean:
	rm -f prov0.key prov0.pub alice.key alice.pub
