module github.com/tactic-icn/tactic

go 1.22
