// Videocdn simulates a video-surveillance edge CDN (another of the
// paper's §1 motivating applications) with TACTIC's hierarchical access
// levels (§5):
//
//   - AL 0 (Public) — preview thumbnails, served to anyone, no tag work
//   - AL 1          — standard streams, for basic subscribers and up
//   - AL 2          — full-resolution archives, premium subscribers only
//
// Half the viewers hold premium subscriptions (AL_u = 2), half basic
// (AL_u = 1); a crowd of anonymous users sends tagless requests. The
// run shows the hierarchical rule AL_D <= AL_u end to end: premium
// viewers fetch everything, basic viewers lose exactly the premium
// share, anonymous users only ever receive Public previews — all of it
// enforced by routers, with caches still serving the hot chunks.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/experiment"
	"github.com/tactic-icn/tactic/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dep, err := experiment.Build(experiment.Scenario{
		Name: "videocdn",
		Topology: topology.Config{
			CoreRouters: 24,
			EdgeRouters: 8,
			Providers:   3, // three camera operators
			Clients:     16,
			Attackers:   6, // the anonymous crowd (tagless requests)
		},
		Seed:     11,
		Duration: 90 * time.Second,
		// One third previews, one third standard, one third premium.
		ContentLevels:      []core.AccessLevel{core.Public, 1, 2},
		ClientLevel:        2, // premium by default; half get downgraded below
		AttackerMix:        []experiment.AttackerKind{experiment.AttackNoTag},
		ObjectsPerProvider: 30,
		ChunksPerObject:    30,
		ChunkSize:          1200, // video-chunk sized
		CSCapacity:         2000,
	})
	if err != nil {
		return err
	}

	// Downgrade every second viewer to a basic subscription (AL_u = 1).
	basic := make(map[string]bool)
	for i, identity := range dep.ClientIdentities {
		if i%2 == 0 {
			continue
		}
		basic[dep.Clients[i].ID()] = true
		for _, p := range dep.Providers {
			p.Provider().Enroll(identity.KeyLocator(), dep.ClientKeys[i], 1)
		}
	}
	fmt.Printf("video CDN: %d viewers (%d premium, %d basic), %d anonymous users, 3 operators\n",
		len(dep.Clients), len(dep.Clients)-len(basic), len(basic), len(dep.Attackers))

	dep.Start()
	dep.RunToEnd()

	var premium, basicD struct {
		req, recv uint64
	}
	for i, c := range dep.Clients {
		st := c.Stats()
		if basic[dep.Clients[i].ID()] {
			basicD.req += st.Delivery.Requested
			basicD.recv += st.Delivery.Received
		} else {
			premium.req += st.Delivery.Requested
			premium.recv += st.Delivery.Received
		}
	}
	res := dep.Collect()

	rate := func(recv, req uint64) float64 {
		if req == 0 {
			return 0
		}
		return float64(recv) / float64(req)
	}
	fmt.Printf("\npremium viewers (AL_u=2): %6d/%6d chunks (%.3f) — all levels\n",
		premium.recv, premium.req, rate(premium.recv, premium.req))
	fmt.Printf("basic viewers   (AL_u=1): %6d/%6d chunks (%.3f) — premium archive blocked (~1/3 of catalog)\n",
		basicD.recv, basicD.req, rate(basicD.recv, basicD.req))
	fmt.Printf("anonymous users (no tag): %6d/%6d chunks (%.3f) — public previews only (~1/3 of catalog)\n",
		res.AttackerDelivery.Received, res.AttackerDelivery.Requested, res.AttackerDelivery.Ratio())

	hitRatio := 0.0
	if res.CSHits+res.CSMisses > 0 {
		hitRatio = float64(res.CSHits) / float64(res.CSHits+res.CSMisses)
	}
	fmt.Printf("\nedge caching kept working under enforcement: %d cache hits (%.3f hit ratio)\n", res.CSHits, hitRatio)
	fmt.Printf("NACKed deliveries dropped at the edge (insufficient level, per Protocol 2): %d\n",
		res.Drops["edge-nack-drop"])
	fmt.Printf("tagless requests for private content dropped: %d\n", res.Drops["tagless-private"])
	return nil
}
