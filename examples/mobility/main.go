// Mobility simulates the paper's §9 future work ("test our mechanism in
// a real testbed under nodes mobility") and the §1 motivation ("the
// mobile client seamlessly resumes its content retrieval when it
// connects to its new base station"): vehicles roaming across the
// wireless edge, handing over between access points while streaming
// content under TACTIC.
//
// The run compares three mobility regimes on an identical topology,
// workload, and seed:
//
//   - AP-bound tags (the paper's §4.A rule): each handover invalidates
//     the client's tags — their recorded access path no longer matches
//     the new location — so the client re-registers at every hop and
//     the new edge re-validates from scratch.
//   - Roaming grants (the lifecycle extension): the issuance service
//     mints tags carrying the AccessPathAny wildcard, so the tag
//     survives the move — but each new edge's Bloom filter is cold, so
//     the client re-pays signature verification at every hop.
//   - Roaming grants + neighbor BF sync: edges also advertise their
//     validated-tag Bloom filters to each other, so a handed-over
//     client hits a warm filter at the new edge — one verification per
//     grant for the whole run, no re-registration, ever.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/experiment"
	"github.com/tactic-icn/tactic/internal/lifecycle"
	"github.com/tactic-icn/tactic/internal/sim"
	"github.com/tactic-icn/tactic/internal/topology"
)

const (
	duration     = 120 * time.Second
	handoverGap  = 15 * time.Second
	mobileCount  = 4
	firstHandoff = 20 * time.Second
	// grantAt is when the lifecycle service upgrades the mobile clients
	// to roaming tags — after their first in-band registration (which
	// also delivers their content keys).
	grantAt = 10 * time.Second
	// syncEvery is the neighbor BF advertisement period.
	syncEvery = 5 * time.Second
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// mobilityStats summarises one regime's run.
type mobilityStats struct {
	handovers  int
	mobileReq  uint64
	mobileRecv uint64
	mobileRegs uint64
	edgeVerifs uint64
	edgeResets uint64
	provVerifs uint64
	tagQRate   float64
}

func runRegime(roaming, sync bool) (*mobilityStats, error) {
	dep, err := experiment.Build(experiment.Scenario{
		Name: "mobility",
		Topology: topology.Config{
			CoreRouters: 24,
			EdgeRouters: 8, // eight roadside APs to roam across
			Providers:   2,
			Clients:     12,
			Attackers:   0,
		},
		Seed:               13,
		Duration:           duration,
		ObjectsPerProvider: 20,
		ChunksPerObject:    25,
		// Size the filters (identically, in all regimes) so neighbor sync
		// does not drive them into saturation resets: each edge absorbs
		// every other edge's element count, so a filter must hold roughly
		// edges × its own load before the auto-reset stays quiet.
		BFCapacity: 4000,
		// Edges validate on BF miss so the cost a cold edge charges a
		// handed-over client is visible in the verification counters.
		Ablations: core.Config{EdgeValidateOnMiss: true},
	})
	if err != nil {
		return nil, err
	}

	aps := dep.Network.Graph.OfKind(topology.KindAccessPoint)
	st := &mobilityStats{}

	// Schedule periodic handovers for the first mobileCount clients:
	// each moves to the next AP (round robin) every handoverGap.
	for m := 0; m < mobileCount && m < len(dep.Clients); m++ {
		mover := dep.Clients[m]
		pos := m // current AP cursor
		var hop func()
		hop = func() {
			pos = (pos + 1) % len(aps)
			if err := mover.MoveTo(aps[pos]); err != nil {
				log.Printf("handover failed for %s: %v", mover.ID(), err)
			} else {
				st.handovers++
			}
			dep.Engine.Schedule(handoverGap, hop)
		}
		dep.Engine.Schedule(firstHandoff+time.Duration(m)*time.Second, hop)
	}

	if roaming {
		// The lifecycle service (one per provider, sharing the provider's
		// signing key) mints roaming grants for the mobile clients once
		// their in-band registration has delivered content keys; edges
		// advertise BF deltas to each other for the rest of the run.
		services := make([]*lifecycle.Service, len(dep.Providers))
		for p := range dep.Providers {
			svc, err := lifecycle.Open("", dep.ProviderSigners[p])
			if err != nil {
				return nil, err
			}
			defer svc.Close()
			services[p] = svc
		}
		dep.Engine.Schedule(grantAt, func() {
			for m := 0; m < mobileCount && m < len(dep.ClientIdentities); m++ {
				cl := dep.ClientIdentities[m]
				for p, node := range dep.Providers {
					roam, err := services[p].Issue(cl.KeyLocator(), 3, core.AccessPathAny,
						sim.Epoch.Add(duration+time.Hour))
					if err != nil {
						log.Printf("roaming grant failed: %v", err)
						continue
					}
					if err := cl.StoreRegistration(node.Provider().Prefix(),
						&core.RegistrationResponse{Tag: roam}); err != nil {
						log.Printf("roaming grant install failed: %v", err)
					}
				}
			}
		})
		if sync {
			dep.Network.ScheduleBFSync(sim.Epoch.Add(grantAt), syncEvery, sim.Epoch.Add(duration))
		}
	}

	dep.Start()
	dep.RunToEnd()
	res := dep.Collect()

	for i, c := range dep.Clients {
		if i >= mobileCount {
			continue
		}
		cs := c.Stats()
		st.mobileReq += cs.Delivery.Requested
		st.mobileRecv += cs.Delivery.Received
		q, _ := dep.ClientIdentities[i].TagStats()
		st.mobileRegs += q
	}
	st.edgeVerifs = res.EdgeOps.Verifications
	st.edgeResets = res.EdgeOps.Resets
	st.provVerifs = res.ProviderVerifications
	st.tagQRate = res.TagQRate()
	return st, nil
}

func run() error {
	fmt.Printf("mobility: %d vehicles roaming across 8 edges (handover every %s) for %s\n\n",
		mobileCount, handoverGap, duration)

	bound, err := runRegime(false, false)
	if err != nil {
		return err
	}
	cold, err := runRegime(true, false)
	if err != nil {
		return err
	}
	warm, err := runRegime(true, true)
	if err != nil {
		return err
	}

	rate := func(recv, req uint64) float64 {
		if req == 0 {
			return 0
		}
		return float64(recv) / float64(req)
	}
	fmt.Printf("%-26s %16s %16s %16s\n", "", "AP-bound (§4.A)", "roaming, no sync", "roaming + sync")
	fmt.Printf("%-26s %16d %16d %16d\n", "completed handovers", bound.handovers, cold.handovers, warm.handovers)
	fmt.Printf("%-26s %16.4f %16.4f %16.4f\n", "mobile delivery ratio",
		rate(bound.mobileRecv, bound.mobileReq), rate(cold.mobileRecv, cold.mobileReq), rate(warm.mobileRecv, warm.mobileReq))
	fmt.Printf("%-26s %16d %16d %16d\n", "mobile tag registrations", bound.mobileRegs, cold.mobileRegs, warm.mobileRegs)
	fmt.Printf("%-26s %16.2f %16.2f %16.2f\n", "network tag rate Q (/s)", bound.tagQRate, cold.tagQRate, warm.tagQRate)
	fmt.Printf("%-26s %16d %16d %16d\n", "edge sig verifications", bound.edgeVerifs, cold.edgeVerifs, warm.edgeVerifs)
	fmt.Printf("%-26s %16d %16d %16d\n", "edge BF resets", bound.edgeResets, cold.edgeResets, warm.edgeResets)
	fmt.Printf("%-26s %16d %16d %16d\n", "provider verifications", bound.provVerifs, cold.provVerifs, warm.provVerifs)

	fmt.Println("\nAP-bound handover cost: one registration round trip per provider at every new")
	fmt.Println("location. With lifecycle roaming grants the tag survives the move, and neighbor")
	fmt.Println("BF sync means the new edge already vouches for it — no re-registration, no")
	fmt.Println("second signature verification, caches keep serving.")
	return nil
}
