// Mobility simulates the paper's §9 future work ("test our mechanism in
// a real testbed under nodes mobility") and the §1 motivation ("the
// mobile client seamlessly resumes its content retrieval when it
// connects to its new base station"): vehicles roaming across the
// wireless edge, handing over between access points while streaming
// content under TACTIC.
//
// Each handover invalidates the client's tags — their recorded access
// path no longer matches the new location (§4.A) — so the client
// re-registers and resumes. The run measures delivery continuity and
// the registration overhead mobility adds.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/tactic-icn/tactic/internal/experiment"
	"github.com/tactic-icn/tactic/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		duration     = 120 * time.Second
		handoverGap  = 15 * time.Second
		mobileCount  = 4
		firstHandoff = 20 * time.Second
	)
	dep, err := experiment.Build(experiment.Scenario{
		Name: "mobility",
		Topology: topology.Config{
			CoreRouters: 24,
			EdgeRouters: 8, // eight roadside APs to roam across
			Providers:   2,
			Clients:     12,
			Attackers:   0,
		},
		Seed:               13,
		Duration:           duration,
		ObjectsPerProvider: 20,
		ChunksPerObject:    25,
	})
	if err != nil {
		return err
	}

	aps := dep.Network.Graph.OfKind(topology.KindAccessPoint)
	fmt.Printf("mobility run: %d vehicles roaming across %d APs (handover every %s), %d stationary clients\n",
		mobileCount, len(aps), handoverGap, len(dep.Clients)-mobileCount)

	// Schedule periodic handovers for the first mobileCount clients:
	// each moves to the next AP (round robin) every handoverGap.
	handovers := 0
	for m := 0; m < mobileCount && m < len(dep.Clients); m++ {
		mover := dep.Clients[m]
		pos := m // current AP cursor
		var hop func()
		hop = func() {
			pos = (pos + 1) % len(aps)
			if err := mover.MoveTo(aps[pos]); err != nil {
				log.Printf("handover failed for %s: %v", mover.ID(), err)
			} else {
				handovers++
			}
			dep.Engine.Schedule(handoverGap, hop)
		}
		dep.Engine.Schedule(firstHandoff+time.Duration(m)*time.Second, hop)
	}

	dep.Start()
	dep.RunToEnd()
	res := dep.Collect()

	var mobileReq, mobileRecv, stationaryReq, stationaryRecv uint64
	var mobileRegs uint64
	for i, c := range dep.Clients {
		st := c.Stats()
		if i < mobileCount {
			mobileReq += st.Delivery.Requested
			mobileRecv += st.Delivery.Received
			q, _ := dep.ClientIdentities[i].TagStats()
			mobileRegs += q
		} else {
			stationaryReq += st.Delivery.Requested
			stationaryRecv += st.Delivery.Received
		}
	}
	rate := func(recv, req uint64) float64 {
		if req == 0 {
			return 0
		}
		return float64(recv) / float64(req)
	}
	fmt.Printf("\ncompleted handovers: %d\n", handovers)
	fmt.Printf("mobile vehicles:    %6d/%6d chunks (%.4f), %d tag registrations\n",
		mobileRecv, mobileReq, rate(mobileRecv, mobileReq), mobileRegs)
	fmt.Printf("stationary clients: %6d/%6d chunks (%.4f)\n",
		stationaryRecv, stationaryReq, rate(stationaryRecv, stationaryReq))
	fmt.Printf("network tag rate: Q %.2f/s (mobility adds ~1 registration per provider per handover)\n",
		res.TagQRate())
	fmt.Println("\nhandover cost under TACTIC: one tag request per provider at the new location —")
	fmt.Println("no session re-establishment, no provider round trip per chunk, caches keep serving.")
	return nil
}
