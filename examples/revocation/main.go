// Revocation contrasts TACTIC's time-based revocation with the
// client-side access-control baseline the paper's motivation criticises
// (§1: mechanisms where "all users can retrieve the content from the
// network" are "prone to wasting of network bandwidth and potential
// network Distributed Denial of Service (DDoS) attack by unauthenticated
// or revoked users").
//
// Both runs use the same topology, workload, and a population of revoked
// clients that keep replaying their stale (expired) tags:
//
//   - Under TACTIC, routers drop the requests at the edge pre-check; the
//     revoked users receive nothing and their stale requests never reach
//     the core.
//   - Under client-side AC, the network happily delivers ciphertext the
//     revoked users can still decrypt with their old keys unless the
//     provider re-encrypts everything — the expensive practice TACTIC
//     eliminates. The run measures the wasted downstream bytes.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/tactic-icn/tactic/internal/baseline"
	"github.com/tactic-icn/tactic/internal/experiment"
	"github.com/tactic-icn/tactic/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	base := experiment.Scenario{
		Topology: topology.Config{
			CoreRouters: 20,
			EdgeRouters: 6,
			Providers:   3,
			Clients:     12,
			Attackers:   6, // the revoked users
		},
		Seed:               3,
		Duration:           60 * time.Second,
		AttackerMix:        []experiment.AttackerKind{experiment.AttackExpiredTag},
		ObjectsPerProvider: 20,
		ChunksPerObject:    20,
		ChunkSize:          1024,
	}

	fmt.Println("revocation under TACTIC vs client-side access control")
	fmt.Println("(6 revoked users replay their stale tags for 60 s)")
	fmt.Println()

	for _, scheme := range []baseline.Scheme{baseline.TACTIC, baseline.ClientSideAC} {
		sc := base
		sc.Name = "revocation/" + scheme.String()
		sc.Baseline = scheme
		res, err := experiment.Run(sc)
		if err != nil {
			return err
		}
		wastedKB := res.AttackerDelivery.Received * uint64(base.ChunkSize) / 1024
		fmt.Printf("%-16s revoked users received %6d/%6d chunks (%.4f)",
			scheme, res.AttackerDelivery.Received, res.AttackerDelivery.Requested,
			res.AttackerDelivery.Ratio())
		switch scheme {
		case baseline.TACTIC:
			fmt.Printf(" — blocked at the edge (%d expired-tag drops)\n", res.Drops["tag-expired"])
		case baseline.ClientSideAC:
			fmt.Printf(" — %d KiB of ciphertext wasted; consumable with their cached keys until re-encryption\n", wastedKB)
		}
		fmt.Printf("%-16s legitimate clients: %.4f delivery, mean latency %s\n\n",
			"", res.ClientDelivery.Ratio(), res.ClientLatency.Mean().Round(10*time.Microsecond))
	}

	fmt.Println("TACTIC's revocation cost: one tag request per client per TTL — no re-encryption,")
	fmt.Println("no network-wide key redistribution, no always-online authentication server.")
	return nil
}
