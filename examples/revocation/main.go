// Revocation demonstrates the tag-lifecycle control plane end to end
// on the live forwarding stack. TACTIC's only native revocation is
// expiry: "a revoked client simply never receives a fresh tag", which
// leaves a window of up to a full tag lifetime in which a compromised
// client keeps being served. The lifecycle service closes that window:
//
//  1. the issuance service mints a tag against its persisted ledger,
//  2. the client fetches content through edge and core routers,
//  3. the grant is revoked and the new revocation set is pushed to ONE
//     router over a control TLV — the flood carries it to the rest,
//  4. the very next request is denied at the edge, hours before T_e,
//     even though the tag is still validly signed and its bits are
//     still set in every Bloom filter.
//
// The run finishes by reopening the service from its ledger, showing
// the revocation survives a restart, and by timing the push-to-denial
// revocation latency.
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/forwarder"
	"github.com/tactic-icn/tactic/internal/lifecycle"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/ndn"
	"github.com/tactic-icn/tactic/internal/pki"
	"github.com/tactic-icn/tactic/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	prefix := names.MustParse("/prov0")

	// Provider identity, trust registry, and the issuance service. The
	// service signs with the provider's key and records every grant in
	// an append-only ledger.
	provKey, err := pki.GenerateECDSA(rand.Reader, prefix.MustAppend("KEY", "1"))
	if err != nil {
		return err
	}
	registry := pki.NewRegistry()
	if err := registry.Register(provKey.Locator(), provKey.Public()); err != nil {
		return err
	}
	ledger := filepath.Join(os.TempDir(), fmt.Sprintf("tactic-revocation-%d.ledger", os.Getpid()))
	defer os.Remove(ledger)
	svc, err := lifecycle.Open(ledger, provKey)
	if err != nil {
		return err
	}

	// A three-node live deployment on loopback TCP:
	// client —— edge-0 —— core-0 —— producer.
	provider, err := core.NewProvider(prefix, provKey, time.Hour, rand.Reader)
	if err != nil {
		return err
	}
	producer, err := forwarder.NewProducer(provider, registry, nil)
	if err != nil {
		return err
	}
	defer producer.Close()
	if _, err := producer.PublishObject("report", 2, []byte("quarterly numbers, confidential"), 1024); err != nil {
		return err
	}
	prodAddr, err := listen(producer.Serve)
	if err != nil {
		return err
	}

	coreFwd, err := forwarder.New(forwarder.Config{ID: "core-0", Role: forwarder.RoleCore, Registry: registry, Seed: 1})
	if err != nil {
		return err
	}
	defer coreFwd.Close()
	coreAddr, err := listen(coreFwd.Serve)
	if err != nil {
		return err
	}
	up, err := coreFwd.DialUpstream(prodAddr)
	if err != nil {
		return err
	}
	coreFwd.AddRoute(prefix, up)

	edgeFwd, err := forwarder.New(forwarder.Config{
		ID: "edge-0", Role: forwarder.RoleEdge, Registry: registry, Seed: 2,
		Tactic: core.Config{EdgeValidateOnMiss: true},
	})
	if err != nil {
		return err
	}
	defer edgeFwd.Close()
	edgeAddr, err := listen(edgeFwd.Serve)
	if err != nil {
		return err
	}
	edgeUp, err := edgeFwd.DialUpstream(coreAddr)
	if err != nil {
		return err
	}
	edgeFwd.AddRoute(prefix, edgeUp)

	// 1. Issue. The grant's T_e is an hour away: under expiry-only
	// TACTIC the client would stay authorized that whole time.
	expiry := time.Now().Add(time.Hour)
	tag, err := svc.Issue(names.MustParse("/users/mallory/KEY/1"), 3,
		core.EmptyAccessPath.Accumulate("edge-0"), expiry)
	if err != nil {
		return err
	}
	fmt.Printf("issued  grant %s (AL 3, T_e in %s), ledger %s\n",
		tag.ID().Short(), time.Until(expiry).Round(time.Minute), filepath.Base(ledger))
	fmt.Printf("        outstanding grants: %d\n\n", svc.Outstanding())

	// 2. Fetch: validated once at the edge, served end to end.
	client, err := dialClient(edgeAddr)
	if err != nil {
		return err
	}
	defer client.Close()
	name := prefix.MustAppend("report", "chunk0")
	if d, err := fetch(client, name, tag, 1); err != nil {
		return err
	} else if d.Nack || d.Content == nil {
		return fmt.Errorf("pre-revocation fetch denied unexpectedly")
	}
	fmt.Printf("fetch   %s served (tag verified at edge, now cached in its BF)\n\n", name)

	// 3. Revoke and push to the edge only; the control flood carries the
	// set to the core router too.
	if _, err := svc.Revoke(tag.ID()); err != nil {
		return err
	}
	version, ids := svc.Revocations().Snapshot()
	pushed := time.Now()
	pusher, err := dialClient(edgeAddr)
	if err != nil {
		return err
	}
	defer pusher.Close()
	if err := pusher.SendControl(&ndn.Control{
		Kind: ndn.CtrlRevoke, Version: version, Origin: "lifecycle-svc",
		Full: true, Revoked: ids,
	}); err != nil {
		return err
	}
	for !edgeFwd.Tactic().Revocations().Contains(tag.ID()) ||
		!coreFwd.Tactic().Revocations().Contains(tag.ID()) {
		time.Sleep(time.Millisecond)
	}
	latency := time.Since(pushed)
	fmt.Printf("revoke  grant %s, set v%d pushed to edge-0 only\n", tag.ID().Short(), version)
	fmt.Printf("        flood reached every router in %s\n\n", latency.Round(100*time.Microsecond))

	// 4. The same still-signed, still-unexpired, still-BF-cached tag is
	// now denied at the edge.
	if d, err := fetch(client, prefix.MustAppend("report", "chunk1"), tag, 2); err != nil {
		return err
	} else if !d.Nack {
		return fmt.Errorf("revoked tag was served")
	}
	fmt.Printf("denied  next request NACKed at the edge — %s before T_e would have\n",
		time.Until(expiry).Round(time.Minute))
	fmt.Printf("        (expiry-only TACTIC serves this tag until T_e; the explicit set closes the window)\n\n")

	// 5. The ledger is durable: a restarted service still refuses the
	// grant and still carries the revocation set.
	if err := svc.Close(); err != nil {
		return err
	}
	svc2, err := lifecycle.Open(ledger, provKey)
	if err != nil {
		return err
	}
	defer svc2.Close()
	rec, ok := svc2.Lookup(tag.ID())
	if !ok {
		return fmt.Errorf("grant lost across restart")
	}
	fmt.Printf("restart service reopened from ledger: grant %s status=%s, set v%d with %d entry\n",
		tag.ID().Short(), rec.Status, svc2.Revocations().Version(), svc2.Revocations().Len())
	fmt.Println("\nrevocation cost: one control frame per push, one exact-set lookup per request —")
	fmt.Println("no re-encryption, no key redistribution, no waiting out the tag TTL.")
	return nil
}

// listen serves on an ephemeral loopback listener.
func listen(serve func(net.Listener) error) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	go serve(ln) //nolint:errcheck // exits on close
	return ln.Addr().String(), nil
}

// dialClient opens a client transport connection to a forwarder.
func dialClient(addr string) (*transport.Conn, error) {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return transport.New(raw), nil
}

// fetch requests one chunk with a tag and returns the response,
// skipping any flooded control frames arriving on the same face.
func fetch(conn *transport.Conn, name names.Name, tag *core.Tag, nonce uint64) (*ndn.Data, error) {
	if err := conn.SendInterest(&ndn.Interest{Name: name, Kind: ndn.KindContent, Nonce: nonce, Tag: tag}); err != nil {
		return nil, err
	}
	for {
		pkt, err := conn.Receive()
		if err != nil {
			return nil, err
		}
		if pkt.Data != nil {
			return pkt.Data, nil
		}
	}
}
