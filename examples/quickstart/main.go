// Quickstart walks the TACTIC protocol end to end using the public API
// and real ECDSA P-256 signatures, without the network simulator:
//
//  1. A provider publishes encrypted content with an access level.
//  2. A client enrolls, registers, and receives a signed tag plus the
//     wrapped content-decryption key.
//  3. An edge router validates the request (Protocol 1 pre-check +
//     Protocol 2), a content router serves from cache (Protocol 3), and
//     the client decrypts.
//  4. An attacker replaying the tag from another location, a forged tag,
//     and an expired tag are all rejected.
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	mrand "math/rand"
	"time"

	"github.com/tactic-icn/tactic/internal/bloom"
	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/enforce"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/pki"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	now := time.Now()

	// --- Provider setup: identity, trust registry, published content ---
	provKey, err := pki.GenerateECDSA(rand.Reader, names.MustParse("/acme/KEY/1"))
	if err != nil {
		return err
	}
	registry := pki.NewRegistry()
	if err := registry.Register(provKey.Locator(), provKey.Public()); err != nil {
		return err
	}
	provider, err := core.NewProvider(names.MustParse("/acme"), provKey, 30*time.Second, rand.Reader)
	if err != nil {
		return err
	}
	contentName := names.MustParse("/acme/report/chunk0")
	content, err := provider.Publish(contentName, 2, []byte("quarterly numbers: 42"))
	if err != nil {
		return err
	}
	fmt.Printf("provider %s published %s (AL_D=%d, %d-byte ciphertext)\n",
		provider.Prefix(), contentName, content.Meta.Level, len(content.Payload))

	// --- Client enrollment and registration (paper §4.A) ---
	clientKey, err := pki.GenerateECDSA(rand.Reader, names.MustParse("/users/alice/KEY/1"))
	if err != nil {
		return err
	}
	client, err := core.NewClient(clientKey, rand.Reader)
	if err != nil {
		return err
	}
	provider.Enroll(client.KeyLocator(), clientKey.Public(), 3)

	// The client's location: one access point between it and the edge
	// router.
	homeAP := core.AccessPathOf("ap-home")
	regReq, err := client.NewRegistrationRequest(homeAP)
	if err != nil {
		return err
	}
	resp, err := provider.Register(regReq, now)
	if err != nil {
		return err
	}
	if err := client.StoreRegistration(provider.Prefix(), resp); err != nil {
		return err
	}
	tag := resp.Tag
	fmt.Printf("client %s registered: tag AL_u=%d, expires %s, %d bytes\n",
		client.KeyLocator(), tag.Level, tag.Expiry.Format(time.TimeOnly), tag.Size())

	// --- Routers ---
	newRouter := func(id string) *enforce.Router {
		bf, err := bloom.NewPaper(500, 1e-4)
		if err != nil {
			panic(err) // static parameters; cannot fail
		}
		return enforce.NewRouter(id, bf, core.NewTagValidator(registry), mrand.New(mrand.NewSource(1)), core.Config{})
	}
	edge := newRouter("edge-0")
	contentRouter := newRouter("core-7")

	// --- Protocol 2: edge router processes the Interest ---
	dec := edge.EdgeOnInterest(tag, homeAP, contentName, now)
	if dec.Denied() {
		return fmt.Errorf("unexpected edge drop: %w", dec.Reason)
	}
	fmt.Printf("edge router forwards with F=%g (first sight: not in Bloom filter)\n", dec.Flag)

	// --- Protocol 3: content router serves from its cache ---
	cdec := contentRouter.ContentOnInterest(tag, content.Meta, dec.Flag, now)
	if cdec.Denied() {
		return fmt.Errorf("unexpected content NACK: %w", cdec.Reason)
	}
	fmt.Printf("content router validated the tag (1 signature verification) and returned <D, T> with F=%g\n", cdec.Flag)

	// --- Edge learns the validation and delivers ---
	if edge.EdgeOnData(tag, cdec.Flag, cdec.Denied()).Denied() {
		return fmt.Errorf("edge refused delivery")
	}

	// Second request: the edge Bloom filter now answers.
	dec2 := edge.EdgeOnInterest(tag, homeAP, contentName, now)
	fmt.Printf("second request: edge sets F=%.2g (Bloom-filter hit; upstream re-checks only with that probability)\n", dec2.Flag)

	// --- Client verifies provenance and decrypts ---
	if err := core.VerifyContent(registry, content); err != nil {
		return err
	}
	plain, err := client.Decrypt(provider.Prefix(), content)
	if err != nil {
		return err
	}
	fmt.Printf("client decrypted: %q\n\n", plain)

	// --- Attacks (paper §3.C) ---
	// (e) Tag shared to a different location: access-path mismatch.
	awayAP := core.AccessPathOf("ap-away")
	if d := edge.EdgeOnInterest(tag, awayAP, contentName, now); d.Denied() {
		fmt.Printf("shared tag from another AP: dropped (%v)\n", d.Reason)
	}
	// (b) Forged tag claiming the provider's key locator.
	rogue, err := pki.GenerateECDSA(rand.Reader, provKey.Locator())
	if err != nil {
		return err
	}
	forged, err := core.IssueTag(rogue, names.MustParse("/users/mallory/KEY/1"), 3, homeAP, now.Add(time.Hour))
	if err != nil {
		return err
	}
	if d := contentRouter.ContentOnInterest(forged, content.Meta, 0, now); d.Denied() {
		fmt.Printf("forged tag: NACK (%v)\n", d.Reason)
	}
	// (c) Expired tag.
	later := now.Add(31 * time.Second)
	if d := edge.EdgeOnInterest(tag, homeAP, contentName, later); d.Denied() {
		fmt.Printf("expired tag: dropped at edge pre-check (%v)\n", d.Reason)
	}
	// Revocation = not issuing fresh tags (paper §7).
	provider.Revoke(client.KeyLocator())
	regReq2, err := client.NewRegistrationRequest(homeAP)
	if err != nil {
		return err
	}
	if _, err := provider.Register(regReq2, later); err != nil {
		fmt.Printf("revoked client cannot re-register: %v\n", err)
	}

	return nil
}
