// Smartmeter simulates the paper's motivating M2M scenario (§1: "smart
// meters, asset tracking, and video surveillance"): a utility provider
// serves firmware and configuration objects to a fleet of constrained
// smart meters over a TACTIC-protected ISP edge.
//
// Mid-run, one meter is compromised and the utility revokes it. Because
// TACTIC revocation is purely time-based, the meter keeps fetching until
// its current tag expires (the 10 s TTL window) and is locked out
// afterwards — no content re-encryption, no router reconfiguration, no
// always-online authentication server involved. The example measures the
// meter's deliveries before and after the revocation takes effect.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/tactic-icn/tactic/internal/experiment"
	"github.com/tactic-icn/tactic/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		revokeAt = 60 * time.Second
		ttl      = 10 * time.Second
		end      = 120 * time.Second
	)
	dep, err := experiment.Build(experiment.Scenario{
		Name: "smartmeter",
		Topology: topology.Config{
			CoreRouters: 20,
			EdgeRouters: 6,
			Providers:   2, // the utility and a firmware mirror
			Clients:     24,
			Attackers:   0,
		},
		Seed:               7,
		Duration:           end,
		TagTTL:             ttl,
		ObjectsPerProvider: 20, // firmware images, config bundles, tariff tables
		ChunksPerObject:    20,
		ChunkSize:          512, // constrained-device sized chunks
	})
	if err != nil {
		return err
	}

	fmt.Printf("smart-meter fleet: %d meters, %d providers, tag TTL %s\n",
		len(dep.Clients), len(dep.Providers), ttl)

	dep.Start()
	dep.RunUntil(revokeAt)

	// Meter 0 is found compromised: revoke it at every provider. Its
	// current tag remains valid until T_e — TACTIC's revocation window.
	compromised := dep.Clients[0]
	identity := dep.ClientIdentities[0]
	before := compromised.Stats().Delivery
	for _, p := range dep.Providers {
		p.Provider().Revoke(identity.KeyLocator())
	}
	fmt.Printf("t=%s: meter %s revoked (delivered so far: %d chunks)\n",
		revokeAt, compromised.ID(), before.Received)

	// Let the tag expire, then measure the lockout window.
	dep.RunUntil(revokeAt + ttl)
	atExpiry := compromised.Stats().Delivery
	dep.RunUntil(end)
	final := compromised.Stats().Delivery

	inWindow := atExpiry.Received - before.Received
	afterWindow := final.Received - atExpiry.Received
	fmt.Printf("t=%s..%s (revocation window, old tag still valid): %d chunks delivered\n",
		revokeAt, revokeAt+ttl, inWindow)
	fmt.Printf("t=%s..%s (after tag expiry): %d chunks delivered\n",
		revokeAt+ttl, end, afterWindow)
	if afterWindow == 0 {
		fmt.Println("revoked meter locked out exactly one TTL after revocation — no re-encryption needed")
	} else {
		fmt.Println("WARNING: revoked meter still receiving after its tag expired")
	}

	// The rest of the fleet is unaffected.
	res := dep.Collect()
	fleet := res.ClientDelivery
	fleet.Requested -= final.Requested
	fleet.Received -= final.Received
	fmt.Printf("\nrest of fleet: %d/%d chunks delivered (%.4f)\n",
		fleet.Received, fleet.Requested, fleet.Ratio())
	fmt.Printf("tags issued by providers: %d (Q %.1f/s)\n", res.RegistrationsIssued, res.TagQRate())
	fmt.Printf("router signature verifications: edge %d, core %d — BF lookups: edge %d, core %d\n",
		res.EdgeOps.Verifications, res.CoreOps.Verifications,
		res.EdgeOps.Lookups, res.CoreOps.Lookups)
	return nil
}
