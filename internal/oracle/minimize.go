package oracle

// Minimize shrinks a diverging scenario by greedily dropping requests
// while the divergence persists, and returns the smallest scenario
// found together with its report. Dropping a request never violates
// the generator's scheduling constraints (they are monotone under
// removal), so any sub-multiset of a valid scenario's requests is
// itself a valid scenario. The search re-runs all planes per trial and
// is bounded by maxTrials, so it is meant for reproducing a reported
// seed, not for the gate's hot path.
func Minimize(scn *Scenario, opts Options) (*Scenario, *Report, error) {
	rep, err := RunScenario(scn, opts)
	if err != nil {
		return nil, nil, err
	}
	if !rep.Diverged() {
		return scn, rep, nil
	}
	const maxTrials = 200
	trials := 0
	for progress := true; progress; {
		progress = false
		for i := 0; i < len(scn.Requests); i++ {
			if trials >= maxTrials {
				return scn, rep, nil
			}
			cand := *scn
			cand.Requests = append(append([]RequestSpec(nil), scn.Requests[:i]...), scn.Requests[i+1:]...)
			trials++
			candRep, err := RunScenario(&cand, opts)
			if err != nil {
				continue // e.g. persistent timing skew: keep the request
			}
			if candRep.Diverged() {
				scn, rep = &cand, candRep
				progress = true
				i-- // the next candidate shifted into this slot
			}
		}
	}
	return scn, rep, nil
}
