package oracle

import (
	"testing"

	"github.com/tactic-icn/tactic/internal/core"
)

// Drift-injection acceptance tests for the internal/enforce seam: each
// test plants a plausible plumbing bug — a plane silently running the
// wrong scheme, or skipping a pre-check while the new backend is
// selected — and asserts the conformance gate catches it with a
// replayable, minimizable seed. These are the PR's "would tacticconform
// actually notice?" proofs for the engine extraction.

// driftCaught scans seeds until the bugged options diverge, then
// asserts the catch is replayable, absent without the bug, and — when
// minimize is set — shrinks under Minimize. clean is the bug-free
// control for the same run shape. (Live-plane drifts skip minimization:
// shrinking replays dozens of live topologies, and the sim-side drifts
// already exercise the full catch→minimize workflow.)
func driftCaught(t *testing.T, bugged, clean Options, maxSeed int64, minimize bool, what string) {
	t.Helper()
	var caught *Report
	var seed int64
	for s := int64(1); s <= maxSeed && caught == nil; s++ {
		rep, err := RunSeed(s, bugged)
		if err != nil {
			t.Fatalf("RunSeed(%d): %v", s, err)
		}
		if rep.Diverged() {
			caught, seed = rep, s
		}
	}
	if caught == nil {
		t.Fatalf("%s: %d seeds produced no divergence", what, maxSeed)
	}
	t.Logf("%s: seed %d caught it: %s", what, seed, caught.Divergences[0])

	again, err := RunSeed(seed, bugged)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Diverged() {
		t.Fatalf("%s: seed %d did not reproduce the divergence", what, seed)
	}
	ctrl, err := RunSeed(seed, clean)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Diverged() {
		t.Fatalf("%s: seed %d diverges even without the bug: %v", what, seed, ctrl.Divergences)
	}

	if !minimize {
		return
	}
	min, minRep, err := Minimize(caught.Scenario, bugged)
	if err != nil {
		t.Fatal(err)
	}
	if !minRep.Diverged() {
		t.Fatalf("%s: minimized scenario no longer diverges", what)
	}
	if len(min.Requests) > len(caught.Scenario.Requests) {
		t.Fatalf("%s: minimization grew the scenario: %d -> %d requests",
			what, len(caught.Scenario.Requests), len(min.Requests))
	}
	t.Logf("%s: minimized %d requests to %d", what, len(caught.Scenario.Requests), len(min.Requests))
}

// TestSchemeDriftSimCaught: the sim plane silently constructs IBAC
// engines while the oracle (and the operator) believe the run is
// TACTIC. The borrowed-tag gap and the edge-settled forged denials make
// the two schemes observably different, so the gate must flag it.
func TestSchemeDriftSimCaught(t *testing.T) {
	driftCaught(t,
		Options{SimTactic: core.Config{Scheme: core.SchemeIBAC}, SkipLive: true},
		Options{SkipLive: true},
		20, true, "sim plane drifted to IBAC")
}

// TestSchemeDriftOracleCaught is the mirrored direction: the reference
// model runs IBAC semantics against TACTIC planes — e.g. Options.Scheme
// plumbing that updated the knobs but not the plane configs.
func TestSchemeDriftOracleCaught(t *testing.T) {
	driftCaught(t,
		Options{Knobs: Knobs{Scheme: core.SchemeIBAC}, SkipLive: true},
		Options{SkipLive: true},
		20, true, "oracle drifted to IBAC")
}

// TestSchemeDriftLiveCaught: same drift on the live forwarder plane —
// the -scheme flag reaching tacticd's sim config but not the live
// forwarder construction would look exactly like this.
func TestSchemeDriftLiveCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("live plane in -short")
	}
	driftCaught(t,
		Options{LiveTactic: core.Config{Scheme: core.SchemeIBAC}},
		Options{},
		8, false, "live plane drifted to IBAC")
}

// TestIBACInjectedPrecheckBugCaught: with IBAC selected everywhere, the
// sim plane drops the Protocol 1 pre-checks from its plumbing. The gate
// must have teeth for the new backend, not just TACTIC.
func TestIBACInjectedPrecheckBugCaught(t *testing.T) {
	driftCaught(t,
		Options{Scheme: core.SchemeIBAC, SimTactic: core.Config{DisablePrecheck: true}, SkipLive: true},
		Options{Scheme: core.SchemeIBAC, SkipLive: true},
		20, true, "IBAC sim plane skipping pre-checks")
}

// TestIBACInjectedRevocationBugCaught: with IBAC selected everywhere,
// the sim plane skips the revocation-set lookup.
func TestIBACInjectedRevocationBugCaught(t *testing.T) {
	driftCaught(t,
		Options{Scheme: core.SchemeIBAC, SimTactic: core.Config{DisableRevocationCheck: true}, SkipLive: true},
		Options{Scheme: core.SchemeIBAC, SkipLive: true},
		20, true, "IBAC sim plane skipping revocation")
}
