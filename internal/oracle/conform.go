package oracle

import (
	"errors"
	"fmt"
	"strings"

	"github.com/tactic-icn/tactic/internal/core"
)

// Options configures one conformance run. The zero value is the
// standard gate: vanilla TACTIC semantics in every plane and a
// deterministic (FPRate 0) reference model. Tests inject semantics bugs
// by flipping core.Config knobs on one plane, or the mirrored Knobs on
// the oracle, and assert the harness reports the divergence.
type Options struct {
	// Scheme selects the enforcement backend for the whole run: it is
	// copied into both plane configs and the reference model's knobs, so
	// all three harnesses decide with the same engine semantics.
	Scheme core.Scheme
	// SimTactic / LiveTactic are the enforcement configs handed to the
	// sim-plane routers and the live forwarders respectively.
	SimTactic  core.Config
	LiveTactic core.Config
	// Knobs parameterizes the reference model.
	Knobs Knobs
	// SkipLive runs only oracle vs sim (used where wall-clock timing
	// would make a test slow or an FPRate oracle has no plane twin).
	SkipLive bool
}

// Divergence is one observable disagreement between the reference
// model and a plane.
type Divergence struct {
	// Request indexes Scenario.Requests, or -1 for an end-state
	// (content-store) divergence.
	Request int
	// Field names the compared observable, e.g. "delivered(live)" or
	// "cs[edge-0](sim)".
	Field string
	// Oracle and Got are the reference model's prediction and the
	// plane's observation.
	Oracle string
	Got    string
}

func (d Divergence) String() string {
	if d.Request < 0 {
		return fmt.Sprintf("%s: oracle=%s got=%s", d.Field, d.Oracle, d.Got)
	}
	return fmt.Sprintf("req[%d] %s: oracle=%s got=%s", d.Request, d.Field, d.Oracle, d.Got)
}

// Report is the outcome of replaying one scenario against the oracle
// and both planes.
type Report struct {
	Scenario    *Scenario
	Divergences []Divergence
}

// Diverged reports whether any observable disagreed.
func (r *Report) Diverged() bool { return len(r.Divergences) > 0 }

// RunSeed generates the scenario for a seed and replays it.
func RunSeed(seed int64, opts Options) (*Report, error) {
	scn, err := GenerateScenario(seed)
	if err != nil {
		return nil, err
	}
	return RunScenario(scn, opts)
}

// RunFloodSeed generates the TagFlood scenario for a seed and replays
// it: the flood gate proving all planes shed identically under a
// seeded verify-flood burst.
func RunFloodSeed(seed int64, opts Options) (*Report, error) {
	scn, err := GenerateFloodScenario(seed)
	if err != nil {
		return nil, err
	}
	return RunScenario(scn, opts)
}

// RunScenario replays one scenario against the reference model, the
// sim plane, and (unless opts.SkipLive) the live plane, and reports
// every per-request verdict and end-state disagreement.
func RunScenario(scn *Scenario, opts Options) (*Report, error) {
	info, err := buildTopo(scn)
	if err != nil {
		return nil, err
	}
	simTactic, liveTactic, knobs := opts.SimTactic, opts.LiveTactic, opts.Knobs
	if opts.Scheme != core.SchemeTACTIC {
		simTactic.Scheme = opts.Scheme
		liveTactic.Scheme = opts.Scheme
		knobs.Scheme = opts.Scheme
	}
	if scn.Flood != nil {
		// Flood scenarios verify at the edge — that is the hot path the
		// admission budget protects — with the scenario's budget mirrored
		// into the model unless the oracle-side "forgot to cap" injection
		// is active. Plane-side injections go through the planes' own
		// core.Config.DisableAdmission.
		simTactic.EdgeValidateOnMiss = true
		liveTactic.EdgeValidateOnMiss = true
		knobs.EdgeValidateOnMiss = true
		knobs.AdmissionBudget = scn.Flood.Budget
	}
	ref, err := RunReference(scn, info, knobs)
	if err != nil {
		return nil, err
	}
	sim, err := RunSim(scn, info, simTactic)
	if err != nil {
		return nil, err
	}
	var live *PlaneResult
	if !opts.SkipLive {
		live, err = RunLive(scn, info, liveTactic)
		if errors.Is(err, ErrTimingSkew) {
			// A loaded machine can miss a mid-run expiry window; the run
			// is invalid (not divergent), so try once more.
			live, err = RunLive(scn, info, liveTactic)
		}
		if err != nil {
			return nil, err
		}
	}

	rep := &Report{Scenario: scn}
	diverge := func(req int, field, oracle, got string) {
		rep.Divergences = append(rep.Divergences, Divergence{Request: req, Field: field, Oracle: oracle, Got: got})
	}
	boolStr := func(b bool) string { return fmt.Sprintf("%t", b) }
	for ri := range scn.Requests {
		o := ref.Outcomes[ri]
		s := sim.Outcomes[ri]
		if o.Delivered != s.Delivered {
			diverge(ri, "delivered(sim)", boolStr(o.Delivered), boolStr(s.Delivered))
		}
		if o.SimNacked() != s.Nacked {
			diverge(ri, "nacked(sim)", boolStr(o.SimNacked()), boolStr(s.Nacked))
		}
		if o.SimNacked() && s.Nacked && o.Reason != s.Reason {
			// Only the sim plane carries denial reasons to the client.
			diverge(ri, "reason(sim)", o.Reason, s.Reason)
		}
		if live == nil {
			continue
		}
		l := live.Outcomes[ri]
		if o.Delivered != l.Delivered {
			diverge(ri, "delivered(live)", boolStr(o.Delivered), boolStr(l.Delivered))
		}
		if o.LiveNacked() != l.Nacked {
			diverge(ri, "nacked(live)", boolStr(o.LiveNacked()), boolStr(l.Nacked))
		}
		if o.Stage == StageEdgeInterest && o.LiveNacked() && l.Nacked && o.Reason != l.Reason {
			// Edge-Interest denials carry their reason code on the wire
			// and are settled per-request before any PIT interaction, so
			// the live reason is comparable. Denials settled upstream are
			// not: an aggregated record inherits the primary answer's
			// (possibly absent) reason.
			diverge(ri, "reason(live)", o.Reason, l.Reason)
		}
	}
	compareCS(ref.CS, sim.CS, "sim", diverge)
	if live != nil {
		compareCS(ref.CS, live.CS, "live", diverge)
	}
	return rep, nil
}

// compareCS checks a plane's end-state content stores against the
// oracle's prediction, router by router.
func compareCS(oracle, got map[string][]string, plane string, diverge func(int, string, string, string)) {
	for router, want := range oracle {
		have := got[router]
		if strings.Join(want, ",") != strings.Join(have, ",") {
			diverge(-1, fmt.Sprintf("cs[%s](%s)", router, plane),
				"{"+strings.Join(want, ",")+"}", "{"+strings.Join(have, ",")+"}")
		}
	}
	for router := range got {
		if _, ok := oracle[router]; !ok {
			diverge(-1, fmt.Sprintf("cs[%s](%s)", router, plane), "<absent>", "{"+strings.Join(got[router], ",")+"}")
		}
	}
}
