package oracle

import (
	"fmt"

	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/topology"
)

// topoInfo is the analyzed topology every plane (and the reference
// model) shares: node groupings, user homes, and the per-provider
// shortest-path trees all three planes route on. Deriving routes once
// here is what makes path-dependent predictions (which routers cache
// which content) well-defined.
type topoInfo struct {
	g *topology.Graph

	// cores, edges, aps, providers are graph indices in creation order.
	cores, edges, aps, providers []int
	// users lists clients then attackers, defining the scenario's user
	// index space.
	users []int
	// userEdge maps a user index to its edge-router position (index
	// into edges); userAP to its access point's graph index.
	userEdge []int
	userAP   []int
	// apID / edgeID are the access-path entity identities per edge
	// position — the AP's for the sim plane, the edge router's for the
	// live plane (each plane has exactly one first-hop entity).
	apID   []string
	edgeID []string
	// parent[p] is the BFS tree toward provider p (parent indices).
	parent [][]int
}

// buildTopo generates and analyzes the scenario's topology.
func buildTopo(scn *Scenario) (*topoInfo, error) {
	g, err := topology.Generate(scn.Topo)
	if err != nil {
		return nil, err
	}
	ti := &topoInfo{
		g:         g,
		cores:     g.OfKind(topology.KindCoreRouter),
		edges:     g.OfKind(topology.KindEdgeRouter),
		aps:       g.OfKind(topology.KindAccessPoint),
		providers: g.OfKind(topology.KindProvider),
	}
	ti.users = append(ti.users, g.OfKind(topology.KindClient)...)
	ti.users = append(ti.users, g.OfKind(topology.KindAttacker)...)

	edgePos := make(map[int]int, len(ti.edges))
	for i, e := range ti.edges {
		edgePos[e] = i
	}
	// Each AP has exactly one router neighbour: its edge.
	ti.apID = make([]string, len(ti.edges))
	ti.edgeID = make([]string, len(ti.edges))
	apEdge := make(map[int]int, len(ti.aps)) // ap graph idx -> edge pos
	for _, ap := range ti.aps {
		for _, nb := range g.Adj[ap] {
			if g.Nodes[nb.Node].Kind == topology.KindEdgeRouter {
				pos := edgePos[nb.Node]
				apEdge[ap] = pos
				ti.apID[pos] = g.Nodes[ap].ID
				ti.edgeID[pos] = g.Nodes[nb.Node].ID
			}
		}
	}
	ti.userEdge = make([]int, len(ti.users))
	ti.userAP = make([]int, len(ti.users))
	for u, idx := range ti.users {
		if len(g.Adj[idx]) != 1 {
			return nil, fmt.Errorf("oracle: user %s has %d faces, want 1", g.Nodes[idx].ID, len(g.Adj[idx]))
		}
		ap := g.Adj[idx][0].Node
		pos, ok := apEdge[ap]
		if !ok {
			return nil, fmt.Errorf("oracle: user %s attached to non-AP node %s", g.Nodes[idx].ID, g.Nodes[ap].ID)
		}
		ti.userAP[u] = ap
		ti.userEdge[u] = pos
	}
	ti.parent = make([][]int, len(ti.providers))
	for p, idx := range ti.providers {
		ti.parent[p] = g.BFSFrom(idx)
	}
	return ti, nil
}

// routerPath returns the graph indices of the routers an Interest from
// edge position edgePos traverses toward provider provPos, starting at
// the edge router and ending at the provider-adjacent core, following
// the provider's BFS tree. APs, end devices, and providers all have
// degree 1, so the walk visits only core/edge routers.
func (ti *topoInfo) routerPath(edgePos, provPos int) ([]int, error) {
	par := ti.parent[provPos]
	node := ti.edges[edgePos]
	goal := ti.providers[provPos]
	var path []int
	for node != goal {
		path = append(path, node)
		next := par[node]
		if next < 0 {
			return nil, fmt.Errorf("oracle: no path from edge %d to provider %d", edgePos, provPos)
		}
		node = next
	}
	return path, nil
}

// nodeID returns a graph node's identity string.
func (ti *topoInfo) nodeID(idx int) string { return ti.g.Nodes[idx].ID }

// provPrefix returns provider p's name prefix (e.g. "/prov0").
func (ti *topoInfo) provPrefix(p int) names.Name {
	return names.MustNew(ti.nodeID(ti.providers[p]))
}

// contentName returns the full name of scenario content ci.
func (ti *topoInfo) contentName(scn *Scenario, ci int) names.Name {
	c := scn.Contents[ci]
	return ti.provPrefix(c.Provider).MustAppend(c.Object)
}

// userKey returns user u's key locator Pub_u.
func (ti *topoInfo) userKey(u int) names.Name {
	return names.MustNew(ti.nodeID(ti.users[u]), "KEY")
}
