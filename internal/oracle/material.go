package oracle

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/pki"
)

// material is the concrete crypto realisation of a scenario for one
// plane: providers with registered signing keys, published contents,
// and issued tags. Each plane builds its own (the planes place tag
// expiries on different clocks — the sim plane lives on virtual time
// from sim.Epoch, the live plane on wall time), but both derive from
// the same scenario ground truth, so a tag's validity class is
// identical everywhere.
type material struct {
	registry  *pki.Registry
	providers []*core.Provider
	contents  []*core.Content // aligned with Scenario.Contents
	tags      []*core.Tag     // aligned with Scenario.Tags
	// revoked is the scenario's revocation set: the IDs of every
	// TagRevoked tag, which each plane pushes (version 1, full) to all
	// of its routers before the first request.
	revoked []core.TagID
}

// buildMaterial realises a scenario's tags and contents. expiryOf maps
// a tag spec to its T_e on the plane's clock; apOf maps an edge
// position to the access path the plane's first-hop entity stamps
// (AP identity in the sim plane, edge-router identity in the live one).
func buildMaterial(scn *Scenario, info *topoInfo, expiryOf func(TagSpec) time.Time, apOf func(edgePos int) core.AccessPath) (*material, error) {
	registry := pki.NewRegistry()
	rng := rand.New(rand.NewSource(scn.Seed ^ 0x7ac71c))
	m := &material{registry: registry}

	// Providers: a registered signer each, plus a rogue signer bearing
	// the same locator but an unregistered key — its signatures fail
	// verification, realising TagForged.
	signers := make([]*pki.FastKeyPair, scn.Topo.Providers)
	rogues := make([]*pki.FastKeyPair, scn.Topo.Providers)
	for p := 0; p < scn.Topo.Providers; p++ {
		locator := info.provPrefix(p).MustAppend("KEY")
		signer, err := pki.GenerateFast(rng, locator)
		if err != nil {
			return nil, err
		}
		rogue, err := pki.GenerateFast(rng, locator)
		if err != nil {
			return nil, err
		}
		if err := registry.Register(locator, signer.Public()); err != nil {
			return nil, err
		}
		provider, err := core.NewProvider(info.provPrefix(p), signer, time.Hour, rng)
		if err != nil {
			return nil, err
		}
		signers[p], rogues[p] = signer, rogue
		m.providers = append(m.providers, provider)
	}

	for ci := range scn.Contents {
		c := scn.Contents[ci]
		content, err := m.providers[c.Provider].Publish(info.contentName(scn, ci), c.Level, []byte(fmt.Sprintf("payload-%d", ci)))
		if err != nil {
			return nil, err
		}
		m.contents = append(m.contents, content)
	}

	for ti := range scn.Tags {
		spec := scn.Tags[ti]
		signer := pki.Signer(signers[spec.Provider])
		if spec.Kind == TagForged || spec.Kind == TagFlood {
			signer = rogues[spec.Provider]
		}
		ap := apOf(spec.HomeEdge)
		if spec.Kind == TagRoaming {
			ap = core.AccessPathAny
		}
		clientKey := info.userKey(spec.User)
		if spec.Kind == TagFlood {
			// Salt the serial into the key locator: every flood tag then
			// has a distinct encoding, so each burst Interest presents a
			// never-cached tag and forces a fresh signature check.
			clientKey = clientKey.MustAppend(fmt.Sprintf("flood%d", spec.Serial))
		} else if spec.Serial != 0 {
			// Same for any other deliberately-serialled tag: two specs that
			// agree on (user, provider, level, path, expiry) would otherwise
			// materialize to the same tag identity, so revoking one would
			// revoke both (hand-built scenarios, e.g. the golden matrix,
			// need them distinct).
			clientKey = clientKey.MustAppend(fmt.Sprintf("s%d", spec.Serial))
		}
		tag, err := core.IssueTag(signer, clientKey, spec.Level, ap, expiryOf(spec))
		if err != nil {
			return nil, err
		}
		// Warm the lazy encoding cache: the live plane shares tags
		// across concurrent per-request goroutines.
		tag.Encode()
		m.tags = append(m.tags, tag)
		if spec.Kind == TagRevoked {
			m.revoked = append(m.revoked, tag.ID())
		}
	}
	return m, nil
}
