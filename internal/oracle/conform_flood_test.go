package oracle

import (
	"strings"
	"testing"

	"github.com/tactic-icn/tactic/internal/core"
)

// TestFloodScenarioShape pins the reference model's prediction for a
// flood scenario: exactly Budget burst requests are admitted and denied
// "forged", the remainder are shed "overload" in request order, and
// every victim request is delivered.
func TestFloodScenarioShape(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		scn, err := GenerateFloodScenario(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		info, err := buildTopo(scn)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ref, err := RunReference(scn, info, Knobs{EdgeValidateOnMiss: true, AdmissionBudget: scn.Flood.Budget})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var forged, overload, delivered int
		seenOverload := false
		for _, o := range ref.Outcomes {
			switch o.Reason {
			case "forged":
				forged++
				if seenOverload {
					t.Fatalf("seed %d: admitted burst request after a shed one — order broken", seed)
				}
			case "overload":
				overload++
				seenOverload = true
			}
			if o.Delivered {
				delivered++
			}
		}
		if forged != scn.Flood.Budget {
			t.Errorf("seed %d: %d admitted, want budget %d", seed, forged, scn.Flood.Budget)
		}
		if overload == 0 {
			t.Errorf("seed %d: no sheds — burst does not overflow the budget", seed)
		}
		if victims := len(scn.Requests) - forged - overload; delivered != victims {
			t.Errorf("seed %d: %d delivered, want all %d victim requests", seed, delivered, victims)
		}
	}
}

// TestFloodConformance is the flood gate: the seeded verify-flood
// scenarios must replay divergence-free across the reference model,
// the sim plane, and the live plane.
func TestFloodConformance(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rep, err := RunFloodSeed(seed, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Diverged() {
			t.Fatalf("seed %d diverged:\n%v\n%s", seed, rep.Divergences, rep.Scenario)
		}
	}
}

// TestFloodCatchesUncappedPlane injects the "forgot to cap one path"
// bug — DisableAdmission on exactly one plane — and asserts the
// harness reports it and Minimize shrinks the reproduction.
func TestFloodCatchesUncappedPlane(t *testing.T) {
	cases := []struct {
		name  string
		opts  Options
		plane string
	}{
		{"live", Options{LiveTactic: core.Config{DisableAdmission: true}}, "reason(live)"},
		{"sim", Options{SimTactic: core.Config{DisableAdmission: true}}, "reason(sim)"},
		{"oracle", Options{Knobs: Knobs{DisableAdmission: true}}, "reason("},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := RunFloodSeed(1, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Diverged() {
				t.Fatal("uncapped plane not caught")
			}
			found := false
			for _, d := range rep.Divergences {
				if strings.Contains(d.Field, tc.plane) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no %s divergence in %v", tc.plane, rep.Divergences)
			}
			min, minRep, err := Minimize(rep.Scenario, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if !minRep.Diverged() {
				t.Fatal("minimized scenario no longer diverges")
			}
			if len(min.Requests) >= len(rep.Scenario.Requests) {
				t.Errorf("minimize made no progress: %d -> %d requests",
					len(rep.Scenario.Requests), len(min.Requests))
			}
			t.Logf("minimized to %d requests (from %d)", len(min.Requests), len(rep.Scenario.Requests))
		})
	}
}
