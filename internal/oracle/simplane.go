package oracle

import (
	"fmt"
	"sort"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/ndn"
	"github.com/tactic-icn/tactic/internal/network"
	"github.com/tactic-icn/tactic/internal/sim"
)

// PlaneOutcome is what one plane's client observed for one request.
type PlaneOutcome struct {
	// Delivered reports content reached the client.
	Delivered bool
	// Nacked reports an explicit NACK reached the client; Delivered and
	// Nacked both false means the request timed out silently.
	Nacked bool
	// Reason is the denial label when the plane preserves it (the sim
	// plane passes errors in-process; the live TLV codec does not carry
	// them, so live reasons are always "").
	Reason string
}

// PlaneResult is one plane's full observation of a scenario.
type PlaneResult struct {
	Outcomes []PlaneOutcome
	// CS maps router ID -> sorted content name keys cached there.
	CS map[string][]string
}

// Sim-plane timing: steps are StepGap apart on the virtual clock, and
// both the AP pending records and the router PIT lifetime are shorter
// than the gap, so nothing pending survives into the next step — the
// property that lets the oracle treat steps as independent.
const (
	simStepGap     = 5 * time.Second
	simAPLifetime  = 2 * time.Second
	simPITLifetime = 2 * time.Second
)

// floodSimDelays is the deterministic delay model flood scenarios
// charge: σ = 0 everywhere (samples are exactly the mean), and a
// signature verification costs 200 ms of virtual time — orders of
// magnitude above the burst's per-packet link serialisation (~216 µs
// for a tag-bearing Interest on the 10 Mbps edge link) and far below
// the 5 s step gap, so burst verifications pile up against the budget
// within the step and fully drain before the next one.
func floodSimDelays() sim.OpDelays {
	return sim.OpDelays{
		BFLookup:  sim.NormalDelay{Mean: time.Microsecond},
		BFInsert:  sim.NormalDelay{Mean: time.Microsecond},
		SigVerify: sim.NormalDelay{Mean: 200 * time.Millisecond},
	}
}

// simExpiry places a tag spec's T_e on the sim plane's virtual clock.
func simExpiry(scn *Scenario, t TagSpec) time.Time {
	switch t.Kind {
	case TagPreExpired:
		return sim.Epoch.Add(-time.Second)
	case TagMidRun:
		// Strictly between the last pre-boundary step and the boundary
		// step (link latencies are milliseconds, far from the margin).
		return sim.Epoch.Add(time.Duration(scn.Boundary)*simStepGap - simStepGap/2)
	}
	return sim.Epoch.Add(1000 * time.Hour)
}

// simClient is a consumer endpoint: it records what comes back for the
// harness. Matching is FIFO per (name, tag) within the current step
// only — silently denied requests from earlier steps must never absorb
// a later delivery.
type simClient struct {
	h    *simHarness
	user int
}

func (c *simClient) HandleInterest(i *ndn.Interest, from ndn.FaceID) {}

func (c *simClient) HandleData(d *ndn.Data, from ndn.FaceID) {
	c.h.onClientData(c.user, d)
}

// simOpen is one outstanding request at a sim client.
type simOpen struct {
	req     int
	nameKey string
	tagKey  string
}

type simHarness struct {
	outcomes []PlaneOutcome
	open     map[int][]simOpen // user -> outstanding, current step only
}

func (h *simHarness) onClientData(user int, d *ndn.Data) {
	wantTag := ""
	if d.Tag != nil {
		wantTag = string(d.Tag.CacheKey())
	}
	nameKey := d.Name.Key()
	for i, o := range h.open[user] {
		if o.nameKey != nameKey || o.tagKey != wantTag {
			continue
		}
		h.open[user] = append(h.open[user][:i], h.open[user][i+1:]...)
		out := &h.outcomes[o.req]
		if d.Nack {
			out.Nacked = true
			out.Reason = core.ReasonLabel(d.NackReason)
		} else if d.Content != nil {
			out.Delivered = true
		}
		return
	}
	// Unmatched data (e.g. a duplicate delivery): ignore.
}

// RunSim replays a scenario on the discrete-event plane
// (internal/network routers driven by internal/sim) and reports what
// each client observed plus the routers' end-state content stores.
func RunSim(scn *Scenario, info *topoInfo, tactic core.Config) (*PlaneResult, error) {
	mat, err := buildMaterial(scn, info,
		func(t TagSpec) time.Time { return simExpiry(scn, t) },
		func(edgePos int) core.AccessPath {
			return core.EmptyAccessPath.Accumulate(info.apID[edgePos])
		})
	if err != nil {
		return nil, err
	}

	engine := sim.NewEngine()
	streams := sim.NewStreams(scn.Seed)
	net := network.New(engine, info.g, streams)

	rcfg := network.RouterConfig{
		BFCapacity:  500,
		BFMaxFPP:    1e-4,
		CSCapacity:  1024,
		PITLifetime: simPITLifetime,
		Tactic:      tactic,
	}
	if scn.Flood != nil {
		// The flood burst needs verifications to *occupy* virtual time,
		// or the per-face outstanding-verify mirror of the admission
		// budget would drain between the burst's serialized arrivals.
		// A fixed zero-σ verify delay far above the burst's total wire
		// time plays the role the gated verifier plays on the live
		// plane: every burst verification is still outstanding when the
		// last burst Interest arrives, deterministically.
		rcfg.VerifyBudget = scn.Flood.Budget
		net.ChargeDelays = true
		net.Delays = floodSimDelays()
	}
	routers := make(map[int]*network.RouterNode)
	for _, idx := range info.cores {
		r, err := network.NewRouterNode(net, idx, false, mat.registry, streams.Stream(info.nodeID(idx)), rcfg)
		if err != nil {
			return nil, err
		}
		net.SetNode(idx, r)
		routers[idx] = r
	}
	for _, idx := range info.edges {
		r, err := network.NewRouterNode(net, idx, true, mat.registry, streams.Stream(info.nodeID(idx)), rcfg)
		if err != nil {
			return nil, err
		}
		net.SetNode(idx, r)
		routers[idx] = r
	}
	for p, idx := range info.providers {
		node, err := network.NewProviderNode(net, idx, mat.providers[p], mat.registry, streams.Stream(info.nodeID(idx)), rcfg)
		if err != nil {
			return nil, err
		}
		for ci, c := range scn.Contents {
			if c.Provider == p {
				node.AddContent(mat.contents[ci])
			}
		}
		net.SetNode(idx, node)
	}
	for _, idx := range info.aps {
		net.SetNode(idx, network.NewAPNode(net, idx, simAPLifetime))
	}
	// Routes: every router follows the provider's BFS tree.
	for p := range info.providers {
		prefix := info.provPrefix(p)
		for idx, r := range routers {
			next := info.parent[p][idx]
			if next < 0 {
				continue
			}
			r.FIB().Insert(prefix, net.FaceToward(idx, next))
		}
	}

	// Seed the scenario's revocation set everywhere before any request —
	// the simulated equivalent of the issuance service's CtrlRevoke push
	// having flooded the deployment. The set is populated even when the
	// plane under test disables the revocation *check*: the injected bug
	// is "forgot to consult the set", not "never received the push".
	if len(mat.revoked) > 0 {
		net.PushRevocation(1, true, mat.revoked)
	}

	h := &simHarness{
		outcomes: make([]PlaneOutcome, len(scn.Requests)),
		open:     make(map[int][]simOpen),
	}
	for u, idx := range info.users {
		net.SetNode(idx, &simClient{h: h, user: u})
	}

	// Schedule the workload: a step-start event (clearing the previous
	// step's dead outstanding records) followed by that step's
	// injections, all at the step instant; engine FIFO keeps the order.
	nonce := uint64(0)
	step := -1
	for ri := range scn.Requests {
		r := scn.Requests[ri]
		at := sim.Epoch.Add(time.Duration(r.Step) * simStepGap)
		if r.Step != step {
			step = r.Step
			engine.ScheduleAt(at, func() {
				for u := range h.open {
					delete(h.open, u)
				}
			})
		}
		ri := ri
		nonce++
		n := nonce
		engine.ScheduleAt(at, func() {
			var tag *core.Tag
			tagKey := ""
			if r.Tag >= 0 {
				tag = mat.tags[r.Tag]
				tagKey = string(tag.CacheKey())
			}
			name := info.contentName(scn, r.Content)
			h.open[r.User] = append(h.open[r.User], simOpen{req: ri, nameKey: name.Key(), tagKey: tagKey})
			i := &ndn.Interest{Name: name, Kind: ndn.KindContent, Nonce: n, Tag: tag}
			net.SendInterest(info.users[r.User], 0, i, 0)
		})
	}
	engine.Run()

	res := &PlaneResult{Outcomes: h.outcomes, CS: make(map[string][]string)}
	for idx, r := range routers {
		names := r.CSNames()
		sort.Strings(names)
		res.CS[info.nodeID(idx)] = names
	}
	if len(res.CS) != len(info.cores)+len(info.edges) {
		return nil, fmt.Errorf("oracle: sim plane lost a router")
	}
	return res, nil
}
