package oracle

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/topology"
)

// TestConformanceSeeds replays generated scenarios against the oracle
// and both planes and requires zero divergences.
func TestConformanceSeeds(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rep, err := RunSeed(seed, Options{})
			if err != nil {
				t.Fatalf("RunSeed(%d): %v", seed, err)
			}
			if rep.Diverged() {
				for _, d := range rep.Divergences {
					t.Errorf("seed %d: %s", seed, d)
				}
				t.Fatalf("scenario:\n%s", rep.Scenario)
			}
		})
	}
}

// handScenario builds a hand-authored single-edge scenario (every user
// shares the one edge router, so same-(step,name) requests share a PIT
// entry) and fixes up tag HomeEdge bindings to the requesters' edge.
func handScenario(t *testing.T, contents []ContentSpec, tags []TagSpec, reqs []RequestSpec) (*Scenario, *topoInfo) {
	t.Helper()
	steps := 1
	for _, r := range reqs {
		if r.Step+1 > steps {
			steps = r.Step + 1
		}
	}
	scn := &Scenario{
		Seed:     999,
		Topo:     topology.Config{CoreRouters: 2, EdgeRouters: 1, Providers: 1, Clients: 2, AttachDegree: 2, Seed: 999},
		Steps:    steps,
		Contents: contents,
		Tags:     tags,
		Requests: reqs,
	}
	info, err := buildTopo(scn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range scn.Tags {
		scn.Tags[i].HomeEdge = info.userEdge[scn.Tags[i].User]
	}
	return scn, info
}

// TestNACKAlongsideDataSim pins the paper's §5.B trade-off on the sim
// plane (and the oracle): an upstream NACK for a forged primary tag
// carries the content alongside, so a valid requester aggregated in
// the same PIT entry is still served. The generator deliberately never
// schedules this combination (on the live plane the verdict is
// aggregation-timing-dependent — covered deterministically by
// internal/forwarder's TestNACKAlongsideDataLive); the sim plane is
// sequential, so a hand-built scenario is well-defined there.
func TestNACKAlongsideDataSim(t *testing.T) {
	scn, info := handScenario(t,
		[]ContentSpec{{Provider: 0, Object: "sec", Level: 1}},
		[]TagSpec{
			{User: 0, Provider: 0, Level: 2, Kind: TagForged},
			{User: 1, Provider: 0, Level: 2, Kind: TagValid},
		},
		[]RequestSpec{
			{Step: 0, User: 0, Content: 0, Tag: 0}, // forged primary
			{Step: 0, User: 1, Content: 0, Tag: 1}, // valid aggregated member
		})

	ref, err := RunReference(scn, info, Knobs{})
	if err != nil {
		t.Fatal(err)
	}
	if out := ref.Outcomes[0]; out.Delivered || out.Stage != StageContent || out.Reason != "forged" {
		t.Fatalf("forged primary outcome = %+v, want content-stage forged denial", out)
	}
	if out := ref.Outcomes[1]; !out.Delivered {
		t.Fatalf("valid aggregated member outcome = %+v, want delivered", out)
	}

	rep, err := RunScenario(scn, Options{SkipLive: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Divergences {
		t.Errorf("sim diverged from oracle: %s", d)
	}
}

// TestRefSetFPInjection drives the oracle's false-positive knob through
// TACTIC's unvalidated-insert hole: a forged tag riding a Public
// delivery enters the edge set without any validation, so a later
// private request is vouched for (flag F) and — with FPRate 0, i.e.
// the re-check never firing — served. The sim plane shares the hole
// (zero divergences), and raising FPRate to 1 makes the oracle's
// re-check fire and catch the forgery.
func TestRefSetFPInjection(t *testing.T) {
	scn, info := handScenario(t,
		[]ContentSpec{
			{Provider: 0, Object: "open", Level: core.Public},
			{Provider: 0, Object: "sec", Level: 1},
		},
		[]TagSpec{{User: 0, Provider: 0, Level: 2, Kind: TagForged}},
		[]RequestSpec{
			{Step: 0, User: 0, Content: 0, Tag: 0}, // Public: bypass + unvalidated edge insert
			{Step: 1, User: 0, Content: 1, Tag: 0}, // private: vouched by the poisoned set
		})

	ref, err := RunReference(scn, info, Knobs{})
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Outcomes[0].Delivered || !ref.Outcomes[1].Delivered {
		t.Fatalf("FPRate 0 outcomes = %+v, want both delivered (the unvalidated-insert hole)", ref.Outcomes)
	}
	rep, err := RunScenario(scn, Options{SkipLive: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Divergences {
		t.Errorf("sim does not share the unvalidated-insert hole: %s", d)
	}

	ref, err = RunReference(scn, info, Knobs{FPRate: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if out := ref.Outcomes[1]; out.Delivered || out.Reason != "forged" {
		t.Fatalf("FPRate 1 outcome = %+v, want forged caught by the re-check", out)
	}
}

// TestInjectedBugCaught is the harness's own acceptance test: disabling
// Protocol 1's pre-check in the sim plane must produce a divergence the
// gate reports with a replayable seed, the same seed must be clean
// under vanilla semantics, and minimization must preserve the
// divergence while only ever shrinking the scenario.
func TestInjectedBugCaught(t *testing.T) {
	bugged := Options{SimTactic: core.Config{DisablePrecheck: true}, SkipLive: true}
	var caught *Report
	var seed int64
	for s := int64(1); s <= 20 && caught == nil; s++ {
		rep, err := RunSeed(s, bugged)
		if err != nil {
			t.Fatalf("RunSeed(%d): %v", s, err)
		}
		if rep.Diverged() {
			caught, seed = rep, s
		}
	}
	if caught == nil {
		t.Fatal("pre-check disabled in the sim plane, yet 20 seeds produced no divergence")
	}
	t.Logf("seed %d caught the injected bug: %s", seed, caught.Divergences[0])

	// Replayable: the reported seed reproduces the divergence…
	again, err := RunSeed(seed, bugged)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Diverged() {
		t.Fatalf("seed %d did not reproduce the divergence", seed)
	}
	// …and is clean without the injected bug.
	clean, err := RunSeed(seed, Options{SkipLive: true})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Diverged() {
		t.Fatalf("seed %d diverges even without the bug: %v", seed, clean.Divergences)
	}

	min, minRep, err := Minimize(caught.Scenario, bugged)
	if err != nil {
		t.Fatal(err)
	}
	if !minRep.Diverged() {
		t.Fatal("minimized scenario no longer diverges")
	}
	if len(min.Requests) > len(caught.Scenario.Requests) {
		t.Fatalf("minimization grew the scenario: %d -> %d requests", len(caught.Scenario.Requests), len(min.Requests))
	}
	t.Logf("minimized %d requests to %d", len(caught.Scenario.Requests), len(min.Requests))
}

// TestInjectedBugSymmetry: detection works in both directions — a seed
// whose scenario catches a pre-check bug injected into the sim plane
// also catches the mirrored bug injected into the oracle's knobs, and
// vice versa. (The two *bugged* implementations are not required to
// agree with each other: disabling pre-checks lets expired tags reach
// PIT aggregation, whose timing-dependent outcomes the per-request
// oracle model deliberately does not chase.)
func TestInjectedBugSymmetry(t *testing.T) {
	buggedKnobs := Knobs{DisableEdgePrecheck: true, DisableContentPrecheck: true}
	caughtEither := false
	for s := int64(1); s <= 8; s++ {
		simBug, err := RunSeed(s, Options{SimTactic: core.Config{DisablePrecheck: true}, SkipLive: true})
		if err != nil {
			t.Fatalf("RunSeed(%d): %v", s, err)
		}
		oracleBug, err := RunSeed(s, Options{Knobs: buggedKnobs, SkipLive: true})
		if err != nil {
			t.Fatalf("RunSeed(%d): %v", s, err)
		}
		if simBug.Diverged() != oracleBug.Diverged() {
			t.Errorf("seed %d: asymmetric detection: bugged-sim diverged=%t, bugged-oracle diverged=%t",
				s, simBug.Diverged(), oracleBug.Diverged())
		}
		caughtEither = caughtEither || simBug.Diverged()
	}
	if !caughtEither {
		t.Error("no seed in 1..8 exercised the pre-check at all")
	}
}

// TestHarnessDeterminism: the same seed and options yield bit-identical
// scenarios and reports — the property that makes a reported seed a
// reproduction recipe.
func TestHarnessDeterminism(t *testing.T) {
	a, err := RunSeed(3, Options{SkipLive: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSeed(3, Options{SkipLive: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Scenario.String() != b.Scenario.String() {
		t.Error("GenerateScenario is not deterministic for a fixed seed")
	}
	if !reflect.DeepEqual(a.Divergences, b.Divergences) {
		t.Error("RunScenario reports differ across identical runs")
	}
}

// TestRevokedReference pins the revoked threat class end to end on the
// oracle and the sim plane: a correctly signed, unexpired tag whose ID
// is in the pushed revocation set is denied at the edge with reason
// "revoked", while its neighbour's valid tag is served — and bugging
// the oracle's revocation knob together with the plane's restores
// agreement (the mirrored-bug symmetry the harness is built on).
func TestRevokedReference(t *testing.T) {
	scn, info := handScenario(t,
		[]ContentSpec{{Provider: 0, Object: "sec", Level: 1}},
		[]TagSpec{
			{User: 0, Provider: 0, Level: 2, Kind: TagRevoked},
			{User: 1, Provider: 0, Level: 2, Kind: TagValid},
		},
		[]RequestSpec{
			{Step: 0, User: 0, Content: 0, Tag: 0},
			{Step: 1, User: 1, Content: 0, Tag: 1},
		})

	ref, err := RunReference(scn, info, Knobs{})
	if err != nil {
		t.Fatal(err)
	}
	if out := ref.Outcomes[0]; out.Delivered || out.Stage != StageEdgeInterest || out.Reason != "revoked" {
		t.Fatalf("revoked outcome = %+v, want edge-interest revoked denial", out)
	}
	if out := ref.Outcomes[1]; !out.Delivered {
		t.Fatalf("valid neighbour outcome = %+v, want delivered", out)
	}
	rep, err := RunScenario(scn, Options{SkipLive: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Divergences {
		t.Errorf("sim diverged from oracle: %s", d)
	}

	// Mirror the bug on both sides: the revoked tag is honoured
	// everywhere, and the planes still agree.
	ref, err = RunReference(scn, info, Knobs{DisableRevocationCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if out := ref.Outcomes[0]; !out.Delivered {
		t.Fatalf("bugged-oracle revoked outcome = %+v, want delivered (expiry-only behaviour)", out)
	}
	rep, err = RunScenario(scn, Options{
		SimTactic: core.Config{DisableRevocationCheck: true},
		Knobs:     Knobs{DisableRevocationCheck: true},
		SkipLive:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Divergences {
		t.Errorf("mirrored revocation bug still diverged: %s", d)
	}
}

// TestRoamingReference pins the roaming threat class: on a two-edge
// topology, a tag bound to the *other* edge is denied (access_path)
// unless it carries the roaming wildcard, in which case it is served —
// on the oracle and the sim plane identically.
func TestRoamingReference(t *testing.T) {
	scn := &Scenario{
		Seed:     998,
		Topo:     topology.Config{CoreRouters: 2, EdgeRouters: 2, Providers: 1, Clients: 2, AttachDegree: 2, Seed: 998},
		Steps:    2,
		Contents: []ContentSpec{{Provider: 0, Object: "sec", Level: 1}},
		Tags: []TagSpec{
			{User: 0, Provider: 0, Level: 2, Kind: TagRoaming},
			{User: 0, Provider: 0, Level: 2, Kind: TagValid},
		},
		Requests: []RequestSpec{
			{Step: 0, User: 0, Content: 0, Tag: 0},
			{Step: 1, User: 0, Content: 0, Tag: 1},
		},
	}
	info, err := buildTopo(scn)
	if err != nil {
		t.Fatal(err)
	}
	away := (info.userEdge[0] + 1) % len(info.edges)
	scn.Tags[0].HomeEdge = away
	scn.Tags[1].HomeEdge = away

	ref, err := RunReference(scn, info, Knobs{})
	if err != nil {
		t.Fatal(err)
	}
	if out := ref.Outcomes[0]; !out.Delivered {
		t.Fatalf("roaming outcome = %+v, want delivered via the wildcard", out)
	}
	if out := ref.Outcomes[1]; out.Delivered || out.Reason != "access_path" {
		t.Fatalf("wrong-edge non-roaming outcome = %+v, want access_path denial", out)
	}
	rep, err := RunScenario(scn, Options{SkipLive: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Divergences {
		t.Errorf("sim diverged from oracle: %s", d)
	}
}

// TestInjectedRevocationBugCaught is the lifecycle tentpole's
// differential acceptance test: forgetting the revocation pre-check in
// the sim plane (core.Config.DisableRevocationCheck — exactly the bug
// of consulting only T_e) must produce a divergence with a replayable
// seed that is clean under correct semantics, and detection must be
// symmetric when the mirrored bug is injected into the oracle instead.
func TestInjectedRevocationBugCaught(t *testing.T) {
	bugged := Options{SimTactic: core.Config{DisableRevocationCheck: true}, SkipLive: true}
	var caught *Report
	var seed int64
	for s := int64(1); s <= 20 && caught == nil; s++ {
		rep, err := RunSeed(s, bugged)
		if err != nil {
			t.Fatalf("RunSeed(%d): %v", s, err)
		}
		if rep.Diverged() {
			caught, seed = rep, s
		}
	}
	if caught == nil {
		t.Fatal("revocation check disabled in the sim plane, yet 20 seeds produced no divergence")
	}
	t.Logf("seed %d caught the forgotten revocation pre-check: %s", seed, caught.Divergences[0])

	again, err := RunSeed(seed, bugged)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Diverged() {
		t.Fatalf("seed %d did not reproduce the divergence", seed)
	}
	clean, err := RunSeed(seed, Options{SkipLive: true})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Diverged() {
		t.Fatalf("seed %d diverges even without the bug: %v", seed, clean.Divergences)
	}

	// Mirrored injection: bugging the oracle's knob on the same seed
	// diverges from the correct sim plane just as the bugged sim plane
	// diverged from the correct oracle.
	mirrored, err := RunSeed(seed, Options{Knobs: Knobs{DisableRevocationCheck: true}, SkipLive: true})
	if err != nil {
		t.Fatal(err)
	}
	if !mirrored.Diverged() {
		t.Fatalf("seed %d: bugged oracle did not diverge from the correct sim plane", seed)
	}

	min, minRep, err := Minimize(caught.Scenario, bugged)
	if err != nil {
		t.Fatal(err)
	}
	if !minRep.Diverged() {
		t.Fatal("minimized scenario no longer diverges")
	}
	if len(min.Requests) > len(caught.Scenario.Requests) {
		t.Fatalf("minimization grew the scenario: %d -> %d requests", len(caught.Scenario.Requests), len(min.Requests))
	}
	t.Logf("minimized %d requests to %d", len(caught.Scenario.Requests), len(min.Requests))
}

// TestInjectedLiveBugCaught injects the pre-check bug into the live
// plane only and requires the gate to catch it — via verdicts where the
// bug flips a delivery, and via content-store end state where the
// verdict happens to survive (an expired tag denied upstream instead of
// at the edge still drags the content across the path).
func TestInjectedLiveBugCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("live plane in -short")
	}
	bugged := Options{LiveTactic: core.Config{DisablePrecheck: true}}
	for s := int64(1); s <= 4; s++ {
		rep, err := RunSeed(s, bugged)
		if err != nil {
			t.Fatalf("RunSeed(%d): %v", s, err)
		}
		if rep.Diverged() {
			t.Logf("seed %d caught the live-plane bug: %s", s, rep.Divergences[0])
			return
		}
	}
	t.Fatal("pre-check disabled in the live plane, yet 4 seeds produced no divergence")
}

// TestInjectedRevocationLiveBugCaught injects the forgotten revocation
// pre-check into the live plane only: the concurrent forwarder pipeline
// then honours a pushed-revoked tag until T_e, and the differential
// gate must report it with a replayable seed.
func TestInjectedRevocationLiveBugCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("live plane in -short")
	}
	bugged := Options{LiveTactic: core.Config{DisableRevocationCheck: true}}
	for s := int64(1); s <= 6; s++ {
		rep, err := RunSeed(s, bugged)
		if err != nil {
			t.Fatalf("RunSeed(%d): %v", s, err)
		}
		if rep.Diverged() {
			t.Logf("seed %d caught the live-plane revocation bug: %s", s, rep.Divergences[0])
			// Replayable: the same seed is clean without the bug.
			clean, err := RunSeed(s, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if clean.Diverged() {
				t.Fatalf("seed %d diverges even without the bug: %v", s, clean.Divergences)
			}
			return
		}
	}
	t.Fatal("revocation check disabled in the live plane, yet 6 seeds produced no divergence")
}
