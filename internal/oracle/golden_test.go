package oracle

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/topology"
)

// This file replays the committed golden verdict matrix
// (internal/enforce/testdata/verdict_matrix.json) end to end: each
// interest-path row becomes one request of a hand-built scenario, the
// reference model's per-request outcome is asserted against the golden
// cell, and RunScenario then pins the sim and live planes to the same
// verdicts (zero divergences). Together with internal/enforce's
// engine-level replay, the matrix is enforced on all three harnesses.

type goldenExpect struct {
	Delivered bool   `json:"delivered"`
	Stage     string `json:"stage"`
	Reason    string `json:"reason"`
}

type goldenCase struct {
	Name   string       `json:"name"`
	Threat string       `json:"threat"`
	Path   string       `json:"path"`
	Config string       `json:"config"`
	Tactic goldenExpect `json:"tactic"`
	IBAC   goldenExpect `json:"ibac"`
}

func (c goldenCase) expect(s core.Scheme) goldenExpect {
	if s == core.SchemeIBAC {
		return c.IBAC
	}
	return c.Tactic
}

func loadGoldenMatrix(t testing.TB) []goldenCase {
	t.Helper()
	raw, err := os.ReadFile("../enforce/testdata/verdict_matrix.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Cases []goldenCase `json:"cases"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Cases) == 0 {
		t.Fatal("empty golden matrix")
	}
	return doc.Cases
}

// goldenScenario lays the matrix's end-to-end rows out as one scenario:
// a 2-edge topology, one client, and one request per row — each on its
// own step so verdicts cannot interact through PIT aggregation.
func goldenScenario(t testing.TB, cases []goldenCase) (*Scenario, []goldenCase) {
	t.Helper()
	scn := &Scenario{
		Seed: 424242,
		Topo: topology.Config{
			CoreRouters: 2, EdgeRouters: 2, Providers: 2,
			Clients: 1, Attackers: 0, AttachDegree: 2, Seed: 424242,
		},
	}
	info, err := buildTopo(scn)
	if err != nil {
		t.Fatal(err)
	}
	home := info.userEdge[0]
	away := (home + 1) % len(info.edges)
	scn.Contents = []ContentSpec{
		{Provider: 0, Object: "o0", Level: core.AccessLevel(2)},
		{Provider: 0, Object: "opub", Level: core.Public},
	}

	var picked []goldenCase
	for _, tc := range cases {
		if tc.Path != "interest" || tc.Threat == "flood-shed" {
			continue
		}
		// Distinct serials keep same-shaped rows (e.g. valid vs revoked)
		// from materializing to the same tag identity.
		spec := TagSpec{User: 0, Provider: 0, Level: core.AccessLevel(2), Kind: TagValid, HomeEdge: home, Serial: len(picked) + 1}
		content, tagged := 0, true
		switch tc.Threat {
		case "valid":
		case "forged":
			spec.Kind = TagForged
		case "expired":
			spec.Kind = TagPreExpired
		case "wrong-level":
			spec.Level = core.AccessLevel(1)
		case "wrong-provider":
			spec.Provider = 1
		case "borrowed":
			spec.HomeEdge = away
		case "revoked":
			spec.Kind = TagRevoked
		case "roaming":
			spec.Kind = TagRoaming
			spec.HomeEdge = away
		case "tagless-private":
			tagged = false
		case "tagless-public":
			tagged, content = false, 1
		default:
			t.Fatalf("golden case %s: no scenario mapping for threat %q", tc.Name, tc.Threat)
		}
		step := len(picked)
		tag := -1
		if tagged {
			tag = len(scn.Tags)
			scn.Tags = append(scn.Tags, spec)
		}
		scn.Requests = append(scn.Requests, RequestSpec{Step: step, User: 0, Content: content, Tag: tag})
		picked = append(picked, tc)
	}
	scn.Steps = len(picked)
	return scn, picked
}

func assertGoldenOutcome(t *testing.T, name string, out RefOutcome, want goldenExpect) {
	t.Helper()
	if out.Delivered != want.Delivered {
		t.Errorf("%s: delivered=%t, want %t", name, out.Delivered, want.Delivered)
		return
	}
	if want.Delivered {
		if out.Stage != StageDelivered {
			t.Errorf("%s: stage=%s, want delivered", name, out.Stage)
		}
		return
	}
	if out.Stage.String() != want.Stage || out.Reason != want.Reason {
		t.Errorf("%s: denied at (%s, %s), want (%s, %s)",
			name, out.Stage, out.Reason, want.Stage, want.Reason)
	}
}

// TestGoldenMatrixEndToEnd checks the matrix's interest rows against
// the reference model and then replays the same scenario through the
// sim and live planes, requiring full agreement.
func TestGoldenMatrixEndToEnd(t *testing.T) {
	cases := loadGoldenMatrix(t)
	for _, scheme := range []core.Scheme{core.SchemeTACTIC, core.SchemeIBAC} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			scn, picked := goldenScenario(t, cases)
			info, err := buildTopo(scn)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := RunReference(scn, info, Knobs{Scheme: scheme})
			if err != nil {
				t.Fatal(err)
			}
			for i, tc := range picked {
				assertGoldenOutcome(t, tc.Name, ref.Outcomes[i], tc.expect(scheme))
			}
			rep, err := RunScenario(scn, Options{Scheme: scheme})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range rep.Divergences {
				t.Errorf("plane divergence: %s", d)
			}
		})
	}
}

// TestGoldenFloodShedEndToEnd covers the matrix's flood-shed row on the
// planes: a budget-overflowing verify burst must shed exactly the
// over-budget tail with the golden (stage, reason) in the reference
// model, and both planes must agree.
func TestGoldenFloodShedEndToEnd(t *testing.T) {
	cases := loadGoldenMatrix(t)
	var row *goldenCase
	for i := range cases {
		if cases[i].Threat == "flood-shed" && cases[i].Path == "interest" {
			row = &cases[i]
			break
		}
	}
	if row == nil {
		t.Fatal("matrix has no interest/flood-shed row")
	}
	for _, scheme := range []core.Scheme{core.SchemeTACTIC, core.SchemeIBAC} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			scn, err := GenerateFloodScenario(7)
			if err != nil {
				t.Fatal(err)
			}
			info, err := buildTopo(scn)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := RunReference(scn, info, Knobs{
				Scheme: scheme, EdgeValidateOnMiss: true, AdmissionBudget: scn.Flood.Budget,
			})
			if err != nil {
				t.Fatal(err)
			}
			want := row.expect(scheme)
			shed := 0
			for i, r := range scn.Requests {
				if r.Step != scn.Flood.Step {
					continue
				}
				out := ref.Outcomes[i]
				if out.Reason != "overload" {
					continue
				}
				shed++
				assertGoldenOutcome(t, fmt.Sprintf("%s[req %d]", row.Name, i), out, want)
			}
			burst := 0
			for _, r := range scn.Requests {
				if r.Step == scn.Flood.Step {
					burst++
				}
			}
			if wantShed := burst - scn.Flood.Budget; shed != wantShed {
				t.Errorf("shed %d of %d burst requests, want %d", shed, burst, wantShed)
			}
			rep, err := RunScenario(scn, Options{Scheme: scheme})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range rep.Divergences {
				t.Errorf("plane divergence: %s", d)
			}
		})
	}
}
