package oracle

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/tactic-icn/tactic/internal/core"
)

// RefSet is the reference model's stand-in for a router's Bloom filter:
// an exact set of validated tag keys with an explicit false-positive
// injection knob. At the scenario scale the real planes' filters
// (capacity 500, max FPP 1e-4) hold a handful of tags, so their
// false-positive probability is astronomically small and they behave as
// exact sets — which is what makes a deterministic oracle possible. The
// FPRate knob lets tests reintroduce false positives on demand to
// exercise the paper's collaborative-verification machinery (flag F)
// inside the oracle alone.
type RefSet struct {
	members map[string]bool
	fpRate  float64
	rng     *rand.Rand
}

func newRefSet(fpRate float64, rng *rand.Rand) *RefSet {
	return &RefSet{members: make(map[string]bool), fpRate: fpRate, rng: rng}
}

// Contains reports membership; with a nonzero FPRate it additionally
// returns true spuriously with that probability, like a Bloom filter
// would. The rng is only consulted when FPRate > 0, so the default
// model is rng-free and bit-for-bit deterministic.
func (s *RefSet) Contains(key string) bool {
	if s.members[key] {
		return true
	}
	return s.fpRate > 0 && s.rng.Float64() < s.fpRate
}

// Add records a validated tag key.
func (s *RefSet) Add(key string) { s.members[key] = true }

// FPP reports the set's configured false-positive rate — the value the
// edge would carry upstream as flag F.
func (s *RefSet) FPP() float64 { return s.fpRate }

// Knobs parameterizes the reference model. The two Disable* knobs
// mirror core.Config.DisablePrecheck split per enforcement point; they
// exist so tests can verify the harness catches injected semantics bugs
// symmetrically (bugging the oracle must diverge from a correct plane
// exactly like bugging a plane diverges from the correct oracle).
type Knobs struct {
	// Scheme selects the enforcement backend the model mirrors:
	// core.SchemeTACTIC (default) or core.SchemeIBAC. Under IBAC the
	// validated-set keys bind (tag, name), the edge always settles a
	// miss itself, access-path binding is off, no router trusts a
	// downstream vouch (no flag-F re-check path), and the edge never
	// learns tags from the data path.
	Scheme core.Scheme
	// FPRate is the false-positive probability of every RefSet.
	FPRate float64
	// Seed drives the false-positive and re-check draws; only consulted
	// when FPRate > 0.
	Seed int64
	// DisableEdgePrecheck skips Protocol 1's edge half (prefix + expiry).
	DisableEdgePrecheck bool
	// DisableContentPrecheck skips Protocol 1's content half (level + key).
	DisableContentPrecheck bool
	// DisableRevocationCheck skips the pre-BF revocation-set lookup,
	// mirroring core.Config.DisableRevocationCheck: an explicitly
	// revoked tag then behaves like a valid one until its T_e.
	DisableRevocationCheck bool
	// EdgeValidateOnMiss mirrors core.Config.EdgeValidateOnMiss: the
	// edge settles a validated-set miss itself (signature check, then
	// set insert) instead of stamping F = 0 and deferring to the
	// content router. Flood scenarios run with it on — edge-side
	// verification is what the admission budget protects.
	EdgeValidateOnMiss bool
	// AdmissionBudget caps, per (step, edge), how many validated-set
	// misses are admitted into edge verification; the rest are denied
	// "overload" at StageEdgeInterest, in request order — the reference
	// mirror of the planes' per-face verify admission budgets. 0 means
	// unbounded (the DisableAdmission ablation).
	AdmissionBudget int
	// DisableAdmission removes the admission cap while the planes keep
	// theirs — the oracle-side "forgot to cap" injection, which must
	// diverge from correct planes exactly like an uncapped plane
	// diverges from the correct oracle.
	DisableAdmission bool
}

// Stage identifies where the enforcement pipeline settled a request.
type Stage int

const (
	// StageDelivered: content reached the client.
	StageDelivered Stage = iota
	// StageEdgeInterest: denied by the edge router at Interest time
	// (Protocol 2 line 2 / Protocol 1 edge half).
	StageEdgeInterest
	// StageContent: denied at the content resolution point (Protocol 3 /
	// Protocol 1 content half); a NACK — with the content alongside —
	// travels back toward the edge.
	StageContent
)

func (s Stage) String() string {
	switch s {
	case StageDelivered:
		return "delivered"
	case StageEdgeInterest:
		return "edge-interest"
	case StageContent:
		return "content"
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// RefOutcome is the oracle's verdict for one request.
type RefOutcome struct {
	// Request echoes the scenario request this verdict is for.
	Request RequestSpec
	// Delivered reports whether the client receives the content.
	Delivered bool
	// Stage says where a denied request was settled.
	Stage Stage
	// Reason is the core.ReasonLabel-style label for a denial ("" when
	// delivered).
	Reason string
	// Tagless marks a request sent without a tag.
	Tagless bool
	// ResolvedAtEdge reports the content was served (or denied) from the
	// edge router's own content store rather than upstream.
	ResolvedAtEdge bool
}

// SimNacked predicts whether the sim-plane client observes an explicit
// NACK. The sim edge sends NACKs for Interest-time denials and for
// denials settled against its own content store, but swallows NACK
// records arriving from upstream (the client times out instead).
func (o RefOutcome) SimNacked() bool {
	return o.Stage == StageEdgeInterest || (o.Stage == StageContent && o.ResolvedAtEdge)
}

// LiveNacked predicts whether the live-plane client observes an
// explicit NACK. The live edge converts every denial of a tagged
// request into an explicit NACK ("fail fast"); only tagless denials
// settled upstream stay silent.
func (o RefOutcome) LiveNacked() bool {
	return !o.Delivered && !(o.Tagless && !o.ResolvedAtEdge)
}

// RefResult is the oracle's full prediction for a scenario: per-request
// verdicts plus the end-of-run content-store contents of every router.
type RefResult struct {
	Outcomes []RefOutcome
	// CS maps router ID -> sorted content name keys cached there.
	CS map[string][]string
}

// RunReference replays a scenario against the naive reference model of
// the TACTIC enforcement state machine. It models each request
// independently on its edge→provider router path:
//
//   - Protocol 2 at the edge: Protocol 1 pre-check (prefix then expiry),
//     access-path binding, the pushed revocation set, then the
//     validated-tag set. A set hit marks the request "vouched" (flag
//     F > 0 in the real planes).
//   - Resolution at the first router whose content store held the name
//     at the start of the step (same-step fills are invisible, matching
//     both planes), else at the producer.
//   - Protocol 3 at the resolution point: Public bypass, tagless NACK,
//     Protocol 1 content half (level then key), then either the local
//     set / full validation (unvouched) or the probabilistic re-check
//     (vouched).
//   - Content — even alongside a NACK, the paper's §5.B trade-off —
//     caches at every router from the resolution point down to the edge.
//   - Protocol 2 on Data at the edge: NACKs are not delivered; a
//     delivery with flag 0 inserts the tag into the edge set, including
//     for Public content where nothing ever validated the tag (a real
//     TACTIC hole the conformance suite pins down).
//
// Per-request modeling is exact because the scenario generator never
// schedules requests whose *verdicts* could interact within a step:
// aggregation-variant combinations get exclusive (step, name) slots and
// each tag appears at most once per step. CS end state is
// order-independent by construction (see the package comment).
func RunReference(scn *Scenario, info *topoInfo, knobs Knobs) (*RefResult, error) {
	ibac := knobs.Scheme == core.SchemeIBAC
	// IBAC edges always settle a validated-set miss themselves — the
	// scheme has no downstream vouching to defer to.
	edgeValidates := knobs.EdgeValidateOnMiss || ibac
	rng := rand.New(rand.NewSource(knobs.Seed ^ 0x0ac1e))
	sets := make(map[string]*RefSet)
	setFor := func(id string) *RefSet {
		s, ok := sets[id]
		if !ok {
			s = newRefSet(knobs.FPRate, rng)
			sets[id] = s
		}
		return s
	}
	cs := make(map[string]map[string]bool)
	csInsert := func(router, name string) {
		m, ok := cs[router]
		if !ok {
			m = make(map[string]bool)
			cs[router] = m
		}
		m[name] = true
	}

	res := &RefResult{Outcomes: make([]RefOutcome, len(scn.Requests))}
	// admitted counts edge-verification admissions per (step, edge) for
	// the EdgeValidateOnMiss admission budget.
	admitted := make(map[[2]int]int)
	step := -1
	var csPrev map[string]map[string]bool
	for ri, r := range scn.Requests {
		if r.Step != step {
			// Snapshot the content stores at the step boundary: requests
			// resolve against pre-step state only.
			step = r.Step
			csPrev = make(map[string]map[string]bool, len(cs))
			for router, names := range cs {
				cp := make(map[string]bool, len(names))
				for n := range names {
					cp[n] = true
				}
				csPrev[router] = cp
			}
		}
		out := RefOutcome{Request: r, Tagless: r.Tag < 0}
		cSpec := scn.Contents[r.Content]
		edgePos := info.userEdge[r.User]
		name := info.contentName(scn, r.Content).Key()
		edgeSet := setFor(info.nodeID(info.edges[edgePos]))

		deny := func(stage Stage, reason string) {
			out.Stage, out.Reason = stage, reason
		}

		// --- Protocol 2 (edge, on Interest) --------------------------------
		vouched := false
		var tk string
		if r.Tag >= 0 {
			t := scn.Tags[r.Tag]
			tk = fmt.Sprintf("tag-%d", r.Tag)
			if ibac {
				// IBAC authorizes (token, name) pairs, not tokens.
				tk = fmt.Sprintf("tag-%d|%s", r.Tag, name)
			}
			if !knobs.DisableEdgePrecheck {
				if t.Provider != cSpec.Provider {
					deny(StageEdgeInterest, "prefix_mismatch")
				} else if tagExpiredAt(scn, t, r.Step) {
					deny(StageEdgeInterest, "expired")
				}
			}
			if out.Stage == StageDelivered && !ibac && t.Kind != TagRoaming && t.HomeEdge != edgePos {
				// Roaming tags carry the AccessPathAny wildcard, so the
				// binding check never fires for them. IBAC tokens are
				// location-independent: no binding check at all — the
				// scheme's borrowed-token gap.
				deny(StageEdgeInterest, "access_path")
			}
			if out.Stage == StageDelivered && t.Kind == TagRevoked && !knobs.DisableRevocationCheck {
				// The pushed revocation set is consulted before the
				// validated-tag set, so revocation wins even for a tag the
				// edge already vouches for. Content routers repeat the
				// check (core.Router does at every enforcement point), but
				// the edge always settles it first on this per-request
				// model.
				deny(StageEdgeInterest, "revoked")
			}
			if out.Stage == StageDelivered {
				vouched = edgeSet.Contains(tk)
			}
			if out.Stage == StageDelivered && !vouched && edgeValidates {
				// The edge settles the miss itself. Admission first: the
				// planes budget parked+in-flight verifications per face,
				// which this per-request model mirrors as a per
				// (step, edge) counter in request order — scenarios are
				// generated so the distinction cannot be observed (only
				// the flood burst exceeds the budget, and it arrives on
				// one face in request order).
				ek := [2]int{r.Step, edgePos}
				admitted[ek]++
				budget := knobs.AdmissionBudget
				if knobs.DisableAdmission {
					budget = 0
				}
				if budget > 0 && admitted[ek] > budget {
					deny(StageEdgeInterest, "overload")
				} else if t.Kind == TagForged || t.Kind == TagFlood {
					deny(StageEdgeInterest, "forged")
				} else if tagExpiredAt(scn, t, r.Step) {
					deny(StageEdgeInterest, "expired")
				} else {
					edgeSet.Add(tk)
					vouched = true
				}
			}
		}
		if out.Stage == StageEdgeInterest {
			res.Outcomes[ri] = out
			continue // nothing moves on an Interest-time denial
		}

		// --- resolution ----------------------------------------------------
		path, err := info.routerPath(edgePos, cSpec.Provider)
		if err != nil {
			return nil, err
		}
		resIdx := len(path) // producer
		for i, node := range path {
			if csPrev[info.nodeID(node)][name] {
				resIdx = i
				break
			}
		}
		out.ResolvedAtEdge = resIdx == 0
		var resSet *RefSet
		if resIdx == len(path) {
			resSet = setFor(info.nodeID(info.providers[cSpec.Provider]))
		} else {
			resSet = setFor(info.nodeID(path[resIdx]))
		}

		// --- Protocol 3 (+ Protocol 1 content half) at resolution ----------
		if cSpec.Level == core.Public {
			// Public bypass: serve, flag echoes.
		} else if r.Tag < 0 {
			deny(StageContent, "no_tag")
		} else {
			t := scn.Tags[r.Tag]
			if !knobs.DisableContentPrecheck {
				if !t.Level.Satisfies(cSpec.Level) {
					deny(StageContent, "level")
				} else if t.Provider != cSpec.Provider {
					deny(StageContent, "key_mismatch")
				}
			}
			if out.Stage == StageDelivered {
				if !vouched || ibac {
					// IBAC routers never trust a downstream vouch: the
					// resolution point always runs its own (token, name)
					// check, F = 0 on every wire.
					if !resSet.Contains(tk) {
						if tagExpiredAt(scn, t, r.Step) {
							deny(StageContent, "expired")
						} else if t.Kind == TagForged || t.Kind == TagFlood {
							deny(StageContent, "forged")
						} else {
							resSet.Add(tk)
						}
					}
				} else if knobs.FPRate > 0 && rng.Float64() < knobs.FPRate {
					// Probabilistic re-check of a vouched tag with
					// probability F (no insert on this path).
					if tagExpiredAt(scn, t, r.Step) {
						deny(StageContent, "expired")
					} else if t.Kind == TagForged || t.Kind == TagFlood {
						deny(StageContent, "forged")
					}
				}
			}
		}
		// --- content movement ----------------------------------------------
		// The resolution point was reached, so content (NACKed or not)
		// crosses and caches at every router below it.
		for i := 0; i < resIdx; i++ {
			csInsert(info.nodeID(path[i]), name)
		}

		// --- Protocol 2 (edge, on Data) ------------------------------------
		if out.Stage == StageDelivered {
			out.Delivered = true
			if r.Tag >= 0 && !vouched && !out.ResolvedAtEdge && !ibac {
				// Data arrived with flag 0: the edge learns the tag —
				// validated upstream for private content, or *unvalidated*
				// for Public content (TACTIC's unvalidated-insert hole).
				// IBAC has no data-path learning: authorization happened
				// at Interest time or not at all.
				edgeSet.Add(tk)
			}
		}
		res.Outcomes[ri] = out
	}

	res.CS = make(map[string][]string)
	for _, node := range append(append([]int(nil), info.cores...), info.edges...) {
		id := info.nodeID(node)
		names := make([]string, 0, len(cs[id]))
		for n := range cs[id] {
			names = append(names, n)
		}
		sort.Strings(names)
		res.CS[id] = names
	}
	return res, nil
}

// tagExpiredAt reports the scenario ground truth for whether a tag is
// expired at a given step; each plane's buildMaterial places concrete
// expiry instants realising exactly this table on its own clock.
func tagExpiredAt(scn *Scenario, t TagSpec, step int) bool {
	switch t.Kind {
	case TagPreExpired:
		return true
	case TagMidRun:
		return step >= scn.Boundary
	}
	return false
}
