// Package oracle is the conformance oracle for TACTIC enforcement: a
// deliberately-naive reference model of the paper's protocol state
// machine (Protocols 1-4 re-derived from the pseudocode, with exact
// validated-tag sets standing in for Bloom filters) plus a differential
// harness that replays randomized seeded scenarios against three
// independent implementations —
//
//   - the reference model itself (model.go),
//   - the discrete-event sim plane (internal/network + internal/core),
//   - a live multi-node forwarder topology over in-process pipes
//     (internal/forwarder + internal/transport),
//
// and asserts per-Interest verdict equivalence and end-state content
// store equivalence, reporting any divergence as a minimized,
// replayable seed. The repo carries two full implementations of the
// enforcement semantics; this package is what proves they still agree
// with each other — and with the paper — after every refactor.
//
// Determinism contract. Scenarios are generated so that every verdict
// is independent of scheduling races the live plane legitimately has
// (PIT aggregation timing, content-store fill order within a step):
// tag expiries sit far from decision instants except at one explicit
// boundary the harness sleeps across, and request combinations whose
// outcome depends on whether PIT aggregation happened (the paper's
// aggregated-tag validation skips the access-level pre-check, and
// skips nothing a forged tag needs for Public content) are given
// exclusive (step, name) slots. See GenerateScenario.
package oracle

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/topology"
)

// TagKind classifies a scenario tag's ground truth.
type TagKind int

// Tag kinds.
const (
	// TagValid is a correctly signed, unexpired tag.
	TagValid TagKind = iota
	// TagPreExpired is correctly signed but expired before the scenario
	// starts (revocation via T_e, threat (c)).
	TagPreExpired
	// TagMidRun is correctly signed and expires at the scenario's
	// expiry boundary: valid for steps < Boundary, expired at and after
	// it.
	TagMidRun
	// TagForged carries a signature that does not verify against the
	// provider's registered key (threat (b)).
	TagForged
	// TagRevoked is correctly signed and unexpired, but its ID is in
	// the revocation set the lifecycle control plane pushed to every
	// router before the scenario starts: it must be denied at the edge
	// without waiting for T_e.
	TagRevoked
	// TagRoaming is correctly signed and carries the AccessPathAny
	// wildcard instead of an edge binding, so it stays valid when its
	// holder requests from an edge other than HomeEdge (the lifecycle
	// service's mobility grant).
	TagRoaming
	// TagFlood is a forged tag minted for the verify-flood threat: like
	// TagForged its signature does not verify, but each flood tag gets a
	// distinct Serial salted into its ClientKey so every burst Interest
	// presents a never-seen tag and forces a fresh signature check —
	// the attack the bounded verification pool exists to absorb.
	TagFlood
)

// String names the kind.
func (k TagKind) String() string {
	switch k {
	case TagValid:
		return "valid"
	case TagPreExpired:
		return "pre-expired"
	case TagMidRun:
		return "mid-run"
	case TagForged:
		return "forged"
	case TagRevoked:
		return "revoked"
	case TagRoaming:
		return "roaming"
	case TagFlood:
		return "flood"
	}
	return "unknown"
}

// TagSpec is the ground truth for one scenario tag. The differential
// planes each materialise it as a concrete signed core.Tag; the
// reference model consumes the spec directly — that asymmetry is the
// point: the oracle never runs the production crypto or Bloom filters.
type TagSpec struct {
	// User is the owning user's index (the tag's ClientKey identity).
	User int
	// Provider is the issuing provider's index.
	Provider int
	// Level is AL_u.
	Level core.AccessLevel
	// Kind is the ground-truth class.
	Kind TagKind
	// HomeEdge is the edge-router position (index into the topology's
	// edge routers) whose location the tag's access path binds to. A
	// tag whose HomeEdge differs from the requester's edge models the
	// paper's traitor scenario (threat (e)).
	HomeEdge int
	// Serial distinguishes otherwise-identical TagFlood tags: each
	// plane salts it into the tag's ClientKey, so every flood tag has a
	// distinct wire encoding (and hence a distinct Bloom-filter /
	// validated-set key). Zero for every other kind.
	Serial int
}

// ContentSpec is one published chunk.
type ContentSpec struct {
	// Provider is the publishing provider's index.
	Provider int
	// Object is the name component under the provider prefix.
	Object string
	// Level is AL_D; core.Public marks open content.
	Level core.AccessLevel
}

// RequestSpec is one scheduled Interest.
type RequestSpec struct {
	// Step is the logical time slot (0-based). The harness barriers
	// between steps, so cross-step requests never share PIT entries.
	Step int
	// User issues the request.
	User int
	// Content indexes Scenario.Contents.
	Content int
	// Tag indexes Scenario.Tags; -1 sends a tagless Interest.
	Tag int
}

// Scenario is one replayable differential test case. Everything is
// derived deterministically from Seed.
type Scenario struct {
	// Seed regenerates the scenario: GenerateScenario(Seed) reproduces
	// it exactly.
	Seed int64
	// Topo parameterises the topology (shared by all planes).
	Topo topology.Config
	// Steps is the number of logical time slots.
	Steps int
	// Boundary, when > 0, is the step at which TagMidRun tags expire.
	Boundary int
	// Contents, Tags, Requests describe the workload.
	Contents []ContentSpec
	Tags     []TagSpec
	Requests []RequestSpec
	// Flood, when non-nil, marks this as a verify-flood scenario: every
	// request in Flood.Step belongs to Flood.User and is issued on one
	// shared client connection in request order, and every plane runs
	// with the per-face verify admission budget Flood.Budget.
	Flood *FloodSpec
}

// FloodSpec parameterises a verify-flood burst (the TagFlood threat
// class): one attacker sends a back-to-back burst of never-seen forged
// tags on a single face, and the planes must agree — request by
// request — on which Interests are admitted into verification (and
// denied "forged") and which are shed with an Overload NACK.
type FloodSpec struct {
	// User is the flooding user index.
	User int
	// Step is the burst step; it contains only the flood requests.
	Step int
	// Budget is the per-face verify admission budget for every plane.
	Budget int
}

// String renders the scenario compactly for divergence reports.
func (s *Scenario) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario seed=%d topo{core=%d edge=%d prov=%d users=%d} steps=%d boundary=%d\n",
		s.Seed, s.Topo.CoreRouters, s.Topo.EdgeRouters, s.Topo.Providers,
		s.Topo.Clients+s.Topo.Attackers, s.Steps, s.Boundary)
	if s.Flood != nil {
		fmt.Fprintf(&b, "  flood user=%d step=%d budget=%d\n", s.Flood.User, s.Flood.Step, s.Flood.Budget)
	}
	for i, c := range s.Contents {
		fmt.Fprintf(&b, "  content[%d] prov%d/%s level=%d\n", i, c.Provider, c.Object, c.Level)
	}
	for i, t := range s.Tags {
		fmt.Fprintf(&b, "  tag[%d] user=%d prov=%d level=%d kind=%s homeEdge=%d serial=%d\n",
			i, t.User, t.Provider, t.Level, t.Kind, t.HomeEdge, t.Serial)
	}
	for i, r := range s.Requests {
		fmt.Fprintf(&b, "  req[%d] step=%d user=%d content=%d tag=%d\n", i, r.Step, r.User, r.Content, r.Tag)
	}
	return b.String()
}

// maxTaglessPrivate bounds the silent-denial requests per scenario:
// they are the only outcomes the live plane resolves by timeout, so
// each one costs the harness a full client deadline.
const maxTaglessPrivate = 2

// aggregationVariant reports whether a request's verdict would depend
// on PIT aggregation timing — the cases the generator must isolate in
// an exclusive (step, name) slot:
//
//   - an insufficient-level tag: Protocol 1's AL check runs only at
//     content routers, which aggregated requests never reach, so the
//     same request is denied as a primary but served as an aggregate
//     (the paper's threat-(d) gap, see core.Config.EnforceALOnAggregates);
//   - a forged tag: for Public content the router's Public bypass
//     skips validation for the primary while aggregated tags are always
//     signature-checked on content arrival; for private content a
//     forged member's NACK answer (live routers re-send aggregated
//     Interests upstream) races the primary's clean answer for the
//     shared PIT entry, making the primary's verdict timing-dependent;
//   - a tagless private request: resolved silently when aggregated but
//     with an explicit NACK when it reaches a content store directly.
func aggregationVariant(tags []TagSpec, contents []ContentSpec, tagIdx, contentIdx int) bool {
	c := contents[contentIdx]
	if tagIdx < 0 {
		return c.Level != core.Public
	}
	t := tags[tagIdx]
	if !t.Level.Satisfies(c.Level) {
		return true
	}
	if t.Kind == TagForged {
		return true
	}
	return false
}

// scheduler enforces the generator's determinism constraints while
// requests are placed.
type scheduler struct {
	used      map[[2]int]int  // (step, content) -> request count
	exclusive map[[2]int]bool // (step, content) slots owned by a variant request
	tagStep   map[[2]int]bool // (tag, step) already used
	tagless   int             // tagless-private requests placed
}

func newScheduler() *scheduler {
	return &scheduler{
		used:      make(map[[2]int]int),
		exclusive: make(map[[2]int]bool),
		tagStep:   make(map[[2]int]bool),
	}
}

// place admits a request if it violates no constraint, recording it.
func (sc *scheduler) place(scn *Scenario, r RequestSpec) bool {
	sn := [2]int{r.Step, r.Content}
	if sc.exclusive[sn] {
		return false
	}
	variant := aggregationVariant(scn.Tags, scn.Contents, r.Tag, r.Content)
	if variant && sc.used[sn] > 0 {
		return false
	}
	taglessPrivate := r.Tag < 0 && scn.Contents[r.Content].Level != core.Public
	if taglessPrivate && sc.tagless >= maxTaglessPrivate {
		return false
	}
	if r.Tag >= 0 {
		ts := [2]int{r.Tag, r.Step}
		if sc.tagStep[ts] {
			return false
		}
		sc.tagStep[ts] = true
	}
	sc.used[sn]++
	if variant {
		sc.exclusive[sn] = true
	}
	if taglessPrivate {
		sc.tagless++
	}
	scn.Requests = append(scn.Requests, r)
	return true
}

// GenerateScenario derives a scenario deterministically from seed:
// a small randomized topology, 1-2 providers each publishing a few
// levelled contents, a population of users holding tags across the
// ground-truth classes (valid, pre-expired, mid-run expiring, forged,
// explicitly revoked, roaming, and traitor tags bound to the wrong
// edge), and a step schedule of
// requests including deliberate same-(step,name) aggregation groups.
func GenerateScenario(seed int64) (*Scenario, error) {
	rng := rand.New(rand.NewSource(seed))
	topo := topology.Config{
		CoreRouters:  3 + rng.Intn(3),
		EdgeRouters:  2 + rng.Intn(2),
		Providers:    1 + rng.Intn(2),
		Clients:      2 + rng.Intn(3),
		Attackers:    rng.Intn(3),
		AttachDegree: 2,
		Seed:         seed,
	}
	scn := &Scenario{Seed: seed, Topo: topo, Steps: 4 + rng.Intn(3)}
	info, err := buildTopo(scn)
	if err != nil {
		return nil, err
	}
	users := len(info.users)
	edges := len(info.edges)

	// Contents: 2-3 objects per provider across the access levels.
	for p := 0; p < topo.Providers; p++ {
		n := 2 + rng.Intn(2)
		for o := 0; o < n; o++ {
			scn.Contents = append(scn.Contents, ContentSpec{
				Provider: p,
				Object:   fmt.Sprintf("o%d", o),
				Level:    core.AccessLevel(rng.Intn(3)),
			})
		}
	}

	// Tags: most users hold a tag per provider; kinds follow a roulette
	// that keeps valid tags dominant so delivery paths stay exercised.
	userTag := make([][]int, users) // user -> provider -> tag index (-1 none)
	haveMidRun := false
	for u := 0; u < users; u++ {
		userTag[u] = make([]int, topo.Providers)
		for p := range userTag[u] {
			userTag[u][p] = -1
		}
	}
	for u := 0; u < users; u++ {
		for p := 0; p < topo.Providers; p++ {
			if rng.Float64() < 0.2 {
				continue // this user never registered here
			}
			t := TagSpec{User: u, Provider: p, Level: core.AccessLevel(rng.Intn(3)), HomeEdge: info.userEdge[u]}
			switch roll := rng.Float64(); {
			case roll < 0.45:
				t.Kind = TagValid
			case roll < 0.58:
				t.Kind = TagForged
			case roll < 0.66:
				t.Kind = TagPreExpired
			case roll < 0.74:
				t.Kind = TagMidRun
				haveMidRun = true
			case roll < 0.82:
				t.Kind = TagRevoked
			case roll < 0.90:
				// Roaming tag: bound to no edge (AccessPathAny), and — when
				// the topology allows — held by a user attached elsewhere,
				// so only the wildcard lets it through.
				t.Kind = TagRoaming
				if edges > 1 {
					t.HomeEdge = (info.userEdge[u] + 1 + rng.Intn(edges-1)) % edges
				}
			default:
				// Traitor tag: valid signature, bound to another edge's
				// location. Degenerates to TagValid on 1-edge topologies.
				t.Kind = TagValid
				if edges > 1 {
					t.HomeEdge = (info.userEdge[u] + 1 + rng.Intn(edges-1)) % edges
				}
			}
			userTag[u][p] = len(scn.Tags)
			scn.Tags = append(scn.Tags, t)
		}
	}
	if haveMidRun {
		scn.Boundary = scn.Steps / 2
		if scn.Boundary < 1 {
			scn.Boundary = 1
		}
	}

	sched := newScheduler()
	contentsOf := func(p int) []int {
		var out []int
		for i, c := range scn.Contents {
			if c.Provider == p {
				out = append(out, i)
			}
		}
		return out
	}

	// Every mid-run tag is exercised on both sides of the boundary —
	// that is the revocation transition the oracle exists to check.
	for ti, t := range scn.Tags {
		if t.Kind != TagMidRun {
			continue
		}
		cands := contentsOf(t.Provider)
		for attempt := 0; attempt < 8; attempt++ {
			r := RequestSpec{Step: rng.Intn(scn.Boundary), User: t.User, Content: cands[rng.Intn(len(cands))], Tag: ti}
			if sched.place(scn, r) {
				break
			}
		}
		for attempt := 0; attempt < 8; attempt++ {
			r := RequestSpec{Step: scn.Boundary + rng.Intn(scn.Steps-scn.Boundary), User: t.User, Content: cands[rng.Intn(len(cands))], Tag: ti}
			if sched.place(scn, r) {
				break
			}
		}
	}

	// Every revoked and roaming tag is exercised at least once: revoked
	// tags pin the explicit-revocation denial (the lifecycle tentpole's
	// differential acceptance), roaming tags pin the wildcard delivery.
	for ti, t := range scn.Tags {
		if t.Kind != TagRevoked && t.Kind != TagRoaming {
			continue
		}
		cands := contentsOf(t.Provider)
		for attempt := 0; attempt < 8; attempt++ {
			r := RequestSpec{Step: rng.Intn(scn.Steps), User: t.User, Content: cands[rng.Intn(len(cands))], Tag: ti}
			if sched.place(scn, r) {
				break
			}
		}
	}

	// Deliberate aggregation groups: 1-2 same-(step,name) bursts of 2-3
	// users, exercising PIT aggregation and the NACK-alongside-Data
	// delivery rules.
	for g := 0; g < 1+rng.Intn(2); g++ {
		ci := rng.Intn(len(scn.Contents))
		step := rng.Intn(scn.Steps)
		members := 2 + rng.Intn(2)
		for m := 0; m < members; m++ {
			u := rng.Intn(users)
			tag := userTag[u][scn.Contents[ci].Provider]
			if tag < 0 && scn.Contents[ci].Level != core.Public {
				continue // tagless-private would claim the slot exclusively
			}
			sched.place(scn, RequestSpec{Step: step, User: u, Content: ci, Tag: tag})
		}
	}

	// The randomized bulk of the schedule.
	target := 15 + rng.Intn(15)
	for attempt := 0; attempt < target*4 && len(scn.Requests) < target; attempt++ {
		u := rng.Intn(users)
		ci := rng.Intn(len(scn.Contents))
		prov := scn.Contents[ci].Provider
		tag := userTag[u][prov]
		switch roll := rng.Float64(); {
		case roll < 0.15:
			tag = -1 // tagless
		case roll < 0.25 && len(scn.Tags) > 0:
			// Wrong-provider or borrowed tag: any tag in the scenario.
			tag = rng.Intn(len(scn.Tags))
		}
		sched.place(scn, RequestSpec{Step: rng.Intn(scn.Steps), User: u, Content: ci, Tag: tag})
	}

	// Stable step order; within a step, placement order is preserved so
	// every plane fires aggregation-group primaries identically.
	sort.SliceStable(scn.Requests, func(i, j int) bool {
		return scn.Requests[i].Step < scn.Requests[j].Step
	})
	return scn, nil
}

// floodBudget is the per-face verify admission budget flood scenarios
// run with. It is deliberately tiny: the burst must overflow it by a
// margin while the victims' per-step verification demand (at most one
// per victim per edge per step) stays strictly below it, so admission
// never fires outside the burst.
const floodBudget = 4

// GenerateFloodScenario derives a verify-flood scenario from seed:
// victims warm their valid tags into the edge filters (step 0), one
// attacker bursts a budget-overflowing run of distinct TagFlood tags on
// a single connection (step 1), and the victims re-request under Bloom
// filter hits (step 2). Every plane must agree which burst Interests
// were admitted to verification (denied "forged") and which were shed
// ("overload") — in request order, that is the first Budget and the
// rest respectively.
func GenerateFloodScenario(seed int64) (*Scenario, error) {
	rng := rand.New(rand.NewSource(seed ^ 0xf100d))
	topo := topology.Config{
		CoreRouters:  2 + rng.Intn(2),
		EdgeRouters:  2,
		Providers:    1,
		Clients:      2,
		Attackers:    1,
		AttachDegree: 2,
		Seed:         seed,
	}
	scn := &Scenario{Seed: seed, Topo: topo, Steps: 3}
	info, err := buildTopo(scn)
	if err != nil {
		return nil, err
	}
	attacker := len(info.users) - 1 // users lists clients first, then attackers
	scn.Flood = &FloodSpec{User: attacker, Step: 1, Budget: floodBudget}

	scn.Contents = []ContentSpec{{Provider: 0, Object: "o0", Level: core.AccessLevel(rng.Intn(3))}}

	// Victims hold top-level valid tags bound to their own edges.
	for u := 0; u < topo.Clients; u++ {
		scn.Tags = append(scn.Tags, TagSpec{
			User: u, Provider: 0, Level: core.AccessLevel(2), Kind: TagValid, HomeEdge: info.userEdge[u],
		})
	}
	// The burst overflows the budget by 4-7 distinct flood tags, so both
	// verdict classes are always present.
	burst := floodBudget + 4 + rng.Intn(4)
	floodBase := len(scn.Tags)
	for i := 0; i < burst; i++ {
		scn.Tags = append(scn.Tags, TagSpec{
			User: attacker, Provider: 0, Level: core.AccessLevel(2), Kind: TagFlood,
			HomeEdge: info.userEdge[attacker], Serial: i,
		})
	}

	for u := 0; u < topo.Clients; u++ {
		scn.Requests = append(scn.Requests, RequestSpec{Step: 0, User: u, Content: 0, Tag: u})
	}
	for i := 0; i < burst; i++ {
		scn.Requests = append(scn.Requests, RequestSpec{Step: 1, User: attacker, Content: 0, Tag: floodBase + i})
	}
	for u := 0; u < topo.Clients; u++ {
		scn.Requests = append(scn.Requests, RequestSpec{Step: 2, User: u, Content: 0, Tag: u})
	}
	return scn, nil
}
