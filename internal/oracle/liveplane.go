package oracle

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/forwarder"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/ndn"
	"github.com/tactic-icn/tactic/internal/pki"
	"github.com/tactic-icn/tactic/internal/topology"
	"github.com/tactic-icn/tactic/internal/transport"
)

// ErrTimingSkew reports that the live plane could not keep a mid-run
// tag's real-time expiry window: a pre-boundary step finished after the
// tag's T_e, so its verdicts may already reflect the expired state.
// The run is invalid rather than divergent — callers retry once.
var ErrTimingSkew = errors.New("oracle: live plane missed a mid-run expiry window")

// Live-plane timing. Unlike the sim plane the live plane runs on wall
// clock, so a mid-run tag's TTL must outlast every pre-boundary step
// including their worst case — a silently denied request that holds its
// step's barrier for the full client timeout.
const (
	liveCSCapacity     = 1024
	liveRequestTimeout = 600 * time.Millisecond
	// liveStepBudget bounds one step's wall-clock: the slowest request
	// (a client timeout) plus scheduling slack.
	liveStepBudget = liveRequestTimeout + 150*time.Millisecond
	// liveExpiryMargin separates the boundary step from T_e so that
	// "expired" is unambiguous when it runs.
	liveExpiryMargin = 250 * time.Millisecond
)

// liveMidRunTTL is the wall-clock lifetime of mid-run tags for a
// scenario: enough for every pre-boundary step to finish first.
func liveMidRunTTL(scn *Scenario) time.Duration {
	return time.Duration(scn.Boundary)*liveStepBudget + liveExpiryMargin
}

// gatedVerifier wraps a pki.Verifier with a hold/release gate. During
// the flood burst the gate is held, so every admitted verification
// stays in flight — occupying its face's admission budget — until the
// whole burst has been read off the wire; releasing then lets the
// verdicts land. This removes the only timing freedom in the burst
// (how fast workers drain relative to the reader), making the live
// shed/verify split a pure function of arrival order.
type gatedVerifier struct {
	inner pki.Verifier
	mu    sync.Mutex
	gate  chan struct{} // nil = open; else closed-on-release
}

func newGatedVerifier(inner pki.Verifier) *gatedVerifier {
	return &gatedVerifier{inner: inner}
}

func (g *gatedVerifier) Verify(locator names.Name, msg, sig []byte) error {
	g.mu.Lock()
	ch := g.gate
	g.mu.Unlock()
	if ch != nil {
		<-ch
	}
	return g.inner.Verify(locator, msg, sig)
}

// hold blocks future Verify calls until release; idempotent.
func (g *gatedVerifier) hold() {
	g.mu.Lock()
	if g.gate == nil {
		g.gate = make(chan struct{})
	}
	g.mu.Unlock()
}

// release unblocks held Verify calls; idempotent.
func (g *gatedVerifier) release() {
	g.mu.Lock()
	if g.gate != nil {
		close(g.gate)
		g.gate = nil
	}
	g.mu.Unlock()
}

// RunLive replays a scenario on the live plane: one forwarder.Forwarder
// per router and one forwarder.Producer per provider, wired into the
// scenario topology over in-process TCP links (TCP buffering keeps
// router-to-router writes from back-pressuring each other's read
// loops), with one client connection per request. Steps run
// sequentially; requests within a step run concurrently so PIT
// aggregation genuinely occurs.
func RunLive(scn *Scenario, info *topoInfo, tactic core.Config) (*PlaneResult, error) {
	hasMidRun := false
	for _, t := range scn.Tags {
		if t.Kind == TagMidRun {
			hasMidRun = true
		}
	}
	t0 := time.Now()
	expiry := t0.Add(liveMidRunTTL(scn))
	mat, err := buildMaterial(scn,
		info,
		func(t TagSpec) time.Time {
			switch t.Kind {
			case TagPreExpired:
				return t0.Add(-time.Second)
			case TagMidRun:
				return expiry
			}
			return t0.Add(time.Hour)
		},
		func(edgePos int) core.AccessPath {
			// The live first-hop entity is the edge router itself.
			return core.EmptyAccessPath.Accumulate(info.edgeID[edgePos])
		})
	if err != nil {
		return nil, err
	}

	// Teardown order matters: closing a forwarder closes its face conns,
	// which is what unblocks the producers' serve goroutines — so
	// forwarders go down first, producers after.
	var fwdClosers, prodClosers []func()
	defer func() {
		for _, c := range fwdClosers {
			c()
		}
		for _, c := range prodClosers {
			c()
		}
	}()

	var gate *gatedVerifier
	var floodBudget int
	if scn.Flood != nil {
		gate = newGatedVerifier(mat.registry)
		floodBudget = scn.Flood.Budget
	}
	fwds := make(map[int]*forwarder.Forwarder)
	newFwd := func(idx int, role forwarder.Role) error {
		seed := scn.Seed*1009 + int64(idx) + 1
		if seed == 0 {
			seed = 1
		}
		var verifier pki.Verifier
		if gate != nil {
			verifier = gate
		}
		f, err := forwarder.New(forwarder.Config{
			ID:           info.nodeID(idx),
			Role:         role,
			Registry:     mat.registry,
			Verifier:     verifier,
			VerifyBudget: floodBudget,
			CSCapacity:   liveCSCapacity,
			Tactic:       tactic,
			Seed:         seed,
			Logf:         func(string, ...any) {},
		})
		if err != nil {
			return err
		}
		fwds[idx] = f
		fwdClosers = append(fwdClosers, func() { f.Close() })
		return nil
	}
	for _, idx := range info.cores {
		if err := newFwd(idx, forwarder.RoleCore); err != nil {
			return nil, err
		}
	}
	for _, idx := range info.edges {
		if err := newFwd(idx, forwarder.RoleEdge); err != nil {
			return nil, err
		}
	}

	isRouter := func(idx int) bool {
		k := info.g.Nodes[idx].Kind
		return k == topology.KindCoreRouter || k == topology.KindEdgeRouter
	}
	// Router-to-router links, upstream (non-client) faces on both sides.
	faceOf := make(map[int]map[int]ndn.FaceID)
	face := func(a, b int, id ndn.FaceID) {
		if faceOf[a] == nil {
			faceOf[a] = make(map[int]ndn.FaceID)
		}
		faceOf[a][b] = id
	}
	for idx := range fwds {
		for _, nb := range info.g.Adj[idx] {
			if nb.Node <= idx || !isRouter(nb.Node) {
				continue
			}
			ca, cb, err := tcpPair()
			if err != nil {
				return nil, err
			}
			face(idx, nb.Node, fwds[idx].AddFace(transport.New(ca), false))
			face(nb.Node, idx, fwds[nb.Node].AddFace(transport.New(cb), false))
		}
	}
	// Producers, attached to their single neighbouring router.
	for p, idx := range info.providers {
		prod, err := forwarder.NewProducerWithConfig(mat.providers[p], mat.registry, nil, tactic)
		if err != nil {
			return nil, err
		}
		prodClosers = append(prodClosers, func() { prod.Close() })
		for ci, c := range scn.Contents {
			if c.Provider == p {
				prod.AddContent(mat.contents[ci])
			}
		}
		attached := false
		for _, nb := range info.g.Adj[idx] {
			if !isRouter(nb.Node) {
				continue
			}
			ca, cb, err := tcpPair()
			if err != nil {
				return nil, err
			}
			face(nb.Node, idx, fwds[nb.Node].AddFace(transport.New(ca), false))
			prod.ServeConn(cb)
			attached = true
		}
		if !attached {
			return nil, fmt.Errorf("oracle: provider %d has no router neighbour", p)
		}
	}
	// Routes follow each provider's BFS tree, like the other planes.
	for p := range info.providers {
		prefix := info.provPrefix(p)
		for idx, f := range fwds {
			next := info.parent[p][idx]
			if next < 0 {
				continue
			}
			id, ok := faceOf[idx][next]
			if !ok {
				return nil, fmt.Errorf("oracle: no face %s->%s", info.nodeID(idx), info.nodeID(next))
			}
			f.AddRoute(prefix, id)
		}
	}

	// Seed the scenario's revocation set at every forwarder before the
	// first request (applied directly rather than flooded, so the seed
	// is in place deterministically; the flood protocol itself is pinned
	// by internal/forwarder's live control-plane tests).
	if len(mat.revoked) > 0 {
		for _, f := range fwds {
			f.Tactic().ApplyRevocation(1, true, mat.revoked)
		}
	}

	outcomes := make([]PlaneOutcome, len(scn.Requests))
	var nonce uint64
	slept := false
	for lo := 0; lo < len(scn.Requests); {
		hi := lo
		step := scn.Requests[lo].Step
		for hi < len(scn.Requests) && scn.Requests[hi].Step == step {
			hi++
		}
		if hasMidRun && step >= scn.Boundary && !slept {
			// Cross the expiry boundary unambiguously before the first
			// post-boundary step.
			time.Sleep(time.Until(expiry.Add(liveExpiryMargin)))
			slept = true
		}
		if scn.Flood != nil && step == scn.Flood.Step {
			if err := liveFlood(scn, info, mat, fwds, gate, outcomes, lo, hi, &nonce); err != nil {
				return nil, err
			}
			lo = hi
			continue
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		var lastMidRun time.Time
		for ri := lo; ri < hi; ri++ {
			r := scn.Requests[ri]
			nonce++
			wg.Add(1)
			go func(ri int, r RequestSpec, n uint64) {
				defer wg.Done()
				outcomes[ri] = liveRequest(info, mat, fwds, scn, r, n)
				if hasMidRun && step < scn.Boundary && r.Tag >= 0 && scn.Tags[r.Tag].Kind == TagMidRun {
					// Enforcement precedes the client's completion, so
					// completing before T_e proves the tag was checked
					// while still valid.
					mu.Lock()
					if done := time.Now(); done.After(lastMidRun) {
						lastMidRun = done
					}
					mu.Unlock()
				}
			}(ri, r, nonce)
		}
		wg.Wait()
		if !lastMidRun.IsZero() && lastMidRun.After(expiry.Add(-50*time.Millisecond)) {
			return nil, ErrTimingSkew
		}
		lo = hi
	}

	res := &PlaneResult{Outcomes: outcomes, CS: make(map[string][]string)}
	for idx, f := range fwds {
		names := f.CSNames()
		sort.Strings(names)
		res.CS[info.nodeID(idx)] = names
	}
	return res, nil
}

// liveRequest issues one Interest from a fresh client connection on the
// user's edge router and reports what comes back. Silence until the
// deadline is an outcome (the live plane drops upstream-denied tagless
// requests without notifying the client).
func liveRequest(info *topoInfo, mat *material, fwds map[int]*forwarder.Forwarder, scn *Scenario, r RequestSpec, nonce uint64) PlaneOutcome {
	edge := fwds[info.edges[info.userEdge[r.User]]]
	cliConn, edgeConn := net.Pipe()
	edge.AddFace(transport.New(edgeConn), true)
	cli := transport.New(cliConn)
	defer cli.Close()

	name := info.contentName(scn, r.Content)
	var tag *core.Tag
	if r.Tag >= 0 {
		tag = mat.tags[r.Tag]
	}
	if err := cli.SendInterest(&ndn.Interest{Name: name, Kind: ndn.KindContent, Nonce: nonce, Tag: tag}); err != nil {
		return PlaneOutcome{}
	}
	cliConn.SetReadDeadline(time.Now().Add(liveRequestTimeout)) //nolint:errcheck // pipes support deadlines
	for {
		pkt, err := cli.Receive()
		if err != nil {
			return PlaneOutcome{} // timed out: silently denied
		}
		d := pkt.Data
		if d == nil || !d.Name.Equal(name) {
			continue
		}
		if d.Nack {
			// The reason crosses the wire as a one-byte code; report its
			// canonical label for the edge-denial comparison.
			return PlaneOutcome{Nacked: true, Reason: core.ReasonLabel(d.NackReason)}
		}
		if d.Content != nil {
			return PlaneOutcome{Delivered: true}
		}
	}
}

// liveFlood replays the burst step of a flood scenario: every request
// in [lo, hi) is sent back-to-back on ONE client connection — the
// admission budget is per arrival face, so the burst must share one —
// while the verify gate is held. Once the edge has read the whole
// burst (its Interest counter has advanced by the burst size, which
// holds whether or not admission is enforced — the property that lets
// the harness catch an uncapped plane rather than hang on it), the
// gate opens and the burst's verdicts are collected: admitted forged
// tags NACK "forged", over-budget ones were already shed "overload".
func liveFlood(scn *Scenario, info *topoInfo, mat *material, fwds map[int]*forwarder.Forwarder,
	gate *gatedVerifier, outcomes []PlaneOutcome, lo, hi int, nonce *uint64) error {
	edge := fwds[info.edges[info.userEdge[scn.Flood.User]]]
	before := edge.Stats().Interests
	burst := uint64(hi - lo)

	// TCP, not net.Pipe: the shed NACKs are written by the edge's reader
	// goroutine before the client starts reading, and the socket buffers
	// absorb them where a synchronous pipe would deadlock the reader.
	cliConn, edgeConn, err := tcpPair()
	if err != nil {
		return err
	}
	edge.AddFace(transport.New(edgeConn), true)
	cli := transport.New(cliConn)
	defer cli.Close()

	gate.hold()
	defer gate.release()
	byTag := make(map[string]int, hi-lo)
	for ri := lo; ri < hi; ri++ {
		r := scn.Requests[ri]
		if r.User != scn.Flood.User {
			return fmt.Errorf("oracle: flood step %d holds a non-flood request %d", scn.Flood.Step, ri)
		}
		*nonce++
		tag := mat.tags[r.Tag]
		byTag[string(tag.CacheKey())] = ri
		if err := cli.SendInterest(&ndn.Interest{
			Name: info.contentName(scn, r.Content), Kind: ndn.KindContent, Nonce: *nonce, Tag: tag,
		}); err != nil {
			return err
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for edge.Stats().Interests-before < burst {
		if time.Now().After(deadline) {
			return fmt.Errorf("oracle: edge read %d of %d burst Interests before deadline",
				edge.Stats().Interests-before, burst)
		}
		time.Sleep(time.Millisecond)
	}
	gate.release()

	cliConn.SetReadDeadline(time.Now().Add(liveRequestTimeout)) //nolint:errcheck // TCP conns support deadlines
	for got := 0; got < int(burst); {
		pkt, err := cli.Receive()
		if err != nil {
			return fmt.Errorf("oracle: flood burst verdicts: got %d of %d: %w", got, burst, err)
		}
		d := pkt.Data
		if d == nil || d.Tag == nil {
			continue
		}
		ri, ok := byTag[string(d.Tag.CacheKey())]
		if !ok {
			continue // duplicate delivery for an already-settled tag
		}
		delete(byTag, string(d.Tag.CacheKey()))
		out := &outcomes[ri]
		if d.Nack {
			out.Nacked = true
			out.Reason = core.ReasonLabel(d.NackReason)
		} else if d.Content != nil {
			out.Delivered = true
		}
		got++
	}
	return nil
}

// tcpPair returns the two ends of a loopback TCP connection. The live
// harness links routers over TCP rather than net.Pipe: pipe writes are
// synchronous, so two routers replying to each other across one link at
// the same moment would deadlock their read loops, while TCP's socket
// buffers absorb frames.
func tcpPair() (net.Conn, net.Conn, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	defer ln.Close()
	type dialRes struct {
		c   net.Conn
		err error
	}
	ch := make(chan dialRes, 1)
	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		ch <- dialRes{c, err}
	}()
	srv, err := ln.Accept()
	if err != nil {
		return nil, nil, err
	}
	d := <-ch
	if d.err != nil {
		srv.Close()
		return nil, nil, d.err
	}
	return srv, d.c, nil
}
