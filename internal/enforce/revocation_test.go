package enforce

import (
	"errors"
	"testing"

	"github.com/tactic-icn/tactic/internal/core"
)

// TestRevokedTagDeniedBeforeBF pins the pre-BF revocation semantics:
// once a tag's ID is in the router's revocation set it is denied on
// every enforcement path, even though its bits are still set in the
// Bloom filter (the pre-BF check is what makes revocation effective
// without waiting for T_e).
func TestRevokedTagDeniedBeforeBF(t *testing.T) {
	r, prov := testRouter(t, 62, core.Config{EdgeValidateOnMiss: true})
	now := testTime(10)
	tag := issueTestTag(t, prov, 2, 0, testTime(1000))
	meta := aggMeta(prov)

	// Validate once: the tag lands in the BF.
	if d := r.EdgeOnInterest(tag, 0, testContentName, now); d.Denied() || !d.Verified {
		t.Fatalf("initial interest = %+v", d)
	}
	if d := r.EdgeOnInterest(tag, 0, testContentName, now); !d.BFHit {
		t.Fatalf("expected BF hit, got %+v", d)
	}

	r.Revocations().Revoke(tag.ID())

	if d := r.EdgeOnInterest(tag, 0, testContentName, now); !d.Denied() || !errors.Is(d.Reason, core.ErrTagRevoked) {
		t.Fatalf("edge did not deny revoked tag: %+v", d)
	}
	if d := r.ContentOnInterest(tag, meta, 0, now); !d.Denied() || !errors.Is(d.Reason, core.ErrTagRevoked) {
		t.Fatalf("content router did not deny revoked tag: %+v", d)
	}
	if d := r.ContentOnInterest(tag, meta, 0.5, now); !d.Denied() || !errors.Is(d.Reason, core.ErrTagRevoked) {
		t.Fatalf("content router honoured revoked tag behind F != 0: %+v", d)
	}
	if !r.EdgeOnAggregatedData(tag, meta, now).Denied() {
		t.Fatal("aggregated edge path delivered to revoked tag")
	}
	if d := r.IntermediateOnAggregatedContent(tag, meta, 0, now); !d.Denied() || !errors.Is(d.Reason, core.ErrTagRevoked) {
		t.Fatalf("intermediate router honoured revoked tag: %+v", d)
	}
	if got := core.ReasonLabel(core.ErrTagRevoked); got != "revoked" {
		t.Fatalf("ReasonLabel = %q", got)
	}

	// The ablation knob restores TACTIC's original expiry-only
	// behaviour (and gives the conformance oracle its injectable bug).
	r2, prov2 := testRouter(t, 63, core.Config{DisableRevocationCheck: true, EdgeValidateOnMiss: true})
	tag2 := issueTestTag(t, prov2, 2, 0, testTime(1000))
	r2.Revocations().Revoke(tag2.ID())
	if d := r2.EdgeOnInterest(tag2, 0, testContentName, now); d.Denied() {
		t.Fatalf("DisableRevocationCheck still denied: %+v", d)
	}
}

// TestApplyRevocationReachesEngine pins the control-plane entry point:
// a pushed update applied through ApplyRevocation denies the named tags
// and reports version advancement exactly like the underlying set.
func TestApplyRevocationReachesEngine(t *testing.T) {
	for _, scheme := range []core.Scheme{core.SchemeTACTIC, core.SchemeIBAC} {
		r, prov := testRouter(t, 70, core.Config{Scheme: scheme, EdgeValidateOnMiss: true})
		now := testTime(10)
		tag := issueTestTag(t, prov, 2, 0, testTime(1000))
		if d := r.EdgeOnInterest(tag, 0, testContentName, now); d.Denied() {
			t.Fatalf("%v: warm-up denied: %+v", scheme, d)
		}
		if !r.ApplyRevocation(1, false, []core.TagID{tag.ID()}) {
			t.Fatalf("%v: delta push rejected", scheme)
		}
		if r.ApplyRevocation(1, false, nil) {
			t.Fatalf("%v: duplicate version applied", scheme)
		}
		if d := r.EdgeOnInterest(tag, 0, testContentName, now); !d.Denied() || !errors.Is(d.Reason, core.ErrTagRevoked) {
			t.Fatalf("%v: pushed revocation not enforced: %+v", scheme, d)
		}
		// A full replacement un-revokes: the tag flows again.
		if !r.ApplyRevocation(2, true, nil) {
			t.Fatalf("%v: full push rejected", scheme)
		}
		if d := r.EdgeOnInterest(tag, 0, testContentName, now); d.Denied() {
			t.Fatalf("%v: cleared revocation still enforced: %+v", scheme, d)
		}
	}
}

// TestRotateEpoch pins rotation semantics: the current filter's stale
// bits move to the previous-epoch fallback (so already-validated tags
// are still vouched for without re-verification), the current filter
// starts clean, and stale epochs are ignored.
func TestRotateEpoch(t *testing.T) {
	r, prov := testRouter(t, 64, core.Config{EdgeValidateOnMiss: true, DisableAutoReset: true})
	now := testTime(10)
	tag := issueTestTag(t, prov, 2, 0, testTime(1000))
	if d := r.EdgeOnInterest(tag, 0, testContentName, now); !d.Verified {
		t.Fatalf("warm-up = %+v", d)
	}
	verifs := r.Validator().Verifications()

	if !r.RotateEpoch(1) {
		t.Fatal("rotation to epoch 1 rejected")
	}
	if r.Epoch() != 1 {
		t.Fatalf("epoch = %d", r.Epoch())
	}
	if r.RotateEpoch(1) || r.RotateEpoch(0) {
		t.Fatal("stale epoch accepted")
	}
	if r.Bloom().Count() != 0 {
		t.Fatalf("current filter not cleared: count=%d", r.Bloom().Count())
	}

	// The tag validated before the rotation still hits via the
	// previous-epoch fallback — no second signature verification — and
	// migrates into the current filter.
	if d := r.EdgeOnInterest(tag, 0, testContentName, now); !d.BFHit || d.Verified {
		t.Fatalf("post-rotation lookup = %+v", d)
	}
	if got := r.Validator().Verifications(); got != verifs {
		t.Fatalf("rotation forced a re-verification: %d -> %d", verifs, got)
	}
	if r.Bloom().Count() == 0 {
		t.Fatal("prev-epoch hit did not migrate into the current filter")
	}

	// After a second rotation the original epoch's bits are gone: the
	// migrated copy carries the tag forward instead.
	if !r.RotateEpoch(2) {
		t.Fatal("rotation to epoch 2 rejected")
	}
	if d := r.EdgeOnInterest(tag, 0, testContentName, now); !d.BFHit || d.Verified {
		t.Fatalf("lookup after second rotation = %+v", d)
	}
}

// TestRotationBoundsMeasuredFPP is the revocation-storm acceptance
// check: a storm of now-revoked tags leaves the filter's measured FPP
// above its bound, and an epoch rotation brings the live filter back
// under it.
func TestRotationBoundsMeasuredFPP(t *testing.T) {
	r, prov := testRouter(t, 65, core.Config{EdgeValidateOnMiss: true, DisableAutoReset: true})
	now := testTime(10)
	// Storm: validate far more tags than the filter's saturation point
	// (the test filter is sized for 500 elements at its max FPP).
	for i := 0; i < 900; i++ {
		tag := issueTestTag(t, prov, core.AccessLevel(i%7), core.AccessPath(uint64(i)), testTime(1000))
		if d := r.EdgeOnInterest(tag, core.AccessPath(uint64(i)), testContentName, now); d.Denied() {
			t.Fatalf("storm tag %d dropped: %v", i, d.Reason)
		}
	}
	maxFPP := r.Bloom().MaxFPP()
	if got := r.Bloom().MeasuredFPP(); got < maxFPP {
		t.Fatalf("storm did not saturate: measured %g < max %g", got, maxFPP)
	}
	if !r.RotateEpoch(1) {
		t.Fatal("rotation rejected")
	}
	if got := r.Bloom().MeasuredFPP(); got >= maxFPP {
		t.Fatalf("rotation left measured FPP at %g >= bound %g", got, maxFPP)
	}
}

func TestAccessPathAnyMatchesEverywhere(t *testing.T) {
	if !core.AccessPathAny.Matches(0) || !core.AccessPathAny.Matches(core.AccessPathOf("ap3", "relay7")) {
		t.Fatal("wildcard did not match")
	}
	// The wildcard lives in the tag, not the request: an ordinary tag
	// does not match a request that accumulated to all-ones.
	if core.AccessPath(7).Matches(core.AccessPathAny) {
		t.Fatal("ordinary tag matched wildcard request path")
	}
	r, prov := testRouter(t, 66, core.Config{EdgeValidateOnMiss: true})
	now := testTime(10)
	roam := issueTestTag(t, prov, 2, core.AccessPathAny, testTime(1000))
	for _, ap := range []core.AccessPath{0, core.AccessPathOf("e0"), core.AccessPathOf("e1")} {
		if d := r.EdgeOnInterest(roam, ap, testContentName, now); d.Denied() {
			t.Fatalf("roaming tag dropped at path %x: %v", uint64(ap), d.Reason)
		}
	}
}
