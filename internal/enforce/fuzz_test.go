package enforce

import (
	"math/rand"
	"testing"

	"github.com/tactic-icn/tactic/internal/bloom"
	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/pki"
)

// FuzzEnforceDecision drives randomized inputs through every protocol
// checkpoint of both backends and checks the engine's safety
// invariants:
//
//   - no decision path panics, and the Router always drives a verdict
//     to completion (never a dangling ActionVerify);
//   - an expired tag is never delivered at the edge Interest checkpoint
//     and a revoked tag is never delivered anywhere;
//   - a forged signature never delivers through a cold cache on the
//     F = 0 paths (only a Bloom vouch can skip the verification);
//   - every denial carries a populated reason from the stable
//     core.ReasonLabels vocabulary;
//   - denials on the deterministic (F = 0) paths are stable: repeating
//     the call against the same engine state returns the identical
//     (action, stage, reason) verdict.
func FuzzEnforceDecision(f *testing.F) {
	prov := newTestSigner(f, 1, "/prov0/KEY/1")
	prov2 := newTestSigner(f, 2, "/prov1/KEY/1")
	reg := newTestRegistry(f, prov, prov2)

	// scheme/op selectors, tag shape, and path inputs.
	f.Add(false, uint8(0), uint8(2), uint8(2), uint64(7), uint64(7), int16(100), uint8(0), uint16(0), false, false, false, false)
	f.Add(true, uint8(0), uint8(2), uint8(2), uint64(7), uint64(7), int16(100), uint8(0), uint16(0), false, false, false, false)
	f.Add(false, uint8(1), uint8(1), uint8(2), uint64(7), uint64(7), int16(100), uint8(1), uint16(500), false, false, false, false)
	f.Add(true, uint8(2), uint8(2), uint8(1), uint64(7), uint64(9), int16(-50), uint8(0), uint16(0), true, false, false, false)
	f.Add(false, uint8(3), uint8(2), uint8(0), uint64(7), uint64(7), int16(100), uint8(0), uint16(250), false, true, false, false)
	f.Add(false, uint8(2), uint8(3), uint8(2), ^uint64(0), uint64(1), int16(1), uint8(9), uint16(999), false, false, true, false)
	f.Add(true, uint8(1), uint8(0), uint8(3), uint64(0), uint64(0), int16(0), uint8(0), uint16(1000), true, true, false, true)

	f.Fuzz(func(t *testing.T, ibac bool, op, level, contentLevel uint8,
		apRaw, reqRaw uint64, expOff int16, corrupt uint8, flagMilli uint16,
		revoked, nack, otherProv, tagless bool) {

		scheme := core.SchemeTACTIC
		if ibac {
			scheme = core.SchemeIBAC
		}
		cfg := core.Config{Scheme: scheme}
		mk := func(id string, seed int64) *Router {
			bf, err := bloom.NewPaper(500, 1e-4)
			if err != nil {
				t.Fatal(err)
			}
			return NewRouter(id, bf, core.NewTagValidator(reg), rand.New(rand.NewSource(seed)), cfg)
		}
		edge, mid := mk("edge-0", 11), mk("core-0", 12)

		now := testTime(1000)
		signer := pki.Signer(prov)
		if otherProv {
			signer = prov2
		}
		var tag *core.Tag
		if !tagless {
			var err error
			tag, err = core.IssueTag(signer, names.MustParse("/u/alice/KEY/1"),
				core.AccessLevel(level), core.AccessPath(apRaw), testTime(1000+int64(expOff)))
			if err != nil {
				t.Fatal(err)
			}
			if corrupt != 0 {
				tag.Signature = append([]byte(nil), tag.Signature...)
				tag.Signature[int(corrupt)%len(tag.Signature)] ^= corrupt
			}
			if revoked {
				for _, r := range []*Router{edge, mid} {
					r.ApplyRevocation(1, false, []core.TagID{tag.ID()})
				}
			}
		}
		meta := core.ContentMeta{
			Name:        testContentName,
			Level:       core.AccessLevel(contentLevel % 4),
			ProviderKey: prov.Locator(),
		}
		flag := float64(flagMilli%1001) / 1000

		decide := func() Verdict {
			switch op % 4 {
			case 0:
				return edge.EdgeOnInterest(tag, core.AccessPath(reqRaw), meta.Name, now)
			case 1:
				return mid.ContentOnInterest(tag, meta, flag, now)
			case 2:
				return mid.IntermediateOnAggregatedContent(tag, meta, flag, now)
			default:
				return edge.EdgeOnData(tag, flag, nack)
			}
		}

		v := decide()
		if v.NeedsVerify() {
			t.Fatalf("Router returned a dangling ActionVerify: %+v", v)
		}

		// Safety: expired tags stop at the edge; revoked tags stop
		// everywhere a tag is (re)checked. The content checkpoint's
		// Public bypass ("AL_D = NULL", §5) legitimately skips every tag
		// check, so it is excluded.
		publicBypass := op%4 == 1 && meta.Level == core.Public
		if tag != nil && op%4 == 0 && tag.Expired(now) && !v.Denied() {
			t.Fatalf("expired tag delivered at edge Interest checkpoint: %+v", v)
		}
		if tag != nil && revoked && op%4 != 3 && !publicBypass && !v.Denied() {
			t.Fatalf("revoked tag delivered (op %d): %+v", op%4, v)
		}
		// A forged signature cannot pass a cold cache when nothing
		// vouches for it: F = 0 content/aggregate checks must verify and
		// deny. (The edge checkpoint under vanilla TACTIC deliberately
		// forwards unverified misses, and under flag-F vouching the
		// probabilistic re-check may skip — both excluded here.)
		if tag != nil && corrupt != 0 && !tag.Expired(now) && !revoked && flag == 0 &&
			(op%4 == 1 || op%4 == 2) && !publicBypass && !v.Denied() {
			t.Fatalf("forged tag delivered through a cold cache: %+v", v)
		}

		if v.Denied() {
			if v.Reason == nil {
				t.Fatalf("denial without a reason: %+v", v)
			}
			label := v.ReasonLabel()
			known := false
			for _, l := range core.ReasonLabels() {
				if l == label {
					known = true
					break
				}
			}
			if !known {
				t.Fatalf("denial reason %q outside the stable vocabulary", label)
			}
			// Deterministic-path stability: with F = 0 no rng draw is
			// involved and denials do not mutate cache state, so the same
			// call must reproduce the same verdict.
			if flag == 0 {
				v2 := decide()
				if v2.Action != v.Action || v2.Stage != v.Stage || v2.ReasonLabel() != v.ReasonLabel() {
					t.Fatalf("denial not stable under repeat: first %+v, then %+v", v, v2)
				}
			}
		}
	})
}
