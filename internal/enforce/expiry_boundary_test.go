package enforce

import (
	"errors"
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
)

// T_e boundary semantics: a tag is valid at exactly T_e (Expired uses
// strict Before) and expired one nanosecond later. Every enforcement
// layer must agree — Tag.Expired, Protocol 1's edge pre-check, the full
// validator, and the router's edge decision procedure. The live
// forwarder path is pinned to the same table in
// internal/forwarder's TestExpiryBoundaryLive.
func TestExpiryBoundaryExactlyAtTe(t *testing.T) {
	r, prov := testRouter(t, 31, core.Config{})
	te := testTime(50)
	tag := issueTestTag(t, prov, 1, 0, te)

	if tag.Expired(te) {
		t.Error("Tag.Expired true at exactly T_e; T_e must still be valid")
	}
	if !tag.Expired(te.Add(time.Nanosecond)) {
		t.Error("Tag.Expired false one nanosecond past T_e")
	}
	if err := core.PreCheckEdge(tag, testContentName, te); err != nil {
		t.Errorf("PreCheckEdge at exactly T_e: %v", err)
	}
	if err := core.PreCheckEdge(tag, testContentName, te.Add(time.Nanosecond)); !errors.Is(err, core.ErrTagExpired) {
		t.Errorf("PreCheckEdge past T_e = %v, want ErrTagExpired", err)
	}
	if err := r.Validator().Validate(tag, te); err != nil {
		t.Errorf("Validate at exactly T_e: %v", err)
	}
	if err := r.Validator().Validate(tag, te.Add(time.Nanosecond)); !errors.Is(err, core.ErrTagExpired) {
		t.Errorf("Validate past T_e = %v, want ErrTagExpired", err)
	}

	if dec := r.EdgeOnInterest(tag, 0, testContentName, te); dec.Denied() {
		t.Errorf("EdgeOnInterest dropped at exactly T_e: %v", dec.Reason)
	}
	dec := r.EdgeOnInterest(tag, 0, testContentName, te.Add(time.Nanosecond))
	if !dec.Denied() || !errors.Is(dec.Reason, core.ErrTagExpired) {
		t.Errorf("EdgeOnInterest past T_e = %+v, want expired drop", dec)
	}
}

// A tag validated (and so Bloom-inserted) before T_e must not be
// vouched for by the stale filter entry afterwards: the edge runs the
// expiry pre-check before the filter lookup, so the entry is
// unreachable even though it is still set.
func TestExpiryBetweenBFInsertAndLaterHit(t *testing.T) {
	r, prov := testRouter(t, 32, core.Config{})
	te := testTime(50)
	tag := issueTestTag(t, prov, 1, 0, te)
	meta := core.ContentMeta{Name: testContentName, Level: 1, ProviderKey: prov.Locator()}

	// Full validation before T_e inserts the tag into the filter.
	cdec := r.ContentOnInterest(tag, meta, 0, testTime(40))
	if cdec.Denied() || !cdec.Verified {
		t.Fatalf("pre-expiry validation = %+v, want verified serve", cdec)
	}
	// The filter now vouches at the edge…
	if dec := r.EdgeOnInterest(tag, 0, testContentName, testTime(45)); !dec.BFHit || dec.Flag == 0 {
		t.Fatalf("pre-expiry edge decision = %+v, want BF hit with F > 0", dec)
	}
	// …but after T_e the pre-check fires first and the hit is unreachable.
	dec := r.EdgeOnInterest(tag, 0, testContentName, testTime(60))
	if !dec.Denied() || !errors.Is(dec.Reason, core.ErrTagExpired) {
		t.Fatalf("post-expiry edge decision = %+v, want expired drop", dec)
	}
	if dec.BFHit {
		t.Error("post-expiry drop consulted the Bloom filter; pre-check must run first")
	}
	// The validator agrees, and reports expiry before even looking at
	// the (valid) signature.
	if err := r.Validator().Validate(tag, testTime(60)); !errors.Is(err, core.ErrTagExpired) {
		t.Errorf("post-expiry Validate = %v, want ErrTagExpired", err)
	}
}
