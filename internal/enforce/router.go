package enforce

import (
	"math/rand"
	"time"

	"github.com/tactic-icn/tactic/internal/bloom"
	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
)

// Router pairs an Engine with the one piece of I/O every scheme needs —
// the signature validator — and exposes the protocol-shaped entry
// points the planes call. It owns the revocation set the engine reads,
// so control-plane pushes flow through ApplyRevocation and reach the
// engine's OnRevocation hook.
//
// Router is safe for concurrent use: the Bloom filter is internally
// atomic, the validator serialises duplicate verifications through a
// singleflight, and the TACTIC backend's randomness stream is guarded
// by a mutex (the only lock a decision function can take, held for one
// Float64 draw). The discrete-event simulator still serialises all
// accesses, so its deterministic rng draw order is unchanged.
type Router struct {
	id        string
	engine    Engine
	validator *core.TagValidator
	rev       *core.RevocationSet
}

// NewRouter creates a router-side enforcement driver running the scheme
// selected by cfg.Scheme.
func NewRouter(id string, bf *bloom.Filter, validator *core.TagValidator, rng *rand.Rand, cfg core.Config) *Router {
	rev := core.NewRevocationSet()
	return &Router{
		id:        id,
		engine:    New(bf, rev, rng, cfg),
		validator: validator,
		rev:       rev,
	}
}

// ID returns the router's identity (also its access-path entity ID).
func (r *Router) ID() string { return r.id }

// Engine exposes the decision core (for the golden-verdict harnesses
// and scheme-aware metrics).
func (r *Router) Engine() Engine { return r.engine }

// Scheme identifies the enforcement backend in use.
func (r *Router) Scheme() core.Scheme { return r.engine.Scheme() }

// Bloom exposes the router's validation cache for metric collection.
func (r *Router) Bloom() *bloom.Filter { return r.engine.Bloom() }

// Validator exposes the router's validator for metric collection.
func (r *Router) Validator() *core.TagValidator { return r.validator }

// Revocations exposes the router's revocation set for metric reads;
// control-plane updates should go through ApplyRevocation so the
// engine observes them.
func (r *Router) Revocations() *core.RevocationSet { return r.rev }

// ApplyRevocation applies one pushed revocation-set update (full
// snapshot or delta) and notifies the engine of every tag it names.
// It reports whether the update advanced the set's version.
func (r *Router) ApplyRevocation(version uint64, full bool, ids []core.TagID) bool {
	if !r.rev.Apply(version, full, ids) {
		return false
	}
	for _, id := range ids {
		r.engine.OnRevocation(id)
	}
	return true
}

// Epoch returns the router's current validation-cache epoch.
func (r *Router) Epoch() uint64 { return r.engine.Epoch() }

// RotateEpoch advances the router to a new cache epoch (see
// Engine.OnEpochRotate).
func (r *Router) RotateEpoch(epoch uint64) bool { return r.engine.OnEpochRotate(epoch) }

// --- Protocol 2: edge router ------------------------------------------------

// EdgeOnInterest runs the edge On-Interest checkpoint to completion,
// verifying inline when the engine asks for it.
func (r *Router) EdgeOnInterest(t *core.Tag, requestAP core.AccessPath, contentName names.Name, now time.Time) Verdict {
	dec := r.EdgeOnInterestFast(t, requestAP, contentName, now)
	if dec.NeedsVerify() {
		return r.EdgeVerifyMiss(t, now)
	}
	return dec
}

// EdgeOnInterestFast is the cheap half of EdgeOnInterest — everything
// except the signature verification. When the verdict is ActionVerify
// the caller must finish with EdgeVerifyMiss, either inline or, on the
// live plane, after parking the Interest in the verification pool.
func (r *Router) EdgeOnInterestFast(t *core.Tag, requestAP core.AccessPath, contentName names.Name, now time.Time) Verdict {
	return r.engine.CheckInterest(InterestInput{
		Op: OpEdgeInterest, Tag: t, RequestAP: requestAP, Name: contentName, Now: now,
	})
}

// EdgeVerifyMiss completes an EdgeOnInterestFast verdict that reported
// ActionVerify: re-check the cheap gates (a revocation push may have
// landed while the Interest was parked), verify the tag's signature,
// and fold the outcome into the engine.
func (r *Router) EdgeVerifyMiss(t *core.Tag, now time.Time) Verdict {
	if pre := r.engine.CheckInterest(InterestInput{
		Op: OpEdgeInterest, Phase: PhasePreVerify, Tag: t, Now: now,
	}); pre.Denied() {
		return pre
	}
	err := r.validator.Validate(t, now)
	return r.engine.CheckInterest(InterestInput{
		Op: OpEdgeInterest, Phase: PhasePostVerify, Tag: t, Now: now, VerifyErr: err,
	})
}

// EdgeOnTagResponse handles a registration response (a fresh tag T_u^new
// coming from the producer) passing through the edge on its way to the
// client (Protocol 2 lines 11-12).
func (r *Router) EdgeOnTagResponse(t *core.Tag) { r.engine.OnTagIssued(t) }

// EdgeOnData runs Protocol 2's On-Content checkpoint for the Interest's
// primary tag; a denial means the (NACKed) response is dropped rather
// than delivered to the client.
func (r *Router) EdgeOnData(t *core.Tag, dataFlag float64, nack bool) Verdict {
	return r.engine.CheckContent(ContentInput{
		Op: OpEdgeData, Tag: t, Flag: dataFlag, Nack: nack,
	})
}

// EdgeOnAggregatedData validates one aggregated PIT tag on content
// arrival at the edge (Protocol 2 lines 22-23), verifying inline when
// the engine asks for it. meta is the arriving content's access
// metadata.
func (r *Router) EdgeOnAggregatedData(t *core.Tag, meta core.ContentMeta, now time.Time) Verdict {
	dec := r.engine.CheckContent(ContentInput{
		Op: OpEdgeAggregate, Tag: t, Meta: meta, Now: now,
	})
	if !dec.NeedsVerify() {
		return dec
	}
	err := r.validator.Validate(t, now)
	return r.engine.CheckContent(ContentInput{
		Op: OpEdgeAggregate, Phase: PhasePostVerify, Tag: t, Meta: meta, Now: now, VerifyErr: err,
	})
}

// --- Protocol 3: content router ---------------------------------------------

// ContentOnInterest runs the content-router checkpoint to completion,
// verifying inline when the engine asks for it. The content is returned
// even alongside a NACK so that valid requests aggregated in downstream
// PITs can still be satisfied — the paper's deliberate bandwidth/abuse
// trade-off (§5.B).
func (r *Router) ContentOnInterest(t *core.Tag, meta core.ContentMeta, flag float64, now time.Time) Verdict {
	dec := r.ContentOnInterestFast(t, meta, flag, now)
	if dec.NeedsVerify() {
		return r.ContentVerifyMiss(t, dec.Flag, now)
	}
	return dec
}

// ContentOnInterestFast is the cheap half of ContentOnInterest. When
// the verdict is ActionVerify the caller must finish with
// ContentVerifyMiss, passing the verdict's Flag (the effective F after
// the DisableCollaboration ablation).
func (r *Router) ContentOnInterestFast(t *core.Tag, meta core.ContentMeta, flag float64, now time.Time) Verdict {
	return r.engine.CheckInterest(InterestInput{
		Op: OpContent, Tag: t, Meta: meta, Flag: flag, Now: now,
	})
}

// ContentVerifyMiss completes a ContentOnInterestFast verdict that
// reported ActionVerify: re-check the cheap gates, verify the
// signature, and fold the outcome into the engine.
func (r *Router) ContentVerifyMiss(t *core.Tag, flag float64, now time.Time) Verdict {
	if pre := r.engine.CheckInterest(InterestInput{
		Op: OpContent, Phase: PhasePreVerify, Tag: t, Flag: flag, Now: now,
	}); pre.Denied() {
		return pre
	}
	err := r.validator.Validate(t, now)
	return r.engine.CheckInterest(InterestInput{
		Op: OpContent, Phase: PhasePostVerify, Tag: t, Flag: flag, Now: now, VerifyErr: err,
	})
}

// --- Protocol 4: intermediate router -----------------------------------------

// IntermediateOnAggregatedContent validates one aggregated PIT tuple
// <T_w, F, InFace_w> when the content arrives (Protocol 4 lines 11-26),
// verifying inline when the engine asks for it.
func (r *Router) IntermediateOnAggregatedContent(t *core.Tag, meta core.ContentMeta, flag float64, now time.Time) Verdict {
	dec := r.engine.CheckContent(ContentInput{
		Op: OpAggregate, Tag: t, Meta: meta, Flag: flag, Now: now,
	})
	if !dec.NeedsVerify() {
		return dec
	}
	err := r.validator.Validate(t, now)
	return r.engine.CheckContent(ContentInput{
		Op: OpAggregate, Phase: PhasePostVerify, Tag: t, Meta: meta, Flag: dec.Flag, Now: now, VerifyErr: err,
	})
}
