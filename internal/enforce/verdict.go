package enforce

import "github.com/tactic-icn/tactic/internal/core"

// Action is what the plane must do with the packet being decided.
type Action uint8

const (
	// ActionDeliver forwards/delivers the packet.
	ActionDeliver Action = iota
	// ActionDeny drops the packet and returns a NACK carrying the
	// verdict's reason (where the protocol path NACKs at all).
	ActionDeny
	// ActionVerify reports the decision is incomplete: a signature
	// verification is required before the verdict can be final. The
	// caller runs the validator (inline, or after parking the packet in
	// a verification pool) and finishes the exchange with a
	// PhasePostVerify call carrying the validator's outcome.
	ActionVerify
)

// String returns a stable label for logs and golden files.
func (a Action) String() string {
	switch a {
	case ActionDeliver:
		return "deliver"
	case ActionDeny:
		return "deny"
	case ActionVerify:
		return "verify"
	default:
		return "action(?)"
	}
}

// Stage is the enforcement checkpoint that produced a verdict.
type Stage uint8

const (
	StageNone Stage = iota
	// StageEdgeInterest is Protocol 2's On-Interest procedure (plus the
	// edge half of Protocol 1).
	StageEdgeInterest
	// StageContent is Protocol 3 at a router serving the content (plus
	// the content half of Protocol 1).
	StageContent
	// StageEdgeData is Protocol 2's On-Content procedure for the
	// primary PIT record.
	StageEdgeData
	// StageAggregate is aggregated-tag validation on content arrival:
	// Protocol 2 lines 22-23 at the edge, Protocol 4 lines 11-26 at an
	// intermediate router.
	StageAggregate
)

// String returns a stable label for logs and golden files.
func (s Stage) String() string {
	switch s {
	case StageNone:
		return "none"
	case StageEdgeInterest:
		return "edge-interest"
	case StageContent:
		return "content"
	case StageEdgeData:
		return "edge-data"
	case StageAggregate:
		return "aggregate"
	default:
		return "stage(?)"
	}
}

// Verdict is the typed outcome of one enforcement decision. It unifies
// the per-protocol decision structs the planes used to consume
// (EdgeInterestDecision / ContentDecision / AggregateDecision): every
// checkpoint now returns the same shape, so the planes' plumbing and
// the golden verdict matrix speak one language.
type Verdict struct {
	// Action is deliver, deny, or verification-required.
	Action Action
	// Stage is the checkpoint that produced this verdict.
	Stage Stage
	// Reason records why a packet was denied; nil on deliver. On
	// ActionVerify it is nil — the reason, if any, arrives with the
	// post-verify verdict.
	Reason error
	// Flag is the F value to carry in the forwarded packet: 0 when this
	// router did not find the tag in its filter, the filter's FPP on a
	// hit (TACTIC's collaborative vouching; always 0 under IBAC).
	Flag float64
	// BFHit reports the validation cache vouched for the tag, skipping
	// the signature check (informational, for tracing).
	BFHit bool
	// Verified reports a signature verification ran for this decision
	// (informational, for tracing).
	Verified bool
}

// Denied reports the packet must be dropped (and NACKed where the path
// NACKs).
func (v Verdict) Denied() bool { return v.Action == ActionDeny }

// NeedsVerify reports the decision is incomplete pending a signature
// verification.
func (v Verdict) NeedsVerify() bool { return v.Action == ActionVerify }

// NackCode is the wire NACK reason code for a denial (0 when none).
func (v Verdict) NackCode() uint8 { return core.ReasonCode(v.Reason) }

// ReasonLabel is the stable metric/golden-file label for the denial
// reason ("" when none).
func (v Verdict) ReasonLabel() string {
	if v.Reason == nil {
		return ""
	}
	return core.ReasonLabel(v.Reason)
}

// Shed is the verdict a plane uses when its admission budget rejects a
// verification-needing packet (the bounded verify pool's shed policy).
// Admission itself is plumbing — budgets are per-face resources the
// engine never sees — but the resulting NACK policy is enforcement, so
// the verdict is minted here to keep all deny reasons in one place.
func Shed(stage Stage) Verdict {
	return Verdict{Action: ActionDeny, Stage: stage, Reason: core.ErrOverload}
}
