package enforce

import (
	"math/rand"
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/bloom"
	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/pki"
)

// benchRouter builds a router with a pre-validated tag in its filter.
func benchRouter(b *testing.B, cfg core.Config) (*Router, *core.Tag, core.ContentMeta) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	signer, err := pki.GenerateFast(rng, names.MustParse("/prov0/KEY/1"))
	if err != nil {
		b.Fatal(err)
	}
	reg := pki.NewRegistry()
	if err := reg.Register(signer.Locator(), signer.Public()); err != nil {
		b.Fatal(err)
	}
	bf, err := bloom.NewPaper(500, 1e-4)
	if err != nil {
		b.Fatal(err)
	}
	r := NewRouter("bench", bf, core.NewTagValidator(reg), rng, cfg)
	tag, err := core.IssueTag(signer, names.MustParse("/u/alice/KEY/1"), 3, core.AccessPathOf("ap0"), time.Unix(1<<31, 0))
	if err != nil {
		b.Fatal(err)
	}
	meta := core.ContentMeta{Name: names.MustParse("/prov0/obj/c0"), Level: 2, ProviderKey: signer.Locator()}
	r.EdgeOnTagResponse(tag) // warm the filter (TACTIC; IBAC warms lazily)
	return r, tag, meta
}

// BenchmarkEdgeOnInterestHit is TACTIC's hot path: pre-check + BF hit.
func BenchmarkEdgeOnInterestHit(b *testing.B) {
	r, tag, meta := benchRouter(b, core.Config{})
	now := time.Unix(10, 0)
	ap := core.AccessPathOf("ap0")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := r.EdgeOnInterest(tag, ap, meta.Name, now)
		if d.Denied() {
			b.Fatal(d.Reason)
		}
	}
}

// BenchmarkEdgeOnInterestHitIBAC is the same hot path under the IBAC
// backend: pre-check + (token, name) cache hit after one warm-up
// verification.
func BenchmarkEdgeOnInterestHitIBAC(b *testing.B) {
	r, tag, meta := benchRouter(b, core.Config{Scheme: core.SchemeIBAC})
	now := time.Unix(10, 0)
	ap := core.AccessPathOf("ap0")
	if d := r.EdgeOnInterest(tag, ap, meta.Name, now); d.Denied() {
		b.Fatal(d.Reason)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := r.EdgeOnInterest(tag, ap, meta.Name, now)
		if d.Denied() {
			b.Fatal(d.Reason)
		}
	}
}

// BenchmarkContentOnInterestTrusted is the content router's common case:
// F != 0, no re-validation.
func BenchmarkContentOnInterestTrusted(b *testing.B) {
	r, tag, meta := benchRouter(b, core.Config{})
	now := time.Unix(10, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := r.ContentOnInterest(tag, meta, 1e-6, now)
		if d.Denied() {
			b.Fatal(d.Reason)
		}
	}
}

// BenchmarkContentOnInterestIBACHit is the IBAC content router's common
// case: no vouching, every request pays its own (token, name) lookup.
func BenchmarkContentOnInterestIBACHit(b *testing.B) {
	r, tag, meta := benchRouter(b, core.Config{Scheme: core.SchemeIBAC})
	now := time.Unix(10, 0)
	if d := r.ContentOnInterest(tag, meta, 0, now); d.Denied() {
		b.Fatal(d.Reason)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := r.ContentOnInterest(tag, meta, 0, now)
		if d.Denied() {
			b.Fatal(d.Reason)
		}
	}
}

// BenchmarkContentOnInterestVerify is the expensive path: BF disabled,
// full signature verification per request (the NoBloomFilter ablation's
// per-request cost).
func BenchmarkContentOnInterestVerify(b *testing.B) {
	r, tag, meta := benchRouter(b, core.Config{DisableBloomFilter: true})
	now := time.Unix(10, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := r.ContentOnInterest(tag, meta, 0, now)
		if d.Denied() {
			b.Fatal(d.Reason)
		}
	}
}
