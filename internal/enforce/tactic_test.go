package enforce

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/tactic-icn/tactic/internal/bloom"
	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
)

// --- Protocol 2: edge router --------------------------------------------------

func TestEdgeOnInterestFlagProgression(t *testing.T) {
	r, prov := testRouter(t, 23, core.Config{})
	now := testTime(10)
	tag := issueTestTag(t, prov, 1, core.AccessPathOf("ap0"), testTime(100))

	// First sight: tag not in BF, F = 0.
	d := r.EdgeOnInterest(tag, core.AccessPathOf("ap0"), testContentName, now)
	if d.Denied() || d.Flag != 0 {
		t.Fatalf("first interest: %+v", d)
	}
	// Simulate upstream validation: Data returns with F = 0, edge
	// inserts (Protocol 2 lines 14-15).
	if r.EdgeOnData(tag, 0, false).Denied() {
		t.Fatal("valid data should be delivered")
	}
	// Second sight: in BF, F = FPP > 0.
	d = r.EdgeOnInterest(tag, core.AccessPathOf("ap0"), testContentName, now)
	if d.Denied() {
		t.Fatalf("second interest dropped: %v", d.Reason)
	}
	if d.Flag <= 0 || d.Flag >= 1 {
		t.Errorf("second interest flag = %g, want the BF's FPP in (0,1)", d.Flag)
	}
	if d.Flag != r.Bloom().FPP() {
		t.Errorf("flag %g != BF FPP %g", d.Flag, r.Bloom().FPP())
	}
}

func TestEdgeOnInterestAccessPathMismatch(t *testing.T) {
	// Threat (e): tag shared to a different location.
	r, prov := testRouter(t, 24, core.Config{})
	tag := issueTestTag(t, prov, 1, core.AccessPathOf("ap-home"), testTime(100))
	d := r.EdgeOnInterest(tag, core.AccessPathOf("ap-away"), testContentName, testTime(10))
	if !d.Denied() || !errors.Is(d.Reason, core.ErrAccessPathMismatch) {
		t.Errorf("shared tag: %+v", d)
	}
}

func TestEdgeOnInterestPreCheckDrops(t *testing.T) {
	r, prov := testRouter(t, 25, core.Config{})
	now := testTime(10)
	expired := issueTestTag(t, prov, 1, 0, testTime(5))
	if d := r.EdgeOnInterest(expired, 0, testContentName, now); !d.Denied() || !errors.Is(d.Reason, core.ErrTagExpired) {
		t.Errorf("expired: %+v", d)
	}
	cross := issueTestTag(t, prov, 1, 0, testTime(100))
	if d := r.EdgeOnInterest(cross, 0, names.MustParse("/prov9/x/y"), now); !d.Denied() || !errors.Is(d.Reason, core.ErrPrefixMismatch) {
		t.Errorf("cross-provider: %+v", d)
	}
}

func TestEdgeOnInterestNilTagForwards(t *testing.T) {
	// Tagless requests must reach content routers so Public content
	// stays reachable; enforcement for private content happens there.
	r, _ := testRouter(t, 26, core.Config{})
	d := r.EdgeOnInterest(nil, 0, testContentName, testTime(10))
	if d.Denied() || d.Flag != 0 {
		t.Errorf("nil tag: %+v", d)
	}
}

func TestEdgeOnDataNACKDropsDelivery(t *testing.T) {
	r, prov := testRouter(t, 27, core.Config{})
	tag := issueTestTag(t, prov, 1, 0, testTime(100))
	if !r.EdgeOnData(tag, 0, true).Denied() {
		t.Error("NACKed data must not be delivered (Protocol 2 lines 19-20)")
	}
	// And the tag must not have been inserted.
	if r.Bloom().Count() != 0 {
		t.Error("NACKed data should not insert the tag")
	}
}

func TestEdgeOnDataInsertOnlyWhenFlagZero(t *testing.T) {
	// Protocol 2 lines 14-17: F = 0 -> insert; F != 0 -> skip
	// re-insertion.
	r, prov := testRouter(t, 28, core.Config{})
	tag := issueTestTag(t, prov, 1, 0, testTime(100))
	r.EdgeOnData(tag, 0.001, false)
	if got := r.Bloom().Stats().Insertions; got != 0 {
		t.Errorf("F != 0 inserted %d times", got)
	}
	r.EdgeOnData(tag, 0, false)
	if got := r.Bloom().Stats().Insertions; got != 1 {
		t.Errorf("F = 0 insertions = %d, want 1", got)
	}
}

func TestEdgeOnTagResponse(t *testing.T) {
	// Protocol 2 lines 11-12: fresh tag from the producer is inserted.
	r, prov := testRouter(t, 29, core.Config{})
	tag := issueTestTag(t, prov, 1, 0, testTime(100))
	r.EdgeOnTagResponse(tag)
	if !r.Bloom().Contains(tag.CacheKey()) {
		t.Error("tag response should be inserted into the BF")
	}
}

func TestEdgeOnAggregatedData(t *testing.T) {
	r, prov := testRouter(t, 30, core.Config{})
	now := testTime(10)
	valid := issueTestTag(t, prov, 1, 0, testTime(100))

	// Not in BF: signature verified, inserted, delivered.
	if r.EdgeOnAggregatedData(valid, aggMeta(prov), now).Denied() {
		t.Error("valid aggregated tag should be delivered")
	}
	if r.Validator().Verifications() != 1 {
		t.Errorf("verifications = %d, want 1", r.Validator().Verifications())
	}
	// Second time: BF hit, no extra verification.
	if r.EdgeOnAggregatedData(valid, aggMeta(prov), now).Denied() {
		t.Error("BF-cached aggregated tag should be delivered")
	}
	if r.Validator().Verifications() != 1 {
		t.Errorf("BF hit still verified (count %d)", r.Validator().Verifications())
	}
	// Invalid signature: dropped.
	forged := issueTestTag(t, prov, 1, 0, testTime(100))
	forged.Signature = append([]byte(nil), forged.Signature...)
	forged.Signature[0] ^= 0xff
	if !r.EdgeOnAggregatedData(forged, aggMeta(prov), now).Denied() {
		t.Error("forged aggregated tag delivered")
	}
	if !r.EdgeOnAggregatedData(nil, aggMeta(prov), now).Denied() {
		t.Error("nil aggregated tag delivered")
	}
}

// --- Protocol 3: content router --------------------------------------------------

func TestContentOnInterestPublicBypass(t *testing.T) {
	r, prov := testRouter(t, 31, core.Config{})
	meta := core.ContentMeta{Name: testContentName, Level: core.Public, ProviderKey: prov.Locator()}
	d := r.ContentOnInterest(nil, meta, 0, testTime(10))
	if d.Denied() {
		t.Error("public content must not require a tag")
	}
	if r.Validator().Verifications() != 0 || r.Bloom().Stats().Lookups != 0 {
		t.Error("public content triggered tag work")
	}
}

func TestContentOnInterestPrivateNoTag(t *testing.T) {
	// Threat (a): private content without a tag.
	r, prov := testRouter(t, 32, core.Config{})
	meta := core.ContentMeta{Name: testContentName, Level: 1, ProviderKey: prov.Locator()}
	d := r.ContentOnInterest(nil, meta, 0, testTime(10))
	if !d.Denied() || !errors.Is(d.Reason, core.ErrNoTag) {
		t.Errorf("tagless private request: %+v", d)
	}
}

func TestContentOnInterestFlagZeroPath(t *testing.T) {
	r, prov := testRouter(t, 33, core.Config{})
	now := testTime(10)
	meta := core.ContentMeta{Name: testContentName, Level: 1, ProviderKey: prov.Locator()}
	tag := issueTestTag(t, prov, 1, 0, testTime(100))

	// Miss -> verify -> insert -> serve with F = 0.
	d := r.ContentOnInterest(tag, meta, 0, now)
	if d.Denied() || d.Flag != 0 {
		t.Fatalf("first request: %+v", d)
	}
	if r.Validator().Verifications() != 1 {
		t.Errorf("verifications = %d", r.Validator().Verifications())
	}
	// Hit -> serve with F = 0, no verification.
	d = r.ContentOnInterest(tag, meta, 0, now)
	if d.Denied() || d.Flag != 0 {
		t.Fatalf("second request: %+v", d)
	}
	if r.Validator().Verifications() != 1 {
		t.Errorf("BF hit still verified (count %d)", r.Validator().Verifications())
	}
}

func TestContentOnInterestInvalidTagNACKs(t *testing.T) {
	r, prov := testRouter(t, 34, core.Config{})
	meta := core.ContentMeta{Name: testContentName, Level: 1, ProviderKey: prov.Locator()}
	forged := issueTestTag(t, prov, 1, 0, testTime(100))
	forged.Signature = append([]byte(nil), forged.Signature...)
	forged.Signature[3] ^= 0x55
	d := r.ContentOnInterest(forged, meta, 0, testTime(10))
	if !d.Denied() || !errors.Is(d.Reason, core.ErrTagForged) {
		t.Errorf("forged tag: %+v", d)
	}
}

func TestContentOnInterestPreChecks(t *testing.T) {
	r, prov := testRouter(t, 35, core.Config{})
	now := testTime(10)
	meta := core.ContentMeta{Name: testContentName, Level: 5, ProviderKey: prov.Locator()}
	// Threat (d): insufficient access level.
	low := issueTestTag(t, prov, 2, 0, testTime(100))
	if d := r.ContentOnInterest(low, meta, 0, now); !d.Denied() || !errors.Is(d.Reason, core.ErrInsufficientLevel) {
		t.Errorf("insufficient level: %+v", d)
	}
	// Pre-check must fire before any expensive work.
	if r.Validator().Verifications() != 0 {
		t.Error("pre-check failure still verified a signature")
	}
}

func TestContentOnInterestProbabilisticRevalidation(t *testing.T) {
	// With F = 1 the content router must always re-validate; a forged
	// tag that slipped through an edge false positive is caught.
	r, prov := testRouter(t, 36, core.Config{})
	meta := core.ContentMeta{Name: testContentName, Level: 1, ProviderKey: prov.Locator()}
	forged := issueTestTag(t, prov, 1, 0, testTime(100))
	forged.Signature = append([]byte(nil), forged.Signature...)
	forged.Signature[0] ^= 1
	d := r.ContentOnInterest(forged, meta, 1.0, testTime(10))
	if !d.Denied() {
		t.Error("F = 1 must force re-validation and catch the forgery")
	}

	// With F ~ 0 the router trusts the edge and serves without
	// verification, copying F into the Data.
	r2, prov2 := testRouter(t, 37, core.Config{})
	meta2 := core.ContentMeta{Name: testContentName, Level: 1, ProviderKey: prov2.Locator()}
	tag := issueTestTag(t, prov2, 1, 0, testTime(100))
	const tiny = 1e-12
	d = r2.ContentOnInterest(tag, meta2, tiny, testTime(10))
	if d.Denied() {
		t.Errorf("tiny-F request NACKed: %v", d.Reason)
	}
	if d.Flag != tiny {
		t.Errorf("data flag = %g, want F copied (%g)", d.Flag, tiny)
	}
	if r2.Validator().Verifications() != 0 {
		t.Error("tiny F should (almost surely) skip verification")
	}
}

func TestContentOnInterestRevalidationFrequencyTracksF(t *testing.T) {
	// Re-validation should happen with probability ~F.
	r, prov := testRouter(t, 38, core.Config{})
	meta := core.ContentMeta{Name: testContentName, Level: 1, ProviderKey: prov.Locator()}
	tag := issueTestTag(t, prov, 1, 0, testTime(100))
	const f, trials = 0.25, 4000
	for i := 0; i < trials; i++ {
		r.ContentOnInterest(tag, meta, f, testTime(10))
	}
	got := float64(r.Validator().Verifications()) / trials
	if got < f*0.8 || got > f*1.2 {
		t.Errorf("re-validation rate %.3f, want ~%.2f", got, f)
	}
}

// --- Protocol 4: intermediate router ---------------------------------------------

func TestIntermediateAggregatedValidation(t *testing.T) {
	r, prov := testRouter(t, 39, core.Config{})
	now := testTime(10)
	tag := issueTestTag(t, prov, 1, 0, testTime(100))

	// F = 0, BF miss: verify + insert + forward.
	d := r.IntermediateOnAggregatedContent(tag, aggMeta(prov), 0, now)
	if d.Denied() || d.Flag != 0 {
		t.Fatalf("F=0 aggregated: %+v", d)
	}
	if r.Validator().Verifications() != 1 {
		t.Errorf("verifications = %d", r.Validator().Verifications())
	}
	// F = 0, BF hit: forward without verification.
	d = r.IntermediateOnAggregatedContent(tag, aggMeta(prov), 0, now)
	if d.Denied() {
		t.Fatalf("BF hit NACKed: %v", d.Reason)
	}
	if r.Validator().Verifications() != 1 {
		t.Error("BF hit still verified")
	}
	// Invalid tag: forward with NACK (content still flows).
	forged := issueTestTag(t, prov, 1, 0, testTime(100))
	forged.Signature = append([]byte(nil), forged.Signature...)
	forged.Signature[1] ^= 2
	d = r.IntermediateOnAggregatedContent(forged, aggMeta(prov), 0, now)
	if !d.Denied() {
		t.Error("forged aggregated tag forwarded without NACK")
	}
	// nil tag NACKs.
	if d := r.IntermediateOnAggregatedContent(nil, aggMeta(prov), 0, now); !d.Denied() {
		t.Error("nil aggregated tag forwarded without NACK")
	}
}

func TestIntermediateTrustsEdgeFlag(t *testing.T) {
	r, prov := testRouter(t, 40, core.Config{})
	tag := issueTestTag(t, prov, 1, 0, testTime(100))
	const tiny = 1e-12
	d := r.IntermediateOnAggregatedContent(tag, aggMeta(prov), tiny, testTime(10))
	if d.Denied() || d.Flag != tiny {
		t.Errorf("trusted aggregated tag: %+v", d)
	}
	if r.Validator().Verifications() != 0 {
		t.Error("trusted tag should not be verified")
	}
}

// --- Ablations ---------------------------------------------------------------------

func TestAblationDisableBloomFilter(t *testing.T) {
	r, prov := testRouter(t, 41, core.Config{DisableBloomFilter: true})
	now := testTime(10)
	meta := core.ContentMeta{Name: testContentName, Level: 1, ProviderKey: prov.Locator()}
	tag := issueTestTag(t, prov, 1, 0, testTime(100))
	for i := 0; i < 5; i++ {
		if d := r.ContentOnInterest(tag, meta, 0, now); d.Denied() {
			t.Fatalf("valid tag NACKed: %v", d.Reason)
		}
	}
	if got := r.Validator().Verifications(); got != 5 {
		t.Errorf("without BF every request verifies: got %d, want 5", got)
	}
	if r.Bloom().Stats().Insertions != 0 || r.Bloom().Stats().Lookups != 0 {
		t.Error("disabled BF was touched")
	}
}

func TestAblationDisableCollaboration(t *testing.T) {
	// Ignoring F forces the router onto the F = 0 path: BF/verify even
	// for edge-vouched tags.
	r, prov := testRouter(t, 42, core.Config{DisableCollaboration: true})
	meta := core.ContentMeta{Name: testContentName, Level: 1, ProviderKey: prov.Locator()}
	tag := issueTestTag(t, prov, 1, 0, testTime(100))
	d := r.ContentOnInterest(tag, meta, 0.5, testTime(10))
	if d.Denied() {
		t.Fatalf("valid tag NACKed: %v", d.Reason)
	}
	if r.Validator().Verifications() != 1 {
		t.Errorf("collaboration-disabled router should verify: %d", r.Validator().Verifications())
	}
	if d.Flag != 0 {
		t.Errorf("flag = %g, want 0 (tag validated here)", d.Flag)
	}
}

func TestAblationDisablePrecheck(t *testing.T) {
	// Without the pre-check, an expired tag reaches the signature stage
	// — and still fails there (the validator re-checks expiry), but now
	// at full cost when the signature is checked.
	r, prov := testRouter(t, 43, core.Config{DisablePrecheck: true})
	now := testTime(10)
	// Cross-provider tag passes the edge with pre-check disabled.
	cross := issueTestTag(t, prov, 1, 0, testTime(100))
	d := r.EdgeOnInterest(cross, 0, names.MustParse("/prov9/x/y"), now)
	if d.Denied() {
		t.Errorf("precheck disabled but edge still dropped: %v", d.Reason)
	}
}

func TestAblationDisableAutoReset(t *testing.T) {
	prov := newTestSigner(t, 44, "/prov0/KEY/1")
	reg := newTestRegistry(t, prov)
	bf, err := bloom.NewPaper(8, 1e-2) // tiny filter saturates fast
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter("r", bf, core.NewTagValidator(reg), rand.New(rand.NewSource(44)), core.Config{DisableAutoReset: true})
	for i := 0; i < 100; i++ {
		tag := issueTestTag(t, prov, 1, core.AccessPath(i), testTime(100))
		r.EdgeOnTagResponse(tag)
	}
	if bf.Stats().Resets != 0 {
		t.Errorf("auto-reset disabled but filter reset %d times", bf.Stats().Resets)
	}
	if !bf.Saturated() {
		t.Error("filter should be saturated")
	}
}

func TestAutoResetKeepsNewestTag(t *testing.T) {
	prov := newTestSigner(t, 45, "/prov0/KEY/1")
	reg := newTestRegistry(t, prov)
	bf, err := bloom.NewPaper(8, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter("r", bf, core.NewTagValidator(reg), rand.New(rand.NewSource(45)), core.Config{})
	var last *core.Tag
	for i := 0; i < 200; i++ {
		last = issueTestTag(t, prov, 1, core.AccessPath(i), testTime(100))
		r.EdgeOnTagResponse(last)
	}
	if bf.Stats().Resets == 0 {
		t.Fatal("expected at least one auto-reset")
	}
	if !bf.Contains(last.CacheKey()) {
		t.Error("the most recently validated tag should survive the reset")
	}
}
