package enforce

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"github.com/tactic-icn/tactic/internal/bloom"
	"github.com/tactic-icn/tactic/internal/core"
)

// The collaboration protocol's contract (§4.B): when an edge filter
// vouches for a tag, the forwarded Interest carries F = FPP(BF_rE) and
// the content router re-verifies the signature with exactly that
// probability. This test pins the rate end to end over a deterministic
// seeded two-hop chain — edge decision feeding the content decision —
// and checks the measured re-check rate against binomial bounds
// around F.
func TestCoreRecheckRateMatchesEdgeFPP(t *testing.T) {
	prov := newTestSigner(t, 40, "/prov0/KEY/1")
	reg := newTestRegistry(t, prov)

	// A deliberately small edge filter, preloaded with junk entries so
	// its false-positive probability sits near 5% — large enough that
	// 10k trials resolve the rate, small enough to stay a probability.
	edgeBF, err := bloom.NewWithShape(512, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 81; i++ {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], i)
		edgeBF.Add(b[:])
	}
	coreBF, err := bloom.NewPaper(500, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	edge := NewRouter("edge", edgeBF, core.NewTagValidator(reg), rand.New(rand.NewSource(41)), core.Config{})
	coreR := NewRouter("core", coreBF, core.NewTagValidator(reg), rand.New(rand.NewSource(42)), core.Config{})

	tag := issueTestTag(t, prov, 1, 0, testTime(1000))
	meta := core.ContentMeta{Name: testContentName, Level: 1, ProviderKey: prov.Locator()}
	now := testTime(10)

	// The edge learns the tag the way Protocol 2 does — from the
	// registration response.
	edge.EdgeOnTagResponse(tag)
	F := edgeBF.FPP()
	if F < 0.01 || F > 0.2 {
		t.Fatalf("edge filter FPP = %g, preload missed the target regime", F)
	}

	const trials = 10000
	rechecks := 0
	for i := 0; i < trials; i++ {
		edec := edge.EdgeOnInterest(tag, 0, testContentName, now)
		if edec.Denied() || !edec.BFHit {
			t.Fatalf("trial %d: edge decision = %+v, want BF-vouched forward", i, edec)
		}
		if edec.Flag != F {
			t.Fatalf("trial %d: forwarded flag %g != FPP(BF_rE) %g", i, edec.Flag, F)
		}
		cdec := coreR.ContentOnInterest(tag, meta, edec.Flag, now)
		if cdec.Denied() {
			t.Fatalf("trial %d: valid tag NACKed: %v", i, cdec.Reason)
		}
		if cdec.Flag != F {
			t.Fatalf("trial %d: content decision rewrote flag %g -> %g", i, F, cdec.Flag)
		}
		if cdec.Verified {
			rechecks++
		}
	}

	// The F != 0 path must never have inserted the tag into the core
	// filter — otherwise later flag-0 requests would skip validation the
	// edge never performed.
	if coreBF.Count() != 0 {
		t.Errorf("core filter gained %d entries on the F != 0 path, want 0", coreBF.Count())
	}

	rate := float64(rechecks) / trials
	sigma := math.Sqrt(F * (1 - F) / trials)
	if math.Abs(rate-F) > 4*sigma {
		t.Errorf("re-check rate %.5f vs F %.5f (|Δ| > 4σ = %.5f)", rate, F, 4*sigma)
	}
}
