// Package enforce is the access-control decision core shared by every
// plane of this reproduction. It holds exactly the logic that used to
// be implemented three times — in the simulator's router, the live
// forwarder, and the conformance oracle's reference model — behind one
// Engine interface, so the planes are reduced to plumbing and the
// conformance surface shrinks to I/O.
//
// An Engine is pure in the I/O sense: it performs no signature
// verification, no network access, and no blocking work. Its inputs are
// explicit — tag, content name, clock, the Bloom-filter view and
// revocation set it was constructed over — and its outputs are typed
// Verdicts (deliver/deny + stage + reason + NACK code). The one
// expensive operation in any scheme, signature verification, is driven
// by the caller through a three-phase exchange: a PhaseFast call may
// return ActionVerify, the caller runs its validator however it likes
// (inline, or parked in a bounded pool), and a PhasePostVerify call
// carrying the validator's error folds the outcome back into the
// engine's state and final verdict. PhasePreVerify re-runs the cheap
// gates (revocation) for packets that sat parked while control-plane
// pushes landed.
//
// Two backends exist: the paper's tag-based scheme (core.SchemeTACTIC)
// and Interest-based access control (core.SchemeIBAC). The Router type
// in this package pairs an Engine with a core.TagValidator and exposes
// the protocol-shaped methods the planes call.
package enforce

import (
	"math/rand"
	"time"

	"github.com/tactic-icn/tactic/internal/bloom"
	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
)

// Op identifies the protocol path being decided.
type Op uint8

const (
	// OpEdgeInterest is Protocol 2's On-Interest at an edge router.
	OpEdgeInterest Op = iota + 1
	// OpContent is Protocol 3 at a router serving the content.
	OpContent
	// OpEdgeData is Protocol 2's On-Content for the primary PIT record.
	OpEdgeData
	// OpEdgeAggregate is Protocol 2 lines 22-23: one aggregated PIT tag
	// at the edge on content arrival.
	OpEdgeAggregate
	// OpAggregate is Protocol 4 lines 11-26: one aggregated PIT tag at
	// an intermediate router on content arrival.
	OpAggregate
)

// Phase sequences the engine <-> caller verification exchange.
type Phase uint8

const (
	// PhaseFast runs every cheap check; it may return ActionVerify.
	PhaseFast Phase = iota
	// PhasePreVerify re-runs the cheap gates that may have changed while
	// the packet was parked (a revocation push can land between the fast
	// decision and the worker picking the job up). Verdict is either a
	// denial or ActionVerify ("go ahead").
	PhasePreVerify
	// PhasePostVerify folds the caller's verification outcome
	// (VerifyErr) into engine state and returns the final verdict.
	PhasePostVerify
)

// InterestInput carries the explicit inputs of an Interest-path
// decision (OpEdgeInterest, OpContent).
type InterestInput struct {
	Op    Op
	Phase Phase
	// Tag is the request's tag; nil for tagless requests.
	Tag *core.Tag
	// Name is the requested content name (edge path).
	Name names.Name
	// RequestAP is the access path the request arrived over (edge path).
	RequestAP core.AccessPath
	// Meta is the stored content's access metadata (content path).
	Meta core.ContentMeta
	// Flag is the incoming F value (content path); on PhasePostVerify it
	// must be the effective F the fast verdict reported.
	Flag float64
	// Now is the decision clock.
	Now time.Time
	// VerifyErr is the validator's outcome (PhasePostVerify only; nil
	// means the signature checked out).
	VerifyErr error
}

// ContentInput carries the explicit inputs of a Data-path decision
// (OpEdgeData, OpEdgeAggregate, OpAggregate).
type ContentInput struct {
	Op    Op
	Phase Phase
	// Tag is the PIT record's tag; nil for tagless records.
	Tag *core.Tag
	// Meta is the arriving content's access metadata.
	Meta core.ContentMeta
	// Flag is the F value: the arriving Data's F for OpEdgeData, the
	// aggregated record's stored F otherwise.
	Flag float64
	// Nack reports the arriving Data carried a NACK (OpEdgeData).
	Nack bool
	// Now is the decision clock.
	Now time.Time
	// VerifyErr is the validator's outcome (PhasePostVerify only).
	VerifyErr error
}

// Engine is one enforcement scheme's decision core. Implementations are
// safe for concurrent use and I/O-free; see the package comment for the
// phase protocol.
type Engine interface {
	// Scheme identifies the backend.
	Scheme() core.Scheme
	// CheckInterest decides an Interest-path checkpoint.
	CheckInterest(in InterestInput) Verdict
	// CheckContent decides a Data-path checkpoint.
	CheckContent(in ContentInput) Verdict
	// OnTagIssued observes a registration response carrying a freshly
	// issued tag passing through this router (Protocol 2 lines 11-12).
	OnTagIssued(t *core.Tag)
	// OnRevocation observes one tag entering the revocation set the
	// engine was constructed over. The set itself is shared state
	// updated by the control plane; this hook lets a backend invalidate
	// derived caches. Both current backends check the set before any
	// cache lookup, so neither needs to act.
	OnRevocation(id core.TagID)
	// OnEpochRotate advances the validation cache to a new epoch,
	// demoting the current filter to the previous-epoch fallback. Stale
	// or duplicate epochs are ignored (reported false).
	OnEpochRotate(epoch uint64) bool
	// Epoch returns the current validation-cache epoch.
	Epoch() uint64
	// Bloom exposes the validation cache for metric collection (the
	// IBAC backend uses it as its (token, name) authorization cache).
	Bloom() *bloom.Filter
}

// New constructs the Engine selected by cfg.Scheme over the given
// Bloom-filter view, revocation set, and randomness stream.
func New(bf *bloom.Filter, rev *core.RevocationSet, rng *rand.Rand, cfg core.Config) Engine {
	switch cfg.Scheme {
	case core.SchemeIBAC:
		return newIBAC(bf, rev, cfg)
	default:
		return newTACTIC(bf, rev, rng, cfg)
	}
}
