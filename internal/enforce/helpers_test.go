package enforce

import (
	"math/rand"
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/bloom"
	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/pki"
)

func newTestSigner(t testing.TB, seed int64, locator string) *pki.FastKeyPair {
	t.Helper()
	kp, err := pki.GenerateFast(rand.New(rand.NewSource(seed)), names.MustParse(locator))
	if err != nil {
		t.Fatal(err)
	}
	return kp
}

// newTestRegistry registers the given signers.
func newTestRegistry(t testing.TB, signers ...pki.Signer) *pki.Registry {
	t.Helper()
	reg := pki.NewRegistry()
	for _, s := range signers {
		if err := reg.Register(s.Locator(), s.Public()); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

func testTime(sec int64) time.Time { return time.Unix(sec, 0) }

// testRouter builds an enforcement router with the given config, plus a
// provider signer enrolled in its registry.
func testRouter(t testing.TB, seed int64, cfg core.Config) (*Router, *pki.FastKeyPair) {
	t.Helper()
	prov := newTestSigner(t, seed, "/prov0/KEY/1")
	reg := newTestRegistry(t, prov)
	bf, err := bloom.NewPaper(500, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter("r1", bf, core.NewTagValidator(reg), rand.New(rand.NewSource(seed)), cfg)
	return r, prov
}

func issueTestTag(t testing.TB, prov pki.Signer, level core.AccessLevel, ap core.AccessPath, expiry time.Time) *core.Tag {
	t.Helper()
	tag, err := core.IssueTag(prov, names.MustParse("/u/alice/KEY/1"), level, ap, expiry)
	if err != nil {
		t.Fatal(err)
	}
	return tag
}

var testContentName = names.MustParse("/prov0/obj1/chunk0")

// aggMeta builds permissive content metadata for aggregate-path tests.
func aggMeta(prov pki.Signer) core.ContentMeta {
	return core.ContentMeta{Name: testContentName, Level: 1, ProviderKey: prov.Locator()}
}
