package enforce

import (
	"errors"
	"testing"

	"github.com/tactic-icn/tactic/internal/bloom"
	"github.com/tactic-icn/tactic/internal/core"
)

// Surface and parked-packet coverage for both backends: accessors, the
// stable string vocabularies, the PhasePreVerify re-checks, and the
// unknown-op guards.

func TestRouterSurfaceBothSchemes(t *testing.T) {
	for _, scheme := range []core.Scheme{core.SchemeTACTIC, core.SchemeIBAC} {
		t.Run(scheme.String(), func(t *testing.T) {
			r, prov := testRouter(t, 1, core.Config{Scheme: scheme})
			if r.ID() != "r1" {
				t.Errorf("ID = %q", r.ID())
			}
			if r.Scheme() != scheme || r.Engine().Scheme() != scheme {
				t.Errorf("scheme = %v / %v, want %v", r.Scheme(), r.Engine().Scheme(), scheme)
			}
			if r.Bloom() == nil || r.Validator() == nil || r.Revocations() == nil {
				t.Fatal("nil accessor")
			}
			if r.Epoch() != 0 {
				t.Errorf("fresh epoch = %d", r.Epoch())
			}
			if !r.RotateEpoch(1) || r.Epoch() != 1 {
				t.Errorf("rotation to epoch 1 failed (epoch=%d)", r.Epoch())
			}
			if r.RotateEpoch(1) {
				t.Error("duplicate epoch accepted")
			}

			// OnTagIssued: TACTIC pre-warms the cache with the fresh tag;
			// IBAC has nothing to cache until a (token, name) authorizes.
			tag := issueTestTag(t, prov, 1, 0, testTime(100))
			r.EdgeOnTagResponse(tag)
			wantWarm := scheme == core.SchemeTACTIC
			if got := r.Bloom().Contains(tag.CacheKey()); got != wantWarm {
				t.Errorf("cache contains issued tag = %t, want %t", got, wantWarm)
			}
		})
	}
}

func TestVerdictStrings(t *testing.T) {
	actions := map[Action]string{ActionDeliver: "deliver", ActionDeny: "deny", ActionVerify: "verify", Action(9): "action(?)"}
	for a, want := range actions {
		if a.String() != want {
			t.Errorf("Action(%d).String() = %q, want %q", a, a.String(), want)
		}
	}
	stages := map[Stage]string{StageNone: "none", StageEdgeInterest: "edge-interest", StageContent: "content", StageEdgeData: "edge-data", StageAggregate: "aggregate", Stage(9): "stage(?)"}
	for s, want := range stages {
		if s.String() != want {
			t.Errorf("Stage(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
	v := Verdict{Action: ActionDeny, Stage: StageEdgeInterest, Reason: core.ErrTagExpired}
	if v.NackCode() == 0 {
		t.Error("denial with reason has NACK code 0")
	}
	if v.ReasonLabel() != "expired" {
		t.Errorf("ReasonLabel = %q", v.ReasonLabel())
	}
	if (Verdict{}).ReasonLabel() != "" || (Verdict{}).NackCode() != 0 {
		t.Error("delivery verdict has a reason label or NACK code")
	}
}

// TestVerifyMissRevokedWhileParked: a revocation push lands while an
// Interest sits in the verification pool; the PhasePreVerify re-check
// must deny it before the signature work runs.
func TestVerifyMissRevokedWhileParked(t *testing.T) {
	for _, scheme := range []core.Scheme{core.SchemeTACTIC, core.SchemeIBAC} {
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := core.Config{Scheme: scheme, EdgeValidateOnMiss: true}
			r, prov := testRouter(t, 1, cfg)
			now := testTime(10)
			tag := issueTestTag(t, prov, 1, 0, testTime(100))

			d := r.EdgeOnInterestFast(tag, 0, testContentName, now)
			if !d.NeedsVerify() {
				t.Fatalf("fast edge path settled without verification: %+v", d)
			}
			if !r.ApplyRevocation(1, false, []core.TagID{tag.ID()}) {
				t.Fatal("revocation push rejected")
			}
			if d = r.EdgeVerifyMiss(tag, now); !d.Denied() || !errors.Is(d.Reason, core.ErrTagRevoked) {
				t.Fatalf("parked edge Interest not denied as revoked: %+v", d)
			}

			// Same race on the content checkpoint.
			r2, prov2 := testRouter(t, 2, cfg)
			tag2 := issueTestTag(t, prov2, 1, 0, testTime(100))
			meta := core.ContentMeta{Name: testContentName, Level: 1, ProviderKey: prov2.Locator()}
			d = r2.ContentOnInterestFast(tag2, meta, 0, now)
			if !d.NeedsVerify() {
				t.Fatalf("fast content path settled without verification: %+v", d)
			}
			if !r2.ApplyRevocation(1, false, []core.TagID{tag2.ID()}) {
				t.Fatal("revocation push rejected")
			}
			if d = r2.ContentVerifyMiss(tag2, d.Flag, now); !d.Denied() || !errors.Is(d.Reason, core.ErrTagRevoked) {
				t.Fatalf("parked content Interest not denied as revoked: %+v", d)
			}
		})
	}
}

// TestEngineUnknownOp: a malformed input (zero or mismatched Op) is
// denied at StageNone rather than silently delivered.
func TestEngineUnknownOp(t *testing.T) {
	for _, scheme := range []core.Scheme{core.SchemeTACTIC, core.SchemeIBAC} {
		t.Run(scheme.String(), func(t *testing.T) {
			r, _ := testRouter(t, 1, core.Config{Scheme: scheme})
			if v := r.Engine().CheckInterest(InterestInput{}); !v.Denied() || v.Stage != StageNone {
				t.Errorf("zero-op CheckInterest: %+v", v)
			}
			if v := r.Engine().CheckContent(ContentInput{Op: OpEdgeInterest}); !v.Denied() || v.Stage != StageNone {
				t.Errorf("mismatched-op CheckContent: %+v", v)
			}
		})
	}
}

// TestIBACDisableRevocationCheck: the ablation reaches the IBAC backend
// too — with it set, a pushed-revoked token verifies and delivers.
func TestIBACDisableRevocationCheck(t *testing.T) {
	r, prov := testRouter(t, 1, core.Config{Scheme: core.SchemeIBAC, DisableRevocationCheck: true})
	now := testTime(10)
	tag := issueTestTag(t, prov, 1, 0, testTime(100))
	r.ApplyRevocation(1, false, []core.TagID{tag.ID()})
	if d := r.EdgeOnInterest(tag, 0, testContentName, now); d.Denied() {
		t.Fatalf("revocation ablation ignored by IBAC edge: %+v", d)
	}
}

// TestRequestDrivenResetDegenerateShape: a filter whose FPP is already
// at its maximum gets the minimum threshold of one lookup per reset
// rather than zero (which would divide the cadence away).
func TestRequestDrivenResetDegenerateShape(t *testing.T) {
	bf, err := bloom.NewWithShape(8, 1, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	var c cache
	c.init(bf, core.Config{RequestDrivenReset: true})
	if c.requestResetThreshold != 1 {
		t.Fatalf("degenerate threshold = %d, want 1", c.requestResetThreshold)
	}
}
