package enforce

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/bloom"
	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/pki"
)

// The golden verdict matrix (testdata/verdict_matrix.json) pins the
// engine's threat-class x protocol-path behaviour for both schemes.
// The same file is replayed end to end by internal/oracle's golden test
// (reference model + sim plane + live forwarder), so a semantics change
// in either backend has to touch the one committed artifact.

// GoldenExpect is one expected final verdict cell.
type GoldenExpect struct {
	Delivered bool   `json:"delivered"`
	Stage     string `json:"stage"`
	Reason    string `json:"reason"`
}

// GoldenCase is one threat x path row of the matrix.
type GoldenCase struct {
	Name   string       `json:"name"`
	Threat string       `json:"threat"`
	Path   string       `json:"path"`
	Config string       `json:"config"`
	Tactic GoldenExpect `json:"tactic"`
	IBAC   GoldenExpect `json:"ibac"`
}

// Expect selects the scheme's expectation cell.
func (c GoldenCase) Expect(s core.Scheme) GoldenExpect {
	if s == core.SchemeIBAC {
		return c.IBAC
	}
	return c.Tactic
}

// LoadGoldenMatrix reads and decodes the committed matrix from path.
func LoadGoldenMatrix(t testing.TB, path string) []GoldenCase {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Cases []GoldenCase `json:"cases"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("decode %s: %v", path, err)
	}
	if len(doc.Cases) == 0 {
		t.Fatalf("empty golden matrix %s", path)
	}
	return doc.Cases
}

// goldenHarness is the two-router fixture one case replays against:
// fresh state per case so no Bloom learning or revocation leaks across
// rows.
type goldenHarness struct {
	edge, core  *Router
	prov, prov2 *pki.FastKeyPair
	meta        core.ContentMeta // private content, level 2, prov0
	metaPublic  core.ContentMeta
	homeAP      core.AccessPath
	now         time.Time
}

func newGoldenHarness(t testing.TB, scheme core.Scheme, hardened bool) *goldenHarness {
	t.Helper()
	h := &goldenHarness{
		homeAP: core.AccessPathOf("edge-0"),
		now:    testTime(10),
	}
	h.prov = newTestSigner(t, 1, "/prov0/KEY/1")
	h.prov2 = newTestSigner(t, 2, "/prov1/KEY/1")
	reg := newTestRegistry(t, h.prov, h.prov2)
	cfg := core.Config{Scheme: scheme, EnforceALOnAggregates: hardened}
	mk := func(id string, seed int64) *Router {
		bf, err := bloom.NewPaper(500, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		return NewRouter(id, bf, core.NewTagValidator(reg), rand.New(rand.NewSource(seed)), cfg)
	}
	h.edge = mk("edge-0", 11)
	h.core = mk("core-0", 12)
	h.meta = core.ContentMeta{Name: testContentName, Level: 2, ProviderKey: h.prov.Locator()}
	h.metaPublic = core.ContentMeta{Name: names.MustParse("/prov0/pub/chunk0"), Level: core.Public, ProviderKey: h.prov.Locator()}
	return h
}

// tagFor builds the case's tag (nil for tagless threats) and applies
// any side state (revocation pushes). The returned meta is the content
// the request targets.
func (h *goldenHarness) tagFor(t testing.TB, threat string) (*core.Tag, core.ContentMeta) {
	t.Helper()
	issue := func(signer pki.Signer, level core.AccessLevel, ap core.AccessPath, expiry time.Time) *core.Tag {
		tag, err := core.IssueTag(signer, names.MustParse("/u/alice/KEY/1"), level, ap, expiry)
		if err != nil {
			t.Fatal(err)
		}
		return tag
	}
	valid := func() *core.Tag { return issue(h.prov, 2, h.homeAP, testTime(1000)) }
	switch threat {
	case "valid":
		return valid(), h.meta
	case "forged":
		tag := valid()
		tag.Signature = append([]byte(nil), tag.Signature...)
		tag.Signature[0] ^= 0xff
		return tag, h.meta
	case "expired":
		return issue(h.prov, 2, h.homeAP, testTime(5)), h.meta
	case "wrong-level":
		return issue(h.prov, 1, h.homeAP, testTime(1000)), h.meta
	case "wrong-provider":
		return issue(h.prov2, 2, h.homeAP, testTime(1000)), h.meta
	case "borrowed":
		return issue(h.prov, 2, core.AccessPathOf("edge-1"), testTime(1000)), h.meta
	case "revoked":
		tag := valid()
		for _, r := range []*Router{h.edge, h.core} {
			if !r.ApplyRevocation(1, false, []core.TagID{tag.ID()}) {
				t.Fatal("revocation push rejected")
			}
		}
		return tag, h.meta
	case "roaming":
		return issue(h.prov, 2, core.AccessPathAny, testTime(1000)), h.meta
	case "tagless-private":
		return nil, h.meta
	case "tagless-public":
		return nil, h.metaPublic
	default:
		t.Fatalf("unknown threat %q", threat)
		return nil, h.meta
	}
}

// replay runs one case through the protocol path it names and returns
// the final verdict observables (delivered, stage, reason) in the
// matrix's vocabulary.
func (h *goldenHarness) replay(t testing.TB, tc GoldenCase) (bool, string, string) {
	t.Helper()
	if tc.Threat == "flood-shed" {
		// Admission shedding is verify-pool plumbing, not a tag property:
		// the engine's part is the minted deny verdict. The oracle golden
		// test covers the planes' budget behaviour end to end.
		v := Shed(StageEdgeInterest)
		return !v.Denied(), v.Stage.String(), v.ReasonLabel()
	}
	tag, meta := h.tagFor(t, tc.Threat)
	finish := func(v Verdict) (bool, string, string) {
		if v.Denied() {
			return false, v.Stage.String(), v.ReasonLabel()
		}
		return true, "", ""
	}
	switch tc.Path {
	case "interest":
		ev := h.edge.EdgeOnInterest(tag, h.homeAP, meta.Name, h.now)
		if ev.Denied() {
			return finish(ev)
		}
		return finish(h.core.ContentOnInterest(tag, meta, ev.Flag, h.now))
	case "content":
		return finish(h.core.ContentOnInterest(tag, meta, 0, h.now))
	case "aggregate":
		ev := h.edge.EdgeOnAggregatedData(tag, meta, h.now)
		cv := h.core.IntermediateOnAggregatedContent(tag, meta, 0, h.now)
		ed, es, er := finish(ev)
		cd, cs, cr := finish(cv)
		if ed != cd || es != cs || er != cr {
			t.Fatalf("edge/intermediate aggregate verdicts disagree: edge=(%t,%s,%s) core=(%t,%s,%s)",
				ed, es, er, cd, cs, cr)
		}
		return ed, es, er
	default:
		t.Fatalf("unknown path %q", tc.Path)
		return false, "", ""
	}
}

// TestGoldenVerdictMatrix replays every matrix row against the Router
// pipeline for both schemes — the engine-level harness of the three
// (engine, sim plane, live plane) the matrix pins.
func TestGoldenVerdictMatrix(t *testing.T) {
	cases := LoadGoldenMatrix(t, "testdata/verdict_matrix.json")
	for _, scheme := range []core.Scheme{core.SchemeTACTIC, core.SchemeIBAC} {
		for _, tc := range cases {
			tc := tc
			t.Run(fmt.Sprintf("%s/%s", scheme, tc.Name), func(t *testing.T) {
				h := newGoldenHarness(t, scheme, tc.Config == "harden-aggregates")
				delivered, stage, reason := h.replay(t, tc)
				want := tc.Expect(scheme)
				if delivered != want.Delivered || stage != want.Stage || reason != want.Reason {
					t.Errorf("got (delivered=%t stage=%q reason=%q), want (delivered=%t stage=%q reason=%q)",
						delivered, stage, reason, want.Delivered, want.Stage, want.Reason)
				}
			})
		}
	}
}

// TestGoldenMatrixCoversThreatClasses guards the matrix file itself:
// every threat class the issue names must appear, on every protocol
// path where it is expressible.
func TestGoldenMatrixCoversThreatClasses(t *testing.T) {
	cases := LoadGoldenMatrix(t, "testdata/verdict_matrix.json")
	seen := map[string]map[string]bool{}
	for _, tc := range cases {
		if seen[tc.Threat] == nil {
			seen[tc.Threat] = map[string]bool{}
		}
		seen[tc.Threat][tc.Path] = true
	}
	for _, threat := range []string{"valid", "forged", "expired", "wrong-level", "wrong-provider", "borrowed", "revoked", "roaming", "flood-shed", "tagless-private", "tagless-public"} {
		if len(seen[threat]) == 0 {
			t.Errorf("threat class %q missing from matrix", threat)
		}
	}
	for _, threat := range []string{"valid", "forged", "expired", "wrong-level", "wrong-provider", "borrowed", "revoked", "roaming"} {
		for _, path := range []string{"interest", "content", "aggregate"} {
			if !seen[threat][path] {
				t.Errorf("threat %q missing path %q", threat, path)
			}
		}
	}
}
