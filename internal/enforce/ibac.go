package enforce

import (
	"github.com/tactic-icn/tactic/internal/bloom"
	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
)

// ibacEngine implements Interest-based access control (Ghali et al.,
// "Interest-Based Access Control for Content Centric Networks" — see
// PAPERS.md): a consumer presents an authorization token with each
// Interest and every enforcing router authorizes the (token, name) pair
// on first sight, caching the result. The reproduction reuses TACTIC's
// tag as the token (same issuance, signature, and expiry machinery) so
// the two schemes differ only in enforcement semantics:
//
//   - Authorization is per (token, name), not per token: a token never
//     vouches for a name it has not been checked against at this
//     router, so the cache key binds both.
//   - No access-path binding: tokens are location-independent, so a
//     borrowed token replayed from another edge, or a traitor's token
//     shared out-of-path, is honoured (TACTIC's threat (c) coverage is
//     the scheme's known gap — EXPERIMENTS.md quantifies it).
//   - No downstream collaboration: there is no flag F, no vouching, and
//     no probabilistic re-validation. The edge always verifies a cache
//     miss (EdgeValidateOnMiss is implied) and upstream routers always
//     run their own (token, name) check; forwarded packets carry F = 0.
//   - Aggregated records re-check the content half of Protocol 1
//     (level/provider) unconditionally: per-name authorization has the
//     arriving content's metadata at hand, so IBAC does not exhibit the
//     aggregate access-level leak EnforceALOnAggregates patches in
//     TACTIC.
//
// Pre-checks (prefix/expiry at the edge, level/provider at content),
// the revocation set, the Public bypass, and epoch rotation behave as
// in TACTIC.
type ibacEngine struct {
	cache
	rev *core.RevocationSet
}

func newIBAC(bf *bloom.Filter, rev *core.RevocationSet, cfg core.Config) *ibacEngine {
	e := &ibacEngine{rev: rev}
	e.cache.init(bf, cfg)
	return e
}

func (e *ibacEngine) Scheme() core.Scheme { return core.SchemeIBAC }

func (e *ibacEngine) revoked(t *core.Tag) bool {
	if e.cfg.DisableRevocationCheck {
		return false
	}
	return e.rev.Contains(t.ID())
}

// tokenKey is the authorization-cache key binding token and name.
func tokenKey(t *core.Tag, name names.Name) []byte {
	tk := t.CacheKey()
	ns := name.String()
	key := make([]byte, 0, len(tk)+1+len(ns))
	key = append(key, tk...)
	key = append(key, 0)
	key = append(key, ns...)
	return key
}

func (e *ibacEngine) CheckInterest(in InterestInput) Verdict {
	switch in.Op {
	case OpEdgeInterest:
		switch in.Phase {
		case PhasePreVerify:
			if e.revoked(in.Tag) {
				return Verdict{Action: ActionDeny, Stage: StageEdgeInterest, Reason: core.ErrTagRevoked}
			}
			return Verdict{Action: ActionVerify, Stage: StageEdgeInterest}
		case PhasePostVerify:
			if in.VerifyErr != nil {
				return Verdict{Action: ActionDeny, Stage: StageEdgeInterest, Reason: in.VerifyErr, Verified: true}
			}
			e.insert(tokenKey(in.Tag, in.Name))
			return Verdict{Stage: StageEdgeInterest, Verified: true}
		default:
			return e.edgeInterestFast(in)
		}
	case OpContent:
		switch in.Phase {
		case PhasePreVerify:
			if e.revoked(in.Tag) {
				return Verdict{Action: ActionDeny, Stage: StageContent, Reason: core.ErrTagRevoked}
			}
			return Verdict{Action: ActionVerify, Stage: StageContent}
		case PhasePostVerify:
			if in.VerifyErr != nil {
				return Verdict{Action: ActionDeny, Stage: StageContent, Reason: in.VerifyErr, Verified: true}
			}
			e.insert(tokenKey(in.Tag, in.Meta.Name))
			return Verdict{Stage: StageContent, Verified: true}
		default:
			return e.contentFast(in)
		}
	}
	return Verdict{Action: ActionDeny, Stage: StageNone, Reason: core.ErrDenied}
}

// edgeInterestFast authorizes an Interest at the edge: prefix/expiry
// pre-check, revocation, then the (token, name) cache — a miss always
// escalates to signature verification, the defining IBAC behaviour. A
// nil token is forwarded (the edge cannot know whether the content is
// Public); the content router settles it.
func (e *ibacEngine) edgeInterestFast(in InterestInput) Verdict {
	if in.Tag == nil {
		return Verdict{Stage: StageEdgeInterest, Flag: 0}
	}
	if !e.cfg.DisablePrecheck {
		if err := core.PreCheckEdge(in.Tag, in.Name, in.Now); err != nil {
			return Verdict{Action: ActionDeny, Stage: StageEdgeInterest, Reason: err}
		}
	}
	if e.revoked(in.Tag) {
		return Verdict{Action: ActionDeny, Stage: StageEdgeInterest, Reason: core.ErrTagRevoked}
	}
	if e.contains(tokenKey(in.Tag, in.Name)) {
		return Verdict{Stage: StageEdgeInterest, BFHit: true}
	}
	return Verdict{Action: ActionVerify, Stage: StageEdgeInterest}
}

// contentFast authorizes a content hit: Public bypass, token presence,
// level/provider pre-check, revocation, then this router's own
// (token, name) cache. The incoming F is ignored — IBAC routers do not
// accept downstream vouching.
func (e *ibacEngine) contentFast(in InterestInput) Verdict {
	if in.Meta.Level == core.Public {
		return Verdict{Stage: StageContent}
	}
	if in.Tag == nil {
		return Verdict{Action: ActionDeny, Stage: StageContent, Reason: core.ErrNoTag}
	}
	if !e.cfg.DisablePrecheck {
		if err := core.PreCheckContent(in.Tag, in.Meta); err != nil {
			return Verdict{Action: ActionDeny, Stage: StageContent, Reason: err}
		}
	}
	if e.revoked(in.Tag) {
		return Verdict{Action: ActionDeny, Stage: StageContent, Reason: core.ErrTagRevoked}
	}
	if e.contains(tokenKey(in.Tag, in.Meta.Name)) {
		return Verdict{Stage: StageContent, BFHit: true}
	}
	return Verdict{Action: ActionVerify, Stage: StageContent}
}

func (e *ibacEngine) CheckContent(in ContentInput) Verdict {
	switch in.Op {
	case OpEdgeData:
		// No data-path learning: the edge authorized this (token, name)
		// at Interest time, so the only question is whether the upstream
		// NACKed.
		if in.Nack {
			return Verdict{Action: ActionDeny, Stage: StageEdgeData, Reason: core.ErrDenied}
		}
		return Verdict{Stage: StageEdgeData}
	case OpEdgeAggregate, OpAggregate:
		switch in.Phase {
		case PhasePostVerify:
			if in.VerifyErr != nil {
				return Verdict{Action: ActionDeny, Stage: StageAggregate, Reason: in.VerifyErr, Verified: true}
			}
			e.insert(tokenKey(in.Tag, in.Meta.Name))
			return Verdict{Stage: StageAggregate, Verified: true}
		default:
			return e.aggregateFast(in)
		}
	}
	return Verdict{Action: ActionDeny, Stage: StageNone, Reason: core.ErrDenied}
}

// aggregateFast authorizes one aggregated PIT record on content
// arrival. Per-name authorization always has the content's metadata at
// this point, so the level/provider pre-check runs unconditionally
// (closing TACTIC's aggregate access-level gap by construction).
func (e *ibacEngine) aggregateFast(in ContentInput) Verdict {
	if in.Tag == nil {
		return Verdict{Action: ActionDeny, Stage: StageAggregate, Reason: core.ErrNoTag}
	}
	if !e.cfg.DisablePrecheck {
		if err := core.PreCheckContent(in.Tag, in.Meta); err != nil {
			return Verdict{Action: ActionDeny, Stage: StageAggregate, Reason: err}
		}
	}
	if e.revoked(in.Tag) {
		return Verdict{Action: ActionDeny, Stage: StageAggregate, Reason: core.ErrTagRevoked}
	}
	if e.contains(tokenKey(in.Tag, in.Meta.Name)) {
		return Verdict{Stage: StageAggregate, BFHit: true}
	}
	return Verdict{Action: ActionVerify, Stage: StageAggregate}
}

func (e *ibacEngine) OnTagIssued(*core.Tag) {
	// A freshly issued token has authorized no names yet; there is
	// nothing to cache.
}

func (e *ibacEngine) OnRevocation(core.TagID) {
	// The revocation set gates every cache lookup, so stale (token,
	// name) bits are unreachable; rotation ages them out.
}

func (e *ibacEngine) OnEpochRotate(epoch uint64) bool { return e.rotate(epoch) }

func (e *ibacEngine) Epoch() uint64 { return e.epoch.Load() }

func (e *ibacEngine) Bloom() *bloom.Filter { return e.bf }
