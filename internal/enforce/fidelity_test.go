package enforce

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/tactic-icn/tactic/internal/bloom"
	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/pki"
)

func TestEdgeValidateOnMissVerifiesAndInserts(t *testing.T) {
	r, prov := testRouter(t, 50, core.Config{EdgeValidateOnMiss: true})
	now := testTime(10)
	tag := issueTestTag(t, prov, 1, core.AccessPathOf("ap0"), testTime(100))

	// First sight: BF miss -> signature verified, inserted, F = FPP.
	d := r.EdgeOnInterest(tag, core.AccessPathOf("ap0"), testContentName, now)
	if d.Denied() {
		t.Fatalf("valid tag dropped: %v", d.Reason)
	}
	if d.Flag <= 0 {
		t.Errorf("flag = %g, want FPP > 0 after edge validation", d.Flag)
	}
	if r.Validator().Verifications() != 1 {
		t.Errorf("verifications = %d, want 1", r.Validator().Verifications())
	}
	if !r.Bloom().Contains(tag.CacheKey()) {
		t.Error("validated tag not inserted")
	}
	// Second sight: BF hit, no extra verification.
	d = r.EdgeOnInterest(tag, core.AccessPathOf("ap0"), testContentName, now)
	if d.Denied() || d.Flag <= 0 {
		t.Fatalf("second interest: %+v", d)
	}
	if r.Validator().Verifications() != 1 {
		t.Error("BF hit still verified")
	}
}

func TestEdgeValidateOnMissDropsForged(t *testing.T) {
	r, prov := testRouter(t, 51, core.Config{EdgeValidateOnMiss: true})
	forged := issueTestTag(t, prov, 1, 0, testTime(100))
	forged.Signature = append([]byte(nil), forged.Signature...)
	forged.Signature[0] ^= 1
	d := r.EdgeOnInterest(forged, 0, testContentName, testTime(10))
	if !d.Denied() || !errors.Is(d.Reason, core.ErrTagForged) {
		t.Errorf("forged tag at validating edge: %+v", d)
	}
	if r.Bloom().Count() != 0 {
		t.Error("forged tag inserted")
	}
}

func TestRequestDrivenResetCadence(t *testing.T) {
	prov := newTestSigner(t, 52, "/prov0/KEY/1")
	reg := newTestRegistry(t, prov)
	// Sized for 500 items at design FPP 1e-2, resetting at max FPP 1e-4:
	// the filter absorbs CapacityAtFPP(m, k, 1e-4) lookups per reset.
	bf, err := bloom.NewPaperWithDesign(500, 1e-2, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	threshold := bloom.CapacityAtFPP(bf.Bits(), bf.Hashes(), 1e-4)
	if threshold < 50 || threshold > 400 {
		t.Fatalf("threshold = %d, want the paper's ~50-250 band", threshold)
	}
	r := NewRouter("r", bf, core.NewTagValidator(reg), rand.New(rand.NewSource(52)), core.Config{RequestDrivenReset: true})
	tag := issueTestTag(t, prov, 1, 0, testTime(100))
	meta := core.ContentMeta{Name: testContentName, Level: 1, ProviderKey: prov.Locator()}

	const rounds = 3
	for i := uint64(0); i < threshold*rounds+1; i++ {
		r.ContentOnInterest(tag, meta, 0, testTime(10))
	}
	resets := bf.Stats().Resets
	if resets < rounds-1 || resets > rounds+1 {
		t.Errorf("resets = %d after %d lookups (threshold %d), want ~%d",
			resets, threshold*rounds, threshold, rounds)
	}
	// Every reset re-validates on the next sight: verification count
	// tracks reset count + 1 (initial).
	if v := r.Validator().Verifications(); v < resets || v > resets+2 {
		t.Errorf("verifications = %d, want ~resets+1 (%d)", v, resets+1)
	}
}

// TestAggregateALBypassAndHardening pins the access-control gap this
// reproduction found: aggregated PIT tags are validated by signature
// only (Protocol 2 lines 22-23, Protocol 4 lines 11-26), so a valid tag
// with insufficient access level slips through on the aggregation path —
// and the EnforceALOnAggregates hardening closes it.
func TestAggregateALBypassAndHardening(t *testing.T) {
	now := testTime(10)
	highMeta := func(prov pki.Signer) core.ContentMeta {
		return core.ContentMeta{Name: testContentName, Level: 3, ProviderKey: prov.Locator()}
	}

	// Paper-faithful router: the low-level tag is delivered.
	r, prov := testRouter(t, 54, core.Config{})
	low := issueTestTag(t, prov, 1, 0, testTime(100)) // AL_u=1 < AL_D=3
	if d := r.ContentOnInterest(low, highMeta(prov), 0, now); !d.Denied() {
		t.Fatal("content router should reject the low-level tag (Protocol 1)")
	}
	if r.EdgeOnAggregatedData(low, highMeta(prov), now).Denied() {
		t.Error("paper-faithful aggregate path should (incorrectly) deliver — the documented flaw")
	}
	if d := r.IntermediateOnAggregatedContent(low, highMeta(prov), 0, now); d.Denied() {
		t.Error("paper-faithful intermediate aggregate path should (incorrectly) forward")
	}

	// Hardened router: both aggregate paths reject it.
	hr, hprov := testRouter(t, 55, core.Config{EnforceALOnAggregates: true})
	hlow := issueTestTag(t, hprov, 1, 0, testTime(100))
	if !hr.EdgeOnAggregatedData(hlow, highMeta(hprov), now).Denied() {
		t.Error("hardened edge aggregate path delivered a low-level tag")
	}
	if d := hr.IntermediateOnAggregatedContent(hlow, highMeta(hprov), 0, now); !d.Denied() ||
		!errors.Is(d.Reason, core.ErrInsufficientLevel) {
		t.Errorf("hardened intermediate aggregate path: %+v", d)
	}
	// Valid high-level tags still pass under hardening.
	high := issueTestTag(t, hprov, 3, 0, testTime(100))
	if hr.EdgeOnAggregatedData(high, highMeta(hprov), now).Denied() {
		t.Error("hardening broke legitimate aggregate delivery")
	}
}

func TestRequestDrivenResetRespectsDisableAutoReset(t *testing.T) {
	prov := newTestSigner(t, 53, "/prov0/KEY/1")
	reg := newTestRegistry(t, prov)
	bf, err := bloom.NewPaperWithDesign(100, 1e-2, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter("r", bf, core.NewTagValidator(reg), rand.New(rand.NewSource(53)),
		core.Config{RequestDrivenReset: true, DisableAutoReset: true})
	tag := issueTestTag(t, prov, 1, 0, testTime(100))
	meta := core.ContentMeta{Name: testContentName, Level: 1, ProviderKey: prov.Locator()}
	for i := 0; i < 5000; i++ {
		r.ContentOnInterest(tag, meta, 0, testTime(10))
	}
	if bf.Stats().Resets != 0 {
		t.Errorf("resets = %d with auto-reset disabled", bf.Stats().Resets)
	}
}
