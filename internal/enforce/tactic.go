package enforce

import (
	"math/rand"
	"sync"

	"github.com/tactic-icn/tactic/internal/bloom"
	"github.com/tactic-icn/tactic/internal/core"
)

// tacticEngine is the paper's scheme: provider-signed tags cached in a
// Bloom filter keyed by the tag's wire encoding, access-path binding at
// the edge, and the flag-F collaborative re-validation of Protocols
// 2-4. The check order of every path is exactly the order the
// pre-extraction core.Router used — the simulator's delay model charges
// per Bloom/verify operation and its rng draw order is part of the
// determinism contract, so order is behaviour here.
type tacticEngine struct {
	cache
	rev *core.RevocationSet

	rngMu sync.Mutex
	rng   *rand.Rand
}

func newTACTIC(bf *bloom.Filter, rev *core.RevocationSet, rng *rand.Rand, cfg core.Config) *tacticEngine {
	e := &tacticEngine{rev: rev, rng: rng}
	e.cache.init(bf, cfg)
	return e
}

func (e *tacticEngine) Scheme() core.Scheme { return core.SchemeTACTIC }

// revoked is the pre-BF revocation check: it runs before any Bloom
// lookup so a revoked tag is denied even while its bits are still set
// in the filter (the BF caches "signature verified", which stays true
// after revocation).
func (e *tacticEngine) revoked(t *core.Tag) bool {
	if e.cfg.DisableRevocationCheck {
		return false
	}
	return e.rev.Contains(t.ID())
}

// decideRevalidate implements the probabilistic re-validation of
// Protocols 3-4: an upstream router re-checks a tag the edge already
// validated with probability equal to the edge filter's false-positive
// probability, carried in F. One Float64 draw under the mutex — the
// only lock a decision function takes.
func (e *tacticEngine) decideRevalidate(flag float64) bool {
	e.rngMu.Lock()
	v := e.rng.Float64()
	e.rngMu.Unlock()
	return v < flag
}

func (e *tacticEngine) CheckInterest(in InterestInput) Verdict {
	switch in.Op {
	case OpEdgeInterest:
		switch in.Phase {
		case PhasePreVerify:
			if e.revoked(in.Tag) {
				return Verdict{Action: ActionDeny, Stage: StageEdgeInterest, Reason: core.ErrTagRevoked}
			}
			return Verdict{Action: ActionVerify, Stage: StageEdgeInterest}
		case PhasePostVerify:
			if in.VerifyErr != nil {
				return Verdict{Action: ActionDeny, Stage: StageEdgeInterest, Reason: in.VerifyErr, Verified: true}
			}
			e.insert(in.Tag.CacheKey())
			return Verdict{Stage: StageEdgeInterest, Flag: e.bf.FPP(), Verified: true}
		default:
			return e.edgeInterestFast(in)
		}
	case OpContent:
		switch in.Phase {
		case PhasePreVerify:
			if e.revoked(in.Tag) {
				return Verdict{Action: ActionDeny, Stage: StageContent, Reason: core.ErrTagRevoked, Flag: in.Flag}
			}
			return Verdict{Action: ActionVerify, Stage: StageContent, Flag: in.Flag}
		case PhasePostVerify:
			if in.VerifyErr != nil {
				return Verdict{Action: ActionDeny, Stage: StageContent, Reason: in.VerifyErr, Flag: in.Flag, Verified: true}
			}
			if in.Flag == 0 {
				// The F != 0 re-check path never inserts — the tag is
				// vouched for by the edge's filter, not this one's.
				e.insert(in.Tag.CacheKey())
			}
			return Verdict{Stage: StageContent, Flag: in.Flag, Verified: true}
		default:
			return e.contentFast(in)
		}
	}
	return Verdict{Action: ActionDeny, Stage: StageNone, Reason: core.ErrDenied}
}

// edgeInterestFast is Protocol 2's On-Interest plus the edge half of
// Protocol 1: pre-check, access path, revocation, and the Bloom-filter
// lookup — everything except the signature verification.
//
// A nil tag is forwarded with F = 0 rather than dropped: the edge
// cannot know whether the target content is Public (AL_D = NULL) — only
// a content router holding the data can, and Protocol 1's content half
// enforces it there.
func (e *tacticEngine) edgeInterestFast(in InterestInput) Verdict {
	if in.Tag == nil {
		return Verdict{Stage: StageEdgeInterest, Flag: 0}
	}
	if !e.cfg.DisablePrecheck {
		if err := core.PreCheckEdge(in.Tag, in.Name, in.Now); err != nil {
			return Verdict{Action: ActionDeny, Stage: StageEdgeInterest, Reason: err}
		}
	}
	if !in.Tag.AccessPath.Matches(in.RequestAP) {
		return Verdict{Action: ActionDeny, Stage: StageEdgeInterest, Reason: core.ErrAccessPathMismatch}
	}
	if e.revoked(in.Tag) {
		return Verdict{Action: ActionDeny, Stage: StageEdgeInterest, Reason: core.ErrTagRevoked}
	}
	if e.contains(in.Tag.CacheKey()) {
		return Verdict{Stage: StageEdgeInterest, Flag: e.bf.FPP(), BFHit: true}
	}
	if e.cfg.EdgeValidateOnMiss {
		return Verdict{Action: ActionVerify, Stage: StageEdgeInterest}
	}
	return Verdict{Stage: StageEdgeInterest, Flag: 0}
}

// contentFast is Protocol 3 plus the content half of Protocol 1,
// everything except the signature verification. On ActionVerify the
// verdict's Flag holds the effective F (after the DisableCollaboration
// ablation) the post-verify call must pass back.
func (e *tacticEngine) contentFast(in InterestInput) Verdict {
	if in.Meta.Level == core.Public {
		// "We set the AL_D (of a publicly available data) to NULL, which
		// allows an r_C^c to return the requested content without tag
		// verification" (§5).
		return Verdict{Stage: StageContent, Flag: in.Flag}
	}
	if in.Tag == nil {
		return Verdict{Action: ActionDeny, Stage: StageContent, Reason: core.ErrNoTag}
	}
	flag := in.Flag
	if !e.cfg.DisablePrecheck {
		if err := core.PreCheckContent(in.Tag, in.Meta); err != nil {
			return Verdict{Action: ActionDeny, Stage: StageContent, Reason: err, Flag: flag}
		}
	}
	if e.revoked(in.Tag) {
		return Verdict{Action: ActionDeny, Stage: StageContent, Reason: core.ErrTagRevoked, Flag: flag}
	}
	if e.cfg.DisableCollaboration {
		flag = 0
	}
	if flag == 0 {
		if e.contains(in.Tag.CacheKey()) {
			return Verdict{Stage: StageContent, Flag: 0, BFHit: true}
		}
		return Verdict{Action: ActionVerify, Stage: StageContent, Flag: 0}
	}
	// F != 0: the edge vouches for the tag; re-validate only with
	// probability F (the edge filter's false-positive probability).
	if e.decideRevalidate(flag) {
		return Verdict{Action: ActionVerify, Stage: StageContent, Flag: flag}
	}
	return Verdict{Stage: StageContent, Flag: flag}
}

func (e *tacticEngine) CheckContent(in ContentInput) Verdict {
	switch in.Op {
	case OpEdgeData:
		// Protocol 2's On-Content for the primary tag: on a NACKed
		// response the entry is dropped (lines 19-20). When the Data's F
		// is zero the edge learns the upstream validated the tag and
		// inserts it (lines 14-15); a non-zero F means the tag was
		// already in this filter, so re-insertion is skipped (lines
		// 16-17) — the optimisation that makes edge insertions outnumber
		// edge verifications in the paper's Fig. 7(a).
		if in.Nack {
			return Verdict{Action: ActionDeny, Stage: StageEdgeData, Reason: core.ErrDenied}
		}
		if in.Tag != nil && in.Flag == 0 {
			e.insert(in.Tag.CacheKey())
		}
		return Verdict{Stage: StageEdgeData}
	case OpEdgeAggregate:
		switch in.Phase {
		case PhasePostVerify:
			if in.VerifyErr != nil {
				return Verdict{Action: ActionDeny, Stage: StageAggregate, Reason: in.VerifyErr, Verified: true}
			}
			e.insert(in.Tag.CacheKey())
			return Verdict{Stage: StageAggregate, Verified: true}
		default:
			return e.edgeAggregateFast(in)
		}
	case OpAggregate:
		switch in.Phase {
		case PhasePostVerify:
			if in.VerifyErr != nil {
				return Verdict{Action: ActionDeny, Stage: StageAggregate, Reason: in.VerifyErr, Flag: in.Flag, Verified: true}
			}
			// Unlike the content-hit path, Protocol 4 inserts even after
			// a flag-triggered re-check — the re-validated tag is now
			// first-hand knowledge at this router.
			e.insert(in.Tag.CacheKey())
			return Verdict{Stage: StageAggregate, Flag: in.Flag, Verified: true}
		default:
			return e.aggregateFast(in)
		}
	}
	return Verdict{Action: ActionDeny, Stage: StageNone, Reason: core.ErrDenied}
}

// edgeAggregateFast validates one aggregated PIT tag on content arrival
// at the edge (Protocol 2 lines 22-23): deliver if the tag is in the
// Bloom filter; otherwise require a signature verification. Meta is
// consulted only under the EnforceALOnAggregates hardening (the paper's
// pseudocode never re-checks AL on this path).
func (e *tacticEngine) edgeAggregateFast(in ContentInput) Verdict {
	if in.Tag == nil {
		return Verdict{Action: ActionDeny, Stage: StageAggregate, Reason: core.ErrNoTag}
	}
	if e.cfg.EnforceALOnAggregates {
		if err := core.PreCheckContent(in.Tag, in.Meta); err != nil {
			return Verdict{Action: ActionDeny, Stage: StageAggregate, Reason: err}
		}
	}
	if e.revoked(in.Tag) {
		return Verdict{Action: ActionDeny, Stage: StageAggregate, Reason: core.ErrTagRevoked}
	}
	if e.contains(in.Tag.CacheKey()) {
		return Verdict{Stage: StageAggregate, BFHit: true}
	}
	return Verdict{Action: ActionVerify, Stage: StageAggregate}
}

// aggregateFast validates one aggregated PIT tuple <T_w, F, InFace_w>
// at an intermediate router when the content arrives (Protocol 4 lines
// 11-26). A Bloom-filter hit short-circuits signature verification on
// the F = 0 path, per §4.B's router procedure ("cheaper BF lookup
// operations for the majority of the subsequent requests").
func (e *tacticEngine) aggregateFast(in ContentInput) Verdict {
	if in.Tag == nil {
		return Verdict{Action: ActionDeny, Stage: StageAggregate, Reason: core.ErrNoTag, Flag: in.Flag}
	}
	flag := in.Flag
	if e.cfg.EnforceALOnAggregates {
		if err := core.PreCheckContent(in.Tag, in.Meta); err != nil {
			return Verdict{Action: ActionDeny, Stage: StageAggregate, Reason: err, Flag: flag}
		}
	}
	if e.revoked(in.Tag) {
		return Verdict{Action: ActionDeny, Stage: StageAggregate, Reason: core.ErrTagRevoked, Flag: flag}
	}
	if e.cfg.DisableCollaboration {
		flag = 0
	}
	if flag != 0 && !e.decideRevalidate(flag) {
		return Verdict{Stage: StageAggregate, Flag: flag}
	}
	if flag == 0 && e.contains(in.Tag.CacheKey()) {
		return Verdict{Stage: StageAggregate, Flag: 0}
	}
	return Verdict{Action: ActionVerify, Stage: StageAggregate, Flag: flag}
}

func (e *tacticEngine) OnTagIssued(t *core.Tag) { e.insert(t.CacheKey()) }

func (e *tacticEngine) OnRevocation(core.TagID) {
	// The revocation set is consulted before every cache lookup, so the
	// stale "signature verified" bits left in the filter are harmless;
	// epoch rotation ages them out.
}

func (e *tacticEngine) OnEpochRotate(epoch uint64) bool { return e.rotate(epoch) }

func (e *tacticEngine) Epoch() uint64 { return e.epoch.Load() }

func (e *tacticEngine) Bloom() *bloom.Filter { return e.bf }
