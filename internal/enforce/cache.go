package enforce

import (
	"sync"
	"sync/atomic"

	"github.com/tactic-icn/tactic/internal/bloom"
	"github.com/tactic-icn/tactic/internal/core"
)

// cache is the epoch-rotating validation cache shared by both backends:
// a Bloom filter plus the previous-epoch fallback, the paper's
// saturation auto-reset, and the request-driven reset cadence of the
// fidelity mode. TACTIC keys it by tag; IBAC keys it by (token, name).
type cache struct {
	bf  *bloom.Filter
	cfg core.Config

	// prev holds the previous epoch's filter after a rotation: lookups
	// that miss the (freshly cleared) current filter fall back to it, so
	// a rotation does not force the whole edge population back through
	// signature verification at once. nil until the first rotation.
	prev atomic.Pointer[bloom.Filter]
	// epoch is the cache epoch, advanced by rotate.
	epoch atomic.Uint64

	// requestResetThreshold is the lookups-per-reset budget in
	// RequestDrivenReset mode: the number of elements the filter can
	// hold before its FPP reaches the maximum.
	requestResetThreshold uint64
	// resetMu serialises the request-driven reset check so concurrent
	// lookups crossing the threshold trigger exactly one reset.
	resetMu sync.Mutex
}

func (c *cache) init(bf *bloom.Filter, cfg core.Config) {
	c.bf = bf
	c.cfg = cfg
	if cfg.RequestDrivenReset {
		c.requestResetThreshold = bloom.CapacityAtFPP(bf.Bits(), bf.Hashes(), bf.MaxFPP())
		if c.requestResetThreshold == 0 {
			c.requestResetThreshold = 1
		}
	}
}

// contains performs the cache lookup honouring the DisableBloomFilter
// ablation, the previous-epoch fallback (migrating hits forward), and
// the request-driven reset cadence.
func (c *cache) contains(key []byte) bool {
	if c.cfg.DisableBloomFilter {
		return false
	}
	hit := c.bf.Contains(key)
	if !hit {
		// Previous-epoch fallback: an entry validated before the last
		// rotation is still vouched for; migrate it into the current
		// filter so it survives the next rotation too.
		if prev := c.prev.Load(); prev != nil && prev.Contains(key) {
			c.bf.Add(key)
			hit = true
		}
	}
	if c.cfg.RequestDrivenReset && !c.cfg.DisableAutoReset &&
		c.bf.RequestsSinceReset() >= c.requestResetThreshold {
		c.resetMu.Lock()
		if c.bf.RequestsSinceReset() >= c.requestResetThreshold {
			c.bf.Reset()
		}
		c.resetMu.Unlock()
	}
	return hit
}

// insert records a validated entry, applying the paper's auto-reset
// policy: when the filter's FPP estimate reaches its maximum, the
// filter is cleared before the insert so the newly validated entry
// survives.
func (c *cache) insert(key []byte) {
	if c.cfg.DisableBloomFilter {
		return
	}
	if !c.cfg.DisableAutoReset && c.bf.Saturated() {
		c.resetMu.Lock()
		if c.bf.Saturated() {
			c.bf.Reset()
		}
		c.resetMu.Unlock()
	}
	c.bf.Add(key)
}

// rotate advances the cache to a new epoch: the current filter's
// contents become the previous-epoch fallback and the current filter is
// cleared, so bits accumulated before the rotation — notably the stale
// positives a revocation storm leaves behind, which the count-based
// auto-reset never sees — age out after one more rotation instead of
// accumulating forever. Epochs must advance; a stale or duplicate epoch
// is ignored (reported false), which also terminates control-plane
// rotation floods.
func (c *cache) rotate(epoch uint64) bool {
	if c.cfg.DisableBloomFilter {
		return false
	}
	c.resetMu.Lock()
	defer c.resetMu.Unlock()
	if epoch <= c.epoch.Load() {
		return false
	}
	c.prev.Store(c.bf.Clone())
	c.bf.Reset()
	c.epoch.Store(epoch)
	return true
}
