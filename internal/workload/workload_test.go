package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/pki"
)

func TestBuildCatalog(t *testing.T) {
	c, err := BuildCatalog(CatalogConfig{
		Providers: 3, ObjectsPerProvider: 4, ChunksPerObject: 5, ChunkSize: 256,
		Levels: []core.AccessLevel{core.Public, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Objects) != 12 {
		t.Errorf("objects = %d", len(c.Objects))
	}
	if c.TotalChunks() != 60 {
		t.Errorf("total chunks = %d", c.TotalChunks())
	}
	obj := c.Objects[5] // provider 1, object 1
	if obj.Provider != 1 || obj.Prefix.String() != "/prov1" {
		t.Errorf("object 5 = %+v", obj)
	}
	if got := obj.ChunkName(3).String(); got != "/prov1/obj1/chunk3" {
		t.Errorf("chunk name = %q", got)
	}
	// Levels cycle.
	if c.Objects[0].Level != core.Public || c.Objects[1].Level != 2 {
		t.Error("levels should cycle Public,2,...")
	}
}

func TestBuildCatalogValidation(t *testing.T) {
	bad := []CatalogConfig{
		{Providers: 0, ObjectsPerProvider: 1, ChunksPerObject: 1},
		{Providers: 1, ObjectsPerProvider: 0, ChunksPerObject: 1},
		{Providers: 1, ObjectsPerProvider: 1, ChunksPerObject: 0},
	}
	for _, cfg := range bad {
		if _, err := BuildCatalog(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	// ChunkSize defaults.
	c, err := BuildCatalog(CatalogConfig{Providers: 1, ObjectsPerProvider: 1, ChunksPerObject: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.ChunkSize != 1024 {
		t.Errorf("default chunk size = %d", c.ChunkSize)
	}
	if c.Objects[0].Level != 2 {
		t.Errorf("default level = %d", c.Objects[0].Level)
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 0.7); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Error("negative alpha accepted")
	}
}

func TestZipfDistributionShape(t *testing.T) {
	const n, samples = 50, 200000
	z, err := NewZipf(n, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if z.N() != n {
		t.Errorf("N = %d", z.N())
	}
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, n)
	for i := 0; i < samples; i++ {
		r := z.Sample(rng)
		if r < 0 || r >= n {
			t.Fatalf("sample %d out of range", r)
		}
		counts[r]++
	}
	// Rank 0 must be the most popular, and the ratio rank0/rank9 should
	// be ~10^0.7 ≈ 5.
	for i := 1; i < n; i++ {
		if counts[i] > counts[0] {
			t.Fatalf("rank %d (%d) more popular than rank 0 (%d)", i, counts[i], counts[0])
		}
	}
	ratio := float64(counts[0]) / float64(counts[9])
	if ratio < 3.5 || ratio > 7 {
		t.Errorf("rank0/rank9 ratio = %.2f, want ~5 for alpha=0.7", ratio)
	}
}

func TestZipfUniformWhenAlphaZero(t *testing.T) {
	z, err := NewZipf(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[z.Sample(rng)]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("alpha=0 rank %d count %d, want ~10000", i, c)
		}
	}
}

func TestPropertyZipfSamplesInRange(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		z, err := NewZipf(n, 0.7)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			if s := z.Sample(rng); s < 0 || s >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// --- Tag sources ---------------------------------------------------------------

func mustFast(t *testing.T, seed int64, locator string) *pki.FastKeyPair {
	t.Helper()
	kp, err := pki.GenerateFast(rand.New(rand.NewSource(seed)), names.MustParse(locator))
	if err != nil {
		t.Fatal(err)
	}
	return kp
}

func newTestClientAndProvider(t *testing.T) (*core.Client, *core.Provider, *pki.Registry) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	provSigner := mustFast(t, 2, "/prov0/KEY/1")
	prov, err := core.NewProvider(names.MustParse("/prov0"), provSigner, 10*time.Second, rng)
	if err != nil {
		t.Fatal(err)
	}
	cliSigner := mustFast(t, 3, "/u/alice/KEY/1")
	cl, err := core.NewClient(cliSigner, rng)
	if err != nil {
		t.Fatal(err)
	}
	prov.Enroll(cl.KeyLocator(), cliSigner.Public(), 3)
	reg := pki.NewRegistry()
	if err := reg.Register(provSigner.Locator(), provSigner.Public()); err != nil {
		t.Fatal(err)
	}
	return cl, prov, reg
}

func TestHonestSourceLifecycle(t *testing.T) {
	cl, prov, _ := newTestClientAndProvider(t)
	ap := core.AccessPathOf("ap0")
	src := NewHonestSource(cl, ap)
	now := time.Unix(100, 0)

	// No tag yet: must register.
	tag, reg, err := src.Prepare(prov.Prefix(), now)
	if err != nil {
		t.Fatal(err)
	}
	if tag != nil || reg == nil {
		t.Fatal("fresh source should need registration")
	}
	resp, err := prov.Register(*reg, now)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.OnRegistration(prov.Prefix(), resp); err != nil {
		t.Fatal(err)
	}
	// Now a tag is available.
	tag, reg, err = src.Prepare(prov.Prefix(), now.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if tag == nil || reg != nil {
		t.Fatal("registered source should hold a tag")
	}
	// After expiry: register again.
	_, reg, err = src.Prepare(prov.Prefix(), now.Add(11*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if reg == nil {
		t.Fatal("expired tag should trigger re-registration")
	}
	if src.Client() != cl {
		t.Error("Client() accessor broken")
	}
}

func TestNoTagSource(t *testing.T) {
	var src NoTagSource
	tag, reg, err := src.Prepare(names.MustParse("/prov0"), time.Unix(1, 0))
	if err != nil || tag != nil || reg != nil {
		t.Errorf("NoTagSource should yield nothing: %v %v %v", tag, reg, err)
	}
	if err := src.OnRegistration(names.MustParse("/prov0"), nil); err != nil {
		t.Error(err)
	}
}

func TestFakeTagSourceForgesInvalidTags(t *testing.T) {
	_, prov, registry := newTestClientAndProvider(t)
	rng := rand.New(rand.NewSource(9))
	src := NewFakeTagSource(rng, names.MustParse("/u/mallory/KEY/1"),
		map[string]names.Name{prov.Prefix().Key(): prov.KeyLocator()},
		3, core.AccessPathOf("ap0"), 10*time.Second)
	now := time.Unix(100, 0)

	tag, reg, err := src.Prepare(prov.Prefix(), now)
	if err != nil {
		t.Fatal(err)
	}
	if tag == nil || reg != nil {
		t.Fatal("forger should produce a tag without registering")
	}
	// The forged tag names the legitimate key locator but fails
	// verification against it.
	if !tag.ProviderKey.Equal(prov.KeyLocator()) {
		t.Error("forged tag should claim the provider's key locator")
	}
	if err := core.NewTagValidator(registry).Validate(tag, now); err == nil {
		t.Error("forged tag verified?!")
	}
	// Same tag until "expiry", fresh afterwards.
	tag2, _, err := src.Prepare(prov.Prefix(), now.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if tag2 != tag {
		t.Error("forger should cache its tag within the TTL")
	}
	tag3, _, err := src.Prepare(prov.Prefix(), now.Add(11*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if tag3 == tag {
		t.Error("forger should refresh after expiry")
	}
	// Unknown provider errors.
	if _, _, err := src.Prepare(names.MustParse("/prov9"), now); err == nil {
		t.Error("unknown provider should error")
	}
}

func TestExpiredTagSourceNeverRefreshes(t *testing.T) {
	cl, prov, _ := newTestClientAndProvider(t)
	src := NewExpiredTagSource(cl, core.AccessPathOf("ap0"))
	now := time.Unix(100, 0)

	// First use registers once.
	_, reg, err := src.Prepare(prov.Prefix(), now)
	if err != nil {
		t.Fatal(err)
	}
	if reg == nil {
		t.Fatal("first use should register")
	}
	resp, err := prov.Register(*reg, now)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.OnRegistration(prov.Prefix(), resp); err != nil {
		t.Fatal(err)
	}
	// Long after expiry, it still replays the stale tag instead of
	// re-registering.
	tag, reg, err := src.Prepare(prov.Prefix(), now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if reg != nil {
		t.Error("expired-tag attacker should never re-register")
	}
	if tag == nil || !tag.Expired(now.Add(time.Hour)) {
		t.Error("should replay the stale, expired tag")
	}
}

func TestSharedTagSourceTracksVictim(t *testing.T) {
	cl, prov, _ := newTestClientAndProvider(t)
	victimAP := core.AccessPathOf("ap-victim")
	src := NewSharedTagSource(cl, victimAP)
	now := time.Unix(100, 0)

	// Victim holds no tag yet: attacker goes tagless.
	tag, reg, err := src.Prepare(prov.Prefix(), now)
	if err != nil || tag != nil || reg != nil {
		t.Errorf("no victim tag: got %v %v %v", tag, reg, err)
	}
	// Give the victim a tag; the attacker steals it.
	honest := NewHonestSource(cl, victimAP)
	_, vreg, err := honest.Prepare(prov.Prefix(), now)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := prov.Register(*vreg, now)
	if err != nil {
		t.Fatal(err)
	}
	if err := honest.OnRegistration(prov.Prefix(), resp); err != nil {
		t.Fatal(err)
	}
	tag, _, err = src.Prepare(prov.Prefix(), now.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if tag == nil {
		t.Fatal("attacker should hold the victim's tag now")
	}
	// The stolen tag's access path points at the victim's location — the
	// edge check defeats it elsewhere.
	if !tag.AccessPath.Matches(victimAP) {
		t.Error("stolen tag should carry the victim's access path")
	}
	if err := src.OnRegistration(prov.Prefix(), resp); err != nil {
		t.Error(err)
	}
}

func TestDefaultConsumerConfig(t *testing.T) {
	cfg := DefaultConsumerConfig()
	if cfg.Window != 5 {
		t.Errorf("window = %d, want the paper's 5", cfg.Window)
	}
	if cfg.RequestTimeout != time.Second {
		t.Errorf("timeout = %s, want the paper's 1s", cfg.RequestTimeout)
	}
	if cfg.RequestGap <= 0 || cfg.StartJitter <= 0 {
		t.Error("pacing parameters must be positive")
	}
}
