// Package workload implements the paper's evaluation workload (§8.A):
// producers publishing 50 objects of 50 chunks each, Zipf(α = 0.7)
// content popularity, Zipf-window clients with a fixed outstanding
// request window, and attacker implementations for every threat-model
// scenario of §3.C.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
)

// Object is one published content object (a sequence of chunks).
type Object struct {
	// Provider is the owning provider's ordinal.
	Provider int
	// Prefix is the provider's name prefix.
	Prefix names.Name
	// Name is the object name, e.g. /prov3/obj12.
	Name names.Name
	// Chunks is the number of chunks.
	Chunks int
	// Level is AL_D for every chunk of the object.
	Level core.AccessLevel
}

// ChunkName returns the name of chunk k.
func (o Object) ChunkName(k int) names.Name {
	return o.Name.MustAppend("chunk" + strconv.Itoa(k))
}

// Catalog is the full content universe across providers.
type Catalog struct {
	// Objects lists every object, grouped by provider.
	Objects []Object
	// ChunkSize is the payload size per chunk in bytes.
	ChunkSize int
}

// CatalogConfig parameterises catalog construction. The paper's setup is
// 10 providers x 50 objects x 50 chunks.
type CatalogConfig struct {
	// Providers is the number of providers.
	Providers int
	// ObjectsPerProvider is the paper's 50.
	ObjectsPerProvider int
	// ChunksPerObject is the paper's 50.
	ChunksPerObject int
	// ChunkSize is the chunk payload size in bytes.
	ChunkSize int
	// Levels cycles access levels across objects; empty means all
	// objects get level 2 (private).
	Levels []core.AccessLevel
}

// BuildCatalog constructs the object universe.
func BuildCatalog(cfg CatalogConfig) (*Catalog, error) {
	if cfg.Providers <= 0 || cfg.ObjectsPerProvider <= 0 || cfg.ChunksPerObject <= 0 {
		return nil, fmt.Errorf("workload: catalog dimensions must be positive: %+v", cfg)
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 1024
	}
	levels := cfg.Levels
	if len(levels) == 0 {
		levels = []core.AccessLevel{2}
	}
	objects := make([]Object, 0, cfg.Providers*cfg.ObjectsPerProvider)
	for p := 0; p < cfg.Providers; p++ {
		prefix := names.MustNew("prov" + strconv.Itoa(p))
		for o := 0; o < cfg.ObjectsPerProvider; o++ {
			objects = append(objects, Object{
				Provider: p,
				Prefix:   prefix,
				Name:     prefix.MustAppend("obj" + strconv.Itoa(o)),
				Chunks:   cfg.ChunksPerObject,
				Level:    levels[(p*cfg.ObjectsPerProvider+o)%len(levels)],
			})
		}
	}
	return &Catalog{Objects: objects, ChunkSize: cfg.ChunkSize}, nil
}

// TotalChunks returns the catalog's total chunk count.
func (c *Catalog) TotalChunks() int {
	total := 0
	for _, o := range c.Objects {
		total += o.Chunks
	}
	return total
}

// Zipf samples object indices with P(rank i) proportional to 1/i^alpha.
// The paper uses a static Zipf with alpha = 0.7 (citing Breslau et al.),
// which math/rand's Zipf cannot express (it requires s > 1), so the CDF
// is precomputed and sampled by binary search.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over n ranks with the given exponent.
func NewZipf(n int, alpha float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: zipf needs n > 0, got %d", n)
	}
	if alpha < 0 {
		return nil, fmt.Errorf("workload: zipf alpha must be >= 0, got %g", alpha)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}, nil
}

// Sample draws a rank in [0, n).
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }
