package workload_test

import (
	"math/rand"
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/metrics"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/network"
	"github.com/tactic-icn/tactic/internal/pki"
	"github.com/tactic-icn/tactic/internal/sim"
	"github.com/tactic-icn/tactic/internal/topology"
	"github.com/tactic-icn/tactic/internal/workload"
)

// consumerHarness wires one consumer through an AP and an edge router to
// a provider:
//
//	consumer(0) — ap(1) — edge(2) — provider(3)
type consumerHarness struct {
	engine   *sim.Engine
	net      *network.Network
	provider *core.Provider
	provNode *network.ProviderNode
	edge     *network.RouterNode
	catalog  *workload.Catalog
	zipf     *workload.Zipf
	regNames map[string]names.Name
	apValue  core.AccessPath
}

// buildLine constructs the explicit four-node topology.
func buildLine() *topology.Graph {
	g := &topology.Graph{}
	spec := sim.LinkSpec{Latency: time.Millisecond, BandwidthBps: 1_000_000_000}
	kinds := []topology.Kind{topology.KindClient, topology.KindAccessPoint, topology.KindEdgeRouter, topology.KindProvider}
	for i, k := range kinds {
		g.Nodes = append(g.Nodes, topology.Node{Index: i, ID: k.String() + "-" + string(rune('0'+i)), Kind: k})
		g.Adj = append(g.Adj, nil)
	}
	for i := 0; i+1 < len(kinds); i++ {
		idx := len(g.Edges)
		g.Edges = append(g.Edges, topology.Edge{A: i, B: i + 1, Spec: spec})
		g.Adj[i] = append(g.Adj[i], topology.Neighbor{Node: i + 1, Edge: idx})
		g.Adj[i+1] = append(g.Adj[i+1], topology.Neighbor{Node: i, Edge: idx})
	}
	return g
}

func newConsumerHarness(t *testing.T) *consumerHarness {
	t.Helper()
	g := buildLine()
	engine := sim.NewEngine()
	net := network.New(engine, g, sim.NewStreams(1))
	cfg := network.RouterConfig{BFCapacity: 500, BFMaxFPP: 1e-4, CSCapacity: 100, PITLifetime: 2 * time.Second}

	registry := pki.NewRegistry()
	signer, err := pki.GenerateFast(rand.New(rand.NewSource(1)), names.MustParse("/prov0/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := registry.Register(signer.Locator(), signer.Public()); err != nil {
		t.Fatal(err)
	}
	provider, err := core.NewProvider(names.MustParse("/prov0"), signer, 10*time.Second, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	provNode, err := network.NewProviderNode(net, 3, provider, registry, rand.New(rand.NewSource(3)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := workload.BuildCatalog(workload.CatalogConfig{
		Providers: 1, ObjectsPerProvider: 3, ChunksPerObject: 4, ChunkSize: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, catalog.ChunkSize)
	for _, obj := range catalog.Objects {
		for k := 0; k < obj.Chunks; k++ {
			content, err := provider.Publish(obj.ChunkName(k), obj.Level, payload)
			if err != nil {
				t.Fatal(err)
			}
			provNode.AddContent(content)
		}
	}
	zipf, err := workload.NewZipf(len(catalog.Objects), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	edge, err := network.NewRouterNode(net, 2, true, registry, rand.New(rand.NewSource(4)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	edge.FIB().Insert(names.MustParse("/prov0"), net.FaceToward(2, 3))
	ap := network.NewAPNode(net, 1, 2*time.Second)
	net.SetNode(1, ap)
	net.SetNode(2, edge)
	net.SetNode(3, provNode)

	return &consumerHarness{
		engine:   engine,
		net:      net,
		provider: provider,
		provNode: provNode,
		edge:     edge,
		catalog:  catalog,
		zipf:     zipf,
		regNames: map[string]names.Name{provider.Prefix().Key(): provNode.RegistrationName()},
		apValue:  core.EmptyAccessPath.Accumulate(g.Nodes[1].ID),
	}
}

// installConsumer creates a consumer at node 0 with the given source.
func (h *consumerHarness) installConsumer(t *testing.T, src workload.TagSource, cfg workload.ConsumerConfig) *workload.Consumer {
	t.Helper()
	c := workload.NewConsumer(h.net, 0, src, h.catalog, h.zipf, rand.New(rand.NewSource(9)), h.regNames, cfg)
	h.net.SetNode(0, c)
	return c
}

// enrolledClient builds and enrolls a client identity.
func (h *consumerHarness) enrolledClient(t *testing.T) (*core.Client, *workload.HonestSource) {
	t.Helper()
	signer, err := pki.GenerateFast(rand.New(rand.NewSource(7)), names.MustParse("/u/alice/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := core.NewClient(signer, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	h.provider.Enroll(cl.KeyLocator(), signer.Public(), 3)
	return cl, workload.NewHonestSource(cl, h.apValue)
}

func TestConsumerFetchLifecycle(t *testing.T) {
	h := newConsumerHarness(t)
	_, src := h.enrolledClient(t)
	c := h.installConsumer(t, src, workload.ConsumerConfig{
		Window:         3,
		RequestTimeout: time.Second,
		RequestGap:     20 * time.Millisecond,
		StartJitter:    10 * time.Millisecond,
	})
	c.Start()
	h.engine.RunFor(5 * time.Second)

	st := c.Stats()
	if st.Delivery.Requested == 0 {
		t.Fatal("consumer issued nothing")
	}
	if st.Delivery.Ratio() < 0.99 {
		t.Errorf("delivery ratio %.4f (%d/%d), timeouts %d, nacks %d, sourceErrs %d",
			st.Delivery.Ratio(), st.Delivery.Received, st.Delivery.Requested,
			st.Timeouts, st.NACKs, st.SourceErrors)
	}
	if st.Latency.Count() == 0 || st.Latency.Mean() <= 0 {
		t.Error("no latency recorded")
	}
	if c.ID() == "" {
		t.Error("empty consumer ID")
	}
	// Tag series recorded the registration.
	q, r := c.TagSeries()
	sumQ, sumR := seriesSum(q), seriesSum(r)
	if sumQ < 1 || sumR < 1 {
		t.Errorf("tag series Q=%v R=%v", sumQ, sumR)
	}
	if c.LatencySeries().Len() == 0 {
		t.Error("latency series empty")
	}
}

func seriesSum(ts *metrics.TimeSeries) float64 {
	var sum float64
	for _, v := range ts.Sums() {
		sum += v
	}
	return sum
}

func TestConsumerSharedCollectors(t *testing.T) {
	h := newConsumerHarness(t)
	_, src := h.enrolledClient(t)
	c := h.installConsumer(t, src, workload.DefaultConsumerConfig())
	shared := metrics.NewTimeSeries(time.Second)
	sharedQ := metrics.NewTimeSeries(time.Second)
	sharedR := metrics.NewTimeSeries(time.Second)
	c.AttachCollectors(shared, sharedQ, sharedR)
	c.Start()
	h.engine.RunFor(3 * time.Second)
	if shared.Len() == 0 || seriesSum(sharedQ) == 0 {
		t.Error("shared collectors received nothing")
	}
	// Nil collectors are ignored (no panic, keeps existing ones).
	c.AttachCollectors(nil, nil, nil)
}

func TestConsumerTimeoutFreesWindow(t *testing.T) {
	h := newConsumerHarness(t)
	// Remove the provider so every request stalls and times out.
	h.net.SetNode(3, nil)
	_, src := h.enrolledClient(t)
	c := h.installConsumer(t, src, workload.ConsumerConfig{
		Window:         2,
		RequestTimeout: 500 * time.Millisecond,
		RequestGap:     20 * time.Millisecond,
	})
	c.Start()
	h.engine.RunFor(5 * time.Second)
	st := c.Stats()
	if st.Timeouts < 5 {
		t.Errorf("timeouts = %d, want many (provider is gone)", st.Timeouts)
	}
	if st.Delivery.Received != 0 {
		t.Error("received chunks from a dead provider?!")
	}
	// The window kept freeing: more than Window requests were attempted
	// (registrations count as in-flight requests too).
	if st.Timeouts <= 2 {
		t.Error("window never freed after timeouts")
	}
}

func TestConsumerNACKFreesSlot(t *testing.T) {
	h := newConsumerHarness(t)
	// A shared-tag style source: valid-looking tag recorded for another
	// location. The edge NACKs every request immediately.
	signer, err := pki.GenerateFast(rand.New(rand.NewSource(1)), names.MustParse("/prov0/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	elsewhere := core.AccessPathOf("ap-elsewhere")
	tag, err := core.IssueTag(signer, names.MustParse("/u/eve/KEY/1"), 3, elsewhere, sim.Epoch.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	victim, err := core.NewClient(mustSigner(t, 11, "/u/eve/KEY/1"), rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.StoreRegistration(h.provider.Prefix(), &core.RegistrationResponse{Tag: tag}); err != nil {
		t.Fatal(err)
	}
	src := workload.NewSharedTagSource(victim, elsewhere)
	c := h.installConsumer(t, src, workload.ConsumerConfig{
		Window:         2,
		RequestTimeout: time.Second,
		RequestGap:     20 * time.Millisecond,
	})
	c.Start()
	h.engine.RunFor(3 * time.Second)
	st := c.Stats()
	if st.NACKs == 0 {
		t.Error("edge NACKs never reached the consumer")
	}
	if st.Delivery.Received != 0 {
		t.Error("mismatched access path still delivered")
	}
}

func mustSigner(t *testing.T, seed int64, locator string) pki.Signer {
	t.Helper()
	s, err := pki.GenerateFast(rand.New(rand.NewSource(seed)), names.MustParse(locator))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConsumerMoveToUnknownSourceKind(t *testing.T) {
	h := newConsumerHarness(t)
	c := h.installConsumer(t, workload.NoTagSource{}, workload.DefaultConsumerConfig())
	// NoTagSource has no location; MoveTo still re-homes the link. The
	// only other AP-capable target here is the edge... there is no
	// second AP in the line harness, so moving to the same AP is a
	// no-op and any other target violates the device-degree rule only
	// if the device had >1 faces. Move to the same AP:
	if err := c.MoveTo(1); err != nil {
		t.Errorf("same-AP move should succeed: %v", err)
	}
	if c.Moves() != 1 {
		t.Errorf("moves = %d", c.Moves())
	}
}
