package workload

import (
	"math/rand"
	"strconv"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/metrics"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/ndn"
	"github.com/tactic-icn/tactic/internal/network"
)

// ConsumerConfig parameterises the Zipf-window consumer of §8.A: "each
// client is equipped with a fixed size window for outstanding requests
// (set to 5 requests in our simulations)" with a 1 s request expiry.
type ConsumerConfig struct {
	// Window is the outstanding-request window (paper: 5).
	Window int
	// RequestTimeout expires outstanding requests (paper: 1 s).
	RequestTimeout time.Duration
	// RequestGap paces request issuance; each consumer attempts one
	// issue per gap (jittered ±50%), bounding its request rate at
	// ~1/gap.
	RequestGap time.Duration
	// StartJitter randomises consumer start times in [0, StartJitter).
	StartJitter time.Duration
	// TraceEvery head-samples every Nth content request for end-to-end
	// tracing (0 = off); effective only when the network has a trace
	// collector installed.
	TraceEvery int
}

// DefaultConsumerConfig returns the paper's client parameters with a
// pacing gap that lands aggregate request rates in the paper's observed
// range (~20 chunks/s per client).
func DefaultConsumerConfig() ConsumerConfig {
	return ConsumerConfig{
		Window:         5,
		RequestTimeout: time.Second,
		RequestGap:     48 * time.Millisecond,
		StartJitter:    time.Second,
	}
}

// pending tracks one outstanding request.
type pending struct {
	name     names.Name
	sentAt   time.Time
	isReg    bool
	provider names.Name
	token    uint64
	// span is the request's hop-0 trace span (nil when untraced).
	span *network.SimSpan
}

// Consumer is a simulated end device: a Zipf-window client or an
// attacker, depending on its TagSource. It picks objects by popularity,
// fetches their chunks through its window, registers for tags on demand,
// and records the paper's user-based metrics.
type Consumer struct {
	net     *network.Network
	index   int
	id      string
	face    ndn.FaceID
	source  TagSource
	catalog *Catalog
	zipf    *Zipf
	rng     *rand.Rand
	cfg     ConsumerConfig
	// providerKeyByPrefix resolves a chunk's provider prefix to its
	// registration name.
	regNameByPrefix map[string]names.Name

	queue      []names.Name // chunk names of the current object
	queueOwner names.Name   // provider prefix of the current object
	inFlight   map[string]*pending
	regPending map[string]bool
	nonce      uint64
	token      uint64
	traceSeq   uint64

	delivery      metrics.Delivery
	latency       metrics.Latency
	latencySeries *metrics.TimeSeries
	tagQ          *metrics.TimeSeries
	tagR          *metrics.TimeSeries
	nacks         uint64
	timeouts      uint64
	sourceErrs    uint64
	moves         uint64
}

var _ network.Node = (*Consumer)(nil)

// NewConsumer creates a consumer at graph index (which must have exactly
// one face, to its access point).
func NewConsumer(net *network.Network, index int, source TagSource, catalog *Catalog, zipf *Zipf, rng *rand.Rand, regNames map[string]names.Name, cfg ConsumerConfig) *Consumer {
	return &Consumer{
		net:             net,
		index:           index,
		id:              net.Graph.Nodes[index].ID,
		face:            0,
		source:          source,
		catalog:         catalog,
		zipf:            zipf,
		rng:             rng,
		cfg:             cfg,
		regNameByPrefix: regNames,
		inFlight:        make(map[string]*pending),
		regPending:      make(map[string]bool),
		latencySeries:   metrics.NewTimeSeries(time.Second),
		tagQ:            metrics.NewTimeSeries(time.Second),
		tagR:            metrics.NewTimeSeries(time.Second),
	}
}

// ID returns the consumer's node identity.
func (c *Consumer) ID() string { return c.id }

// MoveTo hands the consumer over to a different access point: the
// network re-aims its radio link and, for sources that track location
// (honest clients), the access path updates so the next request
// triggers a fresh registration (§4.A). Outstanding requests are left
// to time out, as in a real handover.
func (c *Consumer) MoveTo(newAPIndex int) error {
	if err := c.net.Rehome(c.index, newAPIndex); err != nil {
		return err
	}
	if mover, ok := c.source.(interface{ SetAccessPath(core.AccessPath) }); ok {
		apID := c.net.Graph.Nodes[newAPIndex].ID
		mover.SetAccessPath(core.EmptyAccessPath.Accumulate(apID))
	}
	c.moves++
	return nil
}

// Moves returns the number of completed handovers.
func (c *Consumer) Moves() uint64 { return c.moves }

// AttachCollectors replaces the consumer's metric series with shared
// ones, so an experiment can aggregate per-second statistics across all
// consumers without averaging averages. Call before Start.
func (c *Consumer) AttachCollectors(latency, tagQ, tagR *metrics.TimeSeries) {
	if latency != nil {
		c.latencySeries = latency
	}
	if tagQ != nil {
		c.tagQ = tagQ
	}
	if tagR != nil {
		c.tagR = tagR
	}
}

// Start schedules the consumer's first request cycle.
func (c *Consumer) Start() {
	delay := time.Duration(0)
	if c.cfg.StartJitter > 0 {
		delay = time.Duration(c.rng.Int63n(int64(c.cfg.StartJitter)))
	}
	c.net.Engine.Schedule(delay, c.cycle)
}

// cycle attempts one request issue and reschedules itself.
func (c *Consumer) cycle() {
	c.tryIssue()
	gap := c.cfg.RequestGap
	jitter := time.Duration(float64(gap) * (0.5 + c.rng.Float64()))
	c.net.Engine.Schedule(jitter, c.cycle)
}

// tryIssue issues at most one request, respecting the window.
func (c *Consumer) tryIssue() {
	if len(c.inFlight) >= c.cfg.Window {
		return
	}
	if len(c.queue) == 0 {
		c.pickObject()
	}
	if len(c.queue) == 0 {
		return
	}
	now := c.net.Engine.Now()
	chunkName := c.queue[0]
	provPrefix := c.queueOwner

	tag, reg, err := c.source.Prepare(provPrefix, now)
	if err != nil {
		c.sourceErrs++
		return
	}
	if reg != nil {
		c.sendRegistration(provPrefix, reg, now)
		return
	}
	// Content request.
	c.queue = c.queue[1:]
	if _, dup := c.inFlight[chunkName.Key()]; dup {
		return
	}
	c.nonce++
	i := &ndn.Interest{
		Name:  chunkName,
		Kind:  ndn.KindContent,
		Nonce: c.consumerNonce(),
		Tag:   tag,
	}
	// Head-sampling: the consumer decides which requests are traced and
	// stamps the wire context every downstream hop links to.
	var sp *network.SimSpan
	if c.cfg.TraceEvery > 0 && c.net.Tracing() {
		if c.traceSeq%uint64(c.cfg.TraceEvery) == 0 {
			sp = c.net.StartTraceRoot(c.id, "client", "fetch", chunkName.String())
			i.Trace = sp.WireContext()
		}
		c.traceSeq++
	}
	c.track(chunkName, provPrefix, false, now, sp)
	c.delivery.Requested++
	c.net.SendInterest(c.index, c.face, i, 0)
}

// consumerNonce builds a node-unique nonce.
func (c *Consumer) consumerNonce() uint64 {
	return uint64(c.index)<<40 | c.nonce
}

// sendRegistration issues a tag request toward the provider.
func (c *Consumer) sendRegistration(provPrefix names.Name, reg *core.RegistrationRequest, now time.Time) {
	if c.regPending[provPrefix.Key()] {
		return
	}
	base, ok := c.regNameByPrefix[provPrefix.Key()]
	if !ok {
		c.sourceErrs++
		return
	}
	c.nonce++
	name := base.MustAppend(c.id, "n"+strconv.FormatUint(c.nonce, 10))
	i := &ndn.Interest{
		Name:         name,
		Kind:         ndn.KindRegistration,
		Nonce:        c.consumerNonce(),
		Registration: reg,
	}
	c.regPending[provPrefix.Key()] = true
	c.track(name, provPrefix, true, now, nil)
	c.tagQ.Add(c.net.Engine.Elapsed(), 1)
	c.net.SendInterest(c.index, c.face, i, 0)
}

// track registers an outstanding request and schedules its timeout.
func (c *Consumer) track(name names.Name, provider names.Name, isReg bool, now time.Time, sp *network.SimSpan) {
	c.token++
	p := &pending{name: name, sentAt: now, isReg: isReg, provider: provider, token: c.token, span: sp}
	c.inFlight[name.Key()] = p
	tok := c.token
	c.net.Engine.Schedule(c.cfg.RequestTimeout, func() {
		cur, ok := c.inFlight[name.Key()]
		if !ok || cur.token != tok {
			return
		}
		delete(c.inFlight, name.Key())
		c.timeouts++
		cur.span.End("timeout", 0)
		if cur.isReg {
			delete(c.regPending, cur.provider.Key())
		}
	})
}

// pickObject selects the next object by popularity and queues its
// chunks.
func (c *Consumer) pickObject() {
	obj := c.catalog.Objects[c.zipf.Sample(c.rng)]
	c.queue = make([]names.Name, 0, obj.Chunks)
	for k := 0; k < obj.Chunks; k++ {
		c.queue = append(c.queue, obj.ChunkName(k))
	}
	c.queueOwner = obj.Prefix
}

// HandleInterest is a no-op: consumers never forward.
func (c *Consumer) HandleInterest(i *ndn.Interest, from ndn.FaceID) {}

// HandleData completes outstanding requests.
func (c *Consumer) HandleData(d *ndn.Data, from ndn.FaceID) {
	p, ok := c.inFlight[d.Name.Key()]
	if !ok {
		return
	}
	delete(c.inFlight, d.Name.Key())

	now := c.net.Engine.Now()
	switch {
	case d.Registration != nil:
		delete(c.regPending, p.provider.Key())
		if err := c.source.OnRegistration(p.provider, d.Registration); err != nil {
			c.sourceErrs++
			return
		}
		c.tagR.Add(c.net.Engine.Elapsed(), 1)
	case d.Nack || d.Content == nil:
		if p.isReg {
			delete(c.regPending, p.provider.Key())
		}
		c.nacks++
		p.span.End("nack", 0)
	default:
		lat := now.Sub(p.sentAt)
		c.delivery.Received++
		c.latency.Observe(lat)
		c.latencySeries.Observe(c.net.Engine.Elapsed(), lat.Seconds())
		p.span.End("delivered", 0)
	}
}

// ConsumerStats snapshots the paper's user-based metrics for one
// consumer.
type ConsumerStats struct {
	// Delivery is the requested/received chunk tally (Table IV).
	Delivery metrics.Delivery
	// Latency aggregates content-retrieval latency (Fig. 5).
	Latency metrics.Latency
	// NACKs counts invalidity signals received.
	NACKs uint64
	// Timeouts counts expired requests.
	Timeouts uint64
	// SourceErrors counts tag-source failures.
	SourceErrors uint64
}

// Stats returns the consumer's counters.
func (c *Consumer) Stats() ConsumerStats {
	return ConsumerStats{
		Delivery:     c.delivery,
		Latency:      c.latency,
		NACKs:        c.nacks,
		Timeouts:     c.timeouts,
		SourceErrors: c.sourceErrs,
	}
}

// LatencySeries returns the per-second average latency series (seconds).
func (c *Consumer) LatencySeries() *metrics.TimeSeries { return c.latencySeries }

// TagSeries returns the tag-request (Q) and tag-receive (R) per-second
// series (Fig. 6).
func (c *Consumer) TagSeries() (q, r *metrics.TimeSeries) { return c.tagQ, c.tagR }
