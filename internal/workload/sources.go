package workload

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/pki"
)

// TagSource decides what authentication material a consumer attaches to
// its requests. One implementation per threat-model scenario (§3.C)
// plus the honest client.
type TagSource interface {
	// Prepare returns the tag to attach for a request to the provider
	// (nil for a tagless request) or, when a fresh tag must be obtained
	// first, a registration request to send instead.
	Prepare(providerPrefix names.Name, now time.Time) (tag *core.Tag, register *core.RegistrationRequest, err error)
	// OnRegistration installs a registration response.
	OnRegistration(providerPrefix names.Name, resp *core.RegistrationResponse) error
}

// HonestSource is the legitimate client behaviour: register on demand,
// refresh on expiry, attach the valid tag.
type HonestSource struct {
	client *core.Client
	ap     core.AccessPath
}

var _ TagSource = (*HonestSource)(nil)

// NewHonestSource wraps a client whose location yields the given access
// path.
func NewHonestSource(client *core.Client, ap core.AccessPath) *HonestSource {
	return &HonestSource{client: client, ap: ap}
}

// Client exposes the wrapped client (for tag Q/R statistics).
func (h *HonestSource) Client() *core.Client { return h.client }

// SetAccessPath updates the client's location after a move. Held tags
// stop matching the new path, so TagFor returns nil and the client
// re-registers — exactly the paper's mobility rule (§4.A: "a mobile
// client needs to request a new tag every time she moves to a new
// location").
func (h *HonestSource) SetAccessPath(ap core.AccessPath) { h.ap = ap }

// Prepare implements TagSource.
func (h *HonestSource) Prepare(providerPrefix names.Name, now time.Time) (*core.Tag, *core.RegistrationRequest, error) {
	if t := h.client.TagFor(providerPrefix, h.ap, now); t != nil {
		return t, nil, nil
	}
	req, err := h.client.NewRegistrationRequest(h.ap)
	if err != nil {
		return nil, nil, err
	}
	return nil, &req, nil
}

// OnRegistration implements TagSource.
func (h *HonestSource) OnRegistration(providerPrefix names.Name, resp *core.RegistrationResponse) error {
	return h.client.StoreRegistration(providerPrefix, resp)
}

// NoTagSource is threat (a): requests private content without any tag.
type NoTagSource struct{}

var _ TagSource = NoTagSource{}

// Prepare implements TagSource: always tagless.
func (NoTagSource) Prepare(names.Name, time.Time) (*core.Tag, *core.RegistrationRequest, error) {
	return nil, nil, nil
}

// OnRegistration implements TagSource.
func (NoTagSource) OnRegistration(names.Name, *core.RegistrationResponse) error { return nil }

// FakeTagSource is threat (b): forges tags that name the legitimate
// provider's key locator but are signed by the attacker's own key (the
// paper's §6 malicious-tag case). Forged tags are refreshed on "expiry"
// so their bytes churn like legitimate tags; only Bloom-filter false
// positives can make routers serve them.
type FakeTagSource struct {
	rng       *rand.Rand
	ap        core.AccessPath
	level     core.AccessLevel
	ttl       time.Duration
	keyByProv map[string]names.Name // provider prefix -> claimed key locator
	forged    map[string]*core.Tag
	clientKey names.Name
}

var _ TagSource = (*FakeTagSource)(nil)

// NewFakeTagSource creates a forger. providerKeys maps each provider
// prefix to the key locator the forged tags will claim; level and ap
// mimic a plausible client.
func NewFakeTagSource(rng *rand.Rand, clientKey names.Name, providerKeys map[string]names.Name, level core.AccessLevel, ap core.AccessPath, ttl time.Duration) *FakeTagSource {
	return &FakeTagSource{
		rng:       rng,
		ap:        ap,
		level:     level,
		ttl:       ttl,
		keyByProv: providerKeys,
		forged:    make(map[string]*core.Tag),
		clientKey: clientKey,
	}
}

// Prepare implements TagSource.
func (f *FakeTagSource) Prepare(providerPrefix names.Name, now time.Time) (*core.Tag, *core.RegistrationRequest, error) {
	k := providerPrefix.Key()
	if t, ok := f.forged[k]; ok && !t.Expired(now) {
		return t, nil, nil
	}
	claimed, ok := f.keyByProv[k]
	if !ok {
		return nil, nil, fmt.Errorf("workload: no key locator known for %s", providerPrefix)
	}
	// A rogue signer whose locator *names* the legitimate provider key:
	// the signature can never verify against the real key.
	rogue, err := pki.GenerateFast(f.rng, claimed)
	if err != nil {
		return nil, nil, err
	}
	t, err := core.IssueTag(rogue, f.clientKey, f.level, f.ap, now.Add(f.ttl))
	if err != nil {
		return nil, nil, err
	}
	f.forged[k] = t
	return t, nil, nil
}

// OnRegistration implements TagSource (forgers never register).
func (f *FakeTagSource) OnRegistration(names.Name, *core.RegistrationResponse) error { return nil }

// ExpiredTagSource is threat (c): a once-legitimate client that keeps
// using its tag after T_e — the revoked-client scenario under TACTIC's
// time-based revocation. It registers exactly once per provider and
// never refreshes.
type ExpiredTagSource struct {
	honest *HonestSource
	stale  map[string]*core.Tag
}

var _ TagSource = (*ExpiredTagSource)(nil)

// NewExpiredTagSource wraps an enrolled client.
func NewExpiredTagSource(client *core.Client, ap core.AccessPath) *ExpiredTagSource {
	return &ExpiredTagSource{
		honest: NewHonestSource(client, ap),
		stale:  make(map[string]*core.Tag),
	}
}

// Prepare implements TagSource.
func (e *ExpiredTagSource) Prepare(providerPrefix names.Name, now time.Time) (*core.Tag, *core.RegistrationRequest, error) {
	if t, ok := e.stale[providerPrefix.Key()]; ok {
		// Keep using the stale tag even after expiry (the attack).
		return t, nil, nil
	}
	return e.honest.Prepare(providerPrefix, now)
}

// OnRegistration implements TagSource: remember the tag forever.
func (e *ExpiredTagSource) OnRegistration(providerPrefix names.Name, resp *core.RegistrationResponse) error {
	e.stale[providerPrefix.Key()] = resp.Tag
	return e.honest.OnRegistration(providerPrefix, resp)
}

// SharedTagSource is threat (e): an unauthorized user at a different
// location replaying a legitimate client's tag. The access-path check at
// the edge router is the designed defence (Protocol 2 lines 1-2).
type SharedTagSource struct {
	victim   *core.Client
	victimAP core.AccessPath
}

var _ TagSource = (*SharedTagSource)(nil)

// NewSharedTagSource shares the victim's live tag store.
func NewSharedTagSource(victim *core.Client, victimAP core.AccessPath) *SharedTagSource {
	return &SharedTagSource{victim: victim, victimAP: victimAP}
}

// Prepare implements TagSource: steal whatever tag the victim currently
// holds (tagless when the victim has none).
func (s *SharedTagSource) Prepare(providerPrefix names.Name, now time.Time) (*core.Tag, *core.RegistrationRequest, error) {
	return s.victim.TagFor(providerPrefix, s.victimAP, now), nil, nil
}

// OnRegistration implements TagSource.
func (s *SharedTagSource) OnRegistration(names.Name, *core.RegistrationResponse) error { return nil }
