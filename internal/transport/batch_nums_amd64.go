//go:build linux && amd64

package transport

// recvmmsg/sendmmsg syscall numbers on linux/amd64.
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
)
