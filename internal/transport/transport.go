// Package transport carries TACTIC's NDN packets over real byte-stream
// connections (TCP, Unix sockets, net.Pipe): the deployable counterpart
// of the simulator's instantaneous delivery. Frames are the TLV
// encodings from internal/ndn, which are self-delimiting (type byte +
// variable-length length + body), so no extra framing layer is needed.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/tactic-icn/tactic/internal/ndn"
)

// MaxPacketSize bounds a single packet (type + length + body); frames
// announcing more are rejected before allocation.
const MaxPacketSize = 1 << 20

// Packet types on the wire (the TLV outer types).
const (
	typeInterest = 0x05
	typeData     = 0x06
)

// Transport errors.
var (
	// ErrPacketTooLarge is returned for frames exceeding MaxPacketSize.
	ErrPacketTooLarge = errors.New("transport: packet exceeds maximum size")
	// ErrBadPacketType is returned for unknown outer TLV types.
	ErrBadPacketType = errors.New("transport: unknown packet type")
)

// Packet is one received packet: exactly one of Interest or Data is
// non-nil.
type Packet struct {
	// Interest is set for Interest frames.
	Interest *ndn.Interest
	// Data is set for Data frames.
	Data *ndn.Data
}

// Conn frames NDN packets over a byte stream. Reads are single-reader;
// writes are internally serialised and safe for concurrent use.
type Conn struct {
	c  net.Conn
	r  *bufio.Reader
	w  *bufio.Writer
	mu sync.Mutex // guards w
}

// New wraps a net.Conn.
func New(c net.Conn) *Conn {
	return &Conn{
		c: c,
		r: bufio.NewReaderSize(c, 64<<10),
		w: bufio.NewWriterSize(c, 64<<10),
	}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }

// SendInterest writes one Interest frame.
func (c *Conn) SendInterest(i *ndn.Interest) error {
	frame, err := ndn.EncodeInterest(i)
	if err != nil {
		return err
	}
	return c.writeFrame(frame)
}

// SendData writes one Data frame.
func (c *Conn) SendData(d *ndn.Data) error {
	frame, err := ndn.EncodeData(d)
	if err != nil {
		return err
	}
	return c.writeFrame(frame)
}

// writeFrame writes and flushes one frame under the write lock.
func (c *Conn) writeFrame(frame []byte) error {
	if len(frame) > MaxPacketSize {
		return ErrPacketTooLarge
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.w.Write(frame); err != nil {
		return fmt.Errorf("transport: write: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("transport: flush: %w", err)
	}
	return nil
}

// Receive blocks for the next packet. io.EOF signals a clean close.
func (c *Conn) Receive() (Packet, error) {
	frame, typ, err := readFrame(c.r)
	if err != nil {
		return Packet{}, err
	}
	switch typ {
	case typeInterest:
		i, err := ndn.DecodeInterest(frame)
		if err != nil {
			return Packet{}, err
		}
		return Packet{Interest: i}, nil
	case typeData:
		d, err := ndn.DecodeData(frame)
		if err != nil {
			return Packet{}, err
		}
		return Packet{Data: d}, nil
	default:
		return Packet{}, fmt.Errorf("%w: %#x", ErrBadPacketType, typ)
	}
}

// readFrame reads one complete TLV frame from the stream: the outer
// type byte, the variable-length length, and the body.
func readFrame(r *bufio.Reader) (frame []byte, typ byte, err error) {
	typ, err = r.ReadByte()
	if err != nil {
		return nil, 0, err // io.EOF passes through for clean closes
	}
	first, err := r.ReadByte()
	if err != nil {
		return nil, 0, eofToUnexpected(err)
	}
	var length uint64
	header := []byte{typ, first}
	switch {
	case first < 253:
		length = uint64(first)
	case first == 253:
		var b [2]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return nil, 0, eofToUnexpected(err)
		}
		length = uint64(binary.BigEndian.Uint16(b[:]))
		header = append(header, b[:]...)
	case first == 254:
		var b [4]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return nil, 0, eofToUnexpected(err)
		}
		length = uint64(binary.BigEndian.Uint32(b[:]))
		header = append(header, b[:]...)
	default:
		return nil, 0, fmt.Errorf("transport: unsupported length prefix %d", first)
	}
	if uint64(len(header))+length > MaxPacketSize {
		return nil, 0, ErrPacketTooLarge
	}
	frame = make([]byte, len(header)+int(length))
	copy(frame, header)
	if _, err := io.ReadFull(r, frame[len(header):]); err != nil {
		return nil, 0, eofToUnexpected(err)
	}
	return frame, typ, nil
}

// eofToUnexpected maps mid-frame EOFs to ErrUnexpectedEOF so callers can
// distinguish clean closes (EOF before any byte) from truncation.
func eofToUnexpected(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}
