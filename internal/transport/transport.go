// Package transport carries TACTIC's NDN packets over real byte-stream
// connections (TCP, Unix sockets, net.Pipe): the deployable counterpart
// of the simulator's instantaneous delivery. Frames are the TLV
// encodings from internal/ndn, which are self-delimiting (type byte +
// variable-length length + body), so no extra framing layer is needed.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tactic-icn/tactic/internal/ndn"
	"github.com/tactic-icn/tactic/internal/obs"
)

// MaxPacketSize bounds a single packet (type + length + body); frames
// announcing more are rejected before allocation.
const MaxPacketSize = 1 << 20

// Packet types on the wire (the TLV outer types).
const (
	typeInterest = 0x05
	typeData     = 0x06
	// typeKeepalive is a zero-length liveness frame. Receive consumes it
	// internally (refreshing the idle deadline) and never surfaces it, so
	// peers that predate keepalives interoperate: they parse and ignore
	// the frame body, which is empty.
	typeKeepalive = 0x60
	// typeControl is a lifecycle control-plane frame (revocation push,
	// epoch rotation, neighbor BF sync); see ndn.Control.
	typeControl = 0x61
)

// Transport errors.
var (
	// ErrPacketTooLarge is returned for frames exceeding MaxPacketSize.
	ErrPacketTooLarge = errors.New("transport: packet exceeds maximum size")
	// ErrBadPacketType is returned for unknown outer TLV types.
	ErrBadPacketType = errors.New("transport: unknown packet type")
)

// ConnError marks a connection-level failure (broken pipe, write
// deadline exceeded, injected fault): the byte stream's framing can no
// longer be trusted and the connection must be recycled. Encoding
// errors and per-packet rejections (ErrPacketTooLarge on send) are NOT
// ConnErrors — the connection survives them.
type ConnError struct {
	// Op is the failing operation ("write", "flush").
	Op string
	// Err is the underlying error.
	Err error
}

func (e *ConnError) Error() string { return "transport: " + e.Op + ": " + e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *ConnError) Unwrap() error { return e.Err }

// IsFatal reports whether err invalidates the whole connection (the
// caller should close and recycle the face) rather than just the packet
// that produced it.
func IsFatal(err error) bool {
	var ce *ConnError
	return errors.As(err, &ce)
}

// Face is one attached wire endpoint, stream- or datagram-backed:
// *Conn frames packets over byte streams (TCP, Unix, net.Pipe) and
// *DatagramFace carries them over UDP with fragmentation. Reads are
// single-reader; sends are safe for concurrent use.
type Face interface {
	// Receive blocks for the next packet; keepalives are consumed
	// internally. io.EOF signals a clean close.
	Receive() (Packet, error)
	// SendInterest, SendData, and SendControl encode and send one packet.
	SendInterest(*ndn.Interest) error
	SendData(*ndn.Data) error
	SendControl(*ndn.Control) error
	// SendFrame sends one pre-encoded TLV frame verbatim — the zero-copy
	// relay hook: a forwarder holding valid frame bytes need not re-encode.
	SendFrame(frame []byte) error
	// SendKeepalive sends one liveness frame.
	SendKeepalive() error
	// StartKeepalive sends liveness frames every interval until close.
	StartKeepalive(interval time.Duration)
	// SetWriteTimeout, SetIdleTimeout, and SetMetrics tune the face.
	SetWriteTimeout(d time.Duration)
	SetIdleTimeout(d time.Duration)
	SetMetrics(m *Metrics)
	// Stats snapshots the face's frame counters.
	Stats() Stats
	// RemoteAddr returns the peer address.
	RemoteAddr() net.Addr
	// Close releases the face.
	Close() error
}

// Packet is one received packet: exactly one of Interest, Data, or
// Control is non-nil.
type Packet struct {
	// Interest is set for Interest frames.
	Interest *ndn.Interest
	// Data is set for Data frames.
	Data *ndn.Data
	// Control is set for lifecycle control frames.
	Control *ndn.Control
	// DecodeDur is the TLV decode latency, measured on the same 1-in-64
	// sample that feeds Metrics.DecodeSeconds (zero otherwise); the
	// forwarder attaches it to trace spans when both samplers coincide.
	DecodeDur time.Duration
}

// Stats is a snapshot of one connection's frame and byte counters.
type Stats struct {
	// FramesIn and FramesOut count complete frames received and sent
	// (keepalives included — they are frames).
	FramesIn, FramesOut uint64
	// BytesIn and BytesOut count frame bytes (header + body).
	BytesIn, BytesOut uint64
	// Errors counts framing and I/O failures (clean EOFs excluded).
	Errors uint64
	// KeepalivesIn and KeepalivesOut count liveness frames exchanged.
	KeepalivesIn, KeepalivesOut uint64
}

// Metrics routes a connection's counters into an obs registry; any field
// may be nil (obs counters and histograms no-op when nil). Typically one
// Metrics per face, labelled with the face ID.
type Metrics struct {
	// FramesIn/FramesOut/BytesIn/BytesOut/Errors mirror Stats.
	FramesIn, FramesOut, BytesIn, BytesOut, Errors *obs.Counter
	// DecodeSeconds, when set, receives the TLV decode latency of a
	// sample (1 in 64) of received packets.
	DecodeSeconds *obs.Histogram

	// Datagram-plane counters, nil on stream faces: fragments sent and
	// received, frames completed by reassembly, partial packets evicted
	// (timeout or slot pressure), and oversized datagrams dropped.
	FragmentsIn, FragmentsOut   *obs.Counter
	Reassembled                 *obs.Counter
	ReassemblyEvictions         *obs.Counter
	Oversize                    *obs.Counter

	// Events, when set, receives operator events from the face (e.g.
	// reassembly-eviction bursts), labelled with Face.
	Events *obs.Events
	// Face is the face ID used in emitted events (set it alongside
	// Events; -1 when the face has no forwarder ID).
	Face int
}

// decodeSampleMask selects which received packets are timed for
// Metrics.DecodeSeconds: packet counts where count&mask == 0.
const decodeSampleMask = 63

// Conn frames NDN packets over a byte stream. Reads are single-reader;
// writes are internally serialised and safe for concurrent use.
type Conn struct {
	c  net.Conn
	r  *bufio.Reader
	w  *bufio.Writer
	mu sync.Mutex // guards w, wErr, flushTimer, timerArmed

	// writeTimeout and idleTimeout hold time.Duration nanoseconds;
	// 0 disables the respective deadline.
	writeTimeout atomic.Int64
	idleTimeout  atomic.Int64

	// coalesce holds the flush-aggregation window in nanoseconds; 0
	// flushes every frame (the default). See SetCoalesce.
	coalesce   atomic.Int64
	flushTimer *time.Timer
	timerArmed bool
	// wErr is the sticky write-path error: once the stream failed (or an
	// async coalesced flush failed) every later send reports it as fatal.
	wErr error

	framesIn, framesOut atomic.Uint64
	bytesIn, bytesOut   atomic.Uint64
	errs                atomic.Uint64
	kaIn, kaOut         atomic.Uint64
	metrics             atomic.Pointer[Metrics]

	done     chan struct{}
	doneOnce sync.Once
	kaOnce   sync.Once
	kaWG     sync.WaitGroup
}

// New wraps a net.Conn.
func New(c net.Conn) *Conn {
	conn := &Conn{
		c:    c,
		w:    bufio.NewWriterSize(c, 64<<10),
		done: make(chan struct{}),
	}
	// Reads go through progressReader so the idle deadline refreshes on
	// every low-level read, not once per frame: a slow multi-KB frame on
	// a lossy link keeps making progress without tripping the idle timer.
	conn.r = bufio.NewReaderSize(&progressReader{c: conn}, 64<<10)
	return conn
}

// progressReader is the read path beneath the bufio.Reader: it pushes
// the idle deadline forward before every underlying read, so any byte
// of progress counts as liveness (reads served from the bufio buffer
// never block and need no deadline).
type progressReader struct {
	c   *Conn
	set bool // a deadline is currently installed
}

func (p *progressReader) Read(b []byte) (int, error) {
	if d := time.Duration(p.c.idleTimeout.Load()); d > 0 {
		p.c.c.SetReadDeadline(time.Now().Add(d)) //nolint:errcheck // best-effort; the read reports failures
		p.set = true
	} else if p.set {
		p.c.c.SetReadDeadline(time.Time{}) //nolint:errcheck // best-effort
		p.set = false
	}
	return p.c.c.Read(b)
}

// SetWriteTimeout bounds each frame write (header through flush): a
// peer that stops draining its socket surfaces as a fatal ConnError
// within d instead of blocking the sender forever. 0 disables.
func (c *Conn) SetWriteTimeout(d time.Duration) { c.writeTimeout.Store(int64(d)) }

// SetIdleTimeout makes Receive fail when no frame (keepalives count)
// arrives for d, so a silently dead peer is detected and the face
// recycled. Set it comfortably above the peer's keepalive interval
// (≥ 3x). 0 disables.
func (c *Conn) SetIdleTimeout(d time.Duration) { c.idleTimeout.Store(int64(d)) }

// SetMetrics attaches per-face observability counters. Safe to call
// concurrently with traffic; counters attached mid-stream miss earlier
// frames (the Stats snapshot does not).
func (c *Conn) SetMetrics(m *Metrics) { c.metrics.Store(m) }

// Stats returns a snapshot of the connection's counters.
func (c *Conn) Stats() Stats {
	return Stats{
		FramesIn:      c.framesIn.Load(),
		FramesOut:     c.framesOut.Load(),
		BytesIn:       c.bytesIn.Load(),
		BytesOut:      c.bytesOut.Load(),
		Errors:        c.errs.Load(),
		KeepalivesIn:  c.kaIn.Load(),
		KeepalivesOut: c.kaOut.Load(),
	}
}

// countIn/countOut/countErr update the atomic tallies and any attached
// registry counters.
func (c *Conn) countIn(n int) {
	c.framesIn.Add(1)
	c.bytesIn.Add(uint64(n))
	if m := c.metrics.Load(); m != nil {
		m.FramesIn.Inc()
		m.BytesIn.Add(uint64(n))
	}
}

func (c *Conn) countOut(n int) {
	c.framesOut.Add(1)
	c.bytesOut.Add(uint64(n))
	if m := c.metrics.Load(); m != nil {
		m.FramesOut.Inc()
		m.BytesOut.Add(uint64(n))
	}
}

func (c *Conn) countErr() {
	c.errs.Add(1)
	if m := c.metrics.Load(); m != nil {
		m.Errors.Inc()
	}
}

// SetCoalesce enables write aggregation: instead of flushing every
// frame, frames accumulate in the write buffer and flush when it holds
// coalesceFlushBytes or when window elapses since the first buffered
// frame — back-to-back Data replies share one syscall. window <= 0
// restores flush-per-frame (the default). A failed asynchronous flush
// is sticky: the next send reports it as a fatal ConnError.
func (c *Conn) SetCoalesce(window time.Duration) {
	if window < 0 {
		window = 0
	}
	c.coalesce.Store(int64(window))
}

// coalesceFlushBytes flushes a coalescing writer early once this many
// bytes are buffered, keeping latency bounded under load.
const coalesceFlushBytes = 32 << 10

// Close closes the underlying connection and stops the keepalive
// sender, if any. Buffered coalesced frames are flushed best-effort
// first (skipped when a writer currently holds the lock).
func (c *Conn) Close() error {
	c.doneOnce.Do(func() { close(c.done) })
	if c.mu.TryLock() {
		if c.timerArmed {
			c.flushTimer.Stop()
			c.timerArmed = false
		}
		if c.wErr == nil && c.w.Buffered() > 0 {
			c.w.Flush() //nolint:errcheck // best-effort on teardown
		}
		c.mu.Unlock()
	}
	err := c.c.Close()
	c.kaWG.Wait()
	return err
}

// SendKeepalive writes one liveness frame.
func (c *Conn) SendKeepalive() error {
	if err := c.writeFrame([]byte{typeKeepalive, 0}); err != nil {
		return err
	}
	c.kaOut.Add(1)
	return nil
}

// StartKeepalive sends a liveness frame every interval until the
// connection closes or a send fails, keeping the peer's idle timeout
// from firing on a healthy-but-quiet link. At most one keepalive
// goroutine runs per Conn; interval <= 0 is a no-op.
func (c *Conn) StartKeepalive(interval time.Duration) {
	if interval <= 0 {
		return
	}
	c.kaOnce.Do(func() {
		c.kaWG.Add(1)
		go func() {
			defer c.kaWG.Done()
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-c.done:
					return
				case <-t.C:
					if err := c.SendKeepalive(); err != nil {
						return
					}
				}
			}
		}()
	})
}

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }

// SendInterest writes one Interest frame. The encoding goes through a
// pooled scratch buffer: the frame bytes live only until the flush.
func (c *Conn) SendInterest(i *ndn.Interest) error {
	buf := ndn.AcquireBuffer()
	defer ndn.ReleaseBuffer(buf)
	frame, err := ndn.AppendInterest(*buf, i)
	if err != nil {
		return err
	}
	*buf = frame[:0] // keep any growth for the pool
	return c.writeFrame(frame)
}

// SendData writes one Data frame through a pooled scratch buffer.
func (c *Conn) SendData(d *ndn.Data) error {
	buf := ndn.AcquireBuffer()
	defer ndn.ReleaseBuffer(buf)
	frame, err := ndn.AppendData(*buf, d)
	if err != nil {
		return err
	}
	*buf = frame[:0] // keep any growth for the pool
	return c.writeFrame(frame)
}

// SendControl writes one control frame through a pooled scratch buffer.
func (c *Conn) SendControl(m *ndn.Control) error {
	buf := ndn.AcquireBuffer()
	defer ndn.ReleaseBuffer(buf)
	frame, err := ndn.AppendControl(*buf, m)
	if err != nil {
		return err
	}
	*buf = frame[:0] // keep any growth for the pool
	return c.writeFrame(frame)
}

// SendFrame writes one pre-encoded TLV frame verbatim. The caller
// vouches for the bytes being a complete frame; no validation beyond
// the size bound is applied.
func (c *Conn) SendFrame(frame []byte) error { return c.writeFrame(frame) }

// writeFrame writes one frame under the write lock, flushing
// immediately (the default) or deferring the flush to the coalescing
// window (SetCoalesce). A failure here (including a write-deadline
// expiry) may leave a partial frame in the stream, so it is reported as
// a fatal ConnError.
func (c *Conn) writeFrame(frame []byte) error {
	if len(frame) > MaxPacketSize {
		return ErrPacketTooLarge
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.wErr != nil {
		return &ConnError{Op: "write", Err: c.wErr}
	}
	if d := time.Duration(c.writeTimeout.Load()); d > 0 {
		c.c.SetWriteDeadline(time.Now().Add(d)) //nolint:errcheck // best-effort; the write reports failures
	}
	if _, err := c.w.Write(frame); err != nil {
		c.countErr()
		c.wErr = err
		return &ConnError{Op: "write", Err: err}
	}
	window := time.Duration(c.coalesce.Load())
	if window <= 0 || c.w.Buffered() >= coalesceFlushBytes {
		if err := c.flushLocked(); err != nil {
			return err
		}
		c.countOut(len(frame))
		return nil
	}
	// Coalescing: leave the frame buffered and arm the flush timer once
	// per aggregation window (the first buffered frame arms it).
	if !c.timerArmed {
		c.timerArmed = true
		if c.flushTimer == nil {
			c.flushTimer = time.AfterFunc(window, c.timedFlush)
		} else {
			c.flushTimer.Reset(window)
		}
	}
	c.countOut(len(frame))
	return nil
}

// flushLocked flushes the write buffer; the caller holds mu.
func (c *Conn) flushLocked() error {
	if c.timerArmed {
		c.flushTimer.Stop()
		c.timerArmed = false
	}
	if err := c.w.Flush(); err != nil {
		c.countErr()
		c.wErr = err
		return &ConnError{Op: "flush", Err: err}
	}
	return nil
}

// timedFlush is the coalescing window expiry: flush whatever is
// buffered. Errors are sticky and surface on the next send.
func (c *Conn) timedFlush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timerArmed = false
	if c.wErr != nil || c.w.Buffered() == 0 {
		return
	}
	if d := time.Duration(c.writeTimeout.Load()); d > 0 {
		c.c.SetWriteDeadline(time.Now().Add(d)) //nolint:errcheck // best-effort
	}
	if err := c.w.Flush(); err != nil {
		c.countErr()
		c.wErr = err
	}
}

// Receive blocks for the next packet. io.EOF signals a clean close.
// Keepalive frames are consumed internally: they refresh the idle
// deadline but are never surfaced. The frame bytes live in a pooled
// buffer released on return — safe because the decoders copy everything
// they keep.
func (c *Conn) Receive() (Packet, error) {
	buf := ndn.AcquireBuffer()
	defer ndn.ReleaseBuffer(buf)
	frame, typ, err := c.receiveFrame(buf)
	if err != nil {
		return Packet{}, err
	}
	var hist *obs.Histogram
	var start time.Time
	if m := c.metrics.Load(); m != nil && m.DecodeSeconds != nil && c.framesIn.Load()&decodeSampleMask == 0 {
		hist = m.DecodeSeconds
		start = time.Now()
	}
	switch typ {
	case typeInterest:
		i, err := ndn.DecodeInterest(frame)
		if err != nil {
			c.countErr()
			return Packet{}, err
		}
		var dur time.Duration
		if hist != nil {
			dur = time.Since(start)
			hist.Observe(dur.Seconds())
		}
		return Packet{Interest: i, DecodeDur: dur}, nil
	case typeData:
		d, err := ndn.DecodeData(frame)
		if err != nil {
			c.countErr()
			return Packet{}, err
		}
		var dur time.Duration
		if hist != nil {
			dur = time.Since(start)
			hist.Observe(dur.Seconds())
		}
		return Packet{Data: d, DecodeDur: dur}, nil
	case typeControl:
		m, err := ndn.DecodeControl(frame)
		if err != nil {
			c.countErr()
			return Packet{}, err
		}
		return Packet{Control: m}, nil
	default:
		c.countErr()
		return Packet{}, fmt.Errorf("%w: %#x", ErrBadPacketType, typ)
	}
}

// receiveFrame reads the next non-keepalive frame into buf (growing it
// as needed). The idle deadline is applied beneath the bufio layer
// (progressReader), refreshed on any read progress rather than once per
// frame.
func (c *Conn) receiveFrame(buf *[]byte) ([]byte, byte, error) {
	for {
		frame, typ, err := readFrame(c.r, buf)
		if err != nil {
			if !errors.Is(err, io.EOF) { // clean close is not an error
				c.countErr()
			}
			return nil, 0, err
		}
		c.countIn(len(frame))
		if typ == typeKeepalive {
			c.kaIn.Add(1)
			continue
		}
		return frame, typ, nil
	}
}

// readFrame reads one complete TLV frame from the stream into buf — the
// outer type byte, the variable-length length, and the body — growing
// buf when the frame exceeds its capacity. The returned frame aliases
// *buf.
func readFrame(r *bufio.Reader, buf *[]byte) (frame []byte, typ byte, err error) {
	typ, err = r.ReadByte()
	if err != nil {
		return nil, 0, err // io.EOF passes through for clean closes
	}
	first, err := r.ReadByte()
	if err != nil {
		return nil, 0, eofToUnexpected(err)
	}
	var length uint64
	var header [6]byte
	header[0], header[1] = typ, first
	headerLen := 2
	switch {
	case first < 253:
		length = uint64(first)
	case first == 253:
		if _, err := io.ReadFull(r, header[2:4]); err != nil {
			return nil, 0, eofToUnexpected(err)
		}
		length = uint64(binary.BigEndian.Uint16(header[2:4]))
		headerLen = 4
	case first == 254:
		if _, err := io.ReadFull(r, header[2:6]); err != nil {
			return nil, 0, eofToUnexpected(err)
		}
		length = uint64(binary.BigEndian.Uint32(header[2:6]))
		headerLen = 6
	default:
		return nil, 0, fmt.Errorf("transport: unsupported length prefix %d", first)
	}
	if uint64(headerLen)+length > MaxPacketSize {
		return nil, 0, ErrPacketTooLarge
	}
	total := headerLen + int(length)
	if cap(*buf) < total {
		*buf = make([]byte, total)
	}
	frame = (*buf)[:total]
	copy(frame, header[:headerLen])
	if _, err := io.ReadFull(r, frame[headerLen:]); err != nil {
		return nil, 0, eofToUnexpected(err)
	}
	return frame, typ, nil
}

// eofToUnexpected maps mid-frame EOFs to ErrUnexpectedEOF so callers can
// distinguish clean closes (EOF before any byte) from truncation.
func eofToUnexpected(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}
