package transport

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/ndn"
)

// udpPair builds a listener endpoint and one dialed face pointed at it.
func udpPair(t *testing.T, opts UDPOptions) (*UDPEndpoint, *DatagramFace) {
	t.Helper()
	ep, err := ListenUDP("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	cl, err := DialUDP(ep.Addr().String(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return ep, cl
}

// acceptOne pulls the next face off the endpoint with a timeout.
func acceptOne(t *testing.T, ep *UDPEndpoint) Face {
	t.Helper()
	type res struct {
		f   Face
		err error
	}
	ch := make(chan res, 1)
	go func() {
		f, err := ep.Accept()
		ch <- res{f, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatal(r.err)
		}
		return r.f
	case <-time.After(5 * time.Second):
		t.Fatal("accept timed out")
		return nil
	}
}

func testData(payload []byte) *ndn.Data {
	name := names.MustParse("/prov0/obj/c0")
	return &ndn.Data{
		Name: name,
		Content: &core.Content{
			Meta:      core.ContentMeta{Name: name, Level: 1, ProviderKey: names.MustParse("/prov0/KEY/1")},
			Payload:   payload,
			Signature: []byte("sig"),
		},
	}
}

func TestUDPRoundTripBothDirections(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts UDPOptions
	}{
		{"batched", UDPOptions{}},
		{"single", UDPOptions{DisableBatch: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ep, cl := udpPair(t, tc.opts)
			want := &ndn.Interest{Name: names.MustParse("/prov0/obj/c0"), Kind: ndn.KindContent, Nonce: 7}
			if err := cl.SendInterest(want); err != nil {
				t.Fatal(err)
			}
			srv := acceptOne(t, ep)
			pkt, err := srv.Receive()
			if err != nil {
				t.Fatal(err)
			}
			if pkt.Interest == nil || !pkt.Interest.Name.Equal(want.Name) || pkt.Interest.Nonce != 7 {
				t.Fatalf("bad interest: %+v", pkt)
			}
			// Reply with a Data big enough to fragment (~3 fragments).
			payload := bytes.Repeat([]byte{0xC7}, 3500)
			if err := srv.SendData(testData(payload)); err != nil {
				t.Fatal(err)
			}
			pkt, err = cl.Receive()
			if err != nil {
				t.Fatal(err)
			}
			if pkt.Data == nil || !bytes.Equal(pkt.Data.Content.Payload, payload) {
				t.Fatal("fragmented data did not round trip")
			}
			if st := cl.Stats(); st.FramesIn != 1 || st.FramesOut != 1 {
				t.Fatalf("client stats: %+v", st)
			}
		})
	}
}

func TestUDPManyFramesBatched(t *testing.T) {
	ep, cl := udpPair(t, UDPOptions{})
	const n = 500
	send := func(i int) {
		cl.SendInterest(&ndn.Interest{ //nolint:errcheck
			Name:  names.MustParse("/prov0/obj/c0"),
			Kind:  ndn.KindContent,
			Nonce: uint64(i),
		})
	}
	// First datagram creates the face; drain concurrently with the flood
	// so the bounded receive queue is an overload valve, not a cliff.
	send(0)
	srv := acceptOne(t, ep)
	srv.SetIdleTimeout(time.Second)
	go func() {
		for i := 1; i < n; i++ {
			send(i)
		}
	}()
	seen := make(map[uint64]bool)
	for len(seen) < n {
		pkt, err := srv.Receive()
		if err != nil {
			// Loopback UDP can still shed under burst; require most through.
			break
		}
		if pkt.Interest != nil {
			seen[pkt.Interest.Nonce] = true
		}
	}
	if len(seen) < n*9/10 {
		t.Fatalf("delivered %d/%d frames", len(seen), n)
	}
}

func TestUDPIdleReapAndRebind(t *testing.T) {
	ep, cl := udpPair(t, UDPOptions{})
	if err := cl.SendInterest(&ndn.Interest{Name: names.MustParse("/p/a"), Kind: ndn.KindContent, Nonce: 1}); err != nil {
		t.Fatal(err)
	}
	srv := acceptOne(t, ep)
	srv.SetIdleTimeout(80 * time.Millisecond)
	if _, err := srv.Receive(); err != nil {
		t.Fatal(err)
	}
	// No more traffic: the face idles out, its owner closes it, and the
	// endpoint forgets the 5-tuple.
	if _, err := srv.Receive(); !errors.Is(err, ErrIdleTimeout) {
		t.Fatalf("expected idle timeout, got %v", err)
	}
	srv.Close()
	if n := ep.Faces(); n != 0 {
		t.Fatalf("faces after reap: %d", n)
	}
	// The same remote 5-tuple speaks again — a NAT rebinding to the same
	// mapping, or simply a quiet client returning: it must surface as a
	// fresh face, not resurrect the closed one.
	if err := cl.SendInterest(&ndn.Interest{Name: names.MustParse("/p/b"), Kind: ndn.KindContent, Nonce: 2}); err != nil {
		t.Fatal(err)
	}
	srv2 := acceptOne(t, ep)
	if srv2 == srv {
		t.Fatal("closed face resurrected")
	}
	pkt, err := srv2.Receive()
	if err != nil || pkt.Interest == nil || pkt.Interest.Nonce != 2 {
		t.Fatalf("fresh face receive: %+v err=%v", pkt, err)
	}
	// The old face stays dead.
	if _, err := srv.Receive(); err == nil {
		t.Fatal("closed face still receiving")
	}
}

func TestUDPFaceKeyCollisionAfterPortRebind(t *testing.T) {
	ep, err := ListenUDP("127.0.0.1:0", UDPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	// Two dials from distinct ephemeral ports model a NAT rebinding a
	// client to a new source port: two distinct 5-tuples, two faces.
	cl1, err := DialUDP(ep.Addr().String(), UDPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl1.Close()
	cl2, err := DialUDP(ep.Addr().String(), UDPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	cl1.SendInterest(&ndn.Interest{Name: names.MustParse("/p/a"), Kind: ndn.KindContent, Nonce: 11}) //nolint:errcheck
	f1 := acceptOne(t, ep)
	cl2.SendInterest(&ndn.Interest{Name: names.MustParse("/p/a"), Kind: ndn.KindContent, Nonce: 22}) //nolint:errcheck
	f2 := acceptOne(t, ep)
	if f1 == f2 {
		t.Fatal("two remotes mapped to one face")
	}
	if ep.Faces() != 2 {
		t.Fatalf("faces=%d, want 2", ep.Faces())
	}
	p1, err := f1.Receive()
	if err != nil || p1.Interest.Nonce != 11 {
		t.Fatalf("face1: %+v err=%v", p1, err)
	}
	p2, err := f2.Receive()
	if err != nil || p2.Interest.Nonce != 22 {
		t.Fatalf("face2: %+v err=%v", p2, err)
	}
}

func TestUDPKeepaliveOverDatagrams(t *testing.T) {
	ep, cl := udpPair(t, UDPOptions{})
	cl.StartKeepalive(30 * time.Millisecond)
	srv := acceptOne(t, ep)
	srv.SetIdleTimeout(200 * time.Millisecond)
	// Only keepalives flow for ~0.5s: Receive must neither surface them
	// nor idle out, because each datagram refreshes liveness.
	done := make(chan error, 1)
	go func() {
		_, err := srv.Receive()
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("receive returned during keepalive-only traffic: %v", err)
	case <-time.After(500 * time.Millisecond):
	}
	if st := srv.Stats(); st.KeepalivesIn < 5 {
		t.Fatalf("keepalives in: %d", st.KeepalivesIn)
	}
	// Stop the keepalives; the idle timeout now fires.
	cl.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrIdleTimeout) {
			t.Fatalf("expected idle timeout, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("idle timeout never fired")
	}
}

func TestUDPReassemblyTimeoutEvictionOnFace(t *testing.T) {
	ep, cl := udpPair(t, UDPOptions{ReassemblyTimeout: 60 * time.Millisecond})
	// Hand-feed fragment datagrams through the raw socket path by using
	// SendFrame on crafted frag TLVs: first half of packet 1, then after
	// the timeout the other half — which must NOT complete it — then a
	// whole packet 2 which must arrive.
	frag := func(id uint64, idx, cnt uint16, payload []byte) []byte {
		body := mkFragBody(id, idx, cnt, payload)
		dg := append([]byte{typeFrag}, appendTLVLen(nil, len(body))...)
		return append(dg, body...)
	}
	full := func(nonce uint64) []byte {
		buf, err := ndn.AppendInterest(nil, &ndn.Interest{Name: names.MustParse("/p/x"), Kind: ndn.KindContent, Nonce: nonce})
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	// The reassembler stamps fragments when the face processes them, not
	// when they hit the socket — so chase the first half with a whole
	// Interest and receive it, forcing the half through the reassembler
	// before the clock starts.
	if err := cl.SendFrame(frag(1, 0, 2, []byte("half"))); err != nil {
		t.Fatal(err)
	}
	cl.SendFrame(full(8)) //nolint:errcheck
	srv := acceptOne(t, ep)
	srv.SetIdleTimeout(2 * time.Second)
	if pkt, err := srv.Receive(); err != nil || pkt.Interest == nil || pkt.Interest.Nonce != 8 {
		t.Fatalf("marker interest: %+v err=%v", pkt, err)
	}
	time.Sleep(120 * time.Millisecond) // past the reassembly timeout
	cl.SendFrame(frag(1, 1, 2, []byte("late"))) //nolint:errcheck
	cl.SendFrame(full(9))                       //nolint:errcheck
	pkt, err := srv.Receive()
	if err != nil {
		t.Fatal(err)
	}
	// The only packet that may surface is the second whole Interest: the
	// stitched halves of packet 1 would decode to garbage (and error),
	// and an evicted packet must never complete.
	if pkt.Interest == nil || pkt.Interest.Nonce != 9 {
		t.Fatalf("unexpected packet: %+v", pkt)
	}
	df := srv.(*DatagramFace)
	if df.asm.evicted != 1 {
		t.Fatalf("evicted=%d, want 1", df.asm.evicted)
	}
}

func TestUDPCraftedEmptyFragmentDoesNotPanic(t *testing.T) {
	// The remote-crash repro from review: a fragment datagram announcing
	// count=1 with an empty payload used to reassemble into a non-nil
	// zero-length frame, and process() indexing frame[0] panicked the
	// receive goroutine — one ~14-byte datagram killed the process. It
	// must now be counted as a malformed fragment and skipped.
	ep, cl := udpPair(t, UDPOptions{})
	crafted := mkFragBody(3, 0, 1, nil)
	dg := append([]byte{typeFrag}, appendTLVLen(nil, len(crafted))...)
	dg = append(dg, crafted...)
	if err := cl.SendFrame(dg); err != nil {
		t.Fatal(err)
	}
	// Chase it with an honest Interest: Receive must skip the crafted
	// datagram and surface the Interest, proving the loop survived.
	if err := cl.SendInterest(&ndn.Interest{Name: names.MustParse("/p/a"), Kind: ndn.KindContent, Nonce: 77}); err != nil {
		t.Fatal(err)
	}
	srv := acceptOne(t, ep)
	srv.SetIdleTimeout(2 * time.Second)
	pkt, err := srv.Receive()
	if err != nil || pkt.Interest == nil || pkt.Interest.Nonce != 77 {
		t.Fatalf("receive after crafted fragment: %+v err=%v", pkt, err)
	}
	if st := srv.Stats(); st.Errors != 1 {
		t.Fatalf("errors=%d, want 1 (the crafted fragment)", st.Errors)
	}
}

func TestUDPAcceptBacklogShedsInsteadOfBlocking(t *testing.T) {
	// With nobody calling Accept, new remotes past the backlog (64) used
	// to block the endpoint's single read loop, stalling receive for
	// every existing face. They must be shed instead.
	ep, err := ListenUDP("127.0.0.1:0", UDPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	first, err := DialUDP(ep.Addr().String(), UDPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if err := first.SendInterest(&ndn.Interest{Name: names.MustParse("/p/a"), Kind: ndn.KindContent, Nonce: 1}); err != nil {
		t.Fatal(err)
	}
	// Wait until first's face has registered (head of the accept queue)
	// before flooding: if the initial datagram is lost under load, the
	// flood would fill the backlog and shed first itself, and the face
	// accepted below would be a keepalive-only flood face.
	for deadline := time.Now().Add(2 * time.Second); ep.Faces() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("first face never registered")
		}
		first.SendInterest(&ndn.Interest{Name: names.MustParse("/p/a"), Kind: ndn.KindContent, Nonce: 1}) //nolint:errcheck
		time.Sleep(5 * time.Millisecond)
	}
	// Flood from fresh 5-tuples until the backlog overflows and sheds.
	// A shed remote's face unregisters, so resending from the same
	// client re-trips the full queue — retry loops absorb UDP loss.
	var extras []*DatagramFace
	defer func() {
		for _, c := range extras {
			c.Close()
		}
	}()
	for i := 0; i < 70; i++ {
		c, err := DialUDP(ep.Addr().String(), UDPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		extras = append(extras, c)
	}
	deadline := time.Now().Add(5 * time.Second)
	for ep.RxDrops() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("accept backlog never shed (drops=%d faces=%d)", ep.RxDrops(), ep.Faces())
		}
		for _, c := range extras {
			c.SendKeepalive() //nolint:errcheck
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The read loop must still be live: traffic for the first face (the
	// head of the accept queue) still flows.
	if err := first.SendInterest(&ndn.Interest{Name: names.MustParse("/p/a"), Kind: ndn.KindContent, Nonce: 2}); err != nil {
		t.Fatal(err)
	}
	srv := acceptOne(t, ep)
	srv.SetIdleTimeout(2 * time.Second)
	seen := make(map[uint64]bool)
	for !seen[2] {
		pkt, err := srv.Receive()
		if err != nil {
			t.Fatalf("read loop stalled: %v (seen=%v)", err, seen)
		}
		if pkt.Interest != nil {
			seen[pkt.Interest.Nonce] = true
		}
	}
}

func TestUDPOversizeDatagramCountedEndpoint(t *testing.T) {
	// A peer with a larger MTU sends datagrams past our buffer: the
	// kernel truncates them, and they must be counted as oversize drops
	// — not parsed as garbage and misreported as framing errors.
	ep, err := ListenUDP("127.0.0.1:0", UDPOptions{DisableBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	cl, err := net.Dial("udp", ep.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Default MTU 1400 → 2048-byte budget (+1 headroom): 3000 bytes gets
	// truncated. Resend until counted (loopback UDP may shed).
	big := bytes.Repeat([]byte{0x5A}, 3000)
	deadline := time.Now().Add(5 * time.Second)
	for ep.RxOversize() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("oversized datagram never counted")
		}
		if _, err := cl.Write(big); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Oversized datagrams are dropped before demux: no face was created.
	if n := ep.Faces(); n != 0 {
		t.Fatalf("oversized datagram created a face (faces=%d)", n)
	}
}

func TestUDPOversizeDatagramCountedConnMode(t *testing.T) {
	pc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	f := NewDatagramConn(pc, UDPOptions{})
	defer f.Close()
	cl, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Write(bytes.Repeat([]byte{0x5A}, 3000)); err != nil {
		t.Fatal(err)
	}
	frame, err := ndn.AppendInterest(nil, &ndn.Interest{Name: names.MustParse("/p/a"), Kind: ndn.KindContent, Nonce: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.SetIdleTimeout(2 * time.Second)
	pkt, err := f.Receive()
	if err != nil || pkt.Interest == nil || pkt.Interest.Nonce != 9 {
		t.Fatalf("receive after oversized datagram: %+v err=%v", pkt, err)
	}
	if n := f.Oversize(); n != 1 {
		t.Fatalf("oversize=%d, want 1", n)
	}
	if st := f.Stats(); st.Errors != 0 {
		t.Fatalf("oversized datagram misreported as %d generic errors", st.Errors)
	}
}

func TestUDPDialClosesWholeEndpoint(t *testing.T) {
	ep, cl := udpPair(t, UDPOptions{})
	_ = ep
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.SendKeepalive(); err == nil {
		t.Fatal("send after close succeeded")
	}
}
