package transport

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/ndn"
)

// udpPair builds a listener endpoint and one dialed face pointed at it.
func udpPair(t *testing.T, opts UDPOptions) (*UDPEndpoint, *DatagramFace) {
	t.Helper()
	ep, err := ListenUDP("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	cl, err := DialUDP(ep.Addr().String(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return ep, cl
}

// acceptOne pulls the next face off the endpoint with a timeout.
func acceptOne(t *testing.T, ep *UDPEndpoint) Face {
	t.Helper()
	type res struct {
		f   Face
		err error
	}
	ch := make(chan res, 1)
	go func() {
		f, err := ep.Accept()
		ch <- res{f, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatal(r.err)
		}
		return r.f
	case <-time.After(5 * time.Second):
		t.Fatal("accept timed out")
		return nil
	}
}

func testData(payload []byte) *ndn.Data {
	name := names.MustParse("/prov0/obj/c0")
	return &ndn.Data{
		Name: name,
		Content: &core.Content{
			Meta:      core.ContentMeta{Name: name, Level: 1, ProviderKey: names.MustParse("/prov0/KEY/1")},
			Payload:   payload,
			Signature: []byte("sig"),
		},
	}
}

func TestUDPRoundTripBothDirections(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts UDPOptions
	}{
		{"batched", UDPOptions{}},
		{"single", UDPOptions{DisableBatch: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ep, cl := udpPair(t, tc.opts)
			want := &ndn.Interest{Name: names.MustParse("/prov0/obj/c0"), Kind: ndn.KindContent, Nonce: 7}
			if err := cl.SendInterest(want); err != nil {
				t.Fatal(err)
			}
			srv := acceptOne(t, ep)
			pkt, err := srv.Receive()
			if err != nil {
				t.Fatal(err)
			}
			if pkt.Interest == nil || !pkt.Interest.Name.Equal(want.Name) || pkt.Interest.Nonce != 7 {
				t.Fatalf("bad interest: %+v", pkt)
			}
			// Reply with a Data big enough to fragment (~3 fragments).
			payload := bytes.Repeat([]byte{0xC7}, 3500)
			if err := srv.SendData(testData(payload)); err != nil {
				t.Fatal(err)
			}
			pkt, err = cl.Receive()
			if err != nil {
				t.Fatal(err)
			}
			if pkt.Data == nil || !bytes.Equal(pkt.Data.Content.Payload, payload) {
				t.Fatal("fragmented data did not round trip")
			}
			if st := cl.Stats(); st.FramesIn != 1 || st.FramesOut != 1 {
				t.Fatalf("client stats: %+v", st)
			}
		})
	}
}

func TestUDPManyFramesBatched(t *testing.T) {
	ep, cl := udpPair(t, UDPOptions{})
	const n = 500
	send := func(i int) {
		cl.SendInterest(&ndn.Interest{ //nolint:errcheck
			Name:  names.MustParse("/prov0/obj/c0"),
			Kind:  ndn.KindContent,
			Nonce: uint64(i),
		})
	}
	// First datagram creates the face; drain concurrently with the flood
	// so the bounded receive queue is an overload valve, not a cliff.
	send(0)
	srv := acceptOne(t, ep)
	srv.SetIdleTimeout(time.Second)
	go func() {
		for i := 1; i < n; i++ {
			send(i)
		}
	}()
	seen := make(map[uint64]bool)
	for len(seen) < n {
		pkt, err := srv.Receive()
		if err != nil {
			// Loopback UDP can still shed under burst; require most through.
			break
		}
		if pkt.Interest != nil {
			seen[pkt.Interest.Nonce] = true
		}
	}
	if len(seen) < n*9/10 {
		t.Fatalf("delivered %d/%d frames", len(seen), n)
	}
}

func TestUDPIdleReapAndRebind(t *testing.T) {
	ep, cl := udpPair(t, UDPOptions{})
	if err := cl.SendInterest(&ndn.Interest{Name: names.MustParse("/p/a"), Kind: ndn.KindContent, Nonce: 1}); err != nil {
		t.Fatal(err)
	}
	srv := acceptOne(t, ep)
	srv.SetIdleTimeout(80 * time.Millisecond)
	if _, err := srv.Receive(); err != nil {
		t.Fatal(err)
	}
	// No more traffic: the face idles out, its owner closes it, and the
	// endpoint forgets the 5-tuple.
	if _, err := srv.Receive(); !errors.Is(err, ErrIdleTimeout) {
		t.Fatalf("expected idle timeout, got %v", err)
	}
	srv.Close()
	if n := ep.Faces(); n != 0 {
		t.Fatalf("faces after reap: %d", n)
	}
	// The same remote 5-tuple speaks again — a NAT rebinding to the same
	// mapping, or simply a quiet client returning: it must surface as a
	// fresh face, not resurrect the closed one.
	if err := cl.SendInterest(&ndn.Interest{Name: names.MustParse("/p/b"), Kind: ndn.KindContent, Nonce: 2}); err != nil {
		t.Fatal(err)
	}
	srv2 := acceptOne(t, ep)
	if srv2 == srv {
		t.Fatal("closed face resurrected")
	}
	pkt, err := srv2.Receive()
	if err != nil || pkt.Interest == nil || pkt.Interest.Nonce != 2 {
		t.Fatalf("fresh face receive: %+v err=%v", pkt, err)
	}
	// The old face stays dead.
	if _, err := srv.Receive(); err == nil {
		t.Fatal("closed face still receiving")
	}
}

func TestUDPFaceKeyCollisionAfterPortRebind(t *testing.T) {
	ep, err := ListenUDP("127.0.0.1:0", UDPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	// Two dials from distinct ephemeral ports model a NAT rebinding a
	// client to a new source port: two distinct 5-tuples, two faces.
	cl1, err := DialUDP(ep.Addr().String(), UDPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl1.Close()
	cl2, err := DialUDP(ep.Addr().String(), UDPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	cl1.SendInterest(&ndn.Interest{Name: names.MustParse("/p/a"), Kind: ndn.KindContent, Nonce: 11}) //nolint:errcheck
	f1 := acceptOne(t, ep)
	cl2.SendInterest(&ndn.Interest{Name: names.MustParse("/p/a"), Kind: ndn.KindContent, Nonce: 22}) //nolint:errcheck
	f2 := acceptOne(t, ep)
	if f1 == f2 {
		t.Fatal("two remotes mapped to one face")
	}
	if ep.Faces() != 2 {
		t.Fatalf("faces=%d, want 2", ep.Faces())
	}
	p1, err := f1.Receive()
	if err != nil || p1.Interest.Nonce != 11 {
		t.Fatalf("face1: %+v err=%v", p1, err)
	}
	p2, err := f2.Receive()
	if err != nil || p2.Interest.Nonce != 22 {
		t.Fatalf("face2: %+v err=%v", p2, err)
	}
}

func TestUDPKeepaliveOverDatagrams(t *testing.T) {
	ep, cl := udpPair(t, UDPOptions{})
	cl.StartKeepalive(30 * time.Millisecond)
	srv := acceptOne(t, ep)
	srv.SetIdleTimeout(200 * time.Millisecond)
	// Only keepalives flow for ~0.5s: Receive must neither surface them
	// nor idle out, because each datagram refreshes liveness.
	done := make(chan error, 1)
	go func() {
		_, err := srv.Receive()
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("receive returned during keepalive-only traffic: %v", err)
	case <-time.After(500 * time.Millisecond):
	}
	if st := srv.Stats(); st.KeepalivesIn < 5 {
		t.Fatalf("keepalives in: %d", st.KeepalivesIn)
	}
	// Stop the keepalives; the idle timeout now fires.
	cl.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrIdleTimeout) {
			t.Fatalf("expected idle timeout, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("idle timeout never fired")
	}
}

func TestUDPReassemblyTimeoutEvictionOnFace(t *testing.T) {
	ep, cl := udpPair(t, UDPOptions{ReassemblyTimeout: 60 * time.Millisecond})
	// Hand-feed fragment datagrams through the raw socket path by using
	// SendFrame on crafted frag TLVs: first half of packet 1, then after
	// the timeout the other half — which must NOT complete it — then a
	// whole packet 2 which must arrive.
	frag := func(id uint64, idx, cnt uint16, payload []byte) []byte {
		body := mkFragBody(id, idx, cnt, payload)
		dg := append([]byte{typeFrag}, appendTLVLen(nil, len(body))...)
		return append(dg, body...)
	}
	full := func(nonce uint64) []byte {
		buf, err := ndn.AppendInterest(nil, &ndn.Interest{Name: names.MustParse("/p/x"), Kind: ndn.KindContent, Nonce: nonce})
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	// The reassembler stamps fragments when the face processes them, not
	// when they hit the socket — so chase the first half with a whole
	// Interest and receive it, forcing the half through the reassembler
	// before the clock starts.
	if err := cl.SendFrame(frag(1, 0, 2, []byte("half"))); err != nil {
		t.Fatal(err)
	}
	cl.SendFrame(full(8)) //nolint:errcheck
	srv := acceptOne(t, ep)
	srv.SetIdleTimeout(2 * time.Second)
	if pkt, err := srv.Receive(); err != nil || pkt.Interest == nil || pkt.Interest.Nonce != 8 {
		t.Fatalf("marker interest: %+v err=%v", pkt, err)
	}
	time.Sleep(120 * time.Millisecond) // past the reassembly timeout
	cl.SendFrame(frag(1, 1, 2, []byte("late"))) //nolint:errcheck
	cl.SendFrame(full(9))                       //nolint:errcheck
	pkt, err := srv.Receive()
	if err != nil {
		t.Fatal(err)
	}
	// The only packet that may surface is the second whole Interest: the
	// stitched halves of packet 1 would decode to garbage (and error),
	// and an evicted packet must never complete.
	if pkt.Interest == nil || pkt.Interest.Nonce != 9 {
		t.Fatalf("unexpected packet: %+v", pkt)
	}
	df := srv.(*DatagramFace)
	if df.asm.evicted != 1 {
		t.Fatalf("evicted=%d, want 1", df.asm.evicted)
	}
}

func TestUDPDialClosesWholeEndpoint(t *testing.T) {
	ep, cl := udpPair(t, UDPOptions{})
	_ = ep
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.SendKeepalive(); err == nil {
		t.Fatal("send after close succeeded")
	}
}
