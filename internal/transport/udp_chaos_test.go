package transport_test

// Conn-mode datagram faces under chaos live in an external test package
// because chaos itself imports transport (for scheme-aware dialing).

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/ndn"
	"github.com/tactic-icn/tactic/internal/transport"
	"github.com/tactic-icn/tactic/internal/transport/chaos"
)

// udpConnPair returns two mutually connected datagram sockets: bind
// two ephemeral ports, note the addresses, then re-dial each toward
// the other (the brief close/rebind race is negligible on loopback).
func udpConnPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	a, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	aAddr := a.LocalAddr().(*net.UDPAddr)
	bAddr := b.LocalAddr().(*net.UDPAddr)
	a.Close()
	b.Close()
	ca, err := net.DialUDP("udp4", aAddr, bAddr)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := net.DialUDP("udp4", bAddr, aAddr)
	if err != nil {
		ca.Close()
		t.Fatal(err)
	}
	return ca, cb
}

func chaosTestData(payload []byte) *ndn.Data {
	name := names.MustParse("/prov0/obj/c0")
	return &ndn.Data{
		Name: name,
		Content: &core.Content{
			Meta:      core.ContentMeta{Name: name, Level: 1, ProviderKey: names.MustParse("/prov0/KEY/1")},
			Payload:   payload,
			Signature: []byte("sig"),
		},
	}
}

func TestUDPConnModeChaosReorderReassembles(t *testing.T) {
	ca, cb := udpConnPair(t)
	// Sender writes through a reordering chaos conn: every fragment may
	// be displaced by up to 4 later datagrams. No drops — reordering
	// alone must never lose a frame, because reassembly is index-based.
	sender := transport.NewDatagramConn(chaos.Wrap(ca, chaos.Config{Seed: 99, Reorder: 0.4, MaxReorderDepth: 4}), transport.UDPOptions{})
	receiver := transport.NewDatagramConn(cb, transport.UDPOptions{})
	defer sender.Close()
	defer receiver.Close()

	const n = 40
	payload := bytes.Repeat([]byte{0x5A}, 3000) // 3 fragments per Data
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := sender.SendData(chaosTestData(payload)); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
		// Trailing keepalives flush any held-back reordered fragments.
		for i := 0; i < 8; i++ {
			sender.SendKeepalive() //nolint:errcheck
		}
	}()
	receiver.SetIdleTimeout(time.Second)
	got := 0
	for got < n {
		pkt, err := receiver.Receive()
		if err != nil {
			t.Fatalf("after %d frames: %v", got, err)
		}
		if pkt.Data == nil || !bytes.Equal(pkt.Data.Content.Payload, payload) {
			t.Fatalf("frame %d corrupted", got)
		}
		got++
	}
	wg.Wait()
	cs := sender.Stats()
	if cs.FramesOut != n+8 {
		t.Fatalf("frames out: %d", cs.FramesOut)
	}
}
