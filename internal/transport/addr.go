package transport

import (
	"net"
	"strings"
)

// SplitScheme splits a scheme-prefixed face address ("udp://host:port",
// "tcp://host:port", "unix:///path") into its network and bare address.
// A bare address with no scheme is TCP, the historical default.
func SplitScheme(spec string) (network, addr string) {
	for _, s := range [...]struct{ prefix, network string }{
		{"udp://", "udp"},
		{"tcp://", "tcp"},
		{"unix://", "unix"},
	} {
		if strings.HasPrefix(spec, s.prefix) {
			return s.network, spec[len(s.prefix):]
		}
	}
	return "tcp", spec
}

// FaceListener accepts wire faces: stream listeners yield one framed
// Conn per accepted connection, a UDPEndpoint yields one DatagramFace
// per new remote 5-tuple.
type FaceListener interface {
	// Accept blocks for the next face. After Close it returns an error
	// wrapping net.ErrClosed.
	Accept() (Face, error)
	// Close stops accepting and releases the listener.
	Close() error
	// Addr returns the bound local address.
	Addr() net.Addr
}

// streamListener adapts a net.Listener into a FaceListener by framing
// every accepted connection.
type streamListener struct{ net.Listener }

func (l streamListener) Accept() (Face, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return New(c), nil
}

// ListenFace listens on a scheme-prefixed address and returns a face
// listener: "udp://" binds a datagram endpoint (udp controls its
// fragmentation and batching), anything else a stream listener.
func ListenFace(spec string, udp UDPOptions) (FaceListener, error) {
	network, addr := SplitScheme(spec)
	if network == "udp" {
		return ListenUDP(addr, udp)
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return streamListener{ln}, nil
}

// DialFace dials a scheme-prefixed address and returns a connected
// face: "udp://" yields a batched datagram face, anything else a
// framed stream Conn.
func DialFace(spec string, udp UDPOptions) (Face, error) {
	network, addr := SplitScheme(spec)
	if network == "udp" {
		return DialUDP(addr, udp)
	}
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return New(c), nil
}
