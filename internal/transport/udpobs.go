// Registry exposition for the UDP datagram plane: the endpoint-level
// counters PR'd in as plain atomics (rx drops, oversize, fragment and
// reassembly totals, GSO fallbacks) become tactic_udp_* families here.
// Endpoint-wide series carry scope="endpoint" so they stay disjoint
// from the per-face series a Metrics factory attaches — summing a
// family never double-counts.
package transport

import "github.com/tactic-icn/tactic/internal/obs"

// Metric family names for the UDP datagram plane.
const (
	// MetricUDPRxDrops counts datagrams dropped on full per-face receive
	// queues or new remotes shed on a full accept backlog.
	MetricUDPRxDrops = "tactic_udp_rx_drops_total"
	// MetricUDPRxOversize counts datagrams truncated by the socket
	// because they exceeded the receive buffer (MTU mismatch).
	MetricUDPRxOversize = "tactic_udp_rx_oversize_total"
	// MetricUDPFragments counts fragment datagrams, labelled dir="in"/"out".
	MetricUDPFragments = "tactic_udp_fragments_total"
	// MetricUDPReassembled counts frames completed from fragments.
	MetricUDPReassembled = "tactic_udp_reassembled_total"
	// MetricUDPReassemblyEvictions counts partial packets evicted before
	// completing — the health engine's fragment-flood signal.
	MetricUDPReassemblyEvictions = obs.FamilyReassemblyEvictions
	// MetricUDPGSOFallbacks counts runtime GSO disable transitions (the
	// kernel rejected a segmented send).
	MetricUDPGSOFallbacks = "tactic_udp_gso_fallbacks_total"
	// MetricUDPFaces gauges live demuxed faces on the endpoint.
	MetricUDPFaces = "tactic_udp_faces"
	// MetricUDPBatchEnabled / MetricUDPGSOEnabled / MetricUDPGROEnabled
	// gauge (0/1) the batched-syscall and offload state probed at socket
	// setup; GSO reads 0 again after a runtime fallback.
	MetricUDPBatchEnabled = "tactic_udp_batch_enabled"
	MetricUDPGSOEnabled   = "tactic_udp_gso_enabled"
	MetricUDPGROEnabled   = "tactic_udp_gro_enabled"
)

// boolGauge renders a bool as 0/1.
func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Instrument registers the endpoint's datagram-plane counters with reg
// under the tactic_udp_* families, labelled with labels plus
// scope="endpoint" (per-face series from a metrics factory use face
// labels instead, keeping family sums double-count-free). Call once per
// endpoint; reg may be nil.
func (ep *UDPEndpoint) Instrument(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	reg.Help(MetricUDPRxDrops, "UDP datagrams dropped on full receive queues or accept backlog.")
	reg.Help(MetricUDPRxOversize, "UDP datagrams truncated and dropped for exceeding the receive buffer (MTU mismatch).")
	reg.Help(MetricUDPFragments, "Fragment datagrams moved, by direction.")
	reg.Help(MetricUDPReassembled, "Frames completed from fragment reassembly.")
	reg.Help(MetricUDPReassemblyEvictions, "Partial packets evicted before reassembly completed (timeout or slot pressure).")
	reg.Help(MetricUDPGSOFallbacks, "Runtime UDP GSO disable transitions after a kernel rejection.")
	reg.Help(MetricUDPFaces, "Live demultiplexed faces on the UDP endpoint.")
	reg.Help(MetricUDPBatchEnabled, "Whether batched UDP syscalls (recvmmsg/sendmmsg) are active (0/1).")
	reg.Help(MetricUDPGSOEnabled, "Whether UDP generic segmentation offload is active (0/1; drops to 0 after a runtime fallback).")
	reg.Help(MetricUDPGROEnabled, "Whether UDP generic receive offload is active (0/1).")

	scoped := append(append([]obs.Label(nil), labels...), obs.L("scope", "endpoint"))
	cf := func(name string, fn func() float64, extra ...obs.Label) {
		reg.CounterFunc(name, fn, append(append([]obs.Label(nil), scoped...), extra...)...)
	}
	cf(MetricUDPRxDrops, func() float64 { return float64(ep.RxDrops()) })
	cf(MetricUDPRxOversize, func() float64 { return float64(ep.RxOversize()) })
	cf(MetricUDPFragments, func() float64 { return float64(ep.fragsIn.Load()) }, obs.L("dir", "in"))
	cf(MetricUDPFragments, func() float64 { return float64(ep.fragsOut.Load()) }, obs.L("dir", "out"))
	cf(MetricUDPReassembled, func() float64 { return float64(ep.reassembled.Load()) })
	cf(MetricUDPReassemblyEvictions, func() float64 { return float64(ep.reasmEvicted.Load()) })
	cf(MetricUDPGSOFallbacks, func() float64 {
		_, _, fb := ep.bio.stats()
		return float64(fb)
	})
	reg.GaugeFunc(MetricUDPFaces, func() float64 { return float64(ep.Faces()) }, scoped...)
	reg.GaugeFunc(MetricUDPBatchEnabled, func() float64 { return boolGauge(ep.bio != nil) }, scoped...)
	reg.GaugeFunc(MetricUDPGSOEnabled, func() float64 {
		gsoProbed, _, fb := ep.bio.stats()
		return boolGauge(gsoProbed && fb == 0)
	}, scoped...)
	reg.GaugeFunc(MetricUDPGROEnabled, func() float64 {
		_, gro, _ := ep.bio.stats()
		return boolGauge(gro)
	}, scoped...)
}
