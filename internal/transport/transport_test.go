package transport

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"testing"
	"testing/quick"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/ndn"
	"github.com/tactic-icn/tactic/internal/pki"
)

// pipePair builds two framed connections over net.Pipe.
func pipePair() (*Conn, *Conn) {
	a, b := net.Pipe()
	return New(a), New(b)
}

func testTag(t *testing.T) *core.Tag {
	t.Helper()
	signer, err := pki.GenerateFast(rand.New(rand.NewSource(1)), names.MustParse("/prov0/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	tag, err := core.IssueTag(signer, names.MustParse("/u/alice/KEY/1"), 3, 7, time.Unix(1<<31, 0))
	if err != nil {
		t.Fatal(err)
	}
	return tag
}

func TestInterestRoundTripOverPipe(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()

	tag := testTag(t)
	want := &ndn.Interest{
		Name:       names.MustParse("/prov0/obj/c0"),
		Kind:       ndn.KindContent,
		Nonce:      42,
		Tag:        tag,
		Flag:       0.125,
		AccessPath: 9,
	}
	errc := make(chan error, 1)
	go func() { errc <- a.SendInterest(want) }()
	pkt, err := b.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if pkt.Interest == nil || pkt.Data != nil {
		t.Fatal("wrong packet kind")
	}
	got := pkt.Interest
	if !got.Name.Equal(want.Name) || got.Nonce != want.Nonce || got.Flag != want.Flag ||
		got.AccessPath != want.AccessPath || got.Tag == nil {
		t.Errorf("interest mismatch: %+v", got)
	}
}

func TestDataRoundTripOverPipe(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()

	want := &ndn.Data{
		Name: names.MustParse("/prov0/obj/c0"),
		Content: &core.Content{
			Meta:      core.ContentMeta{Name: names.MustParse("/prov0/obj/c0"), Level: 2, ProviderKey: names.MustParse("/prov0/KEY/1")},
			Payload:   []byte("the payload"),
			Signature: []byte{1, 2, 3},
		},
		Nack: true,
	}
	errc := make(chan error, 1)
	go func() { errc <- a.SendData(want) }()
	pkt, err := b.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if pkt.Data == nil {
		t.Fatal("wrong packet kind")
	}
	if !pkt.Data.Nack || string(pkt.Data.Content.Payload) != "the payload" {
		t.Errorf("data mismatch: %+v", pkt.Data)
	}
}

func TestManyPacketsOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const n = 200
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		c := New(conn)
		defer c.Close()
		for i := 0; i < n; i++ {
			pkt, err := c.Receive()
			if err != nil {
				done <- err
				return
			}
			if pkt.Interest == nil || pkt.Interest.Nonce != uint64(i) {
				done <- errors.New("out-of-order or corrupt packet")
				return
			}
		}
		done <- nil
	}()

	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := New(raw)
	defer c.Close()
	for i := 0; i < n; i++ {
		if err := c.SendInterest(&ndn.Interest{
			Name:  names.MustParse("/prov0/obj").MustAppend("c" + string(rune('0'+i%10))),
			Kind:  ndn.KindContent,
			Nonce: uint64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestCleanCloseYieldsEOF(t *testing.T) {
	a, b := pipePair()
	go a.Close()
	if _, err := b.Receive(); !errors.Is(err, io.EOF) {
		t.Errorf("close err = %v, want EOF", err)
	}
	b.Close()
}

func TestTruncatedFrame(t *testing.T) {
	a, b := net.Pipe()
	conn := New(b)
	go func() {
		// Announce a 100-byte Interest but deliver 3 bytes.
		a.Write([]byte{0x05, 100, 1, 2, 3})
		a.Close()
	}()
	if _, err := conn.Receive(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncation err = %v, want ErrUnexpectedEOF", err)
	}
	conn.Close()
}

func TestOversizePacketRejected(t *testing.T) {
	a, b := net.Pipe()
	conn := New(b)
	go func() {
		// 254-prefixed 32-bit length far above the cap.
		a.Write([]byte{0x06, 254, 0xFF, 0xFF, 0xFF, 0xFF})
		a.Close()
	}()
	if _, err := conn.Receive(); !errors.Is(err, ErrPacketTooLarge) {
		t.Errorf("oversize err = %v", err)
	}
	conn.Close()
}

func TestUnknownPacketType(t *testing.T) {
	a, b := net.Pipe()
	conn := New(b)
	go func() {
		a.Write([]byte{0x42, 1, 0})
		a.Close()
	}()
	if _, err := conn.Receive(); !errors.Is(err, ErrBadPacketType) {
		t.Errorf("unknown type err = %v", err)
	}
	conn.Close()
}

func TestConcurrentWriters(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()

	const writers, per = 4, 25
	errc := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func() {
			for i := 0; i < per; i++ {
				if err := a.SendInterest(&ndn.Interest{
					Name:  names.MustParse("/x/y"),
					Kind:  ndn.KindContent,
					Nonce: uint64(i),
				}); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}()
	}
	got := 0
	for got < writers*per {
		pkt, err := b.Receive()
		if err != nil {
			t.Fatal(err)
		}
		if pkt.Interest == nil {
			t.Fatal("frame interleaving corrupted a packet")
		}
		got++
	}
	for w := 0; w < writers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

func TestPropertyReceiveNeverPanicsOnGarbage(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		a, b := net.Pipe()
		conn := New(b)
		go func() {
			a.Write(data)
			a.Close()
		}()
		for {
			if _, err := conn.Receive(); err != nil {
				break
			}
		}
		conn.Close()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWriteTimeoutWedgedPeer(t *testing.T) {
	a, b := net.Pipe() // unbuffered: a write blocks until b reads
	conn := New(a)
	defer conn.Close()
	defer b.Close()
	conn.SetWriteTimeout(50 * time.Millisecond)

	start := time.Now()
	err := conn.SendInterest(&ndn.Interest{Name: names.MustParse("/x/y"), Kind: ndn.KindContent, Nonce: 1})
	if err == nil {
		t.Fatal("write to a wedged peer succeeded")
	}
	if !IsFatal(err) {
		t.Errorf("wedged-peer error not fatal: %v", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("err = %v, want a net timeout", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Errorf("write blocked %s despite 50ms deadline", waited)
	}
	if conn.Stats().Errors == 0 {
		t.Error("write timeout not counted as a connection error")
	}
}

func TestIdleTimeoutDetectsDeadPeer(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	b.SetIdleTimeout(80 * time.Millisecond)

	_, err := b.Receive() // a never sends
	if err == nil {
		t.Fatal("idle receive returned a packet")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("err = %v, want a net timeout", err)
	}
}

func TestKeepaliveRefreshesIdlePeerAndIsInvisible(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	b.SetIdleTimeout(150 * time.Millisecond)
	a.StartKeepalive(30 * time.Millisecond)

	type res struct {
		pkt Packet
		err error
	}
	got := make(chan res, 1)
	go func() {
		pkt, err := b.Receive()
		got <- res{pkt, err}
	}()
	// Quiet for 3x the idle timeout: only keepalives flow, and they must
	// hold the link open without surfacing as packets.
	time.Sleep(450 * time.Millisecond)
	select {
	case r := <-got:
		t.Fatalf("Receive returned during keepalive-only quiet period: %+v %v", r.pkt, r.err)
	default:
	}
	if err := a.SendInterest(&ndn.Interest{Name: names.MustParse("/x/y"), Kind: ndn.KindContent, Nonce: 7}); err != nil {
		t.Fatal(err)
	}
	r := <-got
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.pkt.Interest == nil || r.pkt.Interest.Nonce != 7 {
		t.Fatalf("got %+v, want the interest", r.pkt)
	}
	if b.Stats().KeepalivesIn < 3 {
		t.Errorf("keepalives in = %d, want >= 3", b.Stats().KeepalivesIn)
	}
	if a.Stats().KeepalivesOut < 3 {
		t.Errorf("keepalives out = %d, want >= 3", a.Stats().KeepalivesOut)
	}
}

func TestIsFatalClassification(t *testing.T) {
	if IsFatal(nil) {
		t.Error("nil is fatal")
	}
	if IsFatal(ErrPacketTooLarge) {
		t.Error("oversize packet rejection is fatal")
	}
	if !IsFatal(&ConnError{Op: "write", Err: io.ErrClosedPipe}) {
		t.Error("ConnError not fatal")
	}
	wrapped := fmt.Errorf("send data: %w", &ConnError{Op: "flush", Err: io.ErrClosedPipe})
	if !IsFatal(wrapped) {
		t.Error("wrapped ConnError not fatal")
	}
}

func TestSendAfterPeerCloseIsFatal(t *testing.T) {
	a, b := pipePair()
	b.Close()
	// The pipe may need one write to observe the close.
	var err error
	for i := 0; i < 5 && err == nil; i++ {
		err = a.SendInterest(&ndn.Interest{Name: names.MustParse("/x/y"), Kind: ndn.KindContent, Nonce: 1})
	}
	if err == nil {
		t.Fatal("send to closed peer kept succeeding")
	}
	if !IsFatal(err) {
		t.Errorf("closed-peer error not fatal: %v", err)
	}
	a.Close()
}

// TestIdleDeadlineRefreshesOnReadProgress is the slow-frame regression:
// a multi-KB frame trickling in slower than the idle timeout (but with
// steady byte progress) must not false-trip it — the deadline refreshes
// on every low-level read, not once per frame.
func TestIdleDeadlineRefreshesOnReadProgress(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	recv := New(b)
	defer recv.Close()
	recv.SetIdleTimeout(150 * time.Millisecond)

	// One ~2 KB Data frame, drip-fed in 256-byte chunks every 60 ms:
	// total transfer ~500 ms, each inter-chunk gap well under the idle
	// timeout.
	frame, err := ndn.AppendData(nil, &ndn.Data{
		Name: names.MustParse("/prov0/obj/slow"),
		Content: &core.Content{
			Meta:      core.ContentMeta{Name: names.MustParse("/prov0/obj/slow"), Level: 1, ProviderKey: names.MustParse("/prov0/KEY/1")},
			Payload:   make([]byte, 2048),
			Signature: []byte("sig"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for off := 0; off < len(frame); off += 256 {
			end := off + 256
			if end > len(frame) {
				end = len(frame)
			}
			if _, err := a.Write(frame[off:end]); err != nil {
				return
			}
			time.Sleep(60 * time.Millisecond)
		}
	}()
	pkt, err := recv.Receive()
	if err != nil {
		t.Fatalf("slow frame tripped the idle timeout: %v", err)
	}
	if pkt.Data == nil || len(pkt.Data.Content.Payload) != 2048 {
		t.Fatal("frame corrupted")
	}
	// The timeout still works when the link actually goes quiet.
	if _, err := recv.Receive(); err == nil {
		t.Fatal("idle timeout never fired on a silent link")
	}
}

func TestCoalescedWritesShareAFlush(t *testing.T) {
	a, b := net.Pipe()
	send := New(a)
	recv := New(b)
	defer send.Close()
	defer recv.Close()
	send.SetCoalesce(5 * time.Millisecond)

	got := make(chan *ndn.Interest, 3)
	go func() {
		for {
			pkt, err := recv.Receive()
			if err != nil {
				close(got)
				return
			}
			got <- pkt.Interest
		}
	}()
	// Three sends inside one window: none blocks on the synchronous
	// pipe, proving no per-frame flush happened; the timer delivers all
	// three in one write.
	for i := 0; i < 3; i++ {
		if err := send.SendInterest(&ndn.Interest{Name: names.MustParse("/p/x"), Kind: ndn.KindContent, Nonce: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		select {
		case in := <-got:
			if in == nil || in.Nonce != uint64(i) {
				t.Fatalf("frame %d: %+v", i, in)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("frame %d never flushed", i)
		}
	}
	if st := send.Stats(); st.FramesOut != 3 {
		t.Fatalf("frames out: %d", st.FramesOut)
	}
}

func TestCoalesceFlushesOnThreshold(t *testing.T) {
	a, b := net.Pipe()
	send := New(a)
	recv := New(b)
	defer send.Close()
	defer recv.Close()
	send.SetCoalesce(time.Hour) // only the byte threshold can flush

	payload := make([]byte, 40<<10) // one frame past coalesceFlushBytes
	done := make(chan error, 1)
	go func() {
		done <- send.SendData(&ndn.Data{
			Name: names.MustParse("/prov0/obj/big"),
			Content: &core.Content{
				Meta:      core.ContentMeta{Name: names.MustParse("/prov0/obj/big"), Level: 1, ProviderKey: names.MustParse("/prov0/KEY/1")},
				Payload:   payload,
				Signature: []byte("sig"),
			},
		})
	}()
	pkt, err := recv.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if pkt.Data == nil || len(pkt.Data.Content.Payload) != len(payload) {
		t.Fatal("threshold flush lost the frame")
	}
}

func TestCoalesceAsyncFlushErrorIsSticky(t *testing.T) {
	a, b := net.Pipe()
	send := New(a)
	defer send.Close()
	send.SetCoalesce(10 * time.Millisecond)
	b.Close() // the peer is gone; the timed flush will fail

	if err := send.SendInterest(&ndn.Interest{Name: names.MustParse("/p/x"), Kind: ndn.KindContent, Nonce: 1}); err != nil {
		t.Fatalf("buffered send should succeed: %v", err)
	}
	// After the window the flush has failed; the next send must surface
	// it as fatal so the face is recycled.
	deadline := time.Now().Add(2 * time.Second)
	for {
		err := send.SendInterest(&ndn.Interest{Name: names.MustParse("/p/x"), Kind: ndn.KindContent, Nonce: 2})
		if err != nil {
			if !IsFatal(err) {
				t.Fatalf("sticky flush error not fatal: %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flush error never surfaced")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
