//go:build linux && arm64

package transport

// recvmmsg/sendmmsg syscall numbers on linux/arm64.
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)
