package transport

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/ndn"
	"github.com/tactic-icn/tactic/internal/obs"
)

// TestUDPMetricsFactoryCountsDemuxedFaces is the regression test for
// the demux gap: faces auto-created by the endpoint's read loop got no
// Metrics, so their traffic was invisible to the registry. A factory
// installed on the endpoint must see every demuxed face counted from
// its first datagram.
func TestUDPMetricsFactoryCountsDemuxedFaces(t *testing.T) {
	reg := obs.NewRegistry()
	ev := obs.NewEvents("n0", 32)
	ep, cl := udpPair(t, UDPOptions{})
	var made int
	ep.SetMetricsFactory(func(remote netip.AddrPort) *Metrics {
		made++
		l := obs.L("face", remote.String())
		return &Metrics{
			FramesIn:            reg.Counter("tactic_face_frames_in_total", l),
			FragmentsIn:         reg.Counter(MetricUDPFragments, l, obs.L("dir", "in")),
			Reassembled:         reg.Counter(MetricUDPReassembled, l),
			ReassemblyEvictions: reg.Counter(MetricUDPReassemblyEvictions, l),
			Events:              ev,
			Face:                7,
		}
	})

	// A fragmented Data exercises fragsIn + reassembled on the demuxed
	// (factory-built) face.
	payload := bytes.Repeat([]byte{0x5A}, 3500)
	if err := cl.SendData(testData(payload)); err != nil {
		t.Fatal(err)
	}
	srv := acceptOne(t, ep)
	pkt, err := srv.Receive()
	if err != nil || pkt.Data == nil {
		t.Fatalf("receive: %+v err=%v", pkt, err)
	}
	if made != 1 {
		t.Fatalf("factory invoked %d times, want 1", made)
	}
	df := srv.(*DatagramFace)
	in, _ := df.Fragments()
	if in < 2 || df.Reassembled() != 1 {
		t.Fatalf("face frag counters: in=%d reassembled=%d", in, df.Reassembled())
	}
	epIn, epOut := ep.Fragments()
	if epIn != in || ep.Reassembled() != 1 {
		t.Fatalf("endpoint aggregates: in=%d out=%d reassembled=%d", epIn, epOut, ep.Reassembled())
	}
	// The dial side counted the outgoing fragments.
	if _, out := cl.Fragments(); out != in {
		t.Fatalf("dialer frags out = %d, want %d", out, in)
	}
	snap := reg.Snapshot()
	var sawFrag, sawReasm bool
	for k, v := range snap {
		if strings.HasPrefix(k, MetricUDPFragments+"{") && v == float64(in) {
			sawFrag = true
		}
		if strings.HasPrefix(k, MetricUDPReassembled+"{") && v == 1 {
			sawReasm = true
		}
	}
	if !sawFrag || !sawReasm {
		t.Fatalf("registry missing factory-fed series: frag=%v reasm=%v snap=%v", sawFrag, sawReasm, snap)
	}
}

// TestUDPReassemblyEvictionMetricsAndEvent drives a timeout eviction
// and asserts it surfaces in the per-face counter, the endpoint
// aggregate, and a reassembly_evict event.
func TestUDPReassemblyEvictionMetricsAndEvent(t *testing.T) {
	reg := obs.NewRegistry()
	ev := obs.NewEvents("n0", 32)
	ep, cl := udpPair(t, UDPOptions{ReassemblyTimeout: 60 * time.Millisecond})
	ep.SetMetricsFactory(func(remote netip.AddrPort) *Metrics {
		return &Metrics{
			ReassemblyEvictions: reg.Counter(MetricUDPReassemblyEvictions, obs.L("face", "1")),
			Events:              ev,
			Face:                1,
		}
	})
	frag := func(id uint64, idx, cnt uint16, payload []byte) []byte {
		body := mkFragBody(id, idx, cnt, payload)
		dg := append([]byte{typeFrag}, appendTLVLen(nil, len(body))...)
		return append(dg, body...)
	}
	whole := func(nonce uint64) []byte {
		buf, err := ndn.AppendInterest(nil, &ndn.Interest{Name: names.MustParse("/p/x"), Kind: ndn.KindContent, Nonce: nonce})
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	// First half of packet 1, chased by a marker so the reassembler
	// stamps it now; past the timeout, a new fragment (of packet 2)
	// triggers the expiry sweep.
	cl.SendFrame(frag(1, 0, 2, []byte("half"))) //nolint:errcheck
	cl.SendFrame(whole(8))                      //nolint:errcheck
	srv := acceptOne(t, ep)
	srv.SetIdleTimeout(2 * time.Second)
	if pkt, err := srv.Receive(); err != nil || pkt.Interest == nil || pkt.Interest.Nonce != 8 {
		t.Fatalf("marker: %+v err=%v", pkt, err)
	}
	time.Sleep(120 * time.Millisecond)
	cl.SendFrame(frag(2, 0, 2, []byte("next"))) //nolint:errcheck
	cl.SendFrame(whole(9))                      //nolint:errcheck
	if pkt, err := srv.Receive(); err != nil || pkt.Interest == nil || pkt.Interest.Nonce != 9 {
		t.Fatalf("post-evict marker: %+v err=%v", pkt, err)
	}
	df := srv.(*DatagramFace)
	if df.ReassemblyEvictions() != 1 || ep.ReassemblyEvictions() != 1 {
		t.Fatalf("evictions: face=%d endpoint=%d, want 1/1", df.ReassemblyEvictions(), ep.ReassemblyEvictions())
	}
	if got := reg.Snapshot()[MetricUDPReassemblyEvictions+`{face="1"}`]; got != 1 {
		t.Fatalf("registry eviction counter = %v, want 1", got)
	}
	var found *obs.Event
	for _, e := range ev.Snapshot() {
		if e.Type == obs.EventReassemblyEvict {
			e := e
			found = &e
		}
	}
	if found == nil || found.Face != 1 || found.Value != 1 {
		t.Fatalf("reassembly_evict event = %+v", found)
	}
}

// TestUDPEndpointInstrument registers the endpoint families and checks
// the scope label plus live values after traffic.
func TestUDPEndpointInstrument(t *testing.T) {
	reg := obs.NewRegistry()
	ep, cl := udpPair(t, UDPOptions{})
	ep.Instrument(reg, obs.L("role", "edge"))
	payload := bytes.Repeat([]byte{0x11}, 3000)
	if err := cl.SendData(testData(payload)); err != nil {
		t.Fatal(err)
	}
	srv := acceptOne(t, ep)
	if pkt, err := srv.Receive(); err != nil || pkt.Data == nil {
		t.Fatalf("receive: %+v err=%v", pkt, err)
	}
	snap := reg.Snapshot()
	in, _ := ep.Fragments()
	fragKey := MetricUDPFragments + `{dir="in",role="edge",scope="endpoint"}`
	if got := snap[fragKey]; got != float64(in) || in < 2 {
		t.Fatalf("%s = %v, want %d (snap %v)", fragKey, got, in, snap)
	}
	facesKey := MetricUDPFaces + `{role="edge",scope="endpoint"}`
	if got := snap[facesKey]; got != 1 {
		t.Fatalf("%s = %v, want 1", facesKey, got)
	}
	batch, gso, _, fb := ep.BatchStats()
	batchKey := MetricUDPBatchEnabled + `{role="edge",scope="endpoint"}`
	if got := snap[batchKey]; got != boolGauge(batch) {
		t.Fatalf("%s = %v, want %v", batchKey, got, boolGauge(batch))
	}
	gsoKey := MetricUDPGSOEnabled + `{role="edge",scope="endpoint"}`
	if got := snap[gsoKey]; got != boolGauge(gso && fb == 0) {
		t.Fatalf("%s = %v", gsoKey, got)
	}
}
