package transport

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tactic-icn/tactic/internal/ndn"
	"github.com/tactic-icn/tactic/internal/obs"
)

// UDPOptions tunes a datagram endpoint or face. The zero value uses
// the package defaults.
type UDPOptions struct {
	// MTU is the per-datagram payload budget: frames larger than this are
	// fragmented (see frag.go). Both ends of a link should agree; default
	// DefaultMTU, minimum MinMTU.
	MTU int
	// DisableBatch forces single-datagram syscalls even where recvmmsg/
	// sendmmsg are available — the un-batched baseline for benchmarks.
	DisableBatch bool
	// ReassemblyTimeout evicts a partial packet this long after its first
	// fragment (default DefaultReassemblyTimeout).
	ReassemblyTimeout time.Duration
	// ReassemblyEntries bounds concurrent reassemblies per face (default
	// DefaultReassemblyEntries).
	ReassemblyEntries int
}

// withDefaults resolves zero fields.
func (o UDPOptions) withDefaults() UDPOptions {
	if o.MTU <= 0 {
		o.MTU = DefaultMTU
	}
	if o.MTU < MinMTU {
		o.MTU = MinMTU
	}
	if o.ReassemblyTimeout <= 0 {
		o.ReassemblyTimeout = DefaultReassemblyTimeout
	}
	if o.ReassemblyEntries <= 0 {
		o.ReassemblyEntries = DefaultReassemblyEntries
	}
	return o
}

// recvQueueLen is the per-face receive queue depth; datagrams arriving
// while the queue is full are dropped, as a congested UDP socket would.
const recvQueueLen = 1024

// maxWriteBurst is how many queued datagrams the write loop drains per
// round: deep enough that GSO can pack long equal-size runs (e.g. the
// fragments of several large frames) into few kernel traversals.
const maxWriteBurst = 512

// sendQueueLen is the endpoint's shared send queue depth; senders block
// (bounded by their write timeout) when it fills.
const sendQueueLen = 1024

// outDatagram is one queued send: a pooled buffer bound for addr.
type outDatagram struct {
	addr netip.AddrPort
	buf  *[]byte
}

// UDPEndpoint is one UDP socket demultiplexed into connectionless
// faces keyed by remote address: the first datagram from an unknown
// 5-tuple creates a face surfaced through Accept, and faces die on
// idle timeout (a NAT-rebound peer simply appears as a new face).
// Reads and writes go through recvmmsg/sendmmsg batches where the
// platform supports them, amortising syscall cost across datagrams.
type UDPEndpoint struct {
	pc   *net.UDPConn
	opts UDPOptions
	bio  *batchIO // nil: single-datagram syscalls
	// rbuf is the single-datagram read scratch when bio == nil, sized
	// one byte past the datagram budget so truncation is detectable.
	rbuf []byte

	mu    sync.Mutex
	faces map[netip.AddrPort]*DatagramFace

	acceptQ chan *DatagramFace
	sendQ   chan outDatagram

	// dialPeer, when valid, pins the endpoint to one remote (DialUDP):
	// datagrams from anyone else are dropped and closing the single face
	// closes the endpoint.
	dialPeer netip.AddrPort

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// rxDrops counts datagrams dropped on full face queues and new
	// remotes shed on a full accept backlog.
	rxDrops atomic.Uint64
	// rxOversize counts datagrams larger than the receive buffer
	// (MTU + headroom), truncated by the socket and dropped — a peer
	// configured with a bigger MTU, not generic corruption.
	rxOversize atomic.Uint64

	// Endpoint-wide datagram-plane aggregates, summed across faces
	// (including ones that have since died): fragments moved, frames
	// completed by reassembly, partial packets evicted.
	fragsIn, fragsOut atomic.Uint64
	reassembled       atomic.Uint64
	reasmEvicted      atomic.Uint64

	// metricsFactory, when set, builds the Metrics attached to each
	// demux-created face at creation time, so auto-accepted faces are
	// counted from their first datagram (faces surfaced through Accept
	// can still have metrics replaced later via SetMetrics).
	metricsFactory atomic.Pointer[func(netip.AddrPort) *Metrics]
}

// SetMetricsFactory installs a constructor invoked for every face the
// endpoint creates (demuxed remotes and dialed faces alike); the
// returned Metrics (nil allowed) is attached before the face sees its
// first datagram. Safe to call concurrently with the read loop.
func (ep *UDPEndpoint) SetMetricsFactory(fn func(remote netip.AddrPort) *Metrics) {
	if fn == nil {
		ep.metricsFactory.Store(nil)
		return
	}
	ep.metricsFactory.Store(&fn)
}

// ListenUDP binds a datagram endpoint on addr ("host:port").
func ListenUDP(addr string, opts UDPOptions) (*UDPEndpoint, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	pc, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	return newEndpoint(pc, opts, netip.AddrPort{}), nil
}

// DialUDP opens a datagram face to addr over a fresh ephemeral-port
// endpoint. The face is live immediately — UDP has no handshake — so
// peer death only surfaces through idle timeouts; pair SetIdleTimeout
// with keepalives when liveness matters.
func DialUDP(addr string, opts UDPOptions) (*DatagramFace, error) {
	ra, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	peer := canonAddr(ra.AddrPort())
	network := "udp6"
	if peer.Addr().Is4() {
		network = "udp4"
	}
	pc, err := net.ListenUDP(network, nil)
	if err != nil {
		return nil, err
	}
	ep := newEndpoint(pc, opts, peer)
	return ep.newFace(peer), nil
}

// newEndpoint wires up the socket, loops, and (where available) batch I/O.
func newEndpoint(pc *net.UDPConn, opts UDPOptions, dialPeer netip.AddrPort) *UDPEndpoint {
	opts = opts.withDefaults()
	// Deep socket buffers ride out batch-sized bursts; best-effort.
	pc.SetReadBuffer(4 << 20)  //nolint:errcheck
	pc.SetWriteBuffer(4 << 20) //nolint:errcheck
	bufSize := opts.MTU + 128
	if bufSize < 2048 {
		bufSize = 2048
	}
	ep := &UDPEndpoint{
		pc:       pc,
		opts:     opts,
		faces:    make(map[netip.AddrPort]*DatagramFace),
		acceptQ:  make(chan *DatagramFace, 64),
		sendQ:    make(chan outDatagram, sendQueueLen),
		dialPeer: dialPeer,
		closed:   make(chan struct{}),
	}
	if !opts.DisableBatch {
		ep.bio = newBatchIO(pc, bufSize)
	}
	if ep.bio == nil {
		// One byte of headroom past the budget: a read filling the whole
		// buffer means the kernel truncated an oversized datagram.
		ep.rbuf = make([]byte, bufSize+1)
	}
	ep.wg.Add(2)
	go ep.readLoop()
	go ep.writeLoop()
	return ep
}

// Accept blocks for the next auto-created face (first datagram from an
// unknown remote). Implements FaceListener.
func (ep *UDPEndpoint) Accept() (Face, error) {
	select {
	case f := <-ep.acceptQ:
		return f, nil
	case <-ep.closed:
		return nil, fmt.Errorf("transport: udp endpoint: %w", net.ErrClosed)
	}
}

// Addr returns the bound local address.
func (ep *UDPEndpoint) Addr() net.Addr { return ep.pc.LocalAddr() }

// Faces returns the number of live faces.
func (ep *UDPEndpoint) Faces() int {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return len(ep.faces)
}

// RxDrops returns datagrams dropped on full per-face receive queues
// or shed on a full accept backlog.
func (ep *UDPEndpoint) RxDrops() uint64 { return ep.rxDrops.Load() }

// RxOversize returns datagrams dropped because they exceeded the
// receive buffer (a peer with a larger MTU), counted separately from
// parse errors so an MTU mismatch is diagnosable.
func (ep *UDPEndpoint) RxOversize() uint64 { return ep.rxOversize.Load() }

// Fragments returns fragment datagrams received and sent across every
// face this endpoint ever demuxed (dead faces' counts persist).
func (ep *UDPEndpoint) Fragments() (in, out uint64) {
	return ep.fragsIn.Load(), ep.fragsOut.Load()
}

// Reassembled returns frames completed from fragments across all faces.
func (ep *UDPEndpoint) Reassembled() uint64 { return ep.reassembled.Load() }

// ReassemblyEvictions returns partial packets evicted before completion
// across all faces.
func (ep *UDPEndpoint) ReassemblyEvictions() uint64 { return ep.reasmEvicted.Load() }

// BatchStats reports whether batched I/O is active and the probed
// GSO/GRO offload state, plus how many times the runtime GSO fallback
// fired (a kernel that rejected a segmented send).
func (ep *UDPEndpoint) BatchStats() (batch, gso, gro bool, gsoFallbacks uint64) {
	gso, gro, gsoFallbacks = ep.bio.stats()
	return ep.bio != nil, gso, gro, gsoFallbacks
}

// Close stops the endpoint: the socket closes, every face's Receive
// unblocks with an error, and the loops drain.
func (ep *UDPEndpoint) Close() error {
	var err error
	ep.closeOnce.Do(func() {
		close(ep.closed)
		err = ep.pc.Close()
		ep.mu.Lock()
		faces := make([]*DatagramFace, 0, len(ep.faces))
		for _, f := range ep.faces {
			faces = append(faces, f)
		}
		ep.mu.Unlock()
		for _, f := range faces {
			f.markDone()
		}
		ep.wg.Wait()
	})
	return err
}

// newFace creates and registers a face for remote (caller must ensure
// no face for remote exists).
func (ep *UDPEndpoint) newFace(remote netip.AddrPort) *DatagramFace {
	f := &DatagramFace{
		ep:    ep,
		raddr: remote,
		rq:    make(chan *[]byte, recvQueueLen),
		asm:   newReassembler(ep.opts.ReassemblyEntries, ep.opts.ReassemblyTimeout),
		done:  make(chan struct{}),
	}
	if fn := ep.metricsFactory.Load(); fn != nil {
		f.metrics.Store((*fn)(remote))
	}
	ep.mu.Lock()
	ep.faces[remote] = f
	ep.mu.Unlock()
	return f
}

// dropFace unregisters a face (only if it is still the one mapped).
func (ep *UDPEndpoint) dropFace(f *DatagramFace) {
	ep.mu.Lock()
	if ep.faces[f.raddr] == f {
		delete(ep.faces, f.raddr)
	}
	ep.mu.Unlock()
}

// canonAddr normalises an address for face keying (IPv4-mapped IPv6
// unifies with plain IPv4 so a dialed v4 peer matches its replies).
func canonAddr(ap netip.AddrPort) netip.AddrPort {
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
}

// readLoop pulls datagram batches off the socket and demultiplexes
// them into per-face receive queues, creating faces for new remotes.
func (ep *UDPEndpoint) readLoop() {
	defer ep.wg.Done()
	for {
		if ep.bio != nil {
			n, err := ep.bio.readBatch()
			if err != nil {
				if ep.readDead(err) {
					return
				}
				continue
			}
			for i := 0; i < n; i++ {
				data, addr, seg, trunc := ep.bio.msg(i)
				if trunc {
					// The kernel cut the datagram to fit the batch buffer
					// (MSG_TRUNC): an oversized send from a bigger-MTU peer.
					ep.rxOversize.Add(1)
					continue
				}
				ap := canonAddr(addr)
				if seg > 0 && len(data) > seg {
					// A GRO message: several coalesced datagrams, every
					// seg bytes starting a new one, the last often shorter.
					for off := 0; off < len(data); off += seg {
						end := off + seg
						if end > len(data) {
							end = len(data)
						}
						ep.deliver(data[off:end], ap)
					}
					continue
				}
				ep.deliver(data, ap)
			}
			continue
		}
		n, addr, err := ep.pc.ReadFromUDPAddrPort(ep.rbuf)
		if err != nil {
			if ep.readDead(err) {
				return
			}
			continue
		}
		if n == len(ep.rbuf) {
			// The headroom byte was consumed: the datagram was truncated.
			ep.rxOversize.Add(1)
			continue
		}
		ep.deliver(ep.rbuf[:n], canonAddr(addr))
	}
}

// readDead reports whether a read error means the endpoint is done.
func (ep *UDPEndpoint) readDead(err error) bool {
	select {
	case <-ep.closed:
		return true
	default:
	}
	return errors.Is(err, net.ErrClosed)
}

// deliver routes one datagram to its face, creating the face when the
// remote is new. The datagram bytes are copied into a pooled buffer
// owned by the face until its receive loop releases it.
func (ep *UDPEndpoint) deliver(data []byte, addr netip.AddrPort) {
	if ep.dialPeer.IsValid() && addr != ep.dialPeer {
		return // dialed endpoints talk to exactly one remote
	}
	ep.mu.Lock()
	f := ep.faces[addr]
	ep.mu.Unlock()
	if f == nil {
		f = ep.newFace(addr)
		select {
		case ep.acceptQ <- f:
		default:
			// Accept backlog full (or endpoint closing): shed the new
			// remote instead of stalling the shared read loop — blocking
			// here would freeze receive for every existing face behind a
			// slow Accept caller. The remote's next datagram retries.
			ep.dropFace(f)
			f.markDone()
			ep.rxDrops.Add(1)
			return
		}
	}
	buf := ndn.AcquireBuffer()
	*buf = append((*buf)[:0], data...)
	select {
	case f.rq <- buf:
	default:
		// Face queue full: shed like a saturated socket buffer would.
		ndn.ReleaseBuffer(buf)
		ep.rxDrops.Add(1)
	}
}

// writeLoop drains the send queue in batches, releasing pooled buffers
// after each syscall round.
func (ep *UDPEndpoint) writeLoop() {
	defer ep.wg.Done()
	pend := make([]outDatagram, 0, maxWriteBurst)
	for {
		pend = pend[:0]
		select {
		case d := <-ep.sendQ:
			pend = append(pend, d)
		case <-ep.closed:
			return
		}
	fill:
		for len(pend) < maxWriteBurst {
			select {
			case d := <-ep.sendQ:
				pend = append(pend, d)
			default:
				break fill
			}
		}
		if ep.bio != nil {
			ep.bio.writeBatch(pend)
		} else {
			for _, d := range pend {
				ep.pc.WriteToUDPAddrPort(*d.buf, d.addr) //nolint:errcheck // datagram sends are fire-and-forget
			}
		}
		for i := range pend {
			ndn.ReleaseBuffer(pend[i].buf)
		}
	}
}

// enqueue queues one datagram for addr, blocking while the send queue
// is full (bounded by timeout when > 0).
func (ep *UDPEndpoint) enqueue(addr netip.AddrPort, dg []byte, timeout time.Duration) error {
	buf := ndn.AcquireBuffer()
	*buf = append((*buf)[:0], dg...)
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		select {
		case ep.sendQ <- outDatagram{addr: addr, buf: buf}:
			return nil
		case <-t.C:
			ndn.ReleaseBuffer(buf)
			return &ConnError{Op: "write", Err: errors.New("transport: udp send queue full")}
		case <-ep.closed:
			ndn.ReleaseBuffer(buf)
			return &ConnError{Op: "write", Err: net.ErrClosed}
		}
	}
	select {
	case ep.sendQ <- outDatagram{addr: addr, buf: buf}:
		return nil
	case <-ep.closed:
		ndn.ReleaseBuffer(buf)
		return &ConnError{Op: "write", Err: net.ErrClosed}
	}
}

// ErrIdleTimeout is returned by a datagram face's Receive when no
// datagram (keepalives count) arrived within the idle timeout.
var ErrIdleTimeout = errors.New("transport: idle timeout")

// DatagramFace carries NDN packets over UDP: one remote 5-tuple,
// fragmentation past the MTU, per-datagram (not per-stream) error
// recovery — a corrupt datagram is counted and skipped, because the
// next datagram re-synchronises framing for free. Faces come from a
// UDPEndpoint (listener- or dial-side, batched I/O) or from
// NewDatagramConn (any datagram-semantics net.Conn, e.g. chaos-wrapped).
// Reads are single-reader; sends are safe for concurrent use.
type DatagramFace struct {
	// Endpoint mode: ep+raddr+rq carry datagrams demultiplexed by the
	// endpoint's batch loops.
	ep    *UDPEndpoint
	raddr netip.AddrPort
	rq    chan *[]byte

	// Conn mode: a connected datagram net.Conn read/written directly.
	c    net.Conn
	rbuf []byte
	wmu  sync.Mutex

	opts UDPOptions
	asm  *reassembler

	writeTimeout atomic.Int64
	idleTimeout  atomic.Int64
	pktID        atomic.Uint64

	framesIn, framesOut atomic.Uint64
	bytesIn, bytesOut   atomic.Uint64
	errs                atomic.Uint64
	kaIn, kaOut         atomic.Uint64
	// oversize counts truncated-and-dropped datagrams in conn mode
	// (endpoint mode counts them on the endpoint); kept apart from errs
	// so an MTU mismatch is diagnosable.
	oversize atomic.Uint64
	// Datagram-plane counters: fragments moved, frames completed by
	// reassembly, partial packets evicted.
	fragsIn, fragsOut atomic.Uint64
	reassembled       atomic.Uint64
	reasmEvicted      atomic.Uint64
	// evictSeen tracks how much of asm.evicted has been published into
	// reasmEvicted; plain (non-atomic) because only the single receive
	// loop that owns asm touches it.
	evictSeen uint64
	// evictGate rate-limits reassembly-eviction events to one per second.
	evictGate obs.BurstGate
	metrics   atomic.Pointer[Metrics]

	done     chan struct{}
	doneOnce sync.Once
	kaOnce   sync.Once
	kaWG     sync.WaitGroup
}

// NewDatagramConn wraps a datagram-semantics net.Conn (each Write is
// one datagram, each Read returns one whole datagram) as a face: the
// interposition point for fault injection (chaos.Wrap) and custom
// dialers, at single-datagram syscall cost.
func NewDatagramConn(c net.Conn, opts UDPOptions) *DatagramFace {
	opts = opts.withDefaults()
	bufSize := opts.MTU + 128
	if bufSize < 2048 {
		bufSize = 2048
	}
	// Deep socket buffers absorb fragment bursts: a single MaxPacketSize
	// frame fans out into ~750 datagrams at the default MTU, far beyond
	// the kernel's default receive buffer.
	if bc, ok := c.(interface{ SetReadBuffer(int) error }); ok {
		bc.SetReadBuffer(4 << 20) //nolint:errcheck // best-effort; capped by rmem_max
	}
	if bc, ok := c.(interface{ SetWriteBuffer(int) error }); ok {
		bc.SetWriteBuffer(4 << 20) //nolint:errcheck
	}
	return &DatagramFace{
		c: c,
		// One byte of headroom so a read filling the buffer is detectable
		// as a truncated oversized datagram (see readConn).
		rbuf: make([]byte, bufSize+1),
		opts: opts,
		asm:  newReassembler(opts.ReassemblyEntries, opts.ReassemblyTimeout),
		done: make(chan struct{}),
	}
}

// mtu returns the face's datagram payload budget.
func (f *DatagramFace) mtu() int {
	if f.ep != nil {
		return f.ep.opts.MTU
	}
	return f.opts.MTU
}

// SetWriteTimeout bounds each datagram send (queue admission in
// endpoint mode, the socket write in conn mode). 0 disables.
func (f *DatagramFace) SetWriteTimeout(d time.Duration) { f.writeTimeout.Store(int64(d)) }

// SetIdleTimeout makes Receive fail with ErrIdleTimeout when no
// datagram (keepalives count) arrives for d — the only way a
// connectionless peer's death is detected. 0 disables.
func (f *DatagramFace) SetIdleTimeout(d time.Duration) { f.idleTimeout.Store(int64(d)) }

// SetMetrics attaches per-face observability counters.
func (f *DatagramFace) SetMetrics(m *Metrics) { f.metrics.Store(m) }

// Oversize returns conn-mode datagrams dropped because they exceeded
// the receive buffer (a peer with a larger MTU); endpoint-mode faces
// report these on UDPEndpoint.RxOversize instead.
func (f *DatagramFace) Oversize() uint64 { return f.oversize.Load() }

// Fragments returns fragment datagrams received and sent by this face.
func (f *DatagramFace) Fragments() (in, out uint64) {
	return f.fragsIn.Load(), f.fragsOut.Load()
}

// Reassembled returns frames this face completed from fragments.
func (f *DatagramFace) Reassembled() uint64 { return f.reassembled.Load() }

// ReassemblyEvictions returns partial packets this face evicted before
// completion (reassembly timeout or slot pressure).
func (f *DatagramFace) ReassemblyEvictions() uint64 { return f.reasmEvicted.Load() }

// Stats returns a snapshot of the face's counters.
func (f *DatagramFace) Stats() Stats {
	return Stats{
		FramesIn:      f.framesIn.Load(),
		FramesOut:     f.framesOut.Load(),
		BytesIn:       f.bytesIn.Load(),
		BytesOut:      f.bytesOut.Load(),
		Errors:        f.errs.Load(),
		KeepalivesIn:  f.kaIn.Load(),
		KeepalivesOut: f.kaOut.Load(),
	}
}

// countInBytes accounts one received datagram's bytes; frames are
// counted separately so a fragmented packet is one frame, not N.
func (f *DatagramFace) countInBytes(n int) {
	f.bytesIn.Add(uint64(n))
	if m := f.metrics.Load(); m != nil {
		m.BytesIn.Add(uint64(n))
	}
}

// countInFrame accounts one complete logical frame.
func (f *DatagramFace) countInFrame() {
	f.framesIn.Add(1)
	if m := f.metrics.Load(); m != nil {
		m.FramesIn.Inc()
	}
}

func (f *DatagramFace) countOut(n int) {
	f.framesOut.Add(1)
	f.bytesOut.Add(uint64(n))
	if m := f.metrics.Load(); m != nil {
		m.FramesOut.Inc()
		m.BytesOut.Add(uint64(n))
	}
}

func (f *DatagramFace) countErr() {
	f.errs.Add(1)
	if m := f.metrics.Load(); m != nil {
		m.Errors.Inc()
	}
}

// countFragIn accounts one received fragment datagram.
func (f *DatagramFace) countFragIn() {
	f.fragsIn.Add(1)
	if f.ep != nil {
		f.ep.fragsIn.Add(1)
	}
	if m := f.metrics.Load(); m != nil {
		m.FragmentsIn.Inc()
	}
}

// countFragsOut accounts n sent fragment datagrams.
func (f *DatagramFace) countFragsOut(n int) {
	f.fragsOut.Add(uint64(n))
	if f.ep != nil {
		f.ep.fragsOut.Add(uint64(n))
	}
	if m := f.metrics.Load(); m != nil {
		m.FragmentsOut.Add(uint64(n))
	}
}

// countReassembled accounts one frame completed by reassembly.
func (f *DatagramFace) countReassembled() {
	f.reassembled.Add(1)
	if f.ep != nil {
		f.ep.reassembled.Add(1)
	}
	if m := f.metrics.Load(); m != nil {
		m.Reassembled.Inc()
	}
}

// noteEvictions publishes reassembler evictions accumulated since the
// last call (the reassembler's counter is private to the receive loop)
// and emits a rate-limited reassembly_evict event. Called from the
// receive loop only, right after the reassembler ran.
func (f *DatagramFace) noteEvictions() {
	d := f.asm.evicted - f.evictSeen
	if d == 0 {
		return
	}
	f.evictSeen = f.asm.evicted
	f.reasmEvicted.Add(d)
	if f.ep != nil {
		f.ep.reasmEvicted.Add(d)
	}
	m := f.metrics.Load()
	if m != nil {
		m.ReassemblyEvictions.Add(d)
	}
	if m != nil && m.Events != nil {
		if burst := f.evictGate.Add(d); burst > 0 {
			m.Events.Emit(obs.EventReassemblyEvict, m.Face, f.RemoteAddr().String(), burst)
		}
	}
}

// countOversize accounts one truncated-and-dropped oversized datagram
// (conn mode; endpoint mode counts these on the shared socket).
func (f *DatagramFace) countOversize() {
	f.oversize.Add(1)
	if m := f.metrics.Load(); m != nil {
		m.Oversize.Inc()
	}
}

// RemoteAddr returns the peer address.
func (f *DatagramFace) RemoteAddr() net.Addr {
	if f.c != nil {
		return f.c.RemoteAddr()
	}
	return net.UDPAddrFromAddrPort(f.raddr)
}

// markDone releases Receive waiters without touching shared state.
func (f *DatagramFace) markDone() { f.doneOnce.Do(func() { close(f.done) }) }

// Close releases the face. On a dialed endpoint the whole endpoint
// closes with it; on a listener endpoint only this remote's slot frees
// (a later datagram from the same remote makes a fresh face).
func (f *DatagramFace) Close() error {
	f.markDone()
	var err error
	if f.c != nil {
		err = f.c.Close()
	} else if f.ep.dialPeer.IsValid() {
		err = f.ep.Close()
	} else {
		f.ep.dropFace(f)
	}
	f.kaWG.Wait()
	return err
}

// SendKeepalive sends one liveness datagram.
func (f *DatagramFace) SendKeepalive() error {
	if err := f.sendFrame([]byte{typeKeepalive, 0}); err != nil {
		return err
	}
	f.kaOut.Add(1)
	return nil
}

// StartKeepalive sends a liveness datagram every interval until the
// face closes or a send fails. At most one keepalive goroutine runs
// per face; interval <= 0 is a no-op.
func (f *DatagramFace) StartKeepalive(interval time.Duration) {
	if interval <= 0 {
		return
	}
	f.kaOnce.Do(func() {
		f.kaWG.Add(1)
		go func() {
			defer f.kaWG.Done()
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-f.done:
					return
				case <-t.C:
					if err := f.SendKeepalive(); err != nil {
						return
					}
				}
			}
		}()
	})
}

// SendInterest encodes and sends one Interest.
func (f *DatagramFace) SendInterest(i *ndn.Interest) error {
	buf := ndn.AcquireBuffer()
	defer ndn.ReleaseBuffer(buf)
	frame, err := ndn.AppendInterest(*buf, i)
	if err != nil {
		return err
	}
	*buf = frame[:0]
	return f.sendFrame(frame)
}

// SendData encodes and sends one Data, fragmenting past the MTU.
func (f *DatagramFace) SendData(d *ndn.Data) error {
	buf := ndn.AcquireBuffer()
	defer ndn.ReleaseBuffer(buf)
	frame, err := ndn.AppendData(*buf, d)
	if err != nil {
		return err
	}
	*buf = frame[:0]
	return f.sendFrame(frame)
}

// SendControl encodes and sends one control frame.
func (f *DatagramFace) SendControl(m *ndn.Control) error {
	buf := ndn.AcquireBuffer()
	defer ndn.ReleaseBuffer(buf)
	frame, err := ndn.AppendControl(*buf, m)
	if err != nil {
		return err
	}
	*buf = frame[:0]
	return f.sendFrame(frame)
}

// SendFrame sends one pre-encoded TLV frame verbatim.
func (f *DatagramFace) SendFrame(frame []byte) error { return f.sendFrame(frame) }

// sendFrame fragments (when needed) and transmits one frame.
func (f *DatagramFace) sendFrame(frame []byte) error {
	select {
	case <-f.done:
		return net.ErrClosed
	default:
	}
	if len(frame) > MaxPacketSize {
		return ErrPacketTooLarge
	}
	var id uint64
	var nfrags int
	if mtu := f.mtu(); len(frame) > mtu {
		id = f.pktID.Add(1)
		chunk := mtu - fragOverhead
		nfrags = (len(frame) + chunk - 1) / chunk
	}
	err := fragmentFrame(frame, f.mtu(), id, f.emit)
	if err != nil {
		if IsFatal(err) {
			f.countErr()
		}
		return err
	}
	if nfrags > 0 {
		f.countFragsOut(nfrags)
	}
	f.countOut(len(frame))
	return nil
}

// emit transmits one datagram.
func (f *DatagramFace) emit(dg []byte) error {
	timeout := time.Duration(f.writeTimeout.Load())
	if f.ep != nil {
		return f.ep.enqueue(f.raddr, dg, timeout)
	}
	f.wmu.Lock()
	defer f.wmu.Unlock()
	if timeout > 0 {
		f.c.SetWriteDeadline(time.Now().Add(timeout)) //nolint:errcheck // best-effort; the write reports failures
	}
	if _, err := f.c.Write(dg); err != nil {
		return &ConnError{Op: "write", Err: err}
	}
	return nil
}

// Receive blocks for the next packet. Corrupt datagrams are counted
// and skipped (datagram framing self-heals); only endpoint teardown,
// socket death, or an idle timeout surface as errors.
func (f *DatagramFace) Receive() (Packet, error) {
	for {
		var pkt Packet
		var ok bool
		var err error
		if f.ep != nil {
			buf, rerr := f.nextQueued()
			if rerr != nil {
				return Packet{}, rerr
			}
			pkt, ok, err = f.process(*buf)
			ndn.ReleaseBuffer(buf)
		} else {
			dg, rerr := f.readConn()
			if rerr != nil {
				return Packet{}, rerr
			}
			pkt, ok, err = f.process(dg)
		}
		if err != nil {
			f.countErr()
			continue
		}
		if ok {
			return pkt, nil
		}
	}
}

// nextQueued waits for the next datagram from the endpoint demux,
// honouring the idle timeout and face teardown.
func (f *DatagramFace) nextQueued() (*[]byte, error) {
	// Fast path: a queued datagram needs no timer machinery.
	select {
	case buf := <-f.rq:
		return buf, nil
	default:
	}
	if d := time.Duration(f.idleTimeout.Load()); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case buf := <-f.rq:
			return buf, nil
		case <-t.C:
			return nil, ErrIdleTimeout
		case <-f.done:
			return nil, net.ErrClosed
		}
	}
	select {
	case buf := <-f.rq:
		return buf, nil
	case <-f.done:
		return nil, net.ErrClosed
	}
}

// readConn reads one datagram off the wrapped net.Conn, honouring the
// idle timeout via read deadlines. Oversized datagrams (truncated by
// the socket to the buffer) are counted and skipped here, before the
// parse layer would misreport them as generic length-mismatch errors.
func (f *DatagramFace) readConn() ([]byte, error) {
	for {
		if d := time.Duration(f.idleTimeout.Load()); d > 0 {
			f.c.SetReadDeadline(time.Now().Add(d)) //nolint:errcheck // best-effort; the read reports failures
		} else {
			f.c.SetReadDeadline(time.Time{}) //nolint:errcheck
		}
		n, err := f.c.Read(f.rbuf)
		if err != nil {
			if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
				return nil, ErrIdleTimeout
			}
			return nil, err
		}
		if n == len(f.rbuf) {
			// The headroom byte was consumed: a bigger-MTU peer's datagram
			// was truncated by the socket.
			f.countOversize()
			continue
		}
		return f.rbuf[:n], nil
	}
}

// process ingests one datagram: keepalives refresh liveness, fragments
// feed the reassembler, whole frames decode directly. ok reports
// whether pkt carries a decoded packet.
func (f *DatagramFace) process(dg []byte) (pkt Packet, ok bool, err error) {
	typ, body, err := parseDatagram(dg)
	if err != nil {
		return Packet{}, false, err
	}
	f.countInBytes(len(dg))
	switch typ {
	case typeKeepalive:
		f.kaIn.Add(1)
		return Packet{}, false, nil
	case typeFrag:
		f.countFragIn()
		frame, err := f.asm.add(time.Now(), body)
		f.noteEvictions()
		if err != nil {
			return Packet{}, false, err
		}
		if frame == nil {
			return Packet{}, false, nil
		}
		if len(frame) == 0 {
			// The reassembler rejects empty fragments, so a complete frame
			// is never empty; guard anyway — frame[0] on a zero-length
			// reassembly would panic the receive loop on remote input.
			return Packet{}, false, ErrBadFragment
		}
		pkt, err := f.decodeFrame(frame[0], frame)
		if err != nil {
			return Packet{}, false, err
		}
		f.countReassembled()
		f.countInFrame()
		return pkt, true, nil
	default:
		pkt, err := f.decodeFrame(typ, dg)
		if err != nil {
			return Packet{}, false, err
		}
		f.countInFrame()
		return pkt, true, nil
	}
}

// decodeFrame decodes one complete TLV frame, sampling decode latency
// like the stream path does.
func (f *DatagramFace) decodeFrame(typ byte, frame []byte) (Packet, error) {
	var hist *obs.Histogram
	var start time.Time
	if m := f.metrics.Load(); m != nil && m.DecodeSeconds != nil && f.framesIn.Load()&decodeSampleMask == 0 {
		hist = m.DecodeSeconds
		start = time.Now()
	}
	switch typ {
	case typeInterest:
		i, err := ndn.DecodeInterest(frame)
		if err != nil {
			return Packet{}, err
		}
		var dur time.Duration
		if hist != nil {
			dur = time.Since(start)
			hist.Observe(dur.Seconds())
		}
		return Packet{Interest: i, DecodeDur: dur}, nil
	case typeData:
		d, err := ndn.DecodeData(frame)
		if err != nil {
			return Packet{}, err
		}
		var dur time.Duration
		if hist != nil {
			dur = time.Since(start)
			hist.Observe(dur.Seconds())
		}
		return Packet{Data: d, DecodeDur: dur}, nil
	case typeControl:
		m, err := ndn.DecodeControl(frame)
		if err != nil {
			return Packet{}, err
		}
		return Packet{Control: m}, nil
	default:
		return Packet{}, fmt.Errorf("%w: %#x", ErrBadPacketType, typ)
	}
}
