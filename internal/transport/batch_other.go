//go:build !linux || !(amd64 || arm64)

package transport

import (
	"net"
	"net/netip"
)

// batchMax still sizes the write-side drain on platforms without
// batched syscalls; each datagram is its own sendto.
const batchMax = 32

// batchIO is unavailable here; the endpoint falls back to
// single-datagram ReadFromUDPAddrPort/WriteToUDPAddrPort.
type batchIO struct{}

func newBatchIO(pc *net.UDPConn, bufSize int) *batchIO { return nil }

func (b *batchIO) readBatch() (int, error) { panic("transport: batch I/O unavailable") }
func (b *batchIO) msg(int) ([]byte, netip.AddrPort, int, bool) {
	panic("transport: batch I/O unavailable")
}
func (b *batchIO) writeBatch([]outDatagram) { panic("transport: batch I/O unavailable") }

// stats is callable (unlike the I/O methods, which never run here):
// metric closures scrape it unconditionally on every platform.
func (b *batchIO) stats() (gso, gro bool, fallbacks uint64) { return false, false, 0 }
