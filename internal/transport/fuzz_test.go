package transport

import (
	"bytes"
	"testing"
	"time"
)

// FuzzFragRoundTrip drives the fragmentation header codec and the
// reassembler with adversarial input: junk is fed straight into the
// reassembler as hostile fragment bodies (truncated headers, duplicate
// indices, mixed packet IDs — whatever the fuzzer finds), then frame is
// fragmented at a fuzzed MTU and must reassemble byte-identical through
// the same polluted reassembler. Nothing may panic, and no path may
// fabricate a frame larger than MaxPacketSize.
func FuzzFragRoundTrip(f *testing.F) {
	f.Add([]byte("hello"), uint16(0), []byte{})
	f.Add(bytes.Repeat([]byte{0xAB}, 5000), uint16(1144), mkFragBody(3, 0, 2, []byte("stray")))
	f.Add(bytes.Repeat([]byte{0x01}, 3000), uint16(0), mkFragBody(42, 1, 2, nil))
	f.Add([]byte{}, uint16(65535), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Fuzz(func(t *testing.T, frame []byte, mtuRaw uint16, junk []byte) {
		if len(frame) > MaxPacketSize {
			frame = frame[:MaxPacketSize]
		}
		mtu := MinMTU + int(mtuRaw)%(4*DefaultMTU)
		r := newReassembler(8, time.Second)
		now := time.Now()
		// Hostile fragments first: must not panic, must not complete a
		// packet bigger than the bound.
		if got, _ := r.add(now, junk); len(got) > MaxPacketSize {
			t.Fatalf("junk completed an oversized frame (%d bytes)", len(got))
		}
		// Honest traffic must survive the pollution. Packet ID 1<<63 keeps
		// it clear of small fuzzer-crafted IDs colliding with a different
		// count (a legitimate ErrBadFragment).
		var out []byte
		err := fragmentFrame(frame, mtu, 1<<63, func(dg []byte) error {
			if len(dg) > mtu {
				t.Fatalf("fragment %d bytes exceeds mtu %d", len(dg), mtu)
			}
			if len(frame) <= mtu {
				// Verbatim emission: the fuzzed frame is opaque bytes, not
				// necessarily a parseable TLV.
				out = append([]byte(nil), dg...)
				return nil
			}
			typ, body, perr := parseDatagram(dg)
			if perr != nil {
				return perr
			}
			if typ != typeFrag {
				t.Fatalf("fragment datagram has type %#x", typ)
			}
			// Deliver every fragment twice: duplicates must be harmless.
			if done, aerr := r.add(now, body); aerr != nil {
				return aerr
			} else if done != nil {
				out = done
			}
			if done, aerr := r.add(now, body); aerr == nil && done != nil {
				out = done
			}
			return nil
		})
		if err != nil {
			if len(frame)/(mtu-fragOverhead)+1 > maxFragCount {
				return // legitimately unfragmentable at this MTU
			}
			t.Fatalf("fragment/reassemble failed: %v", err)
		}
		if !bytes.Equal(out, frame) {
			t.Fatalf("round trip mismatch: sent %d bytes, got %d", len(frame), len(out))
		}
	})
}
