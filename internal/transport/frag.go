package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"github.com/tactic-icn/tactic/internal/ndn"
)

// Fragmentation carries TLV frames larger than the path MTU over
// datagram faces. A frame that fits in one datagram travels verbatim
// (the TLV is self-describing); a larger frame is split into typeFrag
// datagrams, each carrying a 12-byte header — packet ID (8), fragment
// index (2), fragment count (2) — followed by a slice of the original
// frame. The receiver reassembles by (packet ID, index) with bounded
// buffers and deadline eviction, so fragments may arrive reordered,
// duplicated, or never.
const (
	// typeFrag is the outer TLV type of one fragment datagram.
	typeFrag = 0x62
	// fragHeaderLen is the fixed fragment header: id(8) index(2) count(2).
	fragHeaderLen = 12
	// fragOverhead is the worst-case datagram overhead of one fragment:
	// outer type (1) + 2-byte length form (3) + the fragment header.
	fragOverhead = 1 + 3 + fragHeaderLen
	// maxFragCount bounds fragments per packet; with DefaultMTU this
	// comfortably covers MaxPacketSize.
	maxFragCount = 1024
)

// DefaultMTU is the per-datagram payload budget when UDPOptions.MTU is
// unset: conservative for 1500-byte Ethernet paths with IP/UDP headers
// and room for tunnel encapsulation.
const DefaultMTU = 1400

// MinMTU is the smallest accepted MTU.
const MinMTU = 256

// Reassembly defaults (UDPOptions.ReassemblyTimeout / ReassemblyEntries).
const (
	DefaultReassemblyTimeout = time.Second
	DefaultReassemblyEntries = 64
)

// Fragmentation errors.
var (
	// ErrBadFragment is returned for malformed fragment datagrams
	// (truncated header, zero or oversized count, index out of range,
	// empty payload, or a count disagreeing with earlier fragments of
	// the same packet).
	ErrBadFragment = errors.New("transport: malformed fragment")
	// ErrReassemblyOverflow is returned when a packet's fragments sum past
	// MaxPacketSize; the partial packet is discarded.
	ErrReassemblyOverflow = errors.New("transport: reassembled packet exceeds maximum size")
)

// appendTLVLen appends the TLV length encoding of n (the same 253/254
// variable-length form the stream framer reads).
func appendTLVLen(b []byte, n int) []byte {
	switch {
	case n < 253:
		return append(b, byte(n))
	case n <= 0xFFFF:
		return append(b, 253, byte(n>>8), byte(n))
	default:
		return append(b, 254, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	}
}

// parseDatagram splits one datagram into its outer TLV type and body.
// Unlike the stream framer, the datagram boundary is authoritative: the
// announced length must exactly fill the datagram.
func parseDatagram(dg []byte) (typ byte, body []byte, err error) {
	if len(dg) < 2 {
		return 0, nil, fmt.Errorf("transport: short datagram (%d bytes)", len(dg))
	}
	typ = dg[0]
	first := dg[1]
	var length int
	rest := dg[2:]
	switch {
	case first < 253:
		length = int(first)
	case first == 253:
		if len(rest) < 2 {
			return 0, nil, errors.New("transport: truncated length prefix")
		}
		length = int(binary.BigEndian.Uint16(rest))
		rest = rest[2:]
	case first == 254:
		if len(rest) < 4 {
			return 0, nil, errors.New("transport: truncated length prefix")
		}
		length = int(binary.BigEndian.Uint32(rest))
		rest = rest[4:]
	default:
		return 0, nil, fmt.Errorf("transport: unsupported length prefix %d", first)
	}
	if length != len(rest) {
		return 0, nil, fmt.Errorf("transport: datagram length mismatch (announced %d, carried %d)", length, len(rest))
	}
	return typ, rest, nil
}

// fragmentFrame emits frame as datagrams within mtu: verbatim when it
// fits, else as typeFrag fragments stamped with id. emit must not
// retain its argument past the call (fragments share a pooled scratch
// buffer).
func fragmentFrame(frame []byte, mtu int, id uint64, emit func(dg []byte) error) error {
	if len(frame) <= mtu {
		return emit(frame)
	}
	chunk := mtu - fragOverhead
	count := (len(frame) + chunk - 1) / chunk
	if count > maxFragCount {
		return ErrPacketTooLarge
	}
	buf := ndn.AcquireBuffer()
	defer ndn.ReleaseBuffer(buf)
	for i := 0; i < count; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(frame) {
			hi = len(frame)
		}
		dg := append((*buf)[:0], typeFrag)
		dg = appendTLVLen(dg, fragHeaderLen+hi-lo)
		dg = binary.BigEndian.AppendUint64(dg, id)
		dg = binary.BigEndian.AppendUint16(dg, uint16(i))
		dg = binary.BigEndian.AppendUint16(dg, uint16(count))
		dg = append(dg, frame[lo:hi]...)
		*buf = dg[:0] // keep any growth for the pool
		if err := emit(dg); err != nil {
			return err
		}
	}
	return nil
}

// partialPacket is one in-flight reassembly.
type partialPacket struct {
	frags    [][]byte
	have     int
	size     int
	deadline time.Time
}

// reassembler rebuilds fragmented frames. It is bounded two ways:
// at most maxEntries packets reassemble concurrently (the oldest is
// evicted when a new packet needs the slot) and every partial packet is
// evicted timeout after its first fragment. Not safe for concurrent
// use — each face's single receive loop owns one.
type reassembler struct {
	timeout    time.Duration
	maxEntries int
	entries    map[uint64]*partialPacket
	// evicted counts partial packets dropped by deadline or capacity.
	evicted uint64
}

func newReassembler(maxEntries int, timeout time.Duration) *reassembler {
	if maxEntries <= 0 {
		maxEntries = DefaultReassemblyEntries
	}
	if timeout <= 0 {
		timeout = DefaultReassemblyTimeout
	}
	return &reassembler{
		timeout:    timeout,
		maxEntries: maxEntries,
		entries:    make(map[uint64]*partialPacket),
	}
}

// add ingests one fragment body (the bytes after the typeFrag TLV
// header) and returns the complete frame when this fragment finishes a
// packet, nil otherwise. Duplicate fragments are ignored; payload bytes
// are copied, so body may be reused by the caller.
func (r *reassembler) add(now time.Time, body []byte) ([]byte, error) {
	if len(body) < fragHeaderLen {
		return nil, ErrBadFragment
	}
	id := binary.BigEndian.Uint64(body)
	index := binary.BigEndian.Uint16(body[8:])
	count := binary.BigEndian.Uint16(body[10:])
	if count == 0 || count > maxFragCount || index >= count {
		return nil, ErrBadFragment
	}
	payload := body[fragHeaderLen:]
	if len(payload) == 0 {
		// fragmentFrame never emits empty fragments, so one is hostile or
		// corrupt. Accepting it would also break bookkeeping: the stored
		// copy of a zero-length payload is a nil slice, indistinguishable
		// from a missing fragment, so duplicates would double-count and a
		// packet could "complete" with fragments absent — or complete as a
		// zero-length frame the decode path cannot index.
		return nil, ErrBadFragment
	}
	r.expire(now)
	p := r.entries[id]
	if p == nil {
		if len(r.entries) >= r.maxEntries {
			r.evictOldest()
		}
		p = &partialPacket{
			frags:    make([][]byte, count),
			deadline: now.Add(r.timeout),
		}
		r.entries[id] = p
	} else if len(p.frags) != int(count) {
		// Fragments of one packet ID disagree about the count: the stream
		// is corrupt or hostile. Discard the whole packet.
		delete(r.entries, id)
		return nil, ErrBadFragment
	}
	if p.frags[index] != nil {
		return nil, nil // duplicate
	}
	p.frags[index] = append([]byte(nil), payload...)
	p.have++
	p.size += len(payload)
	if p.size > MaxPacketSize {
		delete(r.entries, id)
		return nil, ErrReassemblyOverflow
	}
	if p.have < len(p.frags) {
		return nil, nil
	}
	delete(r.entries, id)
	frame := make([]byte, 0, p.size)
	for _, f := range p.frags {
		frame = append(frame, f...)
	}
	return frame, nil
}

// expire evicts partial packets past their deadline.
func (r *reassembler) expire(now time.Time) {
	for id, p := range r.entries {
		if now.After(p.deadline) {
			delete(r.entries, id)
			r.evicted++
		}
	}
}

// evictOldest frees one slot by dropping the entry closest to expiry.
func (r *reassembler) evictOldest() {
	var oldest uint64
	var oldestDeadline time.Time
	first := true
	for id, p := range r.entries {
		if first || p.deadline.Before(oldestDeadline) {
			oldest, oldestDeadline, first = id, p.deadline, false
		}
	}
	if !first {
		delete(r.entries, oldest)
		r.evicted++
	}
}
