// Package chaos wraps net.Conn with seeded, deterministic fault
// injection for testing the live stack's failure handling: writes can
// be dropped, duplicated, delayed, truncated (then the connection
// killed, modelling a crash mid-send), or turned into a connection
// reset. The same seed and call sequence always produces the same fault
// schedule, so chaos soaks are reproducible.
//
// Faults are injected per Write call. internal/transport flushes one
// frame per Write, so for TACTIC traffic each fault hits exactly one
// NDN packet — a dropped Write is a lost Interest or Data, matching the
// simulator's per-packet loss model (internal/sim.LinkSpec.LossProb).
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tactic-icn/tactic/internal/transport"
)

// ErrInjectedReset is the error surfaced by a Write chosen for a
// connection reset (the underlying connection is closed first).
var ErrInjectedReset = errors.New("chaos: injected connection reset")

// ErrInjectedTruncation is the error surfaced by a Write chosen for
// truncation: half the buffer is written, then the connection is
// closed, modelling a peer crashing mid-frame.
var ErrInjectedTruncation = errors.New("chaos: injected truncated write")

// Config sets per-write fault probabilities. Probabilities are
// evaluated in the field order below from a single roll, so
// Drop+Dup+Delay+Trunc+Reset should not exceed 1. The zero Config
// injects nothing.
type Config struct {
	// Seed drives the fault schedule (0 = time-seeded, not
	// reproducible).
	Seed int64
	// Drop is the probability a write silently vanishes.
	Drop float64
	// Dup is the probability a write is sent twice.
	Dup float64
	// Delay is the probability a write stalls for a uniform duration in
	// (0, MaxDelay] before proceeding.
	Delay float64
	// MaxDelay bounds an injected stall (default 10ms when Delay > 0).
	MaxDelay time.Duration
	// Trunc is the probability a write sends half its bytes and then
	// kills the connection.
	Trunc float64
	// Reset is the probability a write closes the connection and fails.
	Reset float64
	// Reorder is the probability a write is held back and re-emitted
	// after 1..MaxReorderDepth later writes have passed it — the
	// UDP-native failure mode (packets racing different paths). Only
	// meaningful on datagram conns: reordering bytes within a stream
	// would corrupt its framing, which TCP itself never does.
	Reorder float64
	// MaxReorderDepth bounds how many writes may overtake a held one
	// (default 3 when Reorder > 0). A held write with no successors is
	// effectively dropped, as a last in-flight packet can be.
	MaxReorderDepth int
}

// Stats counts injected faults on one connection.
type Stats struct {
	// Writes counts Write calls (faulted or not).
	Writes uint64
	// Drops, Dups, Delays, Truncs, Resets, Reorders count injected
	// faults.
	Drops, Dups, Delays, Truncs, Resets, Reorders uint64
}

// Conn is a net.Conn with fault injection on the write path. Reads pass
// through untouched (injecting on one peer's writes already covers the
// other's reads).
type Conn struct {
	net.Conn
	cfg Config

	mu   sync.Mutex // guards rng and held
	rng  *rand.Rand
	held []heldWrite // reorder queue: writes waiting to be overtaken

	writes, drops, dups, delays, truncs, resets, reorders atomic.Uint64
}

// heldWrite is one reordered write: emitted after countdown more
// transmitted writes pass it.
type heldWrite struct {
	data      []byte
	countdown int
}

// Wrap adds fault injection to a connection.
func Wrap(c net.Conn, cfg Config) *Conn {
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 10 * time.Millisecond
	}
	if cfg.MaxReorderDepth <= 0 {
		cfg.MaxReorderDepth = 3
	}
	return &Conn{Conn: c, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Stats snapshots the connection's fault counters.
func (c *Conn) Stats() Stats {
	return Stats{
		Writes: c.writes.Load(),
		Drops:  c.drops.Load(), Dups: c.dups.Load(), Delays: c.delays.Load(),
		Truncs: c.truncs.Load(), Resets: c.resets.Load(), Reorders: c.reorders.Load(),
	}
}

// action is one scheduled fault.
type action int

const (
	actPass action = iota
	actDrop
	actDup
	actDelay
	actTrunc
	actReset
	actReorder
)

// roll consumes one random draw and picks this write's fault; for
// reorders it also draws the displacement.
func (c *Conn) roll() (action, time.Duration, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.rng.Float64()
	switch cum := 0.0; {
	case p < cum+c.cfg.Drop:
		return actDrop, 0, 0
	case p < cum+c.cfg.Drop+c.cfg.Dup:
		return actDup, 0, 0
	case p < cum+c.cfg.Drop+c.cfg.Dup+c.cfg.Delay:
		return actDelay, time.Duration(c.rng.Int63n(int64(c.cfg.MaxDelay))) + 1, 0
	case p < cum+c.cfg.Drop+c.cfg.Dup+c.cfg.Delay+c.cfg.Trunc:
		return actTrunc, 0, 0
	case p < cum+c.cfg.Drop+c.cfg.Dup+c.cfg.Delay+c.cfg.Trunc+c.cfg.Reset:
		return actReset, 0, 0
	case p < cum+c.cfg.Drop+c.cfg.Dup+c.cfg.Delay+c.cfg.Trunc+c.cfg.Reset+c.cfg.Reorder:
		return actReorder, 0, 1 + c.rng.Intn(c.cfg.MaxReorderDepth)
	}
	return actPass, 0, 0
}

// Write injects the scheduled fault, then forwards to the wrapped
// connection. Every transmitted write also advances the reorder queue:
// held writes whose displacement has been overtaken are emitted after
// it, fault-free (a packet is only reordered once).
func (c *Conn) Write(b []byte) (int, error) {
	c.writes.Add(1)
	act, delay, disp := c.roll()
	switch act {
	case actDrop:
		c.drops.Add(1)
		c.flushHeld(1) // a drop still overtakes earlier held writes
		return len(b), nil // lost on the wire; the sender can't tell
	case actDup:
		c.dups.Add(1)
		if n, err := c.Conn.Write(b); err != nil {
			return n, err
		}
		n, err := c.Conn.Write(b)
		c.flushHeld(1)
		return n, err
	case actDelay:
		c.delays.Add(1)
		time.Sleep(delay)
	case actTrunc:
		c.truncs.Add(1)
		c.Conn.Write(b[:len(b)/2]) //nolint:errcheck // the kill below decides the outcome
		c.Conn.Close()
		return len(b) / 2, ErrInjectedTruncation
	case actReset:
		c.resets.Add(1)
		c.Conn.Close()
		return 0, ErrInjectedReset
	case actReorder:
		c.reorders.Add(1)
		c.flushHeld(1) // this write event overtakes earlier held ones
		c.mu.Lock()
		c.held = append(c.held, heldWrite{data: append([]byte(nil), b...), countdown: disp})
		c.mu.Unlock()
		return len(b), nil // emitted later, after disp passing writes
	}
	n, err := c.Conn.Write(b)
	if err == nil {
		c.flushHeld(1)
	}
	return n, err
}

// flushHeld credits subsequent write events (transmitted, dropped, or
// themselves held) against the reorder queue and emits every held write
// whose displacement is spent. Crediting every event — not just
// transmitted writes — guarantees the queue drains as long as the
// sender keeps writing anything, e.g. trailing keepalives.
func (c *Conn) flushHeld(passed int) {
	c.mu.Lock()
	var due [][]byte
	kept := c.held[:0]
	for _, h := range c.held {
		h.countdown -= passed
		if h.countdown <= 0 {
			due = append(due, h.data)
		} else {
			kept = append(kept, h)
		}
	}
	c.held = kept
	c.mu.Unlock()
	for _, data := range due {
		c.Conn.Write(data) //nolint:errcheck // best-effort: a late datagram may be lost
	}
}

// Listener wraps an accepting listener so every accepted connection is
// fault-injected, each with a distinct deterministic seed derived from
// the base seed and the accept ordinal.
type Listener struct {
	net.Listener
	cfg Config
	n   atomic.Int64
}

// WrapListener adds fault injection to all accepted connections.
func WrapListener(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, cfg: cfg}
}

// Accept wraps the next accepted connection.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	cfg := l.cfg
	if cfg.Seed != 0 {
		cfg.Seed += l.n.Add(1)
	}
	return Wrap(c, cfg), nil
}

// Dialer returns a dial function whose connections are fault-injected,
// each with a distinct deterministic seed — shaped to drop into
// forwarder.UplinkConfig.Dial. The address may carry a scheme
// ("udp://host:port" dials a connected datagram socket); bare
// addresses dial TCP.
func Dialer(cfg Config) func(addr string) (net.Conn, error) {
	var n atomic.Int64
	return func(addr string) (net.Conn, error) {
		network, hostport := transport.SplitScheme(addr)
		c, err := net.DialTimeout(network, hostport, 5*time.Second)
		if err != nil {
			return nil, err
		}
		dcfg := cfg
		if dcfg.Seed != 0 {
			dcfg.Seed += n.Add(1)
		}
		return Wrap(c, dcfg), nil
	}
}

// ParseSpec parses a compact fault spec of comma-separated key=value
// pairs: drop, dup, delay, trunc, reset, reorder (probabilities in
// [0,1]), maxdelay (a duration), reorderdepth (a positive int), and
// seed (int64). Example:
//
//	drop=0.05,dup=0.01,delay=0.1,maxdelay=20ms,reset=0.001,reorder=0.05,seed=7
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	total := 0.0
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return cfg, fmt.Errorf("chaos: bad spec element %q (want key=value)", part)
		}
		switch key {
		case "drop", "dup", "delay", "trunc", "reset", "reorder":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return cfg, fmt.Errorf("chaos: bad probability %q for %s", val, key)
			}
			total += p
			switch key {
			case "drop":
				cfg.Drop = p
			case "dup":
				cfg.Dup = p
			case "delay":
				cfg.Delay = p
			case "trunc":
				cfg.Trunc = p
			case "reset":
				cfg.Reset = p
			case "reorder":
				cfg.Reorder = p
			}
		case "reorderdepth":
			d, err := strconv.Atoi(val)
			if err != nil || d < 1 {
				return cfg, fmt.Errorf("chaos: bad reorderdepth %q", val)
			}
			cfg.MaxReorderDepth = d
		case "maxdelay":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return cfg, fmt.Errorf("chaos: bad maxdelay %q", val)
			}
			cfg.MaxDelay = d
		case "seed":
			s, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("chaos: bad seed %q", val)
			}
			cfg.Seed = s
		default:
			return cfg, fmt.Errorf("chaos: unknown spec key %q", key)
		}
	}
	if total > 1 {
		return cfg, fmt.Errorf("chaos: fault probabilities sum to %g (> 1)", total)
	}
	return cfg, nil
}
