// Package chaos wraps net.Conn with seeded, deterministic fault
// injection for testing the live stack's failure handling: writes can
// be dropped, duplicated, delayed, truncated (then the connection
// killed, modelling a crash mid-send), or turned into a connection
// reset. The same seed and call sequence always produces the same fault
// schedule, so chaos soaks are reproducible.
//
// Faults are injected per Write call. internal/transport flushes one
// frame per Write, so for TACTIC traffic each fault hits exactly one
// NDN packet — a dropped Write is a lost Interest or Data, matching the
// simulator's per-packet loss model (internal/sim.LinkSpec.LossProb).
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedReset is the error surfaced by a Write chosen for a
// connection reset (the underlying connection is closed first).
var ErrInjectedReset = errors.New("chaos: injected connection reset")

// ErrInjectedTruncation is the error surfaced by a Write chosen for
// truncation: half the buffer is written, then the connection is
// closed, modelling a peer crashing mid-frame.
var ErrInjectedTruncation = errors.New("chaos: injected truncated write")

// Config sets per-write fault probabilities. Probabilities are
// evaluated in the field order below from a single roll, so
// Drop+Dup+Delay+Trunc+Reset should not exceed 1. The zero Config
// injects nothing.
type Config struct {
	// Seed drives the fault schedule (0 = time-seeded, not
	// reproducible).
	Seed int64
	// Drop is the probability a write silently vanishes.
	Drop float64
	// Dup is the probability a write is sent twice.
	Dup float64
	// Delay is the probability a write stalls for a uniform duration in
	// (0, MaxDelay] before proceeding.
	Delay float64
	// MaxDelay bounds an injected stall (default 10ms when Delay > 0).
	MaxDelay time.Duration
	// Trunc is the probability a write sends half its bytes and then
	// kills the connection.
	Trunc float64
	// Reset is the probability a write closes the connection and fails.
	Reset float64
}

// Stats counts injected faults on one connection.
type Stats struct {
	// Writes counts Write calls (faulted or not).
	Writes uint64
	// Drops, Dups, Delays, Truncs, Resets count injected faults.
	Drops, Dups, Delays, Truncs, Resets uint64
}

// Conn is a net.Conn with fault injection on the write path. Reads pass
// through untouched (injecting on one peer's writes already covers the
// other's reads).
type Conn struct {
	net.Conn
	cfg Config

	mu  sync.Mutex // guards rng
	rng *rand.Rand

	writes, drops, dups, delays, truncs, resets atomic.Uint64
}

// Wrap adds fault injection to a connection.
func Wrap(c net.Conn, cfg Config) *Conn {
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 10 * time.Millisecond
	}
	return &Conn{Conn: c, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Stats snapshots the connection's fault counters.
func (c *Conn) Stats() Stats {
	return Stats{
		Writes: c.writes.Load(),
		Drops:  c.drops.Load(), Dups: c.dups.Load(), Delays: c.delays.Load(),
		Truncs: c.truncs.Load(), Resets: c.resets.Load(),
	}
}

// action is one scheduled fault.
type action int

const (
	actPass action = iota
	actDrop
	actDup
	actDelay
	actTrunc
	actReset
)

// roll consumes one random draw and picks this write's fault.
func (c *Conn) roll() (action, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.rng.Float64()
	switch cum := 0.0; {
	case p < cum+c.cfg.Drop:
		return actDrop, 0
	case p < cum+c.cfg.Drop+c.cfg.Dup:
		return actDup, 0
	case p < cum+c.cfg.Drop+c.cfg.Dup+c.cfg.Delay:
		return actDelay, time.Duration(c.rng.Int63n(int64(c.cfg.MaxDelay))) + 1
	case p < cum+c.cfg.Drop+c.cfg.Dup+c.cfg.Delay+c.cfg.Trunc:
		return actTrunc, 0
	case p < cum+c.cfg.Drop+c.cfg.Dup+c.cfg.Delay+c.cfg.Trunc+c.cfg.Reset:
		return actReset, 0
	}
	return actPass, 0
}

// Write injects the scheduled fault, then forwards to the wrapped
// connection.
func (c *Conn) Write(b []byte) (int, error) {
	c.writes.Add(1)
	act, delay := c.roll()
	switch act {
	case actDrop:
		c.drops.Add(1)
		return len(b), nil // lost on the wire; the sender can't tell
	case actDup:
		c.dups.Add(1)
		if n, err := c.Conn.Write(b); err != nil {
			return n, err
		}
		return c.Conn.Write(b)
	case actDelay:
		c.delays.Add(1)
		time.Sleep(delay)
	case actTrunc:
		c.truncs.Add(1)
		c.Conn.Write(b[:len(b)/2]) //nolint:errcheck // the kill below decides the outcome
		c.Conn.Close()
		return len(b) / 2, ErrInjectedTruncation
	case actReset:
		c.resets.Add(1)
		c.Conn.Close()
		return 0, ErrInjectedReset
	}
	return c.Conn.Write(b)
}

// Listener wraps an accepting listener so every accepted connection is
// fault-injected, each with a distinct deterministic seed derived from
// the base seed and the accept ordinal.
type Listener struct {
	net.Listener
	cfg Config
	n   atomic.Int64
}

// WrapListener adds fault injection to all accepted connections.
func WrapListener(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, cfg: cfg}
}

// Accept wraps the next accepted connection.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	cfg := l.cfg
	if cfg.Seed != 0 {
		cfg.Seed += l.n.Add(1)
	}
	return Wrap(c, cfg), nil
}

// Dialer returns a TCP dial function whose connections are
// fault-injected, each with a distinct deterministic seed — shaped to
// drop into forwarder.UplinkConfig.Dial.
func Dialer(cfg Config) func(addr string) (net.Conn, error) {
	var n atomic.Int64
	return func(addr string) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			return nil, err
		}
		dcfg := cfg
		if dcfg.Seed != 0 {
			dcfg.Seed += n.Add(1)
		}
		return Wrap(c, dcfg), nil
	}
}

// ParseSpec parses a compact fault spec of comma-separated key=value
// pairs: drop, dup, delay, trunc, reset (probabilities in [0,1]),
// maxdelay (a duration), and seed (int64). Example:
//
//	drop=0.05,dup=0.01,delay=0.1,maxdelay=20ms,reset=0.001,seed=7
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	total := 0.0
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return cfg, fmt.Errorf("chaos: bad spec element %q (want key=value)", part)
		}
		switch key {
		case "drop", "dup", "delay", "trunc", "reset":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return cfg, fmt.Errorf("chaos: bad probability %q for %s", val, key)
			}
			total += p
			switch key {
			case "drop":
				cfg.Drop = p
			case "dup":
				cfg.Dup = p
			case "delay":
				cfg.Delay = p
			case "trunc":
				cfg.Trunc = p
			case "reset":
				cfg.Reset = p
			}
		case "maxdelay":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return cfg, fmt.Errorf("chaos: bad maxdelay %q", val)
			}
			cfg.MaxDelay = d
		case "seed":
			s, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("chaos: bad seed %q", val)
			}
			cfg.Seed = s
		default:
			return cfg, fmt.Errorf("chaos: unknown spec key %q", key)
		}
	}
	if total > 1 {
		return cfg, fmt.Errorf("chaos: fault probabilities sum to %g (> 1)", total)
	}
	return cfg, nil
}
