package chaos

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/ndn"
	"github.com/tactic-icn/tactic/internal/transport"
)

// memConn is a net.Conn stub recording writes.
type memConn struct {
	net.Conn
	writes [][]byte
	closed bool
}

func (m *memConn) Write(b []byte) (int, error) {
	cp := append([]byte(nil), b...)
	m.writes = append(m.writes, cp)
	return len(b), nil
}
func (m *memConn) Close() error { m.closed = true; return nil }

func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 42, Drop: 0.3, Dup: 0.2, Delay: 0.1, MaxDelay: time.Microsecond}
	schedule := func() []Stats {
		m := &memConn{}
		c := Wrap(m, cfg)
		var out []Stats
		for i := 0; i < 50; i++ {
			c.Write([]byte{byte(i)}) //nolint:errcheck
			out = append(out, c.Stats())
		}
		return out
	}
	a, b := schedule(), schedule()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at write %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	last := a[len(a)-1]
	if last.Drops == 0 || last.Dups == 0 {
		t.Errorf("50 writes at 30%%/20%% injected no drops or no dups: %+v", last)
	}
}

func TestDropSwallowsWrites(t *testing.T) {
	m := &memConn{}
	c := Wrap(m, Config{Seed: 1, Drop: 1})
	n, err := c.Write([]byte("abc"))
	if err != nil || n != 3 {
		t.Fatalf("dropped write returned (%d, %v), want success", n, err)
	}
	if len(m.writes) != 0 {
		t.Errorf("dropped write reached the wire: %v", m.writes)
	}
}

func TestDupWritesTwice(t *testing.T) {
	m := &memConn{}
	c := Wrap(m, Config{Seed: 1, Dup: 1})
	if _, err := c.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if len(m.writes) != 2 {
		t.Fatalf("dup produced %d writes, want 2", len(m.writes))
	}
}

func TestResetClosesAndFails(t *testing.T) {
	m := &memConn{}
	c := Wrap(m, Config{Seed: 1, Reset: 1})
	if _, err := c.Write([]byte("abc")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("err = %v, want ErrInjectedReset", err)
	}
	if !m.closed {
		t.Error("reset did not close the underlying connection")
	}
}

func TestTruncWritesHalfAndCloses(t *testing.T) {
	m := &memConn{}
	c := Wrap(m, Config{Seed: 1, Trunc: 1})
	if _, err := c.Write([]byte("abcd")); !errors.Is(err, ErrInjectedTruncation) {
		t.Fatalf("err = %v, want ErrInjectedTruncation", err)
	}
	if len(m.writes) != 1 || len(m.writes[0]) != 2 {
		t.Errorf("truncation wrote %v, want one 2-byte write", m.writes)
	}
	if !m.closed {
		t.Error("truncation did not close the underlying connection")
	}
}

// TestChaosUnderTransport runs real framed traffic through a dup-only
// chaos conn and checks the receiver sees the duplicate frame — i.e.
// chaos composes with internal/transport framing.
func TestChaosUnderTransport(t *testing.T) {
	a, b := net.Pipe()
	sender := transport.New(Wrap(a, Config{Seed: 9, Dup: 1}))
	receiver := transport.New(b)
	defer sender.Close()
	defer receiver.Close()

	go sender.SendInterest(&ndn.Interest{Name: names.MustParse("/x/y"), Kind: ndn.KindContent, Nonce: 5}) //nolint:errcheck
	for i := 0; i < 2; i++ {
		pkt, err := receiver.Receive()
		if err != nil {
			t.Fatalf("copy %d: %v", i, err)
		}
		if pkt.Interest == nil || pkt.Interest.Nonce != 5 {
			t.Fatalf("copy %d corrupted: %+v", i, pkt)
		}
	}
}

// TestChaosResetIsFatalToTransport checks the contract the forwarder's
// face recycling relies on: an injected reset surfaces as a fatal
// transport error on the write side.
func TestChaosResetIsFatalToTransport(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	conn := transport.New(Wrap(a, Config{Seed: 3, Reset: 1}))
	err := conn.SendInterest(&ndn.Interest{Name: names.MustParse("/x/y"), Kind: ndn.KindContent, Nonce: 1})
	if err == nil {
		t.Fatal("write through reset chaos succeeded")
	}
	if !transport.IsFatal(err) {
		t.Errorf("injected reset not fatal: %v", err)
	}
	if !errors.Is(err, ErrInjectedReset) {
		t.Errorf("cause lost: %v", err)
	}
	conn.Close()
	// The peer sees the stream end.
	if _, err := transport.New(b).Receive(); !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrClosedPipe) {
		t.Logf("peer read after reset: %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("drop=0.05,dup=0.01,delay=0.1,maxdelay=20ms,trunc=0.02,reset=0.001,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 7, Drop: 0.05, Dup: 0.01, Delay: 0.1, MaxDelay: 20 * time.Millisecond, Trunc: 0.02, Reset: 0.001}
	if cfg != want {
		t.Errorf("cfg = %+v, want %+v", cfg, want)
	}
	if cfg, err := ParseSpec(""); err != nil || cfg != (Config{}) {
		t.Errorf("empty spec: %+v, %v", cfg, err)
	}
	for _, bad := range []string{"drop", "drop=2", "drop=-1", "maxdelay=xx", "seed=abc", "wat=1", "drop=0.9,dup=0.9"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
