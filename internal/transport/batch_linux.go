//go:build linux && (amd64 || arm64)

// Batched UDP syscalls: recvmmsg/sendmmsg move up to batchMax datagrams
// per kernel crossing, and — where the kernel supports it — UDP
// generic segmentation/receive offload (UDP_SEGMENT / UDP_GRO) packs
// runs of equal-size datagrams to one peer into a single super-datagram
// that traverses the stack once, which is where the real per-packet
// cost lives. The stdlib does not expose any of this, and this repo
// carries no dependencies, so the calls go through syscall.Syscall6
// against a hand-laid-out mmsghdr — identical on linux/amd64 and
// linux/arm64 (64-bit, same struct padding). Other platforms fall back
// to single-datagram I/O (batch_other.go).
package transport

import (
	"math/bits"
	"net"
	"net/netip"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// Syscall numbers: identical meaning, different numbering per arch
// (resolved in batch_nums_*.go).

const (
	// batchMax is the number of messages moved per syscall; with GSO a
	// message can itself carry up to gsoMaxSegs datagrams.
	batchMax = 32

	// solUDP / udpSegment / udpGRO are the UDP offload socket options
	// (missing from the syscall package).
	solUDP     = 17
	udpSegment = 103
	udpGRO     = 104

	// gsoMaxSegs caps datagrams per GSO send (kernel UDP_MAX_SEGMENTS
	// is 64) and gsoMaxBytes keeps the super-datagram inside one UDP
	// payload.
	gsoMaxSegs  = 64
	gsoMaxBytes = 60 << 10

	// groBufBytes sizes receive buffers when GRO is on: the kernel may
	// coalesce up to ~64 KB of segments into one message.
	groBufBytes = 64 << 10
)

// cmsgSpace16 is CMSG_SPACE(sizeof(uint16)) on 64-bit: a 16-byte
// cmsghdr plus 2 data bytes, rounded up to 8-byte alignment.
const cmsgSpace16 = 24

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-filled
// datagram length. The trailing pad keeps the array stride at what the
// kernel expects on 64-bit (sizeof(struct mmsghdr) == 64).
type mmsghdr struct {
	hdr  syscall.Msghdr
	mlen uint32
	_    [4]byte
}

// batchIO owns the scatter-gather state for one socket: fixed receive
// buffers reused across batches (zero-copy from the syscall's view —
// the kernel writes straight into them), per-slot sockaddr storage,
// per-slot iovec arrays for GSO sends, and per-slot cmsg buffers.
type batchIO struct {
	raw syscall.RawConn
	// v6 marks a v6 (possibly dual-stack) socket: v4 destinations are
	// sent as v4-mapped v6 sockaddrs.
	v6 bool
	// gso / gro record offload support probed at socket setup. gso may
	// flip off at runtime (writeBatch's fallback) and is only touched by
	// the write loop; gsoProbed keeps the immutable probe result for
	// observers, and fallbacks counts the runtime disable transitions so
	// scrapers never race the write loop's plain bool.
	gso, gro  bool
	gsoProbed bool
	fallbacks atomic.Uint64

	rhdrs  [batchMax]mmsghdr
	riovs  [batchMax]syscall.Iovec
	rnames [batchMax]syscall.RawSockaddrAny
	rbufs  [batchMax][]byte
	rctrls [batchMax][cmsgSpace16]byte

	shdrs  [batchMax]mmsghdr
	siovs  [batchMax][gsoMaxSegs]syscall.Iovec
	snames [batchMax]syscall.RawSockaddrAny
	sctrls [batchMax][cmsgSpace16]byte
}

// newBatchIO prepares batch state for pc, or nil when the socket does
// not expose a raw descriptor.
func newBatchIO(pc *net.UDPConn, bufSize int) *batchIO {
	raw, err := pc.SyscallConn()
	if err != nil {
		return nil
	}
	b := &batchIO{raw: raw}
	if la, ok := pc.LocalAddr().(*net.UDPAddr); ok && la.IP.To4() == nil {
		b.v6 = true
	}
	// Probe the UDP offloads: setting UDP_SEGMENT to 0 (off) succeeds
	// exactly when the kernel knows the option, and UDP_GRO arms
	// coalesced receives for the socket's lifetime.
	raw.Control(func(fd uintptr) { //nolint:errcheck // probe only
		if syscall.SetsockoptInt(int(fd), solUDP, udpSegment, 0) == nil {
			b.gso = true
			b.gsoProbed = true
		}
		if syscall.SetsockoptInt(int(fd), solUDP, udpGRO, 1) == nil {
			b.gro = true
		}
	})
	if b.gro && bufSize < groBufBytes {
		bufSize = groBufBytes
	}
	for i := range b.rbufs {
		b.rbufs[i] = make([]byte, bufSize)
		b.riovs[i].Base = &b.rbufs[i][0]
		b.riovs[i].SetLen(bufSize)
		b.rhdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&b.rnames[i]))
		b.rhdrs[i].hdr.Iov = &b.riovs[i]
		b.rhdrs[i].hdr.Iovlen = 1
		if b.gro {
			b.rhdrs[i].hdr.Control = &b.rctrls[i][0]
		}
		b.shdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&b.snames[i]))
		b.shdrs[i].hdr.Iov = &b.siovs[i][0]
		b.shdrs[i].hdr.Iovlen = 1
	}
	return b
}

// readBatch blocks (via the runtime netpoller) until at least one
// datagram is readable, then drains up to batchMax messages in one
// recvmmsg. Returns the number of messages; index them with msg.
func (b *batchIO) readBatch() (int, error) {
	for i := range b.rhdrs {
		b.rhdrs[i].hdr.Namelen = syscall.SizeofSockaddrAny
		// Flags must clear every round: the kernel writes MSG_TRUNC there
		// when a datagram outgrows the buffer, and stale flags would mark
		// later datagrams in the slot as truncated.
		b.rhdrs[i].hdr.Flags = 0
		if b.gro {
			b.rhdrs[i].hdr.SetControllen(cmsgSpace16)
		}
	}
	var n int
	var serr error
	err := b.raw.Read(func(fd uintptr) bool {
		for {
			r1, _, e := syscall.Syscall6(sysRecvmmsg, fd,
				uintptr(unsafe.Pointer(&b.rhdrs[0])), batchMax,
				syscall.MSG_DONTWAIT, 0, 0)
			switch e {
			case 0:
				n = int(r1)
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // netpoller parks until readable
			default:
				serr = e
				return true
			}
		}
	})
	if err != nil {
		return 0, err
	}
	return n, serr
}

// msg returns the i-th received message of the last readBatch plus its
// GRO segment size (0 = a plain datagram) and whether the kernel
// truncated it to fit the buffer (MSG_TRUNC — the sender's datagram was
// oversized and data is incomplete). When seg > 0 the bytes hold
// several coalesced datagrams: every seg bytes starts a new one, the
// last possibly shorter. The bytes alias the batch buffer — valid only
// until the next readBatch.
func (b *batchIO) msg(i int) (data []byte, addr netip.AddrPort, seg int, truncated bool) {
	data = b.rbufs[i][:b.rhdrs[i].mlen]
	addr = parseRawSockaddr(&b.rnames[i])
	if b.gro {
		seg = parseGROSegSize(b.rctrls[i][:], int(b.rhdrs[i].hdr.Controllen))
	}
	truncated = b.rhdrs[i].hdr.Flags&syscall.MSG_TRUNC != 0
	return data, addr, seg, truncated
}

// parseGROSegSize walks a control buffer for the UDP_GRO cmsg and
// returns its segment size, or 0 when absent.
func parseGROSegSize(ctrl []byte, n int) int {
	const hdrLen = syscall.SizeofCmsghdr
	for off := 0; off+hdrLen <= n && off+hdrLen <= len(ctrl); {
		h := (*syscall.Cmsghdr)(unsafe.Pointer(&ctrl[off]))
		if h.Len < hdrLen {
			return 0
		}
		if h.Level == solUDP && h.Type == udpGRO && off+hdrLen+2 <= len(ctrl) {
			return int(*(*uint16)(unsafe.Pointer(&ctrl[off+hdrLen])))
		}
		off += (int(h.Len) + 7) &^ 7
	}
	return 0
}

// putGSOCmsg fills one UDP_SEGMENT control message announcing seg-byte
// datagram boundaries inside the send buffer.
func putGSOCmsg(ctrl *[cmsgSpace16]byte, seg uint16) {
	h := (*syscall.Cmsghdr)(unsafe.Pointer(&ctrl[0]))
	h.Level = solUDP
	h.Type = udpSegment
	h.SetLen(syscall.CmsgLen(2))
	*(*uint16)(unsafe.Pointer(&ctrl[syscall.SizeofCmsghdr])) = seg
}

// writeBatch sends every datagram in msgs. Consecutive datagrams to
// the same peer with the same size are packed into one GSO
// super-datagram (one kernel traversal for up to gsoMaxSegs of them);
// up to batchMax such messages go out per sendmmsg. Send errors skip
// the offending message — UDP is lossy by contract, and stalling the
// whole queue on one bad destination would be worse — except that an
// error on a GSO message disables the offload and retries its
// datagrams individually, so a path that rejects GSO degrades instead
// of dropping bursts.
func (b *batchIO) writeBatch(msgs []outDatagram) {
	for len(msgs) > 0 {
		nb := 0       // mmsghdr slots filled
		consumed := 0 // datagrams packed into those slots
		var starts, runs [batchMax]int
		for nb < batchMax && consumed < len(msgs) {
			m := msgs[consumed]
			size := len(*m.buf)
			run := 1
			if b.gso && size > 0 {
				for run < gsoMaxSegs &&
					consumed+run < len(msgs) &&
					msgs[consumed+run].addr == m.addr &&
					len(*msgs[consumed+run].buf) == size &&
					(run+1)*size <= gsoMaxBytes {
					run++
				}
			}
			for k := 0; k < run; k++ {
				b.siovs[nb][k].Base = &(*msgs[consumed+k].buf)[0]
				b.siovs[nb][k].SetLen(size)
			}
			b.shdrs[nb].hdr.Iovlen = uint64(run)
			b.shdrs[nb].hdr.Namelen = putRawSockaddr(&b.snames[nb], m.addr, b.v6)
			if run > 1 {
				putGSOCmsg(&b.sctrls[nb], uint16(size))
				b.shdrs[nb].hdr.Control = &b.sctrls[nb][0]
				b.shdrs[nb].hdr.SetControllen(cmsgSpace16)
			} else {
				b.shdrs[nb].hdr.Control = nil
				b.shdrs[nb].hdr.SetControllen(0)
			}
			starts[nb], runs[nb] = consumed, run
			nb++
			consumed += run
		}
		sent := 0
		regroup := false
		for sent < nb {
			var n int
			var serr syscall.Errno
			err := b.raw.Write(func(fd uintptr) bool {
				for {
					r1, _, e := syscall.Syscall6(sysSendmmsg, fd,
						uintptr(unsafe.Pointer(&b.shdrs[sent])), uintptr(nb-sent),
						syscall.MSG_DONTWAIT, 0, 0)
					switch e {
					case 0:
						n = int(r1)
						return true
					case syscall.EINTR:
						continue
					case syscall.EAGAIN:
						return false // netpoller parks until writable
					default:
						serr = e
						return true
					}
				}
			})
			if err != nil {
				return // socket closed; drop the rest
			}
			if serr != 0 {
				if runs[sent] > 1 {
					// The kernel rejected a GSO message: turn the offload
					// off and replay its datagrams one per message.
					b.gso = false
					b.fallbacks.Add(1)
					msgs = msgs[starts[sent]:]
					regroup = true
					break
				}
				sent++ // skip the single datagram the kernel rejected
				continue
			}
			sent += n
		}
		if regroup {
			continue
		}
		msgs = msgs[consumed:]
	}
}

// stats reports the probed offload support and how many times the GSO
// fallback fired. It reads only immutable and atomic state, so it is
// safe to call from a metrics scraper while the write loop runs; GSO is
// effectively active when gsoProbed && fallbacks == 0.
func (b *batchIO) stats() (gso, gro bool, fallbacks uint64) {
	if b == nil {
		return false, false, 0
	}
	return b.gsoProbed, b.gro, b.fallbacks.Load()
}

// htons converts a port to the network byte order a raw sockaddr
// stores (read natively, the bytes appear swapped on little-endian).
func htons(p uint16) uint16 { return bits.ReverseBytes16(p) }

// parseRawSockaddr converts a kernel-filled sockaddr to an AddrPort.
func parseRawSockaddr(rsa *syscall.RawSockaddrAny) netip.AddrPort {
	switch rsa.Addr.Family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		return netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), htons(sa.Port))
	case syscall.AF_INET6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(rsa))
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr).Unmap(), htons(sa.Port))
	}
	return netip.AddrPort{}
}

// putRawSockaddr encodes ap into rsa, returning the sockaddr length.
// On a v6 socket v4 destinations become v4-mapped v6 addresses.
func putRawSockaddr(rsa *syscall.RawSockaddrAny, ap netip.AddrPort, v6 bool) uint32 {
	if ap.Addr().Unmap().Is4() && !v6 {
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		*sa = syscall.RawSockaddrInet4{
			Family: syscall.AF_INET,
			Port:   htons(ap.Port()),
			Addr:   ap.Addr().Unmap().As4(),
		}
		return syscall.SizeofSockaddrInet4
	}
	sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(rsa))
	*sa = syscall.RawSockaddrInet6{
		Family: syscall.AF_INET6,
		Port:   htons(ap.Port()),
		Addr:   ap.Addr().As16(), // As16 yields the v4-mapped form for v4
	}
	return uint32(syscall.SizeofSockaddrInet6)
}
