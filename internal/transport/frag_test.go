package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"time"
)

// mkFragBody builds one fragment body (header + payload) by hand.
func mkFragBody(id uint64, index, count uint16, payload []byte) []byte {
	b := binary.BigEndian.AppendUint64(nil, id)
	b = binary.BigEndian.AppendUint16(b, index)
	b = binary.BigEndian.AppendUint16(b, count)
	return append(b, payload...)
}

// reassemble runs a frame through fragmentFrame and a fresh
// reassembler, returning the rebuilt frame.
func reassemble(t *testing.T, frame []byte, mtu int) []byte {
	t.Helper()
	r := newReassembler(0, 0)
	var out []byte
	err := fragmentFrame(frame, mtu, 42, func(dg []byte) error {
		if len(dg) > mtu {
			t.Fatalf("fragment datagram %d bytes exceeds mtu %d", len(dg), mtu)
		}
		if len(frame) <= mtu {
			// Sub-MTU frames are emitted verbatim, not wrapped: the frame
			// bytes here are opaque, so there is nothing to parse.
			out = append([]byte(nil), dg...)
			return nil
		}
		typ, body, err := parseDatagram(dg)
		if err != nil {
			return err
		}
		if typ != typeFrag {
			t.Fatalf("expected frag type, got %#x", typ)
		}
		got, err := r.add(time.Now(), body)
		if err != nil {
			return err
		}
		if got != nil {
			out = got
		}
		return nil
	})
	if err != nil {
		t.Fatalf("fragment: %v", err)
	}
	return out
}

func TestFragRoundTrip(t *testing.T) {
	for _, size := range []int{0, 1, 255, 256, 1399, 1400, 1401, 2800, 5000, 64 << 10} {
		frame := make([]byte, size)
		for i := range frame {
			frame[i] = byte(i * 7)
		}
		got := reassemble(t, frame, DefaultMTU)
		if !bytes.Equal(got, frame) {
			t.Fatalf("size %d: round trip mismatch (got %d bytes)", size, len(got))
		}
	}
}

func TestFragRoundTripSmallMTU(t *testing.T) {
	frame := make([]byte, 10_000)
	for i := range frame {
		frame[i] = byte(i)
	}
	if got := reassemble(t, frame, MinMTU); !bytes.Equal(got, frame) {
		t.Fatal("round trip mismatch at MinMTU")
	}
}

func TestFragTooManyFragments(t *testing.T) {
	frame := make([]byte, MaxPacketSize)
	err := fragmentFrame(frame, MinMTU, 1, func([]byte) error { return nil })
	if !errors.Is(err, ErrPacketTooLarge) {
		t.Fatalf("expected ErrPacketTooLarge, got %v", err)
	}
}

func TestReassemblerOutOfOrderAndDuplicates(t *testing.T) {
	r := newReassembler(4, time.Second)
	now := time.Now()
	// Three fragments delivered reversed, with a duplicate in between.
	for _, idx := range []uint16{2, 1, 1} {
		frame, err := r.add(now, mkFragBody(7, idx, 3, []byte{byte(idx)}))
		if err != nil || frame != nil {
			t.Fatalf("fragment %d: frame=%v err=%v", idx, frame, err)
		}
	}
	frame, err := r.add(now, mkFragBody(7, 0, 3, []byte{0}))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, []byte{0, 1, 2}) {
		t.Fatalf("reassembled %v", frame)
	}
}

func TestReassemblerTimeoutEviction(t *testing.T) {
	r := newReassembler(4, 50*time.Millisecond)
	start := time.Now()
	if _, err := r.add(start, mkFragBody(1, 0, 2, []byte("a"))); err != nil {
		t.Fatal(err)
	}
	// Past the deadline the partial packet is evicted; its straggler
	// starts a new (incomplete) packet instead of completing the old one.
	late := start.Add(100 * time.Millisecond)
	frame, err := r.add(late, mkFragBody(1, 1, 2, []byte("b")))
	if err != nil || frame != nil {
		t.Fatalf("straggler after eviction: frame=%q err=%v", frame, err)
	}
	if r.evicted != 1 {
		t.Fatalf("evicted=%d, want 1", r.evicted)
	}
}

func TestReassemblerCapacityEviction(t *testing.T) {
	r := newReassembler(2, time.Minute)
	now := time.Now()
	r.add(now, mkFragBody(1, 0, 2, []byte("a")))                     //nolint:errcheck
	r.add(now.Add(time.Millisecond), mkFragBody(2, 0, 2, []byte("b"))) //nolint:errcheck
	// A third packet evicts the oldest (id 1).
	r.add(now.Add(2*time.Millisecond), mkFragBody(3, 0, 2, []byte("c"))) //nolint:errcheck
	if len(r.entries) != 2 {
		t.Fatalf("entries=%d, want 2", len(r.entries))
	}
	if _, ok := r.entries[1]; ok {
		t.Fatal("oldest packet survived capacity eviction")
	}
}

func TestReassemblerRejectsMalformed(t *testing.T) {
	r := newReassembler(4, time.Second)
	now := time.Now()
	cases := [][]byte{
		nil,                                // truncated header
		mkFragBody(1, 0, 0, nil),           // zero count
		mkFragBody(1, 5, 5, nil),           // index out of range
		mkFragBody(1, 0, maxFragCount+1, nil), // oversized count
		mkFragBody(1, 0, 1, nil),           // empty payload, count=1: would complete empty
		mkFragBody(1, 0, 2, nil),           // empty payload mid-packet
	}
	for i, body := range cases {
		if _, err := r.add(now, body); !errors.Is(err, ErrBadFragment) {
			t.Fatalf("case %d: expected ErrBadFragment, got %v", i, err)
		}
	}
	// Count mismatch across fragments of one packet discards the packet.
	r.add(now, mkFragBody(9, 0, 3, []byte("x"))) //nolint:errcheck
	if _, err := r.add(now, mkFragBody(9, 0, 2, []byte("y"))); !errors.Is(err, ErrBadFragment) {
		t.Fatalf("count mismatch: %v", err)
	}
	if _, ok := r.entries[9]; ok {
		t.Fatal("mismatched packet not discarded")
	}
}

func TestReassemblerNeverCompletesEmptyFrame(t *testing.T) {
	// A single-fragment packet with an empty payload must be rejected,
	// not reassembled into a zero-length frame: the receive path indexes
	// frame[0], so an empty completion would panic it on remote input.
	r := newReassembler(4, time.Second)
	frame, err := r.add(time.Now(), mkFragBody(99, 0, 1, nil))
	if !errors.Is(err, ErrBadFragment) {
		t.Fatalf("expected ErrBadFragment, got frame=%v err=%v", frame, err)
	}
	if frame != nil {
		t.Fatalf("empty fragment completed a %d-byte frame", len(frame))
	}
}

func TestReassemblerEmptyDuplicateCannotFakeCompletion(t *testing.T) {
	// Before payload receipt was tracked by a non-nil slice invariant, a
	// duplicated zero-length fragment double-counted have and completed a
	// packet with fragments missing. Empty payloads are now rejected
	// outright; a packet must still need every distinct index.
	r := newReassembler(4, time.Second)
	now := time.Now()
	if _, err := r.add(now, mkFragBody(5, 0, 3, nil)); !errors.Is(err, ErrBadFragment) {
		t.Fatalf("empty fragment accepted: %v", err)
	}
	if _, err := r.add(now, mkFragBody(5, 0, 3, nil)); !errors.Is(err, ErrBadFragment) {
		t.Fatalf("duplicate empty fragment accepted: %v", err)
	}
	r.add(now, mkFragBody(5, 0, 3, []byte("a"))) //nolint:errcheck
	r.add(now, mkFragBody(5, 1, 3, []byte("b"))) //nolint:errcheck
	// Duplicate of index 1 must not stand in for the missing index 2.
	frame, err := r.add(now, mkFragBody(5, 1, 3, []byte("b")))
	if err != nil || frame != nil {
		t.Fatalf("duplicate completed packet: frame=%v err=%v", frame, err)
	}
	frame, err = r.add(now, mkFragBody(5, 2, 3, []byte("c")))
	if err != nil || !bytes.Equal(frame, []byte("abc")) {
		t.Fatalf("completion: frame=%q err=%v", frame, err)
	}
}

func TestParseDatagramLengthMismatch(t *testing.T) {
	if _, _, err := parseDatagram([]byte{typeInterest, 5, 1, 2}); err == nil {
		t.Fatal("short body accepted")
	}
	if _, _, err := parseDatagram([]byte{typeInterest, 1, 1, 2}); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	typ, body, err := parseDatagram([]byte{typeKeepalive, 0})
	if err != nil || typ != typeKeepalive || len(body) != 0 {
		t.Fatalf("keepalive: typ=%#x body=%v err=%v", typ, body, err)
	}
}
