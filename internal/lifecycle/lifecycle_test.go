package lifecycle

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/pki"
)

func testSigner(t testing.TB, seed int64) *pki.FastKeyPair {
	t.Helper()
	signer, err := pki.GenerateFast(rand.New(rand.NewSource(seed)), names.MustParse("/prov0/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	return signer
}

func TestIssueRenewRevoke(t *testing.T) {
	s, err := Open("", testSigner(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	expiry := time.Unix(5000, 0)
	tag, err := s.Issue(names.MustParse("/u/alice/KEY/1"), 2, core.AccessPathOf("ap0"), expiry)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := s.Lookup(tag.ID())
	if !ok || rec.Status != StatusActive || rec.Level != 2 || !rec.Expiry.Equal(expiry) {
		t.Fatalf("issued record = %+v ok=%v", rec, ok)
	}
	if s.Outstanding() != 1 {
		t.Fatalf("outstanding = %d", s.Outstanding())
	}

	// Renew: successor keeps the tuple, old grant is superseded but not
	// revoked.
	tag2, err := s.Renew(tag.ID(), time.Unix(9000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if tag2.ClientKey.String() != tag.ClientKey.String() || tag2.Level != tag.Level || tag2.AccessPath != tag.AccessPath {
		t.Fatal("renewal changed the grant tuple")
	}
	old, _ := s.Lookup(tag.ID())
	if old.Status != StatusRenewed || old.Successor != tag2.ID() {
		t.Fatalf("old record = %+v", old)
	}
	if s.Outstanding() != 1 {
		t.Fatalf("outstanding after renew = %d", s.Outstanding())
	}
	if s.Revocations().Contains(tag.ID()) {
		t.Fatal("renewal revoked the old tag")
	}
	if _, err := s.Renew(tag.ID(), time.Unix(9999, 0)); !errors.Is(err, ErrNotActive) {
		t.Fatalf("renewing superseded grant: %v", err)
	}

	// Revoke the successor.
	v, err := s.Revoke(tag2.ID())
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 || !s.Revocations().Contains(tag2.ID()) {
		t.Fatalf("revocation set version=%d contains=%v", v, s.Revocations().Contains(tag2.ID()))
	}
	if rec, _ := s.Lookup(tag2.ID()); rec.Status != StatusRevoked {
		t.Fatalf("revoked record = %+v", rec)
	}
	if s.Outstanding() != 0 {
		t.Fatalf("outstanding after revoke = %d", s.Outstanding())
	}
	// Idempotent.
	if v2, err := s.Revoke(tag2.ID()); err != nil || v2 != v {
		t.Fatalf("re-revoke = %d, %v", v2, err)
	}
	if _, err := s.Revoke(core.TagID{0xff}); !errors.Is(err, ErrUnknownTag) {
		t.Fatalf("revoking unknown ID: %v", err)
	}
}

func TestLedgerReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ledger")
	signer := testSigner(t, 2)

	s, err := Open(path, signer)
	if err != nil {
		t.Fatal(err)
	}
	tagA, err := s.Issue(names.MustParse("/u/a/KEY/1"), 1, 7, time.Unix(100, 0))
	if err != nil {
		t.Fatal(err)
	}
	tagB, err := s.Issue(names.MustParse("/u/b/KEY/1"), 2, 9, time.Unix(200, 0))
	if err != nil {
		t.Fatal(err)
	}
	tagA2, err := s.Renew(tagA.ID(), time.Unix(300, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Revoke(tagB.ID()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the whole lifecycle state comes back.
	s2, err := Open(path, signer)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Outstanding() != 1 {
		t.Fatalf("replayed outstanding = %d", s2.Outstanding())
	}
	if rec, ok := s2.Lookup(tagA.ID()); !ok || rec.Status != StatusRenewed || rec.Successor != tagA2.ID() {
		t.Fatalf("replayed A = %+v ok=%v", rec, ok)
	}
	if rec, ok := s2.Lookup(tagA2.ID()); !ok || rec.Status != StatusActive {
		t.Fatalf("replayed A2 = %+v ok=%v", rec, ok)
	}
	if rec, ok := s2.Lookup(tagB.ID()); !ok || rec.Status != StatusRevoked {
		t.Fatalf("replayed B = %+v ok=%v", rec, ok)
	}
	if !s2.Revocations().Contains(tagB.ID()) {
		t.Fatal("replay lost the revocation")
	}
	// Replay preserves identity: renewing the same record mints a tag
	// whose ID the ledger already knows.
	if _, err := s2.Renew(tagA2.ID(), time.Unix(400, 0)); err != nil {
		t.Fatal(err)
	}
}

func TestLedgerTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ledger")
	signer := testSigner(t, 3)
	s, err := Open(path, signer)
	if err != nil {
		t.Fatal(err)
	}
	tag, err := s.Issue(names.MustParse("/u/a/KEY/1"), 1, 7, time.Unix(100, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: half a revoke line, no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("revoke deadbeef"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(path, signer)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if rec, ok := s2.Lookup(tag.ID()); !ok || rec.Status != StatusActive {
		t.Fatalf("good prefix lost: %+v ok=%v", rec, ok)
	}
	// The tail was truncated: appending works and a re-open still
	// parses cleanly.
	if _, err := s2.Revoke(tag.ID()); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(path, signer)
	if err != nil {
		t.Fatalf("ledger after torn-tail repair rejected: %v", err)
	}
	defer s3.Close()
	if rec, _ := s3.Lookup(tag.ID()); rec.Status != StatusRevoked {
		t.Fatalf("post-repair record = %+v", rec)
	}

	// Interior corruption is an error, not silently skipped.
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("garbage line\nrevoke deadbeef\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad, signer); !errors.Is(err, ErrLedgerCorrupt) {
		t.Fatalf("interior corruption: %v", err)
	}
}

// TestConcurrentIssueRevoke exercises the sharded index under
// concurrent mixed traffic (run with -race).
func TestConcurrentIssueRevoke(t *testing.T) {
	s, err := Open("", testSigner(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tag, err := s.Issue(names.MustNew("u", "KEY"), core.AccessLevel(i%5), core.AccessPath(w), time.Unix(int64(1000+i), 0))
				if err != nil {
					t.Error(err)
					return
				}
				if _, ok := s.Lookup(tag.ID()); !ok {
					t.Errorf("issued tag not found")
					return
				}
				if i%3 == 0 {
					if _, err := s.Revoke(tag.ID()); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Identical tuples collapse to one grant (same TagID), so assert on
	// the set sizes rather than raw counts.
	var n int
	s.Records(func(Record) bool { n++; return true })
	if n == 0 || s.Outstanding() <= 0 || s.Revocations().Len() == 0 {
		t.Fatalf("records=%d outstanding=%d revoked=%d", n, s.Outstanding(), s.Revocations().Len())
	}
}
