// Package lifecycle is the tag-lifecycle control plane: an issuance
// service that mints, renews, and explicitly revokes TACTIC tags on
// behalf of a provider.
//
// TACTIC's only native revocation mechanism is expiry (T_e): "a revoked
// client simply never receives a fresh tag". That leaves a window — up
// to a full tag lifetime — in which a compromised or de-authorized
// client keeps being served. The lifecycle service closes it: every
// grant it mints is recorded in a persisted append-only ledger keyed by
// the tag's lifecycle identity (core.TagID, the SHA-256 of its signed
// fields), and Revoke moves an ID into a small exact revocation set
// that routers consult before their Bloom filters (see
// core.RevocationSet) once the set is pushed over control TLVs
// (ndn.Control, cmd/tacticissue push).
//
// The in-memory index is sharded 256 ways by the ID's first byte, so
// concurrent issuance and lookup scale to millions of outstanding
// grants (the package benchmarks pin this); the ledger is replayed on
// Open, tolerating a torn final line from an interrupted append.
package lifecycle

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/pki"
)

// Status is a grant's lifecycle state.
type Status uint8

// Grant states.
const (
	// StatusActive: the grant is live (it may still be past T_e —
	// expiry is the tag's own business; the ledger tracks grants).
	StatusActive Status = iota
	// StatusRenewed: a successor grant supersedes this one; the old tag
	// remains honoured until its T_e.
	StatusRenewed
	// StatusRevoked: explicitly revoked; the ID is in the revocation
	// set and routers deny it ahead of T_e.
	StatusRevoked
)

// String returns the status's ledger keyword.
func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusRenewed:
		return "renewed"
	case StatusRevoked:
		return "revoked"
	}
	return fmt.Sprintf("status_%d", uint8(s))
}

// Record is one grant's ledger state.
type Record struct {
	// ID is the tag's lifecycle identity.
	ID core.TagID
	// ClientKey is the grantee's key locator Pub_u.
	ClientKey names.Name
	// Level, AccessPath, Expiry mirror the minted tag's fields.
	Level      core.AccessLevel
	AccessPath core.AccessPath
	Expiry     time.Time
	// Status is the grant's lifecycle state.
	Status Status
	// Successor is the renewing grant's ID when Status is
	// StatusRenewed.
	Successor core.TagID
}

// Service errors.
var (
	// ErrUnknownTag is returned for operations on an ID the ledger has
	// never issued.
	ErrUnknownTag = errors.New("lifecycle: unknown tag ID")
	// ErrNotActive is returned when renewing or revoking a grant that
	// is not active.
	ErrNotActive = errors.New("lifecycle: grant is not active")
	// ErrLedgerCorrupt is returned when replay hits a malformed line
	// that is not a torn final append.
	ErrLedgerCorrupt = errors.New("lifecycle: corrupt ledger")
)

// numShards divides the grant index; must be a power of two.
const numShards = 256

type shard struct {
	mu sync.RWMutex
	m  map[core.TagID]*Record
}

// Service is one provider's issuance authority. Safe for concurrent
// use.
type Service struct {
	signer pki.Signer
	rev    *core.RevocationSet

	shards [numShards]shard
	active atomic.Int64

	ledgerMu sync.Mutex
	ledger   *os.File
	ledgerW  *bufio.Writer
}

// Open creates a service for signer, replaying (and appending to) the
// ledger at path. An empty path keeps the ledger in memory only.
func Open(path string, signer pki.Signer) (*Service, error) {
	s := &Service{signer: signer, rev: core.NewRevocationSet()}
	for i := range s.shards {
		s.shards[i].m = make(map[core.TagID]*Record)
	}
	if path == "" {
		return s, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lifecycle: open ledger: %w", err)
	}
	goodEnd, err := s.replay(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Drop a torn final append (a crash mid-write) so the next append
	// starts on a clean line boundary.
	if err := f.Truncate(goodEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("lifecycle: truncate torn ledger tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("lifecycle: seek ledger: %w", err)
	}
	s.ledger = f
	s.ledgerW = bufio.NewWriter(f)
	return s, nil
}

// Close flushes and closes the ledger, if any.
func (s *Service) Close() error {
	s.ledgerMu.Lock()
	defer s.ledgerMu.Unlock()
	if s.ledger == nil {
		return nil
	}
	err := s.ledgerW.Flush()
	if cerr := s.ledger.Close(); err == nil {
		err = cerr
	}
	s.ledger, s.ledgerW = nil, nil
	return err
}

func (s *Service) shardFor(id core.TagID) *shard { return &s.shards[id[0]] }

// Issue mints and signs a fresh tag for clientKey and records the
// grant. Pass core.AccessPathAny as ap to mint a roaming tag (valid
// from any edge, trading away AP-based location binding).
func (s *Service) Issue(clientKey names.Name, level core.AccessLevel, ap core.AccessPath, expiry time.Time) (*core.Tag, error) {
	tag, err := core.IssueTag(s.signer, clientKey, level, ap, expiry)
	if err != nil {
		return nil, err
	}
	rec := &Record{ID: tag.ID(), ClientKey: clientKey, Level: level, AccessPath: ap, Expiry: expiry, Status: StatusActive}
	if err := s.append(issueLine("issue", rec)); err != nil {
		return nil, err
	}
	s.install(rec)
	return tag, nil
}

// install inserts a record, counting it if active. Re-issuing an
// identical tuple (same ID) overwrites the previous record; the grant
// is one logical thing.
func (s *Service) install(rec *Record) {
	sh := s.shardFor(rec.ID)
	sh.mu.Lock()
	prev, existed := sh.m[rec.ID]
	sh.m[rec.ID] = rec
	sh.mu.Unlock()
	if rec.Status == StatusActive && (!existed || prev.Status != StatusActive) {
		s.active.Add(1)
	}
}

// Renew mints a successor tag for grant id with a new expiry, keeping
// the client, level, and access path. The old grant is marked renewed
// but not revoked: its tag stays honoured until its own T_e.
func (s *Service) Renew(id core.TagID, newExpiry time.Time) (*core.Tag, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	rec, ok := sh.m[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTag, id)
	}
	if rec.Status != StatusActive {
		return nil, fmt.Errorf("%w: %s is %s", ErrNotActive, id, rec.Status)
	}
	tag, err := core.IssueTag(s.signer, rec.ClientKey, rec.Level, rec.AccessPath, newExpiry)
	if err != nil {
		return nil, err
	}
	succ := &Record{ID: tag.ID(), ClientKey: rec.ClientKey, Level: rec.Level, AccessPath: rec.AccessPath, Expiry: newExpiry, Status: StatusActive}
	if err := s.append(issueLine("renew", succ) + " " + id.String()); err != nil {
		return nil, err
	}
	s.install(succ)
	sh.mu.Lock()
	if cur, ok := sh.m[id]; ok && cur.Status == StatusActive {
		cur.Status = StatusRenewed
		cur.Successor = tag.ID()
		s.active.Add(-1)
	}
	sh.mu.Unlock()
	return tag, nil
}

// Revoke moves grant id into the revocation set; routers deny the tag
// as soon as the set reaches them, without waiting for T_e. Returns the
// revocation set's new version.
func (s *Service) Revoke(id core.TagID) (uint64, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	rec, ok := sh.m[id]
	sh.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownTag, id)
	}
	if rec.Status == StatusRevoked {
		return s.rev.Version(), nil // idempotent
	}
	if err := s.append("revoke " + id.String()); err != nil {
		return 0, err
	}
	sh.mu.Lock()
	if rec.Status == StatusActive {
		s.active.Add(-1)
	}
	rec.Status = StatusRevoked
	sh.mu.Unlock()
	return s.rev.Revoke(id), nil
}

// Lookup returns a copy of grant id's record.
func (s *Service) Lookup(id core.TagID) (Record, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	rec, ok := sh.m[id]
	var out Record
	if ok {
		out = *rec
	}
	sh.mu.RUnlock()
	return out, ok
}

// Revocations exposes the service's authoritative revocation set; its
// Snapshot is the payload of a full push to routers.
func (s *Service) Revocations() *core.RevocationSet { return s.rev }

// Outstanding returns the number of active (unrevoked, unsuperseded)
// grants.
func (s *Service) Outstanding() int64 { return s.active.Load() }

// Records calls fn for every grant, in unspecified order, with a copy
// of each record. fn returning false stops the walk.
func (s *Service) Records(fn func(Record) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, rec := range sh.m {
			if !fn(*rec) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// --- Ledger ------------------------------------------------------------------

// The ledger is line-oriented plain text, one event per line:
//
//	issue <id> <client> <level> <ap> <expiry-unixnano>
//	renew <id> <client> <level> <ap> <expiry-unixnano> <renewed-id>
//	revoke <id>
//
// IDs and access paths are hex. The ledger records grants, not
// signatures: tags are delivered to clients at issue time and the
// authority never needs to reproduce one, so replay rebuilds exactly
// the index and revocation set.

func issueLine(verb string, rec *Record) string {
	return fmt.Sprintf("%s %s %s %d %016x %d",
		verb, rec.ID, rec.ClientKey, rec.Level, uint64(rec.AccessPath), rec.Expiry.UnixNano())
}

// append writes one ledger line; a no-op without a ledger file.
func (s *Service) append(line string) error {
	s.ledgerMu.Lock()
	defer s.ledgerMu.Unlock()
	if s.ledger == nil {
		return nil
	}
	if _, err := s.ledgerW.WriteString(line + "\n"); err != nil {
		return fmt.Errorf("lifecycle: append ledger: %w", err)
	}
	if err := s.ledgerW.Flush(); err != nil {
		return fmt.Errorf("lifecycle: flush ledger: %w", err)
	}
	return nil
}

// replay rebuilds state from the ledger, returning the byte offset of
// the end of the last good line. An unterminated final line is a torn
// append — dropped, not applied — so the next append starts on a clean
// boundary; a malformed interior line is corruption.
func (s *Service) replay(f *os.File) (int64, error) {
	r := bufio.NewReader(f)
	var off int64
	lineNo := 0
	for {
		line, err := r.ReadString('\n')
		if err != nil && line == "" {
			return off, nil // clean EOF
		}
		lineNo++
		if !strings.HasSuffix(line, "\n") {
			return off, nil // torn final append
		}
		if perr := s.applyLine(strings.TrimSuffix(line, "\n")); perr != nil {
			return off, fmt.Errorf("%w: line %d: %v", ErrLedgerCorrupt, lineNo, perr)
		}
		off += int64(len(line))
	}
}

// applyLine replays one ledger event into the index.
func (s *Service) applyLine(line string) error {
	if line == "" {
		return errors.New("empty line")
	}
	fields := strings.Fields(line)
	switch fields[0] {
	case "issue", "renew":
		want := 6
		if fields[0] == "renew" {
			want = 7
		}
		if len(fields) != want {
			return fmt.Errorf("%s line has %d fields, want %d", fields[0], len(fields), want)
		}
		id, err := core.ParseTagID(fields[1])
		if err != nil {
			return err
		}
		client, err := names.Parse(fields[2])
		if err != nil {
			return err
		}
		level, err := strconv.ParseUint(fields[3], 10, 16)
		if err != nil {
			return fmt.Errorf("level: %w", err)
		}
		ap, err := strconv.ParseUint(fields[4], 16, 64)
		if err != nil {
			return fmt.Errorf("access path: %w", err)
		}
		expiry, err := strconv.ParseInt(fields[5], 10, 64)
		if err != nil {
			return fmt.Errorf("expiry: %w", err)
		}
		rec := &Record{
			ID: id, ClientKey: client, Level: core.AccessLevel(level),
			AccessPath: core.AccessPath(ap), Expiry: time.Unix(0, expiry), Status: StatusActive,
		}
		s.install(rec)
		if fields[0] == "renew" {
			oldID, err := core.ParseTagID(fields[6])
			if err != nil {
				return err
			}
			sh := s.shardFor(oldID)
			sh.mu.Lock()
			if old, ok := sh.m[oldID]; ok && old.Status == StatusActive {
				old.Status = StatusRenewed
				old.Successor = id
				s.active.Add(-1)
			}
			sh.mu.Unlock()
		}
		return nil
	case "revoke":
		if len(fields) != 2 {
			return fmt.Errorf("revoke line has %d fields, want 2", len(fields))
		}
		id, err := core.ParseTagID(fields[1])
		if err != nil {
			return err
		}
		sh := s.shardFor(id)
		sh.mu.Lock()
		if rec, ok := sh.m[id]; ok {
			if rec.Status == StatusActive {
				s.active.Add(-1)
			}
			rec.Status = StatusRevoked
		}
		sh.mu.Unlock()
		s.rev.Revoke(id)
		return nil
	}
	return fmt.Errorf("unknown verb %q", fields[0])
}
