package lifecycle

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/pki"
)

// The issuance service must hold millions of outstanding grants: the
// paper sizes the provider universe at thousands of providers with
// (tens of) thousands of clients each. BenchmarkLookupMillion and
// BenchmarkIssueAtMillion run against a pre-built index of 2^20 grants
// (built once per process); BenchmarkIssue measures steady-state
// minting from empty.

func benchSigner(b *testing.B) *pki.FastKeyPair {
	b.Helper()
	signer, err := pki.GenerateFast(rand.New(rand.NewSource(1)), names.MustParse("/prov0/KEY/1"))
	if err != nil {
		b.Fatal(err)
	}
	return signer
}

const millionScale = 1 << 20

var millionSvc = sync.OnceValues(func() (*Service, []core.TagID) {
	rng := rand.New(rand.NewSource(2))
	signer, err := pki.GenerateFast(rng, names.MustParse("/prov0/KEY/1"))
	if err != nil {
		panic(err)
	}
	s, err := Open("", signer)
	if err != nil {
		panic(err)
	}
	ids := make([]core.TagID, 0, millionScale)
	for i := 0; i < millionScale; i++ {
		tag, err := s.Issue(names.MustNew("u", fmt.Sprintf("c%d", i), "KEY"),
			core.AccessLevel(i%7), core.AccessPath(uint64(i)*2654435761), time.Unix(int64(1<<31+i), 0))
		if err != nil {
			panic(err)
		}
		ids = append(ids, tag.ID())
	}
	return s, ids
})

func BenchmarkIssue(b *testing.B) {
	s, err := Open("", benchSigner(b))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	client := names.MustParse("/u/alice/KEY/1")
	b.ReportAllocs()
	b.ResetTimer()
	var i atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := i.Add(1)
			if _, err := s.Issue(client, core.AccessLevel(n%7), core.AccessPath(n), time.Unix(int64(1<<31+n), 0)); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkLookupMillion measures concurrent grant lookups against a
// 2^20-grant index.
func BenchmarkLookupMillion(b *testing.B) {
	s, ids := millionSvc()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(int64(b.N)))
		for pb.Next() {
			id := ids[rng.Intn(len(ids))]
			if _, ok := s.Lookup(id); !ok {
				b.Error("lookup miss")
				return
			}
		}
	})
}

// BenchmarkIssueAtMillion measures minting while the index already
// holds 2^20 grants (shard pressure, not an empty-map best case).
func BenchmarkIssueAtMillion(b *testing.B) {
	s, _ := millionSvc()
	client := names.MustParse("/u/bob/KEY/1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Issue(client, 3, core.AccessPath(uint64(i)+1<<40), time.Unix(int64(1<<33+i), 0)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRevoke measures revocation at a realistic storm size: the
// revocation set is copy-on-write (reads on the router hot path are
// lock-free), so cost grows with set size; the service keeps the set
// exceptional-case small and this benchmark bounds it at 4096 live
// revocations.
func BenchmarkRevoke(b *testing.B) {
	const pool = 4096
	signer := benchSigner(b)
	client := names.MustParse("/u/alice/KEY/1")
	var s *Service
	var ids []core.TagID
	rebuild := func() {
		var err error
		s, err = Open("", signer)
		if err != nil {
			b.Fatal(err)
		}
		ids = ids[:0]
		for i := 0; i < pool; i++ {
			tag, err := s.Issue(client, 1, core.AccessPath(uint64(i)), time.Unix(int64(1<<31+i), 0))
			if err != nil {
				b.Fatal(err)
			}
			ids = append(ids, tag.ID())
		}
	}
	rebuild()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%pool == 0 && i > 0 {
			b.StopTimer()
			rebuild()
			b.StartTimer()
		}
		if _, err := s.Revoke(ids[i%pool]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLedgerIssue measures minting with the persisted ledger on
// the write path.
func BenchmarkLedgerIssue(b *testing.B) {
	s, err := Open(b.TempDir()+"/ledger", benchSigner(b))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	client := names.MustParse("/u/alice/KEY/1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Issue(client, 1, core.AccessPath(uint64(i)), time.Unix(int64(1<<31+i), 0)); err != nil {
			b.Fatal(err)
		}
	}
}
