package baseline

import "testing"

func TestSchemeStrings(t *testing.T) {
	wants := map[Scheme]string{
		TACTIC:         "tactic",
		OpenNDN:        "open-ndn",
		ClientSideAC:   "client-side-ac",
		ProviderAuthAC: "provider-auth-ac",
		Scheme(99):     "unknown",
	}
	for s, want := range wants {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestAllCoversEveryScheme(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("All() has %d schemes", len(all))
	}
	if all[0] != TACTIC {
		t.Error("TACTIC should lead the comparison")
	}
}

func TestBehaviourMapping(t *testing.T) {
	if b := TACTIC.Behaviour(); b.DisableEnforcement || b.NoPrivateCache {
		t.Errorf("TACTIC behaviour = %+v, want full enforcement", b)
	}
	for _, s := range []Scheme{OpenNDN, ClientSideAC} {
		if b := s.Behaviour(); !b.DisableEnforcement || b.NoPrivateCache {
			t.Errorf("%v behaviour = %+v, want enforcement off", s, b)
		}
	}
	if b := ProviderAuthAC.Behaviour(); b.DisableEnforcement || !b.NoPrivateCache {
		t.Errorf("ProviderAuthAC behaviour = %+v, want private-cache off", b)
	}
}

func TestCiphertextGated(t *testing.T) {
	if !ClientSideAC.CiphertextGated() {
		t.Error("client-side AC gates consumption by key possession")
	}
	for _, s := range []Scheme{TACTIC, OpenNDN, ProviderAuthAC} {
		if s.CiphertextGated() {
			t.Errorf("%v should not be ciphertext-gated", s)
		}
	}
}
