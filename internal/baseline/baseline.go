// Package baseline defines the comparator access-control schemes used to
// turn the paper's qualitative Table II into a measured comparison.
// Each scheme maps onto the same NDN substrate with different
// enforcement placement:
//
//   - TACTIC — the paper's design: routers enforce; caches serve
//     authorized requests; revocation is tag expiry.
//   - OpenNDN — no access control at all; the latency/throughput floor.
//   - ClientSideAC — the client-end-authorization family the paper's
//     motivation criticises ([3],[5],[7] in the paper): every request is
//     satisfied with ciphertext and only key possession gates
//     consumption. Unauthorized users waste bandwidth and can mount the
//     DDoS the paper warns about; revocation requires re-encryption
//     (modelled as its cost: revoked users keep receiving ciphertext).
//   - ProviderAuthAC — the always-online-provider family ([9],[14],[16]):
//     private content is never served from caches; the provider
//     authenticates every request, so provider load scales with total
//     request volume and cache utility vanishes.
package baseline

// Scheme selects an access-control baseline.
type Scheme int

// Schemes.
const (
	// TACTIC is the paper's design (the default).
	TACTIC Scheme = iota
	// OpenNDN disables access control entirely.
	OpenNDN
	// ClientSideAC delegates authorization to end clients.
	ClientSideAC
	// ProviderAuthAC requires per-request provider authentication.
	ProviderAuthAC
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case TACTIC:
		return "tactic"
	case OpenNDN:
		return "open-ndn"
	case ClientSideAC:
		return "client-side-ac"
	case ProviderAuthAC:
		return "provider-auth-ac"
	default:
		return "unknown"
	}
}

// All lists every scheme in comparison order.
func All() []Scheme {
	return []Scheme{TACTIC, OpenNDN, ClientSideAC, ProviderAuthAC}
}

// RouterBehaviour describes how a scheme configures the forwarding
// plane.
type RouterBehaviour struct {
	// DisableEnforcement turns off all router-side tag processing:
	// every request is served (OpenNDN, ClientSideAC).
	DisableEnforcement bool
	// NoPrivateCache prevents caching and cache-serving of non-Public
	// content, forcing private requests to the origin (ProviderAuthAC).
	NoPrivateCache bool
}

// Behaviour returns the forwarding-plane configuration for a scheme.
func (s Scheme) Behaviour() RouterBehaviour {
	switch s {
	case OpenNDN, ClientSideAC:
		return RouterBehaviour{DisableEnforcement: true}
	case ProviderAuthAC:
		return RouterBehaviour{NoPrivateCache: true}
	default:
		return RouterBehaviour{}
	}
}

// CiphertextGated reports whether delivered private content is useless
// without a decryption key (true for ClientSideAC: attackers receive
// ciphertext but cannot consume it; their deliveries are pure bandwidth
// waste).
func (s Scheme) CiphertextGated() bool { return s == ClientSideAC }
