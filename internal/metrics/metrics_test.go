package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeSeriesAverages(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	ts.Observe(100*time.Millisecond, 2)
	ts.Observe(900*time.Millisecond, 4)
	ts.Observe(1500*time.Millisecond, 10)
	avg := ts.Averages()
	if len(avg) != 2 {
		t.Fatalf("buckets = %d", len(avg))
	}
	if avg[0] != 3 || avg[1] != 10 {
		t.Errorf("averages = %v", avg)
	}
}

func TestTimeSeriesEmptyBucketsNaN(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	ts.Observe(0, 1)
	ts.Observe(2500*time.Millisecond, 5)
	avg := ts.Averages()
	if !math.IsNaN(avg[1]) {
		t.Errorf("empty bucket = %v, want NaN", avg[1])
	}
}

func TestTimeSeriesRatesAndSums(t *testing.T) {
	ts := NewTimeSeries(2 * time.Second)
	ts.Add(0, 1)
	ts.Add(time.Second, 1)
	ts.Add(3*time.Second, 1)
	sums := ts.Sums()
	if sums[0] != 2 || sums[1] != 1 {
		t.Errorf("sums = %v", sums)
	}
	rates := ts.Rates()
	if rates[0] != 1 || rates[1] != 0.5 {
		t.Errorf("rates = %v", rates)
	}
}

func TestTimeSeriesAddDoesNotCountSamples(t *testing.T) {
	// A mixed series: Observe records samples, Add folds in extra
	// volume. Add must not register samples, or bucket averages get
	// diluted and Averages/Sums disagree about what happened.
	ts := NewTimeSeries(time.Second)
	ts.Observe(100*time.Millisecond, 10)
	ts.Observe(200*time.Millisecond, 20)
	if got := ts.Averages()[0]; got != 15 {
		t.Errorf("average = %v, want 15", got)
	}
	// An Add-only bucket has volume but no samples: its average must be
	// NaN, not delta/1. The old Add delegated to Observe and registered
	// a phantom sample per call.
	ts.Add(1300*time.Millisecond, 5)
	ts.Add(1600*time.Millisecond, 3)
	if got := ts.Sums()[1]; got != 8 {
		t.Errorf("Add-only bucket sum = %v, want 8", got)
	}
	if got := ts.Averages()[1]; !math.IsNaN(got) {
		t.Errorf("Add-only bucket average = %v, want NaN (Add must not record samples)", got)
	}
	if got := ts.Rates()[1]; got != 8 {
		t.Errorf("Add-only bucket rate = %v/s, want 8", got)
	}
}

func TestTimeSeriesNegativeAndZeroBucket(t *testing.T) {
	ts := NewTimeSeries(0) // falls back to 1s
	ts.Observe(-5*time.Second, 7)
	if ts.Len() != 1 || ts.Sums()[0] != 7 {
		t.Error("negative elapsed should clamp to bucket 0")
	}
}

func TestLatency(t *testing.T) {
	var l Latency
	if l.Mean() != 0 || l.Count() != 0 {
		t.Error("zero-value latency should be empty")
	}
	l.Observe(10 * time.Millisecond)
	l.Observe(30 * time.Millisecond)
	l.Observe(20 * time.Millisecond)
	if l.Mean() != 20*time.Millisecond {
		t.Errorf("mean = %v", l.Mean())
	}
	if l.Min() != 10*time.Millisecond || l.Max() != 30*time.Millisecond {
		t.Errorf("min/max = %v/%v", l.Min(), l.Max())
	}
	if l.Count() != 3 {
		t.Errorf("count = %d", l.Count())
	}
}

func TestDelivery(t *testing.T) {
	d := Delivery{Requested: 1000, Received: 999}
	if r := d.Ratio(); r != 0.999 {
		t.Errorf("ratio = %v", r)
	}
	if (Delivery{}).Ratio() != 0 {
		t.Error("empty delivery ratio should be 0")
	}
	d.Merge(Delivery{Requested: 1000, Received: 1})
	if d.Requested != 2000 || d.Received != 1000 {
		t.Errorf("merged = %+v", d)
	}
}

func TestRouterOpsMerge(t *testing.T) {
	a := RouterOps{Lookups: 10, Insertions: 2, Verifications: 1, Resets: 1, ResetThresholds: []uint64{100}}
	b := RouterOps{Lookups: 5, Insertions: 3, Verifications: 2, Resets: 2, ResetThresholds: []uint64{200, 300}}
	a.Merge(b)
	if a.Lookups != 15 || a.Insertions != 5 || a.Verifications != 3 || a.Resets != 3 {
		t.Errorf("merged = %+v", a)
	}
	if got := a.MeanResetThreshold(); got != 200 {
		t.Errorf("mean reset threshold = %v", got)
	}
	var empty RouterOps
	if !math.IsNaN(empty.MeanResetThreshold()) {
		t.Error("no resets should give NaN threshold")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Errorf("mean = %v", mean)
	}
	if std < 2.1 || std > 2.2 { // sample std ≈ 2.138
		t.Errorf("std = %v", std)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Error("empty MeanStd should be 0,0")
	}
	if _, s := MeanStd([]float64{42}); s != 0 {
		t.Error("single-sample std should be 0")
	}
}

func TestAverageSeries(t *testing.T) {
	got := AverageSeries([][]float64{
		{1, 2, 3},
		{3, 4},
		{2, math.NaN(), 5},
	})
	if got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Errorf("averaged = %v", got)
	}
	if len(AverageSeries(nil)) != 0 {
		t.Error("no runs should give empty series")
	}
	allNaN := AverageSeries([][]float64{{math.NaN()}})
	if !math.IsNaN(allNaN[0]) {
		t.Error("all-NaN bucket should stay NaN")
	}
}

func TestDownsample(t *testing.T) {
	series := make([]float64, 100)
	for i := range series {
		series[i] = float64(i)
	}
	ds := Downsample(series, 10)
	if len(ds) != 10 {
		t.Fatalf("downsampled length = %d", len(ds))
	}
	if ds[0] != 4.5 || ds[9] != 94.5 {
		t.Errorf("downsampled = %v", ds)
	}
	// Short series pass through.
	if got := Downsample([]float64{1, 2}, 10); len(got) != 2 {
		t.Errorf("short series = %v", got)
	}
}

func TestPropertyTimeSeriesTotalPreserved(t *testing.T) {
	f := func(values []uint8) bool {
		ts := NewTimeSeries(time.Second)
		var want float64
		for i, v := range values {
			ts.Add(time.Duration(i)*300*time.Millisecond, float64(v))
			want += float64(v)
		}
		var got float64
		for _, s := range ts.Sums() {
			got += s
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLatencyMeanBounded(t *testing.T) {
	f := func(samples []uint16) bool {
		if len(samples) == 0 {
			return true
		}
		var l Latency
		for _, s := range samples {
			l.Observe(time.Duration(s))
		}
		return l.Mean() >= l.Min() && l.Mean() <= l.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLatencyMerge(t *testing.T) {
	var a, b Latency
	a.Observe(10 * time.Millisecond)
	a.Observe(20 * time.Millisecond)
	b.Observe(5 * time.Millisecond)
	b.Observe(45 * time.Millisecond)
	a.Merge(b)
	if a.Count() != 4 {
		t.Errorf("count = %d", a.Count())
	}
	if a.Mean() != 20*time.Millisecond {
		t.Errorf("mean = %v", a.Mean())
	}
	if a.Min() != 5*time.Millisecond || a.Max() != 45*time.Millisecond {
		t.Errorf("min/max = %v/%v", a.Min(), a.Max())
	}
	// Merging empties is a no-op in both directions.
	var empty Latency
	a.Merge(empty)
	if a.Count() != 4 {
		t.Error("merging empty changed the aggregate")
	}
	empty.Merge(a)
	if empty.Count() != 4 || empty.Min() != 5*time.Millisecond {
		t.Errorf("merge into empty: %d %v", empty.Count(), empty.Min())
	}
}
