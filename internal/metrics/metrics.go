// Package metrics implements the measurement machinery behind the
// paper's evaluation (§8): per-second time series (Fig. 5's per-second
// average latency, Fig. 6's tag rates), streaming latency statistics,
// delivery ratios (Table IV), router operation counters (Fig. 7,
// Table V), and multi-run averaging (the paper averages five seeds per
// topology).
package metrics

import (
	"math"
	"time"
)

// TimeSeries accumulates observations into fixed-width time buckets.
// Observe records a value (bucket averages answer "average latency per
// second"); Add accumulates counts (bucket sums answer "tags requested
// per second").
type TimeSeries struct {
	bucket time.Duration
	sums   []float64
	counts []uint64
}

// NewTimeSeries creates a series with the given bucket width; the paper
// uses one-second buckets.
func NewTimeSeries(bucket time.Duration) *TimeSeries {
	if bucket <= 0 {
		bucket = time.Second
	}
	return &TimeSeries{bucket: bucket}
}

// indexFor grows the series to cover elapsed and returns its bucket.
func (ts *TimeSeries) indexFor(elapsed time.Duration) int {
	if elapsed < 0 {
		elapsed = 0
	}
	idx := int(elapsed / ts.bucket)
	for len(ts.sums) <= idx {
		ts.sums = append(ts.sums, 0)
		ts.counts = append(ts.counts, 0)
	}
	return idx
}

// Observe records one sample at the given elapsed time.
func (ts *TimeSeries) Observe(elapsed time.Duration, value float64) {
	idx := ts.indexFor(elapsed)
	ts.sums[idx] += value
	ts.counts[idx]++
}

// Add accumulates a delta into the bucket sum without recording a
// sample, so event-rate series (Sums/Rates) stay correct when a single
// event carries a multi-unit delta, and Averages still reflects only
// Observe'd samples.
func (ts *TimeSeries) Add(elapsed time.Duration, delta float64) {
	ts.sums[ts.indexFor(elapsed)] += delta
}

// Len returns the number of buckets.
func (ts *TimeSeries) Len() int { return len(ts.sums) }

// Averages returns per-bucket means; empty buckets yield NaN so
// downstream plotting can distinguish "no data" from zero.
func (ts *TimeSeries) Averages() []float64 {
	out := make([]float64, len(ts.sums))
	for i := range ts.sums {
		if ts.counts[i] == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = ts.sums[i] / float64(ts.counts[i])
		}
	}
	return out
}

// Sums returns per-bucket totals.
func (ts *TimeSeries) Sums() []float64 {
	out := make([]float64, len(ts.sums))
	copy(out, ts.sums)
	return out
}

// Rates returns per-bucket totals divided by the bucket width in
// seconds — events per second.
func (ts *TimeSeries) Rates() []float64 {
	sec := ts.bucket.Seconds()
	out := make([]float64, len(ts.sums))
	for i := range ts.sums {
		out[i] = ts.sums[i] / sec
	}
	return out
}

// Latency is a streaming latency aggregate.
type Latency struct {
	count uint64
	sum   time.Duration
	min   time.Duration
	max   time.Duration
}

// Observe records one latency sample.
func (l *Latency) Observe(d time.Duration) {
	if l.count == 0 || d < l.min {
		l.min = d
	}
	if d > l.max {
		l.max = d
	}
	l.count++
	l.sum += d
}

// Count returns the number of samples.
func (l *Latency) Count() uint64 { return l.count }

// Merge folds another aggregate into this one exactly.
func (l *Latency) Merge(o Latency) {
	if o.count == 0 {
		return
	}
	if l.count == 0 || o.min < l.min {
		l.min = o.min
	}
	if o.max > l.max {
		l.max = o.max
	}
	l.count += o.count
	l.sum += o.sum
}

// Mean returns the average latency (0 with no samples).
func (l *Latency) Mean() time.Duration {
	if l.count == 0 {
		return 0
	}
	return l.sum / time.Duration(l.count)
}

// Min returns the smallest sample (0 with no samples).
func (l *Latency) Min() time.Duration { return l.min }

// Max returns the largest sample.
func (l *Latency) Max() time.Duration { return l.max }

// Delivery tracks requested vs successfully received chunks — Table IV's
// "Requested Chunk" / "Received Chunk" / "Delivery Rate" rows, kept
// separately for clients and attackers.
type Delivery struct {
	// Requested counts chunks asked for.
	Requested uint64
	// Received counts chunks successfully delivered.
	Received uint64
}

// Ratio returns Received/Requested (0 when nothing was requested).
func (d Delivery) Ratio() float64 {
	if d.Requested == 0 {
		return 0
	}
	return float64(d.Received) / float64(d.Requested)
}

// Merge adds another delivery tally.
func (d *Delivery) Merge(o Delivery) {
	d.Requested += o.Requested
	d.Received += o.Received
}

// RouterOps aggregates the three router operations of Fig. 7 plus
// Bloom-filter resets (Table V) and the per-reset request thresholds
// (Fig. 8).
type RouterOps struct {
	// Lookups is Fig. 7's L series.
	Lookups uint64
	// Insertions is Fig. 7's I series.
	Insertions uint64
	// Verifications is Fig. 7's V series.
	Verifications uint64
	// Resets is Table V's reset count.
	Resets uint64
	// ResetThresholds lists requests absorbed per reset (Fig. 8).
	ResetThresholds []uint64
}

// Merge accumulates another router's operations.
func (r *RouterOps) Merge(o RouterOps) {
	r.Lookups += o.Lookups
	r.Insertions += o.Insertions
	r.Verifications += o.Verifications
	r.Resets += o.Resets
	r.ResetThresholds = append(r.ResetThresholds, o.ResetThresholds...)
}

// MeanResetThreshold returns the average number of requests absorbed per
// reset (NaN with no resets).
func (r *RouterOps) MeanResetThreshold() float64 {
	if len(r.ResetThresholds) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range r.ResetThresholds {
		sum += float64(v)
	}
	return sum / float64(len(r.ResetThresholds))
}

// MeanStd returns the mean and sample standard deviation of values.
func MeanStd(values []float64) (mean, std float64) {
	if len(values) == 0 {
		return 0, 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	mean = sum / float64(len(values))
	if len(values) < 2 {
		return mean, 0
	}
	var varSum float64
	for _, v := range values {
		d := v - mean
		varSum += d * d
	}
	return mean, math.Sqrt(varSum / float64(len(values)-1))
}

// AverageSeries element-wise averages several runs' series, ignoring
// NaNs and ragged tails — the paper's five-seed averaging.
func AverageSeries(runs [][]float64) []float64 {
	maxLen := 0
	for _, r := range runs {
		if len(r) > maxLen {
			maxLen = len(r)
		}
	}
	out := make([]float64, maxLen)
	for i := 0; i < maxLen; i++ {
		var sum float64
		var n int
		for _, r := range runs {
			if i < len(r) && !math.IsNaN(r[i]) {
				sum += r[i]
				n++
			}
		}
		if n == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = sum / float64(n)
		}
	}
	return out
}

// Downsample reduces a series to at most n points by averaging
// consecutive windows (ignoring NaNs) — used to print figure series
// compactly.
func Downsample(series []float64, n int) []float64 {
	if n <= 0 || len(series) <= n {
		out := make([]float64, len(series))
		copy(out, series)
		return out
	}
	out := make([]float64, 0, n)
	window := float64(len(series)) / float64(n)
	for i := 0; i < n; i++ {
		lo := int(float64(i) * window)
		hi := int(float64(i+1) * window)
		if hi > len(series) {
			hi = len(series)
		}
		var sum float64
		var cnt int
		for _, v := range series[lo:hi] {
			if !math.IsNaN(v) {
				sum += v
				cnt++
			}
		}
		if cnt == 0 {
			out = append(out, math.NaN())
		} else {
			out = append(out, sum/float64(cnt))
		}
	}
	return out
}
