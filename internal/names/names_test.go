package names

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseValid(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"/", nil},
		{"/a", []string{"a"}},
		{"/a/b/c", []string{"a", "b", "c"}},
		{"/prov0/obj12/chunk3", []string{"prov0", "obj12", "chunk3"}},
		{"/a/b/", []string{"a", "b"}}, // trailing slash tolerated
	}
	for _, tc := range cases {
		n, err := Parse(tc.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.in, err)
		}
		if got := n.Components(); !reflect.DeepEqual(got, tc.want) && !(len(got) == 0 && len(tc.want) == 0) {
			t.Errorf("Parse(%q) components = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseInvalid(t *testing.T) {
	for _, in := range []string{"", "a/b", "no-slash", "/a//b"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
	if _, err := Parse(""); !errors.Is(err, ErrEmpty) {
		t.Errorf("Parse(\"\") err = %v, want ErrEmpty", err)
	}
	if _, err := Parse("abc"); !errors.Is(err, ErrMalformed) {
		t.Errorf("Parse(\"abc\") err = %v, want ErrMalformed", err)
	}
}

func TestNewRejectsBadComponents(t *testing.T) {
	if _, err := New("a", ""); err == nil {
		t.Error("New with empty component: expected error")
	}
	if _, err := New("a/b"); err == nil {
		t.Error("New with slash in component: expected error")
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{"/", "/a", "/a/b/c", "/prov/key/locator"} {
		n := MustParse(s)
		got := n.String()
		want := strings.TrimRight(s, "/")
		if want == "" {
			want = "/"
		}
		if got != want {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestPrefixAndParent(t *testing.T) {
	n := MustParse("/a/b/c/d")
	if got := n.Prefix(2).String(); got != "/a/b" {
		t.Errorf("Prefix(2) = %q", got)
	}
	if got := n.Prefix(0).String(); got != "/" {
		t.Errorf("Prefix(0) = %q", got)
	}
	if got := n.Prefix(99).String(); got != "/a/b/c/d" {
		t.Errorf("Prefix(99) = %q", got)
	}
	if got := n.Parent().String(); got != "/a/b/c" {
		t.Errorf("Parent = %q", got)
	}
	root := Name{}
	if !root.Parent().IsRoot() {
		t.Error("Parent of root should be root")
	}
}

func TestHasPrefix(t *testing.T) {
	n := MustParse("/a/b/c")
	for _, p := range []string{"/", "/a", "/a/b", "/a/b/c"} {
		if !n.HasPrefix(MustParse(p)) {
			t.Errorf("%v should have prefix %q", n, p)
		}
	}
	for _, p := range []string{"/a/b/c/d", "/b", "/a/c"} {
		if n.HasPrefix(MustParse(p)) {
			t.Errorf("%v should not have prefix %q", n, p)
		}
	}
}

func TestEqualAndCompare(t *testing.T) {
	a := MustParse("/a/b")
	b := MustParse("/a/b")
	c := MustParse("/a/c")
	d := MustParse("/a")
	if !a.Equal(b) {
		t.Error("identical names should be Equal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("different names should not be Equal")
	}
	if a.Compare(b) != 0 {
		t.Error("Compare of equal names should be 0")
	}
	if a.Compare(c) >= 0 {
		t.Error("/a/b < /a/c")
	}
	if a.Compare(d) <= 0 {
		t.Error("/a/b > /a (prefix orders first)")
	}
	if d.Compare(a) >= 0 {
		t.Error("/a < /a/b")
	}
}

func TestAppendImmutability(t *testing.T) {
	base := MustParse("/a")
	child := base.MustAppend("b", "c")
	if base.String() != "/a" {
		t.Errorf("Append mutated receiver: %v", base)
	}
	if child.String() != "/a/b/c" {
		t.Errorf("Append result = %v", child)
	}
	if _, err := base.Append("x/y"); err == nil {
		t.Error("Append with slash: expected error")
	}
	if _, err := base.Append(""); err == nil {
		t.Error("Append with empty: expected error")
	}
}

func TestComponentsCopyIsDefensive(t *testing.T) {
	n := MustParse("/a/b")
	cs := n.Components()
	cs[0] = "mutated"
	if n.Component(0) != "a" {
		t.Error("Components() must return a defensive copy")
	}
}

func TestProviderPrefix(t *testing.T) {
	if got := MustParse("/prov3/obj/chunk").ProviderPrefix().String(); got != "/prov3" {
		t.Errorf("ProviderPrefix = %q", got)
	}
	if !(Name{}).ProviderPrefix().IsRoot() {
		t.Error("ProviderPrefix of root should be root")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse of invalid name should panic")
		}
	}()
	MustParse("not-a-name")
}

// randomName generates names for property tests.
func randomName(r *rand.Rand) Name {
	n := r.Intn(6)
	comps := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ln := 1 + r.Intn(8)
		b := make([]byte, ln)
		for j := range b {
			b[j] = byte('a' + r.Intn(26))
		}
		comps = append(comps, string(b))
	}
	return MustNew(comps...)
}

func TestPropertyParseStringRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomName(r)
		back, err := Parse(n.String())
		return err == nil && back.Equal(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyPrefixIsPrefix(t *testing.T) {
	f := func(seed int64, k uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomName(r)
		p := n.Prefix(int(k) % (n.Len() + 1))
		return n.HasPrefix(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyCompareTotalOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomName(r), randomName(r)
		ab, ba := a.Compare(b), b.Compare(a)
		if ab != -ba {
			return false
		}
		return (ab == 0) == a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
