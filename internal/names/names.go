// Package names implements hierarchical NDN-style content names.
//
// A name is an ordered sequence of components, printed in URI-like form
// ("/provider0/video7/chunk12"). Names identify content objects, key
// locators, and routable prefixes throughout the TACTIC framework. The
// package also provides the prefix-extraction function N(·) from the
// paper (Protocol 1), which maps a name to its routable provider prefix.
package names

import (
	"errors"
	"fmt"
	"strings"
)

// Errors returned by name parsing and manipulation.
var (
	// ErrEmpty is returned when parsing an empty or root-only name where
	// at least one component is required.
	ErrEmpty = errors.New("names: empty name")
	// ErrMalformed is returned when a name string is not a valid
	// slash-delimited NDN name.
	ErrMalformed = errors.New("names: malformed name")
)

// Name is an immutable hierarchical content name. The zero value is the
// root name "/" with no components.
type Name struct {
	components []string
	// key is the canonical string form, computed once at construction so
	// String/Key on the forwarding hot path never allocate. Every prefix
	// of the component sequence is a prefix of key, so Prefix and Parent
	// share it by slicing.
	key string
}

// makeName builds a Name over validated components, computing the
// canonical key.
func makeName(components []string) Name {
	if len(components) == 0 {
		return Name{}
	}
	var b strings.Builder
	total := 0
	for _, c := range components {
		total += 1 + len(c)
	}
	b.Grow(total)
	for _, c := range components {
		b.WriteByte('/')
		b.WriteString(c)
	}
	return Name{components: components, key: b.String()}
}

// New builds a name from explicit components. Components must be
// non-empty and must not contain '/'.
func New(components ...string) (Name, error) {
	out := make([]string, 0, len(components))
	for _, c := range components {
		if c == "" {
			return Name{}, fmt.Errorf("%w: empty component", ErrMalformed)
		}
		if strings.ContainsRune(c, '/') {
			return Name{}, fmt.Errorf("%w: component %q contains '/'", ErrMalformed, c)
		}
		out = append(out, c)
	}
	return makeName(out), nil
}

// MustNew is New but panics on error. Intended for constants in tests and
// examples where the input is statically known to be valid.
func MustNew(components ...string) Name {
	n, err := New(components...)
	if err != nil {
		panic(err)
	}
	return n
}

// Parse parses a slash-delimited name such as "/prov/obj/chunk3". The
// leading slash is required; a trailing slash is tolerated. Parse("/")
// yields the root name.
func Parse(s string) (Name, error) {
	if s == "" {
		return Name{}, ErrEmpty
	}
	if s[0] != '/' {
		return Name{}, fmt.Errorf("%w: %q does not start with '/'", ErrMalformed, s)
	}
	trimmed := strings.Trim(s, "/")
	if trimmed == "" {
		return Name{}, nil // root
	}
	parts := strings.Split(trimmed, "/")
	for _, p := range parts {
		if p == "" {
			return Name{}, fmt.Errorf("%w: %q has an empty component", ErrMalformed, s)
		}
	}
	return makeName(parts), nil
}

// MustParse is Parse but panics on error.
func MustParse(s string) Name {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

// String renders the name in URI-like form. The root name renders as
// "/". The result is precomputed at construction, so String is
// allocation-free.
func (n Name) String() string {
	if len(n.components) == 0 {
		return "/"
	}
	return n.key
}

// Len reports the number of components.
func (n Name) Len() int { return len(n.components) }

// IsRoot reports whether the name has no components.
func (n Name) IsRoot() bool { return len(n.components) == 0 }

// Component returns the i-th component. It panics if i is out of range,
// matching slice semantics.
func (n Name) Component(i int) string { return n.components[i] }

// Components returns a copy of the component slice, preserving the
// immutability of the receiver.
func (n Name) Components() []string {
	out := make([]string, len(n.components))
	copy(out, n.components)
	return out
}

// Append returns a new name with the given components appended. The
// receiver is unchanged. Invalid components cause an error.
func (n Name) Append(components ...string) (Name, error) {
	for _, c := range components {
		if c == "" || strings.ContainsRune(c, '/') {
			return Name{}, fmt.Errorf("%w: invalid component %q", ErrMalformed, c)
		}
	}
	out := make([]string, 0, len(n.components)+len(components))
	out = append(out, n.components...)
	out = append(out, components...)
	return makeName(out), nil
}

// MustAppend is Append but panics on error.
func (n Name) MustAppend(components ...string) Name {
	out, err := n.Append(components...)
	if err != nil {
		panic(err)
	}
	return out
}

// Prefix returns the name truncated to its first k components. If k
// exceeds the length, the full name is returned; k <= 0 yields the root.
// The prefix shares the receiver's component slice and canonical key, so
// Prefix never allocates.
func (n Name) Prefix(k int) Name {
	if k <= 0 {
		return Name{}
	}
	if k >= len(n.components) {
		return n
	}
	cut := 0
	for _, c := range n.components[:k] {
		cut += 1 + len(c)
	}
	return Name{components: n.components[:k], key: n.key[:cut]}
}

// Parent returns the name with its last component removed. The parent of
// the root is the root.
func (n Name) Parent() Name {
	return n.Prefix(len(n.components) - 1)
}

// Equal reports whether two names have identical components.
func (n Name) Equal(o Name) bool {
	return n.key == o.key
}

// HasPrefix reports whether p is a (non-strict) prefix of n. Every name
// has the root as a prefix.
func (n Name) HasPrefix(p Name) bool {
	if len(p.components) > len(n.components) {
		return false
	}
	for i, c := range p.components {
		if n.components[i] != c {
			return false
		}
	}
	return true
}

// Compare orders names component-wise, shorter-prefix first; it returns
// -1, 0, or +1. The ordering is total and consistent with Equal.
func (n Name) Compare(o Name) int {
	for i := 0; i < len(n.components) && i < len(o.components); i++ {
		if c := strings.Compare(n.components[i], o.components[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(n.components) < len(o.components):
		return -1
	case len(n.components) > len(o.components):
		return 1
	default:
		return 0
	}
}

// ProviderPrefix implements the paper's N(·) prefix-extraction function:
// the first component of a name identifies the provider namespace. For
// the root name it returns the root.
func (n Name) ProviderPrefix() Name { return n.Prefix(1) }

// Key returns the canonical string form, suitable for map keys. It is
// identical to String and exists to make call sites self-documenting.
func (n Name) Key() string { return n.String() }
