package pki

import (
	"crypto/ecdsa"
	"crypto/ed25519"
	"crypto/sha256"
	"crypto/x509"
	"encoding/hex"
	"encoding/pem"
	"fmt"
	"io"

	"github.com/tactic-icn/tactic/internal/names"
)

// PEM serialisation for TACTIC identities, used by the command-line
// tools to move keys between the producer (enrollment), routers (trust
// anchors), and clients. The locator name travels in a PEM header so a
// single file carries the complete identity binding.

// PEM block types.
const (
	pemECDSAPrivate   = "TACTIC ECDSA PRIVATE KEY"
	pemECDSAPublic    = "TACTIC ECDSA PUBLIC KEY"
	pemFastPrivate    = "TACTIC SIM PRIVATE KEY"
	pemEd25519Private = "TACTIC ED25519 PRIVATE KEY"
	pemEd25519Public  = "TACTIC ED25519 PUBLIC KEY"
)

// pemLocatorHeader carries the key-locator name.
const pemLocatorHeader = "Locator"

// NewECDSAPublicKey wraps a raw ECDSA public key as a verifying key.
func NewECDSAPublicKey(pub *ecdsa.PublicKey) PublicKey {
	return ecdsaPublicKey{pub: pub}
}

// MarshalECDSAPrivate serialises a key pair (private half) to PEM.
func MarshalECDSAPrivate(k *ECDSAKeyPair) ([]byte, error) {
	der, err := x509.MarshalECPrivateKey(k.priv)
	if err != nil {
		return nil, fmt.Errorf("pki: marshal ecdsa private: %w", err)
	}
	return pem.EncodeToMemory(&pem.Block{
		Type:    pemECDSAPrivate,
		Headers: map[string]string{pemLocatorHeader: k.locator.String()},
		Bytes:   der,
	}), nil
}

// UnmarshalECDSAPrivate parses a PEM key pair. rng reseeds the signing
// nonce stream (crypto/rand.Reader in production).
func UnmarshalECDSAPrivate(data []byte, rng io.Reader) (*ECDSAKeyPair, error) {
	block, _ := pem.Decode(data)
	if block == nil || block.Type != pemECDSAPrivate {
		return nil, fmt.Errorf("pki: no %s PEM block", pemECDSAPrivate)
	}
	locator, err := names.Parse(block.Headers[pemLocatorHeader])
	if err != nil {
		return nil, fmt.Errorf("pki: key locator header: %w", err)
	}
	priv, err := x509.ParseECPrivateKey(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("pki: parse ecdsa private: %w", err)
	}
	var salt [32]byte
	if _, err := io.ReadFull(rng, salt[:]); err != nil {
		return nil, fmt.Errorf("pki: nonce salt: %w", err)
	}
	seed := sha256.Sum256(append(priv.D.Bytes(), salt[:]...))
	return &ECDSAKeyPair{
		priv:      priv,
		locator:   locator,
		nonceRand: &hashStream{seed: seed[:]},
	}, nil
}

// MarshalEd25519Private serialises an Ed25519 key pair (private half)
// to PEM.
func MarshalEd25519Private(k *Ed25519KeyPair) ([]byte, error) {
	return pem.EncodeToMemory(&pem.Block{
		Type:    pemEd25519Private,
		Headers: map[string]string{pemLocatorHeader: k.locator.String()},
		Bytes:   k.priv.Seed(),
	}), nil
}

// UnmarshalEd25519Private parses a PEM Ed25519 key pair.
func UnmarshalEd25519Private(data []byte) (*Ed25519KeyPair, error) {
	block, _ := pem.Decode(data)
	if block == nil || block.Type != pemEd25519Private {
		return nil, fmt.Errorf("pki: no %s PEM block", pemEd25519Private)
	}
	locator, err := names.Parse(block.Headers[pemLocatorHeader])
	if err != nil {
		return nil, fmt.Errorf("pki: key locator header: %w", err)
	}
	if len(block.Bytes) != ed25519.SeedSize {
		return nil, fmt.Errorf("pki: bad ed25519 seed length %d", len(block.Bytes))
	}
	return &Ed25519KeyPair{priv: ed25519.NewKeyFromSeed(block.Bytes), locator: locator}, nil
}

// MarshalPublic serialises a verifying key (with its locator) to PEM.
// ECDSA keys use PKIX encoding; simulation keys export their seed (they
// are symmetric — see the FastScheme caveat).
func MarshalPublic(locator names.Name, key PublicKey) ([]byte, error) {
	switch k := key.(type) {
	case ecdsaPublicKey:
		der, err := x509.MarshalPKIXPublicKey(k.pub)
		if err != nil {
			return nil, fmt.Errorf("pki: marshal ecdsa public: %w", err)
		}
		return pem.EncodeToMemory(&pem.Block{
			Type:    pemECDSAPublic,
			Headers: map[string]string{pemLocatorHeader: locator.String()},
			Bytes:   der,
		}), nil
	case ed25519PublicKey:
		return pem.EncodeToMemory(&pem.Block{
			Type:    pemEd25519Public,
			Headers: map[string]string{pemLocatorHeader: locator.String()},
			Bytes:   k.pub,
		}), nil
	case fastPublicKey:
		return pem.EncodeToMemory(&pem.Block{
			Type:    pemFastPrivate,
			Headers: map[string]string{pemLocatorHeader: locator.String()},
			Bytes:   k.seed[:],
		}), nil
	default:
		return nil, fmt.Errorf("pki: unsupported key type %T", key)
	}
}

// UnmarshalPublic parses a verifying key PEM, returning its locator and
// key.
func UnmarshalPublic(data []byte) (names.Name, PublicKey, error) {
	block, _ := pem.Decode(data)
	if block == nil {
		return names.Name{}, nil, fmt.Errorf("pki: no PEM block")
	}
	locator, err := names.Parse(block.Headers[pemLocatorHeader])
	if err != nil {
		return names.Name{}, nil, fmt.Errorf("pki: key locator header: %w", err)
	}
	switch block.Type {
	case pemECDSAPublic:
		pub, err := x509.ParsePKIXPublicKey(block.Bytes)
		if err != nil {
			return names.Name{}, nil, fmt.Errorf("pki: parse ecdsa public: %w", err)
		}
		ecPub, ok := pub.(*ecdsa.PublicKey)
		if !ok {
			return names.Name{}, nil, fmt.Errorf("pki: not an ECDSA key: %T", pub)
		}
		return locator, ecdsaPublicKey{pub: ecPub}, nil
	case pemEd25519Public:
		if len(block.Bytes) != ed25519.PublicKeySize {
			return names.Name{}, nil, fmt.Errorf("pki: bad ed25519 public key length %d", len(block.Bytes))
		}
		return locator, ed25519PublicKey{pub: ed25519.PublicKey(append([]byte(nil), block.Bytes...))}, nil
	case pemFastPrivate:
		if len(block.Bytes) != 32 {
			return names.Name{}, nil, fmt.Errorf("pki: bad sim key length %d", len(block.Bytes))
		}
		var seed [32]byte
		copy(seed[:], block.Bytes)
		return locator, fastPublicKey{seed: seed}, nil
	default:
		return names.Name{}, nil, fmt.Errorf("pki: unknown PEM type %q", block.Type)
	}
}

// FingerprintHex renders a key fingerprint for human display.
func FingerprintHex(key PublicKey) string {
	fp := key.Fingerprint()
	return hex.EncodeToString(fp[:8])
}
