// Package pki provides the public-key infrastructure that TACTIC assumes
// (paper §3.B): providers hold signing keys whose public halves are known
// to routers through a trust registry; tags and contents are signed so
// any router can validate integrity and provenance; contents are
// encrypted so possession of ciphertext does not imply access.
//
// Two signature schemes are provided behind a common interface:
//
//   - ECDSAScheme: real ECDSA over P-256 (crypto/ecdsa). Used by the
//     library proper, the examples, and the microbenchmarks that
//     reproduce the paper's measured signature-verification latency.
//   - FastScheme: a deterministic HMAC-based scheme for large-scale
//     simulation, where verification *timing* is injected from a
//     calibrated delay model (the paper's own methodology — ndnSIM does
//     not execute crypto either). FastScheme preserves validity
//     semantics (forged or corrupted signatures fail) but is NOT
//     cryptographically secure against a party who can read router
//     memory; it must never be used outside simulations.
package pki

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"

	"github.com/tactic-icn/tactic/internal/names"
)

// Errors returned by signing and verification.
var (
	// ErrBadSignature is returned when a signature does not verify.
	ErrBadSignature = errors.New("pki: signature verification failed")
	// ErrUnknownKey is returned when a key locator is not in the registry.
	ErrUnknownKey = errors.New("pki: unknown key locator")
	// ErrDuplicateKey is returned when registering a locator twice.
	ErrDuplicateKey = errors.New("pki: key locator already registered")
)

// PublicKey verifies signatures produced by the matching private key.
// Implementations are scheme-specific; the trust registry treats them
// uniformly.
type PublicKey interface {
	// Verify returns nil iff sig is a valid signature over msg.
	Verify(msg, sig []byte) error
	// Fingerprint returns a stable digest identifying the key.
	Fingerprint() [32]byte
}

// Signer produces signatures bound to a key locator name. Provider and
// client identities in TACTIC are key locators (paper: Pub_p, Pub_u are
// "names that point to a packet that contains the public key").
type Signer interface {
	// Sign signs msg.
	Sign(msg []byte) ([]byte, error)
	// Locator returns the key-locator name for the public half.
	Locator() names.Name
	// Public returns the public half for registry insertion.
	Public() PublicKey
}

// Verifier resolves key locators to public keys and verifies signatures.
type Verifier interface {
	// Verify returns nil iff sig is valid over msg under the key bound
	// to locator. ErrUnknownKey is returned for unregistered locators.
	Verify(locator names.Name, msg, sig []byte) error
}

// --- ECDSA P-256 scheme -------------------------------------------------

// ECDSAKeyPair is a real ECDSA P-256 signing key bound to a locator.
type ECDSAKeyPair struct {
	priv    *ecdsa.PrivateKey
	locator names.Name
	// nonceRand feeds ECDSA nonce generation. It is a persistent,
	// never-repeating stream seeded from the generation rng and the
	// private scalar, so deterministic test rngs stay safe: the stream
	// position advances monotonically across Sign calls and two
	// signatures never consume identical entropy.
	nonceRand io.Reader
}

var _ Signer = (*ECDSAKeyPair)(nil)

// GenerateECDSA creates a fresh P-256 key pair. rng is typically
// crypto/rand.Reader; tests may pass a deterministic reader.
func GenerateECDSA(rng io.Reader, locator names.Name) (*ECDSAKeyPair, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rng)
	if err != nil {
		return nil, fmt.Errorf("pki: generate ecdsa key: %w", err)
	}
	var salt [32]byte
	if _, err := io.ReadFull(rng, salt[:]); err != nil {
		return nil, fmt.Errorf("pki: generate nonce salt: %w", err)
	}
	seed := sha256.Sum256(append(priv.D.Bytes(), salt[:]...))
	return &ECDSAKeyPair{
		priv:      priv,
		locator:   locator,
		nonceRand: &hashStream{seed: seed[:]},
	}, nil
}

// Sign signs msg with ECDSA over SHA-256, returning an ASN.1 signature.
func (k *ECDSAKeyPair) Sign(msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	sig, err := ecdsa.SignASN1(k.nonceRand, k.priv, digest[:])
	if err != nil {
		return nil, fmt.Errorf("pki: ecdsa sign: %w", err)
	}
	return sig, nil
}

// Locator returns the key-locator name.
func (k *ECDSAKeyPair) Locator() names.Name { return k.locator }

// Public returns the verifying half.
func (k *ECDSAKeyPair) Public() PublicKey { return ecdsaPublicKey{pub: &k.priv.PublicKey} }

type ecdsaPublicKey struct {
	pub *ecdsa.PublicKey
}

var _ PublicKey = ecdsaPublicKey{}

func (p ecdsaPublicKey) Verify(msg, sig []byte) error {
	digest := sha256.Sum256(msg)
	if !ecdsa.VerifyASN1(p.pub, digest[:], sig) {
		return ErrBadSignature
	}
	return nil
}

func (p ecdsaPublicKey) Fingerprint() [32]byte {
	raw := elliptic.MarshalCompressed(p.pub.Curve, p.pub.X, p.pub.Y)
	return sha256.Sum256(raw)
}

// --- Fast simulation scheme ----------------------------------------------

// FastKeyPair is the simulation-only signing key: signatures are
// truncated HMAC-SHA256 tags under a shared seed. See the package
// comment for the security caveat.
type FastKeyPair struct {
	seed    [32]byte
	locator names.Name
}

var _ Signer = (*FastKeyPair)(nil)

const fastSigLen = 16

// GenerateFast creates a simulation key pair with a seed drawn from rng.
func GenerateFast(rng io.Reader, locator names.Name) (*FastKeyPair, error) {
	var seed [32]byte
	if _, err := io.ReadFull(rng, seed[:]); err != nil {
		return nil, fmt.Errorf("pki: generate fast key: %w", err)
	}
	return &FastKeyPair{seed: seed, locator: locator}, nil
}

// Sign computes the truncated HMAC tag over msg.
func (k *FastKeyPair) Sign(msg []byte) ([]byte, error) {
	mac := hmac.New(sha256.New, k.seed[:])
	mac.Write(msg) //nolint:errcheck // hash writes never error
	return mac.Sum(nil)[:fastSigLen], nil
}

// Locator returns the key-locator name.
func (k *FastKeyPair) Locator() names.Name { return k.locator }

// Public returns the verifying half (which, for this symmetric
// simulation scheme, embeds the seed).
func (k *FastKeyPair) Public() PublicKey { return fastPublicKey{seed: k.seed} }

type fastPublicKey struct {
	seed [32]byte
}

var _ PublicKey = fastPublicKey{}

func (p fastPublicKey) Verify(msg, sig []byte) error {
	mac := hmac.New(sha256.New, p.seed[:])
	mac.Write(msg) //nolint:errcheck // hash writes never error
	want := mac.Sum(nil)[:fastSigLen]
	if !hmac.Equal(want, sig) {
		return ErrBadSignature
	}
	return nil
}

func (p fastPublicKey) Fingerprint() [32]byte {
	return sha256.Sum256(append([]byte("fast:"), p.seed[:]...))
}

// --- Registry --------------------------------------------------------------

// Registry maps key-locator names to public keys. Paper §5: "the
// universe of providers that require access control ... would
// potentially number in a few thousands. Thus, our approach of storing
// public key[s] of the providers would not suffer from scalability
// issues."
//
// Registry is not safe for concurrent mutation; the simulator populates
// it during setup and only reads afterwards.
type Registry struct {
	keys map[string]PublicKey
}

var _ Verifier = (*Registry)(nil)

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{keys: make(map[string]PublicKey)}
}

// Register binds a locator to a public key. Registering the same locator
// twice returns ErrDuplicateKey so that misconfigured scenarios fail
// loudly.
func (r *Registry) Register(locator names.Name, key PublicKey) error {
	k := locator.Key()
	if _, ok := r.keys[k]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateKey, locator)
	}
	r.keys[k] = key
	return nil
}

// Lookup returns the key bound to locator.
func (r *Registry) Lookup(locator names.Name) (PublicKey, error) {
	key, ok := r.keys[locator.Key()]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownKey, locator)
	}
	return key, nil
}

// Verify resolves the locator and checks the signature.
func (r *Registry) Verify(locator names.Name, msg, sig []byte) error {
	key, err := r.Lookup(locator)
	if err != nil {
		return err
	}
	return key.Verify(msg, sig)
}

// Len reports the number of registered keys.
func (r *Registry) Len() int { return len(r.keys) }

// --- helpers ----------------------------------------------------------------

// hashStream is an expanding SHA-256 counter stream.
type hashStream struct {
	seed []byte
	ctr  uint64
	buf  bytes.Buffer
}

func (h *hashStream) Read(p []byte) (int, error) {
	for h.buf.Len() < len(p) {
		var blk [8]byte
		for i := 0; i < 8; i++ {
			blk[i] = byte(h.ctr >> (8 * i))
		}
		h.ctr++
		sum := sha256.Sum256(append(append([]byte{}, h.seed...), blk[:]...))
		h.buf.Write(sum[:])
	}
	return h.buf.Read(p)
}
