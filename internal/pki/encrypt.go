package pki

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
)

// Content encryption (paper §3.B and §6): "contents are encrypted by the
// providers. One of the first packets requested by the client contains
// the key that a client can decrypt using a provider given key."
//
// The provider encrypts each content object under a symmetric content
// key (AES-256-GCM with the content name as associated data), and wraps
// that content key to each authorized client with an ECIES-style
// construction over X25519: an ephemeral Diffie-Hellman exchange whose
// shared secret keys an AES-GCM wrap. Everything is stdlib.

// ContentKeySize is the size of symmetric content keys.
const ContentKeySize = 32

// ErrCiphertextTooShort is returned for truncated ciphertexts.
var ErrCiphertextTooShort = errors.New("pki: ciphertext too short")

// EncryptContent encrypts plaintext under key with AES-256-GCM, binding
// the ciphertext to the given name (as AAD) so a ciphertext cannot be
// replayed under a different content name. rng supplies the nonce.
func EncryptContent(rng io.Reader, key [ContentKeySize]byte, name string, plaintext []byte) ([]byte, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rng, nonce); err != nil {
		return nil, fmt.Errorf("pki: nonce: %w", err)
	}
	out := make([]byte, 0, len(nonce)+len(plaintext)+aead.Overhead())
	out = append(out, nonce...)
	return aead.Seal(out, nonce, plaintext, []byte(name)), nil
}

// DecryptContent reverses EncryptContent.
func DecryptContent(key [ContentKeySize]byte, name string, ciphertext []byte) ([]byte, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	if len(ciphertext) < aead.NonceSize() {
		return nil, ErrCiphertextTooShort
	}
	nonce, body := ciphertext[:aead.NonceSize()], ciphertext[aead.NonceSize():]
	plain, err := aead.Open(nil, nonce, body, []byte(name))
	if err != nil {
		return nil, fmt.Errorf("pki: decrypt content %q: %w", name, err)
	}
	return plain, nil
}

func newGCM(key [ContentKeySize]byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("pki: aes: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("pki: gcm: %w", err)
	}
	return aead, nil
}

// GenerateKEMKeyPair creates an X25519 key pair used for wrapping
// content keys to clients.
func GenerateKEMKeyPair(rng io.Reader) (*ecdh.PrivateKey, error) {
	priv, err := ecdh.X25519().GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("pki: generate kem key: %w", err)
	}
	return priv, nil
}

// WrapContentKey encrypts a content key to the recipient's X25519 public
// key: ephemeral ECDH, SHA-256 KDF, AES-GCM. Output layout:
// ephemeralPub(32) || nonce || sealed key.
func WrapContentKey(rng io.Reader, recipient *ecdh.PublicKey, key [ContentKeySize]byte) ([]byte, error) {
	eph, err := ecdh.X25519().GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("pki: ephemeral key: %w", err)
	}
	shared, err := eph.ECDH(recipient)
	if err != nil {
		return nil, fmt.Errorf("pki: ecdh: %w", err)
	}
	wrapKey := kdf(shared, eph.PublicKey().Bytes(), recipient.Bytes())
	sealed, err := EncryptContent(rng, wrapKey, "keywrap", key[:])
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(eph.PublicKey().Bytes())+len(sealed))
	out = append(out, eph.PublicKey().Bytes()...)
	return append(out, sealed...), nil
}

// UnwrapContentKey reverses WrapContentKey with the recipient's private
// key.
func UnwrapContentKey(priv *ecdh.PrivateKey, wrapped []byte) ([ContentKeySize]byte, error) {
	var key [ContentKeySize]byte
	const ephLen = 32
	if len(wrapped) < ephLen {
		return key, ErrCiphertextTooShort
	}
	ephPub, err := ecdh.X25519().NewPublicKey(wrapped[:ephLen])
	if err != nil {
		return key, fmt.Errorf("pki: ephemeral public key: %w", err)
	}
	shared, err := priv.ECDH(ephPub)
	if err != nil {
		return key, fmt.Errorf("pki: ecdh: %w", err)
	}
	wrapKey := kdf(shared, ephPub.Bytes(), priv.PublicKey().Bytes())
	plain, err := DecryptContent(wrapKey, "keywrap", wrapped[ephLen:])
	if err != nil {
		return key, err
	}
	if len(plain) != ContentKeySize {
		return key, fmt.Errorf("pki: unwrapped key has %d bytes, want %d", len(plain), ContentKeySize)
	}
	copy(key[:], plain)
	return key, nil
}

// kdf derives a wrap key from the ECDH shared secret and both public
// values (a fixed-size, domain-separated SHA-256 construction).
func kdf(shared, ephPub, recipientPub []byte) [ContentKeySize]byte {
	h := sha256.New()
	h.Write([]byte("tactic-ecies-v1")) //nolint:errcheck // hash writes never error
	h.Write(shared)                    //nolint:errcheck
	h.Write(ephPub)                    //nolint:errcheck
	h.Write(recipientPub)              //nolint:errcheck
	var out [ContentKeySize]byte
	copy(out[:], h.Sum(nil))
	return out
}
