package pki

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"github.com/tactic-icn/tactic/internal/names"
)

// Certificate binds a public key to a key-locator name, signed by an
// issuer. The paper assumes "the existence of a public key
// infrastructure (PKI) by which routers store the providers' public keys
// and certificates" (§3.B); this is the minimal chain model that
// satisfies that assumption: a root trust anchor issues provider
// certificates, and routers install provider keys only through verified
// certificates.
type Certificate struct {
	// Subject is the key locator the certificate binds.
	Subject names.Name
	// Key is the bound public key.
	Key PublicKey
	// Issuer is the key locator of the signing authority.
	Issuer names.Name
	// NotAfter is the expiry instant.
	NotAfter time.Time
	// Signature covers SigningBytes, produced by the issuer.
	Signature []byte
}

// Errors returned by certificate handling.
var (
	// ErrCertExpired is returned for certificates past NotAfter.
	ErrCertExpired = errors.New("pki: certificate expired")
	// ErrUntrustedIssuer is returned when the issuer key is not in the
	// registry.
	ErrUntrustedIssuer = errors.New("pki: untrusted issuer")
)

// SigningBytes returns the canonical byte string a certificate signature
// covers: subject, issuer, expiry, and the key fingerprint.
func (c *Certificate) SigningBytes() []byte {
	subj := c.Subject.String()
	iss := c.Issuer.String()
	fp := c.Key.Fingerprint()
	buf := make([]byte, 0, 4+len(subj)+4+len(iss)+8+len(fp))
	buf = appendLenPrefixed(buf, []byte(subj))
	buf = appendLenPrefixed(buf, []byte(iss))
	buf = binary.BigEndian.AppendUint64(buf, uint64(c.NotAfter.UnixNano()))
	buf = append(buf, fp[:]...)
	return buf
}

func appendLenPrefixed(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// IssueCertificate creates a certificate for (subject, key) signed by
// the issuer's signer.
func IssueCertificate(issuer Signer, subject names.Name, key PublicKey, notAfter time.Time) (*Certificate, error) {
	cert := &Certificate{
		Subject:  subject,
		Key:      key,
		Issuer:   issuer.Locator(),
		NotAfter: notAfter,
	}
	sig, err := issuer.Sign(cert.SigningBytes())
	if err != nil {
		return nil, fmt.Errorf("pki: issue certificate for %s: %w", subject, err)
	}
	cert.Signature = sig
	return cert, nil
}

// VerifyCertificate checks the certificate chain against the registry:
// the issuer key must already be registered (directly or via a prior
// certificate) and the signature and expiry must be valid at `now`.
func (r *Registry) VerifyCertificate(cert *Certificate, now time.Time) error {
	if now.After(cert.NotAfter) {
		return fmt.Errorf("%w: %s not after %s", ErrCertExpired, cert.Subject, cert.NotAfter)
	}
	issuerKey, err := r.Lookup(cert.Issuer)
	if err != nil {
		return fmt.Errorf("%w: %s", ErrUntrustedIssuer, cert.Issuer)
	}
	if err := issuerKey.Verify(cert.SigningBytes(), cert.Signature); err != nil {
		return fmt.Errorf("pki: certificate for %s: %w", cert.Subject, err)
	}
	return nil
}

// InstallCertificate verifies the certificate and, on success, registers
// its subject key so later signatures by the subject verify.
func (r *Registry) InstallCertificate(cert *Certificate, now time.Time) error {
	if err := r.VerifyCertificate(cert, now); err != nil {
		return err
	}
	return r.Register(cert.Subject, cert.Key)
}
