package pki

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/tactic-icn/tactic/internal/names"
)

// testRNG returns a deterministic randomness source for reproducible
// tests.
func testRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestECDSASignVerify(t *testing.T) {
	kp, err := GenerateECDSA(testRNG(1), names.MustParse("/prov0/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("tag bytes")
	sig, err := kp.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := kp.Public().Verify(msg, sig); err != nil {
		t.Errorf("valid signature rejected: %v", err)
	}
	if err := kp.Public().Verify([]byte("other"), sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("wrong message: err = %v, want ErrBadSignature", err)
	}
	sig[0] ^= 0xff
	if err := kp.Public().Verify(msg, sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("corrupted signature: err = %v, want ErrBadSignature", err)
	}
}

func TestECDSADistinctSignaturesSafe(t *testing.T) {
	// The nonce stream must advance between calls; identical messages
	// should still produce verifiable (and, with distinct nonces,
	// distinct) signatures.
	kp, err := GenerateECDSA(testRNG(2), names.MustParse("/p/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("same message")
	s1, err := kp.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := kp.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(s1, s2) {
		t.Error("two signatures over the same message reused the nonce stream")
	}
	for _, s := range [][]byte{s1, s2} {
		if err := kp.Public().Verify(msg, s); err != nil {
			t.Errorf("signature rejected: %v", err)
		}
	}
}

func TestFastSignVerify(t *testing.T) {
	kp, err := GenerateFast(testRNG(3), names.MustParse("/prov1/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("simulated tag")
	sig, err := kp.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := kp.Public().Verify(msg, sig); err != nil {
		t.Errorf("valid fast signature rejected: %v", err)
	}
	if err := kp.Public().Verify(msg, append([]byte{}, make([]byte, fastSigLen)...)); !errors.Is(err, ErrBadSignature) {
		t.Errorf("forged signature: err = %v", err)
	}
	other, err := GenerateFast(testRNG(4), names.MustParse("/prov2/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Public().Verify(msg, sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("cross-key verification should fail: %v", err)
	}
}

func TestFingerprintsDiffer(t *testing.T) {
	a, _ := GenerateECDSA(testRNG(5), names.MustParse("/a/KEY/1"))
	b, _ := GenerateECDSA(testRNG(6), names.MustParse("/b/KEY/1"))
	if a.Public().Fingerprint() == b.Public().Fingerprint() {
		t.Error("distinct keys share a fingerprint")
	}
	fa, _ := GenerateFast(testRNG(7), names.MustParse("/a/KEY/1"))
	fb, _ := GenerateFast(testRNG(8), names.MustParse("/b/KEY/1"))
	if fa.Public().Fingerprint() == fb.Public().Fingerprint() {
		t.Error("distinct fast keys share a fingerprint")
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	kp, _ := GenerateFast(testRNG(9), names.MustParse("/prov/KEY/1"))
	if err := reg.Register(kp.Locator(), kp.Public()); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(kp.Locator(), kp.Public()); !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("duplicate register err = %v", err)
	}
	msg := []byte("m")
	sig, _ := kp.Sign(msg)
	if err := reg.Verify(kp.Locator(), msg, sig); err != nil {
		t.Errorf("registry verify: %v", err)
	}
	if err := reg.Verify(names.MustParse("/other/KEY/1"), msg, sig); !errors.Is(err, ErrUnknownKey) {
		t.Errorf("unknown locator err = %v", err)
	}
	if reg.Len() != 1 {
		t.Errorf("Len = %d", reg.Len())
	}
	if _, err := reg.Lookup(kp.Locator()); err != nil {
		t.Errorf("lookup: %v", err)
	}
}

func TestCertificateChain(t *testing.T) {
	now := time.Unix(1000, 0)
	root, _ := GenerateECDSA(testRNG(10), names.MustParse("/root/KEY/1"))
	prov, _ := GenerateECDSA(testRNG(11), names.MustParse("/prov0/KEY/1"))

	reg := NewRegistry()
	if err := reg.Register(root.Locator(), root.Public()); err != nil {
		t.Fatal(err)
	}

	cert, err := IssueCertificate(root, prov.Locator(), prov.Public(), now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.InstallCertificate(cert, now); err != nil {
		t.Fatalf("install: %v", err)
	}
	// Provider signatures now verify through the registry.
	msg := []byte("content")
	sig, _ := prov.Sign(msg)
	if err := reg.Verify(prov.Locator(), msg, sig); err != nil {
		t.Errorf("provider signature via chain: %v", err)
	}
}

func TestCertificateExpired(t *testing.T) {
	now := time.Unix(1000, 0)
	root, _ := GenerateFast(testRNG(12), names.MustParse("/root/KEY/1"))
	prov, _ := GenerateFast(testRNG(13), names.MustParse("/prov/KEY/1"))
	reg := NewRegistry()
	if err := reg.Register(root.Locator(), root.Public()); err != nil {
		t.Fatal(err)
	}
	cert, err := IssueCertificate(root, prov.Locator(), prov.Public(), now.Add(-time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.VerifyCertificate(cert, now); !errors.Is(err, ErrCertExpired) {
		t.Errorf("expired cert err = %v", err)
	}
}

func TestCertificateUntrustedIssuer(t *testing.T) {
	now := time.Unix(1000, 0)
	rogue, _ := GenerateFast(testRNG(14), names.MustParse("/rogue/KEY/1"))
	prov, _ := GenerateFast(testRNG(15), names.MustParse("/prov/KEY/1"))
	reg := NewRegistry()
	cert, err := IssueCertificate(rogue, prov.Locator(), prov.Public(), now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.VerifyCertificate(cert, now); !errors.Is(err, ErrUntrustedIssuer) {
		t.Errorf("untrusted issuer err = %v", err)
	}
}

func TestCertificateTamperDetected(t *testing.T) {
	// A malicious provider hijacking a legitimate prefix (paper §6.B):
	// re-binding the cert to another subject must fail verification.
	now := time.Unix(1000, 0)
	root, _ := GenerateFast(testRNG(16), names.MustParse("/root/KEY/1"))
	prov, _ := GenerateFast(testRNG(17), names.MustParse("/prov/KEY/1"))
	reg := NewRegistry()
	if err := reg.Register(root.Locator(), root.Public()); err != nil {
		t.Fatal(err)
	}
	cert, err := IssueCertificate(root, prov.Locator(), prov.Public(), now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	cert.Subject = names.MustParse("/victim/KEY/1")
	if err := reg.VerifyCertificate(cert, now); err == nil {
		t.Error("tampered subject accepted")
	}
}

func TestContentEncryptRoundTrip(t *testing.T) {
	var key [ContentKeySize]byte
	copy(key[:], bytes.Repeat([]byte{7}, ContentKeySize))
	plain := []byte("the content chunk payload")
	ct, err := EncryptContent(testRNG(18), key, "/prov/obj/c0", plain)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecryptContent(key, "/prov/obj/c0", ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, plain) {
		t.Error("round trip mismatch")
	}
	// Name binding: decrypting under a different name fails.
	if _, err := DecryptContent(key, "/prov/obj/c1", ct); err == nil {
		t.Error("ciphertext replayed under a different name was accepted")
	}
	// Wrong key fails.
	var wrong [ContentKeySize]byte
	if _, err := DecryptContent(wrong, "/prov/obj/c0", ct); err == nil {
		t.Error("wrong key accepted")
	}
	// Truncated ciphertext fails cleanly.
	if _, err := DecryptContent(key, "/prov/obj/c0", ct[:4]); !errors.Is(err, ErrCiphertextTooShort) {
		t.Errorf("short ciphertext err = %v", err)
	}
}

func TestKeyWrapRoundTrip(t *testing.T) {
	client, err := GenerateKEMKeyPair(testRNG(19))
	if err != nil {
		t.Fatal(err)
	}
	var contentKey [ContentKeySize]byte
	copy(contentKey[:], bytes.Repeat([]byte{0x42}, ContentKeySize))
	wrapped, err := WrapContentKey(testRNG(20), client.PublicKey(), contentKey)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnwrapContentKey(client, wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if got != contentKey {
		t.Error("unwrap mismatch")
	}
	// A different client cannot unwrap (paper: revoked users keep old
	// keys but cannot fetch; unauthorized users cannot decrypt at all).
	other, err := GenerateKEMKeyPair(testRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnwrapContentKey(other, wrapped); err == nil {
		t.Error("wrong client unwrapped the content key")
	}
	if _, err := UnwrapContentKey(client, wrapped[:8]); !errors.Is(err, ErrCiphertextTooShort) {
		t.Errorf("truncated wrap err = %v", err)
	}
}

func TestPropertyFastSchemeRoundTrip(t *testing.T) {
	f := func(seed int64, msg []byte) bool {
		kp, err := GenerateFast(testRNG(seed), names.MustParse("/p/KEY/1"))
		if err != nil {
			return false
		}
		sig, err := kp.Sign(msg)
		if err != nil {
			return false
		}
		return kp.Public().Verify(msg, sig) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEncryptDecryptRoundTrip(t *testing.T) {
	f := func(seed int64, key [ContentKeySize]byte, plain []byte) bool {
		ct, err := EncryptContent(testRNG(seed), key, "/n", plain)
		if err != nil {
			return false
		}
		back, err := DecryptContent(key, "/n", ct)
		if err != nil {
			return false
		}
		return bytes.Equal(back, plain)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHashStreamNonRepeating(t *testing.T) {
	h := &hashStream{seed: []byte("seed")}
	a := make([]byte, 64)
	b := make([]byte, 64)
	if _, err := h.Read(a); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Read(b); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Error("hash stream repeated a block")
	}
}
