package pki

import (
	"crypto/ed25519"
	"crypto/sha256"
	"fmt"
	"io"

	"github.com/tactic-icn/tactic/internal/names"
)

// --- Ed25519 scheme ---------------------------------------------------------
//
// Ed25519 is the cheaper real-crypto alternative to ECDSA P-256 for tag
// signatures: verification is roughly 2x faster per operation on
// amd64 (see BENCH_pipeline.json MicroVerify vs MicroVerifyEd25519) and
// the scheme admits batch verification. Providers pick their scheme at
// key-generation time; routers are scheme-agnostic — the registry
// dispatches on whatever PublicKey implementation is bound to the tag's
// provider key locator, so a deployment can migrate provider by
// provider.

// Ed25519KeyPair is an Ed25519 signing key bound to a locator.
type Ed25519KeyPair struct {
	priv    ed25519.PrivateKey
	locator names.Name
}

var _ Signer = (*Ed25519KeyPair)(nil)

// GenerateEd25519 creates a fresh Ed25519 key pair. rng is typically
// crypto/rand.Reader; tests may pass a deterministic reader.
func GenerateEd25519(rng io.Reader, locator names.Name) (*Ed25519KeyPair, error) {
	_, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("pki: generate ed25519 key: %w", err)
	}
	return &Ed25519KeyPair{priv: priv, locator: locator}, nil
}

// Sign signs msg. Ed25519 signing is deterministic; no nonce stream is
// needed.
func (k *Ed25519KeyPair) Sign(msg []byte) ([]byte, error) {
	return ed25519.Sign(k.priv, msg), nil
}

// Locator returns the key-locator name.
func (k *Ed25519KeyPair) Locator() names.Name { return k.locator }

// Public returns the verifying half.
func (k *Ed25519KeyPair) Public() PublicKey {
	return ed25519PublicKey{pub: k.priv.Public().(ed25519.PublicKey)}
}

type ed25519PublicKey struct {
	pub ed25519.PublicKey
}

var (
	_ PublicKey      = ed25519PublicKey{}
	_ BatchPublicKey = ed25519PublicKey{}
)

func (p ed25519PublicKey) Verify(msg, sig []byte) error {
	if len(sig) != ed25519.SignatureSize || !ed25519.Verify(p.pub, msg, sig) {
		return ErrBadSignature
	}
	return nil
}

func (p ed25519PublicKey) Fingerprint() [32]byte {
	return sha256.Sum256(append([]byte("ed25519:"), p.pub...))
}

// VerifyBatch checks each (msgs[i], sigs[i]) pair under this key and
// returns nil iff every signature verifies. Ed25519 admits true batch
// verification (one multi-scalar multiplication amortised over the
// batch), but the standard library exposes no batch entry point and
// this repository adds no dependencies, so the current implementation
// is the sequential fallback — the seam is what callers program
// against, and a batch-capable implementation slots in behind it
// without touching them.
func (p ed25519PublicKey) VerifyBatch(msgs, sigs [][]byte) error {
	if len(msgs) != len(sigs) {
		return fmt.Errorf("pki: batch length mismatch: %d msgs vs %d sigs", len(msgs), len(sigs))
	}
	for i := range msgs {
		if err := p.Verify(msgs[i], sigs[i]); err != nil {
			return fmt.Errorf("pki: batch item %d: %w", i, err)
		}
	}
	return nil
}

// BatchPublicKey is implemented by schemes that can verify several
// signatures under one key more cheaply than one at a time. Callers
// must treat a batch failure as "at least one bad signature" and fall
// back to per-item Verify to attribute blame.
type BatchPublicKey interface {
	PublicKey
	// VerifyBatch returns nil iff every sigs[i] is valid over msgs[i].
	VerifyBatch(msgs, sigs [][]byte) error
}

// VerifyBatch resolves the locator once and checks every (msg, sig)
// pair under it, using the scheme's batch verification when the key
// implements BatchPublicKey and a sequential loop otherwise.
func (r *Registry) VerifyBatch(locator names.Name, msgs, sigs [][]byte) error {
	if len(msgs) != len(sigs) {
		return fmt.Errorf("pki: batch length mismatch: %d msgs vs %d sigs", len(msgs), len(sigs))
	}
	key, err := r.Lookup(locator)
	if err != nil {
		return err
	}
	if bk, ok := key.(BatchPublicKey); ok {
		return bk.VerifyBatch(msgs, sigs)
	}
	for i := range msgs {
		if err := key.Verify(msgs[i], sigs[i]); err != nil {
			return fmt.Errorf("pki: batch item %d: %w", i, err)
		}
	}
	return nil
}
