package pki

import (
	"math/rand"
	"testing"

	"github.com/tactic-icn/tactic/internal/names"
)

func TestECDSAPrivateMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	kp, err := GenerateECDSA(rng, names.MustParse("/prov0/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	pemBytes, err := MarshalECDSAPrivate(kp)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalECDSAPrivate(pemBytes, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Locator().Equal(kp.Locator()) {
		t.Errorf("locator = %v", back.Locator())
	}
	// The restored key signs; the original public half verifies.
	msg := []byte("hello")
	sig, err := back.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := kp.Public().Verify(msg, sig); err != nil {
		t.Errorf("restored key's signature rejected: %v", err)
	}
	if back.Public().Fingerprint() != kp.Public().Fingerprint() {
		t.Error("fingerprint changed across marshal")
	}
}

func TestPublicMarshalRoundTripECDSA(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	kp, err := GenerateECDSA(rng, names.MustParse("/prov1/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	pemBytes, err := MarshalPublic(kp.Locator(), kp.Public())
	if err != nil {
		t.Fatal(err)
	}
	locator, pub, err := UnmarshalPublic(pemBytes)
	if err != nil {
		t.Fatal(err)
	}
	if !locator.Equal(kp.Locator()) {
		t.Errorf("locator = %v", locator)
	}
	msg := []byte("m")
	sig, err := kp.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Verify(msg, sig); err != nil {
		t.Errorf("unmarshalled public key rejects valid signature: %v", err)
	}
}

func TestPublicMarshalRoundTripFast(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	kp, err := GenerateFast(rng, names.MustParse("/prov2/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	pemBytes, err := MarshalPublic(kp.Locator(), kp.Public())
	if err != nil {
		t.Fatal(err)
	}
	locator, pub, err := UnmarshalPublic(pemBytes)
	if err != nil {
		t.Fatal(err)
	}
	if !locator.Equal(kp.Locator()) {
		t.Errorf("locator = %v", locator)
	}
	msg := []byte("m")
	sig, err := kp.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Verify(msg, sig); err != nil {
		t.Errorf("unmarshalled sim key rejects valid signature: %v", err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, _, err := UnmarshalPublic([]byte("not pem")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := UnmarshalECDSAPrivate([]byte("not pem"), rand.New(rand.NewSource(1))); err == nil {
		t.Error("garbage private accepted")
	}
	// Wrong block type.
	rng := rand.New(rand.NewSource(5))
	kp, err := GenerateECDSA(rng, names.MustParse("/p/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	pubPEM, err := MarshalPublic(kp.Locator(), kp.Public())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalECDSAPrivate(pubPEM, rng); err == nil {
		t.Error("public block parsed as private")
	}
}

func TestNewECDSAPublicKey(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	kp, err := GenerateECDSA(rng, names.MustParse("/p/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	wrapped := NewECDSAPublicKey(&kp.priv.PublicKey)
	msg := []byte("x")
	sig, err := kp.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := wrapped.Verify(msg, sig); err != nil {
		t.Errorf("wrapped key rejects valid signature: %v", err)
	}
	if FingerprintHex(wrapped) == "" || len(FingerprintHex(wrapped)) != 16 {
		t.Errorf("fingerprint hex = %q", FingerprintHex(wrapped))
	}
}
