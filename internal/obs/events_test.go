package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEventsRingAndSnapshot(t *testing.T) {
	ev := NewEvents("n0", 4)
	if ev.Cap() != 4 {
		t.Fatalf("cap = %d, want 4", ev.Cap())
	}
	for i := 0; i < 6; i++ {
		ev.Emit(EventFaceUp, i, "tcp", 0)
	}
	if ev.Total() != 6 {
		t.Fatalf("total = %d, want 6", ev.Total())
	}
	snap := ev.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(snap))
	}
	// Oldest first, only the newest 4 survive (seqs 3..6, faces 2..5).
	for i, e := range snap {
		if want := uint64(3 + i); e.Seq != want {
			t.Fatalf("snap[%d].Seq = %d, want %d", i, e.Seq, want)
		}
		if e.Face != 2+i {
			t.Fatalf("snap[%d].Face = %d, want %d", i, e.Face, 2+i)
		}
		if e.Node != "n0" || e.Type != EventFaceUp {
			t.Fatalf("snap[%d] = %+v", i, e)
		}
	}
}

func TestEventsNilSafe(t *testing.T) {
	var ev *Events
	ev.Emit(EventFaceDown, 1, "", 0) // must not panic
	if got := ev.Snapshot(); got != nil {
		t.Fatalf("nil snapshot = %v", got)
	}
	if ev.Total() != 0 || ev.Cap() != 0 || ev.Node() != "" {
		t.Fatal("nil accessors not zero")
	}
	ch, cancel := ev.Subscribe(1)
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("nil Subscribe channel not closed")
	}
	var g *BurstGate
	if g.Add(5) != 0 {
		t.Fatal("nil BurstGate.Add != 0")
	}
}

func TestEventsSubscribe(t *testing.T) {
	ev := NewEvents("n0", 8)
	ch, cancel := ev.Subscribe(4)
	defer cancel()
	ev.Emit(EventRevocation, -1, "v3", 17)
	select {
	case e := <-ch:
		if e.Type != EventRevocation || e.Value != 17 || e.Attr != "v3" {
			t.Fatalf("got %+v", e)
		}
	case <-time.After(time.Second):
		t.Fatal("subscriber saw nothing")
	}
	cancel()
	ev.Emit(EventRevocation, -1, "v4", 1)
	select {
	case e, ok := <-ch:
		if ok {
			t.Fatalf("event after cancel: %+v", e)
		}
	default:
	}
}

func TestEventsSlogBridge(t *testing.T) {
	ev := NewEvents("edge-0", 8)
	var buf bytes.Buffer
	var mu sync.Mutex
	ev.SetLogger(slog.New(slog.NewTextHandler(&lockedWriter{w: &buf, mu: &mu}, nil)))
	ev.Emit(EventShedBurst, -1, "", 42)
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "shed_burst") || !strings.Contains(out, "level=WARN") {
		t.Fatalf("slog bridge output: %q", out)
	}
	if !strings.Contains(out, "value=42") || !strings.Contains(out, "node=edge-0") {
		t.Fatalf("slog bridge output: %q", out)
	}
}

type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestBurstGate(t *testing.T) {
	g := &BurstGate{Interval: 50 * time.Millisecond}
	if got := g.Add(1); got != 1 {
		t.Fatalf("first Add = %d, want immediate emit of 1", got)
	}
	total := uint64(0)
	for i := 0; i < 10; i++ {
		total += g.Add(1)
	}
	if total != 0 {
		t.Fatalf("gate leaked %d during hold-down", total)
	}
	time.Sleep(60 * time.Millisecond)
	if got := g.Add(1); got != 11 {
		t.Fatalf("post-interval Add = %d, want accumulated 11", got)
	}
}

func TestEventzHandler(t *testing.T) {
	ev := NewEvents("n1", 16)
	ev.Emit(EventEpochRotate, -1, "", 2)
	ev.Emit(EventFaceDown, 3, "read: EOF", 0)
	mux := http.NewServeMux()
	AttachEventz(mux, ev)

	// Default JSON document.
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/eventz", nil))
	var doc struct {
		Node   string  `json:"node"`
		Total  uint64  `json:"total"`
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("eventz json: %v", err)
	}
	if doc.Node != "n1" || doc.Total != 2 || len(doc.Events) != 2 {
		t.Fatalf("eventz doc = %+v", doc)
	}
	if doc.Events[1].Type != EventFaceDown || doc.Events[1].Face != 3 {
		t.Fatalf("eventz events = %+v", doc.Events)
	}

	// limit + jsonl.
	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/eventz?limit=1&format=jsonl", nil))
	lines := 0
	sc := bufio.NewScanner(bytes.NewReader(rr.Body.Bytes()))
	var last Event
	for sc.Scan() {
		lines++
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("jsonl line: %v", err)
		}
	}
	if lines != 1 || last.Type != EventFaceDown {
		t.Fatalf("jsonl limit=1: %d lines, last %+v", lines, last)
	}
}

func TestEventzFollowStreams(t *testing.T) {
	ev := NewEvents("n2", 16)
	ev.Emit(EventUplinkUp, 1, "127.0.0.1:9", 0)
	mux := http.NewServeMux()
	AttachEventz(mux, ev)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/eventz?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rd := bufio.NewReader(resp.Body)

	line, err := rd.ReadBytes('\n')
	if err != nil {
		t.Fatalf("replay line: %v", err)
	}
	var e Event
	if json.Unmarshal(line, &e) != nil || e.Type != EventUplinkUp {
		t.Fatalf("replay event = %+v", e)
	}

	// A live event emitted after the stream started must arrive too.
	done := make(chan Event, 1)
	go func() {
		line, err := rd.ReadBytes('\n')
		if err != nil {
			return
		}
		var e Event
		if json.Unmarshal(line, &e) == nil {
			done <- e
		}
	}()
	time.Sleep(50 * time.Millisecond) // let the handler subscribe
	ev.Emit(EventUplinkDown, 1, "read: EOF", 0)
	select {
	case e := <-done:
		if e.Type != EventUplinkDown {
			t.Fatalf("live event = %+v", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("live event never streamed")
	}
}
