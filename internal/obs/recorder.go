// Flight recorder: a bounded lock-free ring of the most recent finished
// spans, kept in memory per node so /tracez can show "what just
// happened" without any span file. Writers never block and never
// allocate beyond the record itself; readers snapshot without stopping
// writers.
package obs

import (
	"io"
	"sync/atomic"
)

// Recorder retains the last N finished SpanRecords. Add is lock-free
// (one atomic fetch-add for the slot index plus one atomic pointer
// store), so it is safe on the forwarder's sharded hot path. A nil
// Recorder ignores adds and snapshots empty.
type Recorder struct {
	slots []atomic.Pointer[SpanRecord]
	cur   atomic.Uint64
}

// NewRecorder creates a recorder holding the most recent n spans (n is
// rounded up to a power of two; n <= 0 selects the 1024-span default).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = 1024
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &Recorder{slots: make([]atomic.Pointer[SpanRecord], size)}
}

// add stores rec, overwriting the oldest retained span once full.
func (r *Recorder) add(rec *SpanRecord) {
	if r == nil {
		return
	}
	i := r.cur.Add(1) - 1
	r.slots[i&uint64(len(r.slots)-1)].Store(rec)
}

// Cap returns the ring capacity (0 for nil).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Total returns how many spans were ever added, including overwritten
// ones (0 for nil).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.cur.Load()
}

// WriteJSONL writes the retained spans, oldest first, as one JSON line
// each — the same line format the live trace writer emits — and returns
// how many spans were written. Used to flush the flight recorder to
// disk on shutdown (tacticd -trace-flush).
func (r *Recorder) WriteJSONL(w io.Writer) (int, error) {
	var buf []byte
	n := 0
	for _, rec := range r.Snapshot() {
		buf = appendSpanJSON(buf[:0], rec)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Snapshot copies the retained spans, oldest first. Concurrent adds may
// skew ordering near the write cursor; every returned record is
// complete (records are immutable once added).
func (r *Recorder) Snapshot() []*SpanRecord {
	if r == nil {
		return nil
	}
	n := uint64(len(r.slots))
	cur := r.cur.Load()
	out := make([]*SpanRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		if rec := r.slots[(cur+i)&(n-1)].Load(); rec != nil {
			out = append(out, rec)
		}
	}
	return out
}
