// HTTP exposition: /metrics (Prometheus text format), /statusz (JSON
// snapshot), and net/http/pprof, mounted together on one admin mux —
// the handler behind tacticd/tacticserve's -admin flag.
package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewAdminMux builds the admin endpoint for a process: Prometheus
// metrics from reg at /metrics, a JSON document from statusz at
// /statusz (uptime and scalar metrics are merged in when reg is
// non-nil), and the pprof handlers under /debug/pprof/. statusz may be
// nil.
func NewAdminMux(reg *Registry, statusz func() any) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w) //nolint:errcheck // client gone mid-scrape
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		doc := map[string]any{}
		if reg != nil {
			doc["uptime_seconds"] = reg.Uptime().Seconds()
			doc["metrics"] = reg.Snapshot()
		}
		if statusz != nil {
			doc["status"] = statusz()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc) //nolint:errcheck // client gone mid-write
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeAdmin listens on addr and serves the admin mux in a background
// goroutine, returning the bound listener (close it to stop). It exists
// so commands can expose observability with one call.
func ServeAdmin(addr string, reg *Registry, statusz func() any) (net.Listener, error) {
	return serveMux(addr, NewAdminMux(reg, statusz))
}

// Serve listens on addr and serves mux in a background goroutine,
// returning the bound listener (close it to stop). Commands that extend
// the admin mux (eventz, healthz, tracez) compose NewAdminMux + Attach*
// and hand the result here.
func Serve(addr string, mux *http.ServeMux) (net.Listener, error) {
	return serveMux(addr, mux)
}

// serveMux listens on addr and serves mux in a background goroutine.
func serveMux(addr string, mux *http.ServeMux) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	// Header/idle timeouts bound slow-client (slowloris) connections;
	// there is deliberately no WriteTimeout so long pprof profile and
	// trace captures are not cut off mid-stream.
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go srv.Serve(ln) //nolint:errcheck // exits when ln closes
	return ln, nil
}
