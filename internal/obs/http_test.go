package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestAdminMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("nacks_total", L("reason", "expired")).Add(2)
	srv := httptest.NewServer(NewAdminMux(reg, func() any {
		return map[string]int{"pit": 3}
	}))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content-type %q", ctype)
	}
	if !strings.Contains(body, `nacks_total{reason="expired"} 2`) {
		t.Errorf("/metrics body:\n%s", body)
	}

	code, body, ctype = get("/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz status %d", code)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/statusz content-type %q", ctype)
	}
	var doc struct {
		UptimeSeconds float64            `json:"uptime_seconds"`
		Metrics       map[string]float64 `json:"metrics"`
		Status        map[string]int     `json:"status"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	if doc.Status["pit"] != 3 {
		t.Errorf("statusz status = %v", doc.Status)
	}
	if doc.Metrics[`nacks_total{reason="expired"}`] != 2 {
		t.Errorf("statusz metrics = %v", doc.Metrics)
	}

	code, body, _ = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: status %d", code)
	}
}

func TestServeAdmin(t *testing.T) {
	reg := NewRegistry()
	ln, err := ServeAdmin("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
}
