package obs

import (
	"bufio"
	"bytes"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// scrape renders the registry and returns the non-comment sample lines.
func scrape(t *testing.T, reg *Registry) []string {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	var lines []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		if line := sc.Text(); line != "" && !strings.HasPrefix(line, "#") {
			lines = append(lines, line)
		}
	}
	return lines
}

func sampleValue(t *testing.T, lines []string, prefix string) string {
	t.Helper()
	for _, line := range lines {
		if strings.HasPrefix(line, prefix) {
			i := strings.LastIndexByte(line, ' ')
			return line[i+1:]
		}
	}
	t.Fatalf("no sample with prefix %q in %v", prefix, lines)
	return ""
}

func TestWritePrometheusLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("tactic_test_total",
		L("path", `C:\tmp\"x"`),
		L("msg", "line1\nline2")).Add(1)
	lines := scrape(t, reg)
	if len(lines) != 1 {
		t.Fatalf("lines = %v", lines)
	}
	line := lines[0]
	// The exposition format escapes backslash, double-quote, and
	// newline inside label values exactly like Go quoting does.
	start := strings.IndexByte(line, '{')
	end := strings.LastIndexByte(line, '}')
	if start < 0 || end < start {
		t.Fatalf("no label block in %q", line)
	}
	if strings.ContainsAny(line, "\n\r") {
		t.Fatalf("raw newline leaked into exposition: %q", line)
	}
	for _, pair := range strings.Split(line[start+1:end], ",") {
		k, quoted, ok := strings.Cut(pair, "=")
		if !ok {
			t.Fatalf("malformed label pair %q", pair)
		}
		val, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("label %s value %s does not round-trip: %v", k, quoted, err)
		}
		switch k {
		case "path":
			if val != `C:\tmp\"x"` {
				t.Fatalf("path unescaped to %q", val)
			}
		case "msg":
			if val != "line1\nline2" {
				t.Fatalf("msg unescaped to %q", val)
			}
		default:
			t.Fatalf("unexpected label %q", k)
		}
	}
}

func TestWritePrometheusNaNInfGauges(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("tactic_test_nan").Set(math.NaN())
	reg.Gauge("tactic_test_posinf").Set(math.Inf(1))
	reg.Gauge("tactic_test_neginf").Set(math.Inf(-1))
	lines := scrape(t, reg)
	if got := sampleValue(t, lines, "tactic_test_nan "); got != "NaN" {
		t.Fatalf("NaN rendered as %q", got)
	}
	if got := sampleValue(t, lines, "tactic_test_posinf "); got != "+Inf" {
		t.Fatalf("+Inf rendered as %q", got)
	}
	if got := sampleValue(t, lines, "tactic_test_neginf "); got != "-Inf" {
		t.Fatalf("-Inf rendered as %q", got)
	}
}

// TestWritePrometheusHistogramConsistency hammers a histogram with
// concurrent Observe while scraping, asserting the spec invariants on
// every scrape: buckets are monotonically non-decreasing in le order,
// and _count equals the +Inf bucket exactly.
func TestWritePrometheusHistogramConsistency(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("tactic_test_seconds", []float64{0.001, 0.01, 0.1, 1})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed float64) {
			defer wg.Done()
			v := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(v)
				v = math.Mod(v*1.7+0.003, 2.5)
			}
		}(0.0005 * float64(w+1))
	}

	for i := 0; i < 200; i++ {
		lines := scrape(t, reg)
		var buckets []uint64
		var count uint64
		var haveCount bool
		for _, line := range lines {
			i := strings.LastIndexByte(line, ' ')
			name, val := line[:i], line[i+1:]
			switch {
			case strings.HasPrefix(name, "tactic_test_seconds_bucket"):
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					t.Fatalf("bucket value %q: %v", val, err)
				}
				buckets = append(buckets, n)
			case strings.HasPrefix(name, "tactic_test_seconds_count"):
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					t.Fatalf("count value %q: %v", val, err)
				}
				count, haveCount = n, true
			}
		}
		if len(buckets) != 5 || !haveCount {
			t.Fatalf("scrape shape: buckets=%d haveCount=%v", len(buckets), haveCount)
		}
		for j := 1; j < len(buckets); j++ {
			if buckets[j] < buckets[j-1] {
				t.Fatalf("bucket regression at le index %d: %v", j, buckets)
			}
		}
		if inf := buckets[len(buckets)-1]; count != inf {
			t.Fatalf("scrape %d: _count %d != +Inf bucket %d", i, count, inf)
		}
	}
	close(stop)
	wg.Wait()
}

// TestWritePrometheusNoDuplicateSeries guards the family/series model:
// the same name+labels must render exactly once however many handles
// point at it, and distinct label sets render distinct series.
func TestWritePrometheusNoDuplicateSeries(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("tactic_dup_total", L("role", "edge")).Add(1)
	reg.Counter("tactic_dup_total", L("role", "edge")).Add(1) // same series
	reg.Counter("tactic_dup_total", L("role", "core")).Add(5)
	seen := map[string]bool{}
	for _, line := range scrape(t, reg) {
		name := line[:strings.LastIndexByte(line, ' ')]
		if seen[name] {
			t.Fatalf("duplicate series %q", name)
		}
		seen[name] = true
	}
	if len(seen) != 2 {
		t.Fatalf("series count = %d, want 2 (%v)", len(seen), seen)
	}
}
