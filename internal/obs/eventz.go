// /eventz and /healthz exposition: the event ring as JSON or streamed
// JSONL, and the health engine's verdict as machine-readable JSON.
package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// AttachEventz mounts /eventz on mux, serving the ev ring:
//
//	/eventz                 JSON {node, total, events: [...]} oldest first
//	/eventz?limit=N         only the newest N events
//	/eventz?format=jsonl    one JSON event per line (archive-friendly)
//	/eventz?follow=1        JSONL: recent history, then live events
//	                        streamed until the client disconnects
func AttachEventz(mux *http.ServeMux, ev *Events) {
	mux.HandleFunc("/eventz", func(w http.ResponseWriter, r *http.Request) {
		events := ev.Snapshot()
		if s := r.URL.Query().Get("limit"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(events) {
				events = events[len(events)-n:]
			}
		}
		follow := r.URL.Query().Get("follow") != ""
		if follow || r.URL.Query().Get("format") == "jsonl" {
			w.Header().Set("Content-Type", "application/jsonl")
			enc := json.NewEncoder(w)
			for i := range events {
				enc.Encode(&events[i]) //nolint:errcheck // client gone mid-write
			}
			if !follow {
				return
			}
			fl, _ := w.(http.Flusher)
			if fl != nil {
				fl.Flush()
			}
			ch, cancel := ev.Subscribe(64)
			defer cancel()
			var last uint64
			if len(events) > 0 {
				last = events[len(events)-1].Seq
			}
			for {
				select {
				case e, ok := <-ch:
					if !ok {
						return
					}
					if e.Seq <= last { // already replayed from the ring
						continue
					}
					if enc.Encode(&e) != nil {
						return
					}
					if fl != nil {
						fl.Flush()
					}
				case <-r.Context().Done():
					return
				}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{ //nolint:errcheck // client gone mid-write
			"node":   ev.Node(),
			"total":  ev.Total(),
			"events": events,
		})
	})
}

// AttachHealthz mounts /healthz on mux: each request evaluates h and
// returns the HealthReport as JSON — HTTP 200 for ready and degraded
// (the node still serves), 503 for unhealthy so dumb probes can act on
// the status code alone.
func AttachHealthz(mux *http.ServeMux, h *Health) {
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		rep := h.Eval()
		w.Header().Set("Content-Type", "application/json")
		if rep.Status == HealthUnhealthy.String() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(rep) //nolint:errcheck // client gone mid-write
	})
}
