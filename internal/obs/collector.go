// Cross-node trace assembly: a Collector groups finished spans by trace
// ID into end-to-end path timelines, whether they come from a node's
// in-memory flight recorder (/tracez) or from JSONL span files gathered
// off several machines (cmd/tactictrace).
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Trace is one assembled end-to-end request path: every span recorded
// under one trace ID, ordered hop by hop.
type Trace struct {
	// ID is the trace ID.
	ID uint64
	// Spans are the trace's spans sorted by hop, then start time, then
	// sequence — the packet's path order (Interest hops ascend, then the
	// Data hops continue ascending on the return path).
	Spans []*SpanRecord
}

// Start returns the earliest span start (UnixNano).
func (tr *Trace) Start() int64 {
	min := int64(0)
	for i, s := range tr.Spans {
		if i == 0 || s.StartNano < min {
			min = s.StartNano
		}
	}
	return min
}

// Duration returns the wall span of the whole trace: earliest start to
// latest end across all spans.
func (tr *Trace) Duration() time.Duration {
	var min, max int64
	for i, s := range tr.Spans {
		end := s.StartNano + s.DurMicro*int64(time.Microsecond)
		if i == 0 {
			min, max = s.StartNano, end
			continue
		}
		if s.StartNano < min {
			min = s.StartNano
		}
		if end > max {
			max = end
		}
	}
	return time.Duration(max - min)
}

// Nacked reports whether any span ended in a NACK or drop outcome.
func (tr *Trace) Nacked() bool {
	for _, s := range tr.Spans {
		if strings.Contains(s.Outcome, "nack") || strings.HasPrefix(s.Outcome, "drop") {
			return true
		}
	}
	return false
}

// Outcome returns the final outcome on the path — the outcome of the
// highest-hop span (ties broken by latest start).
func (tr *Trace) Outcome() string {
	if len(tr.Spans) == 0 {
		return ""
	}
	return tr.Spans[len(tr.Spans)-1].Outcome
}

// Hops returns the highest hop index seen plus one.
func (tr *Trace) Hops() int {
	max := -1
	for _, s := range tr.Spans {
		if s.Hop > max {
			max = s.Hop
		}
	}
	return max + 1
}

// Collector accumulates spans and assembles them into Traces. It is not
// safe for concurrent use; callers feed it from one goroutine (the
// /tracez handler builds a fresh one per request from a recorder
// snapshot).
type Collector struct {
	byID map[uint64][]*SpanRecord
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{byID: make(map[uint64][]*SpanRecord)}
}

// Add feeds one finished span. Spans without a trace ID are ignored.
func (c *Collector) Add(rec *SpanRecord) {
	id := ParseHexID(rec.Trace)
	if id == 0 {
		return
	}
	c.byID[id] = append(c.byID[id], rec)
}

// AddSnapshot feeds every span from a flight-recorder snapshot.
func (c *Collector) AddSnapshot(recs []*SpanRecord) {
	for _, rec := range recs {
		c.Add(rec)
	}
}

// ReadSpans feeds JSONL span lines (a tracer's -trace output) from rd
// and returns the number of spans read. Blank lines are skipped; a
// malformed line aborts with its line number.
func (c *Collector) ReadSpans(rd io.Reader) (int, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo, read := 0, 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		rec := &SpanRecord{}
		if err := json.Unmarshal(line, rec); err != nil {
			return read, fmt.Errorf("span line %d: %w", lineNo, err)
		}
		c.Add(rec)
		read++
	}
	return read, sc.Err()
}

// sortSpans orders a trace's spans in path order.
func sortSpans(spans []*SpanRecord) {
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Hop != spans[j].Hop {
			return spans[i].Hop < spans[j].Hop
		}
		if spans[i].StartNano != spans[j].StartNano {
			return spans[i].StartNano < spans[j].StartNano
		}
		return spans[i].Seq < spans[j].Seq
	})
}

// Get assembles the trace with the given ID (nil when unknown).
func (c *Collector) Get(id uint64) *Trace {
	spans, ok := c.byID[id]
	if !ok {
		return nil
	}
	sorted := append([]*SpanRecord(nil), spans...)
	sortSpans(sorted)
	return &Trace{ID: id, Spans: sorted}
}

// Traces assembles every trace, most recent first.
func (c *Collector) Traces() []*Trace {
	out := make([]*Trace, 0, len(c.byID))
	for id := range c.byID {
		out = append(out, c.Get(id))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start() > out[j].Start() })
	return out
}

// waterfallWidth is the timeline bar width in characters.
const waterfallWidth = 40

// Waterfall renders the trace's hop-by-hop timeline as text: one row
// per span with its offset bar scaled to the trace duration, followed
// by the span's stage events.
func (tr *Trace) Waterfall(w io.Writer) {
	total := tr.Duration()
	fmt.Fprintf(w, "trace %s  spans=%d hops=%d dur=%s outcome=%s\n",
		HexID(tr.ID), len(tr.Spans), tr.Hops(), total.Round(time.Microsecond), tr.Outcome())
	start := tr.Start()
	for _, s := range tr.Spans {
		bar := timelineBar(s.StartNano-start, s.DurMicro*int64(time.Microsecond), int64(total))
		role := s.Role
		if role == "" {
			role = "-"
		}
		fmt.Fprintf(w, "  hop %d  %-12s %-8s %-8s %8dus  |%s|  %s\n",
			s.Hop, s.Node, role, s.Kind, s.DurMicro, bar, s.Outcome)
		for _, ev := range s.Events {
			detail := ev.Detail
			if detail != "" {
				detail = "  " + detail
			}
			if ev.DurMicros != 0 {
				fmt.Fprintf(w, "         · %-12s +%dus (%dus)%s\n", ev.Stage, ev.AtMicros, ev.DurMicros, detail)
			} else {
				fmt.Fprintf(w, "         · %-12s +%dus%s\n", ev.Stage, ev.AtMicros, detail)
			}
		}
	}
}

// timelineBar renders a fixed-width track with the span's active
// interval filled.
func timelineBar(offsetNano, durNano, totalNano int64) string {
	track := [waterfallWidth]byte{}
	for i := range track {
		track[i] = ' '
	}
	if totalNano <= 0 {
		totalNano = 1
	}
	from := int(offsetNano * waterfallWidth / totalNano)
	to := int((offsetNano + durNano) * waterfallWidth / totalNano)
	if from >= waterfallWidth {
		from = waterfallWidth - 1
	}
	if to <= from {
		to = from + 1
	}
	if to > waterfallWidth {
		to = waterfallWidth
	}
	for i := from; i < to; i++ {
		track[i] = '='
	}
	return string(track[:])
}
