// Health engine: evaluates per-node health rules against the metric
// registry. The rules are grounded in the paper's own invariants — the
// measured tag re-check rate should track FPP(BF_rE), so a Bloom filter
// whose measured FPP runs past its configured target is a saturation
// (or un-rotated revocation storm) signal; a sustained verify-shed burn
// is the stateless-forwarding brute-force signal; reconnect churn and
// reassembly evictions flag link instability and fragment floods.
// Surfaced machine-readable via /healthz (eventz.go).
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Metric family names the health rules read. Producers (forwarder,
// transport) alias these constants so the rule inputs and the emitters
// cannot drift apart.
const (
	// FamilyVerifySheds counts Interests shed by verify-pool admission.
	FamilyVerifySheds = "tactic_verify_sheds_total"
	// FamilyUplinkConnects counts managed-uplink (re)connects.
	FamilyUplinkConnects = "tactic_uplink_connects_total"
	// FamilyReassemblyEvictions counts fragment reassembly slots evicted
	// before completing (timeout or pressure).
	FamilyReassemblyEvictions = "tactic_udp_reassembly_evictions_total"
	// FamilyBFMeasuredFPP is the bits-exact measured false-positive
	// probability of the live revocation Bloom filter.
	FamilyBFMeasuredFPP = "tactic_bf_measured_fpp"
	// FamilyBFTargetFPP is the filter's configured FPP target.
	FamilyBFTargetFPP = "tactic_bf_target_fpp"
)

// HealthStatus is a node's overall condition.
type HealthStatus int

const (
	// HealthReady means no rule is firing.
	HealthReady HealthStatus = iota
	// HealthDegraded means at least one rule fired at warning severity.
	HealthDegraded
	// HealthUnhealthy means at least one rule fired at critical severity.
	HealthUnhealthy
)

// String returns the wire form ("ready", "degraded", "unhealthy").
func (s HealthStatus) String() string {
	switch s {
	case HealthDegraded:
		return "degraded"
	case HealthUnhealthy:
		return "unhealthy"
	}
	return "ready"
}

// HealthReason explains one firing rule.
type HealthReason struct {
	// Rule is the stable rule identifier.
	Rule string `json:"rule"`
	// Severity is "degraded" or "unhealthy".
	Severity string `json:"severity"`
	// Detail is a human-readable sentence.
	Detail string `json:"detail"`
	// Value is the observed quantity that tripped the rule.
	Value float64 `json:"value"`
	// Threshold is the limit it tripped over.
	Threshold float64 `json:"threshold"`
}

// HealthReport is one evaluation result, the /healthz payload.
type HealthReport struct {
	Node   string `json:"node,omitempty"`
	Status string `json:"status"`
	// Reasons lists every firing rule, worst first; empty when ready.
	Reasons []HealthReason `json:"reasons,omitempty"`
	// Rates holds the per-second rates the rules evaluated
	// (family name -> rate), for dashboards.
	Rates map[string]float64 `json:"rates,omitempty"`
	// SampledAt is when the registry was sampled.
	SampledAt time.Time `json:"sampled_at"`
	// WindowSeconds is the rate window this evaluation used (0 on the
	// first sample, when no rates are available yet).
	WindowSeconds float64 `json:"window_seconds"`
}

// HealthConfig tunes the rule thresholds. Zero values select defaults.
type HealthConfig struct {
	// ShedRatePerSec degrades the node when verify sheds exceed it
	// (default 25/s); sustained ShedRatePerSec*UnhealthyFactor is
	// unhealthy.
	ShedRatePerSec float64
	// UnhealthyFactor scales a degraded threshold up to its unhealthy
	// threshold (default 10).
	UnhealthyFactor float64
	// ReconnectsPerMin degrades the node when uplink reconnects exceed
	// it (default 6/min).
	ReconnectsPerMin float64
	// ReassemblyEvictsPerSec degrades the node when reassembly evictions
	// exceed it (default 50/s).
	ReassemblyEvictsPerSec float64
	// BFDegradedRatio degrades the node when measured FPP >= target *
	// ratio (default 1: measured at or past target is already the
	// paper's re-check invariant breaking). BFUnhealthyRatio (default 8)
	// marks it unhealthy.
	BFDegradedRatio  float64
	BFUnhealthyRatio float64
	// MinWindow is the shortest interval over which rates are computed;
	// evaluations arriving sooner reuse the previous rates (default 1s).
	MinWindow time.Duration
	// Now overrides the clock (tests).
	Now func() time.Time
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.ShedRatePerSec <= 0 {
		c.ShedRatePerSec = 25
	}
	if c.UnhealthyFactor <= 0 {
		c.UnhealthyFactor = 10
	}
	if c.ReconnectsPerMin <= 0 {
		c.ReconnectsPerMin = 6
	}
	if c.ReassemblyEvictsPerSec <= 0 {
		c.ReassemblyEvictsPerSec = 50
	}
	if c.BFDegradedRatio <= 0 {
		c.BFDegradedRatio = 1
	}
	if c.BFUnhealthyRatio <= 0 {
		c.BFUnhealthyRatio = 8
	}
	if c.MinWindow <= 0 {
		c.MinWindow = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Health evaluates node health from a metric registry. Eval is cheap
// (one registry snapshot plus a few map walks) and safe for concurrent
// callers.
type Health struct {
	reg  *Registry
	node string
	cfg  HealthConfig
	ev   *Events

	mu         sync.Mutex
	lastAt     time.Time
	lastTotals map[string]float64
	lastRates  map[string]float64
	lastStatus HealthStatus
	evaluated  bool
}

// NewHealth builds a health engine over reg for node. ev may be nil;
// when set, status transitions emit EventHealthChange.
func NewHealth(reg *Registry, node string, cfg HealthConfig, ev *Events) *Health {
	return &Health{reg: reg, node: node, cfg: cfg.withDefaults(), ev: ev}
}

// familyOf strips a rendered series name down to its family name.
func familyOf(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// Eval samples the registry and evaluates every rule, returning the
// report. Rate-based rules need two samples at least MinWindow apart;
// until then only level-based rules (BF saturation) can fire.
func (h *Health) Eval() HealthReport {
	cfg := h.cfg
	now := cfg.Now()
	snap := h.reg.Snapshot()

	// Collapse the snapshot into per-family aggregates: sums for the
	// counter families (rates are computed over the sum across labels)
	// and maxes for the FPP gauges (the worst filter on the node wins).
	totals := map[string]float64{}
	var measuredFPP, targetFPP float64
	for series, v := range snap {
		switch fam := familyOf(series); fam {
		case FamilyVerifySheds, FamilyUplinkConnects, FamilyReassemblyEvictions:
			totals[fam] += v
		case FamilyBFMeasuredFPP:
			if v > measuredFPP {
				measuredFPP = v
			}
		case FamilyBFTargetFPP:
			if v > targetFPP {
				targetFPP = v
			}
		}
	}

	h.mu.Lock()
	rates := h.lastRates
	window := 0.0
	if h.evaluated {
		dt := now.Sub(h.lastAt)
		if dt >= cfg.MinWindow {
			window = dt.Seconds()
			rates = make(map[string]float64, len(totals))
			for fam, cur := range totals {
				d := cur - h.lastTotals[fam]
				if d < 0 { // counter reset (restart)
					d = cur
				}
				rates[fam] = d / window
			}
			h.lastAt = now
			h.lastTotals = totals
			h.lastRates = rates
		} else if h.lastRates != nil {
			window = cfg.MinWindow.Seconds() // rates reused from the previous window
		}
	} else {
		h.lastAt = now
		h.lastTotals = totals
		h.evaluated = true
	}
	prevStatus := h.lastStatus
	h.mu.Unlock()

	var reasons []HealthReason
	addRule := func(rule string, value, degradedAt, unhealthyAt float64, unit string) {
		if value < degradedAt {
			return
		}
		sev, thr := "degraded", degradedAt
		if unhealthyAt > 0 && value >= unhealthyAt {
			sev, thr = "unhealthy", unhealthyAt
		}
		reasons = append(reasons, HealthReason{
			Rule:      rule,
			Severity:  sev,
			Detail:    fmt.Sprintf("%s at %.3g %s (threshold %.3g)", rule, value, unit, thr),
			Value:     value,
			Threshold: thr,
		})
	}

	if rates != nil {
		addRule("shed-burn", rates[FamilyVerifySheds],
			cfg.ShedRatePerSec, cfg.ShedRatePerSec*cfg.UnhealthyFactor, "sheds/s")
		addRule("reconnect-churn", rates[FamilyUplinkConnects]*60,
			cfg.ReconnectsPerMin, cfg.ReconnectsPerMin*cfg.UnhealthyFactor, "reconnects/min")
		addRule("reassembly-evictions", rates[FamilyReassemblyEvictions],
			cfg.ReassemblyEvictsPerSec, cfg.ReassemblyEvictsPerSec*cfg.UnhealthyFactor, "evictions/s")
	}
	// BF saturation is level-based: the paper's invariant is that the
	// re-check rate tracks FPP(BF_rE), so measured FPP running past the
	// configured target means the filter needs an epoch rotation.
	if targetFPP > 0 {
		addRule("bf-saturation", measuredFPP,
			targetFPP*cfg.BFDegradedRatio, targetFPP*cfg.BFUnhealthyRatio, "measured FPP")
	}

	status := HealthReady
	for _, r := range reasons {
		if r.Severity == "unhealthy" {
			status = HealthUnhealthy
			break
		}
		status = HealthDegraded
	}
	sort.SliceStable(reasons, func(i, j int) bool {
		return reasons[i].Severity == "unhealthy" && reasons[j].Severity != "unhealthy"
	})

	if status != prevStatus {
		h.mu.Lock()
		changed := h.lastStatus != status
		if changed {
			h.lastStatus = status
		}
		h.mu.Unlock()
		if changed {
			attr := prevStatus.String() + "->" + status.String()
			if len(reasons) > 0 {
				names := make([]string, len(reasons))
				for i, r := range reasons {
					names[i] = r.Rule
				}
				attr += " [" + strings.Join(names, ",") + "]"
			}
			h.ev.Emit(EventHealthChange, -1, attr, uint64(status))
		}
	}

	return HealthReport{
		Node:          h.node,
		Status:        status.String(),
		Reasons:       reasons,
		Rates:         rates,
		SampledAt:     now,
		WindowSeconds: window,
	}
}
