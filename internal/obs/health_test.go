package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// fakeClock steps time deterministically for rate windows.
type fakeClock struct{ at time.Time }

func (c *fakeClock) now() time.Time           { return c.at }
func (c *fakeClock) step(d time.Duration)     { c.at = c.at.Add(d) }
func newFakeClock() *fakeClock                { return &fakeClock{at: time.Unix(1700000000, 0)} }
func healthCfg(c *fakeClock) HealthConfig     { return HealthConfig{Now: c.now, MinWindow: time.Second} }
func findReason(r HealthReport, rule string) *HealthReason {
	for i := range r.Reasons {
		if r.Reasons[i].Rule == rule {
			return &r.Reasons[i]
		}
	}
	return nil
}

func TestHealthShedBurn(t *testing.T) {
	reg := NewRegistry()
	sheds := reg.Counter(FamilyVerifySheds, L("role", "edge"))
	clk := newFakeClock()
	h := NewHealth(reg, "edge-0", healthCfg(clk), nil)

	rep := h.Eval()
	if rep.Status != "ready" || rep.WindowSeconds != 0 {
		t.Fatalf("first eval = %+v", rep)
	}

	// 100 sheds over 2s = 50/s > default 25/s: degraded.
	sheds.Add(100)
	clk.step(2 * time.Second)
	rep = h.Eval()
	if rep.Status != "degraded" {
		t.Fatalf("status = %s, want degraded (%+v)", rep.Status, rep)
	}
	r := findReason(rep, "shed-burn")
	if r == nil || r.Value != 50 || r.Severity != "degraded" {
		t.Fatalf("shed-burn reason = %+v", r)
	}

	// 1000 sheds over 2s = 500/s >= 25*10: unhealthy.
	sheds.Add(1000)
	clk.step(2 * time.Second)
	rep = h.Eval()
	if rep.Status != "unhealthy" {
		t.Fatalf("status = %s, want unhealthy", rep.Status)
	}

	// Quiet window: recovers.
	clk.step(2 * time.Second)
	rep = h.Eval()
	if rep.Status != "ready" {
		t.Fatalf("status = %s, want ready after quiet window", rep.Status)
	}
}

func TestHealthMinWindowReusesRates(t *testing.T) {
	reg := NewRegistry()
	sheds := reg.Counter(FamilyVerifySheds)
	clk := newFakeClock()
	h := NewHealth(reg, "n", healthCfg(clk), nil)
	h.Eval()
	sheds.Add(60)
	clk.step(2 * time.Second)
	if rep := h.Eval(); rep.Status != "degraded" {
		t.Fatalf("status = %s, want degraded", rep.Status)
	}
	// 100ms later (< MinWindow): the previous verdict's rates persist
	// rather than computing a bogus rate over a near-zero window.
	clk.step(100 * time.Millisecond)
	rep := h.Eval()
	if rep.Status != "degraded" {
		t.Fatalf("sub-window eval status = %s, want degraded (reused rates)", rep.Status)
	}
	if rep.Rates[FamilyVerifySheds] != 30 {
		t.Fatalf("reused rate = %v, want 30", rep.Rates[FamilyVerifySheds])
	}
}

func TestHealthReconnectChurnAndEvictions(t *testing.T) {
	reg := NewRegistry()
	conns := reg.Counter(FamilyUplinkConnects, L("uplink", "0"))
	evicts := reg.Counter(FamilyReassemblyEvictions, L("face", "3"))
	clk := newFakeClock()
	h := NewHealth(reg, "n", healthCfg(clk), nil)
	h.Eval()

	// 2 reconnects in 10s = 12/min > default 6/min.
	conns.Add(2)
	evicts.Add(1000) // 100/s > default 50/s
	clk.step(10 * time.Second)
	rep := h.Eval()
	if rep.Status != "degraded" {
		t.Fatalf("status = %s, want degraded", rep.Status)
	}
	if findReason(rep, "reconnect-churn") == nil {
		t.Fatalf("missing reconnect-churn: %+v", rep.Reasons)
	}
	if findReason(rep, "reassembly-evictions") == nil {
		t.Fatalf("missing reassembly-evictions: %+v", rep.Reasons)
	}
}

func TestHealthBFSaturationWatchdog(t *testing.T) {
	reg := NewRegistry()
	measured := 0.0005
	reg.GaugeFunc(FamilyBFMeasuredFPP, func() float64 { return measured })
	reg.GaugeFunc(FamilyBFTargetFPP, func() float64 { return 0.001 })
	clk := newFakeClock()
	ev := NewEvents("n", 8)
	h := NewHealth(reg, "n", healthCfg(clk), ev)

	// Below target: fine, even on the very first sample (level-based,
	// no rate window needed).
	if rep := h.Eval(); rep.Status != "ready" {
		t.Fatalf("below-target status = %s", rep.Status)
	}

	// Measured crosses target: degraded.
	measured = 0.002
	clk.step(2 * time.Second)
	rep := h.Eval()
	r := findReason(rep, "bf-saturation")
	if rep.Status != "degraded" || r == nil {
		t.Fatalf("watchdog did not fire: %+v", rep)
	}
	if r.Value != 0.002 || r.Threshold != 0.001 {
		t.Fatalf("bf-saturation reason = %+v", r)
	}

	// 8x target: unhealthy.
	measured = 0.009
	clk.step(2 * time.Second)
	if rep := h.Eval(); rep.Status != "unhealthy" {
		t.Fatalf("8x status = %s, want unhealthy", rep.Status)
	}

	// Rotation resets the filter; measured FPP collapses and the
	// watchdog clears.
	measured = 0
	clk.step(2 * time.Second)
	if rep := h.Eval(); rep.Status != "ready" {
		t.Fatalf("post-rotate status = %s, want ready", rep.Status)
	}

	// The transitions surfaced as health_change events.
	var changes []Event
	for _, e := range ev.Snapshot() {
		if e.Type == EventHealthChange {
			changes = append(changes, e)
		}
	}
	if len(changes) != 3 {
		t.Fatalf("health_change events = %d (%+v), want 3", len(changes), changes)
	}
	if changes[0].Attr[:len("ready->degraded")] != "ready->degraded" {
		t.Fatalf("first transition attr = %q", changes[0].Attr)
	}
}

func TestHealthzHandler(t *testing.T) {
	reg := NewRegistry()
	sheds := reg.Counter(FamilyVerifySheds)
	clk := newFakeClock()
	h := NewHealth(reg, "edge-0", HealthConfig{Now: clk.now, ShedRatePerSec: 10, UnhealthyFactor: 2}, nil)
	mux := http.NewServeMux()
	AttachHealthz(mux, h)

	get := func() (int, HealthReport) {
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
		var rep HealthReport
		if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
			t.Fatalf("healthz json: %v", err)
		}
		return rr.Code, rep
	}

	if code, rep := get(); code != 200 || rep.Status != "ready" || rep.Node != "edge-0" {
		t.Fatalf("ready: code=%d rep=%+v", code, rep)
	}

	sheds.Add(1000) // 500/s over 2s >= 10*2: unhealthy
	clk.step(2 * time.Second)
	if code, rep := get(); code != http.StatusServiceUnavailable || rep.Status != "unhealthy" {
		t.Fatalf("unhealthy: code=%d rep=%+v", code, rep)
	}
}
