package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", L("role", "edge"))
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	// Same name+labels resolves to the same series.
	if r.Counter("requests_total", L("role", "edge")) != c {
		t.Error("re-resolution returned a different counter")
	}
	// Different labels are a different series.
	if r.Counter("requests_total", L("role", "core")) == c {
		t.Error("distinct labels shared a series")
	}

	g := r.Gauge("fill_ratio")
	g.Set(0.25)
	if g.Value() != 0.25 {
		t.Errorf("gauge = %v", g.Value())
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", L("a", "1"), L("b", "2"))
	b := r.Counter("x_total", L("b", "2"), L("a", "1"))
	if a != b {
		t.Error("label order changed series identity")
	}
}

func TestNilRegistryNoOps(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h", nil).Observe(1)
	r.GaugeFunc("gf", func() float64 { return 1 })
	r.CounterFunc("cf", func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot should be nil")
	}
	var sp *Span
	sp.Event("stage", "detail")
	sp.End("ok")
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("gauge reuse of a counter name did not panic")
		}
	}()
	r.Gauge("m")
}

func TestHistogramBucketsAndRendering(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.1, 1}, L("role", "edge"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	if h.Count() != 3 {
		t.Errorf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-5.55) > 1e-9 {
		t.Errorf("sum = %v", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{role="edge",le="0.1"} 1`,
		`lat_seconds_bucket{role="edge",le="1"} 2`,
		`lat_seconds_bucket{role="edge",le="+Inf"} 3`,
		`lat_seconds_count{role="edge"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Help("frames_total", "Frames per face.")
	r.Counter("frames_total", L("face", "0"), L("dir", "in")).Add(7)
	r.GaugeFunc("pit_entries", func() float64 { return 42 })
	r.CounterFunc("verify_total", func() float64 { return 9 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP frames_total Frames per face.",
		"# TYPE frames_total counter",
		`frames_total{dir="in",face="0"} 7`,
		"# TYPE pit_entries gauge",
		"pit_entries 42",
		"# TYPE verify_total counter",
		"verify_total 9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Histogram("h_seconds", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if snap["a_total"] != 3 {
		t.Errorf("a_total = %v", snap["a_total"])
	}
	if snap["h_seconds_count"] != 1 || snap["h_seconds_sum"] != 0.5 {
		t.Errorf("histogram snapshot = %v", snap)
	}
}

// TestConcurrentIncrements exercises the lock-free paths under the race
// detector.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	h := r.Histogram("h_seconds", []float64{0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.25)
				// Concurrent resolution of new series must also be safe.
				r.Counter("g_total", L("i", "x")).Inc()
			}
		}()
	}
	// Scrape concurrently with the increments.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
	// All goroutines must have resolved the one g_total series: a racy
	// resolver could hand out two distinct handles and lose increments.
	if v := r.Counter("g_total", L("i", "x")).Value(); v != 8000 {
		t.Errorf("concurrently resolved counter = %d, want 8000", v)
	}
}

// TestCounterAndCounterFuncShareFamily: the simulator's PublishObs
// publishes plain counters under the same metric names the live
// forwarder registers as CounterFunc (distinct label sets). Both render
// as Prometheus counters, so one registry must accept the mix.
func TestCounterAndCounterFuncShareFamily(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("bf_lookups_total", func() float64 { return 11 }, L("role", "edge"))
	r.Counter("bf_lookups_total", L("role", "edge"), L("run", "sim1")).Add(5)
	r.GaugeFunc("fill_ratio", func() float64 { return 0.5 }, L("role", "edge"))
	r.Gauge("fill_ratio", L("run", "sim1")).Set(0.25)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE bf_lookups_total counter",
		`bf_lookups_total{role="edge"} 11`,
		`bf_lookups_total{role="edge",run="sim1"} 5`,
		`fill_ratio{role="edge"} 0.5`,
		`fill_ratio{run="sim1"} 0.25`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// A single exact (name, labels) series still cannot be both a direct
// counter and a sampling callback.
func TestDirectAndFuncSameSeriesPanics(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("m_total", func() float64 { return 1 }, L("role", "edge"))
	defer func() {
		if recover() == nil {
			t.Error("direct counter reuse of a func-backed series did not panic")
		}
	}()
	r.Counter("m_total", L("role", "edge"))
}

// TestScrapeDoesNotHoldLockDuringCallbacks: a GaugeFunc that itself
// resolves a new metric on the registry must not deadlock (the scrape
// snapshots the series list before calling callbacks).
func TestScrapeDoesNotHoldLockDuringCallbacks(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("self_referential", func() float64 {
		r.Counter("created_during_scrape_total").Inc()
		return 1
	})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "self_referential 1") {
		t.Errorf("gauge func not rendered:\n%s", b.String())
	}
}
