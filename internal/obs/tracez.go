// /tracez: the fleet telemetry view over a node's flight recorder —
// recent, slowest, and NACKed traces, plus a per-trace hop-by-hop
// waterfall. Mounted on the admin mux next to /metrics and /statusz.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// tracezList caps for each section of the index page.
const (
	tracezRecent  = 20
	tracezSlowest = 10
	tracezNacked  = 10
)

// AttachTracez mounts the /tracez handler for tr on mux. The handler
// tolerates a nil tracer or a tracer without a flight recorder (it
// reports tracing as disabled), so commands can attach unconditionally.
//
//	/tracez                  index: recent / slowest / NACKed traces
//	/tracez?trace=<hex id>   one trace's hop-by-hop waterfall
//	/tracez?format=json      assembled traces as JSON
func AttachTracez(mux *http.ServeMux, tr *Tracer) {
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		rec := tr.Recorder()
		if rec == nil {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "tracing disabled: no flight recorder (run with -trace-ring > 0)")
			return
		}
		c := NewCollector()
		c.AddSnapshot(rec.Snapshot())

		if q := r.URL.Query().Get("trace"); q != "" {
			trace := c.Get(ParseHexID(q))
			if trace == nil {
				http.Error(w, fmt.Sprintf("trace %s not in flight recorder (ring holds last %d spans)", q, rec.Cap()), http.StatusNotFound)
				return
			}
			if r.URL.Query().Get("format") == "json" {
				writeTraceJSON(w, []*Trace{trace})
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			trace.Waterfall(w)
			return
		}

		traces := c.Traces()
		if r.URL.Query().Get("format") == "json" {
			writeTraceJSON(w, traces)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "tracez node=%s  spans recorded=%d  ring=%d/%d spans  traces=%d\n",
			tr.Node(), tr.Spans(), len(rec.Snapshot()), rec.Cap(), len(traces))
		fmt.Fprintln(w, "open one with /tracez?trace=<id>")

		fmt.Fprintf(w, "\n== recent (%d of %d) ==\n", min(tracezRecent, len(traces)), len(traces))
		for i, t := range traces {
			if i >= tracezRecent {
				break
			}
			writeTraceLine(w, t)
		}

		slow := append([]*Trace(nil), traces...)
		for i := 1; i < len(slow); i++ {
			for j := i; j > 0 && slow[j].Duration() > slow[j-1].Duration(); j-- {
				slow[j], slow[j-1] = slow[j-1], slow[j]
			}
		}
		fmt.Fprintf(w, "\n== slowest ==\n")
		for i, t := range slow {
			if i >= tracezSlowest {
				break
			}
			writeTraceLine(w, t)
		}

		fmt.Fprintf(w, "\n== nacked/dropped ==\n")
		n := 0
		for _, t := range traces {
			if !t.Nacked() {
				continue
			}
			writeTraceLine(w, t)
			if n++; n >= tracezNacked {
				break
			}
		}
		if n == 0 {
			fmt.Fprintln(w, "(none)")
		}
	})
}

// writeTraceLine prints one index row.
func writeTraceLine(w http.ResponseWriter, t *Trace) {
	fmt.Fprintf(w, "trace=%-16s hops=%d spans=%d dur=%-10s outcome=%s\n",
		HexID(t.ID), t.Hops(), len(t.Spans), t.Duration().Round(time.Microsecond), t.Outcome())
}

// writeTraceJSON renders assembled traces as JSON.
func writeTraceJSON(w http.ResponseWriter, traces []*Trace) {
	type jsonTrace struct {
		ID      string        `json:"trace"`
		Hops    int           `json:"hops"`
		DurUs   int64         `json:"dur_us"`
		Outcome string        `json:"outcome"`
		Spans   []*SpanRecord `json:"spans"`
	}
	out := make([]jsonTrace, 0, len(traces))
	for _, t := range traces {
		out = append(out, jsonTrace{
			ID:      HexID(t.ID),
			Hops:    t.Hops(),
			DurUs:   t.Duration().Microseconds(),
			Outcome: t.Outcome(),
			Spans:   t.Spans,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out) //nolint:errcheck // client gone mid-write
}

// ServeAdminTracer is ServeAdmin plus a /tracez endpoint backed by tr's
// flight recorder.
func ServeAdminTracer(addr string, reg *Registry, statusz func() any, tr *Tracer) (net.Listener, error) {
	mux := NewAdminMux(reg, statusz)
	AttachTracez(mux, tr)
	return serveMux(addr, mux)
}
