package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSpanEmitsJSONLine(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer("edge-0", 1, &buf)
	sp := tr.Start("interest", "/prov0/report/chunk0")
	sp.Event("precheck", "ok")
	sp.Event("bf_lookup", "hit")
	sp.Event("flag", "F=0.0001")
	sp.End("forwarded")

	line := strings.TrimSpace(buf.String())
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("span is not valid JSON: %v\n%s", err, line)
	}
	if rec["node"] != "edge-0" || rec["kind"] != "interest" || rec["outcome"] != "forwarded" {
		t.Errorf("span fields = %v", rec)
	}
	events, ok := rec["events"].([]any)
	if !ok || len(events) != 3 {
		t.Fatalf("events = %v", rec["events"])
	}
	first := events[0].(map[string]any)
	if first["stage"] != "precheck" || first["d"] != "ok" {
		t.Errorf("first event = %v", first)
	}
	if tr.Spans() != 1 {
		t.Errorf("spans = %d", tr.Spans())
	}
}

func TestTracerSampling(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer("n", 0.1, &buf)
	const total = 1000
	kept := 0
	for i := 0; i < total; i++ {
		if sp := tr.Start("interest", "/x"); sp != nil {
			kept++
			sp.End("ok")
		}
	}
	if kept != total/10 {
		t.Errorf("kept %d of %d at sample 0.1, want exactly %d (stride sampling)", kept, total, total/10)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
	}
	if lines != kept {
		t.Errorf("emitted %d lines for %d kept spans", lines, kept)
	}
}

func TestTracerDisabled(t *testing.T) {
	if tr := NewTracer("n", 0, &bytes.Buffer{}); tr != nil {
		t.Error("sample 0 should disable the tracer")
	}
	if tr := NewTracer("n", 1, nil); tr != nil {
		t.Error("nil writer should disable the tracer")
	}
	var tr *Tracer
	sp := tr.Start("interest", "/x") // must not panic
	sp.Event("a", "b")
	sp.End("ok")
	if tr.Spans() != 0 {
		t.Error("nil tracer counted spans")
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer("n", 1, &buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.Start("interest", "/x")
				sp.Event("stage", "d")
				sp.End("ok")
			}
		}()
	}
	wg.Wait()
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("interleaved/corrupt line: %v", err)
		}
		lines++
	}
	if lines != 800 {
		t.Errorf("lines = %d, want 800", lines)
	}
}
