// Package obs is the runtime observability subsystem for the live TACTIC
// stack and the simulator: a dependency-light registry of named counters,
// gauges, and fixed-bucket histograms with labels, per-Interest trace
// spans (trace.go), and HTTP exposition in Prometheus text format plus a
// JSON status snapshot and pprof (http.go).
//
// Design constraints, in order:
//
//   - The increment path must be lock-free: instrumented code resolves
//     its metrics once (Registry.Counter et al., which take the registry
//     lock) and then increments via atomics only.
//   - Every type tolerates a nil receiver as a no-op, so instrumented
//     packages run unchanged when observability is not configured — a
//     forwarder built without a Registry pays one nil check per event.
//   - Scrapes never call user callbacks while holding the registry lock
//     (the series list is snapshotted first), so a GaugeFunc may itself
//     take locks that instrumented code holds while creating metrics.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	// Key is the label name.
	Key string
	// Value is the label value.
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter. The zero value is ready
// to use; a nil Counter ignores increments.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable value. The zero value is ready; nil ignores sets.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed buckets, Prometheus
// style: counts per upper bound plus an implicit +Inf bucket, a running
// sum, and a total count. Observe is atomic and lock-free; nil ignores
// observations.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, +Inf excluded
	counts  []atomic.Uint64
	infCnt  atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
	// exemplars holds the most recent trace ID observed into each bucket
	// (parallel to counts, one extra slot for +Inf; zero = none), so a
	// bad latency bucket links to a concrete trace in /tracez.
	exemplars []atomic.Uint64
}

// DefLatencyBuckets spans 10 µs – 2.5 s, tuned for the per-hop pipeline
// latencies the forwarder observes.
var DefLatencyBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5,
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{bounds: bs}
	h.counts = make([]atomic.Uint64, len(bs))
	h.exemplars = make([]atomic.Uint64, len(bs)+1)
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.ObserveTraced(v, 0)
}

// ObserveTraced records one sample and, when traceID is non-zero,
// remembers it as the bucket's exemplar — the trace that most recently
// landed there.
func (h *Histogram) ObserveTraced(v float64, traceID uint64) {
	if h == nil {
		return
	}
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			if traceID != 0 {
				h.exemplars[i].Store(traceID)
			}
			placed = true
			break
		}
	}
	if !placed {
		h.infCnt.Add(1)
		if traceID != 0 {
			h.exemplars[len(h.bounds)].Store(traceID)
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// kind discriminates metric families.
type kind uint8

const (
	kindCounter kind = iota + 1
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k kind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labelled instance of a family. Exactly one backing slot
// is populated inside Registry.get while the registry lock is held;
// counter/gauge/hist never change afterwards, and fn is atomic so a
// re-registered callback cannot race a concurrent scrape.
type series struct {
	labels  string // rendered {k="v",...} suffix, "" when unlabelled
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      atomic.Pointer[func() float64]
}

// family groups all series sharing one metric name.
type family struct {
	name   string
	kind   kind
	help   string
	series map[string]*series
}

// Registry holds named metrics. Metric resolution (Counter, Gauge, …)
// takes a lock; the returned handles increment lock-free. A nil Registry
// resolves every metric to nil, which no-ops — instrumented code need not
// guard call sites.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	start    time.Time
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family), start: time.Now()}
}

// Uptime reports time since the registry was created.
func (r *Registry) Uptime() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}

// renderLabels builds the canonical {k="v",...} suffix with keys sorted,
// so the same label set always maps to the same series.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`=`)
		b.WriteString(strconv.Quote(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// get returns the series for (name, labels), creating family and series
// as needed; the series' backing value (counter, gauge, histogram, or
// callback) is initialized here, under the registry lock, so callers
// only ever read an already-populated series. Kinds that render to the
// same Prometheus type are compatible — a family may mix direct
// counters and CounterFunc-sampled counters (under distinct labels), as
// the simulator's PublishObs and the live forwarder do. get panics when
// a name is reused with an incompatible type, or when one exact
// (name, labels) series is requested both direct and func-backed —
// programming errors that would corrupt the exposition.
func (r *Registry) get(name string, k kind, bounds []float64, fn func() float64, labels []Label) *series {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, kind: k, series: make(map[string]*series)}
		r.families[name] = fam
	} else if fam.kind == 0 {
		fam.kind = k // family pre-created by Help
	} else if fam.kind.promType() != k.promType() {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, fam.kind.promType(), k.promType()))
	}
	s, ok := fam.series[key]
	if !ok {
		s = &series{labels: key}
		switch k {
		case kindCounter:
			s.counter = new(Counter)
		case kindGauge:
			s.gauge = new(Gauge)
		case kindHistogram:
			s.hist = newHistogram(bounds)
		case kindCounterFunc, kindGaugeFunc:
			s.fn.Store(&fn)
		}
		fam.series[key] = s
		return s
	}
	switch k {
	case kindCounter:
		if s.counter == nil {
			panic(fmt.Sprintf("obs: metric %s%s registered as both a direct counter and a sampling callback", name, key))
		}
	case kindGauge:
		if s.gauge == nil {
			panic(fmt.Sprintf("obs: metric %s%s registered as both a direct gauge and a sampling callback", name, key))
		}
	case kindCounterFunc, kindGaugeFunc:
		if s.fn.Load() == nil {
			panic(fmt.Sprintf("obs: metric %s%s registered as both a sampling callback and a direct %s", name, key, k.promType()))
		}
		s.fn.Store(&fn) // re-registration replaces the callback
	}
	return s
}

// Help attaches a description emitted as the family's # HELP line.
func (r *Registry) Help(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if fam, ok := r.families[name]; ok {
		fam.help = text
	} else {
		r.families[name] = &family{name: name, help: text, series: make(map[string]*series)}
	}
}

// Counter returns (creating if needed) the counter for name+labels.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, kindCounter, nil, nil, labels).counter
}

// Gauge returns (creating if needed) the gauge for name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, kindGauge, nil, nil, labels).gauge
}

// Histogram returns (creating if needed) the histogram for name+labels.
// bounds are bucket upper bounds (nil = DefLatencyBuckets); they are
// fixed on first creation.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	return r.get(name, kindHistogram, bounds, nil, labels).hist
}

// CounterFunc registers a callback sampled at scrape time and exposed as
// a counter — for monotonic totals owned by other subsystems (the Bloom
// filter's lookup count, the validator's verification count). fn may take
// locks; it is never called under the registry lock. Registering the
// same name+labels again replaces the callback.
func (r *Registry) CounterFunc(name string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.get(name, kindCounterFunc, nil, fn, labels)
}

// GaugeFunc registers a callback sampled at scrape time and exposed as a
// gauge — for instantaneous sizes (PIT entries, BF fill ratio).
// Registering the same name+labels again replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.get(name, kindGaugeFunc, nil, fn, labels)
}

// snapshotFamilies copies the family/series structure under the read
// lock so value collection can run unlocked (see package comment).
func (r *Registry) snapshotFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, fam := range r.families {
		cp := &family{name: fam.name, kind: fam.kind, help: fam.help, series: make(map[string]*series, len(fam.series))}
		for k, s := range fam.series {
			cp.series[k] = s
		}
		fams = append(fams, cp)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// value evaluates one series to a float.
func (s *series) value() float64 {
	switch {
	case s.counter != nil:
		return float64(s.counter.Value())
	case s.gauge != nil:
		return s.gauge.Value()
	}
	if fn := s.fn.Load(); fn != nil {
		return (*fn)()
	}
	return 0
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedSeries returns a family's series in stable label order.
func (fam *family) sortedSeries() []*series {
	keys := make([]string, 0, len(fam.series))
	for k := range fam.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*series, 0, len(keys))
	for _, k := range keys {
		out = append(out, fam.series[k])
	}
	return out
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, fam := range r.snapshotFamilies() {
		if fam.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam.name, fam.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.name, fam.kind.promType()); err != nil {
			return err
		}
		for _, s := range fam.sortedSeries() {
			if fam.kind == kindHistogram {
				if err := writeHistogram(w, fam.name, s); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", fam.name, s.labels, formatFloat(s.value())); err != nil {
				return err
			}
		}
	}
	return nil
}

// withLabel splices one extra label into a rendered label suffix.
func withLabel(rendered, key, value string) string {
	extra := key + `=` + strconv.Quote(value)
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

func writeHistogram(w io.Writer, name string, s *series) error {
	h := s.hist
	if h == nil {
		return nil
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		le := withLabel(s.labels, "le", formatFloat(b))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le, cum); err != nil {
			return err
		}
		// Exemplars ride as comment lines so any 0.0.4 text parser
		// ignores them; /tracez?trace=<id> resolves the trace.
		if ex := h.exemplars[i].Load(); ex != 0 {
			if _, err := fmt.Fprintf(w, "# exemplar %s_bucket%s trace=%s\n", name, le, HexID(ex)); err != nil {
				return err
			}
		}
	}
	cum += h.infCnt.Load()
	le := withLabel(s.labels, "le", "+Inf")
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le, cum); err != nil {
		return err
	}
	if ex := h.exemplars[len(h.bounds)].Load(); ex != 0 {
		if _, err := fmt.Fprintf(w, "# exemplar %s_bucket%s trace=%s\n", name, le, HexID(ex)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	// _count must equal the +Inf bucket (Prometheus spec). Reusing cum —
	// rather than re-loading h.Count() — keeps the two consistent even
	// when Observe races the scrape between the loads.
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, cum)
	return err
}

// Snapshot returns every scalar series as rendered-name → value
// (histograms contribute _count and _sum entries). Used by /statusz and
// by tests.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64)
	for _, fam := range r.snapshotFamilies() {
		for _, s := range fam.sortedSeries() {
			if fam.kind == kindHistogram {
				out[fam.name+"_count"+s.labels] = float64(s.hist.Count())
				out[fam.name+"_sum"+s.labels] = s.hist.Sum()
				continue
			}
			out[fam.name+s.labels] = s.value()
		}
	}
	return out
}
