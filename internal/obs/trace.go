// Distributed per-packet tracing: a Span follows one packet through a
// node's enforcement pipeline (pre-check → BF lookup → signature verify
// → forward/NACK) and, when it ends, is emitted as one JSON line and/or
// retained in the node's bounded flight recorder (recorder.go). Spans
// carry the wire TraceContext (trace ID, parent span ID, hop count), so
// spans recorded by different nodes assemble into end-to-end path
// timelines (collector.go).
//
// The hot-path contract: an unsampled packet costs one atomic add and a
// branch-free fixed-point multiply — zero allocations. Sampled packets
// reuse pooled Span objects and a per-tracer encoder buffer.
package obs

import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceCtx mirrors the wire-level TraceContext (internal/ndn) without
// importing it: the end-to-end trace ID, the span ID of the previous
// hop, this node's hop index, and the head-sampling decision. obs stays
// dependency-free so any layer can use it.
type TraceCtx struct {
	// TraceID identifies the end-to-end request; zero means untraced.
	TraceID uint64
	// ParentID is the previous hop's span ID.
	ParentID uint64
	// Hop is this node's hop index (the originator is hop 0).
	Hop uint8
	// Sampled forces span recording regardless of the local sample rate.
	Sampled bool
}

// Tracer records sampled trace spans, writing JSON lines to w and/or
// retaining them in a flight-recorder ring. A nil Tracer (or the nil
// Span an unsampled Start returns) no-ops, so instrumented code traces
// unconditionally.
type Tracer struct {
	node string
	role string
	// thresh is the local sampling rate in 32.32 fixed point: span seq i
	// is kept iff (i·thresh) mod 2³² < thresh, the integer form of
	// stride sampling (exactly ⌊n·sample⌋ of n spans kept, evenly
	// spread, no RNG and no floating point on the hot path).
	thresh uint64
	idBase uint64
	rec    *Recorder
	mu     sync.Mutex // guards w and buf
	w      io.Writer
	buf    []byte
	pool   sync.Pool
	seq    atomic.Uint64
	ids    atomic.Uint64
	spans  atomic.Uint64
}

// NewTracer creates a tracer writing JSON lines to w. node names the
// emitting process in every span. sample in (0,1] is the fraction of
// packets locally sampled: 1 traces everything; 0.01 keeps ~one in a
// hundred. Wire-sampled packets (TraceCtx.Sampled) are always recorded.
func NewTracer(node string, sample float64, w io.Writer) *Tracer {
	if sample <= 0 || w == nil {
		return nil
	}
	return NewTracerRecorder(node, sample, w, nil)
}

// NewTracerRecorder creates a tracer that writes JSON lines to w (may
// be nil) and retains finished spans in rec (may be nil). Unlike
// NewTracer, sample <= 0 is allowed and means "record only wire-sampled
// packets" — the mode a forwarder runs in when clients own the
// head-sampling decision. Returns nil only when there is nowhere to
// deliver spans.
func NewTracerRecorder(node string, sample float64, w io.Writer, rec *Recorder) *Tracer {
	if w == nil && rec == nil {
		return nil
	}
	t := &Tracer{node: node, w: w, rec: rec, idBase: splitmix64(fnv1a(node))}
	if sample > 0 {
		if sample > 1 {
			sample = 1
		}
		t.thresh = uint64(sample*float64(1<<32) + 0.5)
		if t.thresh == 0 {
			t.thresh = 1
		}
	}
	t.pool.New = func() any { return new(Span) }
	return t
}

// SetRole labels this node's spans with a topology role ("edge",
// "core", "client", "producer"). Call before the tracer is used; it is
// not synchronised with concurrent spans.
func (t *Tracer) SetRole(role string) {
	if t != nil {
		t.role = role
	}
}

// Node returns the tracer's node name ("" for nil).
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// Recorder returns the tracer's flight recorder, if any.
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// Spans returns the number of spans recorded.
func (t *Tracer) Spans() uint64 {
	if t == nil {
		return 0
	}
	return t.spans.Load()
}

// newID mints a process-unique non-zero 64-bit ID.
func (t *Tracer) newID() uint64 {
	for {
		if id := splitmix64(t.idBase + t.ids.Add(1)); id != 0 {
			return id
		}
	}
}

// splitmix64 is the SplitMix64 finalizer — a cheap bijective mixer that
// turns a counter into well-distributed IDs.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// fnv1a hashes a string (FNV-1a 64).
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// SpanEvent is one annotated pipeline stage inside a span.
type SpanEvent struct {
	// Stage names the pipeline step ("decode", "bf_lookup", "verify",
	// "pit_cs", "encode_send", "precheck", "flag", ...).
	Stage string `json:"stage"`
	// AtMicros is the stage's offset from span start in microseconds.
	AtMicros int64 `json:"us"`
	// DurMicros is the stage's duration in microseconds when measured
	// (zero when the event is a point annotation).
	DurMicros int64 `json:"stage_us,omitempty"`
	// Detail carries a stage-specific annotation ("hit", "miss",
	// "reason=...", "F=0.0001").
	Detail string `json:"d,omitempty"`
}

// SpanRecord is the finished-span shape: the JSON line a tracer emits
// and the unit the flight recorder and collector handle. Trace, Span,
// and Parent are lowercase-hex IDs ("" when the span is node-local
// only).
type SpanRecord struct {
	Time      string      `json:"t"`
	Node      string      `json:"node"`
	Role      string      `json:"role,omitempty"`
	Kind      string      `json:"kind"`
	Name      string      `json:"name"`
	Trace     string      `json:"trace,omitempty"`
	Span      string      `json:"span,omitempty"`
	Parent    string      `json:"parent,omitempty"`
	Hop       int         `json:"hop"`
	Seq       uint64      `json:"seq"`
	StartNano int64       `json:"ts_ns"`
	Events    []SpanEvent `json:"events,omitempty"`
	Outcome   string      `json:"outcome"`
	DurMicro  int64       `json:"dur_us"`
}

// HexID renders a trace/span ID the way SpanRecord stores it.
func HexID(id uint64) string {
	if id == 0 {
		return ""
	}
	return strconv.FormatUint(id, 16)
}

// ParseHexID reverses HexID (0 for empty or malformed input).
func ParseHexID(s string) uint64 {
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0
	}
	return id
}

// maxSpanEvents bounds a span's inline event storage; events beyond it
// are dropped (the pipeline has ~6 stages, so 12 leaves headroom).
const maxSpanEvents = 12

// Span is one in-flight trace. It is owned by a single goroutine (the
// pipeline serialises packet handling) and must not be shared or used
// after End, which recycles it.
type Span struct {
	tracer  *Tracer
	start   time.Time
	kind    string
	name    string
	traceID uint64
	spanID  uint64
	parent  uint64
	hop     uint8
	wire    bool // trace ID came off the wire (vs. minted locally)
	sampled bool // the originator's head-sampling decision
	seq     uint64
	nev     int
	events  [maxSpanEvents]SpanEvent
}

// Start begins a span for a packet with no wire trace context. It
// returns nil (a no-op span) when the tracer is nil or the packet is
// not locally sampled. kind distinguishes pipelines ("interest",
// "data"); name is the packet name.
func (t *Tracer) Start(kind, name string) *Span {
	return t.StartCtx(TraceCtx{}, kind, name)
}

// StartCtx begins a span for a packet carrying wire trace context ctx
// (the zero TraceCtx for untraced packets). The packet is recorded when
// the wire says so (ctx.Sampled — the originator's head-sampling
// decision) or when the local stride sampler fires; otherwise StartCtx
// returns nil without allocating.
func (t *Tracer) StartCtx(ctx TraceCtx, kind, name string) *Span {
	if t == nil {
		return nil
	}
	seq := t.seq.Add(1)
	// The local decision is branch-free arithmetic: one multiply-wrap
	// and a compare in 32.32 fixed point (see Tracer.thresh).
	if !ctx.Sampled && (seq*t.thresh)&0xFFFFFFFF >= t.thresh {
		return nil
	}
	sp := t.pool.Get().(*Span)
	*sp = Span{
		tracer:  t,
		start:   time.Now(),
		kind:    kind,
		name:    name,
		traceID: ctx.TraceID,
		parent:  ctx.ParentID,
		hop:     ctx.Hop,
		wire:    ctx.TraceID != 0,
		sampled: ctx.Sampled,
		seq:     seq,
	}
	if sp.traceID == 0 {
		sp.traceID = t.newID() // node-local trace
	}
	sp.spanID = t.newID()
	return sp
}

// StartRoot begins an always-sampled root span (hop 0) under a freshly
// minted trace ID — how an originating client makes the head-sampling
// decision. Returns nil only for a nil tracer.
func (t *Tracer) StartRoot(kind, name string) *Span {
	if t == nil {
		return nil
	}
	sp := t.pool.Get().(*Span)
	*sp = Span{
		tracer:  t,
		start:   time.Now(),
		kind:    kind,
		name:    name,
		traceID: t.newID(),
		wire:    true,
		sampled: true,
		seq:     t.seq.Add(1),
	}
	sp.spanID = t.newID()
	return sp
}

// TraceID returns the span's trace ID (0 for nil).
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.traceID
}

// SpanID returns the span's own ID (0 for nil).
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.spanID
}

// Context returns the trace context to stamp on packets this span's
// node sends onward: same trace, this span as parent, next hop index,
// and the originator's head-sampling decision carried through. The zero
// TraceCtx for nil or node-local-only spans — callers must then fall
// back to propagating any wire context unchanged.
func (s *Span) Context() TraceCtx {
	if s == nil || !s.wire {
		return TraceCtx{}
	}
	return TraceCtx{TraceID: s.traceID, ParentID: s.spanID, Hop: s.hop + 1, Sampled: s.sampled}
}

// Event annotates one pipeline stage.
func (s *Span) Event(stage, detail string) {
	if s == nil || s.nev >= maxSpanEvents {
		return
	}
	s.events[s.nev] = SpanEvent{
		Stage:    stage,
		AtMicros: time.Since(s.start).Microseconds(),
		Detail:   detail,
	}
	s.nev++
}

// EventDur annotates one pipeline stage with a measured duration.
func (s *Span) EventDur(stage string, d time.Duration, detail string) {
	if s == nil || s.nev >= maxSpanEvents {
		return
	}
	s.events[s.nev] = SpanEvent{
		Stage:     stage,
		AtMicros:  time.Since(s.start).Microseconds(),
		DurMicros: d.Microseconds(),
		Detail:    detail,
	}
	s.nev++
}

// End finishes the span with an outcome ("forwarded", "cs_hit",
// "aggregated", "nack:expired", "drop:no_route", ...), records it, and
// recycles the span — it must not be touched afterwards.
func (s *Span) End(outcome string) {
	if s == nil {
		return
	}
	t := s.tracer
	rec := &SpanRecord{
		Time:      s.start.UTC().Format(time.RFC3339Nano),
		Node:      t.node,
		Role:      t.role,
		Kind:      s.kind,
		Name:      s.name,
		Hop:       int(s.hop),
		Seq:       s.seq,
		StartNano: s.start.UnixNano(),
		Outcome:   outcome,
		DurMicro:  time.Since(s.start).Microseconds(),
	}
	rec.Trace = HexID(s.traceID)
	rec.Span = HexID(s.spanID)
	if s.parent != 0 {
		rec.Parent = HexID(s.parent)
	}
	if s.nev > 0 {
		rec.Events = append([]SpanEvent(nil), s.events[:s.nev]...)
	}
	t.pool.Put(s)
	t.emit(rec)
}

// emit delivers a finished record to the writer and flight recorder.
func (t *Tracer) emit(rec *SpanRecord) {
	if t.w != nil {
		t.mu.Lock()
		t.buf = appendSpanJSON(t.buf[:0], rec)
		t.buf = append(t.buf, '\n')
		t.w.Write(t.buf) //nolint:errcheck // tracing is best-effort
		t.mu.Unlock()
	}
	t.rec.add(rec)
	t.spans.Add(1)
}

// appendSpanJSON hand-rolls the record's JSON line into buf, mirroring
// SpanRecord's struct tags, so the sampled path reuses one buffer
// instead of allocating through encoding/json.
func appendSpanJSON(buf []byte, r *SpanRecord) []byte {
	buf = append(buf, `{"t":`...)
	buf = appendJSONString(buf, r.Time)
	buf = append(buf, `,"node":`...)
	buf = appendJSONString(buf, r.Node)
	if r.Role != "" {
		buf = append(buf, `,"role":`...)
		buf = appendJSONString(buf, r.Role)
	}
	buf = append(buf, `,"kind":`...)
	buf = appendJSONString(buf, r.Kind)
	buf = append(buf, `,"name":`...)
	buf = appendJSONString(buf, r.Name)
	if r.Trace != "" {
		buf = append(buf, `,"trace":"`...)
		buf = append(buf, r.Trace...)
		buf = append(buf, '"')
	}
	if r.Span != "" {
		buf = append(buf, `,"span":"`...)
		buf = append(buf, r.Span...)
		buf = append(buf, '"')
	}
	if r.Parent != "" {
		buf = append(buf, `,"parent":"`...)
		buf = append(buf, r.Parent...)
		buf = append(buf, '"')
	}
	buf = append(buf, `,"hop":`...)
	buf = strconv.AppendInt(buf, int64(r.Hop), 10)
	buf = append(buf, `,"seq":`...)
	buf = strconv.AppendUint(buf, r.Seq, 10)
	buf = append(buf, `,"ts_ns":`...)
	buf = strconv.AppendInt(buf, r.StartNano, 10)
	if len(r.Events) > 0 {
		buf = append(buf, `,"events":[`...)
		for i := range r.Events {
			ev := &r.Events[i]
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, `{"stage":`...)
			buf = appendJSONString(buf, ev.Stage)
			buf = append(buf, `,"us":`...)
			buf = strconv.AppendInt(buf, ev.AtMicros, 10)
			if ev.DurMicros != 0 {
				buf = append(buf, `,"stage_us":`...)
				buf = strconv.AppendInt(buf, ev.DurMicros, 10)
			}
			if ev.Detail != "" {
				buf = append(buf, `,"d":`...)
				buf = appendJSONString(buf, ev.Detail)
			}
			buf = append(buf, '}')
		}
		buf = append(buf, ']')
	}
	buf = append(buf, `,"outcome":`...)
	buf = appendJSONString(buf, r.Outcome)
	buf = append(buf, `,"dur_us":`...)
	buf = strconv.AppendInt(buf, r.DurMicro, 10)
	return append(buf, '}')
}

const hexDigits = "0123456789abcdef"

// appendJSONString writes s as a JSON string, escaping quotes,
// backslashes, and control characters (input is assumed UTF-8, which
// passes through untouched).
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c < 0x20:
			buf = append(buf, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}
