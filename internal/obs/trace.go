// Per-Interest tracing: a Span follows one packet through a router's
// enforcement pipeline (pre-check → BF lookup → signature verify →
// forward/NACK) and is emitted as one JSON line when it ends. Sampling
// keeps the cost bounded under load.
package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer emits sampled trace spans as JSON lines. A nil Tracer (or a nil
// Span from an unsampled Start) no-ops, so instrumented code traces
// unconditionally.
type Tracer struct {
	node   string
	sample float64
	mu     sync.Mutex // guards w
	w      io.Writer
	seq    atomic.Uint64
	spans  atomic.Uint64
}

// NewTracer creates a tracer writing JSON lines to w. node names the
// emitting router in every span. sample in (0,1] is the fraction of
// spans kept: 1 traces everything; 0.01 keeps ~one in a hundred.
// Sampling is stride-based on the span sequence number, so it is cheap,
// lock-free, and deterministic for a given arrival order.
func NewTracer(node string, sample float64, w io.Writer) *Tracer {
	if sample <= 0 || w == nil {
		return nil
	}
	if sample > 1 {
		sample = 1
	}
	return &Tracer{node: node, sample: sample, w: w}
}

// Spans returns the number of spans emitted.
func (t *Tracer) Spans() uint64 {
	if t == nil {
		return 0
	}
	return t.spans.Load()
}

// spanEvent is one annotated pipeline stage.
type spanEvent struct {
	// Stage names the pipeline step ("precheck", "bf_lookup", "verify",
	// "bf_reset", "flag", "forward", "nack", ...).
	Stage string `json:"stage"`
	// AtMicros is the stage's offset from span start in microseconds.
	AtMicros int64 `json:"us"`
	// Detail carries a stage-specific annotation ("hit", "miss",
	// "reason=...", "F=0.0001").
	Detail string `json:"d,omitempty"`
}

// spanRecord is the JSON shape of one emitted span.
type spanRecord struct {
	Time     string      `json:"t"`
	Node     string      `json:"node"`
	Kind     string      `json:"kind"`
	Name     string      `json:"name"`
	Seq      uint64      `json:"seq"`
	Events   []spanEvent `json:"events,omitempty"`
	Outcome  string      `json:"outcome"`
	DurMicro int64       `json:"dur_us"`
}

// Span is one in-flight trace. It is owned by a single goroutine (the
// pipeline serialises packet handling) and must not be shared.
type Span struct {
	tracer *Tracer
	seq    uint64
	start  time.Time
	kind   string
	name   string
	events []spanEvent
}

// Start begins a span for one packet; it returns nil (a no-op span) when
// the tracer is nil or the packet is not sampled. kind distinguishes
// pipelines ("interest", "data"); name is the packet name.
func (t *Tracer) Start(kind, name string) *Span {
	if t == nil {
		return nil
	}
	seq := t.seq.Add(1)
	// Stride sampling: keep span i iff frac(i·sample) wraps — exactly
	// sample fraction of spans, evenly spread, no RNG on the hot path.
	if t.sample < 1 {
		prev := uint64(float64(seq-1) * t.sample)
		cur := uint64(float64(seq) * t.sample)
		if cur == prev {
			return nil
		}
	}
	return &Span{tracer: t, seq: seq, start: time.Now(), kind: kind, name: name}
}

// Event annotates one pipeline stage.
func (s *Span) Event(stage, detail string) {
	if s == nil {
		return
	}
	s.events = append(s.events, spanEvent{
		Stage:    stage,
		AtMicros: time.Since(s.start).Microseconds(),
		Detail:   detail,
	})
}

// End finishes the span with an outcome ("forwarded", "cs_hit",
// "aggregated", "nack:expired", "drop:no_route", ...) and emits it.
func (s *Span) End(outcome string) {
	if s == nil {
		return
	}
	t := s.tracer
	rec := spanRecord{
		Time:     s.start.UTC().Format(time.RFC3339Nano),
		Node:     t.node,
		Kind:     s.kind,
		Name:     s.name,
		Seq:      s.seq,
		Events:   s.events,
		Outcome:  outcome,
		DurMicro: time.Since(s.start).Microseconds(),
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	line = append(line, '\n')
	t.mu.Lock()
	t.w.Write(line) //nolint:errcheck // tracing is best-effort
	t.mu.Unlock()
	t.spans.Add(1)
}
