package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestUnsampledSpanZeroAllocs pins the issue's hot-path contract: a
// packet the head-sampler skips must not allocate at all.
func TestUnsampledSpanZeroAllocs(t *testing.T) {
	// Minimum stride threshold keeps ~1 in 2^32 spans; none of the runs
	// below will be sampled.
	tr := NewTracerRecorder("edge-0", 1e-12, io.Discard, NewRecorder(64))
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("interest", "/prov0/report/chunk0")
		if sp != nil {
			t.Fatal("span unexpectedly sampled")
		}
		sp.Event("bf_lookup", "hit")
		sp.End("forwarded")
	})
	if allocs != 0 {
		t.Errorf("unsampled span path allocates %.1f/op, want 0", allocs)
	}
}

// TestSampledSpanPooledAllocs keeps the sampled path honest too: span
// structs are pooled and JSON is built in a reused buffer, so steady
// state stays small (the emit path may grow the buffer once).
func TestSampledSpanPooledAllocs(t *testing.T) {
	tr := NewTracerRecorder("edge-0", 1, io.Discard, nil)
	// Warm the pool and the emit buffer.
	for i := 0; i < 100; i++ {
		sp := tr.Start("interest", "/prov0/report/chunk0")
		sp.EventDur("bf_lookup", 1000, "hit")
		sp.End("forwarded")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("interest", "/prov0/report/chunk0")
		sp.EventDur("bf_lookup", 1000, "hit")
		sp.End("forwarded")
	})
	// Only the flight-recorder hand-off (one SpanRecord + events slice +
	// strings per emitted span) remains; with no recorder and a discard
	// writer the steady state is a handful of allocations.
	if allocs > 8 {
		t.Errorf("sampled span path allocates %.1f/op, want <= 8", allocs)
	}
}

// BenchmarkSpanUnsampled measures the per-packet cost of tracing for
// the 1023/1024 packets the sampler skips.
func BenchmarkSpanUnsampled(b *testing.B) {
	tr := NewTracerRecorder("edge-0", 1.0/1024, io.Discard, NewRecorder(1024))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("interest", "/prov0/report/chunk0")
		if sp != nil {
			sp.End("forwarded")
		}
	}
}

// BenchmarkSpanSampled measures a fully recorded span: start, two
// events, JSON encode, ring insert.
func BenchmarkSpanSampled(b *testing.B) {
	tr := NewTracerRecorder("edge-0", 1, io.Discard, NewRecorder(1024))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("interest", "/prov0/report/chunk0")
		sp.EventDur("bf_lookup", 1500, "hit")
		sp.Event("flag", "F=0.0001")
		sp.End("forwarded")
	}
}

// TestRecorderOverflow fills the ring past capacity and checks the
// snapshot holds the most recent spans only.
func TestRecorderOverflow(t *testing.T) {
	rec := NewRecorder(8)
	tr := NewTracerRecorder("n", 1, io.Discard, rec)
	const total = 30
	for i := 0; i < total; i++ {
		sp := tr.Start("interest", fmt.Sprintf("/x/%d", i))
		sp.End("ok")
	}
	if got := rec.Total(); got != total {
		t.Errorf("Total() = %d, want %d", got, total)
	}
	snap := rec.Snapshot()
	if len(snap) != rec.Cap() {
		t.Fatalf("snapshot holds %d spans, ring cap %d", len(snap), rec.Cap())
	}
	for _, s := range snap {
		// Ring keeps the newest spans: names /x/22../x/29 survive.
		var n int
		if _, err := fmt.Sscanf(s.Name, "/x/%d", &n); err != nil || n < total-rec.Cap() {
			t.Errorf("snapshot kept old span %q", s.Name)
		}
	}
}

// TestCollectorReadSpansRoundTrip feeds a tracer's JSONL output back
// through the collector and checks the assembled trace matches what was
// recorded.
func TestCollectorReadSpansRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer("edge-0", 1, &buf)
	tr.SetRole("edge")

	root := tr.StartRoot("fetch", "/prov0/report")
	rootID := root.TraceID()
	ctx := root.Context()
	hop1 := tr.StartCtx(ctx, "interest", "/prov0/report")
	hop1.EventDur("verify", 80_000, "ok")
	hop1.End("forwarded")
	root.End("delivered")

	c := NewCollector()
	n, err := c.ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("ReadSpans parsed %d spans, want 2", n)
	}
	trace := c.Get(rootID)
	if trace == nil {
		t.Fatalf("trace %s not assembled", HexID(rootID))
	}
	if len(trace.Spans) != 2 || trace.Hops() != 2 {
		t.Fatalf("trace spans=%d hops=%d, want 2/2", len(trace.Spans), trace.Hops())
	}
	if trace.Spans[0].Hop != 0 || trace.Spans[1].Hop != 1 {
		t.Errorf("spans not in hop order: %d, %d", trace.Spans[0].Hop, trace.Spans[1].Hop)
	}
	if ev := trace.Spans[1].Events; len(ev) != 1 || ev[0].Stage != "verify" || ev[0].DurMicros != 80 {
		t.Errorf("hop-1 events = %+v", ev)
	}
	// Blank lines are skipped; a malformed line aborts with its line
	// number, preserving the count parsed so far.
	n, err = c.ReadSpans(strings.NewReader("\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("ReadSpans on garbage err = %v, want line-2 error", err)
	}
	if n != 0 {
		t.Errorf("ReadSpans on garbage read %d spans, want 0", n)
	}
}

// TestHexIDRoundTrip checks the wire format of trace IDs.
func TestHexIDRoundTrip(t *testing.T) {
	if HexID(0) != "" {
		t.Errorf("HexID(0) = %q, want empty", HexID(0))
	}
	if ParseHexID("") != 0 || ParseHexID("zz") != 0 {
		t.Error("ParseHexID on invalid input should return 0")
	}
	for _, id := range []uint64{1, 0xdeadbeef, ^uint64(0)} {
		if got := ParseHexID(HexID(id)); got != id {
			t.Errorf("round trip %x -> %q -> %x", id, HexID(id), got)
		}
	}
}

// TestTracezEmptyAndOverflow drives the /tracez endpoint against a
// tracer with no recorder, an empty recorder, and an overflowing one.
func TestTracezEmptyAndOverflow(t *testing.T) {
	get := func(mux *http.ServeMux, path string) (int, string) {
		t.Helper()
		srv := httptest.NewServer(mux)
		defer srv.Close()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// No recorder: tracing reported as disabled, not an error.
	mux := http.NewServeMux()
	AttachTracez(mux, NewTracer("n", 1, io.Discard))
	if code, body := get(mux, "/tracez"); code != http.StatusOK || !strings.Contains(body, "tracing disabled") {
		t.Errorf("no-recorder /tracez = %d %q", code, body)
	}

	// Empty recorder: zero traces, still a well-formed index.
	tr := NewTracerRecorder("n", 1, io.Discard, NewRecorder(16))
	mux = http.NewServeMux()
	AttachTracez(mux, tr)
	if code, body := get(mux, "/tracez"); code != http.StatusOK || !strings.Contains(body, "traces=0") {
		t.Errorf("empty /tracez = %d %q", code, body)
	}
	// Unknown trace ID: 404 with the ring size in the message.
	if code, _ := get(mux, "/tracez?trace=dead"); code != http.StatusNotFound {
		t.Errorf("unknown trace = %d, want 404", code)
	}

	// Overflowing recorder: old spans evicted, the page still renders and
	// JSON stays valid.
	var lastID uint64
	for i := 0; i < 100; i++ {
		sp := tr.StartRoot("fetch", fmt.Sprintf("/x/%d", i))
		lastID = sp.TraceID()
		sp.End("delivered")
	}
	code, body := get(mux, "/tracez")
	if code != http.StatusOK || !strings.Contains(body, HexID(lastID)) {
		t.Errorf("overflowing /tracez = %d, missing newest trace %s:\n%s", code, HexID(lastID), body)
	}
	if code, body := get(mux, "/tracez?format=json"); code != http.StatusOK || !strings.Contains(body, `"trace"`) {
		t.Errorf("json /tracez = %d %q", code, body)
	}
	if code, body := get(mux, "/tracez?trace="+HexID(lastID)); code != http.StatusOK || !strings.Contains(body, "delivered") {
		t.Errorf("waterfall = %d %q", code, body)
	}
}

// TestAdminEndpointsUnderLiveTraffic scrapes /metrics, /statusz, and
// /tracez concurrently with live metric updates and span recording —
// the race detector turns any unsynchronised access into a failure.
func TestAdminEndpointsUnderLiveTraffic(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracerRecorder("edge-0", 1, io.Discard, NewRecorder(64))
	mux := NewAdminMux(reg, func() any { return map[string]int{"pit": 1} })
	AttachTracez(mux, tr)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	interests := reg.Counter("interests_total")
	hist := reg.Histogram("hop_seconds", nil)

	stop := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			interests.Inc()
			hist.Observe(float64(i%10) * 1e-5)
			sp := tr.Start("interest", "/prov0/report/chunk0")
			sp.Event("bf_lookup", "hit")
			sp.End("forwarded")
		}
	}()

	var scrapers sync.WaitGroup
	for _, path := range []string{"/metrics", "/statusz", "/tracez", "/tracez?format=json"} {
		for g := 0; g < 2; g++ {
			scrapers.Add(1)
			go func(path string) {
				defer scrapers.Done()
				for i := 0; i < 25; i++ {
					resp, err := http.Get(srv.URL + path)
					if err != nil {
						t.Error(err)
						return
					}
					if _, err := io.Copy(io.Discard, resp.Body); err != nil {
						t.Error(err)
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("%s -> %d", path, resp.StatusCode)
						return
					}
				}
			}(path)
		}
	}
	scrapers.Wait()
	close(stop)
	writers.Wait()
}
