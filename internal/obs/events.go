// Structured event log: a bounded lock-free ring of typed operator
// events (face churn, uplink redials, revocation pushes, BF epoch
// rotations, verify-shed bursts, reassembly evictions). Counters say
// how much; events say what happened and when. The ring reuses the
// flight-recorder idiom (recorder.go): writers never block and the
// newest N events survive, exposed over /eventz (eventz.go) and
// optionally bridged to a log/slog logger for stderr visibility on
// tacticd/tacticserve.
package obs

import (
	"context"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// EventType names one kind of operator event. The values are the wire
// vocabulary of /eventz and the tacticmon fleet poller — stable strings,
// not display text.
type EventType string

// Event types emitted by the live stack.
const (
	// EventFaceUp / EventFaceDown mark a forwarder face attaching and
	// detaching (any cause: peer reset, idle timeout, fatal send error).
	EventFaceUp   EventType = "face_up"
	EventFaceDown EventType = "face_down"
	// EventUplinkUp / EventUplinkDown mark a managed uplink attaching
	// and dying; a down event means the supervisor is redialing.
	EventUplinkUp   EventType = "uplink_up"
	EventUplinkDown EventType = "uplink_down"
	// EventRevocation marks a revocation-set update applied (Value is
	// the entry count carried by the push).
	EventRevocation EventType = "revocation"
	// EventEpochRotate marks a BF epoch rotation applied (Value is the
	// new epoch).
	EventEpochRotate EventType = "epoch_rotate"
	// EventShedBurst marks a burst of verify-pool sheds (Value is how
	// many Interests were shed since the previous burst event; bursts
	// are rate-limited to roughly one event per second per emitter).
	EventShedBurst EventType = "shed_burst"
	// EventReassemblyEvict marks a burst of fragment-reassembly
	// evictions on a datagram face (Value is the evicted partial-packet
	// count since the previous burst event).
	EventReassemblyEvict EventType = "reassembly_evict"
	// EventHealthChange marks a node health-status transition (Attr is
	// "old->new" plus the firing rules).
	EventHealthChange EventType = "health_change"
)

// Event is one operator-facing occurrence.
type Event struct {
	// Seq is the per-node emission sequence number (1-based, gapless).
	Seq uint64 `json:"seq"`
	// Time is the emission instant.
	Time time.Time `json:"time"`
	// Type discriminates the event.
	Type EventType `json:"type"`
	// Node is the emitting node's identity.
	Node string `json:"node,omitempty"`
	// Face is the face ID the event concerns, -1 when not face-scoped.
	Face int `json:"face"`
	// Attr is free-form detail (an address, a reason, a transition).
	Attr string `json:"attr,omitempty"`
	// Value is the event's numeric payload (a count, an epoch).
	Value uint64 `json:"value,omitempty"`
}

// Events is a bounded lock-free ring of the most recent events plus an
// optional slog bridge and live subscribers. Emit costs one atomic
// fetch-add and one pointer store when nobody subscribes; it never
// blocks. A nil *Events ignores emissions and snapshots empty, so
// instrumented packages need not guard call sites.
type Events struct {
	node  string
	slots []atomic.Pointer[Event]
	seq   atomic.Uint64

	logger atomic.Pointer[slog.Logger]

	// nsubs mirrors len(subs) so Emit skips the mutex entirely while
	// nobody is subscribed (the common case outside /eventz?follow).
	nsubs   atomic.Int32
	mu      sync.Mutex
	subs    map[uint64]chan Event
	nextSub uint64
}

// NewEvents creates an event log for node retaining the most recent n
// events (rounded up to a power of two; n <= 0 selects 256).
func NewEvents(node string, n int) *Events {
	if n <= 0 {
		n = 256
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &Events{
		node:  node,
		slots: make([]atomic.Pointer[Event], size),
		subs:  make(map[uint64]chan Event),
	}
}

// Node returns the emitting node's identity ("" for nil).
func (e *Events) Node() string {
	if e == nil {
		return ""
	}
	return e.node
}

// Cap returns the ring capacity (0 for nil).
func (e *Events) Cap() int {
	if e == nil {
		return 0
	}
	return len(e.slots)
}

// Total returns how many events were ever emitted, including ones the
// ring has since overwritten (0 for nil).
func (e *Events) Total() uint64 {
	if e == nil {
		return 0
	}
	return e.seq.Load()
}

// SetLogger bridges every emitted event to l (nil detaches). Down-ish
// events (face/uplink death, sheds, evictions) log at Warn, the rest at
// Info.
func (e *Events) SetLogger(l *slog.Logger) {
	if e == nil {
		return
	}
	e.logger.Store(l)
}

// Emit records one event: face is the concerned face ID (-1 when not
// face-scoped), attr free-form detail, value the numeric payload. Safe
// from any goroutine; never blocks (slow subscribers miss events rather
// than stalling the emitter).
func (e *Events) Emit(typ EventType, face int, attr string, value uint64) {
	if e == nil {
		return
	}
	ev := &Event{
		Seq:   e.seq.Add(1),
		Time:  time.Now(),
		Type:  typ,
		Node:  e.node,
		Face:  face,
		Attr:  attr,
		Value: value,
	}
	e.slots[(ev.Seq-1)&uint64(len(e.slots)-1)].Store(ev)
	if l := e.logger.Load(); l != nil {
		l.LogAttrs(context.Background(), eventLevel(typ), string(typ),
			slog.String("node", ev.Node),
			slog.Int("face", ev.Face),
			slog.String("attr", ev.Attr),
			slog.Uint64("value", ev.Value),
			slog.Uint64("seq", ev.Seq))
	}
	if e.nsubs.Load() == 0 {
		return
	}
	e.mu.Lock()
	for _, ch := range e.subs {
		select {
		case ch <- *ev:
		default: // subscriber lagging; it still sees the ring via Snapshot
		}
	}
	e.mu.Unlock()
}

// eventLevel maps an event type to its slog severity.
func eventLevel(typ EventType) slog.Level {
	switch typ {
	case EventFaceDown, EventUplinkDown, EventShedBurst, EventReassemblyEvict:
		return slog.LevelWarn
	}
	return slog.LevelInfo
}

// Snapshot copies the retained events, oldest first. Concurrent emits
// may skew ordering near the write cursor; every returned event is
// complete (events are immutable once stored).
func (e *Events) Snapshot() []Event {
	if e == nil {
		return nil
	}
	n := uint64(len(e.slots))
	cur := e.seq.Load()
	out := make([]Event, 0, n)
	for i := uint64(0); i < n; i++ {
		if ev := e.slots[(cur+i)&(n-1)].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	return out
}

// Subscribe registers a live event channel of the given buffer depth
// (<= 0 selects 16) and returns it with a cancel func. Events emitted
// while the channel is full are dropped for that subscriber — use
// Snapshot to recover the recent past.
func (e *Events) Subscribe(buf int) (<-chan Event, func()) {
	if e == nil {
		ch := make(chan Event)
		close(ch)
		return ch, func() {}
	}
	if buf <= 0 {
		buf = 16
	}
	ch := make(chan Event, buf)
	e.mu.Lock()
	id := e.nextSub
	e.nextSub++
	e.subs[id] = ch
	e.mu.Unlock()
	e.nsubs.Add(1)
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			e.mu.Lock()
			delete(e.subs, id)
			e.mu.Unlock()
			e.nsubs.Add(-1)
		})
	}
	return ch, cancel
}

// BurstGate coalesces a stream of occurrences into at most one event
// per interval: Add accumulates, and returns non-zero — the total
// accumulated since the last burst — when the caller should emit. The
// first occurrence emits immediately, so a single shed is still
// visible; later ones batch. The zero value gates at one event per
// second. Safe for concurrent use; occurrences noted after the last
// emission of a quiet period carry over into the next burst.
type BurstGate struct {
	// Interval is the minimum spacing between emissions (0 = 1 s). Set
	// it before first use; it is read unsynchronised.
	Interval time.Duration

	last    atomic.Int64
	pending atomic.Uint64
}

// Add notes n occurrences and returns the burst total to emit, or 0
// when the gate is holding.
func (g *BurstGate) Add(n uint64) uint64 {
	if g == nil {
		return 0
	}
	g.pending.Add(n)
	iv := int64(g.Interval)
	if iv <= 0 {
		iv = int64(time.Second)
	}
	now := time.Now().UnixNano()
	last := g.last.Load()
	if now-last < iv || !g.last.CompareAndSwap(last, now) {
		return 0
	}
	return g.pending.Swap(0)
}
