package ndn

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
)

// Concurrency-safe forwarding tables for the live plane: the PIT and CS
// are sharded by a hash of the content name so packets for different
// names proceed in parallel, while all operations on one name serialise
// on its shard lock. The simulator keeps using the plain single-threaded
// PIT/CS/FIB in pit.go, cs.go, and fib.go — only internal/forwarder uses
// these types.

// numShards is the shard count for the PIT and CS. A small power of two:
// enough to keep unrelated names off each other's locks, small enough
// that whole-table walks (expiry, face death) stay cheap.
const numShards = 16

// shardIndex hashes a canonical name key to a shard (inline FNV-1a, no
// allocation).
func shardIndex(key string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int(h & (numShards - 1))
}

// AdmitOutcome classifies what a ShardedPIT did with one Interest.
type AdmitOutcome int

// Admit outcomes.
const (
	// PITNew: a fresh entry was created; the caller must resolve a route,
	// record it with SetOutFace, and forward the Interest (aborting the
	// entry if it cannot).
	PITNew AdmitOutcome = iota
	// PITAggregated: the Interest joined an existing pending entry. The
	// returned out-face (FaceNone while the primary forward is still in
	// flight) lets the caller re-send retransmissions upstream.
	PITAggregated
	// PITDuplicate: the entry already holds this nonce; drop.
	PITDuplicate
)

// pitShard is one lock-striped slice of the PIT.
type pitShard struct {
	mu      sync.Mutex
	entries map[string]*PITEntry
}

// ShardedPIT is a Pending Interest Table safe for concurrent use,
// sharded by name hash. Entries returned by Consume, ExpireBefore, and
// DropByOutFace are removed from the table before being returned, so the
// caller owns them exclusively.
type ShardedPIT struct {
	shards     [numShards]pitShard
	created    atomic.Uint64
	aggregated atomic.Uint64
	expired    atomic.Uint64
}

// NewShardedPIT creates an empty concurrent PIT.
func NewShardedPIT() *ShardedPIT {
	p := &ShardedPIT{}
	for i := range p.shards {
		p.shards[i].entries = make(map[string]*PITEntry)
	}
	return p
}

func (p *ShardedPIT) shard(key string) *pitShard { return &p.shards[shardIndex(key)] }

// Admit records one Interest: it aggregates onto a live entry (extending
// its lifetime and reporting the entry's out-face for retransmission
// handling), reports a duplicate nonce, or — replacing any expired
// leftover — creates a fresh entry whose out-face the caller must set
// once a route is resolved.
func (p *ShardedPIT) Admit(name names.Name, rec PITRecord, now, expires time.Time) (AdmitOutcome, FaceID) {
	k := name.Key()
	s := p.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[k]; ok {
		if e.Expires.After(now) {
			if e.HasNonce(rec.Nonce) {
				return PITDuplicate, FaceNone
			}
			e.Records = append(e.Records, rec)
			if expires.After(e.Expires) {
				e.Expires = expires
			}
			p.aggregated.Add(1)
			return PITAggregated, e.OutFace
		}
		delete(s.entries, k) // expired leftover; replace
	}
	s.entries[k] = &PITEntry{Name: name, Records: []PITRecord{rec}, Expires: expires, OutFace: FaceNone}
	p.created.Add(1)
	return PITNew, FaceNone
}

// SetOutFace records the upstream face the primary Interest of name was
// forwarded to, reporting whether the entry still exists.
func (p *ShardedPIT) SetOutFace(name names.Name, face FaceID) bool {
	k := name.Key()
	s := p.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if ok {
		e.OutFace = face
	}
	return ok
}

// Consume removes and returns the entry for name — the router is about
// to satisfy (or abort) it.
func (p *ShardedPIT) Consume(name names.Name) (*PITEntry, bool) {
	k := name.Key()
	s := p.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if ok {
		delete(s.entries, k)
	}
	return e, ok
}

// DropByOutFace removes and returns every entry whose primary Interest
// was forwarded to face — called when that face dies.
func (p *ShardedPIT) DropByOutFace(face FaceID) []*PITEntry {
	var out []*PITEntry
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for k, e := range s.entries {
			if e.OutFace == face {
				out = append(out, e)
				delete(s.entries, k)
			}
		}
		s.mu.Unlock()
	}
	return out
}

// ExpireBefore removes entries whose lifetime ended at or before now and
// returns them so callers can account for the timed-out requesters.
func (p *ShardedPIT) ExpireBefore(now time.Time) []*PITEntry {
	var out []*PITEntry
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for k, e := range s.entries {
			if !e.Expires.After(now) {
				out = append(out, e)
				delete(s.entries, k)
				p.expired.Add(1)
			}
		}
		s.mu.Unlock()
	}
	return out
}

// Len returns the number of pending entries.
func (p *ShardedPIT) Len() int {
	n := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats returns entries created, Interests aggregated into existing
// entries, and entries expired.
func (p *ShardedPIT) Stats() (created, aggregated, expired uint64) {
	return p.created.Load(), p.aggregated.Load(), p.expired.Load()
}

// csShard is one lock-striped LRU slice of the content store.
type csShard struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	index    map[string]*list.Element
}

// ShardedCS is a content store safe for concurrent use: an LRU per
// shard, with the total capacity divided evenly across shards (recency
// is tracked per shard, an approximation of global LRU that never takes
// a global lock).
type ShardedCS struct {
	capacity int
	shards   [numShards]csShard
	hits     atomic.Uint64
	misses   atomic.Uint64
	evicted  atomic.Uint64
}

// NewShardedCS creates a concurrent content store holding at most
// capacity chunks in total. A zero or negative capacity disables caching
// (every Lookup misses).
func NewShardedCS(capacity int) *ShardedCS {
	c := &ShardedCS{capacity: capacity}
	per := capacity / numShards
	if per <= 0 && capacity > 0 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = csShard{capacity: per, ll: list.New(), index: make(map[string]*list.Element)}
	}
	return c
}

func (c *ShardedCS) shard(key string) *csShard { return &c.shards[shardIndex(key)] }

// Insert caches a chunk, evicting its shard's least recently used entry
// when the shard is full. Re-inserting an existing name refreshes its
// recency.
func (c *ShardedCS) Insert(content *core.Content) {
	if c.capacity <= 0 {
		return
	}
	k := content.Meta.Name.Key()
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.index[k]; ok {
		s.ll.MoveToFront(el)
		el.Value.(*csItem).content = content
		return
	}
	el := s.ll.PushFront(&csItem{key: k, content: content})
	s.index[k] = el
	if s.ll.Len() > s.capacity {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.index, oldest.Value.(*csItem).key)
		c.evicted.Add(1)
	}
}

// Lookup returns the cached chunk for name, refreshing its recency.
func (c *ShardedCS) Lookup(name names.Name) (*core.Content, bool) {
	k := name.Key()
	s := c.shard(k)
	s.mu.Lock()
	el, ok := s.index[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	s.ll.MoveToFront(el)
	content := el.Value.(*csItem).content
	s.mu.Unlock()
	c.hits.Add(1)
	return content, true
}

// Contains reports whether name is cached without touching recency or
// hit/miss statistics.
func (c *ShardedCS) Contains(name names.Name) bool {
	k := name.Key()
	s := c.shard(k)
	s.mu.Lock()
	_, ok := s.index[k]
	s.mu.Unlock()
	return ok
}

// Len returns the number of cached chunks.
func (c *ShardedCS) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Names returns the cached content names in unspecified order, without
// touching recency or hit/miss statistics. Shards are snapshotted one at
// a time, so the result is a consistent view only on a quiescent store —
// exactly the condition under which the conformance oracle compares
// end-state cache contents across enforcement planes.
func (c *ShardedCS) Names() []string {
	var out []string
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k := range s.index {
			out = append(out, k)
		}
		s.mu.Unlock()
	}
	return out
}

// Capacity returns the configured total maximum.
func (c *ShardedCS) Capacity() int { return c.capacity }

// Stats returns hits, misses, and evictions.
func (c *ShardedCS) Stats() (hits, misses, evicted uint64) {
	return c.hits.Load(), c.misses.Load(), c.evicted.Load()
}

// LockedFIB is a FIB safe for concurrent use: route lookups (the per
// packet operation) take a read lock, route updates (rare) a write lock.
type LockedFIB struct {
	mu  sync.RWMutex
	fib *FIB
}

// NewLockedFIB creates an empty concurrent FIB.
func NewLockedFIB() *LockedFIB { return &LockedFIB{fib: NewFIB()} }

// Insert adds (or replaces) a route for prefix via face.
func (f *LockedFIB) Insert(prefix names.Name, face FaceID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fib.Insert(prefix, face)
}

// Remove deletes the route for an exact prefix, reporting whether it
// existed.
func (f *LockedFIB) Remove(prefix names.Name) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fib.Remove(prefix)
}

// RemoveFace deletes every route pointing at face and returns how many
// were removed.
func (f *LockedFIB) RemoveFace(face FaceID) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fib.RemoveFace(face)
}

// Lookup returns the face for the longest registered prefix of name.
func (f *LockedFIB) Lookup(name names.Name) (FaceID, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.fib.Lookup(name)
}

// Len returns the number of routes.
func (f *LockedFIB) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.fib.Len()
}
