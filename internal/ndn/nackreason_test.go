package ndn

import (
	"errors"
	"testing"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
)

// TestNackReasonRoundTrip pins the NackReason wire contract: every
// canonical denial reason — Overload above all, the only one that is
// not a verdict on the tag — crosses the wire as its one-byte code and
// decodes back to the same sentinel, while wrapped or unmapped errors
// degrade to ErrDenied rather than losing the NACK itself.
func TestNackReasonRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		send error
		want error
	}{
		{"overload", core.ErrOverload, core.ErrOverload},
		{"no_tag", core.ErrNoTag, core.ErrNoTag},
		{"expired", core.ErrTagExpired, core.ErrTagExpired},
		{"forged", core.ErrTagForged, core.ErrTagForged},
		{"prefix_mismatch", core.ErrPrefixMismatch, core.ErrPrefixMismatch},
		{"access_path", core.ErrAccessPathMismatch, core.ErrAccessPathMismatch},
		{"level", core.ErrInsufficientLevel, core.ErrInsufficientLevel},
		{"key_mismatch", core.ErrProviderKeyMismatch, core.ErrProviderKeyMismatch},
		{"revoked", core.ErrTagRevoked, core.ErrTagRevoked},
		// A wrapped sentinel carries its code, not its wrapping text.
		{"wrapped_overload", errors.Join(core.ErrOverload, errors.New("face 3 over budget")), core.ErrOverload},
		// An error outside the reason table degrades to the generic code.
		{"unmapped", errors.New("some local failure"), core.ErrDenied},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			enc, err := EncodeData(&Data{
				Name: names.MustParse("/prov0/obj/c0"), Nack: true, NackReason: tc.send,
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeData(enc)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Nack {
				t.Fatal("NACK bit lost")
			}
			if !errors.Is(got.NackReason, tc.want) {
				t.Fatalf("NackReason = %v, want %v", got.NackReason, tc.want)
			}
		})
	}

	// A reasonless NACK stays reasonless: no NackReason TLV on the wire,
	// nil after decode (old senders must keep interoperating).
	enc, err := EncodeData(&Data{Name: names.MustParse("/prov0/obj/c0"), Nack: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeData(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Nack || got.NackReason != nil {
		t.Fatalf("reasonless NACK decoded as Nack=%t reason=%v, want true/<nil>", got.Nack, got.NackReason)
	}
}

// TestNackOverloadUnknownTLVSkipped splices unknown elements on both
// sides of the NackReason TLV inside an Overload NACK: decoders that
// predate (or postdate) this code point must skip what they don't know
// without losing the NACK bit or the reason.
func TestNackOverloadUnknownTLVSkipped(t *testing.T) {
	enc, err := EncodeData(&Data{
		Name: names.MustParse("/prov0/obj/c0"), Nack: true, NackReason: core.ErrOverload,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The encoder emits the outer element with the 4-byte length form
	// unconditionally: type, 0xFE, then a big-endian uint32.
	if len(enc) < 6 || enc[1] != 0xFE {
		t.Fatalf("unexpected outer header % x", enc[:2])
	}
	body := enc[6:]
	// Unknown elements before the body and after it (so one lands ahead
	// of the NackReason element and one behind).
	spliced := []byte{0xE0, 2, 0xAB, 0xCD}
	spliced = append(spliced, body...)
	spliced = append(spliced, 0xE1, 3, 1, 2, 3)
	repacked := append([]byte{enc[0], 0xFE}, byte(len(spliced)>>24), byte(len(spliced)>>16), byte(len(spliced)>>8), byte(len(spliced)))
	repacked = append(repacked, spliced...)

	got, err := DecodeData(repacked)
	if err != nil {
		t.Fatalf("unknown elements broke decoding: %v", err)
	}
	if !got.Nack {
		t.Fatal("NACK bit lost around unknown elements")
	}
	if !errors.Is(got.NackReason, core.ErrOverload) {
		t.Fatalf("NackReason = %v, want ErrOverload", got.NackReason)
	}
}
