// Package ndn implements the Named-Data Networking data plane TACTIC
// runs on: Interest/Data/NACK packets extended with TACTIC's tag and
// flag fields, the Forwarding Information Base (FIB) with
// longest-prefix-match lookup, the Pending Interest Table (PIT) with the
// paper's <Tag, F, InFace> aggregation tuples (Protocol 4 line 4), and a
// least-recently-used Content Store (CS).
//
// The structures are pure state machines — no goroutines, no I/O — so a
// discrete-event simulator (or a real forwarder) can drive them
// deterministically.
package ndn

import (
	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
)

// FaceID identifies one of a node's faces (interfaces). Faces are dense
// small integers local to a node.
type FaceID int

// FaceNone marks the absence of a face.
const FaceNone FaceID = -1

// InterestKind distinguishes content requests from TACTIC registration
// requests, which travel the same Interest pipeline but are consumed by
// the provider's registration handler.
type InterestKind uint8

// Interest kinds.
const (
	// KindContent requests a content chunk.
	KindContent InterestKind = iota + 1
	// KindRegistration requests a fresh tag (client registration §4.A).
	KindRegistration
)

// Interest is an NDN request, extended with TACTIC's fields: the
// client's tag, the edge/core collaboration flag F, and the access-path
// accumulator stamped by on-path entities between the client and its
// edge router.
type Interest struct {
	// Name is the requested content name (or the provider's registration
	// name for KindRegistration).
	Name names.Name
	// Kind selects the pipeline.
	Kind InterestKind
	// Nonce deduplicates Interests and detects loops.
	Nonce uint64
	// Tag is the client's authentication tag; nil for tagless requests.
	Tag *core.Tag
	// Flag is F: zero until an edge router that holds the tag in its
	// Bloom filter stamps its false-positive probability (Protocol 2).
	Flag float64
	// AccessPath accumulates hashed identities of entities between the
	// client and the edge router; the edge compares it to the tag's
	// AP_u. It is frozen once the Interest passes the edge.
	AccessPath core.AccessPath
	// Registration carries the registration payload for
	// KindRegistration.
	Registration *core.RegistrationRequest
	// Trace is the optional distributed-tracing context; the zero value
	// means untraced and adds no wire bytes.
	Trace TraceContext
}

// interestBaseSize approximates NDN TLV framing plus nonce and flag
// fields.
const interestBaseSize = 48

// WireSize estimates the packet's on-wire size; tags dominate ("a couple
// hundred bytes", §4.A), which is why the paper counts the tag as the
// scheme's communication overhead.
func (i *Interest) WireSize() int {
	size := interestBaseSize + len(i.Name.String())
	if i.Tag != nil {
		size += i.Tag.Size()
	}
	if i.Registration != nil {
		size += 96 + len(i.Registration.Credential)
	}
	return size
}

// Data is an NDN response: the content-tag pair of Protocols 2-4,
// optionally carrying a NACK ("the r_C^c also sends the content along
// with the NACK to allow the downstream routers to use this content for
// satisfying their valid pending requests", §4.B), or a registration
// response.
type Data struct {
	// Name echoes the Interest name.
	Name names.Name
	// Content is the chunk; nil for pure NACKs and registration
	// responses.
	Content *core.Content
	// Tag echoes the tag of the request this Data answers, so
	// downstream routers know which PIT record it addresses.
	Tag *core.Tag
	// Flag is the F value set by the answering router (Protocol 3).
	Flag float64
	// Nack marks the tag invalid; the edge router must not deliver to
	// that client (Protocol 2 lines 19-20).
	Nack bool
	// NackReason records why. It crosses the wire as a one-byte reason
	// code (core.ReasonCode / core.ReasonFromCode), so a decoded NACK
	// carries the canonical sentinel error for its code rather than the
	// originating router's wrapped error.
	NackReason error
	// Registration carries a fresh tag for KindRegistration responses.
	Registration *core.RegistrationResponse
	// Trace is the optional distributed-tracing context; the zero value
	// means untraced and adds no wire bytes.
	Trace TraceContext
}

// dataBaseSize approximates NDN TLV framing plus signature metadata.
const dataBaseSize = 64

// WireSize estimates the packet's on-wire size.
func (d *Data) WireSize() int {
	size := dataBaseSize + len(d.Name.String())
	if d.Content != nil {
		size += len(d.Content.Payload) + len(d.Content.Signature)
	}
	if d.Tag != nil {
		size += d.Tag.Size()
	}
	if d.Registration != nil && d.Registration.Tag != nil {
		size += d.Registration.Tag.Size() + len(d.Registration.WrappedContentKey)
	}
	return size
}
