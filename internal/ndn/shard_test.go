package ndn

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
)

// These tests hammer the sharded tables from many goroutines and are
// meant to run under -race (see the Makefile's race target). The
// assertions are deterministic: counters must balance exactly no matter
// how the schedule interleaves.

func TestShardedPITConcurrentAdmitSameName(t *testing.T) {
	pit := NewShardedPIT()
	name := names.MustParse("/prov0/obj/chunk0")
	now := time.Now()
	expires := now.Add(time.Second)

	const workers = 32
	var wg sync.WaitGroup
	outcomes := make([]AdmitOutcome, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outcomes[i], _ = pit.Admit(name, PITRecord{InFace: FaceID(i + 1), Nonce: uint64(i + 1)}, now, expires)
		}(i)
	}
	wg.Wait()

	news, aggs := 0, 0
	for _, o := range outcomes {
		switch o {
		case PITNew:
			news++
		case PITAggregated:
			aggs++
		default:
			t.Fatalf("unexpected outcome %v", o)
		}
	}
	if news != 1 || aggs != workers-1 {
		t.Fatalf("outcomes: %d new, %d aggregated; want 1, %d", news, aggs, workers-1)
	}
	created, aggregated, _ := pit.Stats()
	if created != 1 || aggregated != workers-1 {
		t.Fatalf("stats: created %d aggregated %d; want 1, %d", created, aggregated, workers-1)
	}
	e, ok := pit.Consume(name)
	if !ok {
		t.Fatal("entry vanished")
	}
	if len(e.Records) != workers {
		t.Fatalf("records = %d, want %d (every requester must be remembered)", len(e.Records), workers)
	}
	if pit.Len() != 0 {
		t.Fatalf("PIT not empty after Consume: %d", pit.Len())
	}
}

func TestShardedPITConcurrentDuplicateNonce(t *testing.T) {
	pit := NewShardedPIT()
	name := names.MustParse("/prov0/obj/chunk1")
	now := time.Now()
	expires := now.Add(time.Second)

	// Every goroutine presents the SAME nonce: exactly one may create the
	// entry; every other attempt must be reported as a duplicate.
	const workers = 32
	var wg sync.WaitGroup
	outcomes := make([]AdmitOutcome, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outcomes[i], _ = pit.Admit(name, PITRecord{InFace: FaceID(i + 1), Nonce: 42}, now, expires)
		}(i)
	}
	wg.Wait()

	news, dups := 0, 0
	for _, o := range outcomes {
		switch o {
		case PITNew:
			news++
		case PITDuplicate:
			dups++
		default:
			t.Fatalf("unexpected outcome %v", o)
		}
	}
	if news != 1 || dups != workers-1 {
		t.Fatalf("outcomes: %d new, %d duplicate; want 1, %d", news, dups, workers-1)
	}
}

func TestShardedPITConcurrentAdmitConsume(t *testing.T) {
	pit := NewShardedPIT()
	now := time.Now()
	expires := now.Add(time.Minute)

	// Admitters and consumers race on a shared set of names. Whatever the
	// interleaving, every created entry is consumed at most once and the
	// table drains to empty.
	const namesN, rounds = 8, 200
	nn := make([]names.Name, namesN)
	for i := range nn {
		nn[i] = names.MustParse(fmt.Sprintf("/prov0/obj/chunk%d", i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				n := nn[r%namesN]
				outcome, _ := pit.Admit(n, PITRecord{InFace: FaceID(w + 1), Nonce: uint64(w)<<32 | uint64(r)}, now, expires)
				if outcome == PITNew {
					pit.SetOutFace(n, FaceID(100+w))
				}
			}
		}(w)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				pit.Consume(nn[r%namesN])
			}
		}()
	}
	wg.Wait()
	for i := range nn {
		pit.Consume(nn[i])
	}
	if pit.Len() != 0 {
		t.Fatalf("PIT holds %d entries after draining", pit.Len())
	}
}

func TestShardedCSConcurrentInsertEvict(t *testing.T) {
	const capacity = 32
	cs := NewShardedCS(capacity)

	// Writers insert far more distinct names than the store holds while
	// readers look up the same key space; capacity must hold throughout
	// and the hit/miss/eviction counters must stay coherent.
	const workers, perWorker = 8, 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n := names.MustParse(fmt.Sprintf("/prov0/obj%d/chunk%d", w, i%64))
				cs.Insert(&core.Content{Meta: core.ContentMeta{Name: n}})
				if got := cs.Len(); got > capacity {
					t.Errorf("CS over capacity: %d > %d", got, capacity)
					return
				}
			}
		}(w)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n := names.MustParse(fmt.Sprintf("/prov0/obj%d/chunk%d", w, i%64))
				if c, ok := cs.Lookup(n); ok && c == nil {
					t.Error("Lookup returned ok with nil content")
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if got := cs.Len(); got > capacity {
		t.Fatalf("CS over capacity after quiescence: %d > %d", got, capacity)
	}
	hits, misses, _ := cs.Stats()
	if hits+misses != workers*perWorker {
		t.Fatalf("hits %d + misses %d != lookups %d", hits, misses, workers*perWorker)
	}
}

func TestShardedCSLRUWithinShard(t *testing.T) {
	// Single-shard sanity: with per-shard capacity 1 (total 16 across 16
	// shards), re-inserting a name must refresh rather than grow.
	cs := NewShardedCS(16)
	n := names.MustParse("/prov0/obj/chunk0")
	for i := 0; i < 5; i++ {
		cs.Insert(&core.Content{Meta: core.ContentMeta{Name: n}, Payload: []byte{byte(i)}})
	}
	if cs.Len() != 1 {
		t.Fatalf("Len = %d after re-inserting one name, want 1", cs.Len())
	}
	c, ok := cs.Lookup(n)
	if !ok || len(c.Payload) != 1 || c.Payload[0] != 4 {
		t.Fatalf("Lookup returned stale content: %+v ok=%v", c, ok)
	}
}

func TestLockedFIBConcurrentLookup(t *testing.T) {
	fib := NewLockedFIB()
	prefix := names.MustParse("/prov0")
	fib.Insert(prefix, 7)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := names.MustParse(fmt.Sprintf("/w%d", w))
			for i := 0; i < 200; i++ {
				fib.Insert(own, FaceID(w))
				if face, ok := fib.Lookup(names.MustParse("/prov0/obj/chunk0")); !ok || face != 7 {
					t.Errorf("Lookup = %v, %v; want 7, true", face, ok)
					return
				}
				fib.Remove(own)
			}
		}(w)
	}
	wg.Wait()
	if fib.Len() != 1 {
		t.Fatalf("FIB holds %d routes, want 1", fib.Len())
	}
}
