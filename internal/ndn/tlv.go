package ndn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
)

// NDN-style TLV wire codec for Interest and Data packets. The framing
// follows the NDN packet-format conventions (one-byte types,
// variable-length lengths: values < 253 in one byte, larger values as
// 253 followed by a 16-bit or 254 followed by a 32-bit big-endian
// length). Standard NDN types are used where they exist (Interest 0x05,
// Data 0x06, Name 0x07, GenericNameComponent 0x08, Nonce 0x0A, Content
// 0x15); TACTIC's extensions ride in the application-reserved range.

// TLV types.
const (
	tlvInterest      = 0x05
	tlvData          = 0x06
	tlvName          = 0x07
	tlvNameComponent = 0x08
	tlvNonce         = 0x0A
	tlvContent       = 0x15

	// Application-specific types (TACTIC extensions).
	tlvTag          = 0xF0
	tlvFlag         = 0xF1
	tlvAccessPath   = 0xF2
	tlvKind         = 0xF3
	tlvRegistration = 0xF4
	tlvNack         = 0xF5
	tlvRegResponse  = 0xF6
	tlvTraceCtx     = 0xF7
	tlvNackReason   = 0xF8
)

// TLV codec errors.
var (
	// ErrTLVTruncated is returned when a buffer ends mid-element.
	ErrTLVTruncated = errors.New("ndn: truncated TLV")
	// ErrTLVType is returned for an unexpected element type.
	ErrTLVType = errors.New("ndn: unexpected TLV type")
)

// appendTLV writes one type-length-value element.
func appendTLV(dst []byte, typ byte, value []byte) []byte {
	dst = append(dst, typ)
	dst = appendVarLen(dst, uint64(len(value)))
	return append(dst, value...)
}

// appendVarLen writes an NDN variable-length length.
func appendVarLen(dst []byte, n uint64) []byte {
	switch {
	case n < 253:
		return append(dst, byte(n))
	case n <= math.MaxUint16:
		dst = append(dst, 253)
		return binary.BigEndian.AppendUint16(dst, uint16(n))
	default:
		dst = append(dst, 254)
		return binary.BigEndian.AppendUint32(dst, uint32(n))
	}
}

// varLenSize returns how many bytes appendVarLen emits for n.
func varLenSize(n uint64) int {
	switch {
	case n < 253:
		return 1
	case n <= math.MaxUint16:
		return 3
	default:
		return 5
	}
}

// tlvReader walks a TLV buffer.
type tlvReader struct {
	buf []byte
	off int
}

// next returns the next element, or ok=false at the end of the buffer.
func (r *tlvReader) next() (typ byte, value []byte, ok bool, err error) {
	if r.off >= len(r.buf) {
		return 0, nil, false, nil
	}
	if r.off+2 > len(r.buf) {
		return 0, nil, false, ErrTLVTruncated
	}
	typ = r.buf[r.off]
	r.off++
	length, err := r.varLen()
	if err != nil {
		return 0, nil, false, err
	}
	if r.off+int(length) > len(r.buf) {
		return 0, nil, false, ErrTLVTruncated
	}
	value = r.buf[r.off : r.off+int(length)]
	r.off += int(length)
	return typ, value, true, nil
}

// varLen reads an NDN variable-length length.
func (r *tlvReader) varLen() (uint64, error) {
	if r.off >= len(r.buf) {
		return 0, ErrTLVTruncated
	}
	first := r.buf[r.off]
	r.off++
	switch {
	case first < 253:
		return uint64(first), nil
	case first == 253:
		if r.off+2 > len(r.buf) {
			return 0, ErrTLVTruncated
		}
		v := binary.BigEndian.Uint16(r.buf[r.off:])
		r.off += 2
		return uint64(v), nil
	case first == 254:
		if r.off+4 > len(r.buf) {
			return 0, ErrTLVTruncated
		}
		v := binary.BigEndian.Uint32(r.buf[r.off:])
		r.off += 4
		return uint64(v), nil
	default:
		return 0, fmt.Errorf("ndn: unsupported length prefix %d", first)
	}
}

// encodeName writes a Name element. The component lengths are summed
// first so the element is emitted in one pass with no intermediate
// buffer.
func encodeName(dst []byte, n names.Name) []byte {
	inner := 0
	for i := 0; i < n.Len(); i++ {
		l := len(n.Component(i))
		inner += 1 + varLenSize(uint64(l)) + l
	}
	dst = append(dst, tlvName)
	dst = appendVarLen(dst, uint64(inner))
	for i := 0; i < n.Len(); i++ {
		c := n.Component(i)
		dst = append(dst, tlvNameComponent)
		dst = appendVarLen(dst, uint64(len(c)))
		dst = append(dst, c...)
	}
	return dst
}

// decodeName parses a Name element's value.
func decodeName(value []byte) (names.Name, error) {
	r := tlvReader{buf: value}
	var comps []string
	for {
		typ, v, ok, err := r.next()
		if err != nil {
			return names.Name{}, err
		}
		if !ok {
			break
		}
		if typ != tlvNameComponent {
			return names.Name{}, fmt.Errorf("%w: %#x inside Name", ErrTLVType, typ)
		}
		comps = append(comps, string(v))
	}
	return names.New(comps...)
}

// openOuter starts an Interest/Data outer element using the 4-byte
// length form unconditionally, so the body can be appended in a single
// pass and the length patched in place afterwards (NDN decoders accept
// non-minimal length forms). Returns the body start offset for
// closeOuter.
func openOuter(dst []byte, typ byte) ([]byte, int) {
	dst = append(dst, typ, 254, 0, 0, 0, 0)
	return dst, len(dst)
}

// closeOuter patches the outer length opened by openOuter.
func closeOuter(dst []byte, start int) []byte {
	binary.BigEndian.PutUint32(dst[start-4:start], uint32(len(dst)-start))
	return dst
}

// EncodeInterest serialises an Interest to its TLV wire form.
func EncodeInterest(i *Interest) ([]byte, error) {
	return AppendInterest(nil, i)
}

// AppendInterest appends an Interest's TLV wire form to dst (which may
// be nil or pooled scratch) and returns the extended slice. The packet
// is emitted in one pass with no intermediate buffers.
func AppendInterest(dst []byte, i *Interest) ([]byte, error) {
	dst, start := openOuter(dst, tlvInterest)
	dst = encodeName(dst, i.Name)
	dst = append(dst, tlvKind, 1, byte(i.Kind))
	dst = append(dst, tlvNonce, 8)
	dst = binary.BigEndian.AppendUint64(dst, i.Nonce)
	if i.Tag != nil {
		dst = appendTLV(dst, tlvTag, i.Tag.Encode())
	}
	if i.Flag != 0 {
		dst = append(dst, tlvFlag, 8)
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(i.Flag))
	}
	if i.AccessPath != 0 {
		dst = append(dst, tlvAccessPath, 8)
		dst = binary.BigEndian.AppendUint64(dst, uint64(i.AccessPath))
	}
	if i.Registration != nil {
		reg, err := core.EncodeRegistrationRequest(i.Registration)
		if err != nil {
			return nil, err
		}
		dst = appendTLV(dst, tlvRegistration, reg)
	}
	if i.Trace.Valid() {
		dst = appendTraceCtx(dst, i.Trace)
	}
	return closeOuter(dst, start), nil
}

// DecodeInterest reverses EncodeInterest.
func DecodeInterest(b []byte) (*Interest, error) {
	outer := tlvReader{buf: b}
	typ, body, ok, err := outer.next()
	if err != nil {
		return nil, err
	}
	if !ok || typ != tlvInterest {
		return nil, fmt.Errorf("%w: want Interest, got %#x", ErrTLVType, typ)
	}
	i := &Interest{}
	r := tlvReader{buf: body}
	for {
		typ, v, ok, err := r.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		switch typ {
		case tlvName:
			if i.Name, err = decodeNameInterned(v); err != nil {
				return nil, err
			}
		case tlvKind:
			if len(v) != 1 {
				return nil, fmt.Errorf("ndn: bad Kind length %d", len(v))
			}
			i.Kind = InterestKind(v[0])
		case tlvNonce:
			if len(v) != 8 {
				return nil, fmt.Errorf("ndn: bad Nonce length %d", len(v))
			}
			i.Nonce = binary.BigEndian.Uint64(v)
		case tlvTag:
			if i.Tag, err = decodeTagInterned(v); err != nil {
				return nil, err
			}
		case tlvFlag:
			if len(v) != 8 {
				return nil, fmt.Errorf("ndn: bad Flag length %d", len(v))
			}
			i.Flag = math.Float64frombits(binary.BigEndian.Uint64(v))
		case tlvAccessPath:
			if len(v) != 8 {
				return nil, fmt.Errorf("ndn: bad AccessPath length %d", len(v))
			}
			i.AccessPath = core.AccessPath(binary.BigEndian.Uint64(v))
		case tlvRegistration:
			if i.Registration, err = core.DecodeRegistrationRequest(v); err != nil {
				return nil, err
			}
		case tlvTraceCtx:
			if i.Trace, err = decodeTraceCtx(v); err != nil {
				return nil, err
			}
		default:
			// Unknown non-critical elements are skipped, per NDN's
			// evolvability convention.
		}
	}
	if i.Kind == 0 {
		i.Kind = KindContent
	}
	return i, nil
}

// EncodeData serialises a Data packet to its TLV wire form. On a NACK,
// NackReason crosses the wire as a one-byte reason code (NackReason TLV
// 0xF8) mapped through core.ReasonCode, so downstream routers and
// clients can distinguish an enforcement verdict (forged, expired, …)
// from an Overload shed and react accordingly.
func EncodeData(d *Data) ([]byte, error) {
	return AppendData(nil, d)
}

// AppendData appends a Data packet's TLV wire form to dst (which may be
// nil or pooled scratch) and returns the extended slice. Contents and
// tags decoded off the wire contribute their cached encodings, so a
// content-store hit is serialised without re-encoding the payload.
func AppendData(dst []byte, d *Data) ([]byte, error) {
	dst, start := openOuter(dst, tlvData)
	dst = encodeName(dst, d.Name)
	if d.Content != nil {
		enc, err := core.EncodeContent(d.Content)
		if err != nil {
			return nil, err
		}
		dst = appendTLV(dst, tlvContent, enc)
	}
	if d.Tag != nil {
		dst = appendTLV(dst, tlvTag, d.Tag.Encode())
	}
	if d.Flag != 0 {
		dst = append(dst, tlvFlag, 8)
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(d.Flag))
	}
	if d.Nack {
		dst = append(dst, tlvNack, 0)
		if d.NackReason != nil {
			dst = append(dst, tlvNackReason, 1, core.ReasonCode(d.NackReason))
		}
	}
	if d.Registration != nil {
		enc, err := core.EncodeRegistrationResponse(d.Registration)
		if err != nil {
			return nil, err
		}
		dst = appendTLV(dst, tlvRegResponse, enc)
	}
	if d.Trace.Valid() {
		dst = appendTraceCtx(dst, d.Trace)
	}
	return closeOuter(dst, start), nil
}

// DecodeData reverses EncodeData.
func DecodeData(b []byte) (*Data, error) {
	outer := tlvReader{buf: b}
	typ, body, ok, err := outer.next()
	if err != nil {
		return nil, err
	}
	if !ok || typ != tlvData {
		return nil, fmt.Errorf("%w: want Data, got %#x", ErrTLVType, typ)
	}
	d := &Data{}
	r := tlvReader{buf: body}
	for {
		typ, v, ok, err := r.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		switch typ {
		case tlvName:
			if d.Name, err = decodeNameInterned(v); err != nil {
				return nil, err
			}
		case tlvContent:
			if d.Content, err = core.DecodeContent(v); err != nil {
				return nil, err
			}
		case tlvTag:
			if d.Tag, err = decodeTagInterned(v); err != nil {
				return nil, err
			}
		case tlvFlag:
			if len(v) != 8 {
				return nil, fmt.Errorf("ndn: bad Flag length %d", len(v))
			}
			d.Flag = math.Float64frombits(binary.BigEndian.Uint64(v))
		case tlvNack:
			d.Nack = true
		case tlvNackReason:
			if len(v) != 1 {
				return nil, fmt.Errorf("ndn: bad NackReason length %d", len(v))
			}
			d.NackReason = core.ReasonFromCode(v[0])
		case tlvRegResponse:
			if d.Registration, err = core.DecodeRegistrationResponse(v); err != nil {
				return nil, err
			}
		case tlvTraceCtx:
			if d.Trace, err = decodeTraceCtx(v); err != nil {
				return nil, err
			}
		default:
			// Skip unknown elements.
		}
	}
	return d, nil
}
