package ndn

import (
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/names"
)

func TestFIBRemoveFace(t *testing.T) {
	f := NewFIB()
	f.Insert(names.MustParse("/prov0"), 3)
	f.Insert(names.MustParse("/prov1"), 3)
	f.Insert(names.MustParse("/prov2/deep/prefix"), 4)

	if n := f.RemoveFace(3); n != 2 {
		t.Errorf("RemoveFace(3) = %d, want 2", n)
	}
	if _, ok := f.Lookup(names.MustParse("/prov0/obj")); ok {
		t.Error("route via dead face survived")
	}
	if _, ok := f.Lookup(names.MustParse("/prov1/obj")); ok {
		t.Error("second route via dead face survived")
	}
	if face, ok := f.Lookup(names.MustParse("/prov2/deep/prefix/obj")); !ok || face != 4 {
		t.Errorf("unrelated route lost: (%v, %v)", face, ok)
	}
	if n := f.RemoveFace(3); n != 0 {
		t.Errorf("second RemoveFace(3) = %d, want 0", n)
	}
	if f.Len() != 1 {
		t.Errorf("Len = %d, want 1", f.Len())
	}
}

func TestPITOutFaceDefaultsToNone(t *testing.T) {
	p := NewPIT()
	e, created := p.Insert(names.MustParse("/a/b"), PITRecord{InFace: 1, Nonce: 1}, time.Now().Add(time.Second))
	if !created {
		t.Fatal("entry not created")
	}
	if e.OutFace != FaceNone {
		t.Errorf("OutFace = %v, want FaceNone", e.OutFace)
	}
	// Face 0 is a valid face; an unforwarded entry must not match it.
	if dropped := p.DropByOutFace(0); len(dropped) != 0 {
		t.Errorf("DropByOutFace(0) flushed %d unforwarded entries", len(dropped))
	}
}

func TestPITDropByOutFace(t *testing.T) {
	p := NewPIT()
	now := time.Now()
	exp := now.Add(time.Second)
	for i, upstream := range []FaceID{7, 7, 9} {
		name := names.MustParse("/a").MustAppend("c" + string(rune('0'+i)))
		e, _ := p.Insert(name, PITRecord{InFace: 1, Nonce: uint64(i)}, exp)
		e.OutFace = upstream
	}

	dropped := p.DropByOutFace(7)
	if len(dropped) != 2 {
		t.Fatalf("dropped %d entries, want 2", len(dropped))
	}
	for _, e := range dropped {
		if e.OutFace != 7 {
			t.Errorf("flushed entry with OutFace %v", e.OutFace)
		}
	}
	if p.Len() != 1 {
		t.Errorf("Len = %d, want 1", p.Len())
	}
	// The survivor is still retrievable and still points at face 9.
	e, ok := p.Lookup(names.MustParse("/a/c2"))
	if !ok || e.OutFace != 9 {
		t.Errorf("survivor = (%+v, %v)", e, ok)
	}
}

func TestPITExpireBeforeReturnsEntries(t *testing.T) {
	p := NewPIT()
	now := time.Now()
	p.Insert(names.MustParse("/a/old"), PITRecord{Nonce: 1}, now.Add(-time.Second))
	p.Insert(names.MustParse("/a/new"), PITRecord{Nonce: 2}, now.Add(time.Hour))

	expired := p.ExpireBefore(now)
	if len(expired) != 1 || !expired[0].Name.Equal(names.MustParse("/a/old")) {
		t.Fatalf("expired = %+v, want the old entry", expired)
	}
	if _, _, exp := p.Stats(); exp != 1 {
		t.Errorf("expired stat = %d, want 1", exp)
	}
}
