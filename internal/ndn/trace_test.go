package ndn

import (
	"errors"
	"testing"

	"github.com/tactic-icn/tactic/internal/names"
)

func TestTraceContextRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: 0xDEADBEEFCAFEF00D, ParentID: 0x0123456789ABCDEF, Sampled: true, Hops: 3}
	in := &Interest{Name: names.MustParse("/prov0/obj/c0"), Kind: KindContent, Nonce: 42, Trace: tc}
	enc, err := EncodeInterest(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeInterest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if out.Trace != tc {
		t.Errorf("interest trace mismatch: %+v vs %+v", out.Trace, tc)
	}

	dc := TraceContext{TraceID: 7, ParentID: 9, Hops: 255}
	d := &Data{Name: names.MustParse("/prov0/obj/c0"), Nack: true, Trace: dc}
	encD, err := EncodeData(d)
	if err != nil {
		t.Fatal(err)
	}
	outD, err := DecodeData(encD)
	if err != nil {
		t.Fatal(err)
	}
	if outD.Trace != dc {
		t.Errorf("data trace mismatch: %+v vs %+v", outD.Trace, dc)
	}
	if !outD.Nack {
		t.Error("nack bit lost alongside trace")
	}
}

func TestTraceContextZeroAddsNoBytes(t *testing.T) {
	base := &Interest{Name: names.MustParse("/p/c"), Kind: KindContent, Nonce: 1}
	plain, err := EncodeInterest(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Trace = TraceContext{} // explicit zero value
	again, err := EncodeInterest(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(again) {
		t.Errorf("zero TraceContext changed wire size: %d vs %d", len(plain), len(again))
	}
}

func TestTraceContextBadLength(t *testing.T) {
	if _, err := decodeTraceCtx(make([]byte, 17)); err == nil {
		t.Error("want error for short TraceContext value")
	}
	i := &Interest{Name: names.MustParse("/p/c"), Nonce: 1}
	enc, _ := EncodeInterest(i)
	enc = injectUnknown(t, enc, tlvInterest, []byte{tlvTraceCtx, 3, 1, 2, 3})
	if _, err := DecodeInterest(enc); err == nil {
		t.Error("want decode error for malformed TraceContext TLV")
	}
}

// injectUnknown splices raw TLV bytes into the front of a packet's body,
// re-patching the outer length, to simulate a peer speaking a newer wire
// dialect.
func injectUnknown(t *testing.T, wire []byte, outerType byte, raw []byte) []byte {
	t.Helper()
	r := tlvReader{buf: wire}
	typ, body, ok, err := r.next()
	if err != nil || !ok || typ != outerType {
		t.Fatalf("bad outer element: typ=%#x ok=%v err=%v", typ, ok, err)
	}
	dst, start := openOuter(nil, outerType)
	dst = append(dst, raw...)
	dst = append(dst, body...)
	return closeOuter(dst, start)
}

// TestDecodeSkipsUnknownTLVs guards the wire-evolvability story: every
// decoder must skip TLV types it does not understand (this is how old
// nodes interoperate with TraceContext-stamping peers, and how future
// extensions stay compatible with today's binaries).
func TestDecodeSkipsUnknownTLVs(t *testing.T) {
	tag, content, reg, resp := tlvFixtures(t)
	// Unknown elements: a short one, an empty one, and one using the
	// 2-byte length form.
	long := make([]byte, 300)
	unknown := []byte{0xE0, 4, 0xAA, 0xBB, 0xCC, 0xDD, 0xE1, 0}
	unknown = append(unknown, 0xE2, 253, 0x01, 0x2C)
	unknown = append(unknown, long...)

	interests := []*Interest{
		{Name: names.MustParse("/prov0/obj/c0"), Kind: KindContent, Nonce: 42, Tag: tag, Flag: 0.5, AccessPath: 7},
		{Name: names.MustParse("/prov0/register/alice/n1"), Kind: KindRegistration, Nonce: 9, Registration: reg},
	}
	for i, in := range interests {
		enc, err := EncodeInterest(in)
		if err != nil {
			t.Fatalf("interest %d encode: %v", i, err)
		}
		out, err := DecodeInterest(injectUnknown(t, enc, tlvInterest, unknown))
		if err != nil {
			t.Fatalf("interest %d decode with unknown TLVs: %v", i, err)
		}
		if !out.Name.Equal(in.Name) || out.Kind != in.Kind || out.Nonce != in.Nonce ||
			out.Flag != in.Flag || out.AccessPath != in.AccessPath {
			t.Errorf("interest %d fields damaged by unknown TLVs: %+v vs %+v", i, out, in)
		}
		if (out.Tag == nil) != (in.Tag == nil) || (out.Registration == nil) != (in.Registration == nil) {
			t.Errorf("interest %d optional-field presence damaged", i)
		}
	}

	datas := []*Data{
		{Name: names.MustParse("/prov0/obj/c0"), Content: content, Tag: tag, Flag: 0.25},
		{Name: names.MustParse("/prov0/obj/c0"), Nack: true, Tag: tag},
		{Name: names.MustParse("/prov0/register/alice/n1"), Registration: resp},
	}
	for i, in := range datas {
		enc, err := EncodeData(in)
		if err != nil {
			t.Fatalf("data %d encode: %v", i, err)
		}
		out, err := DecodeData(injectUnknown(t, enc, tlvData, unknown))
		if err != nil {
			t.Fatalf("data %d decode with unknown TLVs: %v", i, err)
		}
		if !out.Name.Equal(in.Name) || out.Flag != in.Flag || out.Nack != in.Nack {
			t.Errorf("data %d fields damaged by unknown TLVs: %+v vs %+v", i, out, in)
		}
		if (out.Content == nil) != (in.Content == nil) || (out.Tag == nil) != (in.Tag == nil) ||
			(out.Registration == nil) != (in.Registration == nil) {
			t.Errorf("data %d optional-field presence damaged", i)
		}
	}

	// A truncated unknown element must still error, not be skipped: here
	// the element claims 10 value bytes but the body holds only 2.
	bad, start := openOuter(nil, tlvInterest)
	bad = append(bad, 0xE3, 10, 1, 2)
	bad = closeOuter(bad, start)
	if _, err := DecodeInterest(bad); !errors.Is(err, ErrTLVTruncated) {
		t.Errorf("truncated unknown element: got %v, want ErrTLVTruncated", err)
	}
}
