package ndn

import (
	"encoding/binary"
	"fmt"

	"github.com/tactic-icn/tactic/internal/bloom"
	"github.com/tactic-icn/tactic/internal/core"
)

// Control frames are the lifecycle control plane's wire format: the
// issuance service pushes revocation-set updates and epoch rotations to
// routers, and edge routers advertise validated-tag BF deltas to their
// peers. Control rides next to Interest/Data as its own outer TLV type
// (0x61, in the reserved range beside the transport keepalive), so
// forwarders that predate it reject the frame cleanly instead of
// misparsing it as traffic.

// ControlKind discriminates control messages.
type ControlKind uint8

// Control message kinds.
const (
	// CtrlRevoke carries a revocation-set update (full snapshot or
	// delta) at a set version.
	CtrlRevoke ControlKind = 1
	// CtrlRotate orders a BF epoch rotation to the carried epoch.
	CtrlRotate ControlKind = 2
	// CtrlBFSync advertises a neighbor's validated-tag BF word delta.
	CtrlBFSync ControlKind = 3
)

// String returns the kind's stable label (metrics, logs).
func (k ControlKind) String() string {
	switch k {
	case CtrlRevoke:
		return "revoke"
	case CtrlRotate:
		return "rotate"
	case CtrlBFSync:
		return "bf_sync"
	}
	return fmt.Sprintf("kind_%d", uint8(k))
}

// Control is one control-plane message.
type Control struct {
	// Kind selects which fields below are meaningful.
	Kind ControlKind
	// Version orders messages from one origin: the revocation-set
	// version for CtrlRevoke, the target epoch for CtrlRotate, the
	// sender's sync generation for CtrlBFSync. Receivers apply a message
	// only when it advances their state, which also terminates floods.
	Version uint64
	// Origin is the originating node's identity (dedup and diagnostics;
	// for CtrlBFSync it names whose filter the delta describes).
	Origin string

	// Full marks a CtrlRevoke carrying the complete revocation set
	// rather than a delta to union in.
	Full bool
	// Revoked lists the revoked tag IDs (CtrlRevoke).
	Revoked []core.TagID

	// Bits and Hashes are the advertised filter's shape (CtrlBFSync);
	// receivers reject deltas from differently-shaped filters.
	Bits   uint64
	Hashes uint32
	// Words are the changed bit-array words since the sender's previous
	// advertisement (CtrlBFSync).
	Words []bloom.WordDelta
	// Added is the element count the delta represents on the sender's
	// side, folded into the receiver's count-based FPP estimate.
	Added uint64
}

// Control TLV types (outer frame type plus elements scoped to its body).
const (
	tlvControl = 0x61

	ctrlKind    = 0x01
	ctrlVersion = 0x02
	ctrlOrigin  = 0x03
	ctrlFull    = 0x04
	ctrlRevoked = 0x05
	ctrlShape   = 0x06
	ctrlWords   = 0x07
	ctrlAdded   = 0x08
)

// tagIDSize is the wire size of one revoked-tag ID.
const tagIDSize = 32

// wordDeltaSize is the wire size of one BF word delta (index + word).
const wordDeltaSize = 4 + 8

// EncodeControl serialises a control message to its TLV wire form.
func EncodeControl(c *Control) ([]byte, error) {
	return AppendControl(nil, c)
}

// AppendControl appends a control message's TLV wire form to dst (which
// may be nil or pooled scratch) and returns the extended slice.
func AppendControl(dst []byte, c *Control) ([]byte, error) {
	if c.Kind == 0 {
		return nil, fmt.Errorf("ndn: control message has no kind")
	}
	dst, start := openOuter(dst, tlvControl)
	dst = append(dst, ctrlKind, 1, byte(c.Kind))
	dst = append(dst, ctrlVersion, 8)
	dst = binary.BigEndian.AppendUint64(dst, c.Version)
	if c.Origin != "" {
		dst = appendTLV(dst, ctrlOrigin, []byte(c.Origin))
	}
	if c.Full {
		dst = append(dst, ctrlFull, 0)
	}
	if len(c.Revoked) > 0 {
		dst = append(dst, ctrlRevoked)
		dst = appendVarLen(dst, uint64(len(c.Revoked)*tagIDSize))
		for i := range c.Revoked {
			dst = append(dst, c.Revoked[i][:]...)
		}
	}
	if c.Bits != 0 || c.Hashes != 0 {
		dst = append(dst, ctrlShape, 12)
		dst = binary.BigEndian.AppendUint64(dst, c.Bits)
		dst = binary.BigEndian.AppendUint32(dst, c.Hashes)
	}
	if len(c.Words) > 0 {
		dst = append(dst, ctrlWords)
		dst = appendVarLen(dst, uint64(len(c.Words)*wordDeltaSize))
		for _, w := range c.Words {
			dst = binary.BigEndian.AppendUint32(dst, w.Index)
			dst = binary.BigEndian.AppendUint64(dst, w.Word)
		}
	}
	if c.Added != 0 {
		dst = append(dst, ctrlAdded, 8)
		dst = binary.BigEndian.AppendUint64(dst, c.Added)
	}
	return closeOuter(dst, start), nil
}

// DecodeControl reverses EncodeControl. Unknown elements are skipped,
// per the codec's evolvability convention.
func DecodeControl(b []byte) (*Control, error) {
	outer := tlvReader{buf: b}
	typ, body, ok, err := outer.next()
	if err != nil {
		return nil, err
	}
	if !ok || typ != tlvControl {
		return nil, fmt.Errorf("%w: want Control, got %#x", ErrTLVType, typ)
	}
	c := &Control{}
	r := tlvReader{buf: body}
	for {
		typ, v, ok, err := r.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		switch typ {
		case ctrlKind:
			if len(v) != 1 {
				return nil, fmt.Errorf("ndn: bad control Kind length %d", len(v))
			}
			c.Kind = ControlKind(v[0])
		case ctrlVersion:
			if len(v) != 8 {
				return nil, fmt.Errorf("ndn: bad control Version length %d", len(v))
			}
			c.Version = binary.BigEndian.Uint64(v)
		case ctrlOrigin:
			c.Origin = string(v)
		case ctrlFull:
			c.Full = true
		case ctrlRevoked:
			if len(v)%tagIDSize != 0 {
				return nil, fmt.Errorf("ndn: bad Revoked length %d", len(v))
			}
			c.Revoked = make([]core.TagID, len(v)/tagIDSize)
			for i := range c.Revoked {
				copy(c.Revoked[i][:], v[i*tagIDSize:])
			}
		case ctrlShape:
			if len(v) != 12 {
				return nil, fmt.Errorf("ndn: bad Shape length %d", len(v))
			}
			c.Bits = binary.BigEndian.Uint64(v)
			c.Hashes = binary.BigEndian.Uint32(v[8:])
		case ctrlWords:
			if len(v)%wordDeltaSize != 0 {
				return nil, fmt.Errorf("ndn: bad Words length %d", len(v))
			}
			c.Words = make([]bloom.WordDelta, len(v)/wordDeltaSize)
			for i := range c.Words {
				off := i * wordDeltaSize
				c.Words[i].Index = binary.BigEndian.Uint32(v[off:])
				c.Words[i].Word = binary.BigEndian.Uint64(v[off+4:])
			}
		case ctrlAdded:
			if len(v) != 8 {
				return nil, fmt.Errorf("ndn: bad Added length %d", len(v))
			}
			c.Added = binary.BigEndian.Uint64(v)
		default:
			// Skip unknown elements.
		}
	}
	if c.Kind == 0 {
		return nil, fmt.Errorf("ndn: control message has no kind")
	}
	return c, nil
}

// WireSizeControl estimates a control message's encoded size, for
// traffic accounting in the simulator.
func WireSizeControl(c *Control) int {
	n := 6 + 3 + 10 // outer header + kind + version
	if c.Origin != "" {
		n += 2 + len(c.Origin)
	}
	if c.Full {
		n += 2
	}
	if len(c.Revoked) > 0 {
		n += 1 + varLenSize(uint64(len(c.Revoked)*tagIDSize)) + len(c.Revoked)*tagIDSize
	}
	if c.Bits != 0 || c.Hashes != 0 {
		n += 14
	}
	if len(c.Words) > 0 {
		n += 1 + varLenSize(uint64(len(c.Words)*wordDeltaSize)) + len(c.Words)*wordDeltaSize
	}
	if c.Added != 0 {
		n += 10
	}
	return n
}
