package ndn

import (
	"container/list"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
)

// CS is a least-recently-used Content Store — the pervasive in-network
// cache that motivates TACTIC: "a content object, when published by its
// publisher, can be cached at every node in the network allowing
// subsequent requests for the content to be fulfilled from these
// in-network caches" (§1). A router whose CS holds the requested content
// acts as a content router (R_C^c) and runs Protocol 3.
type CS struct {
	capacity int
	ll       *list.List
	index    map[string]*list.Element
	hits     uint64
	misses   uint64
	evicted  uint64
}

// csItem is one cached chunk.
type csItem struct {
	key     string
	content *core.Content
}

// NewCS creates a content store holding at most capacity chunks. A zero
// or negative capacity disables caching (every Lookup misses).
func NewCS(capacity int) *CS {
	return &CS{
		capacity: capacity,
		ll:       list.New(),
		index:    make(map[string]*list.Element),
	}
}

// Insert caches a chunk, evicting the least recently used entry when
// full. Re-inserting an existing name refreshes its recency.
func (c *CS) Insert(content *core.Content) {
	if c.capacity <= 0 {
		return
	}
	k := content.Meta.Name.Key()
	if el, ok := c.index[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*csItem).content = content
		return
	}
	el := c.ll.PushFront(&csItem{key: k, content: content})
	c.index[k] = el
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.index, oldest.Value.(*csItem).key)
		c.evicted++
	}
}

// Lookup returns the cached chunk for name, refreshing its recency.
func (c *CS) Lookup(name names.Name) (*core.Content, bool) {
	el, ok := c.index[name.Key()]
	if !ok {
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*csItem).content, true
}

// Contains reports whether name is cached without touching recency or
// hit/miss statistics.
func (c *CS) Contains(name names.Name) bool {
	_, ok := c.index[name.Key()]
	return ok
}

// Len returns the number of cached chunks.
func (c *CS) Len() int { return c.ll.Len() }

// Names returns the cached content names in unspecified order, without
// touching recency or hit/miss statistics. The conformance oracle uses
// it to compare end-state cache contents across enforcement planes.
func (c *CS) Names() []string {
	out := make([]string, 0, len(c.index))
	for k := range c.index {
		out = append(out, k)
	}
	return out
}

// Capacity returns the configured maximum.
func (c *CS) Capacity() int { return c.capacity }

// Stats returns hits, misses, and evictions.
func (c *CS) Stats() (hits, misses, evicted uint64) {
	return c.hits, c.misses, c.evicted
}
