package ndn

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/pki"
)

// tlvFixtures builds a signed tag, content, and registration pair.
func tlvFixtures(t *testing.T) (*core.Tag, *core.Content, *core.RegistrationRequest, *core.RegistrationResponse) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	signer, err := pki.GenerateFast(rng, names.MustParse("/prov0/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	prov, err := core.NewProvider(names.MustParse("/prov0"), signer, time.Minute, rng)
	if err != nil {
		t.Fatal(err)
	}
	content, err := prov.Publish(names.MustParse("/prov0/obj/c0"), 2, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	cliSigner, err := pki.GenerateFast(rng, names.MustParse("/u/alice/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := core.NewClient(cliSigner, rng)
	if err != nil {
		t.Fatal(err)
	}
	prov.Enroll(cl.KeyLocator(), cliSigner.Public(), 3)
	req, err := cl.NewRegistrationRequest(core.AccessPathOf("ap0"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := prov.Register(req, time.Unix(100, 0))
	if err != nil {
		t.Fatal(err)
	}
	return resp.Tag, content, &req, resp
}

func TestInterestTLVRoundTrip(t *testing.T) {
	tag, _, reg, _ := tlvFixtures(t)
	cases := []*Interest{
		{Name: names.MustParse("/prov0/obj/c0"), Kind: KindContent, Nonce: 42},
		{Name: names.MustParse("/prov0/obj/c1"), Kind: KindContent, Nonce: 7, Tag: tag, Flag: 0.25, AccessPath: 99},
		{Name: names.MustParse("/prov0/register/alice/n1"), Kind: KindRegistration, Nonce: 9, Registration: reg},
	}
	for i, in := range cases {
		enc, err := EncodeInterest(in)
		if err != nil {
			t.Fatalf("case %d encode: %v", i, err)
		}
		out, err := DecodeInterest(enc)
		if err != nil {
			t.Fatalf("case %d decode: %v", i, err)
		}
		if !out.Name.Equal(in.Name) || out.Kind != in.Kind || out.Nonce != in.Nonce ||
			out.Flag != in.Flag || out.AccessPath != in.AccessPath {
			t.Errorf("case %d scalar mismatch: %+v vs %+v", i, out, in)
		}
		if (out.Tag == nil) != (in.Tag == nil) {
			t.Fatalf("case %d tag presence mismatch", i)
		}
		if in.Tag != nil && !bytes.Equal(out.Tag.Encode(), in.Tag.Encode()) {
			t.Errorf("case %d tag mismatch", i)
		}
		if (out.Registration == nil) != (in.Registration == nil) {
			t.Fatalf("case %d registration presence mismatch", i)
		}
		if in.Registration != nil && !bytes.Equal(out.Registration.Credential, in.Registration.Credential) {
			t.Errorf("case %d registration mismatch", i)
		}
	}
}

func TestDataTLVRoundTrip(t *testing.T) {
	tag, content, _, resp := tlvFixtures(t)
	cases := []*Data{
		{Name: names.MustParse("/prov0/obj/c0"), Content: content, Tag: tag, Flag: 0.001},
		{Name: names.MustParse("/prov0/obj/c0"), Content: content, Tag: tag, Nack: true},
		{Name: names.MustParse("/prov0/register/alice/n1"), Registration: resp},
		{Name: names.MustParse("/prov0/obj/c9"), Tag: tag, Nack: true}, // pure NACK
	}
	for i, in := range cases {
		enc, err := EncodeData(in)
		if err != nil {
			t.Fatalf("case %d encode: %v", i, err)
		}
		out, err := DecodeData(enc)
		if err != nil {
			t.Fatalf("case %d decode: %v", i, err)
		}
		if !out.Name.Equal(in.Name) || out.Nack != in.Nack || out.Flag != in.Flag {
			t.Errorf("case %d scalar mismatch", i)
		}
		if (out.Content == nil) != (in.Content == nil) {
			t.Fatalf("case %d content presence mismatch", i)
		}
		if in.Content != nil && !bytes.Equal(out.Content.Payload, in.Content.Payload) {
			t.Errorf("case %d payload mismatch", i)
		}
		if (out.Registration == nil) != (in.Registration == nil) {
			t.Fatalf("case %d registration presence mismatch", i)
		}
		if in.Registration != nil && !bytes.Equal(out.Registration.Tag.Encode(), in.Registration.Tag.Encode()) {
			t.Errorf("case %d registration tag mismatch", i)
		}
	}
}

func TestTLVDecodeErrors(t *testing.T) {
	tag, content, _, _ := tlvFixtures(t)
	d := &Data{Name: names.MustParse("/a/b"), Content: content, Tag: tag}
	enc, err := EncodeData(d)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation fails cleanly.
	for cut := 1; cut < len(enc); cut += 11 {
		if _, err := DecodeData(enc[:cut]); err == nil {
			t.Fatalf("truncated data at %d accepted", cut)
		}
	}
	// Type confusion: an Interest buffer is not a Data.
	i := &Interest{Name: names.MustParse("/a"), Kind: KindContent, Nonce: 1}
	ienc, err := EncodeInterest(i)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeData(ienc); err == nil {
		t.Error("Interest decoded as Data")
	}
	if _, err := DecodeInterest(enc); err == nil {
		t.Error("Data decoded as Interest")
	}
	if _, err := DecodeInterest(nil); err == nil {
		t.Error("empty buffer decoded")
	}
}

func TestTLVUnknownElementsSkipped(t *testing.T) {
	// NDN evolvability: unknown elements inside a packet are ignored.
	i := &Interest{Name: names.MustParse("/a/b"), Kind: KindContent, Nonce: 5}
	enc, err := EncodeInterest(i)
	if err != nil {
		t.Fatal(err)
	}
	// Append an unknown element inside the Interest body: rebuild with
	// extra bytes. Outer TLV: type(1) + len + body. Splice an unknown
	// element (type 0xE0, len 2) into the body and fix the outer length.
	body := enc[2:] // assumes 1-byte length (small packet)
	if int(enc[1]) != len(body) {
		t.Skip("packet grew beyond 1-byte length; splice test not applicable")
	}
	spliced := append([]byte{}, body...)
	spliced = append(spliced, 0xE0, 2, 0xAB, 0xCD)
	repacked := append([]byte{enc[0], byte(len(spliced))}, spliced...)
	out, err := DecodeInterest(repacked)
	if err != nil {
		t.Fatalf("unknown element broke decoding: %v", err)
	}
	if !out.Name.Equal(i.Name) || out.Nonce != 5 {
		t.Error("fields lost around unknown element")
	}
}

func TestVarLenBoundaries(t *testing.T) {
	for _, n := range []uint64{0, 1, 252, 253, 254, 65535, 65536, 1 << 20} {
		enc := appendVarLen(nil, n)
		r := tlvReader{buf: enc}
		got, err := r.varLen()
		if err != nil {
			t.Fatalf("varLen(%d): %v", n, err)
		}
		if got != n {
			t.Errorf("varLen round trip %d -> %d", n, got)
		}
	}
	// Reserved 255 prefix rejected.
	r := tlvReader{buf: []byte{255, 0, 0, 0, 0, 0, 0, 0, 0}}
	if _, err := r.varLen(); err == nil {
		t.Error("8-byte length prefix accepted (unsupported)")
	}
}

func TestTLVWireSizeAgreement(t *testing.T) {
	// The estimate used by the simulator should be within ~30% of the
	// real TLV encoding for representative packets.
	tag, content, _, _ := tlvFixtures(t)
	i := &Interest{Name: names.MustParse("/prov0/obj/c0"), Kind: KindContent, Nonce: 1, Tag: tag}
	ienc, err := EncodeInterest(i)
	if err != nil {
		t.Fatal(err)
	}
	checkClose(t, "interest", i.WireSize(), len(ienc))

	d := &Data{Name: names.MustParse("/prov0/obj/c0"), Content: content, Tag: tag}
	denc, err := EncodeData(d)
	if err != nil {
		t.Fatal(err)
	}
	checkClose(t, "data", d.WireSize(), len(denc))
}

func checkClose(t *testing.T, what string, estimate, actual int) {
	t.Helper()
	ratio := float64(estimate) / float64(actual)
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("%s size estimate %d vs TLV %d (ratio %.2f)", what, estimate, actual, ratio)
	}
}
