package ndn

import (
	"github.com/tactic-icn/tactic/internal/names"
)

// FIB is a Forwarding Information Base mapping name prefixes to outgoing
// faces. Lookup performs longest-prefix match, the standard NDN
// forwarding rule.
type FIB struct {
	entries map[string]FaceID
	// maxDepth bounds the LPM walk to the longest inserted prefix.
	maxDepth int
}

// NewFIB creates an empty FIB.
func NewFIB() *FIB {
	return &FIB{entries: make(map[string]FaceID)}
}

// Insert adds (or replaces) a route for prefix via face.
func (f *FIB) Insert(prefix names.Name, face FaceID) {
	f.entries[prefix.Key()] = face
	if prefix.Len() > f.maxDepth {
		f.maxDepth = prefix.Len()
	}
}

// Remove deletes the route for an exact prefix, reporting whether it
// existed.
func (f *FIB) Remove(prefix names.Name) bool {
	k := prefix.Key()
	if _, ok := f.entries[k]; !ok {
		return false
	}
	delete(f.entries, k)
	return true
}

// RemoveFace deletes every route pointing at face and returns how many
// were removed — used when a face dies, so Interests are not forwarded
// into a black hole (the routes reattach when a managed uplink
// reconnects).
func (f *FIB) RemoveFace(face FaceID) int {
	n := 0
	for k, v := range f.entries {
		if v == face {
			delete(f.entries, k)
			n++
		}
	}
	// maxDepth stays as an upper bound; Lookup only uses it to cap the
	// LPM walk.
	return n
}

// Lookup returns the face for the longest registered prefix of name.
func (f *FIB) Lookup(name names.Name) (FaceID, bool) {
	depth := name.Len()
	if depth > f.maxDepth {
		depth = f.maxDepth
	}
	for k := depth; k >= 0; k-- {
		if face, ok := f.entries[name.Prefix(k).Key()]; ok {
			return face, true
		}
	}
	return FaceNone, false
}

// Len returns the number of routes.
func (f *FIB) Len() int { return len(f.entries) }
