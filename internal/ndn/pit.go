package ndn

import (
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
)

// PITRecord is one aggregated requester: the paper extends the classic
// face-set aggregation with the full 3-tuple <T_u, F, InFace_u>
// (Protocol 4 line 4) so the router can validate each aggregated tag
// when the content arrives. "The addition of the tag adds an overhead to
// the PIT entry but it is of the order of a couple hundred bytes" (§5.C).
type PITRecord struct {
	// Tag is T_u; nil for tagless requests.
	Tag *core.Tag
	// Flag is the F carried by the aggregated Interest.
	Flag float64
	// InFace is the face the Interest arrived on; the Data for this
	// record is forwarded there (reverse-path forwarding).
	InFace FaceID
	// Nonce is the Interest's nonce, for duplicate suppression.
	Nonce uint64
	// Arrived is when the Interest reached this router, for latency
	// accounting.
	Arrived time.Time
}

// PITEntry is the pending-Interest state for one content name: the
// primary record (the Interest actually forwarded upstream) plus every
// aggregated record.
type PITEntry struct {
	// Name is the content name.
	Name names.Name
	// Records lists the requesters; Records[0] is the primary (the
	// Interest that created the entry and was forwarded).
	Records []PITRecord
	// Expires is the entry's lifetime deadline; expired entries free
	// their requesters' windows (the paper's 1 s request expiry, §8.B).
	Expires time.Time
	// OutFace is the face the primary Interest was forwarded to
	// (FaceNone until a forwarder records it). Entries whose upstream
	// face dies are flushed (DropByOutFace) so retransmissions create a
	// fresh entry and are re-forwarded instead of aggregating onto a
	// request that can never be satisfied.
	OutFace FaceID
}

// HasNonce reports whether a record with the nonce is already
// aggregated (loop/duplicate suppression).
func (e *PITEntry) HasNonce(nonce uint64) bool {
	for _, r := range e.Records {
		if r.Nonce == nonce {
			return true
		}
	}
	return false
}

// PIT is a Pending Interest Table.
type PIT struct {
	entries    map[string]*PITEntry
	aggregated uint64
	created    uint64
	expired    uint64
}

// NewPIT creates an empty PIT.
func NewPIT() *PIT {
	return &PIT{entries: make(map[string]*PITEntry)}
}

// Lookup returns the entry for name, if any.
func (p *PIT) Lookup(name names.Name) (*PITEntry, bool) {
	e, ok := p.entries[name.Key()]
	return e, ok
}

// Insert records an Interest. When no entry exists one is created (and
// the caller must forward the Interest upstream — Protocol 4 lines 1-2);
// otherwise the record is aggregated into the existing entry (lines
// 3-5). The returned bool reports whether the entry is new.
func (p *PIT) Insert(name names.Name, rec PITRecord, expires time.Time) (*PITEntry, bool) {
	k := name.Key()
	if e, ok := p.entries[k]; ok {
		e.Records = append(e.Records, rec)
		if expires.After(e.Expires) {
			e.Expires = expires
		}
		p.aggregated++
		return e, false
	}
	e := &PITEntry{Name: name, Records: []PITRecord{rec}, Expires: expires, OutFace: FaceNone}
	p.entries[k] = e
	p.created++
	return e, true
}

// DropByOutFace removes and returns every entry whose primary Interest
// was forwarded to face — called when that face dies, so the pending
// requests can be accounted (and, on retransmission, re-forwarded via a
// fresh entry).
func (p *PIT) DropByOutFace(face FaceID) []*PITEntry {
	var out []*PITEntry
	for k, e := range p.entries {
		if e.OutFace == face {
			out = append(out, e)
			delete(p.entries, k)
		}
	}
	return out
}

// Consume removes and returns the entry for name — the router is about
// to satisfy it with arriving Data.
func (p *PIT) Consume(name names.Name) (*PITEntry, bool) {
	k := name.Key()
	e, ok := p.entries[k]
	if ok {
		delete(p.entries, k)
	}
	return e, ok
}

// ExpireBefore removes entries whose lifetime ended at or before now and
// returns them so callers can account for the timed-out requesters.
func (p *PIT) ExpireBefore(now time.Time) []*PITEntry {
	var out []*PITEntry
	for k, e := range p.entries {
		if !e.Expires.After(now) {
			out = append(out, e)
			delete(p.entries, k)
			p.expired++
		}
	}
	return out
}

// Len returns the number of pending entries.
func (p *PIT) Len() int { return len(p.entries) }

// Stats returns entries created, Interests aggregated into existing
// entries, and entries expired.
func (p *PIT) Stats() (created, aggregated, expired uint64) {
	return p.created, p.aggregated, p.expired
}
