package ndn

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"reflect"
	"testing"

	"github.com/tactic-icn/tactic/internal/bloom"
	"github.com/tactic-icn/tactic/internal/core"
)

func tagIDOf(b byte) core.TagID {
	return core.TagID(sha256.Sum256([]byte{b}))
}

func TestControlRoundTrip(t *testing.T) {
	cases := []*Control{
		{Kind: CtrlRevoke, Version: 7, Origin: "issuer", Full: true,
			Revoked: []core.TagID{tagIDOf(1), tagIDOf(2)}},
		{Kind: CtrlRevoke, Version: 1, Revoked: []core.TagID{tagIDOf(9)}},
		{Kind: CtrlRotate, Version: 3, Origin: "e0"},
		{Kind: CtrlBFSync, Version: 12, Origin: "e1", Bits: 4793, Hashes: 5,
			Words: []bloom.WordDelta{{Index: 0, Word: 0xdeadbeef}, {Index: 74, Word: 1}}, Added: 17},
	}
	for _, c := range cases {
		enc, err := EncodeControl(c)
		if err != nil {
			t.Fatalf("EncodeControl(%v): %v", c.Kind, err)
		}
		got, err := DecodeControl(enc)
		if err != nil {
			t.Fatalf("DecodeControl(%v): %v", c.Kind, err)
		}
		if !reflect.DeepEqual(got, c) {
			t.Fatalf("control round trip mutated message:\n got %+v\nwant %+v", got, c)
		}
		if sz := WireSizeControl(c); sz != len(enc) {
			t.Errorf("WireSizeControl(%v) = %d, encoded %d bytes", c.Kind, sz, len(enc))
		}
	}
}

func TestControlRejectsMalformed(t *testing.T) {
	base, err := EncodeControl(&Control{Kind: CtrlRevoke, Version: 1, Revoked: []core.TagID{tagIDOf(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeControl(nil); err == nil {
		t.Error("decoded empty buffer")
	}
	if _, err := DecodeControl(base[:len(base)-3]); err == nil {
		t.Error("decoded truncated control frame")
	}
	if _, err := EncodeControl(&Control{}); err == nil {
		t.Error("encoded kindless control message")
	}
	// A control body with no kind element must be rejected.
	var kindless []byte
	kindless, start := openOuter(kindless, tlvControl)
	kindless = append(kindless, ctrlVersion, 8)
	kindless = binary.BigEndian.AppendUint64(kindless, 1)
	kindless = closeOuter(kindless, start)
	if _, err := DecodeControl(kindless); err == nil {
		t.Error("decoded control message without a kind")
	}
	// A revoked list that is not a whole number of tag IDs is torn.
	torn := append([]byte(nil), base...)
	// Find the revoked element and shrink its declared length by one.
	i := bytes.IndexByte(torn[6:], ctrlRevoked) + 6
	if torn[i+1] != 32 {
		t.Fatalf("unexpected revoked element layout at %d", i)
	}
	torn[i+1] = 31
	torn = torn[:len(torn)-1]
	binary.BigEndian.PutUint32(torn[2:6], uint32(len(torn)-6))
	if _, err := DecodeControl(torn); err == nil {
		t.Error("decoded torn revoked list")
	}
}

// FuzzRevocationTLV drives DecodeControl with arbitrary bytes (no
// panics; accepted inputs must re-encode canonically) and with
// composed revocation messages built from fuzzed primitives (lossless
// round trip).
func FuzzRevocationTLV(f *testing.F) {
	f.Add(uint64(1), "issuer", true, []byte{}, uint8(1))
	f.Add(uint64(1<<40), "", false, bytes.Repeat([]byte{0xab}, 64), uint8(3))
	f.Add(^uint64(0), "e0/edge", false, bytes.Repeat([]byte{7}, 31), uint8(200))
	f.Fuzz(func(t *testing.T, version uint64, origin string, full bool, idBytes []byte, rawKind uint8) {
		// Arbitrary-bytes safety: the fuzzed primitives double as a
		// byte soup for the decoder.
		if c, err := DecodeControl(idBytes); err == nil {
			enc, err := EncodeControl(c)
			if err != nil {
				t.Fatalf("re-encode of accepted control failed: %v", err)
			}
			c2, err := DecodeControl(enc)
			if err != nil {
				t.Fatalf("re-decode of canonical control failed: %v", err)
			}
			enc2, err := EncodeControl(c2)
			if err != nil {
				t.Fatalf("second re-encode failed: %v", err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("control encoding not canonical:\n first %x\nsecond %x", enc, enc2)
			}
		}

		// Composed round trip: whole 32-byte IDs carved from the fuzzed
		// bytes.
		var ids []core.TagID
		for len(idBytes) >= tagIDSize && len(ids) < 64 {
			var id core.TagID
			copy(id[:], idBytes)
			ids = append(ids, id)
			idBytes = idBytes[tagIDSize:]
		}
		kind := ControlKind(rawKind)
		if kind == 0 {
			kind = CtrlRevoke
		}
		in := &Control{Kind: kind, Version: version, Origin: origin, Full: full, Revoked: ids}
		enc, err := EncodeControl(in)
		if err != nil {
			t.Fatalf("EncodeControl: %v", err)
		}
		got, err := DecodeControl(enc)
		if err != nil {
			t.Fatalf("DecodeControl: %v", err)
		}
		if !reflect.DeepEqual(got, in) {
			t.Fatalf("revocation round trip mutated message:\n got %+v\nwant %+v", got, in)
		}
	})
}

// FuzzControlSync round-trips BF-sync control messages built from
// fuzzed shapes and word deltas, and requires that a decoded delta
// merges into a matching filter without panicking.
func FuzzControlSync(f *testing.F) {
	f.Add(uint64(1), uint64(4793), uint32(5), []byte{0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0xff}, uint64(3))
	f.Add(uint64(9), uint64(64), uint32(1), []byte{}, uint64(0))
	f.Add(^uint64(0), uint64(0), uint32(0), bytes.Repeat([]byte{0xee}, 36), ^uint64(0))
	f.Fuzz(func(t *testing.T, version, bits uint64, hashes uint32, wordBytes []byte, added uint64) {
		var words []bloom.WordDelta
		for len(wordBytes) >= wordDeltaSize && len(words) < 128 {
			words = append(words, bloom.WordDelta{
				Index: binary.BigEndian.Uint32(wordBytes),
				Word:  binary.BigEndian.Uint64(wordBytes[4:]),
			})
			wordBytes = wordBytes[wordDeltaSize:]
		}
		in := &Control{Kind: CtrlBFSync, Version: version, Origin: "peer", Bits: bits, Hashes: hashes, Words: words, Added: added}
		enc, err := EncodeControl(in)
		if err != nil {
			t.Fatalf("EncodeControl: %v", err)
		}
		got, err := DecodeControl(enc)
		if err != nil {
			t.Fatalf("DecodeControl: %v", err)
		}
		if !reflect.DeepEqual(got, in) {
			t.Fatalf("sync round trip mutated message:\n got %+v\nwant %+v", got, in)
		}
		// Merging an arbitrary decoded delta must never panic: either
		// the shape mismatches (error) or the merge applies cleanly.
		dst, err := bloom.NewWithShape(4793, 5, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		_ = dst.MergeWords(got.Bits, got.Hashes, got.Words, got.Added)
	})
}
