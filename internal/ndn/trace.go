package ndn

import (
	"encoding/binary"
	"fmt"
)

// TraceContext is the wire-level distributed-tracing context carried by
// Interest, Data, and NACK packets as an optional TLV (tlvTraceCtx). The
// head-sampling decision is made once, at the originating client; every
// hop that handles a traced packet records a span under the same trace
// ID, re-parents the context to its own span, and increments Hops, so an
// offline collector can reassemble the packet's full path. Decoders that
// predate the extension skip the element via the standard
// unknown-TLV-skipping path, so traced and untraced nodes interoperate.
type TraceContext struct {
	// TraceID identifies the end-to-end request; zero means "not
	// traced" and suppresses the TLV entirely (untraced packets carry
	// zero wire overhead).
	TraceID uint64
	// ParentID is the span ID of the previous hop's span — the sender's
	// span when the sender traced the packet, or inherited unchanged
	// across hops that do not trace.
	ParentID uint64
	// Sampled is the head-sampling decision: when set, every hop with a
	// tracer records a span regardless of its local sampling rate.
	Sampled bool
	// Hops counts the nodes the packet has traversed, the originator
	// included (the originator's span is hop 0 and it sends Hops=1).
	Hops uint8
}

// Valid reports whether the context marks a traced packet.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

// traceCtxWireLen is the fixed TraceContext value length: trace ID (8),
// parent span ID (8), flags (1), hop count (1).
const traceCtxWireLen = 18

// traceCtxSampledBit flags the head-sampling decision in the flags byte.
const traceCtxSampledBit = 0x01

// appendTraceCtx writes the TraceContext TLV (type tlvTraceCtx).
func appendTraceCtx(dst []byte, tc TraceContext) []byte {
	dst = append(dst, tlvTraceCtx, traceCtxWireLen)
	dst = binary.BigEndian.AppendUint64(dst, tc.TraceID)
	dst = binary.BigEndian.AppendUint64(dst, tc.ParentID)
	var flags byte
	if tc.Sampled {
		flags |= traceCtxSampledBit
	}
	return append(dst, flags, tc.Hops)
}

// decodeTraceCtx parses a TraceContext TLV value.
func decodeTraceCtx(v []byte) (TraceContext, error) {
	if len(v) != traceCtxWireLen {
		return TraceContext{}, fmt.Errorf("ndn: bad TraceContext length %d", len(v))
	}
	return TraceContext{
		TraceID:  binary.BigEndian.Uint64(v),
		ParentID: binary.BigEndian.Uint64(v[8:]),
		Sampled:  v[16]&traceCtxSampledBit != 0,
		Hops:     v[17],
	}, nil
}
