package ndn

import (
	"sync"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
)

// Decode-side interning for the live wire path. An edge router sees the
// same tag on every Interest of a client session and the same handful of
// content names over and over; re-parsing them per packet (two name
// parses and three copies per tag) dominates the decode stage. Tags and
// names are immutable once constructed, so decoded values keyed by their
// exact wire bytes can be shared freely across packets and goroutines.
//
// Both caches are sharded maps with generation clearing: when a shard
// fills, it is dropped wholesale and repopulated by subsequent traffic.
// That bounds memory without LRU bookkeeping on the hot path; a clear
// costs one decode per live key, which the steady state amortises to
// nothing. Lookups with a []byte key use the map[string] compiler
// optimisation, so a cache hit allocates nothing.

// internShardCap bounds each shard of each intern cache; total capacity
// is internShardCap * numShards entries.
const internShardCap = 512

// internCache is one sharded wire-bytes → value cache.
type internCache[V any] struct {
	shards [numShards]struct {
		mu sync.Mutex
		m  map[string]V
	}
}

func (c *internCache[V]) shard(key []byte) *struct {
	mu sync.Mutex
	m  map[string]V
} {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return &c.shards[h&(numShards-1)]
}

func (c *internCache[V]) get(key []byte) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	v, ok := s.m[string(key)]
	s.mu.Unlock()
	return v, ok
}

func (c *internCache[V]) put(key []byte, v V) {
	s := c.shard(key)
	s.mu.Lock()
	if s.m == nil || len(s.m) >= internShardCap {
		s.m = make(map[string]V, internShardCap/4)
	}
	s.m[string(key)] = v
	s.mu.Unlock()
}

var (
	// tagIntern maps a tag's exact wire encoding (including signature) to
	// its decoded form. Keys cover every byte, so two distinct tags can
	// never collide.
	tagIntern internCache[*core.Tag]
	// nameIntern maps a Name element's value bytes to the parsed name.
	nameIntern internCache[names.Name]
)

// decodeTagInterned is core.DecodeTag behind the tag intern cache.
func decodeTagInterned(v []byte) (*core.Tag, error) {
	if t, ok := tagIntern.get(v); ok {
		return t, nil
	}
	t, err := core.DecodeTag(v)
	if err != nil {
		return nil, err
	}
	tagIntern.put(v, t)
	return t, nil
}

// decodeNameInterned is decodeName behind the name intern cache.
func decodeNameInterned(v []byte) (names.Name, error) {
	if n, ok := nameIntern.get(v); ok {
		return n, nil
	}
	n, err := decodeName(v)
	if err != nil {
		return names.Name{}, err
	}
	nameIntern.put(v, n)
	return n, nil
}
