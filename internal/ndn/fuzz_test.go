package ndn

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/pki"
)

// Wire-facing decoders process bytes from untrusted peers; none may
// panic on arbitrary input, and anything they accept must re-encode to
// the identical wire form. Native fuzz targets replace the earlier
// testing/quick property checks; their seed corpus lives under
// testdata/fuzz/ and `make fuzz-smoke` gives each target a 30s budget.

// fuzzFixtures builds the signed material packet fuzzing composes with,
// once per process (fuzz workers re-enter the target concurrently).
var fuzzFixtures = sync.OnceValues(func() (*core.Provider, *core.Tag) {
	rng := rand.New(rand.NewSource(1))
	signer, err := pki.GenerateFast(rng, names.MustParse("/prov0/KEY/1"))
	if err != nil {
		panic(err)
	}
	prov, err := core.NewProvider(names.MustParse("/prov0"), signer, time.Minute, rng)
	if err != nil {
		panic(err)
	}
	tag, err := core.IssueTag(signer, names.MustParse("/u/alice/KEY/1"), 2, core.AccessPathOf("ap0"), time.Unix(1<<32, 0))
	if err != nil {
		panic(err)
	}
	tag.Encode()
	return prov, tag
})

// FuzzTLVDecode drives both wire decoders with arbitrary bytes: they
// must never panic, and any input they accept must survive a
// re-encode/re-decode cycle byte-identically (the encoders are
// canonical: unknown TLV elements are dropped on first decode).
func FuzzTLVDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x05, 0x03, 0x07, 0x01, 'x'})
	_, tag := fuzzFixtures()
	if enc, err := EncodeInterest(&Interest{Name: names.MustParse("/prov0/obj/c0"), Kind: KindContent, Nonce: 7, Tag: tag, Flag: 0.25}); err == nil {
		f.Add(enc)
		f.Add(enc[:len(enc)/2])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if i, err := DecodeInterest(data); err == nil {
			enc, err := EncodeInterest(i)
			if err != nil {
				t.Fatalf("re-encode of accepted Interest failed: %v", err)
			}
			i2, err := DecodeInterest(enc)
			if err != nil {
				t.Fatalf("re-decode of canonical Interest failed: %v", err)
			}
			enc2, err := EncodeInterest(i2)
			if err != nil {
				t.Fatalf("second re-encode failed: %v", err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("Interest encoding not canonical:\n first %x\nsecond %x", enc, enc2)
			}
		}
		if d, err := DecodeData(data); err == nil {
			enc, err := EncodeData(d)
			if err != nil {
				t.Fatalf("re-encode of accepted Data failed: %v", err)
			}
			d2, err := DecodeData(enc)
			if err != nil {
				t.Fatalf("re-decode of canonical Data failed: %v", err)
			}
			enc2, err := EncodeData(d2)
			if err != nil {
				t.Fatalf("second re-encode failed: %v", err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("Data encoding not canonical:\n first %x\nsecond %x", enc, enc2)
			}
		}
	})
}

// fuzzName builds a valid 1-5 component name under /prov0 from
// arbitrary fuzz input.
func fuzzName(raw string) names.Name {
	parts := []string{"prov0"}
	for _, c := range strings.Split(raw, "/") {
		if len(parts) == 5 {
			break
		}
		var clean []rune
		for _, r := range c {
			if r > 0x20 && r < 0x7f && r != '/' && len(clean) < 20 {
				clean = append(clean, r)
			}
		}
		if len(clean) == 0 {
			continue
		}
		parts = append(parts, string(clean))
	}
	return names.MustNew(parts...)
}

// FuzzPacketRoundTrip builds Interest and Data packets from fuzzed
// primitives — composed with real signed tags and published content —
// and requires a lossless encode/decode round trip.
func FuzzPacketRoundTrip(f *testing.F) {
	f.Add(uint64(42), math.Float64bits(0.25), uint64(7), "obj/c0", []byte("payload"), uint8(2), false)
	f.Add(uint64(0), uint64(0), uint64(0), "", []byte{}, uint8(0), true)
	f.Add(uint64(1), math.Float64bits(math.Inf(1)), ^uint64(0), "a/b/c/d/e/f", []byte{0, 0xff}, uint8(9), false)
	// NACK seeds: the level byte doubles as the NackReason wire code, so
	// these cover an Overload shed (9), a revocation (8), and an
	// out-of-table code that must degrade to the generic reason.
	f.Add(uint64(7), uint64(0), uint64(3), "obj/c1", []byte("x"), uint8(9), true)
	f.Add(uint64(8), uint64(0), uint64(4), "obj/c2", []byte("y"), uint8(8), true)
	f.Add(uint64(9), uint64(0), uint64(5), "obj/c3", []byte("z"), uint8(200), true)
	f.Fuzz(func(t *testing.T, nonce, flagBits, ap uint64, rawName string, payload []byte, level uint8, nack bool) {
		prov, tag := fuzzFixtures()
		name := fuzzName(rawName)
		flag := math.Float64frombits(flagBits)

		in := &Interest{Name: name, Kind: KindContent, Nonce: nonce, Tag: tag, Flag: flag, AccessPath: core.AccessPath(ap)}
		enc, err := EncodeInterest(in)
		if err != nil {
			t.Fatalf("EncodeInterest: %v", err)
		}
		got, err := DecodeInterest(enc)
		if err != nil {
			t.Fatalf("DecodeInterest: %v", err)
		}
		if !got.Name.Equal(in.Name) || got.Kind != in.Kind || got.Nonce != in.Nonce || got.AccessPath != in.AccessPath {
			t.Fatalf("Interest round trip mutated fields: %+v != %+v", got, in)
		}
		checkFlag(t, flag, got.Flag)
		if got.Tag == nil || !bytes.Equal(got.Tag.CacheKey(), tag.CacheKey()) {
			t.Fatalf("Interest round trip mutated tag")
		}

		content, err := prov.Publish(name, core.AccessLevel(level%3), payload)
		if err != nil {
			t.Fatalf("Publish: %v", err)
		}
		d := &Data{Name: name, Content: content, Tag: tag, Flag: flag, Nack: nack}
		if nack {
			// Reuse the level byte as the NackReason wire code: the
			// canonical sentinel for any code (known or not) must survive
			// the round trip. ReasonFromCode is total, so this also walks
			// unknown codes through the generic-reason path.
			d.NackReason = core.ReasonFromCode(level)
		}
		dEnc, err := EncodeData(d)
		if err != nil {
			t.Fatalf("EncodeData: %v", err)
		}
		dGot, err := DecodeData(dEnc)
		if err != nil {
			t.Fatalf("DecodeData: %v", err)
		}
		if !dGot.Name.Equal(d.Name) || dGot.Nack != d.Nack {
			t.Fatalf("Data round trip mutated fields: %+v != %+v", dGot, d)
		}
		if nack && !errors.Is(dGot.NackReason, d.NackReason) {
			t.Fatalf("NackReason mutated: %v -> %v", d.NackReason, dGot.NackReason)
		}
		checkFlag(t, flag, dGot.Flag)
		// Non-Public payloads are encrypted at Publish; compare wire
		// bytes against the published (possibly ciphertext) payload.
		if dGot.Content == nil || !bytes.Equal(dGot.Content.Payload, content.Payload) || dGot.Content.Meta.Level != core.AccessLevel(level%3) {
			t.Fatalf("Data round trip mutated content")
		}
		if dGot.Tag == nil || !bytes.Equal(dGot.Tag.CacheKey(), tag.CacheKey()) {
			t.Fatalf("Data round trip mutated tag")
		}
	})
}

// checkFlag compares a round-tripped collaboration flag bit-for-bit,
// except that a zero flag (either sign) is omitted on the wire and
// decodes as +0.
func checkFlag(t *testing.T, want, got float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Fatalf("zero flag decoded as %v", got)
		}
		return
	}
	if math.Float64bits(want) != math.Float64bits(got) {
		t.Fatalf("flag bits changed: %x -> %x", math.Float64bits(want), math.Float64bits(got))
	}
}

func TestCorruptedValidPacketsFailCleanly(t *testing.T) {
	tag, content, reg, resp := tlvFixtures(t)
	iEnc, err := EncodeInterest(&Interest{
		Name: names.MustParse("/prov0/obj/c0"), Kind: KindContent, Nonce: 7,
		Tag: tag, Flag: 0.5, Registration: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	dEnc, err := EncodeData(&Data{
		Name: names.MustParse("/prov0/obj/c0"), Content: content, Tag: tag,
		Registration: resp,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		corrupt := func(src []byte) []byte {
			out := append([]byte(nil), src...)
			flips := 1 + rng.Intn(4)
			for f := 0; f < flips; f++ {
				out[rng.Intn(len(out))] ^= byte(1 + rng.Intn(255))
			}
			return out
		}
		// Either outcome (error or a decoded-but-different packet) is
		// acceptable; a panic is not.
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decode panicked on corrupted input: %v", r)
				}
			}()
			_, _ = DecodeInterest(corrupt(iEnc))
			_, _ = DecodeData(corrupt(dEnc))
		}()
	}
}
