package ndn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/tactic-icn/tactic/internal/names"
)

// Wire-facing decoders process bytes from untrusted peers; none may
// panic on arbitrary input. These property tests drive them with random
// garbage and with randomly corrupted valid packets.

func TestPropertyDecodeInterestNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = DecodeInterest(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDecodeDataNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = DecodeData(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCorruptedValidPacketsFailCleanly(t *testing.T) {
	tag, content, reg, resp := tlvFixtures(t)
	iEnc, err := EncodeInterest(&Interest{
		Name: names.MustParse("/prov0/obj/c0"), Kind: KindContent, Nonce: 7,
		Tag: tag, Flag: 0.5, Registration: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	dEnc, err := EncodeData(&Data{
		Name: names.MustParse("/prov0/obj/c0"), Content: content, Tag: tag,
		Registration: resp,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		corrupt := func(src []byte) []byte {
			out := append([]byte(nil), src...)
			flips := 1 + rng.Intn(4)
			for f := 0; f < flips; f++ {
				out[rng.Intn(len(out))] ^= byte(1 + rng.Intn(255))
			}
			return out
		}
		// Either outcome (error or a decoded-but-different packet) is
		// acceptable; a panic is not.
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decode panicked on corrupted input: %v", r)
				}
			}()
			_, _ = DecodeInterest(corrupt(iEnc))
			_, _ = DecodeData(corrupt(dEnc))
		}()
	}
}
