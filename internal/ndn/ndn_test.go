package ndn

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/pki"
)

// --- FIB ---------------------------------------------------------------------

func TestFIBLongestPrefixMatch(t *testing.T) {
	f := NewFIB()
	f.Insert(names.MustParse("/"), 1)
	f.Insert(names.MustParse("/prov0"), 2)
	f.Insert(names.MustParse("/prov0/obj1"), 3)

	cases := []struct {
		name string
		want FaceID
	}{
		{"/prov0/obj1/chunk0", 3},
		{"/prov0/obj2/chunk0", 2},
		{"/prov1/obj1", 1},
		{"/", 1},
	}
	for _, tc := range cases {
		got, ok := f.Lookup(names.MustParse(tc.name))
		if !ok || got != tc.want {
			t.Errorf("Lookup(%q) = %v,%v, want %v", tc.name, got, ok, tc.want)
		}
	}
}

func TestFIBNoDefaultRoute(t *testing.T) {
	f := NewFIB()
	f.Insert(names.MustParse("/prov0"), 2)
	if _, ok := f.Lookup(names.MustParse("/prov1/x")); ok {
		t.Error("lookup without covering prefix should miss")
	}
}

func TestFIBReplaceAndRemove(t *testing.T) {
	f := NewFIB()
	p := names.MustParse("/prov0")
	f.Insert(p, 1)
	f.Insert(p, 2)
	if got, _ := f.Lookup(p); got != 2 {
		t.Errorf("replaced route = %v", got)
	}
	if f.Len() != 1 {
		t.Errorf("Len = %d", f.Len())
	}
	if !f.Remove(p) {
		t.Error("Remove existing returned false")
	}
	if f.Remove(p) {
		t.Error("Remove missing returned true")
	}
	if _, ok := f.Lookup(p); ok {
		t.Error("removed route still matches")
	}
}

// fibNaiveLookup is the reference LPM for the property test.
func fibNaiveLookup(routes map[string]FaceID, name names.Name) (FaceID, bool) {
	best, bestLen, found := FaceNone, -1, false
	for prefix, face := range routes {
		p := names.MustParse(prefix)
		if name.HasPrefix(p) && p.Len() > bestLen {
			best, bestLen, found = face, p.Len(), true
		}
	}
	return best, found
}

func TestPropertyFIBMatchesNaive(t *testing.T) {
	comps := []string{"a", "b", "c"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fib := NewFIB()
		routes := make(map[string]FaceID)
		for i := 0; i < 10; i++ {
			depth := r.Intn(4)
			parts := make([]string, depth)
			for j := range parts {
				parts[j] = comps[r.Intn(len(comps))]
			}
			prefix := names.MustNew(parts...)
			face := FaceID(r.Intn(5))
			fib.Insert(prefix, face)
			routes[prefix.Key()] = face
		}
		for i := 0; i < 20; i++ {
			depth := r.Intn(5)
			parts := make([]string, depth)
			for j := range parts {
				parts[j] = comps[r.Intn(len(comps))]
			}
			name := names.MustNew(parts...)
			gotFace, gotOK := fib.Lookup(name)
			wantFace, wantOK := fibNaiveLookup(routes, name)
			if gotOK != wantOK || (gotOK && gotFace != wantFace) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// --- PIT ---------------------------------------------------------------------

func pitTime(sec int64) time.Time { return time.Unix(sec, 0) }

func TestPITCreateAndAggregate(t *testing.T) {
	p := NewPIT()
	name := names.MustParse("/prov0/obj/c0")
	e, isNew := p.Insert(name, PITRecord{InFace: 1, Nonce: 10}, pitTime(5))
	if !isNew || len(e.Records) != 1 {
		t.Fatalf("first insert: new=%v records=%d", isNew, len(e.Records))
	}
	e2, isNew2 := p.Insert(name, PITRecord{InFace: 2, Nonce: 11, Flag: 0.5}, pitTime(6))
	if isNew2 {
		t.Error("second insert should aggregate")
	}
	if e2 != e || len(e.Records) != 2 {
		t.Errorf("aggregation: records=%d", len(e.Records))
	}
	if e.Records[1].Flag != 0.5 || e.Records[1].InFace != 2 {
		t.Error("aggregated tuple <T, F, InFace> not preserved")
	}
	if !e.Expires.Equal(pitTime(6)) {
		t.Error("aggregation should extend entry lifetime")
	}
	created, aggregated, _ := p.Stats()
	if created != 1 || aggregated != 1 {
		t.Errorf("stats = %d created, %d aggregated", created, aggregated)
	}
}

func TestPITConsume(t *testing.T) {
	p := NewPIT()
	name := names.MustParse("/prov0/obj/c0")
	p.Insert(name, PITRecord{InFace: 1}, pitTime(5))
	e, ok := p.Consume(name)
	if !ok || e == nil {
		t.Fatal("consume failed")
	}
	if _, ok := p.Lookup(name); ok {
		t.Error("consumed entry still present")
	}
	if _, ok := p.Consume(name); ok {
		t.Error("double consume succeeded")
	}
}

func TestPITExpiry(t *testing.T) {
	p := NewPIT()
	p.Insert(names.MustParse("/a/1"), PITRecord{}, pitTime(5))
	p.Insert(names.MustParse("/a/2"), PITRecord{}, pitTime(10))
	expired := p.ExpireBefore(pitTime(7))
	if len(expired) != 1 || !expired[0].Name.Equal(names.MustParse("/a/1")) {
		t.Errorf("expired = %v", expired)
	}
	if p.Len() != 1 {
		t.Errorf("remaining = %d", p.Len())
	}
	_, _, expCount := p.Stats()
	if expCount != 1 {
		t.Errorf("expired count = %d", expCount)
	}
}

func TestPITNonceDedup(t *testing.T) {
	p := NewPIT()
	name := names.MustParse("/a/1")
	e, _ := p.Insert(name, PITRecord{Nonce: 42}, pitTime(5))
	if !e.HasNonce(42) {
		t.Error("nonce not recorded")
	}
	if e.HasNonce(43) {
		t.Error("phantom nonce")
	}
}

func TestPropertyPITRecordCount(t *testing.T) {
	// Total records across the PIT equals inserts minus consumed/expired
	// records.
	f := func(ops []uint8) bool {
		p := NewPIT()
		inserted, removed := 0, 0
		nms := []names.Name{names.MustParse("/a"), names.MustParse("/b"), names.MustParse("/c")}
		for i, op := range ops {
			n := nms[int(op)%len(nms)]
			switch {
			case op%3 != 0:
				p.Insert(n, PITRecord{Nonce: uint64(i)}, pitTime(int64(100)))
				inserted++
			default:
				if e, ok := p.Consume(n); ok {
					removed += len(e.Records)
				}
			}
		}
		live := 0
		for _, n := range nms {
			if e, ok := p.Lookup(n); ok {
				live += len(e.Records)
			}
		}
		return live == inserted-removed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// --- CS ----------------------------------------------------------------------

func chunk(t *testing.T, name string) *core.Content {
	t.Helper()
	return &core.Content{
		Meta:    core.ContentMeta{Name: names.MustParse(name), Level: 1},
		Payload: []byte("payload"),
	}
}

func TestCSInsertLookup(t *testing.T) {
	cs := NewCS(2)
	cs.Insert(chunk(t, "/a/1"))
	if got, ok := cs.Lookup(names.MustParse("/a/1")); !ok || got == nil {
		t.Fatal("lookup after insert failed")
	}
	if _, ok := cs.Lookup(names.MustParse("/a/2")); ok {
		t.Error("phantom hit")
	}
	hits, misses, _ := cs.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
}

func TestCSLRUEviction(t *testing.T) {
	cs := NewCS(2)
	cs.Insert(chunk(t, "/a/1"))
	cs.Insert(chunk(t, "/a/2"))
	// Touch /a/1 so /a/2 becomes LRU.
	cs.Lookup(names.MustParse("/a/1"))
	cs.Insert(chunk(t, "/a/3"))
	if cs.Contains(names.MustParse("/a/2")) {
		t.Error("LRU entry survived eviction")
	}
	if !cs.Contains(names.MustParse("/a/1")) || !cs.Contains(names.MustParse("/a/3")) {
		t.Error("wrong entry evicted")
	}
	if _, _, evicted := cs.Stats(); evicted != 1 {
		t.Errorf("evicted = %d", evicted)
	}
}

func TestCSReinsertRefreshes(t *testing.T) {
	cs := NewCS(2)
	cs.Insert(chunk(t, "/a/1"))
	cs.Insert(chunk(t, "/a/2"))
	cs.Insert(chunk(t, "/a/1")) // refresh, /a/2 now LRU
	cs.Insert(chunk(t, "/a/3"))
	if cs.Contains(names.MustParse("/a/2")) {
		t.Error("refreshed entry should not be LRU")
	}
	if cs.Len() != 2 {
		t.Errorf("Len = %d", cs.Len())
	}
}

func TestCSZeroCapacity(t *testing.T) {
	cs := NewCS(0)
	cs.Insert(chunk(t, "/a/1"))
	if cs.Len() != 0 {
		t.Error("zero-capacity CS cached a chunk")
	}
	if _, ok := cs.Lookup(names.MustParse("/a/1")); ok {
		t.Error("zero-capacity CS hit")
	}
}

func TestPropertyCSNeverExceedsCapacity(t *testing.T) {
	f := func(inserts []uint8, capRaw uint8) bool {
		capacity := int(capRaw%10) + 1
		cs := NewCS(capacity)
		for _, i := range inserts {
			cs.Insert(&core.Content{Meta: core.ContentMeta{
				Name: names.MustParse("/x").MustAppend(string(rune('a' + i%26))),
			}})
		}
		return cs.Len() <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// --- Packets -----------------------------------------------------------------

func TestWireSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	signer, err := pki.GenerateFast(rng, names.MustParse("/prov0/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	tag, err := core.IssueTag(signer, names.MustParse("/u/alice/KEY/1"), 1, 0, pitTime(100))
	if err != nil {
		t.Fatal(err)
	}
	name := names.MustParse("/prov0/obj/c0")

	bare := &Interest{Name: name, Kind: KindContent}
	tagged := &Interest{Name: name, Kind: KindContent, Tag: tag}
	if tagged.WireSize() <= bare.WireSize() {
		t.Error("tag should add wire size")
	}
	if diff := tagged.WireSize() - bare.WireSize(); diff != tag.Size() {
		t.Errorf("tag overhead = %d, want %d", diff, tag.Size())
	}

	d := &Data{Name: name, Content: &core.Content{
		Meta:    core.ContentMeta{Name: name},
		Payload: make([]byte, 1024),
	}}
	if d.WireSize() < 1024 {
		t.Errorf("data wire size %d smaller than payload", d.WireSize())
	}
	dTagged := *d
	dTagged.Tag = tag
	if dTagged.WireSize() != d.WireSize()+tag.Size() {
		t.Error("data tag overhead mismatch")
	}
}
