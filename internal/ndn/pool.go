package ndn

import "sync"

// Wire-buffer pooling for the live data path. Encoding a packet and
// reading a frame both need a scratch byte slice whose lifetime ends as
// soon as the bytes are flushed (send) or decoded (receive); pooling
// them removes the dominant per-packet allocations on the forwarder hot
// path. Decoded packets never alias their input buffer (every decoder
// copies what it keeps), so returning a frame to the pool after decode
// is safe.

// pooledBufferCap is the initial capacity of pooled buffers: enough for
// a typical Interest or 1-KiB Data frame without growth.
const pooledBufferCap = 2048

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, pooledBufferCap)
		return &b
	},
}

// AcquireBuffer returns a reusable byte slice of length 0 from the pool.
// Release it with ReleaseBuffer when the bytes are no longer referenced.
func AcquireBuffer() *[]byte {
	return bufPool.Get().(*[]byte)
}

// ReleaseBuffer returns a buffer obtained from AcquireBuffer (possibly
// regrown by the caller) to the pool. The caller must not retain any
// slice of it afterwards.
func ReleaseBuffer(b *[]byte) {
	*b = (*b)[:0]
	bufPool.Put(b)
}
