package ndn

import (
	"math/rand"
	"strconv"
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/pki"
)

func benchNames(n int) []names.Name {
	out := make([]names.Name, n)
	for i := range out {
		out[i] = names.MustNew("prov"+strconv.Itoa(i%10), "obj"+strconv.Itoa(i%50), "chunk"+strconv.Itoa(i%50))
	}
	return out
}

func BenchmarkFIBLookup(b *testing.B) {
	f := NewFIB()
	for p := 0; p < 10; p++ {
		f.Insert(names.MustNew("prov"+strconv.Itoa(p)), FaceID(p))
	}
	nms := benchNames(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Lookup(nms[i%len(nms)])
	}
}

func BenchmarkPITInsertConsume(b *testing.B) {
	p := NewPIT()
	nms := benchNames(1024)
	deadline := time.Unix(1<<31, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := nms[i%len(nms)]
		p.Insert(n, PITRecord{InFace: 1, Nonce: uint64(i)}, deadline)
		p.Consume(n)
	}
}

func BenchmarkCSLookupHit(b *testing.B) {
	cs := NewCS(1024)
	nms := benchNames(1024)
	for _, n := range nms {
		cs.Insert(&core.Content{Meta: core.ContentMeta{Name: n}})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Lookup(nms[i%len(nms)])
	}
}

func BenchmarkInterestTLVEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	signer, err := pki.GenerateFast(rng, names.MustParse("/prov0/KEY/1"))
	if err != nil {
		b.Fatal(err)
	}
	tag, err := core.IssueTag(signer, names.MustParse("/u/KEY/1"), 3, 0, time.Unix(1<<31, 0))
	if err != nil {
		b.Fatal(err)
	}
	i := &Interest{Name: names.MustParse("/prov0/obj/c0"), Kind: KindContent, Nonce: 1, Tag: tag, Flag: 0.1}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := EncodeInterest(i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterestTLVDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	signer, err := pki.GenerateFast(rng, names.MustParse("/prov0/KEY/1"))
	if err != nil {
		b.Fatal(err)
	}
	tag, err := core.IssueTag(signer, names.MustParse("/u/KEY/1"), 3, 0, time.Unix(1<<31, 0))
	if err != nil {
		b.Fatal(err)
	}
	enc, err := EncodeInterest(&Interest{Name: names.MustParse("/prov0/obj/c0"), Kind: KindContent, Nonce: 1, Tag: tag})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := DecodeInterest(enc); err != nil {
			b.Fatal(err)
		}
	}
}
