package fleet

import (
	"bytes"
	"crypto/rand"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/forwarder"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/obs"
	"github.com/tactic-icn/tactic/internal/pki"
)

func TestParsePromText(t *testing.T) {
	text := `# HELP tactic_interests_total Interests entering the pipeline.
# TYPE tactic_interests_total counter
tactic_interests_total{role="edge"} 42
# TYPE tactic_bf_fpp gauge
tactic_bf_fpp{role="edge"} 1e-04
# TYPE weird gauge
weird{path="C:\\tmp",msg="a\nb"} NaN
# TYPE lat histogram
lat_bucket{le="0.1"} 3
# exemplar lat_bucket{le="0.1"} trace=00ff
lat_bucket{le="+Inf"} 5
lat_sum 0.9
lat_count 5
plain 7
`
	exp, err := ParsePromText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Samples) != 8 {
		t.Fatalf("samples = %d, want 8", len(exp.Samples))
	}
	if exp.Help["tactic_interests_total"] == "" || exp.Types["lat"] != "histogram" {
		t.Fatalf("meta missing: %+v %+v", exp.Help, exp.Types)
	}
	byKey := map[string]Sample{}
	for _, s := range exp.Samples {
		byKey[s.Key()] = s
	}
	if byKey[`tactic_interests_total{role="edge"}`].Value != 42 {
		t.Fatalf("counter sample missing: %v", byKey)
	}
	w := byKey[`weird{msg="a\nb",path="C:\\tmp"}`]
	if w.Labels["path"] != `C:\tmp` || w.Labels["msg"] != "a\nb" || !math.IsNaN(w.Value) {
		t.Fatalf("escaped labels mangled: %+v", w)
	}
	if byKey["plain"].Value != 7 {
		t.Fatalf("bare sample missing")
	}
	if v, ok := MaxFamily(exp, "lat_count"); !ok || v != 5 {
		t.Fatalf("MaxFamily lat_count = %v %v", v, ok)
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string // substring of one expected problem
	}{
		{"missing help", "# TYPE x_total counter\nx_total 1\n", "no # HELP"},
		{"missing type", "x_total 1\n", "no # TYPE"},
		{"counter suffix", "# HELP x x.\n# TYPE x counter\nx 1\n", "does not end in _total"},
		{"gauge suffix", "# HELP g_total g.\n# TYPE g_total gauge\ng_total 1\n", "must not end in _total"},
		{"duplicate series", "# HELP x_total x.\n# TYPE x_total counter\nx_total{a=\"1\"} 1\nx_total{a=\"1\"} 2\n", "duplicate series"},
		{"negative counter", "# HELP x_total x.\n# TYPE x_total counter\nx_total -1\n", "negative value"},
		{"reserved label", "# HELP x_total x.\n# TYPE x_total counter\nx_total{__n=\"1\"} 1\n", "reserved label"},
		{"stray le", "# HELP x_total x.\n# TYPE x_total counter\nx_total{le=\"5\"} 1\n", `label "le" outside`},
		{"histogram count mismatch", "# HELP h h.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n", "+Inf bucket 4 != _count 5"},
		{"histogram missing inf", "# HELP h h.\n# TYPE h histogram\nh_bucket{le=\"1\"} 4\nh_sum 1\nh_count 4\n", `missing le="+Inf"`},
	}
	for _, tc := range cases {
		exp, err := ParsePromText(strings.NewReader(tc.text))
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		problems := Lint(exp)
		found := false
		for _, p := range problems {
			if strings.Contains(p, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: problems %q lack %q", tc.name, problems, tc.want)
		}
	}
}

// TestMetricsLint is the `make metrics-lint` gate: scrape a live
// forwarder registry and require a clean exposition — valid names,
// HELP on every family, consistent histograms, no duplicate series.
func TestMetricsLint(t *testing.T) {
	reg := obs.NewRegistry()
	fwd, err := forwarder.New(forwarder.Config{
		ID: "lint-0", Role: forwarder.RoleEdge,
		Registry: pki.NewRegistry(), Seed: 1, Obs: reg,
		Events: obs.NewEvents("lint-0", 64),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()

	// A producer widens the exposition with the origin-side families.
	provKey, err := pki.GenerateECDSA(rand.Reader, names.MustParse("/lintprov/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	preg := pki.NewRegistry()
	if err := preg.Register(provKey.Locator(), provKey.Public()); err != nil {
		t.Fatal(err)
	}
	provider, err := core.NewProvider(names.MustParse("/lintprov"), provKey, time.Minute, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := forwarder.NewProducer(provider, preg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	prod.Instrument(reg)
	// A histogram with observations exercises bucket/count consistency.
	reg.Help("tactic_lint_seconds", "Lint fixture histogram.")
	h := reg.Histogram("tactic_lint_seconds", nil, obs.L("role", "edge"))
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) / 100)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := ParsePromText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("live exposition does not parse: %v", err)
	}
	if len(exp.Samples) == 0 {
		t.Fatal("live registry produced no samples")
	}
	if problems := Lint(exp); len(problems) > 0 {
		t.Fatalf("metrics lint failed:\n  %s", strings.Join(problems, "\n  "))
	}
}

// fakeNode serves a crafted admin surface for poller tests.
type fakeNode struct {
	srv     *httptest.Server
	metrics func() string
	health  func() (int, obs.HealthReport)
	events  []obs.Event
}

func newFakeNode(t *testing.T, metrics func() string) *fakeNode {
	t.Helper()
	fn := &fakeNode{metrics: metrics}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, fn.metrics())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		code, hr := http.StatusOK, obs.HealthReport{Status: "ready"}
		if fn.health != nil {
			code, hr = fn.health()
		}
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(hr) //nolint:errcheck
	})
	mux.HandleFunc("/eventz", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"events": fn.events}) //nolint:errcheck
	})
	fn.srv = httptest.NewServer(mux)
	t.Cleanup(fn.srv.Close)
	return fn
}

func (fn *fakeNode) addr() string { return strings.TrimPrefix(fn.srv.URL, "http://") }

func TestPollerMergesRatesAndAlerts(t *testing.T) {
	sheds := 0.0
	a := newFakeNode(t, func() string {
		return fmt.Sprintf(`# TYPE tactic_verify_sheds_total counter
tactic_verify_sheds_total{role="edge"} %g
# TYPE tactic_bf_epoch gauge
tactic_bf_epoch{role="edge"} 1
# TYPE tactic_face_frames_total counter
tactic_face_frames_total{dir="in",face="2",link="downstream"} 10
tactic_face_frames_total{dir="out",face="2",link="downstream"} 4
`, sheds)
	})
	b := newFakeNode(t, func() string {
		return "# TYPE tactic_bf_epoch gauge\ntactic_bf_epoch{role=\"core\"} 3\n"
	})
	b.health = func() (int, obs.HealthReport) {
		return http.StatusOK, obs.HealthReport{
			Status:  "degraded",
			Reasons: []obs.HealthReason{{Rule: "shed-burn", Severity: "degraded", Detail: "shedding"}},
		}
	}
	b.events = []obs.Event{{Seq: 1, Type: obs.EventShedBurst, Face: 3, Attr: "verify_overload", Value: 9}}

	at := time.Unix(1000, 0)
	p := NewPoller(Config{
		Nodes:          []Node{{Name: "edge-0", Addr: a.addr()}, {Name: "core-0", Addr: b.addr()}, {Name: "ghost", Addr: "127.0.0.1:1"}},
		ShedRatePerSec: 10,
		Now:            func() time.Time { return at },
	})

	snap := p.PollOnce(t.Context())
	if snap.Worst != "unhealthy" { // ghost unreachable
		t.Fatalf("worst = %q, want unhealthy (ghost down)", snap.Worst)
	}
	if !hasAlert(snap, "node-unreachable", "ghost") || !hasAlert(snap, "node-degraded", "core-0") {
		t.Fatalf("alerts = %+v", snap.Alerts)
	}
	if !hasAlert(snap, "bf-epoch-skew", "edge-0") {
		t.Fatalf("no epoch-skew alert: %+v", snap.Alerts)
	}
	if len(snap.Nodes[0].Faces) != 1 || snap.Nodes[0].Faces[0].FramesIn != 10 || snap.Nodes[0].Faces[0].FramesOut != 4 {
		t.Fatalf("face table = %+v", snap.Nodes[0].Faces)
	}
	if len(snap.Nodes[1].Events) != 1 || snap.Nodes[1].Events[0].Type != obs.EventShedBurst {
		t.Fatalf("events = %+v", snap.Nodes[1].Events)
	}

	// Second poll 2s later: 60 more sheds → 30/s, over the 10/s limit.
	sheds = 60
	at = at.Add(2 * time.Second)
	snap = p.PollOnce(t.Context())
	if got := snap.Nodes[0].Rates["tactic_verify_sheds_total"]; got != 30 {
		t.Fatalf("edge-0 shed rate = %v, want 30", got)
	}
	if !hasAlert(snap, "fleet-shed-rate", "") {
		t.Fatalf("no fleet-shed-rate alert: %+v", snap.Alerts)
	}

	// Dashboard + fleetz render from the same snapshot.
	mux := http.NewServeMux()
	p.Attach(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	for _, path := range []string{"/", "/fleetz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 1<<20)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		for _, want := range []string{"edge-0", "core-0", "fleet-shed-rate"} {
			if !strings.Contains(string(body[:n]), want) {
				t.Fatalf("%s missing %q:\n%s", path, want, body[:n])
			}
		}
	}
}

func hasAlert(snap *FleetSnapshot, rule, node string) bool {
	for _, a := range snap.Alerts {
		if a.Rule == rule && (node == "" || a.Node == node) {
			return true
		}
	}
	return false
}

func TestArchiverAppendsJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.jsonl")
	ar, err := NewArchiver(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := ar.Append(&FleetSnapshot{Worst: "ready", At: time.Unix(int64(i), 0)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ar.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 3 {
		t.Fatalf("archive lines = %d, want 3", len(lines))
	}
	var snap FleetSnapshot
	if err := json.Unmarshal([]byte(lines[2]), &snap); err != nil || snap.Worst != "ready" {
		t.Fatalf("archive line malformed: %v %+v", err, snap)
	}
}
