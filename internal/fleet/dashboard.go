package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"

	"github.com/tactic-icn/tactic/internal/obs"
)

// Attach mounts the poller's HTTP surface on mux: /fleetz (the latest
// merged snapshot as JSON) and / (a plain-text terminal dashboard —
// `watch curl -s host:port/` is the whole UI).
func (p *Poller) Attach(mux *http.ServeMux) {
	mux.HandleFunc("/fleetz", func(w http.ResponseWriter, _ *http.Request) {
		snap := p.Latest()
		if snap == nil {
			http.Error(w, "no poll completed yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap) //nolint:errcheck // client gone mid-write
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		p.WriteDashboard(w) //nolint:errcheck // client gone mid-write
	})
}

// WriteDashboard renders the latest snapshot as a fixed-width text
// dashboard.
func (p *Poller) WriteDashboard(w io.Writer) error {
	snap := p.Latest()
	if snap == nil {
		_, err := fmt.Fprintln(w, "tacticmon: no poll completed yet")
		return err
	}
	fmt.Fprintf(w, "tacticmon fleet=%s at=%s nodes=%d\n\n", snap.Worst, snap.At.Format("15:04:05"), len(snap.Nodes))
	fmt.Fprintf(w, "%-12s %-10s %10s %10s %10s %8s %6s\n", "NODE", "STATUS", "INTEREST/S", "SHEDS/S", "VERIFY/S", "EPOCH", "FACES")
	for i := range snap.Nodes {
		ns := &snap.Nodes[i]
		if ns.Err != "" {
			fmt.Fprintf(w, "%-12s %-10s %s\n", ns.Node, "DOWN", ns.Err)
			continue
		}
		fmt.Fprintf(w, "%-12s %-10s %10.1f %10.1f %10.1f %8.0f %6.0f\n",
			ns.Node, nodeStatus(ns),
			ns.Rates["tactic_interests_total"],
			ns.Rates[obs.FamilyVerifySheds],
			ns.Rates["tactic_tag_verifications_total"],
			familyValue(ns.Series, "tactic_bf_epoch"),
			familyValue(ns.Series, "tactic_faces"))
	}
	if len(snap.Alerts) > 0 {
		fmt.Fprintf(w, "\nALERTS\n")
		for _, a := range snap.Alerts {
			fmt.Fprintf(w, "  %-16s %-12s %s\n", a.Rule, a.Node, a.Detail)
		}
	}
	for i := range snap.Nodes {
		ns := &snap.Nodes[i]
		if len(ns.Faces) == 0 {
			continue
		}
		fmt.Fprintf(w, "\nFACES %s\n", ns.Node)
		for _, fr := range ns.Faces {
			fmt.Fprintf(w, "  %-8s %-12s in=%-10.0f out=%-10.0f\n", fr.Face, fr.Link, fr.FramesIn, fr.FramesOut)
		}
	}
	var events int
	for i := range snap.Nodes {
		events += len(snap.Nodes[i].Events)
	}
	if events > 0 {
		fmt.Fprintf(w, "\nRECENT EVENTS\n")
		for i := range snap.Nodes {
			ns := &snap.Nodes[i]
			for _, e := range ns.Events {
				fmt.Fprintf(w, "  %s %-12s %-18s face=%-3d %s", e.Time.Format("15:04:05"), ns.Node, e.Type, e.Face, e.Attr)
				if e.Value != 0 {
					fmt.Fprintf(w, " value=%d", e.Value)
				}
				fmt.Fprintln(w)
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// familyValue sums a family out of a rendered-key series map.
func familyValue(series map[string]float64, family string) float64 {
	var sum float64
	for k, v := range series {
		if k == family || strings.HasPrefix(k, family+"{") {
			sum += v
		}
	}
	return sum
}

// Archiver appends one JSON line per fleet snapshot to a file — the
// periodic archive a post-mortem replays (`jq` over JSONL).
type Archiver struct {
	mu sync.Mutex
	w  io.WriteCloser
}

// NewArchiver opens (appending) the archive file.
func NewArchiver(path string) (*Archiver, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Archiver{w: f}, nil
}

// Append writes one snapshot as a JSONL record.
func (a *Archiver) Append(snap *FleetSnapshot) error {
	if a == nil || snap == nil {
		return nil
	}
	line, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	_, err = a.w.Write(append(line, '\n'))
	return err
}

// Close closes the archive file.
func (a *Archiver) Close() error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.w.Close()
}
