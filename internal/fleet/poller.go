package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tactic-icn/tactic/internal/obs"
)

// Node identifies one scrape target (a tacticd/tacticserve admin
// endpoint).
type Node struct {
	// Name is the display / snapshot key; Addr is host:port of the
	// node's admin listener.
	Name string `json:"name"`
	Addr string `json:"addr"`
}

// Config shapes a Poller.
type Config struct {
	Nodes    []Node
	Interval time.Duration // default 2s
	// EventLimit caps events fetched per node per poll (default 32).
	EventLimit int
	// ShedRatePerSec is the fleet alert threshold: total Interests shed
	// per second across all nodes (default 25, mirroring the per-node
	// health default — any single node at its limit alerts the fleet).
	ShedRatePerSec float64
	// Client overrides the HTTP client (tests); default 3s timeout.
	Client *http.Client
	// Logf, when non-nil, receives alert lines as they are raised.
	Logf func(format string, args ...any)
	// Now overrides the clock (tests).
	Now func() time.Time
	// Archive, when non-nil, receives every snapshot as one JSONL line.
	Archive *Archiver
}

// NodeSnapshot is one node's merged scrape.
type NodeSnapshot struct {
	Node string `json:"node"`
	Addr string `json:"addr"`
	// Err is the scrape failure, empty when the node answered.
	Err string `json:"err,omitempty"`
	// Health is the node's own /healthz verdict.
	Health *obs.HealthReport `json:"health,omitempty"`
	// Series maps rendered series keys to scraped values (counters,
	// gauges, and histogram _count/_sum series).
	Series map[string]float64 `json:"series,omitempty"`
	// Rates are per-second deltas for key counter families, computed
	// across this poller's own consecutive scrapes.
	Rates map[string]float64 `json:"rates,omitempty"`
	// Events is the tail of the node's typed event log.
	Events []obs.Event `json:"events,omitempty"`
	// Faces summarises the per-face frame counters.
	Faces []FaceRow `json:"faces,omitempty"`
}

// FaceRow is one row of the per-face table: frames moved by direction
// for one face label on one node.
type FaceRow struct {
	Face      string  `json:"face"`
	Link      string  `json:"link,omitempty"`
	FramesIn  float64 `json:"frames_in"`
	FramesOut float64 `json:"frames_out"`
}

// Alert is one fleet-level rule firing.
type Alert struct {
	Rule   string  `json:"rule"`
	Node   string  `json:"node,omitempty"`
	Detail string  `json:"detail"`
	Value  float64 `json:"value"`
}

// FleetSnapshot is one merged poll of every node.
type FleetSnapshot struct {
	At    time.Time      `json:"at"`
	Nodes []NodeSnapshot `json:"nodes"`
	// Worst is the worst health status across reachable nodes
	// (unreachable nodes force "unhealthy").
	Worst string `json:"worst"`
	// Rates are network-wide per-second sums for key counter families.
	Rates  map[string]float64 `json:"rates,omitempty"`
	Alerts []Alert            `json:"alerts,omitempty"`
}

// rateFamilies are the counter families the poller turns into
// per-second rates — the paper's operational signals: offered load,
// sheds (brute-force pressure), verifications (re-check rate F), and
// reassembly evictions (fragment floods).
var rateFamilies = []string{
	"tactic_interests_total",
	obs.FamilyVerifySheds,
	"tactic_tag_verifications_total",
	obs.FamilyReassemblyEvictions,
	obs.FamilyUplinkConnects,
}

// Poller periodically scrapes every node and publishes merged
// snapshots.
type Poller struct {
	cfg    Config
	client *http.Client
	now    func() time.Time

	last atomic.Pointer[FleetSnapshot]

	mu   sync.Mutex
	prev map[string]nodeSample // by node name

	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
}

// nodeSample remembers the counter sums backing rate computation.
type nodeSample struct {
	at   time.Time
	sums map[string]float64
}

// NewPoller builds a poller; call Run (blocking) or Start.
func NewPoller(cfg Config) *Poller {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.EventLimit <= 0 {
		cfg.EventLimit = 32
	}
	if cfg.ShedRatePerSec <= 0 {
		cfg.ShedRatePerSec = 25
	}
	p := &Poller{cfg: cfg, client: cfg.Client, now: cfg.Now, closed: make(chan struct{}), prev: map[string]nodeSample{}}
	if p.client == nil {
		p.client = &http.Client{Timeout: 3 * time.Second}
	}
	if p.now == nil {
		p.now = time.Now
	}
	return p
}

// Latest returns the most recent snapshot, or nil before the first
// poll completes.
func (p *Poller) Latest() *FleetSnapshot { return p.last.Load() }

// Start launches the poll loop on a goroutine; Close stops it.
func (p *Poller) Start() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := time.NewTicker(p.cfg.Interval)
		defer t.Stop()
		p.PollOnce(context.Background())
		for {
			select {
			case <-p.closed:
				return
			case <-t.C:
				p.PollOnce(context.Background())
			}
		}
	}()
}

// Close stops the poll loop (idempotent).
func (p *Poller) Close() {
	p.once.Do(func() { close(p.closed) })
	p.wg.Wait()
}

// PollOnce scrapes every node concurrently, merges the results,
// evaluates the fleet alert rules, and publishes the snapshot.
func (p *Poller) PollOnce(ctx context.Context) *FleetSnapshot {
	snap := &FleetSnapshot{At: p.now(), Nodes: make([]NodeSnapshot, len(p.cfg.Nodes))}
	var wg sync.WaitGroup
	for i, n := range p.cfg.Nodes {
		wg.Add(1)
		go func(i int, n Node) {
			defer wg.Done()
			snap.Nodes[i] = p.scrapeNode(ctx, n)
		}(i, n)
	}
	wg.Wait()
	p.finish(snap)
	p.last.Store(snap)
	if err := p.cfg.Archive.Append(snap); err != nil && p.cfg.Logf != nil {
		p.cfg.Logf("archive: %v", err)
	}
	return snap
}

// scrapeNode fetches one node's /metrics, /healthz, and /eventz.
func (p *Poller) scrapeNode(ctx context.Context, n Node) NodeSnapshot {
	ns := NodeSnapshot{Node: n.Name, Addr: n.Addr}
	base := "http://" + n.Addr
	body, err := p.get(ctx, base+"/metrics")
	if err != nil {
		ns.Err = err.Error()
		return ns
	}
	exp, err := ParsePromText(strings.NewReader(string(body)))
	if err != nil {
		ns.Err = fmt.Sprintf("parse metrics: %v", err)
		return ns
	}
	ns.Series = make(map[string]float64, len(exp.Samples))
	for _, s := range exp.Samples {
		if !strings.HasSuffix(s.Name, "_bucket") { // buckets stay out of the flat map
			ns.Series[s.Key()] = s.Value
		}
	}
	ns.Faces = faceTable(exp)

	// /healthz speaks JSON at 200 (ready/degraded) and 503 (unhealthy);
	// both carry the report.
	if body, err := p.get(ctx, base+"/healthz"); err == nil {
		var hr obs.HealthReport
		if json.Unmarshal(body, &hr) == nil && hr.Status != "" {
			ns.Health = &hr
		}
	}
	if body, err := p.get(ctx, fmt.Sprintf("%s/eventz?limit=%d", base, p.cfg.EventLimit)); err == nil {
		var doc struct {
			Events []obs.Event `json:"events"`
		}
		if json.Unmarshal(body, &doc) == nil {
			ns.Events = doc.Events
		}
	}
	return ns
}

// get fetches one URL, tolerating non-2xx statuses that still carry a
// body (healthz answers 503 when unhealthy).
func (p *Poller) get(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(io.LimitReader(resp.Body, 8<<20))
}

// faceTable extracts the per-face frame counters.
func faceTable(exp *Exposition) []FaceRow {
	rows := map[string]*FaceRow{}
	for _, s := range exp.Samples {
		if s.Name != "tactic_face_frames_total" {
			continue
		}
		face := s.Labels["face"]
		if face == "" {
			continue
		}
		key := face + "/" + s.Labels["link"]
		r := rows[key]
		if r == nil {
			r = &FaceRow{Face: face, Link: s.Labels["link"]}
			rows[key] = r
		}
		if s.Labels["dir"] == "out" {
			r.FramesOut += s.Value
		} else {
			r.FramesIn += s.Value
		}
	}
	out := make([]FaceRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Face != out[j].Face {
			return out[i].Face < out[j].Face
		}
		return out[i].Link < out[j].Link
	})
	return out
}

// finish computes per-node and fleet rates, the worst-health rollup,
// and the alert rules.
func (p *Poller) finish(snap *FleetSnapshot) {
	snap.Rates = map[string]float64{}
	worst := 0 // 0 ready, 1 degraded, 2 unhealthy
	var epochs []struct {
		node string
		v    float64
	}

	p.mu.Lock()
	for i := range snap.Nodes {
		ns := &snap.Nodes[i]
		if ns.Err != "" {
			worst = 2
			snap.Alerts = append(snap.Alerts, Alert{Rule: "node-unreachable", Node: ns.Node, Detail: ns.Err})
			continue
		}
		sums := map[string]float64{}
		for key, v := range ns.Series {
			fam := key
			if i := strings.IndexByte(fam, '{'); i >= 0 {
				fam = fam[:i]
			}
			for _, want := range rateFamilies {
				if fam == want {
					sums[want] += v
				}
			}
			if fam == "tactic_bf_epoch" {
				epochs = append(epochs, struct {
					node string
					v    float64
				}{ns.Node, v})
			}
		}
		if prev, ok := p.prev[ns.Node]; ok {
			dt := snap.At.Sub(prev.at).Seconds()
			if dt > 0 {
				ns.Rates = map[string]float64{}
				for fam, cur := range sums {
					d := cur - prev.sums[fam]
					if d < 0 { // counter reset (node restart)
						d = cur
					}
					ns.Rates[fam] = d / dt
					snap.Rates[fam] += d / dt
				}
			}
		}
		p.prev[ns.Node] = nodeSample{at: snap.At, sums: sums}

		switch status := nodeStatus(ns); status {
		case "degraded":
			if worst < 1 {
				worst = 1
			}
			snap.Alerts = append(snap.Alerts, Alert{Rule: "node-degraded", Node: ns.Node, Detail: healthDetail(ns)})
		case "unhealthy":
			worst = 2
			snap.Alerts = append(snap.Alerts, Alert{Rule: "node-unhealthy", Node: ns.Node, Detail: healthDetail(ns)})
		}
	}
	p.mu.Unlock()

	if rate := snap.Rates[obs.FamilyVerifySheds]; rate > p.cfg.ShedRatePerSec {
		snap.Alerts = append(snap.Alerts, Alert{
			Rule:   "fleet-shed-rate",
			Detail: fmt.Sprintf("fleet shedding %.1f Interests/s (limit %.1f) — distributed brute-force pressure", rate, p.cfg.ShedRatePerSec),
			Value:  rate,
		})
	}
	if len(epochs) > 1 {
		min, max := epochs[0], epochs[0]
		for _, e := range epochs[1:] {
			if e.v < min.v {
				min = e
			}
			if e.v > max.v {
				max = e
			}
		}
		if max.v != min.v {
			snap.Alerts = append(snap.Alerts, Alert{
				Rule: "bf-epoch-skew", Node: min.node,
				Detail: fmt.Sprintf("BF epoch skew: %s at %v while %s at %v — a rotation did not reach every node", min.node, min.v, max.node, max.v),
				Value:  max.v - min.v,
			})
		}
	}
	snap.Worst = [...]string{"ready", "degraded", "unhealthy"}[worst]
	if p.cfg.Logf != nil {
		for _, a := range snap.Alerts {
			p.cfg.Logf("alert %s node=%s %s", a.Rule, a.Node, a.Detail)
		}
	}
}

// nodeStatus reads a node's self-reported health status.
func nodeStatus(ns *NodeSnapshot) string {
	if ns.Health == nil {
		return "ready" // node predates /healthz; metrics-only
	}
	return ns.Health.Status
}

// healthDetail summarises a node's health reasons for an alert line.
func healthDetail(ns *NodeSnapshot) string {
	if ns.Health == nil || len(ns.Health.Reasons) == 0 {
		return "no detail"
	}
	parts := make([]string, 0, len(ns.Health.Reasons))
	for _, r := range ns.Health.Reasons {
		parts = append(parts, r.Rule+": "+r.Detail)
	}
	return strings.Join(parts, "; ")
}
