// Package fleet is the aggregation side of TACTIC observability: it
// scrapes a set of nodes' /metrics, /healthz, and /eventz endpoints,
// merges them into one fleet snapshot with network-wide rates and
// alerts, and serves a dashboard (cmd/tacticmon). The package also
// carries the exposition-format linter behind `make metrics-lint`.
//
// The paper's detection story runs on exactly this telemetry: shed
// rates are the brute-force signal, and a measured re-check rate that
// stops tracking FPP(BF_rE) means a saturated or stale edge filter —
// so the poller treats those series as first-class, not just generic
// scrape output.
package fleet

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one series parsed from a Prometheus 0.0.4 text exposition.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Key renders the canonical series identity: name{k="v",...} with
// label keys sorted (the same shape obs.Registry.Snapshot uses).
func (s Sample) Key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(s.Labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// Exposition is one parsed scrape: every sample plus the HELP/TYPE
// metadata keyed by family name.
type Exposition struct {
	Samples []Sample
	Help    map[string]string
	Types   map[string]string
}

// ParsePromText parses a Prometheus text-format exposition. Unknown
// comment lines (exemplar annotations and the like) are skipped;
// malformed sample lines are errors.
func ParsePromText(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Help: map[string]string{}, Types: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if name, text, ok := parseMeta(line, "# HELP "); ok {
				exp.Help[name] = text
			} else if name, kind, ok := parseMeta(line, "# TYPE "); ok {
				exp.Types[name] = kind
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		exp.Samples = append(exp.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return exp, nil
}

// parseMeta splits "# HELP name rest" / "# TYPE name rest" lines.
func parseMeta(line, prefix string) (name, rest string, ok bool) {
	if !strings.HasPrefix(line, prefix) {
		return "", "", false
	}
	body := line[len(prefix):]
	if i := strings.IndexByte(body, ' '); i > 0 {
		return body[:i], body[i+1:], true
	}
	return body, "", body != ""
}

// parseSample parses one `name{labels} value [timestamp]` line.
func parseSample(line string) (Sample, error) {
	s := Sample{}
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels, rest = labels, tail
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("malformed value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes a `{k="v",...}` block (v with \" \\ \n escapes)
// and returns the remainder of the line.
func parseLabels(in string) (map[string]string, string, error) {
	labels := map[string]string{}
	i := 1 // past '{'
	for {
		for i < len(in) && (in[i] == ',' || in[i] == ' ') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return labels, in[i+1:], nil
		}
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("malformed labels %q", in)
		}
		key := in[i : i+eq]
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return nil, "", fmt.Errorf("unquoted label value in %q", in)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(in) {
				return nil, "", fmt.Errorf("unterminated label value in %q", in)
			}
			c := in[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' && i+1 < len(in) {
				i++
				switch in[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(in[i])
				default:
					val.WriteByte('\\')
					val.WriteByte(in[i])
				}
				i++
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels[key] = val.String()
	}
}

// baseFamily strips the histogram sample suffixes so _bucket/_sum/
// _count series group under their declared family.
func baseFamily(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if types[base] == "histogram" || types[base] == "summary" {
				return base
			}
		}
	}
	return name
}

// SumFamily sums every sample of one family (histogram samples count
// by their own series names, so pass the exact sample name).
func SumFamily(exp *Exposition, name string) float64 {
	var sum float64
	for _, s := range exp.Samples {
		if s.Name == name {
			sum += s.Value
		}
	}
	return sum
}

// MaxFamily returns the largest sample of one family, and whether any
// sample matched.
func MaxFamily(exp *Exposition, name string) (float64, bool) {
	var max float64
	found := false
	for _, s := range exp.Samples {
		if s.Name == name && (!found || s.Value > max) {
			max, found = s.Value, true
		}
	}
	return max, found
}
