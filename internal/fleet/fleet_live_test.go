package fleet

import (
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/forwarder"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/ndn"
	"github.com/tactic-icn/tactic/internal/obs"
	"github.com/tactic-icn/tactic/internal/pki"
	"github.com/tactic-icn/tactic/internal/transport"
)

// liveNode is one forwarder with its full admin surface (metrics,
// healthz, eventz) served over real HTTP — what tacticd assembles.
type liveNode struct {
	name   string
	fwd    *forwarder.Forwarder
	reg    *obs.Registry
	ev     *obs.Events
	health *obs.Health
	ln     net.Listener // forwarding listener
	admin  net.Listener
}

func (n *liveNode) adminAddr() string { return n.admin.Addr().String() }

// slowVerify models the paper's 100µs-class crypto as latency so one
// verify worker is saturable without burning the CI box's CPU.
type slowVerify struct {
	inner pki.Verifier
	d     time.Duration
}

func (s slowVerify) Verify(locator names.Name, msg, sig []byte) error {
	time.Sleep(s.d)
	return s.inner.Verify(locator, msg, sig)
}

// startLiveNode boots one forwarder plus admin endpoint.
func startLiveNode(t *testing.T, name string, role forwarder.Role, reg *pki.Registry, hcfg obs.HealthConfig, mod func(*forwarder.Config)) *liveNode {
	t.Helper()
	n := &liveNode{name: name, reg: obs.NewRegistry(), ev: obs.NewEvents(name, 256)}
	cfg := forwarder.Config{
		ID: name, Role: role, Registry: reg, Seed: int64(len(name)),
		WriteTimeout: 2 * time.Second, Obs: n.reg, Events: n.ev,
	}
	if mod != nil {
		mod(&cfg)
	}
	fwd, err := forwarder.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.fwd = fwd
	n.health = obs.NewHealth(n.reg, name, hcfg, n.ev)

	n.ln, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fwd.Serve(n.ln) //nolint:errcheck // exits on close

	mux := obs.NewAdminMux(n.reg, func() any { return fwd.Status() })
	obs.AttachEventz(mux, n.ev)
	obs.AttachHealthz(mux, n.health)
	n.admin, err = obs.Serve("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		n.admin.Close()
		n.ln.Close()
		fwd.Close()
	})
	return n
}

// TestFleetLiveThreeNodeScrape is the tentpole acceptance scenario: a
// live 3-node topology (two edges uplinked into one core), a verify
// flood against edge-0, and tacticmon's poller scraping all three —
// the merged snapshot must carry per-node series, edge-0 must
// transition to degraded via the shed-burn rule, and the shed_burst
// typed event must be visible through /eventz.
func TestFleetLiveThreeNodeScrape(t *testing.T) {
	if testing.Short() {
		t.Skip("live topology in -short mode")
	}
	preg := pki.NewRegistry()
	prefix := names.MustParse("/prov0")
	hcfg := obs.HealthConfig{ShedRatePerSec: 5, MinWindow: 150 * time.Millisecond}

	coreNode := startLiveNode(t, "core-0", forwarder.RoleCore, preg, hcfg, nil)
	edge0 := startLiveNode(t, "edge-0", forwarder.RoleEdge, preg, hcfg, func(cfg *forwarder.Config) {
		cfg.Tactic.EdgeValidateOnMiss = true
		cfg.Verifier = slowVerify{inner: preg, d: 2 * time.Millisecond}
		cfg.VerifyWorkers = 1
		cfg.VerifyBudget = 8
	})
	edge1 := startLiveNode(t, "edge-1", forwarder.RoleEdge, preg, hcfg, nil)

	fastRetry := forwarder.RetryConfig{Base: 10 * time.Millisecond, Cap: 100 * time.Millisecond}
	for _, edge := range []*liveNode{edge0, edge1} {
		up, err := edge.fwd.ManageUpstream(forwarder.UplinkConfig{
			Addr: coreNode.ln.Addr().String(), Routes: []names.Name{prefix}, Retry: fastRetry,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !up.WaitUp(5 * time.Second) {
			t.Fatalf("%s uplink never attached", edge.name)
		}
	}

	// The flood: forged pre-minted tags cycled over a raw conn, each
	// demanding a verification slot that one 2ms worker cannot supply.
	rogue, err := pki.GenerateECDSA(rand.Reader, names.MustParse("/prov0/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	pool := make([]*core.Tag, 64)
	for i := range pool {
		pool[i], err = core.IssueTag(rogue,
			names.MustNew("users", fmt.Sprintf("flood%d", i), "KEY", "1"),
			3, core.EmptyAccessPath.Accumulate("edge-0"), time.Now().Add(time.Hour))
		if err != nil {
			t.Fatal(err)
		}
	}
	raw, err := net.Dial("tcp", edge0.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	flood := transport.New(raw)
	var stop atomic.Bool
	floodDone := make(chan struct{})
	go func() {
		defer close(floodDone)
		const window = 32
		outstanding := 0
		for serial := uint64(1); !stop.Load(); serial++ {
			if err := flood.SendInterest(&ndn.Interest{
				Name:  prefix.MustAppend("soak", "chunk0"),
				Kind:  ndn.KindContent,
				Nonce: 1<<62 | serial,
				Tag:   pool[serial%uint64(len(pool))],
			}); err != nil {
				return
			}
			outstanding++
			if outstanding >= window {
				if _, err := flood.Receive(); err != nil {
					return
				}
				outstanding--
			}
		}
	}()
	defer func() {
		stop.Store(true)
		flood.Close()
		<-floodDone
	}()

	deadline := time.Now().Add(5 * time.Second)
	for edge0.fwd.Stats().VerifySheds == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flood never shed: admission cap not engaged")
		}
		time.Sleep(5 * time.Millisecond)
	}

	p := NewPoller(Config{
		Nodes: []Node{
			{Name: "core-0", Addr: coreNode.adminAddr()},
			{Name: "edge-0", Addr: edge0.adminAddr()},
			{Name: "edge-1", Addr: edge1.adminAddr()},
		},
		Interval:       200 * time.Millisecond,
		ShedRatePerSec: 5,
	})

	// Poll until the fault is visible end to end: every node scraped
	// with its own series, edge-0 degraded by shed-burn, the shed_burst
	// event in its /eventz tail, and the fleet alerts raised.
	var snap *FleetSnapshot
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		snap = p.PollOnce(t.Context())
		if fleetFaultVisible(snap) {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	if snap == nil || !fleetFaultVisible(snap) {
		t.Fatalf("fault never became visible; last snapshot: %s", mustJSON(snap))
	}

	for _, ns := range snap.Nodes {
		if ns.Err != "" {
			t.Fatalf("node %s unreachable: %s", ns.Node, ns.Err)
		}
		if v, ok := ns.Series[`tactic_faces{role="`+roleOf(ns.Node)+`"}`]; !ok || v < 1 {
			t.Fatalf("node %s missing live faces gauge: %v %v", ns.Node, v, ok)
		}
	}
	edge := nodeByName(snap, "edge-0")
	if edge.Health == nil || edge.Health.Status == "ready" {
		t.Fatalf("edge-0 health = %+v, want degraded", edge.Health)
	}
	if !hasReason(edge.Health, "shed-burn") {
		t.Fatalf("edge-0 reasons lack shed-burn: %+v", edge.Health.Reasons)
	}
	if !hasAlert(snap, "node-degraded", "edge-0") && !hasAlert(snap, "node-unhealthy", "edge-0") {
		t.Fatalf("no degraded alert for edge-0: %+v", snap.Alerts)
	}
	if len(nodeByName(snap, "edge-0").Faces) == 0 {
		t.Fatal("edge-0 per-face table empty")
	}
	if snap.Worst == "ready" {
		t.Fatalf("fleet rollup = %q with a degraded edge", snap.Worst)
	}
	var sawShedEvent, sawFaceUp bool
	for _, e := range edge.Events {
		switch e.Type {
		case obs.EventShedBurst:
			sawShedEvent = true
		case obs.EventFaceUp, obs.EventUplinkUp:
			sawFaceUp = true
		}
	}
	if !sawShedEvent {
		t.Fatalf("edge-0 /eventz lacks shed_burst: %+v", edge.Events)
	}
	if !sawFaceUp {
		t.Fatalf("edge-0 /eventz lacks face/uplink up events: %+v", edge.Events)
	}
}

// fleetFaultVisible reports whether the induced fault has propagated
// into a snapshot.
func fleetFaultVisible(snap *FleetSnapshot) bool {
	if snap == nil {
		return false
	}
	edge := nodeByName(snap, "edge-0")
	if edge == nil || edge.Health == nil || edge.Health.Status == "ready" {
		return false
	}
	if !hasReason(edge.Health, "shed-burn") {
		return false
	}
	for _, e := range edge.Events {
		if e.Type == obs.EventShedBurst {
			return true
		}
	}
	return false
}

func nodeByName(snap *FleetSnapshot, name string) *NodeSnapshot {
	for i := range snap.Nodes {
		if snap.Nodes[i].Node == name {
			return &snap.Nodes[i]
		}
	}
	return nil
}

func hasReason(hr *obs.HealthReport, rule string) bool {
	for _, r := range hr.Reasons {
		if r.Rule == rule {
			return true
		}
	}
	return false
}

func roleOf(node string) string {
	if node == "core-0" {
		return "core"
	}
	return "edge"
}

func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("%+v", v)
	}
	return string(b)
}

// TestFleetBFWatchdogLive saturates a live forwarder's Bloom filter
// past its configured FPP target, requires the bf-saturation watchdog
// to fire through /healthz, and requires an epoch rotation to clear it.
func TestFleetBFWatchdogLive(t *testing.T) {
	preg := pki.NewRegistry()
	hcfg := obs.HealthConfig{MinWindow: 100 * time.Millisecond}
	node := startLiveNode(t, "edge-0", forwarder.RoleEdge, preg, hcfg, func(cfg *forwarder.Config) {
		cfg.BFCapacity = 64
		cfg.BFMaxFPP = 1e-3
	})
	base := "http://" + node.adminAddr()

	if hr := getHealth(t, base); hr.Status != "ready" {
		t.Fatalf("fresh node health = %+v", hr)
	}

	// Direct Add bypasses the router's auto-reset, saturating the bits
	// the way an un-rotated revocation storm would.
	bf := node.fwd.Tactic().Bloom()
	for i := 0; bf.MeasuredFPP() < bf.MaxFPP() && i < 100000; i++ {
		bf.Add([]byte(fmt.Sprintf("saturate-%d", i)))
	}
	if bf.MeasuredFPP() < bf.MaxFPP() {
		t.Fatalf("could not saturate filter: measured %g target %g", bf.MeasuredFPP(), bf.MaxFPP())
	}
	hr := getHealth(t, base)
	if hr.Status == "ready" || !hasReason(&hr, "bf-saturation") {
		t.Fatalf("watchdog did not fire: %+v", hr)
	}

	if !node.fwd.Tactic().RotateEpoch(1) {
		t.Fatal("rotate rejected")
	}
	hr = getHealth(t, base)
	if hr.Status != "ready" {
		t.Fatalf("watchdog did not clear after rotation: %+v", hr)
	}

	// The transitions are in the event log.
	var changes []string
	for _, e := range node.ev.Snapshot() {
		if e.Type == obs.EventHealthChange {
			changes = append(changes, e.Attr)
		}
	}
	if len(changes) != 2 {
		t.Fatalf("health_change events = %v, want fire+clear", changes)
	}
}

// getHealth fetches and decodes /healthz (any status code).
func getHealth(t *testing.T, base string) obs.HealthReport {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr obs.HealthReport
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil && !errors.Is(err, nil) {
		t.Fatal(err)
	}
	return hr
}
