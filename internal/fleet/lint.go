package fleet

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Naming per the Prometheus data model: metric names may use [a-zA-Z0-9_:],
// label names [a-zA-Z0-9_], neither starting with a digit.
func validMetricName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(s) > 0
}

func validLabelName(s string) bool {
	return validMetricName(s) && !strings.ContainsRune(s, ':')
}

// Lint validates a parsed exposition against the format and the repo's
// naming conventions, returning one problem string per violation:
//
//   - metric and label names must be well-formed; label names must not
//     be reserved (__*) or "le" outside histogram buckets
//   - every family must declare # TYPE and carry # HELP text
//   - counter families end in _total; gauge families must not
//   - series keys must be unique (no duplicate name+labels)
//   - sample values must be finite for counters (gauges may be ±Inf/NaN)
//   - every histogram needs _sum, _count, a le="+Inf" bucket whose
//     value equals _count, and cumulative buckets monotone in le
func Lint(exp *Exposition) []string {
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	seen := map[string]bool{}
	families := map[string]bool{}
	for _, s := range exp.Samples {
		fam := baseFamily(s.Name, exp.Types)
		families[fam] = true
		if !validMetricName(s.Name) {
			addf("invalid metric name %q", s.Name)
		}
		for k := range s.Labels {
			if !validLabelName(k) {
				addf("%s: invalid label name %q", s.Name, k)
			}
			if strings.HasPrefix(k, "__") {
				addf("%s: reserved label name %q", s.Name, k)
			}
			if k == "le" && !strings.HasSuffix(s.Name, "_bucket") {
				addf("%s: label \"le\" outside a histogram bucket", s.Name)
			}
		}
		key := s.Key()
		if seen[key] {
			addf("duplicate series %s", key)
		}
		seen[key] = true
		kind := exp.Types[fam]
		if kind == "counter" && (math.IsNaN(s.Value) || math.IsInf(s.Value, 0) || s.Value < 0) {
			addf("counter %s has non-finite or negative value %v", key, s.Value)
		}
	}

	for fam := range families {
		kind, ok := exp.Types[fam]
		if !ok {
			addf("family %s has no # TYPE line", fam)
			continue
		}
		if _, ok := exp.Help[fam]; !ok {
			addf("family %s has no # HELP text", fam)
		}
		switch kind {
		case "counter":
			if !strings.HasSuffix(fam, "_total") {
				addf("counter family %s does not end in _total", fam)
			}
		case "gauge":
			if strings.HasSuffix(fam, "_total") {
				addf("gauge family %s must not end in _total", fam)
			}
		case "histogram":
			problems = append(problems, lintHistogram(exp, fam)...)
		}
	}
	// A # TYPE with no samples is legal (family registered, nothing
	// observed yet), so absent families are not checked further.
	sort.Strings(problems)
	return problems
}

// lintHistogram checks one histogram family's structural invariants
// for every label set (identified by the bucket labels minus le).
func lintHistogram(exp *Exposition, fam string) []string {
	var problems []string
	type hseries struct {
		buckets map[float64]float64 // le -> cumulative count
		count   float64
		hasCnt  bool
		hasSum  bool
	}
	group := map[string]*hseries{}
	at := func(s Sample, drop string) *hseries {
		labels := make(map[string]string, len(s.Labels))
		for k, v := range s.Labels {
			if k != drop {
				labels[k] = v
			}
		}
		key := Sample{Name: fam, Labels: labels}.Key()
		h := group[key]
		if h == nil {
			h = &hseries{buckets: map[float64]float64{}}
			group[key] = h
		}
		return h
	}
	for _, s := range exp.Samples {
		switch s.Name {
		case fam + "_bucket":
			le, err := strconv.ParseFloat(s.Labels["le"], 64)
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s: bad le %q", s.Key(), s.Labels["le"]))
				continue
			}
			at(s, "le").buckets[le] = s.Value
		case fam + "_count":
			h := at(s, "")
			h.count, h.hasCnt = s.Value, true
		case fam + "_sum":
			at(s, "").hasSum = true
		}
	}
	for key, h := range group {
		if !h.hasCnt || !h.hasSum {
			problems = append(problems, fmt.Sprintf("histogram %s missing _count or _sum", key))
		}
		inf, ok := h.buckets[math.Inf(1)]
		if !ok {
			problems = append(problems, fmt.Sprintf("histogram %s missing le=\"+Inf\" bucket", key))
		} else if h.hasCnt && inf != h.count {
			problems = append(problems, fmt.Sprintf("histogram %s: +Inf bucket %v != _count %v", key, inf, h.count))
		}
		les := make([]float64, 0, len(h.buckets))
		for le := range h.buckets {
			les = append(les, le)
		}
		sort.Float64s(les)
		prev := -1.0
		for _, le := range les {
			if h.buckets[le] < prev {
				problems = append(problems, fmt.Sprintf("histogram %s: bucket le=%v not monotone", key, le))
			}
			prev = h.buckets[le]
		}
	}
	return problems
}
