package bloom

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func key(i uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], i)
	return b[:]
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0.01); !errors.Is(err, ErrBadCapacity) {
		t.Errorf("New(0, ...) err = %v", err)
	}
	if _, err := New(10, 0); !errors.Is(err, ErrBadFPP) {
		t.Errorf("New(.., 0) err = %v", err)
	}
	if _, err := New(10, 1); !errors.Is(err, ErrBadFPP) {
		t.Errorf("New(.., 1) err = %v", err)
	}
	if _, err := NewWithShape(0, 5, 0.01); !errors.Is(err, ErrBadShape) {
		t.Errorf("NewWithShape(0, ...) err = %v", err)
	}
	if _, err := NewWithShape(100, 0, 0.01); !errors.Is(err, ErrBadShape) {
		t.Errorf("NewWithShape(.., 0, ..) err = %v", err)
	}
	if _, err := NewPaper(-1, 0.01); err == nil {
		t.Error("NewPaper(-1, ...): expected error")
	}
	if _, err := NewPaper(10, 2); err == nil {
		t.Error("NewPaper(.., 2): expected error")
	}
}

func TestNoFalseNegatives(t *testing.T) {
	f, err := New(1000, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		f.Add(key(i))
	}
	for i := uint64(0); i < 1000; i++ {
		if !f.Contains(key(i)) {
			t.Fatalf("false negative for element %d", i)
		}
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const capacity, target = 2000, 0.01
	f, err := New(capacity, target)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < capacity; i++ {
		f.Add(key(i))
	}
	fp := 0
	const probes = 100000
	for i := uint64(capacity); i < capacity+probes; i++ {
		if f.Contains(key(i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > target*3 {
		t.Errorf("observed FPP %.5f far above target %.5f", rate, target)
	}
}

func TestFPPEstimateTracksTheory(t *testing.T) {
	f, err := NewWithShape(10000, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 800; i++ {
		f.Add(key(i))
	}
	want := TheoreticalFPP(10000, 5, 800)
	if got := f.FPP(); math.Abs(got-want) > 1e-12 {
		t.Errorf("FPP() = %g, want %g", got, want)
	}
}

func TestEmptyFilter(t *testing.T) {
	f, err := New(100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if f.FPP() != 0 {
		t.Errorf("empty FPP = %g, want 0", f.FPP())
	}
	if f.Saturated() {
		t.Error("empty filter should not be saturated")
	}
	if f.Contains(key(42)) {
		t.Error("empty filter should contain nothing")
	}
}

func TestSaturationAndReset(t *testing.T) {
	f, err := NewPaper(500, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	// Inserting far beyond capacity must eventually saturate.
	i := uint64(0)
	for !f.Saturated() {
		f.Add(key(i))
		i++
		if i > 1_000_000 {
			t.Fatal("filter never saturated")
		}
	}
	if i < 400 {
		t.Errorf("saturated after only %d inserts; sized too small for capacity 500", i)
	}
	lookupsBefore := f.Stats().Lookups
	f.Contains(key(1))
	f.Contains(key(2))
	f.Reset()
	if f.Saturated() {
		t.Error("freshly reset filter should not be saturated")
	}
	if f.Count() != 0 {
		t.Errorf("Count after reset = %d", f.Count())
	}
	if f.Contains(key(0)) {
		t.Error("reset filter should contain nothing")
	}
	st := f.Stats()
	if st.Resets != 1 {
		t.Errorf("Resets = %d, want 1", st.Resets)
	}
	if st.Lookups != lookupsBefore+3 { // 2 before reset + 1 after
		t.Errorf("Lookups = %d", st.Lookups)
	}
	th := f.ResetThresholds()
	if len(th) != 1 || th[0] != 2 {
		t.Errorf("ResetThresholds = %v, want [2]", th)
	}
	if f.RequestsSinceReset() != 1 {
		t.Errorf("RequestsSinceReset = %d, want 1", f.RequestsSinceReset())
	}
}

func TestPaperShape(t *testing.T) {
	f, err := NewPaper(500, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if f.Hashes() != 5 {
		t.Errorf("paper filter hashes = %d, want 5", f.Hashes())
	}
	// At exactly the design capacity the theoretical FPP should be at
	// (or just under) the max.
	got := TheoreticalFPP(f.Bits(), f.Hashes(), 500)
	if got > 1e-4*1.05 {
		t.Errorf("FPP at capacity = %g, want <= ~1e-4", got)
	}
	// And well under it at half capacity.
	if TheoreticalFPP(f.Bits(), f.Hashes(), 250) >= got {
		t.Error("FPP should grow with element count")
	}
}

func TestCapacityAtFPPInvertsTheory(t *testing.T) {
	const m, k = 50000, uint32(5)
	for _, p := range []float64{1e-4, 1e-3, 1e-2} {
		n := CapacityAtFPP(m, k, p)
		at := TheoreticalFPP(m, k, n)
		above := TheoreticalFPP(m, k, n+2)
		if at > p*1.01 {
			t.Errorf("FPP at capacity(%g) = %g exceeds target", p, at)
		}
		if above < p*0.99 {
			t.Errorf("FPP just above capacity(%g) = %g should be ~target", p, above)
		}
	}
	if CapacityAtFPP(0, 5, 0.01) != 0 || CapacityAtFPP(100, 0, 0.01) != 0 {
		t.Error("degenerate shapes should have zero capacity")
	}
	if CapacityAtFPP(100, 5, 0) != 0 || CapacityAtFPP(100, 5, 1) != 0 {
		t.Error("degenerate FPPs should yield zero capacity")
	}
}

func TestHigherFPPMeansMoreCapacity(t *testing.T) {
	// Fig. 8's x-axis: raising maxFPP from 1e-4 to 1e-2 lets the same
	// filter absorb more elements before a reset.
	const m, k = 40000, uint32(5)
	lo := CapacityAtFPP(m, k, 1e-4)
	hi := CapacityAtFPP(m, k, 1e-2)
	if hi <= lo {
		t.Errorf("capacity at FPP 1e-2 (%d) should exceed capacity at 1e-4 (%d)", hi, lo)
	}
}

func TestBiggerFilterFewerResets(t *testing.T) {
	// Table V's mechanism: a 5000-capacity filter resets far less often
	// than a 500-capacity filter under the same insertion stream.
	run := func(capacity int) uint64 {
		f, err := NewPaper(capacity, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 50000; i++ {
			f.Add(key(i))
			if f.Saturated() {
				f.Reset()
			}
		}
		return f.Stats().Resets
	}
	small, big := run(500), run(5000)
	if big*5 > small {
		t.Errorf("resets: small=%d big=%d; expected ~10x reduction", small, big)
	}
}

func TestFillRatio(t *testing.T) {
	f, err := NewWithShape(1024, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if f.FillRatio() != 0 {
		t.Error("empty filter fill ratio should be 0")
	}
	f.Add(key(1))
	r := f.FillRatio()
	if r <= 0 || r > 3.0/1024 {
		t.Errorf("fill ratio after one insert = %g", r)
	}
}

func TestStatsCounting(t *testing.T) {
	f, err := New(100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 7; i++ {
		f.Add(key(i))
	}
	for i := uint64(0); i < 11; i++ {
		f.Contains(key(i))
	}
	st := f.Stats()
	if st.Insertions != 7 || st.Lookups != 11 || st.Resets != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPropertyNoFalseNegatives(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		r := rand.New(rand.NewSource(seed))
		count := int(n%512) + 1
		flt, err := New(count, 1e-3)
		if err != nil {
			return false
		}
		items := make([][]byte, count)
		for i := range items {
			items[i] = key(r.Uint64())
			flt.Add(items[i])
		}
		for _, it := range items {
			if !flt.Contains(it) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertyResetClears(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		flt, err := New(64, 1e-2)
		if err != nil {
			return false
		}
		for i := 0; i < 64; i++ {
			flt.Add(key(r.Uint64()))
		}
		flt.Reset()
		return flt.FillRatio() == 0 && flt.Count() == 0 && flt.FPP() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTheoreticalFPPEdgeCases(t *testing.T) {
	if TheoreticalFPP(100, 5, 0) != 0 {
		t.Error("FPP with zero elements should be 0")
	}
	if TheoreticalFPP(0, 5, 10) != 0 {
		t.Error("FPP with zero bits treated as 0 (degenerate)")
	}
	// Monotone in n.
	prev := 0.0
	for n := uint64(1); n < 2000; n += 100 {
		cur := TheoreticalFPP(1000, 5, n)
		if cur < prev {
			t.Fatalf("FPP not monotone at n=%d", n)
		}
		prev = cur
	}
}

func TestNewPaperWithDesign(t *testing.T) {
	f, err := NewPaperWithDesign(500, 1e-2, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if f.MaxFPP() != 1e-4 {
		t.Errorf("MaxFPP = %g", f.MaxFPP())
	}
	// The bit array is sized for the *design* point: saturation (at the
	// much lower max FPP) occurs well before 500 elements.
	cap4 := CapacityAtFPP(f.Bits(), f.Hashes(), 1e-4)
	if cap4 >= 500 {
		t.Errorf("capacity at max FPP = %d, want < design capacity 500", cap4)
	}
	if cap4 < 50 {
		t.Errorf("capacity at max FPP = %d, implausibly small", cap4)
	}
	// And the design capacity matches ~1e-2.
	if got := TheoreticalFPP(f.Bits(), f.Hashes(), 500); got > 1.2e-2 {
		t.Errorf("FPP at design capacity = %g, want ~1e-2", got)
	}
	for _, bad := range [][3]float64{{0, 1e-2, 1e-4}, {10, 0, 1e-4}, {10, 1e-2, 2}} {
		if _, err := NewPaperWithDesign(int(bad[0]), bad[1], bad[2]); err == nil {
			t.Errorf("NewPaperWithDesign(%v) accepted", bad)
		}
	}
}

// MeasuredFPP is the exact current false-positive probability computed
// from the real bit array. It must (a) agree closely with the analytic
// count-based estimate (1-e^{-kn/m})^k while the filter is in its
// design regime, and (b) predict the empirically observed
// false-positive rate of random non-member probes within binomial
// bounds.
func TestMeasuredFPPMatchesAnalyticAndEmpirical(t *testing.T) {
	f, err := NewWithShape(8192, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if f.MeasuredFPP() != 0 {
		t.Errorf("empty MeasuredFPP = %g, want 0", f.MeasuredFPP())
	}
	const inserted = 800
	for i := uint64(0); i < inserted; i++ {
		f.Add(key(i))
	}

	analytic := f.FPP()
	measured := f.MeasuredFPP()
	if measured <= 0 || measured >= 1 {
		t.Fatalf("MeasuredFPP = %g, want in (0, 1)", measured)
	}
	// The fill ratio concentrates sharply around 1-e^{-kn/m} for a
	// filter this size, so the two estimators agree within a few
	// percent.
	if rel := math.Abs(measured-analytic) / analytic; rel > 0.10 {
		t.Errorf("MeasuredFPP %g vs analytic FPP %g (relative gap %.3f)", measured, analytic, rel)
	}

	// Empirical check: the rate at which random non-members hit the
	// filter is a binomial sample whose mean is exactly MeasuredFPP.
	const probes = 200000
	fp := 0
	for i := uint64(inserted); i < inserted+probes; i++ {
		if f.Contains(key(i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	sigma := math.Sqrt(measured * (1 - measured) / probes)
	if math.Abs(rate-measured) > 5*sigma {
		t.Errorf("empirical FP rate %.5f vs MeasuredFPP %.5f (|Δ| > 5σ = %.5f)", rate, measured, 5*sigma)
	}

	// Reset drops the measurement back to zero with the bits.
	f.Reset()
	if got := f.MeasuredFPP(); got != 0 {
		t.Errorf("MeasuredFPP after reset = %g, want 0", got)
	}
}
