package bloom

import (
	"fmt"
	"sync"
	"testing"
)

// TestFilterConcurrent drives Add, Contains, and Reset from many
// goroutines; it exists for the race detector (the filter is lock-free)
// and asserts the properties that survive concurrency: counters balance
// and no false negatives on a quiescent filter.
func TestFilterConcurrent(t *testing.T) {
	f, err := New(4096, 1e-3)
	if err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				f.Add([]byte(fmt.Sprintf("tag-%d-%d", w, i)))
			}
		}(w)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Concurrent lookups may land before the insert or around a
				// reset; only the absence of data races is asserted here.
				f.Contains([]byte(fmt.Sprintf("tag-%d-%d", w, i)))
			}
		}(w)
	}
	// One goroutine resets while traffic is in flight, as a saturated
	// router would.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			f.Reset()
		}
	}()
	wg.Wait()

	stats := f.Stats()
	if stats.Insertions != workers*perWorker {
		t.Fatalf("Insertions = %d, want %d", stats.Insertions, workers*perWorker)
	}
	if stats.Lookups != workers*perWorker {
		t.Fatalf("Lookups = %d, want %d", stats.Lookups, workers*perWorker)
	}
	if stats.Resets != 10 {
		t.Fatalf("Resets = %d, want 10", stats.Resets)
	}

	// Quiescent re-check: re-insert everything, then every element must be
	// found (no false negatives once racing resets have stopped).
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			f.Add([]byte(fmt.Sprintf("tag-%d-%d", w, i)))
		}
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			if !f.Contains([]byte(fmt.Sprintf("tag-%d-%d", w, i))) {
				t.Fatalf("false negative for tag-%d-%d on quiescent filter", w, i)
			}
		}
	}
}

// TestLookupNoAllocs pins the hot-path property the forwarding plane
// depends on: a Bloom-filter lookup (and insert) performs zero heap
// allocations per operation.
func TestLookupNoAllocs(t *testing.T) {
	f, err := NewPaper(500, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("users/alice/KEY/1|prov0|tag-bytes-representative")
	f.Add(key)

	if avg := testing.AllocsPerRun(1000, func() { f.Contains(key) }); avg != 0 {
		t.Errorf("Contains allocates %.1f times per op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() { f.Add(key) }); avg != 0 {
		t.Errorf("Add allocates %.1f times per op, want 0", avg)
	}
}
