package bloom

import (
	"fmt"
	"testing"
)

func syncItem(i int) []byte { return []byte(fmt.Sprintf("tag-%d", i)) }

func TestCloneIndependence(t *testing.T) {
	f, err := NewPaper(500, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		f.Add(syncItem(i))
	}
	c := f.Clone()
	if c.Bits() != f.Bits() || c.Hashes() != f.Hashes() || c.MaxFPP() != f.MaxFPP() {
		t.Fatal("clone changed shape")
	}
	if c.Count() != f.Count() {
		t.Fatalf("clone count %d != %d", c.Count(), f.Count())
	}
	for i := 0; i < 50; i++ {
		if !c.Contains(syncItem(i)) {
			t.Fatalf("clone missing item %d", i)
		}
	}
	if c.Stats().Insertions != 0 {
		t.Fatal("clone inherited operation counters")
	}
	// Mutations do not leak either way.
	c.Add(syncItem(1000))
	if f.Contains(syncItem(1000)) {
		t.Fatal("clone Add leaked into original")
	}
	f.Reset()
	if !c.Contains(syncItem(3)) {
		t.Fatal("original Reset erased the clone")
	}
}

// TestDeltaSyncConverges drives the neighbor-sync cycle: snapshot,
// fill, diff, merge — after each round the receiver answers positive
// for everything the sender validated, with no false negatives.
func TestDeltaSyncConverges(t *testing.T) {
	src, err := NewPaper(500, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewPaper(500, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	var snap []uint64 // nil: first advert carries the whole filter
	next := 0
	for round := 0; round < 3; round++ {
		for i := 0; i < 40; i++ {
			src.Add(syncItem(next))
			next++
		}
		cur := src.Words()
		deltas := DiffWords(snap, cur)
		if len(deltas) == 0 {
			t.Fatalf("round %d produced no deltas", round)
		}
		added := src.Count() - dst.Count()
		if err := dst.MergeWords(src.Bits(), src.Hashes(), deltas, added); err != nil {
			t.Fatalf("round %d merge: %v", round, err)
		}
		snap = cur
		for i := 0; i < next; i++ {
			if !dst.Contains(syncItem(i)) {
				t.Fatalf("round %d: receiver missing item %d", round, i)
			}
		}
	}
	if dst.Count() != src.Count() {
		t.Fatalf("receiver count %d != sender %d", dst.Count(), src.Count())
	}
	// Replaying the last delta is idempotent (full word values, OR).
	before := dst.FillRatio()
	if err := dst.MergeWords(src.Bits(), src.Hashes(), DiffWords(nil, snap), 0); err != nil {
		t.Fatal(err)
	}
	if dst.FillRatio() != before {
		t.Fatal("replayed delta changed the bit array")
	}
}

func TestMergeWordsRejectsBadShapes(t *testing.T) {
	dst, err := NewWithShape(640, 5, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.MergeWords(641, 5, nil, 0); err == nil {
		t.Error("accepted mismatched bits")
	}
	if err := dst.MergeWords(640, 4, nil, 0); err == nil {
		t.Error("accepted mismatched hashes")
	}
	// 640 bits = 10 words; index 10 is out of range.
	if err := dst.MergeWords(640, 5, []WordDelta{{Index: 10, Word: 1}}, 0); err == nil {
		t.Error("accepted out-of-range word index")
	}
	// A failed merge must not partially apply.
	if err := dst.MergeWords(640, 5, []WordDelta{{Index: 0, Word: ^uint64(0)}, {Index: 99, Word: 1}}, 5); err == nil {
		t.Error("accepted delta with trailing bad index")
	}
	if dst.FillRatio() != 0 || dst.Count() != 0 {
		t.Error("rejected merge partially applied")
	}
}

func TestDiffWordsAgainstShortSnapshot(t *testing.T) {
	cur := []uint64{1, 0, 4}
	got := DiffWords([]uint64{1}, cur)
	if len(got) != 1 || got[0].Index != 2 || got[0].Word != 4 {
		t.Fatalf("DiffWords = %v", got)
	}
	if d := DiffWords(cur, cur); d != nil {
		t.Fatalf("self-diff = %v", d)
	}
}
