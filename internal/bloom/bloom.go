// Package bloom implements the Bloom filters that TACTIC routers use to
// cache tag-validation results.
//
// A router verifies a tag's signature once, inserts the tag into its
// filter, and answers subsequent requests with a constant-time lookup
// instead of a signature verification. The package follows the classic
// construction analysed by Mullin ("A second look at Bloom filters",
// CACM 1983, the paper's reference [18]): m bits, k independent hash
// functions realised by double hashing, and the false-positive
// probability FPP = (1 - e^(-kn/m))^k for n inserted elements.
//
// TACTIC's auto-reset policy (Section 8.A of the paper) is provided via
// Saturated: when the live FPP estimate reaches the configured maximum,
// the router clears the filter and re-validates tags as they reappear.
//
// Filters are safe for concurrent use: the bit array is a word-striped
// atomic bitset (compare-and-swap OR on insert, atomic loads on lookup)
// and all counters are atomics, so the forwarding hot path never takes a
// lock. Concurrency weakens exactly one guarantee: an Add racing a Reset
// may be partially erased, so a concurrent filter can produce a false
// NEGATIVE for an element inserted around a reset. In TACTIC that is
// benign — a miss only sends the tag back through signature
// verification and re-insertion, which is precisely what a reset demands
// anyway.
package bloom

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tactic-icn/tactic/internal/obs"
)

// Errors returned by filter construction.
var (
	// ErrBadCapacity is returned for non-positive capacities.
	ErrBadCapacity = errors.New("bloom: capacity must be positive")
	// ErrBadFPP is returned for target false-positive probabilities
	// outside (0, 1).
	ErrBadFPP = errors.New("bloom: target FPP must be in (0, 1)")
	// ErrBadShape is returned for invalid explicit (bits, hashes) shapes.
	ErrBadShape = errors.New("bloom: bits and hashes must be positive")
)

// Stats counts filter operations since construction. TACTIC's evaluation
// (Fig. 7, Fig. 8, Table V) reports exactly these counters.
type Stats struct {
	// Lookups counts Contains calls.
	Lookups uint64
	// Insertions counts Add calls.
	Insertions uint64
	// Resets counts Reset calls (including auto-resets driven by the
	// caller observing Saturated).
	Resets uint64
}

// lookupSampleMask samples one of every 64 lookups into the optional
// latency histogram, keeping the instrumented hot path free of clock
// reads on the other 63.
const lookupSampleMask = 63

// Filter is a counting-free Bloom filter, safe for concurrent use (see
// the package comment for the one weakened guarantee around Reset).
type Filter struct {
	bits   []uint64
	nbits  uint64
	hashes uint32
	count  atomic.Uint64 // elements inserted since last reset
	maxFPP float64

	lookups    atomic.Uint64
	insertions atomic.Uint64
	resets     atomic.Uint64
	// requestsSinceReset counts lookups since the last reset; the paper's
	// Fig. 8 reports the number of requests a filter absorbs per reset.
	requestsSinceReset atomic.Uint64

	// lookupSeconds, when set, receives a sampled latency distribution of
	// Contains calls (1 in 64).
	lookupSeconds atomic.Pointer[obs.Histogram]

	mu              sync.Mutex // guards resetThresholds
	resetThresholds []uint64
}

// New creates a filter sized for the given expected capacity and target
// false-positive probability using the optimal parameters
// m = -n·ln(p)/ln(2)² and k = (m/n)·ln(2).
func New(capacity int, targetFPP float64) (*Filter, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadCapacity, capacity)
	}
	if targetFPP <= 0 || targetFPP >= 1 {
		return nil, fmt.Errorf("%w: %g", ErrBadFPP, targetFPP)
	}
	nbits := uint64(math.Ceil(-float64(capacity) * math.Log(targetFPP) / (math.Ln2 * math.Ln2)))
	if nbits == 0 {
		nbits = 1
	}
	hashes := uint32(math.Round(float64(nbits) / float64(capacity) * math.Ln2))
	if hashes == 0 {
		hashes = 1
	}
	return NewWithShape(nbits, hashes, targetFPP)
}

// NewWithShape creates a filter with an explicit number of bits and hash
// functions; maxFPP sets the saturation threshold used by Saturated. The
// paper's simulations fix hashes = 5 and maxFPP = 1e-4.
func NewWithShape(nbits uint64, hashes uint32, maxFPP float64) (*Filter, error) {
	if nbits == 0 || hashes == 0 {
		return nil, ErrBadShape
	}
	if maxFPP <= 0 || maxFPP >= 1 {
		return nil, fmt.Errorf("%w: %g", ErrBadFPP, maxFPP)
	}
	return &Filter{
		bits:   make([]uint64, (nbits+63)/64),
		nbits:  nbits,
		hashes: hashes,
		maxFPP: maxFPP,
	}, nil
}

// NewPaper creates a filter with the paper's simulation parameters:
// capacity items to index, exactly 5 hash functions, bits sized for the
// given maximum FPP at that capacity.
func NewPaper(capacity int, maxFPP float64) (*Filter, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadCapacity, capacity)
	}
	if maxFPP <= 0 || maxFPP >= 1 {
		return nil, fmt.Errorf("%w: %g", ErrBadFPP, maxFPP)
	}
	const paperHashes = 5
	// Solve (1 - e^(-k·n/m))^k = p for m with k fixed:
	// m = -k·n / ln(1 - p^(1/k)).
	p := math.Pow(maxFPP, 1.0/paperHashes)
	nbits := uint64(math.Ceil(-paperHashes * float64(capacity) / math.Log(1-p)))
	return NewWithShape(nbits, paperHashes, maxFPP)
}

// NewPaperWithDesign creates a filter whose bit array is sized for
// `capacity` items at a *design* FPP, while Saturated still triggers at
// the (typically much lower) maxFPP. This reconstructs the paper's
// evaluation setup: filters "index 500 tags" at an ordinary design point
// (~1e-2) but reset as soon as the estimated FPP reaches the maximum
// (1e-4), which happens well before the design capacity — the reason
// Fig. 8(a) shows a reset every ~50-250 requests for a "500-item"
// filter.
func NewPaperWithDesign(capacity int, designFPP, maxFPP float64) (*Filter, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadCapacity, capacity)
	}
	if designFPP <= 0 || designFPP >= 1 || maxFPP <= 0 || maxFPP >= 1 {
		return nil, fmt.Errorf("%w: design %g max %g", ErrBadFPP, designFPP, maxFPP)
	}
	const paperHashes = 5
	p := math.Pow(designFPP, 1.0/paperHashes)
	nbits := uint64(math.Ceil(-paperHashes * float64(capacity) / math.Log(1-p)))
	return NewWithShape(nbits, paperHashes, maxFPP)
}

// SetLookupHistogram attaches a latency histogram sampling 1 of every 64
// Contains calls (nil detaches). Safe to call concurrently with traffic.
func (f *Filter) SetLookupHistogram(h *obs.Histogram) { f.lookupSeconds.Store(h) }

// FNV-1a 64-bit parameters (identical to hash/fnv, inlined to keep the
// per-lookup hashing allocation-free).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashPair produces two independent 64-bit hashes for double hashing:
// FNV-1a over the item, then a SplitMix64 finalizer for the second hash.
// The values are identical to the previous hash/fnv-based implementation
// so persisted expectations (tests, experiment traces) are unchanged.
func hashPair(item []byte) (uint64, uint64) {
	h1 := uint64(fnvOffset64)
	for _, b := range item {
		h1 ^= uint64(b)
		h1 *= fnvPrime64
	}
	// SplitMix64 finalizer over h1 gives a decorrelated second hash.
	z := h1 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	h2 := z ^ (z >> 31)
	// h2 must be odd so that successive probes cover the bit space even
	// when nbits is even.
	return h1, h2 | 1
}

// setBit sets one bit with a compare-and-swap loop (atomic OR; the
// dedicated atomic.Or* helpers require a newer Go toolchain than go.mod
// pins).
func setBit(word *uint64, mask uint64) {
	for {
		old := atomic.LoadUint64(word)
		if old&mask == mask || atomic.CompareAndSwapUint64(word, old, old|mask) {
			return
		}
	}
}

// Add inserts an item. Safe for concurrent use.
func (f *Filter) Add(item []byte) {
	f.insertions.Add(1)
	f.count.Add(1)
	h1, h2 := hashPair(item)
	for i := uint32(0); i < f.hashes; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		setBit(&f.bits[pos/64], 1<<(pos%64))
	}
}

// Contains tests membership. False positives occur with probability FPP.
// False negatives occur only for insertions racing a Reset (see the
// package comment); on a quiescent filter they never occur.
func (f *Filter) Contains(item []byte) bool {
	n := f.lookups.Add(1)
	f.requestsSinceReset.Add(1)
	var hist *obs.Histogram
	var start time.Time
	if n&lookupSampleMask == 0 {
		if hist = f.lookupSeconds.Load(); hist != nil {
			start = time.Now()
		}
	}
	h1, h2 := hashPair(item)
	hit := true
	for i := uint32(0); i < f.hashes; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		if atomic.LoadUint64(&f.bits[pos/64])&(1<<(pos%64)) == 0 {
			hit = false
			break
		}
	}
	if hist != nil {
		hist.Observe(time.Since(start).Seconds())
	}
	return hit
}

// FPP returns the current false-positive probability estimate
// (1 - e^(-k·n/m))^k for the n elements inserted since the last reset.
func (f *Filter) FPP() float64 {
	n := f.count.Load()
	if n == 0 {
		return 0
	}
	exp := -float64(f.hashes) * float64(n) / float64(f.nbits)
	return math.Pow(1-math.Exp(exp), float64(f.hashes))
}

// MeasuredFPP returns the exact current false-positive probability
// p^k, where p is the measured fill ratio of the bit array. Unlike
// FPP, which estimates the fill ratio from the insertion count, this
// reads the actual bits — so it stays correct even when double-hashed
// positions collide more (or less) than the independence assumption
// predicts.
func (f *Filter) MeasuredFPP() float64 {
	return math.Pow(f.FillRatio(), float64(f.hashes))
}

// MaxFPP returns the configured saturation threshold.
func (f *Filter) MaxFPP() float64 { return f.maxFPP }

// Saturated reports whether the live FPP estimate has reached the
// configured maximum; per the paper, the owning router should Reset.
func (f *Filter) Saturated() bool { return f.FPP() >= f.maxFPP }

// Reset clears all bits and the element count, recording the number of
// lookups the filter absorbed since the previous reset (the paper's
// "BF reset threshold", Fig. 8).
func (f *Filter) Reset() {
	for i := range f.bits {
		atomic.StoreUint64(&f.bits[i], 0)
	}
	f.count.Store(0)
	f.resets.Add(1)
	absorbed := f.requestsSinceReset.Swap(0)
	f.mu.Lock()
	f.resetThresholds = append(f.resetThresholds, absorbed)
	f.mu.Unlock()
}

// Count returns the number of elements inserted since the last reset.
func (f *Filter) Count() uint64 { return f.count.Load() }

// Bits returns the filter's bit-array size m.
func (f *Filter) Bits() uint64 { return f.nbits }

// Hashes returns the number of hash functions k.
func (f *Filter) Hashes() uint32 { return f.hashes }

// Stats returns a snapshot of the operation counters.
func (f *Filter) Stats() Stats {
	return Stats{
		Lookups:    f.lookups.Load(),
		Insertions: f.insertions.Load(),
		Resets:     f.resets.Load(),
	}
}

// ResetThresholds returns a copy of the per-reset lookup counts: element
// i is the number of Contains calls between reset i-1 and reset i.
func (f *Filter) ResetThresholds() []uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]uint64, len(f.resetThresholds))
	copy(out, f.resetThresholds)
	return out
}

// RequestsSinceReset returns the number of lookups since the last reset.
func (f *Filter) RequestsSinceReset() uint64 { return f.requestsSinceReset.Load() }

// FillRatio returns the fraction of set bits, a diagnostic for tests.
func (f *Filter) FillRatio() float64 {
	set := 0
	for i := range f.bits {
		set += popcount(atomic.LoadUint64(&f.bits[i]))
	}
	return float64(set) / float64(f.nbits)
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// TheoreticalFPP computes the textbook FPP for a filter with m bits and
// k hashes holding n elements. Exposed for experiment harnesses and
// tests.
func TheoreticalFPP(m uint64, k uint32, n uint64) float64 {
	if n == 0 || m == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(k)*float64(n)/float64(m)), float64(k))
}

// CapacityAtFPP returns the number of elements a filter with m bits and
// k hashes can hold before its FPP reaches p: the inverse of
// TheoreticalFPP in n.
func CapacityAtFPP(m uint64, k uint32, p float64) uint64 {
	if p <= 0 || p >= 1 || m == 0 || k == 0 {
		return 0
	}
	// n = -m/k · ln(1 - p^(1/k))
	inner := 1 - math.Pow(p, 1/float64(k))
	if inner <= 0 {
		return 0
	}
	n := -float64(m) / float64(k) * math.Log(inner)
	if n < 0 {
		return 0
	}
	return uint64(n)
}
