package bloom

import (
	"fmt"
	"sync/atomic"
)

// Neighbor-sync primitives. Edge routers advertise their validated-tag
// filters to peers as word-level deltas: the sender keeps a snapshot of
// the words it last advertised, diffs the live filter against it, and
// ships only the changed words. Receivers OR the words in. Bits only
// accumulate between resets (a reset starts a new sync generation), so
// word-wise OR is exactly set union and the delta stream converges to
// the sender's filter regardless of interleaving.

// WordDelta is one changed 64-bit word of a filter's bit array.
type WordDelta struct {
	// Index is the word's position in the bit array.
	Index uint32
	// Word is the word's full current value (not a mask of new bits:
	// OR-ing the full value is idempotent, so replayed deltas are
	// harmless).
	Word uint64
}

// ErrShapeMismatch reports a merge between filters of different shapes;
// bit positions are only comparable between identically-shaped filters.
var ErrShapeMismatch = fmt.Errorf("bloom: filter shape mismatch")

// Clone returns an unsaturated snapshot copy of the filter: same shape
// and maxFPP, bit array and element count copied atomically word by
// word, operation counters fresh. Used for the previous-epoch fallback
// filter on rotation.
func (f *Filter) Clone() *Filter {
	nf := &Filter{
		bits:   make([]uint64, len(f.bits)),
		nbits:  f.nbits,
		hashes: f.hashes,
		maxFPP: f.maxFPP,
	}
	for i := range f.bits {
		nf.bits[i] = atomic.LoadUint64(&f.bits[i])
	}
	nf.count.Store(f.count.Load())
	return nf
}

// Words returns an atomic word-by-word snapshot of the bit array. The
// snapshot is not a consistent cut under concurrent Adds (an Add's bits
// may land in different words across two snapshots), which is fine for
// sync: missed bits appear in a later delta.
func (f *Filter) Words() []uint64 {
	out := make([]uint64, len(f.bits))
	for i := range f.bits {
		out[i] = atomic.LoadUint64(&f.bits[i])
	}
	return out
}

// DiffWords returns the words of cur that differ from prev, as full
// current values. prev may be nil or shorter than cur (treated as
// zeros), so the first advertisement after a reset diffs against an
// empty snapshot and carries the whole live filter.
func DiffWords(prev, cur []uint64) []WordDelta {
	var out []WordDelta
	for i, w := range cur {
		var p uint64
		if i < len(prev) {
			p = prev[i]
		}
		if w != p {
			out = append(out, WordDelta{Index: uint32(i), Word: w})
		}
	}
	return out
}

// MergeWords ORs a peer's delta words into the filter. added is the
// number of elements the delta represents on the sender's side; it is
// folded into the element count so the count-based FPP estimate (and
// with it Saturated and the collaboration flag F) keeps tracking the
// union. MeasuredFPP is bits-based and exact regardless. The sender's
// shape must match; deltas indexing past the bit array are rejected.
func (f *Filter) MergeWords(nbits uint64, hashes uint32, deltas []WordDelta, added uint64) error {
	if nbits != f.nbits || hashes != f.hashes {
		return fmt.Errorf("%w: got %d bits/%d hashes, have %d/%d", ErrShapeMismatch, nbits, hashes, f.nbits, f.hashes)
	}
	for _, d := range deltas {
		if int(d.Index) >= len(f.bits) {
			return fmt.Errorf("%w: word index %d past %d words", ErrShapeMismatch, d.Index, len(f.bits))
		}
	}
	for _, d := range deltas {
		word := &f.bits[d.Index]
		for {
			old := atomic.LoadUint64(word)
			if old|d.Word == old || atomic.CompareAndSwapUint64(word, old, old|d.Word) {
				break
			}
		}
	}
	f.count.Add(added)
	return nil
}
