package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3*time.Second, func() { order = append(order, 3) })
	e.Schedule(1*time.Second, func() { order = append(order, 1) })
	e.Schedule(2*time.Second, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order = %v", order)
	}
	if e.Elapsed() != 3*time.Second {
		t.Errorf("elapsed = %v", e.Elapsed())
	}
	if e.Processed() != 3 {
		t.Errorf("processed = %d", e.Processed())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	e.Schedule(time.Second, func() {
		fired = append(fired, e.Elapsed())
		e.Schedule(time.Second, func() {
			fired = append(fired, e.Elapsed())
		})
	})
	e.Run()
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 2*time.Second {
		t.Errorf("fired = %v", fired)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() { count++ })
	}
	e.RunUntil(Epoch.Add(5 * time.Second))
	if count != 5 {
		t.Errorf("events before deadline = %d, want 5", count)
	}
	if e.Now() != Epoch.Add(5*time.Second) {
		t.Errorf("clock = %v", e.Now())
	}
	if e.Pending() != 5 {
		t.Errorf("pending = %d", e.Pending())
	}
	e.RunFor(5 * time.Second)
	if count != 10 {
		t.Errorf("all events = %d", count)
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	e.RunFor(time.Second)
	ran := false
	e.Schedule(-time.Hour, func() { ran = true })
	e.Run()
	if !ran {
		t.Error("negative-delay event never ran")
	}
	if e.Elapsed() != time.Second {
		t.Error("negative delay moved the clock backwards")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(time.Second, func() { count++; e.Stop() })
	e.Schedule(2*time.Second, func() { count++ })
	e.Run()
	if count != 1 {
		t.Errorf("events after Stop = %d, want 1", count)
	}
}

func TestPropertyEngineMonotonicClock(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		last := Epoch
		ok := true
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Millisecond, func() {
				if e.Now().Before(last) {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStreamsDeterministicAndIndependent(t *testing.T) {
	s1 := NewStreams(42)
	s2 := NewStreams(42)
	a := s1.Stream("client-0")
	b := s2.Stream("client-0")
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed + name should give identical streams")
		}
	}
	c := NewStreams(42).Stream("client-1")
	d := NewStreams(43).Stream("client-0")
	if c.Uint64() == NewStreams(42).Stream("client-0").Uint64() && d.Uint64() == NewStreams(42).Stream("client-0").Uint64() {
		t.Error("different names/seeds should give different streams")
	}
}

func TestLinkTransmission(t *testing.T) {
	l := NewLink(LinkSpec{Latency: time.Millisecond, BandwidthBps: 8000}) // 1 KB/s
	rng := rand.New(rand.NewSource(1))
	arr, ok := l.Send(Epoch, 1000, rng) // 1 s transmission
	if !ok {
		t.Fatal("lossless link dropped a packet")
	}
	want := Epoch.Add(time.Second + time.Millisecond)
	if !arr.Equal(want) {
		t.Errorf("arrival = %v, want %v", arr, want)
	}
	// Second packet queues behind the first.
	arr2, _ := l.Send(Epoch, 1000, rng)
	want2 := Epoch.Add(2*time.Second + time.Millisecond)
	if !arr2.Equal(want2) {
		t.Errorf("queued arrival = %v, want %v", arr2, want2)
	}
	sent, lost, bytes := l.Stats()
	if sent != 2 || lost != 0 || bytes != 2000 {
		t.Errorf("stats = %d %d %d", sent, lost, bytes)
	}
}

func TestLinkLoss(t *testing.T) {
	l := NewLink(LinkSpec{Latency: time.Millisecond, BandwidthBps: 1e9, LossProb: 0.5})
	rng := rand.New(rand.NewSource(2))
	losses := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if _, ok := l.Send(Epoch, 100, rng); !ok {
			losses++
		}
	}
	rate := float64(losses) / n
	if rate < 0.45 || rate > 0.55 {
		t.Errorf("loss rate = %.3f, want ~0.5", rate)
	}
}

func TestLinkZeroBandwidth(t *testing.T) {
	l := NewLink(LinkSpec{Latency: time.Millisecond})
	if l.TransmissionTime(1000) != 0 {
		t.Error("zero-bandwidth link should have no serialisation delay")
	}
}

func TestPaperLinkSpecs(t *testing.T) {
	// A 1 KB packet on the 10 Mbps edge takes 0.8 ms to serialise.
	l := NewLink(EdgeLinkSpec)
	if got := l.TransmissionTime(1000); got != 800*time.Microsecond {
		t.Errorf("edge tx time = %v", got)
	}
	c := NewLink(CoreLinkSpec)
	if got := c.TransmissionTime(1000); got != 16*time.Microsecond {
		t.Errorf("core tx time = %v", got)
	}
}

func TestNormalDelaySample(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := NormalDelay{Mean: time.Microsecond, Std: 100 * time.Nanosecond}
	var sum time.Duration
	const samples = 20000
	for i := 0; i < samples; i++ {
		d := n.Sample(rng)
		if d < 0 {
			t.Fatal("negative delay sampled")
		}
		sum += d
	}
	mean := sum / samples
	if mean < 900*time.Nanosecond || mean > 1100*time.Nanosecond {
		t.Errorf("sample mean = %v, want ~1µs", mean)
	}
}

func TestPaperDelaysOrdering(t *testing.T) {
	// The paper's central cost claim: signature verification is an order
	// of magnitude costlier than BF operations.
	d := PaperDelays()
	if d.SigVerify.Mean < 10*d.BFLookup.Mean {
		t.Errorf("sig verify (%v) should dwarf BF lookup (%v)", d.SigVerify.Mean, d.BFLookup.Mean)
	}
	if d.SigVerify.Mean < 10*d.BFInsert.Mean {
		t.Errorf("sig verify (%v) should dwarf BF insert (%v)", d.SigVerify.Mean, d.BFInsert.Mean)
	}
}

func TestFitNormal(t *testing.T) {
	if (FitNormal(nil) != NormalDelay{}) {
		t.Error("empty fit should be zero")
	}
	samples := []time.Duration{10, 20, 30, 40, 50}
	fit := FitNormal(samples)
	if fit.Mean != 30 {
		t.Errorf("mean = %v", fit.Mean)
	}
	if fit.Std < 14 || fit.Std > 17 { // sample std of 10..50 is ~15.8
		t.Errorf("std = %v", fit.Std)
	}
}

func TestTrimOutliers(t *testing.T) {
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i)
	}
	trimmed := TrimOutliers(samples, 0.1)
	if len(trimmed) != 80 {
		t.Errorf("trimmed length = %d", len(trimmed))
	}
	for _, s := range trimmed {
		if s < 10 || s >= 90 {
			t.Errorf("outlier %v survived trim", s)
		}
	}
	// Small inputs pass through untouched.
	small := []time.Duration{1, 2, 3}
	if got := TrimOutliers(small, 0.1); len(got) != 3 {
		t.Errorf("small trim = %v", got)
	}
}

func TestCalibrateDelays(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration timing in -short mode")
	}
	d, err := CalibrateDelays(500)
	if err != nil {
		t.Fatal(err)
	}
	if d.BFLookup.Mean <= 0 || d.BFInsert.Mean <= 0 || d.SigVerify.Mean <= 0 {
		t.Errorf("calibrated means must be positive: %+v", d)
	}
	// The paper's shape: verification is much costlier than BF ops.
	if d.SigVerify.Mean < 5*d.BFLookup.Mean {
		t.Errorf("calibrated sig verify (%v) should dwarf BF lookup (%v)", d.SigVerify.Mean, d.BFLookup.Mean)
	}
}
