package sim

import (
	"hash/fnv"
	"math/rand"
)

// Streams derives independent, reproducible randomness streams from one
// run seed. Every simulated entity (client, attacker, router) gets its
// own stream, so adding an entity never perturbs another's random
// sequence — the property that makes multi-seed averaging (the paper
// averages five runs per topology) meaningful.
type Streams struct {
	seed int64
}

// NewStreams creates a derivation root for one run seed.
func NewStreams(seed int64) *Streams {
	return &Streams{seed: seed}
}

// Stream returns the deterministic sub-stream for a named entity.
func (s *Streams) Stream(name string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))                  //nolint:errcheck // hash writes never error
	const mix = int64(-0x61c8864680b583eb) // 0x9e3779b97f4a7c15 as int64
	sub := int64(h.Sum64()) ^ (s.seed * mix)
	return rand.New(rand.NewSource(sub))
}
