package sim

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"github.com/tactic-icn/tactic/internal/bloom"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/pki"
)

// CalibrateDelays measures the real cost of TACTIC's three router
// operations on the current machine — Bloom-filter lookup, Bloom-filter
// insertion, and ECDSA P-256 signature verification over a
// representative tag-sized message — and fits normal delay models,
// reproducing the paper's §8.B methodology ("we benchmarked the latency
// distribution ... This allowed us to apply the delays, for
// computation-based operations, as random variables according to our
// benchmarks").
//
// iters controls the sample count per operation; 2000 gives stable fits
// in well under a second. Signature verification is sampled at
// iters/10 (it is ~10x costlier and less noisy).
func CalibrateDelays(iters int) (OpDelays, error) {
	if iters < 10 {
		iters = 10
	}
	rng := rand.New(rand.NewSource(0x7ac71c))

	bf, err := bloom.NewPaper(1000, 1e-4)
	if err != nil {
		return OpDelays{}, fmt.Errorf("sim: calibrate: %w", err)
	}
	item := func(i int) []byte {
		var b [200]byte // tag-sized key
		binary.LittleEndian.PutUint64(b[:], uint64(i))
		return b[:]
	}
	for i := 0; i < 500; i++ {
		bf.Add(item(i))
	}

	lookups := make([]time.Duration, 0, iters)
	for i := 0; i < iters; i++ {
		k := item(rng.Intn(2000))
		start := time.Now()
		bf.Contains(k)
		lookups = append(lookups, time.Since(start))
	}

	inserts := make([]time.Duration, 0, iters)
	for i := 0; i < iters; i++ {
		k := item(100000 + i)
		start := time.Now()
		bf.Add(k)
		inserts = append(inserts, time.Since(start))
	}

	signer, err := pki.GenerateECDSA(rng, names.MustParse("/calib/KEY/1"))
	if err != nil {
		return OpDelays{}, fmt.Errorf("sim: calibrate: %w", err)
	}
	msg := item(0)
	sig, err := signer.Sign(msg)
	if err != nil {
		return OpDelays{}, fmt.Errorf("sim: calibrate: %w", err)
	}
	pub := signer.Public()
	sigIters := iters / 10
	if sigIters < 10 {
		sigIters = 10
	}
	verifies := make([]time.Duration, 0, sigIters)
	for i := 0; i < sigIters; i++ {
		start := time.Now()
		if err := pub.Verify(msg, sig); err != nil {
			return OpDelays{}, fmt.Errorf("sim: calibrate verify: %w", err)
		}
		verifies = append(verifies, time.Since(start))
	}

	const trim = 0.05
	return OpDelays{
		BFLookup:  FitNormal(TrimOutliers(lookups, trim)),
		BFInsert:  FitNormal(TrimOutliers(inserts, trim)),
		SigVerify: FitNormal(TrimOutliers(verifies, trim)),
	}, nil
}
