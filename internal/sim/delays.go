package sim

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// NormalDelay is a normally-distributed computational delay, sampled per
// operation and clamped at zero. The paper (§8.B) benchmarked each
// operation on real hardware and injected the measured distribution into
// the simulator; this type is that mechanism.
type NormalDelay struct {
	// Mean is the distribution mean.
	Mean time.Duration
	// Std is the distribution standard deviation.
	Std time.Duration
}

// Sample draws one delay.
func (n NormalDelay) Sample(rng *rand.Rand) time.Duration {
	d := time.Duration(rng.NormFloat64()*float64(n.Std)) + n.Mean
	if d < 0 {
		return 0
	}
	return d
}

// OpDelays holds the per-operation delay models routers charge for
// TACTIC's three computational events.
type OpDelays struct {
	// BFLookup is one Bloom-filter membership test.
	BFLookup NormalDelay
	// BFInsert is one Bloom-filter insertion.
	BFInsert NormalDelay
	// SigVerify is one tag signature verification.
	SigVerify NormalDelay
}

// PaperDelays returns the means the paper measured on its Core-i7
// 2.93 GHz machine: BF lookup ~N(9.14e-7, ·), BF insertion
// ~N(3.35e-7, ·), signature verification ~N(1.12e-5, ·) seconds.
//
// The paper prints second parameters (6.51e-9, 1.73e-3, 6.49e-3) that
// cannot all be standard deviations — 1.73e-3 s would exceed its mean by
// four orders of magnitude and produce mostly-negative samples. We keep
// the first value (a plausible σ for the lookup) and substitute σ = µ/10
// where the printed value is inconsistent; DESIGN.md records this
// substitution. CalibrateDelays measures the real operations on the
// current machine instead, which is the paper's own methodology.
func PaperDelays() OpDelays {
	return OpDelays{
		BFLookup:  NormalDelay{Mean: 914 * time.Nanosecond, Std: 7 * time.Nanosecond},
		BFInsert:  NormalDelay{Mean: 335 * time.Nanosecond, Std: 34 * time.Nanosecond},
		SigVerify: NormalDelay{Mean: 11200 * time.Nanosecond, Std: 1120 * time.Nanosecond},
	}
}

// PaperLiteralDelays returns the paper's §8.B parameters read as the
// standard N(µ, σ²) notation: BF lookup ~N(9.14e-7, 6.51e-9), BF
// insertion ~N(3.35e-7, 1.73e-3), signature verification
// ~N(1.12e-5, 6.49e-3) seconds — i.e. σ of ~81 µs, ~41.6 ms, and
// ~80.6 ms respectively, sampled and clamped at zero (≈ half-normal, so
// the average injected verification costs ~32 ms). This is the only
// reading under which the paper's 50-350 ms Fig. 5 latencies and their
// strong dependence on Bloom-filter reset frequency are reproducible;
// as *measured* standard deviations the values would be physically
// implausible (σ four orders of magnitude above µ). PaperDelays is the
// sanitised alternative used by default.
func PaperLiteralDelays() OpDelays {
	return OpDelays{
		BFLookup:  NormalDelay{Mean: 914 * time.Nanosecond, Std: sqrtDuration(6.51e-9)},
		BFInsert:  NormalDelay{Mean: 335 * time.Nanosecond, Std: sqrtDuration(1.73e-3)},
		SigVerify: NormalDelay{Mean: 11200 * time.Nanosecond, Std: sqrtDuration(6.49e-3)},
	}
}

// sqrtDuration converts a variance in seconds² to a σ duration.
func sqrtDuration(varianceSec float64) time.Duration {
	return time.Duration(math.Sqrt(varianceSec) * float64(time.Second))
}

// FitNormal estimates a NormalDelay from observed samples.
func FitNormal(samples []time.Duration) NormalDelay {
	if len(samples) == 0 {
		return NormalDelay{}
	}
	var sum float64
	for _, s := range samples {
		sum += float64(s)
	}
	mean := sum / float64(len(samples))
	var varSum float64
	for _, s := range samples {
		d := float64(s) - mean
		varSum += d * d
	}
	std := 0.0
	if len(samples) > 1 {
		std = math.Sqrt(varSum / float64(len(samples)-1))
	}
	return NormalDelay{Mean: time.Duration(mean), Std: time.Duration(std)}
}

// TrimOutliers returns samples with the top and bottom fraction removed,
// stabilising calibration against scheduler noise.
func TrimOutliers(samples []time.Duration, fraction float64) []time.Duration {
	if fraction <= 0 || len(samples) < 10 {
		out := make([]time.Duration, len(samples))
		copy(out, samples)
		return out
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	cut := int(float64(len(sorted)) * fraction)
	return sorted[cut : len(sorted)-cut]
}
