// Package sim is a deterministic discrete-event simulation engine: a
// virtual clock, an event heap, seeded randomness streams, a link model
// with transmission serialisation, and the computational delay models
// the paper injects for Bloom-filter and signature operations (ndnSIM
// "does not take the time of the computational operations into account",
// §8.B — neither does a bare event loop, so measured costs are injected
// as normally-distributed delays, exactly as the authors did).
package sim

import (
	"container/heap"
	"time"
)

// Epoch is the canonical virtual start time of every simulation.
var Epoch = time.Unix(0, 0).UTC()

// Engine is a single-threaded discrete-event scheduler. It is
// deliberately not concurrency-safe: determinism comes from a single
// totally-ordered event stream.
type Engine struct {
	now       time.Time
	events    eventHeap
	seq       uint64
	processed uint64
	stopped   bool
}

// NewEngine creates an engine with the clock at Epoch.
func NewEngine() *Engine {
	return &Engine{now: Epoch}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// Elapsed returns the virtual time since Epoch.
func (e *Engine) Elapsed() time.Duration { return e.now.Sub(Epoch) }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Schedule enqueues fn to run after delay. Negative delays are clamped
// to zero (run at the current instant, after already-queued events for
// that instant).
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleAt(e.now.Add(delay), fn)
}

// ScheduleAt enqueues fn at an absolute virtual time. Times before the
// current clock are clamped to now.
func (e *Engine) ScheduleAt(at time.Time, fn func()) {
	if at.Before(e.now) {
		at = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: at, seq: e.seq, fn: fn})
}

// Step executes the earliest pending event, advancing the clock to it.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if e.stopped || len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}

// RunUntil executes every event scheduled at or before deadline, then
// advances the clock to the deadline.
func (e *Engine) RunUntil(deadline time.Time) {
	for !e.stopped && len(e.events) > 0 && !e.events[0].at.After(deadline) {
		e.Step()
	}
	if !e.stopped && e.now.Before(deadline) {
		e.now = deadline
	}
}

// RunFor is RunUntil(now + d).
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.now.Add(d))
}

// Run drains the event queue completely.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Stop halts processing: Step and RunUntil become no-ops. Useful for
// fail-fast assertions inside event handlers.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// event is one scheduled callback; seq breaks ties FIFO.
type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
