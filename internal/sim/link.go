package sim

import (
	"math/rand"
	"time"
)

// LinkSpec describes a point-to-point link's characteristics.
type LinkSpec struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// BandwidthBps is the capacity in bits per second.
	BandwidthBps int64
	// LossProb is the independent per-packet loss probability. The paper
	// attributes clients' sub-100% delivery to "a minimal amount of
	// network packet losses".
	LossProb float64
}

// Paper link parameters (§8.A): 500 Mbps / 1 ms core links and
// 10 Mbps / 2 ms edge links.
var (
	CoreLinkSpec = LinkSpec{Latency: time.Millisecond, BandwidthBps: 500_000_000}
	EdgeLinkSpec = LinkSpec{Latency: 2 * time.Millisecond, BandwidthBps: 10_000_000}
)

// Link is one direction of a point-to-point link. It serialises
// transmissions: a packet must wait for the previous packet to finish
// transmitting, which models queueing at the 10 Mbps edge.
type Link struct {
	spec      LinkSpec
	busyUntil time.Time
	sent      uint64
	lost      uint64
	bytesSent uint64
}

// NewLink creates a link with the given spec.
func NewLink(spec LinkSpec) *Link {
	return &Link{spec: spec}
}

// Spec returns the link characteristics.
func (l *Link) Spec() LinkSpec { return l.spec }

// TransmissionTime returns the serialisation delay for a packet of the
// given size.
func (l *Link) TransmissionTime(bytes int) time.Duration {
	if l.spec.BandwidthBps <= 0 {
		return 0
	}
	return time.Duration(float64(bytes*8) / float64(l.spec.BandwidthBps) * float64(time.Second))
}

// Send schedules a packet onto the link at virtual time now and returns
// its arrival time at the far end, accounting for queueing behind
// earlier packets, transmission time, and propagation latency. The
// second result is false when the packet is lost.
func (l *Link) Send(now time.Time, bytes int, rng *rand.Rand) (time.Time, bool) {
	l.sent++
	l.bytesSent += uint64(bytes)
	if l.spec.LossProb > 0 && rng.Float64() < l.spec.LossProb {
		l.lost++
		return time.Time{}, false
	}
	start := now
	if l.busyUntil.After(start) {
		start = l.busyUntil
	}
	txEnd := start.Add(l.TransmissionTime(bytes))
	l.busyUntil = txEnd
	return txEnd.Add(l.spec.Latency), true
}

// Stats returns packets sent, packets lost, and bytes offered.
func (l *Link) Stats() (sent, lost, bytes uint64) {
	return l.sent, l.lost, l.bytesSent
}
