package forwarder

import (
	"crypto/rand"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/ndn"
	"github.com/tactic-icn/tactic/internal/pki"
	"github.com/tactic-icn/tactic/internal/transport"
	"github.com/tactic-icn/tactic/internal/transport/chaos"
)

// medianOf returns the median of a non-empty latency sample.
func medianOf(d []time.Duration) time.Duration {
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	return d[len(d)/2]
}

// slowVerify inflates every signature verification by a fixed latency
// before delegating. The soak runs on whatever CPU the CI box has —
// often a single core — so modelling the verify cliff as *latency*
// (what the paper's 100µs-class crypto is to a line-rate data plane)
// rather than as CPU burn keeps the measurement about admission
// isolation instead of raw core starvation, which no admission policy
// can mask.
type slowVerify struct {
	inner pki.Verifier
	d     time.Duration
}

func (s slowVerify) Verify(locator names.Name, msg, sig []byte) error {
	time.Sleep(s.d)
	return s.inner.Verify(locator, msg, sig)
}

// TestSoakVerifyFlood is the admission-control acceptance soak: one
// face floods the edge with never-before-seen forged tags (over a
// lossy chaos link, so the attack traffic itself is jittered), while
// 15 victim faces keep fetching warm content on the hit path. The
// verify pool must cap the flooding face — sheds observed on the
// router, Overload NACKs observed by the attacker — and the victims'
// median hit latency must stay within 2x their pre-flood baseline
// (with an absolute floor so scheduler noise on a loaded CI box
// cannot fail the bound).
func TestSoakVerifyFlood(t *testing.T) {
	if testing.Short() {
		t.Skip("live soak in -short mode")
	}
	fn := startFaultNetCfg(t, nil, func(cfg *Config) {
		cfg.Tactic.EdgeValidateOnMiss = true
		// One worker over a 2ms verifier and a small budget: drain rate
		// ~500 verifies/s, so even a self-clocked flood outruns it and
		// must be shed, deterministically and without burning the CPU
		// the victims need.
		cfg.Verifier = slowVerify{inner: cfg.Registry, d: 2 * time.Millisecond}
		cfg.VerifyWorkers = 1
		cfg.VerifyBudget = 16
	})
	defer fn.Close()

	const victims = 15
	const perPhase = 30 // hit-path fetches per victim per phase

	clients := make([]*Client, victims)
	for i := range clients {
		clients[i] = fn.enrolledClient(fmt.Sprintf("victim%d", i))
		defer clients[i].Close()
		// Warm victim i's chunk into the edge CS and its tag into the
		// BF, so the measured phases below run the pure hit path.
		if _, err := clients[i].Fetch(fn.prefix.MustAppend("soak", "chunk"+itoa(i)), 2*time.Second); err != nil {
			t.Fatalf("victim %d warmup: %v", i, err)
		}
	}

	// measure runs each victim's hit-path loop concurrently and returns
	// the per-victim median latencies.
	measure := func() []time.Duration {
		medians := make([]time.Duration, victims)
		var wg sync.WaitGroup
		for i, cl := range clients {
			wg.Add(1)
			go func(i int, cl *Client) {
				defer wg.Done()
				name := fn.prefix.MustAppend("soak", "chunk"+itoa(i))
				lat := make([]time.Duration, 0, perPhase)
				for k := 0; k < perPhase; k++ {
					start := time.Now()
					if _, err := cl.Fetch(name, 2*time.Second); err != nil {
						t.Errorf("victim %d fetch %d: %v", i, k, err)
						return
					}
					lat = append(lat, time.Since(start))
				}
				medians[i] = medianOf(lat)
			}(i, cl)
		}
		wg.Wait()
		return medians
	}

	baseline := measure()
	if t.Failed() {
		t.Fatal("baseline phase failed; network unhealthy before the flood")
	}

	// The flooding face: a raw transport conn over a lossy chaos link.
	// Tags are pre-minted (signing is expensive; doing it inline would
	// contend with the victims for CPU and measure the test harness,
	// not the router) and cycled — a forged tag never enters the BF, so
	// each reuse still demands a verification slot.
	rogue, err := pki.GenerateECDSA(rand.Reader, names.MustParse("/prov0/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	pool := make([]*core.Tag, 256)
	for i := range pool {
		pool[i], err = core.IssueTag(rogue,
			names.MustNew("users", fmt.Sprintf("flood%d", i), "KEY", "1"),
			3, core.EmptyAccessPath.Accumulate("edge-0"), time.Now().Add(time.Hour))
		if err != nil {
			t.Fatal(err)
		}
	}
	dial := chaos.Dialer(chaos.Config{Seed: 7, Drop: 0.05})
	raw, err := dial(fn.edgeAddr)
	if err != nil {
		t.Fatal(err)
	}
	flood := transport.New(raw)

	var stop atomic.Bool
	var overloads, sent atomic.Int64
	floodDone := make(chan struct{})
	go func() {
		defer close(floodDone)
		// Self-clocked window: keep enough in flight to saturate the
		// budget (window > budget) without unbounded queueing. Dropped
		// frames under chaos shrink the effective window; that only
		// makes the flood burstier.
		const window = 48
		outstanding := 0
		readOne := func() bool {
			pkt, err := flood.Receive()
			if err != nil {
				return false
			}
			outstanding--
			if pkt.Data != nil && pkt.Data.Nack && errors.Is(pkt.Data.NackReason, core.ErrOverload) {
				overloads.Add(1)
			}
			return true
		}
		for serial := uint64(1); !stop.Load(); serial++ {
			if err := flood.SendInterest(&ndn.Interest{
				Name:  fn.prefix.MustAppend("soak", "chunk0"),
				Kind:  ndn.KindContent,
				Nonce: 1<<62 | serial,
				Tag:   pool[serial%uint64(len(pool))],
			}); err != nil {
				return // chaos reset or shutdown race: the flood just ends
			}
			sent.Add(1)
			outstanding++
			if outstanding >= window && !readOne() {
				return
			}
		}
	}()

	// Let the flood saturate the budget before measuring the victims.
	deadline := time.Now().Add(5 * time.Second)
	for fn.edgeFwd.Stats().VerifySheds == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("flood never shed (sent %d): admission cap not engaged", sent.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}

	flooded := measure()
	stop.Store(true)
	flood.Close()
	<-floodDone
	if t.Failed() {
		t.FailNow()
	}

	sheds := fn.edgeFwd.Stats().VerifySheds
	t.Logf("flood: %d sent, %d sheds at the edge, %d Overload NACKs seen by the attacker",
		sent.Load(), sheds, overloads.Load())
	t.Logf("victim median hit latency: baseline %v, under flood %v", medianOf(baseline), medianOf(flooded))
	if sheds == 0 {
		t.Error("edge never shed the flooding face")
	}
	if overloads.Load() == 0 {
		t.Error("flooding face never received an Overload NACK")
	}
	// Per-victim bound: ≤ 2x that victim's own baseline, with an
	// absolute floor so microsecond-scale baselines don't turn
	// scheduler jitter on a shared CI core into failures.
	const floor = 20 * time.Millisecond
	for i := range flooded {
		limit := 2 * baseline[i]
		if limit < floor {
			limit = floor
		}
		if flooded[i] > limit {
			t.Errorf("victim %d hit latency %v under flood exceeds limit %v (baseline %v)",
				i, flooded[i], limit, baseline[i])
		}
	}
}
