// Distributed-tracing glue: converting the wire TraceContext to obs
// span contexts and computing the context to stamp on packets this node
// sends onward.
package forwarder

import (
	"github.com/tactic-icn/tactic/internal/ndn"
	"github.com/tactic-icn/tactic/internal/obs"
)

// traceCtx converts the wire trace context to the obs form.
func traceCtx(tc ndn.TraceContext) obs.TraceCtx {
	return obs.TraceCtx{TraceID: tc.TraceID, ParentID: tc.ParentID, Hop: tc.Hops, Sampled: tc.Sampled}
}

// stampTrace returns the wire trace context for a packet originated by
// the node that recorded sp: the first wire hop is sp's child. A nil or
// local-only span yields the zero context (no wire bytes).
func stampTrace(sp *obs.Span) ndn.TraceContext {
	c := sp.Context()
	return ndn.TraceContext{TraceID: c.TraceID, ParentID: c.ParentID, Sampled: c.Sampled, Hops: c.Hop}
}

// propagateTrace computes the trace context to stamp on packets sent
// while handling a packet that arrived carrying tc, for which this node
// recorded span sp (possibly nil). When this hop recorded a span the
// context re-parents to it; a traced packet crossing a non-recording
// hop keeps its parent and still advances the hop count, so assembled
// traces show the true path length even past untraced nodes.
func propagateTrace(tc ndn.TraceContext, sp *obs.Span) ndn.TraceContext {
	if !tc.Valid() {
		return ndn.TraceContext{}
	}
	if c := sp.Context(); c.TraceID != 0 {
		return ndn.TraceContext{TraceID: c.TraceID, ParentID: c.ParentID, Sampled: c.Sampled, Hops: c.Hop}
	}
	tc.Hops++
	return tc
}
