package forwarder

import (
	"time"

	"github.com/tactic-icn/tactic/internal/bloom"
	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/ndn"
	"github.com/tactic-icn/tactic/internal/obs"
	"github.com/tactic-icn/tactic/internal/transport"
)

// Metric names exported by the live stack (see README "Operating &
// monitoring"). Shared between the forwarder, the producer, and the
// simulator bridge in internal/experiment so a dashboard reads one
// vocabulary regardless of the source.
const (
	MetricInterests     = "tactic_interests_total"
	MetricData          = "tactic_data_total"
	MetricCSHits        = "tactic_cs_hits_total"
	MetricNACKs         = "tactic_nacks_total"
	MetricDrops         = "tactic_drops_total"
	MetricHopSeconds    = "tactic_interest_hop_seconds"
	MetricBFLookups     = "tactic_bf_lookups_total"
	MetricBFInsertions  = "tactic_bf_insertions_total"
	MetricBFResets      = "tactic_bf_resets_total"
	MetricVerifications = "tactic_tag_verifications_total"
	MetricVerifyFailed  = "tactic_tag_verify_failures_total"
	MetricBFFillRatio   = "tactic_bf_fill_ratio"
	MetricBFFPP         = "tactic_bf_fpp"
	// MetricBFMeasuredFPP / MetricBFTargetFPP feed the health engine's
	// BF-saturation watchdog (aliased from obs so the rule inputs and
	// the emitters cannot drift): the bits-exact measured FPP versus the
	// configured target the filter was shaped for.
	MetricBFMeasuredFPP = obs.FamilyBFMeasuredFPP
	MetricBFTargetFPP   = obs.FamilyBFTargetFPP
	MetricBFEntries     = "tactic_bf_entries"
	MetricPITEntries    = "tactic_pit_entries"
	MetricCSEntries     = "tactic_cs_entries"
	MetricFIBEntries    = "tactic_fib_entries"
	MetricFaces         = "tactic_faces"
	MetricFaceFrames    = "tactic_face_frames_total"
	MetricFaceBytes     = "tactic_face_bytes_total"
	MetricFaceErrors    = "tactic_face_errors_total"

	// Failure-handling metrics: PIT expiries/flushes, route detachment,
	// managed-uplink lifecycle, and client retransmissions (see README
	// "Failure handling & chaos testing").
	MetricPITExpired     = "tactic_pit_expired_total"
	MetricPITFlushed     = "tactic_pit_flushed_total"
	MetricRoutesDetached = "tactic_routes_detached_total"
	MetricUplinkConnects = obs.FamilyUplinkConnects
	MetricUplinkDown     = "tactic_uplink_down_total"
	MetricUplinkUp       = "tactic_uplink_up"

	// Pipeline-stage observability: sampled per-stage latency (label
	// "stage" is one of decode, bf_lookup, verify, pit_cs, encode_send)
	// and the number of signature verifications currently executing.
	MetricStageSeconds   = "tactic_stage_seconds"
	MetricVerifyInFlight = "tactic_tag_verifications_in_flight"

	// Bounded async verification pool: Interests shed over a face's
	// admission budget, Interests currently parked awaiting a worker,
	// parked Interests flushed on face death/revocation/shutdown, and
	// the time each Interest spent parked.
	MetricVerifySheds       = obs.FamilyVerifySheds
	MetricVerifyParked      = "tactic_verify_parked"
	MetricVerifyFlushed     = "tactic_verify_flushed_total"
	MetricVerifyParkSeconds = "tactic_verify_park_seconds"

	MetricProducerServed    = "tactic_producer_served_total"
	MetricProducerNACKs     = "tactic_producer_nacks_total"
	MetricRegistrations     = "tactic_registrations_total"
	MetricClientFetches     = "tactic_client_fetches_total"
	MetricClientRetransmits = "tactic_client_retransmits_total"
)

// Drop causes used as the MetricDrops "cause" label.
const (
	dropDupNonce      = "dup_nonce"
	dropNoRoute       = "no_route"
	dropNoFace        = "no_face"
	dropUnsolicited   = "unsolicited"
	dropUndeliverable = "undeliverable"
	dropSendErr       = "send_error"
)

func (r Role) String() string {
	switch r {
	case RoleEdge:
		return "edge"
	case RoleCore:
		return "core"
	}
	return "unknown"
}

// obsMetrics pre-resolves the forwarder's registry series so the packet
// pipeline increments lock-free atomics only. All fields tolerate a nil
// registry (every handle is nil and no-ops).
type obsMetrics struct {
	reg            *obs.Registry
	role           obs.Label
	interest       *obs.Counter
	data           *obs.Counter
	csHits         *obs.Counter
	hop            *obs.Histogram
	pitExpired     *obs.Counter
	pitFlushed     *obs.Counter
	routesDetached *obs.Counter
	nacks          map[string]*obs.Counter // by reason label
	drops          map[string]*obs.Counter // by cause

	// Sampled stage latencies (MetricStageSeconds). stagePITCS and
	// stageEncodeSend are observed by the pipeline; stageDecode is fed to
	// every face's transport metrics. bf_lookup and verify live inside
	// the bloom filter and validator respectively (see registerSampled).
	stagePITCS      *obs.Histogram
	stageEncodeSend *obs.Histogram
	stageDecode     *obs.Histogram

	// Verify-pool series: sheds over budget and park time (the parked
	// gauge is a registerSampled callback over the pool itself).
	sheds       *obs.Counter
	parkSeconds *obs.Histogram

	// Lifecycle control plane: frames by kind and outcome, and BF sync
	// word-delta volume by direction.
	ctrls        map[string]*obs.Counter // by kind + "/" + outcome
	syncWordsIn  *obs.Counter
	syncWordsOut *obs.Counter
}

// stageSampleMask selects which packets contribute pit_cs / encode_send
// stage timings: packet counts where count&mask == 0.
const stageSampleMask = 63

// observeStage records one sampled stage timing; start is zero when the
// packet was not sampled.
func observeStage(h *obs.Histogram, start time.Time) {
	if !start.IsZero() {
		h.Observe(time.Since(start).Seconds())
	}
}

// observeStageSpan records one stage timing into the stage histogram
// (tagging the bucket with the span's trace ID as an exemplar) and onto
// the span itself. start is zero when neither the 1-in-64 stage sampler
// nor a trace span selected this packet; h and sp are each nil-safe.
func observeStageSpan(h *obs.Histogram, stage string, start time.Time, sp *obs.Span) {
	if start.IsZero() {
		return
	}
	d := time.Since(start)
	h.ObserveTraced(d.Seconds(), sp.TraceID())
	sp.EventDur(stage, d, "")
}

// verifyDetail renders a signature-verification outcome for trace
// annotations.
func verifyDetail(failed bool) string {
	if failed {
		return "fail"
	}
	return "ok"
}

func newObsMetrics(reg *obs.Registry, role Role) *obsMetrics {
	m := &obsMetrics{reg: reg, role: obs.L("role", role.String())}
	if reg == nil {
		return m
	}
	reg.Help(MetricInterests, "Interests entering the pipeline.")
	reg.Help(MetricData, "Data packets entering the pipeline.")
	reg.Help(MetricCSHits, "Interests answered from the content store.")
	reg.Help(MetricNACKs, "Invalidity signals sent, by validation failure reason.")
	reg.Help(MetricDrops, "Packets dropped, by cause.")
	reg.Help(MetricHopSeconds, "Per-hop Interest pipeline latency.")
	reg.Help(MetricFaceFrames, "Frames moved per face, by link kind and direction.")
	reg.Help(MetricFaceBytes, "Frame bytes moved per face, by link kind and direction.")
	reg.Help(MetricFaceErrors, "Framing and I/O failures per face.")
	reg.Help(MetricPITExpired, "PIT entries expired unanswered (the paper's silent request expiry).")
	reg.Help(MetricPITFlushed, "PIT entries flushed because their upstream face died.")
	reg.Help(MetricRoutesDetached, "FIB routes detached because their face died.")
	m.interest = reg.Counter(MetricInterests, m.role)
	m.data = reg.Counter(MetricData, m.role)
	m.csHits = reg.Counter(MetricCSHits, m.role)
	m.hop = reg.Histogram(MetricHopSeconds, nil, m.role)
	m.pitExpired = reg.Counter(MetricPITExpired, m.role)
	m.pitFlushed = reg.Counter(MetricPITFlushed, m.role)
	m.routesDetached = reg.Counter(MetricRoutesDetached, m.role)
	m.nacks = make(map[string]*obs.Counter)
	for _, reason := range core.ReasonLabels() {
		m.nacks[reason] = reg.Counter(MetricNACKs, m.role, obs.L("reason", reason))
	}
	m.drops = make(map[string]*obs.Counter)
	for _, cause := range []string{dropDupNonce, dropNoRoute, dropNoFace, dropUnsolicited, dropUndeliverable, dropSendErr} {
		m.drops[cause] = reg.Counter(MetricDrops, m.role, obs.L("cause", cause))
	}
	reg.Help(MetricControl, "Lifecycle control frames processed, by kind and outcome.")
	reg.Help(MetricBFSyncWords, "Bloom-filter word deltas exchanged with sync peers, by direction.")
	m.ctrls = make(map[string]*obs.Counter)
	for _, kind := range []ndn.ControlKind{ndn.CtrlRevoke, ndn.CtrlRotate, ndn.CtrlBFSync} {
		for _, outcome := range []string{ctrlApplied, ctrlStale, ctrlInvalid} {
			m.ctrls[kind.String()+"/"+outcome] = reg.Counter(MetricControl, m.role,
				obs.L("kind", kind.String()), obs.L("outcome", outcome))
		}
	}
	m.ctrls["other"] = reg.Counter(MetricControl, m.role, obs.L("kind", "other"), obs.L("outcome", ctrlInvalid))
	m.syncWordsIn = reg.Counter(MetricBFSyncWords, m.role, obs.L("dir", "in"))
	m.syncWordsOut = reg.Counter(MetricBFSyncWords, m.role, obs.L("dir", "out"))
	reg.Help(MetricStageSeconds, "Sampled pipeline-stage latency, by stage (decode, bf_lookup, verify, pit_cs, encode_send).")
	m.stagePITCS = reg.Histogram(MetricStageSeconds, nil, m.role, obs.L("stage", "pit_cs"))
	m.stageEncodeSend = reg.Histogram(MetricStageSeconds, nil, m.role, obs.L("stage", "encode_send"))
	m.stageDecode = reg.Histogram(MetricStageSeconds, nil, m.role, obs.L("stage", "decode"))
	reg.Help(MetricVerifySheds, "Interests shed with Overload NACKs because their face exceeded its verification budget.")
	reg.Help(MetricVerifyParkSeconds, "Time Interests spent parked awaiting a verification worker.")
	m.sheds = reg.Counter(MetricVerifySheds, m.role)
	m.parkSeconds = reg.Histogram(MetricVerifyParkSeconds, nil, m.role)
	return m
}

// shed counts one Interest shed over a face's verification budget.
func (m *obsMetrics) shed() {
	if m.sheds != nil {
		m.sheds.Inc()
	}
}

// observeParkTime records how long one Interest sat parked.
func (m *obsMetrics) observeParkTime(d time.Duration) {
	if m.parkSeconds != nil {
		m.parkSeconds.Observe(d.Seconds())
	}
}

// nack counts one NACK under its reason label.
func (m *obsMetrics) nack(reason error) {
	if m.nacks == nil {
		return
	}
	label := core.ReasonLabel(reason)
	c, ok := m.nacks[label]
	if !ok {
		c = m.nacks["other"]
	}
	c.Inc()
}

// control counts one control frame under its kind and outcome labels.
// The map is read-only after newObsMetrics (handleControl runs on
// concurrent per-face goroutines); unknown kinds count under "other".
func (m *obsMetrics) control(kind ndn.ControlKind, outcome string) {
	if m.ctrls == nil {
		return
	}
	c, ok := m.ctrls[kind.String()+"/"+outcome]
	if !ok {
		c = m.ctrls["other"]
	}
	c.Inc()
}

// drop counts one drop under its cause label.
func (m *obsMetrics) drop(cause string) {
	if m.drops == nil {
		return
	}
	m.drops[cause].Inc()
}

// faceMetrics builds the per-face transport counters. datagram adds the
// UDP-plane series (fragments, reassembly, evictions, oversize) that
// only datagram faces bump.
func (m *obsMetrics) faceMetrics(id ndn.FaceID, downstream, datagram bool) *transport.Metrics {
	if m.reg == nil {
		return nil
	}
	link := "upstream"
	if downstream {
		link = "downstream"
	}
	face := obs.L("face", itoa(int(id)))
	kind := obs.L("link", link)
	in, out := obs.L("dir", "in"), obs.L("dir", "out")
	tm := &transport.Metrics{
		FramesIn:      m.reg.Counter(MetricFaceFrames, m.role, face, kind, in),
		FramesOut:     m.reg.Counter(MetricFaceFrames, m.role, face, kind, out),
		BytesIn:       m.reg.Counter(MetricFaceBytes, m.role, face, kind, in),
		BytesOut:      m.reg.Counter(MetricFaceBytes, m.role, face, kind, out),
		Errors:        m.reg.Counter(MetricFaceErrors, m.role, face, kind),
		DecodeSeconds: m.stageDecode,
	}
	if datagram {
		m.reg.Help(transport.MetricUDPFragments, "Fragment datagrams moved, by direction.")
		m.reg.Help(transport.MetricUDPReassembled, "Frames completed from fragment reassembly.")
		m.reg.Help(transport.MetricUDPReassemblyEvictions, "Partial packets evicted before reassembly completed (timeout or slot pressure).")
		m.reg.Help(transport.MetricUDPRxOversize, "UDP datagrams truncated and dropped for exceeding the receive buffer (MTU mismatch).")
		tm.FragmentsIn = m.reg.Counter(transport.MetricUDPFragments, m.role, face, kind, in)
		tm.FragmentsOut = m.reg.Counter(transport.MetricUDPFragments, m.role, face, kind, out)
		tm.Reassembled = m.reg.Counter(transport.MetricUDPReassembled, m.role, face, kind)
		tm.ReassemblyEvictions = m.reg.Counter(transport.MetricUDPReassemblyEvictions, m.role, face, kind)
		tm.Oversize = m.reg.Counter(transport.MetricUDPRxOversize, m.role, face, kind)
	}
	return tm
}

// demuxMetrics builds the shared interim Metrics for faces the UDP
// endpoint demuxes before Accept hands them to addFace. One series set
// keyed face="demux" (not the remote address) keeps label cardinality
// bounded no matter how many remotes connect.
func (m *obsMetrics) demuxMetrics() *transport.Metrics {
	if m.reg == nil {
		return nil
	}
	face := obs.L("face", "demux")
	in, out := obs.L("dir", "in"), obs.L("dir", "out")
	return &transport.Metrics{
		FramesIn:            m.reg.Counter(MetricFaceFrames, m.role, face, obs.L("link", "downstream"), in),
		BytesIn:             m.reg.Counter(MetricFaceBytes, m.role, face, obs.L("link", "downstream"), in),
		Errors:              m.reg.Counter(MetricFaceErrors, m.role, face, obs.L("link", "downstream")),
		DecodeSeconds:       m.stageDecode,
		FragmentsIn:         m.reg.Counter(transport.MetricUDPFragments, m.role, face, in),
		FragmentsOut:        m.reg.Counter(transport.MetricUDPFragments, m.role, face, out),
		Reassembled:         m.reg.Counter(transport.MetricUDPReassembled, m.role, face),
		ReassemblyEvictions: m.reg.Counter(transport.MetricUDPReassemblyEvictions, m.role, face),
		Oversize:            m.reg.Counter(transport.MetricUDPRxOversize, m.role, face),
	}
}

// registerSampled wires the counters owned by other layers (Bloom
// filter, validator) and the instantaneous table sizes as scrape-time
// callbacks, and hands the bf_lookup / verify stage histograms to the
// layers that own those stages. Every source synchronises itself, so the
// callbacks take no forwarder lock except the face-count gauge (f.mu
// read lock; the obs registry never scrapes under its own lock, so no
// lock order is imposed).
func (f *Forwarder) registerSampled(reg *obs.Registry) {
	if reg == nil {
		return
	}
	role := obs.L("role", f.cfg.Role.String())
	f.tactic.Bloom().SetLookupHistogram(reg.Histogram(MetricStageSeconds, nil, role, obs.L("stage", "bf_lookup")))
	f.tactic.Validator().SetVerifyHistogram(reg.Histogram(MetricStageSeconds, nil, role, obs.L("stage", "verify")))
	reg.Help(MetricVerifyInFlight, "Tag signature verifications currently executing.")
	reg.GaugeFunc(MetricVerifyInFlight, func() float64 { return float64(f.tactic.Validator().InFlight()) }, role)
	reg.Help(MetricVerifyParked, "Interests currently parked in the verification pool.")
	reg.Help(MetricVerifyFlushed, "Parked Interests flushed with NACKs (face death, revocation, shutdown).")
	reg.GaugeFunc(MetricVerifyParked, func() float64 { return float64(f.vp.Parked()) }, role)
	reg.CounterFunc(MetricVerifyFlushed, func() float64 { return float64(f.vp.Flushed()) }, role)
	reg.CounterFunc(MetricBFLookups, func() float64 { return float64(f.tactic.Bloom().Stats().Lookups) }, role)
	reg.CounterFunc(MetricBFInsertions, func() float64 { return float64(f.tactic.Bloom().Stats().Insertions) }, role)
	reg.CounterFunc(MetricBFResets, func() float64 { return float64(f.tactic.Bloom().Stats().Resets) }, role)
	reg.CounterFunc(MetricVerifications, func() float64 { return float64(f.tactic.Validator().Verifications()) }, role)
	for reason, get := range map[string]func(core.ValidatorStats) uint64{
		"no_tag":  func(s core.ValidatorStats) uint64 { return s.Missing },
		"expired": func(s core.ValidatorStats) uint64 { return s.Expired },
		"forged":  func(s core.ValidatorStats) uint64 { return s.Forged },
	} {
		get := get
		reg.CounterFunc(MetricVerifyFailed,
			func() float64 { return float64(get(f.tactic.Validator().Stats())) },
			role, obs.L("reason", reason))
	}
	reg.Help(MetricRevokedEntries, "Tag IDs in the router's exact revocation set (consulted before the BF).")
	reg.Help(MetricBFEpoch, "Current Bloom-filter epoch (bumped by CtrlRotate).")
	reg.Help(MetricBFLookups, "Bloom-filter membership lookups.")
	reg.Help(MetricBFInsertions, "Bloom-filter insertions.")
	reg.Help(MetricBFResets, "Bloom-filter resets (FPP threshold or epoch rotation).")
	reg.Help(MetricVerifications, "Tag signature verifications executed.")
	reg.Help(MetricVerifyFailed, "Tag verification failures, by reason.")
	reg.Help(MetricBFFillRatio, "Fraction of Bloom-filter bits set.")
	reg.Help(MetricBFFPP, "Live Bloom-filter false-positive probability estimate (from insert count).")
	reg.Help(MetricBFMeasuredFPP, "Bits-exact measured Bloom-filter false-positive probability (fill ratio ^ k).")
	reg.Help(MetricBFTargetFPP, "Configured Bloom-filter false-positive probability target.")
	reg.Help(MetricBFEntries, "Elements inserted into the Bloom filter since its last reset.")
	reg.Help(MetricPITEntries, "Pending Interest table entries.")
	reg.Help(MetricCSEntries, "Content-store entries.")
	reg.Help(MetricFIBEntries, "FIB routes installed.")
	reg.Help(MetricFaces, "Faces currently attached.")
	reg.GaugeFunc(MetricRevokedEntries, func() float64 { return float64(f.tactic.Revocations().Len()) }, role)
	reg.GaugeFunc(MetricBFEpoch, func() float64 { return float64(f.tactic.Epoch()) }, role)
	reg.GaugeFunc(MetricBFFillRatio, func() float64 { return f.tactic.Bloom().FillRatio() }, role)
	reg.GaugeFunc(MetricBFFPP, func() float64 { return f.tactic.Bloom().FPP() }, role)
	reg.GaugeFunc(MetricBFMeasuredFPP, func() float64 { return f.tactic.Bloom().MeasuredFPP() }, role)
	reg.GaugeFunc(MetricBFTargetFPP, func() float64 { return f.tactic.Bloom().MaxFPP() }, role)
	reg.GaugeFunc(MetricBFEntries, func() float64 { return float64(f.tactic.Bloom().Count()) }, role)
	reg.GaugeFunc(MetricPITEntries, func() float64 { return float64(f.pit.Len()) }, role)
	reg.GaugeFunc(MetricCSEntries, func() float64 { return float64(f.cs.Len()) }, role)
	reg.GaugeFunc(MetricFIBEntries, func() float64 { return float64(f.fib.Len()) }, role)
	reg.GaugeFunc(MetricFaces, func() float64 {
		f.mu.RLock()
		defer f.mu.RUnlock()
		return float64(len(f.faces))
	}, role)
}

// BloomStatus describes one Bloom filter for /statusz.
type BloomStatus struct {
	// Bits and Hashes are the filter shape (m, k).
	Bits   uint64 `json:"bits"`
	Hashes uint32 `json:"hashes"`
	// Entries counts elements inserted since the last reset.
	Entries uint64 `json:"entries"`
	// FillRatio is the fraction of set bits.
	FillRatio float64 `json:"fill_ratio"`
	// FPP is the live false-positive probability estimate; MaxFPP the
	// reset threshold.
	FPP    float64 `json:"fpp"`
	MaxFPP float64 `json:"max_fpp"`
	// Lookups, Insertions, Resets are lifetime operation counts.
	Lookups    uint64 `json:"lookups"`
	Insertions uint64 `json:"insertions"`
	Resets     uint64 `json:"resets"`
	// RequestsSinceReset counts lookups absorbed since the last reset.
	RequestsSinceReset uint64 `json:"requests_since_reset"`
}

// bloomStatus snapshots a filter (safe concurrently with traffic).
func bloomStatus(f *bloom.Filter) BloomStatus {
	st := f.Stats()
	return BloomStatus{
		Bits: f.Bits(), Hashes: f.Hashes(), Entries: f.Count(),
		FillRatio: f.FillRatio(), FPP: f.FPP(), MaxFPP: f.MaxFPP(),
		Lookups: st.Lookups, Insertions: st.Insertions, Resets: st.Resets,
		RequestsSinceReset: f.RequestsSinceReset(),
	}
}

// FaceStatus describes one attached face for /statusz.
type FaceStatus struct {
	ID         int             `json:"id"`
	Remote     string          `json:"remote,omitempty"`
	Downstream bool            `json:"downstream"`
	Stats      transport.Stats `json:"stats"`
}

// Status is the forwarder's /statusz document.
type Status struct {
	ID            string  `json:"id"`
	Role          string  `json:"role"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	PITEntries    int     `json:"pit_entries"`
	CSEntries     int     `json:"cs_entries"`
	FIBEntries    int     `json:"fib_entries"`
	// Epoch and RevokedEntries are the lifecycle control-plane state:
	// the BF epoch this node has rotated to and its revocation-set size.
	Epoch          uint64              `json:"epoch"`
	RevokedEntries int                 `json:"revoked_entries"`
	Bloom          BloomStatus         `json:"bloom"`
	Validator      core.ValidatorStats `json:"validator"`
	Counters       Stats               `json:"counters"`
	// VerifyPool is the bounded async verification subsystem's state.
	VerifyPool VerifyPoolStatus `json:"verify_pool"`
	Faces      []FaceStatus     `json:"faces"`
}

// VerifyPoolStatus describes the verification pool for /statusz.
type VerifyPoolStatus struct {
	// Workers is the pool size; Budget the per-face parked+in-flight
	// cap (0 = admission disabled).
	Workers int `json:"workers"`
	Budget  int `json:"budget"`
	// Parked counts Interests currently awaiting a worker.
	Parked int64 `json:"parked"`
	// Sheds and Flushed are lifetime Overload sheds and flush NACKs.
	Sheds   uint64 `json:"sheds"`
	Flushed uint64 `json:"flushed"`
}

// Status snapshots the forwarder for /statusz. Only the face walk needs
// a (read) lock; every other source is safe concurrently with traffic.
func (f *Forwarder) Status() Status {
	st := Status{
		ID:             f.cfg.ID,
		Role:           f.cfg.Role.String(),
		UptimeSeconds:  time.Since(f.start).Seconds(),
		PITEntries:     f.pit.Len(),
		CSEntries:      f.cs.Len(),
		FIBEntries:     f.fib.Len(),
		Epoch:          f.tactic.Epoch(),
		RevokedEntries: f.tactic.Revocations().Len(),
		Bloom:          bloomStatus(f.tactic.Bloom()),
		Validator:      f.tactic.Validator().Stats(),
		Counters:       f.Stats(),
		VerifyPool: VerifyPoolStatus{
			Workers: f.cfg.VerifyWorkers,
			Budget:  f.vp.budget,
			Parked:  f.vp.Parked(),
			Sheds:   f.vp.Sheds(),
			Flushed: f.vp.Flushed(),
		},
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	for id, fs := range f.faces {
		fst := FaceStatus{ID: int(id), Downstream: fs.downstream, Stats: fs.conn.Stats()}
		if addr := fs.conn.RemoteAddr(); addr != nil {
			fst.Remote = addr.String()
		}
		st.Faces = append(st.Faces, fst)
	}
	return st
}
