package forwarder

import (
	"bytes"
	"crypto/rand"
	"errors"
	"net"
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/ndn"
	"github.com/tactic-icn/tactic/internal/obs"
	"github.com/tactic-icn/tactic/internal/pki"
	"github.com/tactic-icn/tactic/internal/transport"
)

// liveNetwork is a running TACTIC deployment on loopback TCP:
//
//	client —TCP— edge(tacticd) —TCP— core(tacticd) —TCP— producer
type liveNetwork struct {
	registry *pki.Registry
	provKey  *pki.ECDSAKeyPair
	producer *Producer
	coreFwd  *Forwarder
	edgeFwd  *Forwarder
	edgeAddr string
	coreAddr string
	prefix   names.Name
	payload  []byte
	cleanup  []func()
}

func (n *liveNetwork) Close() {
	for i := len(n.cleanup) - 1; i >= 0; i-- {
		n.cleanup[i]()
	}
}

// startLiveNetwork boots the three-node deployment.
func startLiveNetwork(t testing.TB, tagTTL time.Duration) *liveNetwork {
	return startLiveNetworkObs(t, tagTTL, nil, nil)
}

// startLiveNetworkObs is startLiveNetwork with observability registries
// attached to the edge and core routers (either may be nil).
func startLiveNetworkObs(t testing.TB, tagTTL time.Duration, edgeObs, coreObs *obs.Registry) *liveNetwork {
	return startLiveNetworkCfg(t, tagTTL, edgeObs, coreObs, nil)
}

// startLiveNetworkCfg additionally lets the caller mutate each
// forwarder's Config before New (mod may be nil).
func startLiveNetworkCfg(t testing.TB, tagTTL time.Duration, edgeObs, coreObs *obs.Registry, mod func(cfg *Config)) *liveNetwork {
	t.Helper()
	n := &liveNetwork{prefix: names.MustParse("/prov0")}

	// Provider identity + trust registry.
	provKey, err := pki.GenerateECDSA(rand.Reader, names.MustParse("/prov0/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	n.provKey = provKey
	n.registry = pki.NewRegistry()
	if err := n.registry.Register(provKey.Locator(), provKey.Public()); err != nil {
		t.Fatal(err)
	}
	provider, err := core.NewProvider(n.prefix, provKey, tagTTL, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	n.producer, err = NewProducer(provider, n.registry, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	n.payload = bytes.Repeat([]byte("tactic!"), 400) // ~2.8 KB, 3 chunks
	if _, err := n.producer.PublishObject("report", 2, n.payload, 1024); err != nil {
		t.Fatal(err)
	}
	if _, err := n.producer.PublishObject("open", core.Public, []byte("public info"), 1024); err != nil {
		t.Fatal(err)
	}

	listen := func(serve func(net.Listener) error) string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go serve(ln) //nolint:errcheck // exits on close
		n.cleanup = append(n.cleanup, func() { ln.Close() })
		return ln.Addr().String()
	}

	prodAddr := listen(n.producer.Serve)
	n.cleanup = append(n.cleanup, func() { n.producer.Close() })

	coreCfg := Config{ID: "core-0", Role: RoleCore, Registry: n.registry, Seed: 1, Obs: coreObs}
	if mod != nil {
		mod(&coreCfg)
	}
	n.coreFwd, err = New(coreCfg)
	if err != nil {
		t.Fatal(err)
	}
	coreAddr := listen(n.coreFwd.Serve)
	n.coreAddr = coreAddr
	n.cleanup = append(n.cleanup, func() { n.coreFwd.Close() })
	up, err := n.coreFwd.DialUpstream(prodAddr)
	if err != nil {
		t.Fatal(err)
	}
	n.coreFwd.AddRoute(n.prefix, up)

	edgeCfg := Config{ID: "edge-0", Role: RoleEdge, Registry: n.registry, Seed: 2, Obs: edgeObs}
	if mod != nil {
		mod(&edgeCfg)
	}
	n.edgeFwd, err = New(edgeCfg)
	if err != nil {
		t.Fatal(err)
	}
	n.edgeAddr = listen(n.edgeFwd.Serve)
	n.cleanup = append(n.cleanup, func() { n.edgeFwd.Close() })
	up, err = n.edgeFwd.DialUpstream(coreAddr)
	if err != nil {
		t.Fatal(err)
	}
	n.edgeFwd.AddRoute(n.prefix, up)
	return n
}

// newLiveClient builds an enrolled client dialled into the edge.
func (n *liveNetwork) newLiveClient(t testing.TB, name string, level core.AccessLevel) *Client {
	t.Helper()
	key, err := pki.GenerateECDSA(rand.Reader, names.MustNew("users", name, "KEY", "1"))
	if err != nil {
		t.Fatal(err)
	}
	identity, err := core.NewClient(key, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if level > 0 {
		n.producer.Provider().Enroll(identity.KeyLocator(), key.Public(), level)
	}
	cl, err := Dial(n.edgeAddr, identity, name, "edge-0")
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

const liveTimeout = 2 * time.Second

func TestLiveEndToEndFetch(t *testing.T) {
	n := startLiveNetwork(t, time.Minute)
	defer n.Close()

	alice := n.newLiveClient(t, "alice", 3)
	defer alice.Close()

	got, chunks, err := alice.FetchObject(n.prefix.MustAppend("report"), liveTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if chunks != 3 {
		t.Errorf("chunks = %d, want 3", chunks)
	}
	if !bytes.Equal(got, n.payload) {
		t.Errorf("payload mismatch: %d vs %d bytes", len(got), len(n.payload))
	}
	// The origin served once per chunk (+manifest); a refetch comes from
	// caches.
	servedBefore := n.producer.Stats().Served
	got2, _, err := alice.FetchObject(n.prefix.MustAppend("report"), liveTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, n.payload) {
		t.Error("second fetch mismatch")
	}
	if n.producer.Stats().Served != servedBefore {
		t.Errorf("refetch hit the origin (%d -> %d served)", servedBefore, n.producer.Stats().Served)
	}
	if n.edgeFwd.Stats().CSHits+n.coreFwd.Stats().CSHits == 0 {
		t.Error("no cache hits on refetch")
	}
}

func TestLiveUnenrolledClientRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("timeout-bound live test in -short mode")
	}
	n := startLiveNetwork(t, time.Minute)
	defer n.Close()

	mallory := n.newLiveClient(t, "mallory", 0) // never enrolled
	defer mallory.Close()

	_, err := mallory.Fetch(n.prefix.MustAppend("report", "chunk0"), liveTimeout)
	if err == nil {
		t.Fatal("unenrolled client fetched private content")
	}
	// Registration is dropped by the producer, so the client times out
	// registering.
	if !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrNACK) {
		t.Errorf("err = %v", err)
	}
}

func TestLivePublicContentTagless(t *testing.T) {
	n := startLiveNetwork(t, time.Minute)
	defer n.Close()

	// A raw transport connection with no identity at all.
	raw, err := net.Dial("tcp", n.edgeAddr)
	if err != nil {
		t.Fatal(err)
	}
	conn := transport.New(raw)
	defer conn.Close()
	if err := conn.SendInterest(&ndn.Interest{
		Name:  n.prefix.MustAppend("open", "chunk0"),
		Kind:  ndn.KindContent,
		Nonce: 1,
	}); err != nil {
		t.Fatal(err)
	}
	pkt, err := conn.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if pkt.Data == nil || pkt.Data.Nack || pkt.Data.Content == nil {
		t.Fatalf("public content not served: %+v", pkt)
	}
	if string(pkt.Data.Content.Payload) != "public info" {
		t.Errorf("payload = %q", pkt.Data.Content.Payload)
	}
}

func TestLiveForgedTagNACKed(t *testing.T) {
	n := startLiveNetwork(t, time.Minute)
	defer n.Close()

	rogue, err := pki.GenerateECDSA(rand.Reader, names.MustParse("/prov0/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	forged, err := core.IssueTag(rogue, names.MustParse("/users/mallory/KEY/1"), 3,
		core.EmptyAccessPath.Accumulate("edge-0"), time.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := net.Dial("tcp", n.edgeAddr)
	if err != nil {
		t.Fatal(err)
	}
	conn := transport.New(raw)
	defer conn.Close()
	if err := conn.SendInterest(&ndn.Interest{
		Name:  n.prefix.MustAppend("report", "chunk0"),
		Kind:  ndn.KindContent,
		Nonce: 2,
		Tag:   forged,
	}); err != nil {
		t.Fatal(err)
	}
	pkt, err := conn.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if pkt.Data == nil || !pkt.Data.Nack {
		t.Fatalf("forged tag not NACKed: %+v", pkt)
	}
	if pkt.Data.Content != nil {
		t.Error("forged tag received content at the edge")
	}
}

func TestLiveExpiredTagRejectedAfterTTL(t *testing.T) {
	if testing.Short() {
		t.Skip("timeout-bound live test in -short mode")
	}
	n := startLiveNetwork(t, 700*time.Millisecond)
	defer n.Close()

	alice := n.newLiveClient(t, "alice", 3)
	defer alice.Close()

	name := n.prefix.MustAppend("report", "chunk0")
	if _, err := alice.Fetch(name, liveTimeout); err != nil {
		t.Fatal(err)
	}
	// Revoke, then poll until the tag has expired and the fetch fails:
	// the stale tag is rejected and re-registration is refused. Polling
	// (instead of sleeping past the 700 ms TTL) keeps the test synced to
	// the expiry event on a loaded machine.
	n.producer.Provider().Revoke(mustClientKey(t, alice))
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := alice.Fetch(n.prefix.MustAppend("report", "chunk1"), liveTimeout); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("revoked client still fetching long after tag expiry")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// mustClientKey extracts a live client's key locator.
func mustClientKey(t *testing.T, c *Client) names.Name {
	t.Helper()
	return c.identity.KeyLocator()
}

func TestLiveClientSharedAcrossGoroutines(t *testing.T) {
	n := startLiveNetwork(t, time.Minute)
	defer n.Close()
	alice := n.newLiveClient(t, "alice", 3)
	defer alice.Close()

	// Prime the tag once to avoid concurrent duplicate registrations.
	if _, err := alice.Fetch(n.prefix.MustAppend("report", "chunk0"), liveTimeout); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 3)
	for g := 0; g < 3; g++ {
		g := g
		go func() {
			name := n.prefix.MustAppend("report", "chunk"+itoa(g))
			_, err := alice.Fetch(name, liveTimeout)
			errc <- err
		}()
	}
	for g := 0; g < 3; g++ {
		if err := <-errc; err != nil {
			t.Error(err)
		}
	}
}

func TestForwarderConfigValidation(t *testing.T) {
	if _, err := New(Config{Role: RoleEdge}); err == nil {
		t.Error("missing registry accepted")
	}
	if _, err := New(Config{Registry: pki.NewRegistry()}); err == nil {
		t.Error("missing role accepted")
	}
}

func TestLiveWindowedFetchLargeObject(t *testing.T) {
	n := startLiveNetwork(t, time.Minute)
	defer n.Close()

	// A 40-chunk object exercises the fetch window properly.
	big := bytes.Repeat([]byte("0123456789abcdef"), 2500) // 40 KB
	if _, err := n.producer.PublishObject("big", 2, big, 1024); err != nil {
		t.Fatal(err)
	}
	alice := n.newLiveClient(t, "alice", 3)
	defer alice.Close()

	got, chunks, err := alice.FetchObjectWindowed(n.prefix.MustAppend("big"), 8, liveTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if chunks != 40 {
		t.Errorf("chunks = %d, want 40", chunks)
	}
	if !bytes.Equal(got, big) {
		t.Errorf("payload mismatch: %d vs %d bytes", len(got), len(big))
	}
	// Degenerate window clamps to 1.
	got2, _, err := alice.FetchObjectWindowed(n.prefix.MustAppend("big"), 0, liveTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, big) {
		t.Error("window-1 fetch mismatch")
	}
}

func TestLiveInterestAggregation(t *testing.T) {
	n := startLiveNetwork(t, time.Minute)
	defer n.Close()

	alice := n.newLiveClient(t, "alice", 3)
	defer alice.Close()
	bob := n.newLiveClient(t, "bob", 3)
	defer bob.Close()

	// Prime both tags so the simultaneous fetches carry valid tags.
	warm := n.prefix.MustAppend("report", "chunk0")
	if _, err := alice.Fetch(warm, liveTimeout); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Fetch(warm, liveTimeout); err != nil {
		t.Fatal(err)
	}

	// Publish a fresh (uncached) chunk and race both clients at it.
	if _, err := n.producer.PublishObject("fresh", 2, []byte("fresh payload"), 1024); err != nil {
		t.Fatal(err)
	}
	name := n.prefix.MustAppend("fresh", "chunk0")
	errc := make(chan error, 2)
	fetch := func(c *Client) { _, err := c.Fetch(name, liveTimeout); errc <- err }
	go fetch(alice)
	go fetch(bob)
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Error(err)
		}
	}
	// The origin served the fresh chunk at most... both may race past
	// the PIT before either response lands; what must hold is that both
	// clients were served and the edge handled any aggregation without
	// loss. The strong assertion: total origin serves for this name are
	// bounded by the number of clients.
	st := n.producer.Stats()
	if st.Served == 0 {
		t.Error("origin never served the fresh chunk")
	}
}
