package forwarder

import (
	"crypto/rand"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/ndn"
	"github.com/tactic-icn/tactic/internal/pki"
	"github.com/tactic-icn/tactic/internal/transport"
)

// TestLiveDuplicateTagVerifiedOnce floods an edge router from many faces
// with Interests that all carry the SAME valid-but-uncached tag. The
// concurrent pipeline must collapse the burst to (nearly) one signature
// verification: the first face's miss verifies and populates the Bloom
// filter while the other faces either coalesce onto the in-flight
// verification or hit the filter afterwards. Run under -race via the
// Makefile's race target.
func TestLiveDuplicateTagVerifiedOnce(t *testing.T) {
	reg := pki.NewRegistry()
	provKey, err := pki.GenerateECDSA(rand.Reader, names.MustNew("prov0", "KEY", "1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(provKey.Locator(), provKey.Public()); err != nil {
		t.Fatal(err)
	}

	edge, err := New(Config{
		ID:       "edge-dup",
		Role:     RoleEdge,
		Registry: reg,
		Tactic:   core.Config{EdgeValidateOnMiss: true},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	const faces = 16
	conns := make([]net.Conn, faces)
	for i := range conns {
		cSide, fSide := net.Pipe()
		conns[i] = cSide
		defer cSide.Close()
		edge.AddFace(transport.New(fSide), true)
	}

	ap := core.EmptyAccessPath.Accumulate("edge-dup")
	tag, err := core.IssueTag(provKey, names.MustNew("users", "dup", "KEY", "1"), 1, ap, time.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}

	// Distinct names keep the PIT out of the way (no aggregation): every
	// Interest runs edge enforcement itself. There is no route for any of
	// them, so each is validated and then dropped — exactly the
	// enforcement work an unauthorized-burst flood costs the router.
	frames := make([][]byte, faces)
	for i := range frames {
		frames[i], err = ndn.EncodeInterest(&ndn.Interest{
			Name:  names.MustParse(fmt.Sprintf("/prov0/obj%d/chunk0", i)),
			Kind:  ndn.KindContent,
			Nonce: uint64(i + 1),
			Tag:   tag,
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := range conns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			if _, err := conns[i].Write(frames[i]); err != nil {
				t.Errorf("face %d write: %v", i, err)
			}
		}(i)
	}
	close(start)
	wg.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for edge.Stats().Drops < faces {
		if time.Now().After(deadline) {
			t.Fatalf("edge processed %d/%d Interests before deadline", edge.Stats().Drops, faces)
		}
		time.Sleep(time.Millisecond)
	}

	got := edge.Tactic().Validator().Verifications()
	if got < 1 {
		t.Fatal("tag was never verified")
	}
	// Exactly 1 in the common schedule; a little slack for faces whose
	// Bloom lookup missed before the winner's insert landed but that
	// arrived at the validator after its call retired.
	if got > faces/4 {
		t.Errorf("%d faces with one shared tag cost %d verifications, want ~1 (<= %d)", faces, got, faces/4)
	}
	if inFlight := edge.Tactic().Validator().InFlight(); inFlight != 0 {
		t.Errorf("InFlight = %d after quiescence, want 0", inFlight)
	}
}
