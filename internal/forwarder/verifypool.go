package forwarder

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/ndn"
	"github.com/tactic-icn/tactic/internal/obs"
)

// The bounded asynchronous verification subsystem. Signature
// verification is the forwarder's 300x cost cliff (~100 µs per P-256
// verify against ~300 ns per BF lookup), and before this pool it ran
// inline on the per-face reader goroutines — so an attacker minting
// unseen tags on one face could stall that reader for the full verify
// latency per packet, and a shared-CPU box would see every face's
// reader degrade.
//
// Instead, Interests whose enforcement decision requires a signature
// check are *parked* here, PIT-style — the job keeps the arrival face
// and the Interest (with its nonce) so the eventual verdict is sent
// exactly where the request came from — and a fixed pool of workers
// drains the queues. Admission is budgeted per face: parked + in-flight
// jobs for one arrival face may not exceed the budget, and a face over
// budget is shed explicitly with a NACK carrying core.ErrOverload (wire
// reason code, counted under MetricVerifySheds) rather than silently
// dropped. Workers pick faces round-robin, so a flooding face that
// stays within its budget still cannot starve the other faces' parked
// work.
//
// Parked jobs are flushed — with best-effort NACKs — when their face
// dies, when their tag is revoked by a control push, and on forwarder
// shutdown, so nothing leaks and no client waits out a PIT lifetime
// for a verdict that can never come.

// verifyKind says which enforcement decision a parked job completes.
type verifyKind int

const (
	// verifyEdgeInterest: EdgeOnInterestFast reported NeedVerify (edge
	// BF miss under EdgeValidateOnMiss). Completion is EdgeVerifyMiss,
	// then the rest of the Interest pipeline.
	verifyEdgeInterest verifyKind = iota
	// verifyContentHit: ContentOnInterestFast reported NeedVerify for a
	// content-store hit (F = 0 BF miss, or the F != 0 probabilistic
	// re-check fired). Completion is ContentVerifyMiss, then the Data
	// send.
	verifyContentHit
)

// verifyJob is one parked Interest awaiting signature verification.
type verifyJob struct {
	kind verifyKind
	i    *ndn.Interest
	from *faceState
	// content is the CS hit awaiting its verdict (verifyContentHit).
	content *core.Content
	// flag is the effective F for the content completion.
	flag float64
	// now is the pipeline-entry protocol time: expiry and PIT lifetimes
	// are judged against the Interest's arrival, not its dequeue.
	now time.Time
	// parkedAt is the enqueue instant, for park-time observability.
	parkedAt time.Time
	sp       *obs.Span
	inTC     ndn.TraceContext
	sampled  bool
}

// faceVerifyQueue is one face's admission queue.
type faceVerifyQueue struct {
	jobs     []*verifyJob
	inflight int
}

// verifyPool is the bounded worker pool.
type verifyPool struct {
	f *Forwarder
	// budget caps parked+in-flight jobs per arrival face; 0 disables
	// admission (used by the DisableAdmission ablation — parking is
	// still asynchronous, only the cap is gone).
	budget int

	mu     sync.Mutex
	cond   *sync.Cond
	queues map[ndn.FaceID]*faceVerifyQueue
	// order is the round-robin rotation over faces that currently have
	// a queue; rr is the next index to scan from.
	order  []ndn.FaceID
	rr     int
	closed bool

	parked  atomic.Int64
	sheds   atomic.Uint64
	flushed atomic.Uint64

	wg sync.WaitGroup
}

func newVerifyPool(f *Forwarder, workers, budget int) *verifyPool {
	p := &verifyPool{f: f, budget: budget, queues: make(map[ndn.FaceID]*faceVerifyQueue)}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

// admit parks a job against its arrival face's budget. It returns false
// — and the caller must shed with an Overload NACK — when the face is
// over budget or the pool is shutting down.
func (p *verifyPool) admit(job *verifyJob) bool {
	id := job.from.id
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.sheds.Add(1)
		return false
	}
	q := p.queues[id]
	if q == nil {
		q = &faceVerifyQueue{}
		p.queues[id] = q
		p.order = append(p.order, id)
	}
	if p.budget > 0 && len(q.jobs)+q.inflight >= p.budget {
		p.mu.Unlock()
		p.sheds.Add(1)
		return false
	}
	q.jobs = append(q.jobs, job)
	p.parked.Add(1)
	p.mu.Unlock()
	p.cond.Signal()
	return true
}

// next pops one job round-robin across faces. It blocks until a job is
// available or the pool closes (nil).
func (p *verifyPool) next() *verifyJob {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return nil
		}
		for scanned := 0; scanned < len(p.order); scanned++ {
			idx := (p.rr + scanned) % len(p.order)
			q := p.queues[p.order[idx]]
			if len(q.jobs) == 0 {
				continue
			}
			job := q.jobs[0]
			q.jobs = q.jobs[1:]
			q.inflight++
			p.parked.Add(-1)
			p.rr = (idx + 1) % len(p.order)
			return job
		}
		p.cond.Wait()
	}
}

// release retires a job's in-flight slot and garbage-collects its
// face's queue entry when idle.
func (p *verifyPool) release(job *verifyJob) {
	id := job.from.id
	p.mu.Lock()
	if q := p.queues[id]; q != nil {
		q.inflight--
		if q.inflight == 0 && len(q.jobs) == 0 {
			delete(p.queues, id)
			for i, fid := range p.order {
				if fid == id {
					p.order = append(p.order[:i], p.order[i+1:]...)
					if p.rr > i {
						p.rr--
					}
					break
				}
			}
			if len(p.order) > 0 {
				p.rr %= len(p.order)
			} else {
				p.rr = 0
			}
		}
	}
	p.mu.Unlock()
}

func (p *verifyPool) worker() {
	defer p.wg.Done()
	for {
		job := p.next()
		if job == nil {
			return
		}
		p.run(job)
		p.release(job)
	}
}

// run completes a parked job's enforcement decision and resumes its
// pipeline. It executes on a worker goroutine — never on a face reader.
func (p *verifyPool) run(job *verifyJob) {
	f := p.f
	parkDur := time.Since(job.parkedAt)
	f.m.observeParkTime(parkDur)
	if job.sp != nil {
		job.sp.EventDur("parked", parkDur, "")
	}
	switch job.kind {
	case verifyEdgeInterest:
		dec := f.tactic.EdgeVerifyMiss(job.i.Tag, job.now)
		if job.sp != nil {
			job.sp.Event("verify", verifyDetail(dec.Denied()))
		}
		if dec.Denied() {
			f.nackInterest(job.i, job.from, dec.Reason, job.sp, job.inTC)
			return
		}
		job.i.Flag = dec.Flag
		if job.sp != nil {
			job.sp.Event("flag", formatFlag(dec.Flag))
		}
		f.continueInterest(job.i, job.from, job.now, job.sp, job.inTC, job.sampled)
	case verifyContentHit:
		dec := f.tactic.ContentVerifyMiss(job.i.Tag, job.flag, job.now)
		if job.sp != nil {
			job.sp.Event("verify", verifyDetail(dec.Denied()))
		}
		f.finishContentHit(job.i, job.from, job.content, dec, job.sp, job.inTC, job.sampled)
	}
}

// flushWhere removes parked jobs matching keep==true and NACKs each
// with the given reason (best-effort: the face may already be gone).
// In-flight jobs are not touched — their verdicts land normally.
func (p *verifyPool) flushWhere(match func(*verifyJob) bool, reason error) int {
	var out []*verifyJob
	p.mu.Lock()
	for id, q := range p.queues {
		kept := q.jobs[:0]
		for _, job := range q.jobs {
			if match(job) {
				out = append(out, job)
			} else {
				kept = append(kept, job)
			}
		}
		q.jobs = kept
		if len(q.jobs) == 0 && q.inflight == 0 {
			delete(p.queues, id)
		}
	}
	// Rebuild the rotation over the surviving queues.
	p.order = p.order[:0]
	for id := range p.queues {
		p.order = append(p.order, id)
	}
	p.rr = 0
	p.parked.Add(int64(-len(out)))
	p.mu.Unlock()
	for _, job := range out {
		p.flushed.Add(1)
		p.f.nackInterest(job.i, job.from, reason, job.sp, job.inTC)
	}
	return len(out)
}

// flushFace flushes every job parked for one arrival face (face
// death). The NACKs are best-effort sends into a closing connection.
func (p *verifyPool) flushFace(id ndn.FaceID, reason error) int {
	return p.flushWhere(func(j *verifyJob) bool { return j.from.id == id }, reason)
}

// shutdown stops the workers (in-flight verifies complete and deliver
// their verdicts), then flushes every still-parked job with an Overload
// NACK. Callers must invoke it while faces are still attached so the
// flush NACKs can reach clients.
func (p *verifyPool) shutdown() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
	p.flushWhere(func(*verifyJob) bool { return true }, core.ErrOverload)
}

// Sheds returns the number of Interests shed over budget.
func (p *verifyPool) Sheds() uint64 { return p.sheds.Load() }

// Parked returns the number of Interests currently parked.
func (p *verifyPool) Parked() int64 { return p.parked.Load() }

// Flushed returns the number of parked Interests flushed with NACKs.
func (p *verifyPool) Flushed() uint64 { return p.flushed.Load() }
