package forwarder

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/obs"
)

// metricValue extracts the first sample of a metric family from a
// Prometheus text exposition, summed over label sets.
func metricValue(t *testing.T, exposition, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `(?:\{[^}]*\})? ([0-9eE.+-]+)$`)
	var sum float64
	matches := re.FindAllStringSubmatch(exposition, -1)
	if matches == nil {
		t.Fatalf("metric %s absent from exposition", name)
	}
	for _, m := range matches {
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatalf("metric %s: bad sample %q", name, m[1])
		}
		sum += v
	}
	return sum
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestAdminEndpointsOnLiveNetwork drives real traffic through a
// client—edge—core—producer deployment and scrapes the edge's admin
// endpoint, asserting the enforcement-pipeline counters moved.
func TestAdminEndpointsOnLiveNetwork(t *testing.T) {
	edgeReg := obs.NewRegistry()
	coreReg := obs.NewRegistry()
	n := startLiveNetworkObs(t, time.Minute, edgeReg, coreReg)
	defer n.Close()
	prodReg := obs.NewRegistry()
	n.producer.Instrument(prodReg)

	edgeSrv := httptest.NewServer(obs.NewAdminMux(edgeReg, func() any { return n.edgeFwd.Status() }))
	defer edgeSrv.Close()
	prodSrv := httptest.NewServer(obs.NewAdminMux(prodReg, func() any { return n.producer.Stats() }))
	defer prodSrv.Close()

	// Authorized traffic: alice (level 3) fetches a level-2 object.
	alice := n.newLiveClient(t, "alice", 3)
	defer alice.Close()
	alice.Instrument(edgeReg)
	if _, _, err := alice.FetchObject(n.prefix.MustAppend("report"), liveTimeout); err != nil {
		t.Fatal(err)
	}

	// Unauthorized traffic: mallory (level 1) hits the edge's warm
	// content store, where Protocol 1's content pre-check NACKs the
	// level-2 object, so the rejection counters move too.
	mallory := n.newLiveClient(t, "mallory", 1)
	defer mallory.Close()
	if _, err := mallory.Fetch(n.prefix.MustAppend("report", "manifest"), liveTimeout); !errors.Is(err, ErrNACK) {
		t.Fatalf("mallory fetch err = %v, want ErrNACK", err)
	}

	// Reset the edge's Bloom filter (as Protocol 2 does on saturation):
	// alice's next CS hit misses the filter and forces a full signature
	// verification at the edge.
	n.edgeFwd.mu.Lock()
	n.edgeFwd.tactic.Bloom().Reset()
	n.edgeFwd.mu.Unlock()
	if _, err := alice.Fetch(n.prefix.MustAppend("report", "manifest"), liveTimeout); err != nil {
		t.Fatal(err)
	}

	// The edge exposition shows pipeline activity: Interests flowed, the
	// Bloom filter was consulted and reset, a tag signature was
	// verified, the CS served hits, and mallory's request was NACKed for
	// insufficient access level.
	exposition := httpGet(t, edgeSrv.URL+"/metrics")
	for metric, min := range map[string]float64{
		MetricInterests:     4, // manifest + 3 chunks, at minimum
		MetricData:          4,
		MetricBFLookups:     1,
		MetricBFResets:      1,
		MetricVerifications: 1,
		MetricCSHits:        1,
		MetricFaceFrames:    8,
		MetricPITEntries:    0,
	} {
		if got := metricValue(t, exposition, metric); got < min {
			t.Errorf("%s = %v, want >= %v", metric, got, min)
		}
	}
	if got := metricValue(t, exposition, MetricNACKs+`{reason="level",role="edge"}`); got < 1 {
		t.Errorf("level NACKs = %v, want >= 1", got)
	}
	if !strings.Contains(exposition, "# TYPE "+MetricHopSeconds+" histogram") {
		t.Error("hop latency histogram missing TYPE line")
	}
	if got := metricValue(t, exposition, MetricHopSeconds+"_count"); got < 4 {
		t.Errorf("hop histogram count = %v, want >= 4", got)
	}
	if got := metricValue(t, exposition, MetricClientFetches+`{node="alice",result="ok",role="client"}`); got < 4 {
		t.Errorf("alice ok fetches = %v, want >= 4", got)
	}

	// The producer served alice's misses and issued both tags.
	prodExposition := httpGet(t, prodSrv.URL+"/metrics")
	if got := metricValue(t, prodExposition, MetricProducerServed); got < 4 {
		t.Errorf("producer served = %v, want >= 4", got)
	}
	if got := metricValue(t, prodExposition, MetricRegistrations+`{provider="/prov0",result="issued",role="producer"}`); got < 2 {
		t.Errorf("registrations issued = %v, want >= 2", got)
	}

	// /statusz reflects the same state as a JSON document.
	var statusz struct {
		UptimeSeconds float64            `json:"uptime_seconds"`
		Metrics       map[string]float64 `json:"metrics"`
		Status        Status             `json:"status"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, edgeSrv.URL+"/statusz")), &statusz); err != nil {
		t.Fatal(err)
	}
	if statusz.UptimeSeconds < 0 {
		t.Errorf("uptime = %v, want >= 0", statusz.UptimeSeconds)
	}
	if statusz.Status.Role != "edge" || statusz.Status.ID != "edge-0" {
		t.Errorf("status identity = %s/%s, want edge-0/edge", statusz.Status.ID, statusz.Status.Role)
	}
	if statusz.Status.Counters.Interests < 4 {
		t.Errorf("status interests = %d, want >= 4", statusz.Status.Counters.Interests)
	}
	if statusz.Status.Bloom.Lookups < 1 {
		t.Errorf("status bloom lookups = %d, want >= 1", statusz.Status.Bloom.Lookups)
	}
	if len(statusz.Status.Faces) == 0 {
		t.Error("status lists no faces")
	}
	if len(statusz.Metrics) == 0 {
		t.Error("statusz carries no metrics snapshot")
	}

	// pprof is mounted.
	if body := httpGet(t, edgeSrv.URL+"/debug/pprof/cmdline"); body == "" {
		t.Error("pprof cmdline returned nothing")
	}
}
