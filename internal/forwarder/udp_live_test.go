package forwarder

import (
	"bytes"
	"crypto/rand"
	"net"
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/obs"
	"github.com/tactic-icn/tactic/internal/pki"
	"github.com/tactic-icn/tactic/internal/transport"
	"github.com/tactic-icn/tactic/internal/transport/chaos"
)

// udpNet is faultNet's datagram twin: the same client—edge—core—
// producer topology with every hop carried over udp:// faces. Liveness
// works differently here — there are no FINs or RSTs, so face death is
// keepalive/idle-driven end to end: every forwarder keepalives its
// faces, the edge reaps a silent uplink by idle timeout (which is what
// drives reconnection after a core outage), and the client keepalives
// its own edge face so quiet think time doesn't get it reaped.
type udpNet struct {
	t        *testing.T
	registry *pki.Registry
	producer *Producer
	prefix   names.Name
	prodAddr string // udp://host:port

	coreAddr string // host:port, stable across restarts
	coreFwd  *Forwarder
	coreLn   transport.FaceListener

	edgeFwd  *Forwarder
	edgeLn   transport.FaceListener
	edgeAddr string // host:port
	uplink   *Uplink

	idle    time.Duration
	cleanup []func()
}

// udpKeepalive is the keepalive period every node (and the client)
// uses; idle timeouts must sit a few multiples above it.
const udpKeepalive = 50 * time.Millisecond

// startUDPNet boots the all-UDP topology. dial, when non-nil, replaces
// the edge uplink's dialer (chaos injection). idle sets the edge
// forwarder's IdleTimeout: 0 disables reaping (steady-state tests),
// a positive value arms outage detection (failover test).
func startUDPNet(t *testing.T, dial func(string) (net.Conn, error), idle time.Duration) *udpNet {
	t.Helper()
	un := &udpNet{t: t, prefix: names.MustParse("/prov0"), idle: idle}

	provKey, err := pki.GenerateECDSA(rand.Reader, names.MustParse("/prov0/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	un.registry = pki.NewRegistry()
	if err := un.registry.Register(provKey.Locator(), provKey.Public()); err != nil {
		t.Fatal(err)
	}
	provider, err := core.NewProvider(un.prefix, provKey, time.Minute, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	un.producer, err = NewProducer(provider, un.registry, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	soak := bytes.Repeat([]byte("0123456789abcdef"), 400) // 400 chunks of 16 B
	if _, err := un.producer.PublishObject("soak", 2, soak, 16); err != nil {
		t.Fatal(err)
	}
	// Chunks well past the 1400 B MTU: every Data crossing every hop
	// must fragment and reassemble.
	big := bytes.Repeat([]byte{0xB1, 0x67, 0xDA, 0x7A}, 1000) // 4000 B per chunk
	if _, err := un.producer.PublishObject("big", 2, bytes.Repeat(big, 12), 4000); err != nil {
		t.Fatal(err)
	}

	prodEP, err := transport.ListenUDP("127.0.0.1:0", transport.UDPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	go un.producer.ServeFaces(prodEP) //nolint:errcheck // exits on close
	un.prodAddr = "udp://" + prodEP.Addr().String()
	un.cleanup = append(un.cleanup, func() { prodEP.Close(); un.producer.Close() })

	un.startCore("udp://127.0.0.1:0")

	un.edgeFwd, err = New(Config{
		ID: "edge-0", Role: RoleEdge, Registry: un.registry, Seed: 2,
		WriteTimeout: 2 * time.Second, KeepaliveInterval: udpKeepalive, IdleTimeout: idle,
		Obs: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	un.edgeLn, err = transport.ListenFace("udp://127.0.0.1:0", transport.UDPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	go un.edgeFwd.ServeFaces(un.edgeLn) //nolint:errcheck
	un.edgeAddr = un.edgeLn.Addr().String()
	un.uplink, err = un.edgeFwd.ManageUpstream(UplinkConfig{
		Addr: "udp://" + un.coreAddr, Routes: []names.Name{un.prefix}, Retry: fastRetry, Dial: dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !un.uplink.WaitUp(5 * time.Second) {
		t.Fatal("edge uplink never attached")
	}
	un.cleanup = append(un.cleanup, func() { un.edgeLn.Close(); un.edgeFwd.Close() })
	return un
}

// startCore (re)starts the core router on addr ("udp://127.0.0.1:0"
// first boot, "udp://"+coreAddr for a restart on the same port). The
// core never reaps by idle — the producer only ever answers, so a
// quiet core→producer link is healthy, not dead — but it does
// keepalive, which is what feeds the edge's idle timer.
func (un *udpNet) startCore(addr string) {
	un.t.Helper()
	fwd, err := New(Config{
		ID: "core-0", Role: RoleCore, Registry: un.registry, Seed: 1,
		WriteTimeout: 2 * time.Second, KeepaliveInterval: udpKeepalive,
	})
	if err != nil {
		un.t.Fatal(err)
	}
	ln, err := transport.ListenFace(addr, transport.UDPOptions{})
	if err != nil {
		un.t.Fatal(err)
	}
	go fwd.ServeFaces(ln) //nolint:errcheck
	up, err := fwd.ManageUpstream(UplinkConfig{
		Addr: un.prodAddr, Routes: []names.Name{un.prefix}, Retry: fastRetry,
	})
	if err != nil {
		un.t.Fatal(err)
	}
	if !up.WaitUp(5 * time.Second) {
		un.t.Fatal("core uplink never attached")
	}
	un.coreFwd, un.coreLn, un.coreAddr = fwd, ln, ln.Addr().String()
}

// killCore stops the core router. Unlike the TCP topology no RST tells
// the edge: its uplink face just goes silent until the idle timeout
// reaps it.
func (un *udpNet) killCore() {
	un.coreLn.Close()
	un.coreFwd.Close()
	un.coreFwd, un.coreLn = nil, nil
}

func (un *udpNet) Close() {
	if un.coreFwd != nil {
		un.killCore()
	}
	for i := len(un.cleanup) - 1; i >= 0; i-- {
		un.cleanup[i]()
	}
}

// enrolledClient dials an enrolled client into the edge over udp://,
// starts its keepalive (see udpNet doc), and registers its tag.
func (un *udpNet) enrolledClient(name string) *Client {
	un.t.Helper()
	key, err := pki.GenerateECDSA(rand.Reader, names.MustNew("users", name, "KEY", "1"))
	if err != nil {
		un.t.Fatal(err)
	}
	identity, err := core.NewClient(key, rand.Reader)
	if err != nil {
		un.t.Fatal(err)
	}
	un.producer.Provider().Enroll(identity.KeyLocator(), key.Public(), 3)
	cl, err := Dial("udp://"+un.edgeAddr, identity, name, "edge-0")
	if err != nil {
		un.t.Fatal(err)
	}
	cl.StartKeepalive(udpKeepalive)
	if err := cl.Register(un.prefix, 5*time.Second); err != nil {
		cl.Close()
		un.t.Fatal(err)
	}
	return cl
}

// TestLiveUDPFetch is the datagram acceptance path: a 3-hop fetch
// (client→edge→core→producer) entirely over udp://, including chunks
// large enough that every Data fragments on every hop.
func TestLiveUDPFetch(t *testing.T) {
	if testing.Short() {
		t.Skip("live UDP test in -short mode")
	}
	un := startUDPNet(t, nil, 0)
	defer un.Close()

	alice := un.enrolledClient("alice")
	defer alice.Close()

	// Sub-MTU chunks first: the plain datagram path.
	if ok := fetchRange(alice, un.prefix, 0, 30, 2*time.Second); ok < 27 {
		t.Fatalf("small-chunk delivery %d/30 over udp", ok)
	}
	// Then the fragmented path: 4000 B chunks over a 1400 B MTU.
	delivered := 0
	for i := 0; i < 12; i++ {
		content, err := alice.Fetch(un.prefix.MustAppend("big", "chunk"+itoa(i)), 2*time.Second)
		if err != nil {
			t.Logf("big chunk%d: %v", i, err)
			continue
		}
		// The provider's AEAD grows each chunk past the plaintext size;
		// anything >= the 4000 B plaintext proves the Data outgrew the
		// 1400 B MTU and survived fragmentation on every hop.
		if len(content.Payload) < 4000 {
			t.Fatalf("big chunk%d: %d bytes, want >= 4000", i, len(content.Payload))
		}
		delivered++
	}
	if delivered < 11 {
		t.Fatalf("fragmented delivery %d/12 over udp", delivered)
	}
	// The edge must be holding exactly the two datagram faces this test
	// created: alice's and the uplink's.
	if st := un.edgeFwd.Status(); len(st.Faces) != 2 {
		t.Errorf("edge faces = %d, want 2 (client + uplink)", len(st.Faces))
	}
}

// TestLiveUDPChaosSoak runs the fetch workload while the edge uplink
// drops and reorders datagrams; unlike a stream, a reordered datagram
// face delivers frames out of order to the forwarder, so this also
// exercises PIT matching under reordering. Retransmission must hold
// delivery high anyway.
func TestLiveUDPChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("live UDP soak in -short mode")
	}
	dial := chaos.Dialer(chaos.Config{Seed: 42, Drop: 0.1, Reorder: 0.1, MaxReorderDepth: 4})
	un := startUDPNet(t, dial, 0)
	defer un.Close()

	alice := un.enrolledClient("alice")
	defer alice.Close()

	const total = 60
	ok := fetchRange(alice, un.prefix, 0, total, 2*time.Second)
	st := alice.Stats()
	t.Logf("udp chaos delivery %d/%d; client %+v", ok, total, st)
	if ok*10 < total*9 {
		t.Errorf("delivery under udp chaos = %d/%d, want >= 90%%", ok, total)
	}
	if !un.uplink.Up() && !un.uplink.WaitUp(5*time.Second) {
		t.Error("uplink wedged down after udp chaos soak")
	}
}

// TestLiveUDPFailover kills and restarts the core on the same UDP
// address. With no RST to announce the outage, the edge's uplink face
// must go down via keepalive loss + idle timeout, redial (datagram
// dials "succeed" instantly), and carry traffic again once the core is
// back on the port.
func TestLiveUDPFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("live UDP failover in -short mode")
	}
	un := startUDPNet(t, nil, 400*time.Millisecond)
	defer un.Close()

	alice := un.enrolledClient("alice")
	defer alice.Close()

	const batch = 30
	preOK := fetchRange(alice, un.prefix, 0, batch, 2*time.Second)
	if preOK < batch*9/10 {
		t.Fatalf("pre-kill delivery %d/%d; network unhealthy before the fault", preOK, batch)
	}
	preConnects := un.uplink.connects.Value()
	preDowns := un.uplink.downs.Value()

	un.killCore()
	// Outage fetches fail (dropped datagrams or no_route while the
	// uplink cycles); the client burns retransmits and survives.
	outageOK := fetchRange(alice, un.prefix, batch, batch+5, 300*time.Millisecond)

	// The idle timeout must observe the silence and take the face down
	// at least once before the core returns (event-synced on the down
	// counter rather than a wall-clock guess).
	downDeadline := time.Now().Add(10 * time.Second)
	for un.uplink.downs.Value() <= preDowns {
		if time.Now().After(downDeadline) {
			t.Fatalf("uplink never went down after core kill (downs=%d)", un.uplink.downs.Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	un.startCore("udp://" + un.coreAddr)

	// Recovery: the uplink needs one more idle cycle (at worst) to shed
	// a dead face dialed during the outage and attach a live one.
	deadline := time.Now().Add(10 * time.Second)
	postOK := 0
	for postOK*10 < preOK*9 && time.Now().Before(deadline) {
		postOK = fetchRange(alice, un.prefix, 2*batch, 3*batch, 2*time.Second)
	}
	t.Logf("udp failover delivery: pre %d/%d, outage %d/5, post %d/%d; uplink connects %d -> %d, downs %d",
		preOK, batch, outageOK, postOK, batch, preConnects, un.uplink.connects.Value(), un.uplink.downs.Value())
	if postOK*10 < preOK*9 {
		t.Errorf("delivery did not recover: post %d/%d vs pre %d/%d", postOK, batch, preOK, batch)
	}
	if got := un.uplink.connects.Value(); got <= preConnects {
		t.Errorf("uplink never reconnected: connects %d -> %d", preConnects, got)
	}
	if un.uplink.downs.Value() < 1 {
		t.Errorf("uplink never observed the outage (downs = %d)", un.uplink.downs.Value())
	}
}
