package forwarder

import (
	"context"
	"fmt"
	"math/rand"
	"time"
)

// RetryConfig shapes Retry's backoff schedule. The zero value retries
// DefaultRetryAttempts times starting at DefaultRetryBase, capped at
// DefaultRetryCap.
type RetryConfig struct {
	// Attempts bounds the number of calls to the operation (including
	// the first); <= 0 selects DefaultRetryAttempts.
	Attempts int
	// Base is the first backoff interval; successive intervals double.
	Base time.Duration
	// Cap bounds a single backoff interval.
	Cap time.Duration
	// Logf, when set, receives one line per failed attempt.
	Logf func(format string, args ...any)
}

// Retry defaults: 10 attempts, 250ms doubling to a 5s cap, gives an
// upstream ~23s to come up — generous for a peer daemon started by the
// same script, without the old fixed-interval hammering.
const (
	DefaultRetryAttempts = 10
	DefaultRetryBase     = 250 * time.Millisecond
	DefaultRetryCap      = 5 * time.Second
)

func (c RetryConfig) withDefaults() RetryConfig {
	if c.Attempts <= 0 {
		c.Attempts = DefaultRetryAttempts
	}
	if c.Base <= 0 {
		c.Base = DefaultRetryBase
	}
	if c.Cap <= 0 {
		c.Cap = DefaultRetryCap
	}
	return c
}

// retryDelay computes the sleep before attempt+1 (attempt counts from
// 1): exponential doubling of base capped at cap, with "equal jitter" —
// uniform in [d/2, d] — so a herd of routers restarting together
// decorrelates instead of reconnecting in lockstep.
func retryDelay(attempt int, base, cap time.Duration, intn func(int64) int64) time.Duration {
	d := base
	for i := 1; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	half := d / 2
	return half + time.Duration(intn(int64(half)+1))
}

// Retry runs op until it succeeds, the attempt budget is exhausted, or
// ctx is cancelled, sleeping a jittered exponential backoff between
// attempts. It returns op's last error when the budget runs out, or the
// context error (wrapping the last attempt error) on cancellation.
func Retry[T any](ctx context.Context, cfg RetryConfig, op func() (T, error)) (T, error) {
	cfg = cfg.withDefaults()
	var zero T
	var err error
	for attempt := 1; ; attempt++ {
		var v T
		if v, err = op(); err == nil {
			return v, nil
		}
		if attempt >= cfg.Attempts {
			return zero, err
		}
		d := retryDelay(attempt, cfg.Base, cfg.Cap, rand.Int63n)
		if cfg.Logf != nil {
			cfg.Logf("attempt %d/%d failed: %v (retrying in %s)",
				attempt, cfg.Attempts, err, d.Round(time.Millisecond))
		}
		timer := time.NewTimer(d)
		select {
		case <-ctx.Done():
			timer.Stop()
			return zero, fmt.Errorf("%w (last attempt %d: %v)", ctx.Err(), attempt, err)
		case <-timer.C:
		}
	}
}
