package forwarder

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/ndn"
	"github.com/tactic-icn/tactic/internal/obs"
	"github.com/tactic-icn/tactic/internal/transport"
)

// UplinkConfig configures a managed upstream link (ManageUpstream).
type UplinkConfig struct {
	// Addr is the upstream address to dial.
	Addr string
	// Routes are the prefixes reachable through this uplink; they are
	// (re)installed toward the new face on every attach and detached
	// automatically when the face dies.
	Routes []names.Name
	// Retry shapes the reconnect backoff (Base/Cap/Logf; zero value =
	// package defaults). Its Attempts field is ignored — use MaxAttempts.
	Retry RetryConfig
	// MaxAttempts bounds consecutive failed dials before the uplink gives
	// up permanently; <= 0 retries forever. One successful connection
	// resets the count.
	MaxAttempts int
	// Dial overrides the dialer — tests inject fault-injecting
	// transports (internal/transport/chaos). It receives the full Addr
	// including any scheme prefix; a "udp://" Addr has the returned conn
	// treated as datagram-semantics (one Write = one datagram). Nil
	// dials by scheme: "udp://" opens a batched datagram face, anything
	// else TCP with a 10 s timeout.
	Dial func(addr string) (net.Conn, error)
	// UDP tunes datagram uplinks (MTU, reassembly bounds); ignored for
	// stream schemes.
	UDP transport.UDPOptions
	// SyncPeer registers the uplink's face as a BF-sync peer while it is
	// attached (see Forwarder.AddSyncPeer): neighbor edge routers receive
	// this forwarder's validated-tag Bloom filter deltas through it.
	SyncPeer bool
}

// Uplink is a supervised upstream link: it dials, attaches a face,
// installs the configured routes, and — when the face dies for any
// reason (read error, fatal send error, idle timeout) — detaches,
// backs off with jitter, and reconnects. While the link is down its
// routes are absent from the FIB, so Interests fail fast with no_route
// instead of black-holing into a dead face.
type Uplink struct {
	f   *Forwarder
	cfg UplinkConfig

	connects *obs.Counter // attaches, including reconnects
	downs    *obs.Counter // detaches observed
	up       atomic.Bool

	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup

	mu   sync.Mutex
	face ndn.FaceID
}

// ManageUpstream starts supervising an upstream link and returns
// immediately; the first connection attempt happens on the supervisor
// goroutine (use WaitUp to block until attached). The uplink is closed
// by Uplink.Close or, collectively, by Forwarder.Close.
func (f *Forwarder) ManageUpstream(cfg UplinkConfig) (*Uplink, error) {
	if cfg.Addr == "" {
		return nil, errors.New("forwarder: uplink address required")
	}
	cfg.Retry = cfg.Retry.withDefaults()
	u := &Uplink{f: f, cfg: cfg, closed: make(chan struct{}), face: ndn.FaceNone}
	if reg := f.m.reg; reg != nil {
		reg.Help(MetricUplinkConnects, "Managed-uplink attaches, including reconnects.")
		reg.Help(MetricUplinkDown, "Managed-uplink detaches (the face died).")
		reg.Help(MetricUplinkUp, "1 while the managed uplink has a live face, else 0.")
		addr := obs.L("addr", cfg.Addr)
		u.connects = reg.Counter(MetricUplinkConnects, f.m.role, addr)
		u.downs = reg.Counter(MetricUplinkDown, f.m.role, addr)
		reg.GaugeFunc(MetricUplinkUp, func() float64 {
			if u.up.Load() {
				return 1
			}
			return 0
		}, f.m.role, addr)
	}
	f.mu.Lock()
	select {
	case <-f.closed:
		f.mu.Unlock()
		return nil, errors.New("forwarder: closed")
	default:
	}
	f.uplinks = append(f.uplinks, u)
	f.mu.Unlock()
	u.wg.Add(1)
	go u.run()
	return u, nil
}

// run is the supervision loop: dial, attach, wait for death, repeat.
func (u *Uplink) run() {
	defer u.wg.Done()
	failures := 0
	for {
		select {
		case <-u.closed:
			return
		default:
		}
		face, err := u.dialFace()
		if err != nil {
			failures++
			if u.cfg.MaxAttempts > 0 && failures >= u.cfg.MaxAttempts {
				u.f.logf("uplink %s: giving up after %d failed attempts: %v", u.cfg.Addr, failures, err)
				return
			}
			d := retryDelay(failures, u.cfg.Retry.Base, u.cfg.Retry.Cap, rand.Int63n)
			u.f.logf("uplink %s: dial attempt %d failed: %v (retrying in %s)",
				u.cfg.Addr, failures, err, d.Round(time.Millisecond))
			select {
			case <-u.closed:
				return
			case <-time.After(d):
			}
			continue
		}
		failures = 0

		// Attach with a death hook: detachFace fires it (on its own
		// goroutine) whatever killed the face — peer reset, fatal send
		// error, idle timeout — so every path funnels back here.
		down := make(chan struct{})
		id := u.f.addFace(face, false, func() { close(down) })
		u.mu.Lock()
		u.face = id
		u.mu.Unlock()
		for _, prefix := range u.cfg.Routes {
			u.f.AddRoute(prefix, id)
		}
		if u.cfg.SyncPeer {
			u.f.AddSyncPeer(id)
		}
		u.up.Store(true)
		u.connects.Add(1)
		u.f.ev.Emit(obs.EventUplinkUp, int(id), u.cfg.Addr, 0)
		u.f.logf("uplink %s: attached as face %d (%d routes)", u.cfg.Addr, id, len(u.cfg.Routes))

		select {
		case <-u.closed:
			u.up.Store(false)
			if u.cfg.SyncPeer {
				u.f.RemoveSyncPeer(id)
			}
			u.f.removeFace(id)
			return
		case <-down:
			u.up.Store(false)
			u.downs.Add(1)
			u.f.ev.Emit(obs.EventUplinkDown, int(id), u.cfg.Addr, 0)
			if u.cfg.SyncPeer {
				u.f.RemoveSyncPeer(id)
			}
			u.mu.Lock()
			u.face = ndn.FaceNone
			u.mu.Unlock()
			u.f.logf("uplink %s: face %d down, reconnecting", u.cfg.Addr, id)
		}
	}
}

// dialFace establishes one upstream face by scheme: a custom dialer's
// conn is framed as a stream or wrapped as a datagram face depending on
// the Addr scheme; the default path dials TCP or opens a batched UDP
// face. Datagram uplinks "connect" instantly — their death (and hence
// this redial loop) is driven by idle timeouts plus keepalives.
func (u *Uplink) dialFace() (transport.Face, error) {
	network, hostport := transport.SplitScheme(u.cfg.Addr)
	if u.cfg.Dial != nil {
		raw, err := u.cfg.Dial(u.cfg.Addr)
		if err != nil {
			return nil, err
		}
		if network == "udp" {
			return transport.NewDatagramConn(raw, u.cfg.UDP), nil
		}
		return transport.New(raw), nil
	}
	if network == "udp" {
		return transport.DialUDP(hostport, u.cfg.UDP)
	}
	raw, err := net.DialTimeout(network, hostport, 10*time.Second)
	if err != nil {
		return nil, err
	}
	return transport.New(raw), nil
}

// Up reports whether the uplink currently has a live face.
func (u *Uplink) Up() bool { return u.up.Load() }

// Face returns the current face, or ndn.FaceNone while down.
func (u *Uplink) Face() ndn.FaceID {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.face
}

// WaitUp blocks until the uplink attaches, the timeout lapses, or the
// uplink closes, reporting whether it is up.
func (u *Uplink) WaitUp(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for !u.up.Load() {
		if !time.Now().Before(deadline) {
			return false
		}
		select {
		case <-u.closed:
			return u.up.Load()
		case <-time.After(5 * time.Millisecond):
		}
	}
	return true
}

// Close stops supervising: the current face (if any) is removed and no
// reconnection follows. Idempotent; blocks until the supervisor exits.
func (u *Uplink) Close() {
	u.once.Do(func() { close(u.closed) })
	u.wg.Wait()
}
