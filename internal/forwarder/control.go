package forwarder

import (
	"time"

	"github.com/tactic-icn/tactic/internal/bloom"
	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/ndn"
	"github.com/tactic-icn/tactic/internal/obs"
	"github.com/tactic-icn/tactic/internal/transport"
)

// Lifecycle control-plane metrics (see README "Tag lifecycle").
const (
	// MetricControl counts control frames by kind and outcome (applied,
	// stale, invalid).
	MetricControl = "tactic_control_total"
	// MetricRevokedEntries gauges the router's exact revocation set.
	MetricRevokedEntries = "tactic_revoked_entries"
	// MetricBFEpoch gauges the Bloom filter's current epoch.
	MetricBFEpoch = "tactic_bf_epoch"
	// MetricBFSyncWords counts neighbor-sync word deltas by direction.
	MetricBFSyncWords = "tactic_bf_sync_words_total"
)

// Control-frame outcomes for the MetricControl "outcome" label.
const (
	ctrlApplied = "applied"
	ctrlStale   = "stale"
	ctrlInvalid = "invalid"
)

// handleControl applies one lifecycle control frame. Revocation and
// rotation frames that advance this node's state are flooded to every
// other face, so a push to any router reaches the whole deployment;
// version checks make re-floods no-ops and terminate the flood. BF sync
// adverts are hop-local (each node advertises its own filter on its own
// schedule), so they are merged but never flooded.
func (f *Forwarder) handleControl(m *ndn.Control, from *faceState) {
	switch m.Kind {
	case ndn.CtrlRevoke:
		if !f.tactic.ApplyRevocation(m.Version, m.Full, m.Revoked) {
			f.m.control(m.Kind, ctrlStale)
			return
		}
		f.m.control(m.Kind, ctrlApplied)
		f.ev.Emit(obs.EventRevocation, int(from.id), "v"+itoa(int(m.Version))+" from "+m.Origin, uint64(len(m.Revoked)))
		f.logf("control: revocation set v%d (%d entries, full=%v) from %q", m.Version, len(m.Revoked), m.Full, m.Origin)
		f.flushRevokedParked()
		f.floodControl(m, from.id)
	case ndn.CtrlRotate:
		if !f.tactic.RotateEpoch(m.Version) {
			f.m.control(m.Kind, ctrlStale)
			return
		}
		f.m.control(m.Kind, ctrlApplied)
		f.ev.Emit(obs.EventEpochRotate, int(from.id), "ordered by "+m.Origin, m.Version)
		f.logf("control: rotated BF to epoch %d (ordered by %q)", m.Version, m.Origin)
		f.floodControl(m, from.id)
	case ndn.CtrlBFSync:
		if err := f.tactic.Bloom().MergeWords(m.Bits, m.Hashes, m.Words, m.Added); err != nil {
			f.m.control(m.Kind, ctrlInvalid)
			f.logf("control: bf sync from %q rejected: %v", m.Origin, err)
			return
		}
		f.m.control(m.Kind, ctrlApplied)
		f.m.syncWordsIn.Add(uint64(len(m.Words)))
	default:
		f.m.control(m.Kind, ctrlInvalid)
		f.logf("control: unknown kind %d from %q", m.Kind, m.Origin)
	}
}

// floodControl relays a control frame to every face except the one it
// arrived on. Send failures fall back on the transport health machinery
// (fatal errors detach the face); the version check at every receiver
// makes duplicate delivery harmless.
func (f *Forwarder) floodControl(m *ndn.Control, except ndn.FaceID) {
	f.mu.RLock()
	targets := make([]*faceState, 0, len(f.faces))
	for id, fs := range f.faces {
		if id != except {
			targets = append(targets, fs)
		}
	}
	f.mu.RUnlock()
	for _, fs := range targets {
		if err := fs.conn.SendControl(m); err != nil {
			f.logf("send control on face %d: %v", fs.id, err)
			if transport.IsFatal(err) {
				f.removeFace(fs.id)
			}
		}
	}
}

// ApplyRevocation applies a revocation-set update locally and, when it
// advances the set, floods it to every attached face. It is the
// programmatic equivalent of receiving a CtrlRevoke frame (used by
// drivers that host the issuance service in-process).
func (f *Forwarder) ApplyRevocation(version uint64, full bool, revoked []core.TagID) bool {
	if !f.tactic.ApplyRevocation(version, full, revoked) {
		return false
	}
	f.m.control(ndn.CtrlRevoke, ctrlApplied)
	f.ev.Emit(obs.EventRevocation, -1, "v"+itoa(int(version))+" local", uint64(len(revoked)))
	f.flushRevokedParked()
	f.floodControl(&ndn.Control{Kind: ndn.CtrlRevoke, Version: version, Origin: f.cfg.ID, Full: full, Revoked: revoked}, ndn.FaceNone)
	return true
}

// flushRevokedParked NACKs parked verify jobs whose tag fell into the
// revocation set while they waited — a revoked tag's verdict is already
// known, so burning a worker slot (and making the client wait) on its
// signature would be wasted work. In-flight jobs re-check revocation in
// EdgeVerifyMiss/ContentVerifyMiss, so nothing slips through. No-op
// when the router skips revocation checks (ablation).
func (f *Forwarder) flushRevokedParked() {
	if f.cfg.Tactic.DisableRevocationCheck {
		return
	}
	rev := f.tactic.Revocations()
	n := f.vp.flushWhere(func(j *verifyJob) bool {
		return j.i.Tag != nil && rev.Contains(j.i.Tag.ID())
	}, core.ErrTagRevoked)
	if n > 0 {
		f.logf("control: flushed %d parked verifies for revoked tags", n)
	}
}

// AddSyncPeer registers an attached face as a BF-sync peer: the
// forwarder periodically advertises its validated-tag Bloom filter's
// word deltas there (see Config.BFSyncInterval), so a client roaming to
// that neighbor hits a warm filter instead of re-paying signature
// verification.
func (f *Forwarder) AddSyncPeer(face ndn.FaceID) {
	f.syncMu.Lock()
	f.syncPeers = append(f.syncPeers, face)
	f.syncMu.Unlock()
}

// RemoveSyncPeer unregisters a BF-sync peer face (no-op if absent);
// managed uplinks call it when their face dies so adverts stop chasing
// dead faces across reconnects.
func (f *Forwarder) RemoveSyncPeer(face ndn.FaceID) {
	f.syncMu.Lock()
	for i, p := range f.syncPeers {
		if p == face {
			f.syncPeers = append(f.syncPeers[:i], f.syncPeers[i+1:]...)
			break
		}
	}
	f.syncMu.Unlock()
}

// syncLoop periodically advertises BF deltas to the registered sync
// peers.
func (f *Forwarder) syncLoop(interval time.Duration) {
	defer f.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-f.closed:
			return
		case <-t.C:
			f.SyncBF()
		}
	}
}

// SyncBF advertises the Bloom filter words changed since the previous
// advertisement to every sync peer, as one CtrlBFSync frame. It is
// called from the BFSyncInterval ticker and may be called directly to
// force an advertisement (tests, handover hooks). A call with no
// changed words or no live peers sends nothing.
func (f *Forwarder) SyncBF() {
	f.syncMu.Lock()
	defer f.syncMu.Unlock()
	if len(f.syncPeers) == 0 {
		return
	}
	bf := f.tactic.Bloom()
	cur := bf.Words()
	count := bf.Count()
	deltas := bloom.DiffWords(f.syncSnap, cur)
	if len(deltas) == 0 {
		return
	}
	var added uint64
	if count > f.syncCount {
		added = count - f.syncCount
	}
	m := &ndn.Control{
		Kind:    ndn.CtrlBFSync,
		Version: f.syncGen.Add(1),
		Origin:  f.cfg.ID,
		Bits:    bf.Bits(),
		Hashes:  bf.Hashes(),
		Words:   deltas,
		Added:   added,
	}
	live := f.syncPeers[:0]
	for _, id := range f.syncPeers {
		f.mu.RLock()
		fs, ok := f.faces[id]
		f.mu.RUnlock()
		if !ok {
			continue // face died; drop the peer
		}
		live = append(live, id)
		if err := fs.conn.SendControl(m); err != nil {
			f.logf("bf sync to face %d: %v", id, err)
			continue
		}
		f.m.syncWordsOut.Add(uint64(len(deltas)))
	}
	f.syncPeers = live
	f.syncSnap, f.syncCount = cur, count
}
