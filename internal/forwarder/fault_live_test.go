package forwarder

import (
	"bufio"
	"bytes"
	"crypto/rand"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/ndn"
	"github.com/tactic-icn/tactic/internal/obs"
	"github.com/tactic-icn/tactic/internal/pki"
	"github.com/tactic-icn/tactic/internal/transport"
	"github.com/tactic-icn/tactic/internal/transport/chaos"
)

// fastRetry keeps reconnect backoff test-sized.
var fastRetry = RetryConfig{Base: 10 * time.Millisecond, Cap: 100 * time.Millisecond}

// faultNet is a live client—edge—core—producer topology whose
// edge→core and core→producer links are managed uplinks, and whose core
// can be killed and restarted on the same address mid-test.
type faultNet struct {
	t        *testing.T
	registry *pki.Registry
	producer *Producer
	prefix   names.Name
	prodAddr string

	coreAddr string
	coreFwd  *Forwarder
	coreLn   net.Listener

	edgeFwd  *Forwarder
	edgeLn   net.Listener
	edgeAddr string
	edgeObs  *obs.Registry
	uplink   *Uplink

	cleanup []func()
}

// startFaultNet boots the topology. dial, when non-nil, replaces the
// edge uplink's dialer (chaos injection).
func startFaultNet(t *testing.T, dial func(string) (net.Conn, error)) *faultNet {
	t.Helper()
	return startFaultNetCfg(t, dial, nil)
}

// startFaultNetCfg is startFaultNet with a hook to adjust the edge
// forwarder's config before boot (verify budgets, TACTIC knobs).
func startFaultNetCfg(t *testing.T, dial func(string) (net.Conn, error), mod func(*Config)) *faultNet {
	t.Helper()
	fn := &faultNet{t: t, prefix: names.MustParse("/prov0")}

	provKey, err := pki.GenerateECDSA(rand.Reader, names.MustParse("/prov0/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	fn.registry = pki.NewRegistry()
	if err := fn.registry.Register(provKey.Locator(), provKey.Public()); err != nil {
		t.Fatal(err)
	}
	provider, err := core.NewProvider(fn.prefix, provKey, time.Minute, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	fn.producer, err = NewProducer(provider, fn.registry, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	// One tiny chunk per request so every fetch traverses the full path
	// at most once per name and caches never mask an outage.
	soak := bytes.Repeat([]byte("0123456789abcdef"), 400) // 400 chunks of 16 B
	if _, err := fn.producer.PublishObject("soak", 2, soak, 16); err != nil {
		t.Fatal(err)
	}

	prodLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fn.producer.Serve(prodLn) //nolint:errcheck // exits on close
	fn.prodAddr = prodLn.Addr().String()
	fn.cleanup = append(fn.cleanup, func() { prodLn.Close(); fn.producer.Close() })

	fn.startCore("127.0.0.1:0")

	fn.edgeObs = obs.NewRegistry()
	edgeCfg := Config{
		ID: "edge-0", Role: RoleEdge, Registry: fn.registry, Seed: 2,
		WriteTimeout: 2 * time.Second, Obs: fn.edgeObs,
	}
	if mod != nil {
		mod(&edgeCfg)
	}
	fn.edgeFwd, err = New(edgeCfg)
	if err != nil {
		t.Fatal(err)
	}
	fn.edgeLn, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fn.edgeFwd.Serve(fn.edgeLn) //nolint:errcheck
	fn.edgeAddr = fn.edgeLn.Addr().String()
	fn.uplink, err = fn.edgeFwd.ManageUpstream(UplinkConfig{
		Addr: fn.coreAddr, Routes: []names.Name{fn.prefix}, Retry: fastRetry, Dial: dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fn.uplink.WaitUp(5 * time.Second) {
		t.Fatal("edge uplink never attached")
	}
	fn.cleanup = append(fn.cleanup, func() { fn.edgeLn.Close(); fn.edgeFwd.Close() })
	return fn
}

// startCore (re)starts the core router; addr is "127.0.0.1:0" for the
// first boot and the recorded coreAddr for a restart.
func (fn *faultNet) startCore(addr string) {
	fn.t.Helper()
	fwd, err := New(Config{
		ID: "core-0", Role: RoleCore, Registry: fn.registry, Seed: 1,
		WriteTimeout: 2 * time.Second,
	})
	if err != nil {
		fn.t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fn.t.Fatal(err)
	}
	go fwd.Serve(ln) //nolint:errcheck
	up, err := fwd.ManageUpstream(UplinkConfig{
		Addr: fn.prodAddr, Routes: []names.Name{fn.prefix}, Retry: fastRetry,
	})
	if err != nil {
		fn.t.Fatal(err)
	}
	if !up.WaitUp(5 * time.Second) {
		fn.t.Fatal("core uplink never attached")
	}
	fn.coreFwd, fn.coreLn, fn.coreAddr = fwd, ln, ln.Addr().String()
}

// killCore stops the core router, severing the edge's uplink.
func (fn *faultNet) killCore() {
	fn.coreLn.Close()
	fn.coreFwd.Close()
	fn.coreFwd, fn.coreLn = nil, nil
}

func (fn *faultNet) Close() {
	if fn.coreFwd != nil {
		fn.killCore()
	}
	for i := len(fn.cleanup) - 1; i >= 0; i-- {
		fn.cleanup[i]()
	}
}

// enrolledClient dials an enrolled client into the edge and primes its
// tag so the soak loops never race registration.
func (fn *faultNet) enrolledClient(name string) *Client {
	fn.t.Helper()
	key, err := pki.GenerateECDSA(rand.Reader, names.MustNew("users", name, "KEY", "1"))
	if err != nil {
		fn.t.Fatal(err)
	}
	identity, err := core.NewClient(key, rand.Reader)
	if err != nil {
		fn.t.Fatal(err)
	}
	fn.producer.Provider().Enroll(identity.KeyLocator(), key.Public(), 3)
	cl, err := Dial(fn.edgeAddr, identity, name, "edge-0")
	if err != nil {
		fn.t.Fatal(err)
	}
	if err := cl.Register(fn.prefix, 5*time.Second); err != nil {
		cl.Close()
		fn.t.Fatal(err)
	}
	return cl
}

// fetchRange fetches soak chunks [from, to) once each and returns the
// delivered count.
func fetchRange(c *Client, prefix names.Name, from, to int, timeout time.Duration) int {
	ok := 0
	for i := from; i < to; i++ {
		if _, err := c.Fetch(prefix.MustAppend("soak", "chunk"+itoa(i)), timeout); err == nil {
			ok++
		}
	}
	return ok
}

// scrapeMetric sums every series of one family on a /metrics endpoint.
func scrapeMetric(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sum := 0.0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, "{") && !strings.HasPrefix(rest, " ") {
			continue // longer name sharing the prefix
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("bad metric line %q: %v", line, err)
		}
		sum += v
	}
	return sum
}

// TestLiveFailoverSoak is the acceptance scenario: kill and restart the
// core router under a live client workload, and require the edge's
// managed uplink to reattach, routes to reinstall, and the delivery
// ratio to recover — all asserted on /metrics.
func TestLiveFailoverSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("live soak in -short mode")
	}
	fn := startFaultNet(t, nil)
	defer fn.Close()

	admin, err := obs.ServeAdmin("127.0.0.1:0", fn.edgeObs, func() any { return fn.edgeFwd.Status() })
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	metrics := "http://" + admin.Addr().String()

	alice := fn.enrolledClient("alice")
	defer alice.Close()
	alice.Instrument(fn.edgeObs)

	const batch = 30
	preOK := fetchRange(alice, fn.prefix, 0, batch, 2*time.Second)
	if preOK < batch*9/10 {
		t.Fatalf("pre-kill delivery %d/%d; network unhealthy before the fault", preOK, batch)
	}

	fn.killCore()
	// A few fetches during the outage: they fail fast (no_route at the
	// edge once the uplink detaches its FIB entries) or burn their
	// retransmit budget — either way the client survives to recover.
	outageOK := fetchRange(alice, fn.prefix, batch, batch+5, 300*time.Millisecond)

	fn.startCore(fn.coreAddr)
	if !fn.uplink.WaitUp(5 * time.Second) {
		t.Fatal("edge uplink did not reattach after core restart")
	}

	postOK := fetchRange(alice, fn.prefix, 2*batch, 3*batch, 2*time.Second)
	t.Logf("delivery: pre %d/%d, outage %d/5, post %d/%d; client %+v",
		preOK, batch, outageOK, postOK, batch, alice.Stats())
	if postOK*10 < preOK*9 {
		t.Errorf("delivery did not recover: post %d/%d vs pre %d/%d", postOK, batch, preOK, batch)
	}

	if v := scrapeMetric(t, metrics, MetricUplinkConnects); v < 2 {
		t.Errorf("%s = %v, want >= 2 (initial attach + reattach)", MetricUplinkConnects, v)
	}
	if v := scrapeMetric(t, metrics, MetricUplinkDown); v < 1 {
		t.Errorf("%s = %v, want >= 1", MetricUplinkDown, v)
	}
	if v := scrapeMetric(t, metrics, MetricUplinkUp); v != 1 {
		t.Errorf("%s = %v, want 1 after recovery", MetricUplinkUp, v)
	}
	if v := scrapeMetric(t, metrics, MetricRoutesDetached); v < 1 {
		t.Errorf("%s = %v, want >= 1", MetricRoutesDetached, v)
	}
	if v := scrapeMetric(t, metrics, MetricClientRetransmits); v < 1 {
		t.Errorf("%s = %v, want >= 1 (outage fetches retransmit)", MetricClientRetransmits, v)
	}
}

// TestLiveChaosSoak runs the client workload over an edge uplink that
// drops and occasionally resets frames; retransmission and uplink
// supervision must hold delivery high anyway.
func TestLiveChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("live soak in -short mode")
	}
	dial := chaos.Dialer(chaos.Config{Seed: 42, Drop: 0.1, Reset: 0.005})
	fn := startFaultNet(t, dial)
	defer fn.Close()

	alice := fn.enrolledClient("alice")
	defer alice.Close()

	const total = 60
	ok := fetchRange(alice, fn.prefix, 0, total, 2*time.Second)
	st := alice.Stats()
	t.Logf("chaos delivery %d/%d; client %+v", ok, total, st)
	if ok*10 < total*9 {
		t.Errorf("delivery under chaos = %d/%d, want >= 90%%", ok, total)
	}
	if fn.uplink.Up() == false && !fn.uplink.WaitUp(5*time.Second) {
		t.Error("uplink wedged down after chaos soak")
	}
}

// TestLiveFaceChurn hammers the edge with short-lived downstream
// connections while a real client fetches, then checks nothing leaked:
// delivery still works, the FIB holds only the uplink route, and the
// goroutine count settles back after everything closes.
func TestLiveFaceChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("live churn test in -short mode")
	}
	base := runtime.NumGoroutine()

	fn := startFaultNet(t, nil)
	alice := fn.enrolledClient("alice")

	done := make(chan int)
	go func() { done <- fetchRange(alice, fn.prefix, 0, 40, 2*time.Second) }()

	for i := 0; i < 40; i++ {
		raw, err := net.Dial("tcp", fn.edgeAddr)
		if err != nil {
			t.Fatal(err)
		}
		conn := transport.New(raw)
		if i%2 == 0 {
			// Half the churners die mid-conversation, after a packet.
			conn.SendInterest(&ndn.Interest{ //nolint:errcheck
				Name: fn.prefix.MustAppend("soak", "chunk0"), Kind: ndn.KindContent, Nonce: uint64(1000 + i),
			})
		}
		conn.Close()
	}

	if ok := <-done; ok*10 < 40*9 {
		t.Errorf("delivery under churn = %d/40, want >= 90%%", ok)
	}

	// Every churned face must be gone; only the client face and the
	// uplink remain, and the FIB holds exactly the uplink route.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := fn.edgeFwd.Status()
		if len(st.Faces) == 2 && st.FIBEntries == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale state after churn: %d faces, %d routes", len(st.Faces), st.FIBEntries)
		}
		time.Sleep(10 * time.Millisecond)
	}

	alice.Close()
	fn.Close()

	// Everything is closed; the goroutine count must come back down
	// (readers, supervisors, keepalive tickers all exit).
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+3 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", base, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
