package forwarder

import (
	"crypto/rand"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/tactic-icn/tactic/internal/core"
	"github.com/tactic-icn/tactic/internal/names"
	"github.com/tactic-icn/tactic/internal/ndn"
	"github.com/tactic-icn/tactic/internal/pki"
	"github.com/tactic-icn/tactic/internal/transport"
)

// gatePKI wraps a pki.Verifier so tests can hold every signature
// verification open: parked jobs stay parked (or in flight) for as long
// as the test needs to observe admission, flushing, and shedding.
type gatePKI struct {
	inner pki.Verifier
	mu    sync.Mutex
	ch    chan struct{} // non-nil while held
}

func (g *gatePKI) hold() {
	g.mu.Lock()
	if g.ch == nil {
		g.ch = make(chan struct{})
	}
	g.mu.Unlock()
}

func (g *gatePKI) release() {
	g.mu.Lock()
	if g.ch != nil {
		close(g.ch)
		g.ch = nil
	}
	g.mu.Unlock()
}

func (g *gatePKI) Verify(locator names.Name, msg, sig []byte) error {
	g.mu.Lock()
	ch := g.ch
	g.mu.Unlock()
	if ch != nil {
		<-ch
	}
	return g.inner.Verify(locator, msg, sig)
}

// vpEnv is a standalone edge forwarder with a gated verifier — enough
// to exercise the verification pool without a core router or producer
// (every tag under test is denied at the edge).
type vpEnv struct {
	t       *testing.T
	fwd     *Forwarder
	gate    *gatePKI
	addr    string
	provKey *pki.ECDSAKeyPair
	rogue   *pki.ECDSAKeyPair
}

func newVPEnv(t *testing.T, workers, budget int) *vpEnv {
	t.Helper()
	provKey, err := pki.GenerateECDSA(rand.Reader, names.MustParse("/prov0/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	reg := pki.NewRegistry()
	if err := reg.Register(provKey.Locator(), provKey.Public()); err != nil {
		t.Fatal(err)
	}
	rogue, err := pki.GenerateECDSA(rand.Reader, names.MustParse("/prov0/KEY/1"))
	if err != nil {
		t.Fatal(err)
	}
	gate := &gatePKI{inner: reg}
	fwd, err := New(Config{
		ID: "edge-0", Role: RoleEdge, Registry: reg, Verifier: gate,
		Tactic: core.Config{EdgeValidateOnMiss: true}, Seed: 1,
		VerifyWorkers: workers, VerifyBudget: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fwd.Serve(ln) //nolint:errcheck // exits on close
	t.Cleanup(func() { gate.release(); fwd.Close(); ln.Close() })
	return &vpEnv{t: t, fwd: fwd, gate: gate, addr: ln.Addr().String(), provKey: provKey, rogue: rogue}
}

// forgedTag mints a structurally valid tag signed by the rogue key:
// always a BF miss, always a failing verification, distinct per user.
func (e *vpEnv) forgedTag(user string) *core.Tag {
	e.t.Helper()
	tag, err := core.IssueTag(e.rogue, names.MustNew("users", user, "KEY", "1"), 3,
		core.EmptyAccessPath.Accumulate("edge-0"), time.Now().Add(time.Hour))
	if err != nil {
		e.t.Fatal(err)
	}
	return tag
}

func (e *vpEnv) dial() *transport.Conn {
	e.t.Helper()
	raw, err := net.Dial("tcp", e.addr)
	if err != nil {
		e.t.Fatal(err)
	}
	conn := transport.New(raw)
	e.t.Cleanup(func() { conn.Close() })
	return conn
}

// sendForged sends n Interests, each with a distinct forged tag, on
// conn. Nonces are base+1..base+n; user names are salted with base too
// so concurrent calls never share a tag.
func (e *vpEnv) sendForged(conn *transport.Conn, base uint64, n int) {
	e.t.Helper()
	for k := 1; k <= n; k++ {
		if err := conn.SendInterest(&ndn.Interest{
			Name:  names.MustParse("/prov0/x/chunk0"),
			Kind:  ndn.KindContent,
			Nonce: base + uint64(k),
			Tag:   e.forgedTag(fmt.Sprintf("u%d-%d", base, k)),
		}); err != nil {
			e.t.Fatal(err)
		}
	}
}

// collectNACKs reads n Data frames off conn and tallies them by NACK
// reason label.
func (e *vpEnv) collectNACKs(conn *transport.Conn, n int) map[string]int {
	e.t.Helper()
	got := make(map[string]int)
	for k := 0; k < n; k++ {
		var pkt transport.Packet
		var err error
		for {
			pkt, err = conn.Receive()
			if err != nil {
				e.t.Fatalf("receive %d/%d: %v", k+1, n, err)
			}
			if pkt.Data != nil {
				break
			}
			// Skip control-plane frames (e.g. revocation pushes).
		}
		if !pkt.Data.Nack {
			e.t.Fatalf("response %d is not a NACK: %+v", k+1, pkt)
		}
		got[core.ReasonLabel(pkt.Data.NackReason)]++
	}
	return got
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestVerifyPoolShedsAtBudget holds every verification open and sends
// budget+3 distinct unverified tags on one face: exactly 3 must shed
// immediately with Overload NACKs, and the admitted ones must deliver
// forged NACKs once the verifier is released.
func TestVerifyPoolShedsAtBudget(t *testing.T) {
	const budget = 4
	e := newVPEnv(t, 2, budget)
	e.gate.hold()
	conn := e.dial()

	e.sendForged(conn, 0, budget+3)
	// The sheds answer synchronously on the reader; the admitted jobs
	// are stuck behind the gate.
	got := e.collectNACKs(conn, 3)
	if got["overload"] != 3 {
		t.Fatalf("shed NACKs = %v, want 3 overload", got)
	}
	if sheds := e.fwd.Stats().VerifySheds; sheds != 3 {
		t.Fatalf("VerifySheds = %d, want 3", sheds)
	}

	e.gate.release()
	got = e.collectNACKs(conn, budget)
	if got["forged"] != budget {
		t.Fatalf("admitted NACKs = %v, want %d forged", got, budget)
	}
	waitFor(t, "pool to drain", func() bool { return e.fwd.vp.Parked() == 0 })
}

// TestVerifyPoolPerFaceBudget floods one face past its budget while a
// second face stays within its own: the budget is per arrival face, so
// the well-behaved face must not be shed.
func TestVerifyPoolPerFaceBudget(t *testing.T) {
	const budget = 4
	e := newVPEnv(t, 1, budget)
	e.gate.hold()
	flood := e.dial()
	victim := e.dial()

	e.sendForged(flood, 0, budget+2)
	got := e.collectNACKs(flood, 2)
	if got["overload"] != 2 {
		t.Fatalf("flood sheds = %v, want 2 overload", got)
	}
	// The victim's tags park under its own budget — no shed.
	e.sendForged(victim, 1000, budget)
	e.gate.release()
	got = e.collectNACKs(victim, budget)
	if got["forged"] != budget {
		t.Fatalf("victim NACKs = %v, want %d forged (no overload)", got, budget)
	}
}

// TestVerifyPoolFlushOnFaceDeath parks jobs behind a held verifier and
// kills the face: the parked jobs must be flushed (counted under
// VerifyFlushed) instead of leaking until shutdown.
func TestVerifyPoolFlushOnFaceDeath(t *testing.T) {
	e := newVPEnv(t, 1, 8)
	e.gate.hold()
	conn := e.dial()

	// One job goes in flight (1 worker, gated); the rest park.
	e.sendForged(conn, 0, 4)
	waitFor(t, "jobs to park", func() bool { return e.fwd.vp.Parked() == 3 })

	conn.Close()
	waitFor(t, "face death to flush parked jobs", func() bool {
		return e.fwd.Stats().VerifyFlushed == 3
	})
	e.gate.release()
	waitFor(t, "in-flight job to retire", func() bool { return e.fwd.vp.Parked() == 0 })
}

// TestVerifyPoolFlushOnRevocation parks jobs for two clients and
// revokes one of their tags mid-park: the revoked client's parked jobs
// must be flushed with revoked NACKs while the other's still verify.
func TestVerifyPoolFlushOnRevocation(t *testing.T) {
	e := newVPEnv(t, 1, 8)
	e.gate.hold()
	conn := e.dial()

	// Park one in-flight sacrificial job first so the interesting ones
	// stay in the parked state the flush targets.
	blocker := e.forgedTag("blocker")
	if err := conn.SendInterest(&ndn.Interest{
		Name: names.MustParse("/prov0/x/chunk0"), Kind: ndn.KindContent, Nonce: 1, Tag: blocker,
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "blocker in flight", func() bool { return e.fwd.vp.Parked() == 0 && e.fwd.Stats().VerifyFlushed == 0 })

	doomed := e.forgedTag("doomed")
	kept := e.forgedTag("kept")
	for nonce, tag := range map[uint64]*core.Tag{2: doomed, 3: kept} {
		if err := conn.SendInterest(&ndn.Interest{
			Name: names.MustParse("/prov0/x/chunk0"), Kind: ndn.KindContent, Nonce: nonce, Tag: tag,
		}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "jobs to park", func() bool { return e.fwd.vp.Parked() == 2 })

	if !e.fwd.ApplyRevocation(1, false, []core.TagID{doomed.ID()}) {
		t.Fatal("revocation push rejected")
	}
	waitFor(t, "revocation to flush the doomed job", func() bool {
		return e.fwd.Stats().VerifyFlushed == 1
	})
	e.gate.release()

	got := e.collectNACKs(conn, 3)
	if got["revoked"] != 1 {
		t.Fatalf("NACK reasons = %v, want 1 revoked", got)
	}
	if got["forged"] != 2 { // blocker + kept still verified normally
		t.Fatalf("NACK reasons = %v, want 2 forged", got)
	}
}

// TestVerifyPoolFlushOnShutdown parks jobs and closes the forwarder:
// the in-flight verification delivers its verdict, and every
// still-parked job is flushed with an Overload NACK while the face can
// still carry it.
func TestVerifyPoolFlushOnShutdown(t *testing.T) {
	e := newVPEnv(t, 1, 8)
	e.gate.hold()
	conn := e.dial()

	e.sendForged(conn, 0, 4)
	waitFor(t, "jobs to park", func() bool { return e.fwd.vp.Parked() == 3 })

	closed := make(chan struct{})
	go func() { e.fwd.Close(); close(closed) }()
	// Close drains the workers first, so it cannot finish until the
	// gated in-flight verification is released — assert it is still
	// blocked, rather than sleeping and hoping it got stuck in time.
	select {
	case <-closed:
		t.Fatal("Close returned while a verification was still gated")
	case <-time.After(20 * time.Millisecond):
	}
	e.gate.release()
	<-closed

	got := e.collectNACKs(conn, 4)
	if got["forged"] != 1 || got["overload"] != 3 {
		t.Fatalf("NACK reasons = %v, want 1 forged + 3 overload", got)
	}
	if flushed := e.fwd.Stats().VerifyFlushed; flushed != 3 {
		t.Fatalf("VerifyFlushed = %d, want 3", flushed)
	}
}

// TestVerifyPoolReaderNotBlocked is the tentpole property: with every
// verification gated shut and unverified tags parked, the same face's
// reader must still serve the cheap path — a request for cached public
// content — immediately. Before the pool, the reader would be wedged
// inside the signature check.
func TestVerifyPoolReaderNotBlocked(t *testing.T) {
	e := newVPEnv(t, 1, 8)

	// Publish public content straight into the edge CS (unsolicited
	// Data is inserted before the PIT check drops it).
	rng := rand.Reader
	provider, err := core.NewProvider(names.MustParse("/prov0"), e.provKey, time.Minute, rng)
	if err != nil {
		t.Fatal(err)
	}
	content, err := provider.Publish(names.MustParse("/prov0/open/chunk0"), core.Public, []byte("public info"))
	if err != nil {
		t.Fatal(err)
	}
	warm := e.dial()
	if err := warm.SendData(&ndn.Data{Name: content.Meta.Name, Content: content}); err != nil {
		t.Fatal(err)
	}

	e.gate.hold()
	conn := e.dial()
	e.sendForged(conn, 0, 4)
	waitFor(t, "jobs to park", func() bool { return e.fwd.vp.Parked() == 3 })

	// The verifier is still gated; only the async pool keeps this from
	// hanging until the test timeout.
	if err := conn.SendInterest(&ndn.Interest{
		Name: names.MustParse("/prov0/open/chunk0"), Kind: ndn.KindContent, Nonce: 99,
	}); err != nil {
		t.Fatal(err)
	}
	pkt, err := conn.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if pkt.Data == nil || pkt.Data.Nack || pkt.Data.Content == nil {
		t.Fatalf("cheap path starved behind parked verifications: %+v", pkt)
	}
	if string(pkt.Data.Content.Payload) != "public info" {
		t.Fatalf("payload = %q", pkt.Data.Content.Payload)
	}
	e.gate.release()
	if got := e.collectNACKs(conn, 4); got["forged"] != 4 {
		t.Fatalf("parked verdicts = %v, want 4 forged", got)
	}
}

// TestVerifyPoolRoundRobinFairness runs one worker over two faces with
// asymmetric backlogs: the busy face must not starve the light face —
// round-robin means the light face's single job completes within the
// first two dequeues, not after the busy face's whole backlog.
func TestVerifyPoolRoundRobinFairness(t *testing.T) {
	e := newVPEnv(t, 1, 16)
	e.gate.hold()
	busy := e.dial()
	light := e.dial()

	e.sendForged(busy, 0, 8)
	waitFor(t, "busy backlog to park", func() bool { return e.fwd.vp.Parked() == 7 })
	e.sendForged(light, 1000, 1)
	waitFor(t, "light job to park", func() bool { return e.fwd.vp.Parked() == 8 })

	e.gate.release()
	// The light face's verdict must arrive promptly even though the
	// busy face enqueued first; a FIFO pool would deliver it last.
	deadline := time.Now().Add(2 * time.Second)
	done := make(chan error, 1)
	go func() {
		pkt, err := light.Receive()
		if err == nil && (pkt.Data == nil || !pkt.Data.Nack) {
			err = errors.New("light face got a non-NACK")
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Until(deadline)):
		t.Fatal("light face starved behind the busy face's backlog")
	}
	if got := e.collectNACKs(busy, 8); got["forged"] != 8 {
		t.Fatalf("busy verdicts = %v, want 8 forged", got)
	}
}
